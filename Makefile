GO ?= go

.PHONY: build test bench bench-gate check chaos connscale connscale-smoke determinism fleet fleet-smoke fleet-scale fuzz-smoke scenario stdout-guard latency-gate flight-smoke trace-demo doctor-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-gate reruns the hot-path microbenchmarks (broker fanout, msg codecs,
# transport round trip — single-connection and with 1000 live connections)
# and compares them against the checked-in BENCH_hotpath.json: B/op or
# allocs/op more than 15% worse than the baseline fails the build
# (allocation counts are machine-independent, so a real increase is a code
# regression); ns/op deltas are printed but advisory. After an intentional
# change, refresh the baseline with `go run ./cmd/pogo-bench -run hotpath`
# and commit the new JSON. The fleet gate applies the same policy to the
# per-device memory diet: fleet_bytes_per_phone or allocs_per_delivery more
# than 15% worse than the BENCH_fleet.json 2000-phone row fails; wall-clock
# is advisory. Refresh with `go run ./cmd/pogo-bench -run fleet`.
bench-gate:
	$(GO) run ./cmd/pogo-bench -run hotpath -gate
	$(GO) run ./cmd/pogo-bench -run fleet -gate

# connscale records the connections-vs-throughput sweep (1k/10k/100k
# simulated concurrent XMPP connections through memnet, each a full
# reliable-transport endpoint) as connscale_<n>_conns rows merged into
# BENCH_hotpath.json. connscale-smoke is the CI-sized version `make check`
# runs: a small fleet, verify-only — every message delivered exactly once,
# outboxes drained, baseline untouched.
connscale:
	$(GO) run ./cmd/pogo-bench -run connscale

connscale-smoke:
	$(GO) run ./cmd/pogo-bench -run connscale -conns 2000 -gate

# check is the tier-1 gate: vet, the full test suite under the race
# detector, the library-stdout guard, a short fuzz smoke of the wire-facing
# parsers, the determinism diffs, and the allocation regression gate.
check: stdout-guard
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) scenario
	$(MAKE) determinism
	$(MAKE) fleet
	$(MAKE) fleet-smoke
	$(MAKE) bench-gate
	$(MAKE) connscale-smoke
	$(MAKE) latency-gate
	$(MAKE) flight-smoke
	$(MAKE) doctor-smoke

# fuzz-smoke gives the coverage-guided fuzzers a brief shake on every check;
# run e.g. `go test -fuzz FuzzDecode -fuzztime 5m ./internal/msg` for a real
# session. internal/msg has several fuzz targets, and `go test -fuzz` only
# accepts a pattern matching exactly one, so each is named explicitly.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/xmpp
	$(GO) test -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime 10s ./internal/msg
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeVsStdlib$$' -fuzztime 10s ./internal/msg
	$(GO) test -run '^$$' -fuzz 'FuzzBinaryRoundTrip$$' -fuzztime 10s ./internal/msg
	$(GO) test -run '^$$' -fuzz 'FuzzScenarioParse$$' -fuzztime 10s ./internal/scenario

# chaos replays the seeded fault-injection matrix (drop, duplicate, corrupt,
# delay, partition, churn at three fault levels) under the race detector,
# then regenerates the BENCH_chaos.json baseline via pogo-bench. The same
# matrix is ported to testdata/scenarios/chaos.txtar, which pins the same
# delivery-log hashes — `make scenario` cross-checks the two.
chaos:
	$(GO) test -race -v -run 'Chaos|Soak' ./internal/experiments ./internal/core
	$(GO) run -race ./cmd/pogo-bench -run chaos -seed 1

# fleet runs the sharded parallel fleet benchmark twice with the same seed
# and requires the merged delivery logs to be byte-identical: the
# epoch-barrier engine must make shard parallelism invisible to the
# simulation. Each invocation additionally hard-fails if the log hash
# varies across the shard-count sweep (1, 2, 4), and refreshes
# BENCH_fleet.json. testdata/scenarios/fleet.txtar pins the same hash, so
# an intentional baseline refresh must update the archive too.
fleet:
	@rm -f /tmp/pogo-fleet-a.log /tmp/pogo-fleet-b.log
	$(GO) run ./cmd/pogo-bench -run fleet -seed 1 -fleet-log /tmp/pogo-fleet-a.log
	$(GO) run ./cmd/pogo-bench -run fleet -seed 1 -fleet-log /tmp/pogo-fleet-b.log > /dev/null
	@cmp /tmp/pogo-fleet-a.log /tmp/pogo-fleet-b.log \
		&& echo "fleet: delivery logs byte-identical across same-seed runs" \
		|| (echo "fleet: same-seed runs diverged"; exit 1)

# fleet-smoke is the multi-process determinism check `make check` runs: a
# 10k-phone fleet split over 2 worker processes (forked pogo-fleet binaries
# exchanging staged cross-shard traffic at epoch barriers) must reproduce the
# in-process delivery log bit for bit. Verify-only — baselines untouched.
fleet-smoke:
	$(GO) run ./cmd/pogo-fleet -phones 10000 -shards 8 -procs 2 -verify > /dev/null
	@echo "fleet-smoke: ok"

# fleet-scale records the phones-vs-throughput scaling curve (10k and 100k
# phones, each serial / sharded / sharded-multi-process) into BENCH_fleet.json
# alongside the default 2000-phone sweep. The 100k rows take minutes; run
# manually after changes that touch per-device memory or the epoch barrier.
fleet-scale:
	$(GO) run ./cmd/pogo-bench -run fleet -seed 1 -fleet-scale 10000,100000

# scenario runs the txtar-scripted testbed suite under the race detector:
# every archive in internal/scenario/testdata/scenarios executes twice with
# the same seed and must produce byte-identical transcripts, the ported
# chaos/fleet archives must reproduce the checked-in bench hashes, and the
# scenario parsers get their table-driven workout. Then the runner lists the
# library. Regenerate goldens with `go run ./cmd/pogo-scenario -update`.
scenario:
	$(GO) test -race ./internal/scenario
	$(GO) run ./cmd/pogo-scenario -list

# determinism runs the seeded Table 3 benchmark twice and requires the
# ledger accounting and simulated-time series exports to be byte-identical:
# attribution that varies between same-seed runs is a bug, not noise.
determinism:
	@rm -rf /tmp/pogo-determinism-a /tmp/pogo-determinism-b
	$(GO) run ./cmd/pogo-bench -run table3 -csv /tmp/pogo-determinism-a > /dev/null
	$(GO) run ./cmd/pogo-bench -run table3 -csv /tmp/pogo-determinism-b > /dev/null
	@diff -r /tmp/pogo-determinism-a /tmp/pogo-determinism-b \
		&& echo "determinism: accounting.csv + timeseries.csv byte-identical" \
		|| (echo "determinism: same-seed runs diverged (see diff above)"; exit 1)

# latency-gate reruns the trace-span delivery-latency SLO benchmark and
# compares the per-topic p50/p95/p99 against the checked-in
# BENCH_latency.json. The figures are simulated-time exact per seed, so the
# comparison is exact too: any drift means the delivery path's timing
# changed. After an intentional change, refresh the baseline with
# `go run ./cmd/pogo-bench -run latency` and commit the new JSON.
latency-gate:
	$(GO) run ./cmd/pogo-bench -run latency -seed 1 -gate

# flight-smoke forces a chaos audit failure (the post-window drain is
# sabotaged, so messages stay genuinely in flight) and asserts the flight
# recorder dumps a loadable span-store snapshot whose in-flight traces
# reconstruct their publish→deliver paths.
flight-smoke:
	@rm -f /tmp/pogo-flight.json
	@! $(GO) run ./cmd/pogo-bench -run chaos -sabotage-drain -flightout /tmp/pogo-flight.json > /dev/null 2>&1 \
		|| (echo "flight-smoke: sabotaged run unexpectedly passed its audit"; exit 1)
	@test -s /tmp/pogo-flight.json \
		|| (echo "flight-smoke: no dump written"; exit 1)
	$(GO) run ./cmd/pogo-bench -verify-flight /tmp/pogo-flight.json
	@echo "flight-smoke: ok"

# doctor-smoke is the alerting end-to-end check: pogo-doctor builds a short
# chaos world with a rigged duplicate delivery, serves its registry over
# loopback HTTP, and runs its own health battery against it. The smoke passes
# only if the battery detects trouble AND the expected rules are firing —
# proving the rule pack, the /alerts endpoint, and the doctor's checks agree.
doctor-smoke:
	$(GO) run ./cmd/pogo-doctor -selftest -expect exactly_once_violation,delivery_latency_slo
	@echo "doctor-smoke: ok"

# trace-demo runs the 50-phone chaos scenario matrix with causal tracing
# attached and writes the final (heaviest) scenario's span timeline to
# trace.json — load it at ui.perfetto.dev or chrome://tracing.
trace-demo:
	$(GO) run ./cmd/pogo-bench -run chaos -seed 1 -traceout trace.json
	@echo "trace-demo: open trace.json in ui.perfetto.dev (or chrome://tracing)"

# Library packages must never write to stdout/stderr directly — script
# output goes through core.LogStore and diagnostics through internal/obs.
# (Example* functions in _test.go files are exempt: go test requires them
# to print.)
stdout-guard:
	@! grep -rn --include='*.go' -E '\b(fmt|log)\.Print(f|ln)?\(' internal/ \
		| grep -v _test.go \
		| grep . && echo "stdout-guard: ok" || (echo "stdout-guard: stray print in internal/ (see above)"; exit 1)
