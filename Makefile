GO ?= go

.PHONY: build test bench check chaos determinism fleet fuzz-smoke stdout-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# check is the tier-1 gate: vet, the full test suite under the race
# detector, the library-stdout guard, and a short fuzz smoke of the two
# wire-facing parsers.
check: stdout-guard
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) determinism
	$(MAKE) fleet

# fuzz-smoke gives the coverage-guided fuzzers a brief shake on every check;
# run `go test -fuzz . -fuzztime 5m ./internal/xmpp` (or /msg) for a real
# session.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/xmpp
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/msg

# chaos replays the seeded fault-injection scenario matrix (drop, duplicate,
# corrupt, delay, partition, churn at three fault levels) under the race
# detector, then regenerates the BENCH_chaos.json baseline via pogo-bench.
chaos:
	$(GO) test -race -v -run 'Chaos|Soak' ./internal/experiments ./internal/core
	$(GO) run -race ./cmd/pogo-bench -run chaos -seed 1

# fleet runs the sharded parallel fleet benchmark twice with the same seed
# and requires the merged delivery logs to be byte-identical: the
# epoch-barrier engine must make shard parallelism invisible to the
# simulation. Each invocation additionally hard-fails if the log hash
# varies across the shard-count sweep (1, 2, 4), and refreshes
# BENCH_fleet.json. The engine/scenario regression tests run under -race
# as part of `make test`/`make check` already.
fleet:
	@rm -f /tmp/pogo-fleet-a.log /tmp/pogo-fleet-b.log
	$(GO) run ./cmd/pogo-bench -run fleet -seed 1 -fleet-log /tmp/pogo-fleet-a.log
	$(GO) run ./cmd/pogo-bench -run fleet -seed 1 -fleet-log /tmp/pogo-fleet-b.log > /dev/null
	@cmp /tmp/pogo-fleet-a.log /tmp/pogo-fleet-b.log \
		&& echo "fleet: delivery logs byte-identical across same-seed runs" \
		|| (echo "fleet: same-seed runs diverged"; exit 1)

# determinism runs the seeded Table 3 benchmark twice and requires the
# ledger accounting and simulated-time series exports to be byte-identical:
# attribution that varies between same-seed runs is a bug, not noise.
determinism:
	@rm -rf /tmp/pogo-determinism-a /tmp/pogo-determinism-b
	$(GO) run ./cmd/pogo-bench -run table3 -csv /tmp/pogo-determinism-a > /dev/null
	$(GO) run ./cmd/pogo-bench -run table3 -csv /tmp/pogo-determinism-b > /dev/null
	@diff -r /tmp/pogo-determinism-a /tmp/pogo-determinism-b \
		&& echo "determinism: accounting.csv + timeseries.csv byte-identical" \
		|| (echo "determinism: same-seed runs diverged (see diff above)"; exit 1)

# Library packages must never write to stdout/stderr directly — script
# output goes through core.LogStore and diagnostics through internal/obs.
# (Example* functions in _test.go files are exempt: go test requires them
# to print.)
stdout-guard:
	@! grep -rn --include='*.go' -E '\b(fmt|log)\.Print(f|ln)?\(' internal/ \
		| grep -v _test.go \
		| grep . && echo "stdout-guard: ok" || (echo "stdout-guard: stray print in internal/ (see above)"; exit 1)
