GO ?= go

.PHONY: build test bench check stdout-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# check is the tier-1 gate: vet, the full test suite under the race
# detector, and the library-stdout guard.
check: stdout-guard
	$(GO) vet ./...
	$(GO) test -race ./...

# Library packages must never write to stdout/stderr directly — script
# output goes through core.LogStore and diagnostics through internal/obs.
# (Example* functions in _test.go files are exempt: go test requires them
# to print.)
stdout-guard:
	@! grep -rn --include='*.go' -E '\b(fmt|log)\.Print(f|ln)?\(' internal/ \
		| grep -v _test.go \
		| grep . && echo "stdout-guard: ok" || (echo "stdout-guard: stray print in internal/ (see above)"; exit 1)
