GO ?= go

.PHONY: build test bench check chaos fuzz-smoke stdout-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# check is the tier-1 gate: vet, the full test suite under the race
# detector, the library-stdout guard, and a short fuzz smoke of the two
# wire-facing parsers.
check: stdout-guard
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke

# fuzz-smoke gives the coverage-guided fuzzers a brief shake on every check;
# run `go test -fuzz . -fuzztime 5m ./internal/xmpp` (or /msg) for a real
# session.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/xmpp
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/msg

# chaos replays the seeded fault-injection scenario matrix (drop, duplicate,
# corrupt, delay, partition, churn at three fault levels) under the race
# detector, then regenerates the BENCH_chaos.json baseline via pogo-bench.
chaos:
	$(GO) test -race -v -run 'Chaos|Soak' ./internal/experiments ./internal/core
	$(GO) run -race ./cmd/pogo-bench -run chaos -seed 1

# Library packages must never write to stdout/stderr directly — script
# output goes through core.LogStore and diagnostics through internal/obs.
# (Example* functions in _test.go files are exempt: go test requires them
# to print.)
stdout-guard:
	@! grep -rn --include='*.go' -E '\b(fmt|log)\.Print(f|ln)?\(' internal/ \
		| grep -v _test.go \
		| grep . && echo "stdout-guard: ok" || (echo "stdout-guard: stray print in internal/ (see above)"; exit 1)
