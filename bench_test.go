package pogo

// One benchmark per table and figure of the paper's evaluation (§5), plus
// the ablations. Each runs the same harness cmd/pogo-bench uses and reports
// the headline quantity as a custom metric, so `go test -bench=.` both
// regenerates the results and tracks the cost of regenerating them.
//
// Table 4 is benchmarked at reduced scale (two sessions, three days) to
// keep -bench runs in seconds; the full 24-day, 9-session experiment is
// `go run ./cmd/pogo-bench -run table4`.

import (
	"testing"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/radio"
)

func BenchmarkTable2ProgramComplexity(b *testing.B) {
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.SLOC
		}
	}
	b.ReportMetric(float64(total), "sloc")
}

func BenchmarkTable3PowerConsumption(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3()
	}
	for _, r := range rows {
		b.ReportMetric(r.IncreasePct, r.Carrier+"-increase-%")
	}
}

func BenchmarkTable4Localization(b *testing.B) {
	b.ReportAllocs()
	days := 3
	dur := time.Duration(days) * 24 * time.Hour
	sessions := []experiments.SessionConfig{
		{User: "User 1", DeviceID: "dev1", Duration: dur, Seed: 101,
			Faults: []experiments.Fault{{Kind: experiments.FaultReboot, At: dur / 2}}},
		{User: "User 2", DeviceID: "dev2", Duration: dur, Seed: 102,
			Faults: []experiments.Fault{{Kind: experiments.FaultOffline, At: dur / 4, Until: dur * 7 / 8}}},
	}
	var res experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(experiments.Table4Config{Seed: 1, Days: days, Sessions: sessions})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.ReductionPct, "data-reduction-%")
	b.ReportMetric(float64(res.TotalScans), "scans")
	if len(res.Rows) > 0 {
		b.ReportMetric(res.Rows[0].MatchPct, "user1-match-%")
	}
}

func BenchmarkFigure3TailTrace(b *testing.B) {
	b.ReportAllocs()
	var f experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		f = experiments.Figure3(radio.KPN)
	}
	b.ReportMetric(f.Marks.D.Sub(f.Marks.B).Seconds(), "tail-s")
	b.ReportMetric(f.TailEnergy, "tail-J")
}

func BenchmarkFigure4TailSyncTimeline(b *testing.B) {
	b.ReportAllocs()
	var f experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		f = experiments.Figure4(16 * time.Minute)
	}
	pogoTx := 0
	for _, s := range f.Spans {
		if s.Name == "pogo-tx" {
			pogoTx++
		}
	}
	b.ReportMetric(float64(pogoTx), "pogo-tx-bursts")
}

func BenchmarkAblationFlushPolicies(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.FlushPolicyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationFlushPolicies()
	}
	for _, r := range rows {
		if r.Policy == "tail-sync (Pogo)" {
			b.ReportMetric(r.IncreasePct, "tailsync-increase-%")
		}
		if r.Policy == "immediate" {
			b.ReportMetric(r.IncreasePct, "immediate-increase-%")
		}
	}
}

func BenchmarkAblationDetectorPolling(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.DetectorPollingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationDetectorPolling()
	}
	b.ReportMetric(rows[1].Joules-rows[0].Joules, "alarm-penalty-J")
}

func BenchmarkAblationSensorGating(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.SensorGatingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationSensorGating()
	}
	b.ReportMetric(rows[1].Joules-rows[0].Joules, "gating-savings-J")
}

func BenchmarkAblationFreezeThaw(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.FreezeThawRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFreezeThaw(2)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[1].MatchPct-rows[0].MatchPct, "match-improvement-pp")
}

// BenchmarkFleet runs the sharded parallel fleet scenario at bench scale
// (200 phones — the full 2,000-phone sweep is `pogo-bench -run fleet`) and
// reports simulated-event throughput. Run with -cpu 1,4 to see the
// epoch-barrier engine scale with cores.
func BenchmarkFleet(b *testing.B) {
	b.ReportAllocs()
	shards := 4
	var res experiments.FleetResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.FleetScenario(1, 200, shards)
		res = experiments.Fleet(cfg)
		if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
			b.Fatalf("delivery guarantee violated: %+v", res)
		}
	}
	b.ReportMetric(res.EventsPerSec, "sim-events/s")
}
