package main

// The connection-scaling harness. `pogo-bench -run connscale -conns N`
// drives N simulated concurrent XMPP connections — one memnet switchboard
// port plus a full reliable-transport endpoint per phone, all funneling into
// a single collector — and measures delivery throughput as the connection
// count grows. Each sweep point becomes a connscale_<n>_conns row in
// BENCH_hotpath.json (ns, B, allocs per delivered message), sitting next to
// the per-op transport_roundtrip row so the two baselines travel together.
// runHotpath preserves these rows when it rewrites the file, and the bench
// gate treats them like any other row when both sides have them.
//
// With -gate the sweep only verifies the exactly-once contract at scale
// (every message delivered, none duplicated, outboxes drained) and leaves
// the baseline file untouched — that is the CI smoke mode `make
// connscale-smoke` uses with a small -conns.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// connscaleWaves is how many messages each connection sends, as separate
// enqueue→flush→deliver→ack rounds, so per-connection steady state (dedup
// cursors, sequence maps, retry timers) is exercised rather than first-touch
// cost only.
const connscaleWaves = 3

// connscaleSweep picks the sweep points for a target connection count: the
// decades below it plus the target itself, so one run records the whole
// connections-vs-throughput curve.
func connscaleSweep(conns int) []int {
	var sweep []int
	for _, n := range []int{1000, 10000, 100000} {
		if n < conns {
			sweep = append(sweep, n)
		}
	}
	return append(sweep, conns)
}

// connscaleRun builds an n-connection world and measures one full send
// matrix through it. Returns the hotpath-style row plus the wall-clock
// throughput in delivered messages per second.
func connscaleRun(n int) (hotpathResult, float64, error) {
	clk := vclock.NewSim()
	sw := transport.NewSwitchboard(clk)
	collector := transport.NewEndpoint(sw.Port("collector", nil), store.OpenMemory(), clk,
		transport.EndpointConfig{BootID: "connscale"})
	delivered := 0
	collector.OnMessage(func(string, string, any) { delivered++ })

	phones := make([]*transport.Endpoint, n)
	for i := range phones {
		name := "d" + strconv.Itoa(i)
		sw.Associate(name, "collector")
		phones[i] = transport.NewEndpoint(sw.Port(name, nil), store.OpenMemory(), clk,
			transport.EndpointConfig{BootID: "connscale"})
	}
	payload := hotpathPayload()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for w := 0; w < connscaleWaves; w++ {
		for _, p := range phones {
			if err := p.Enqueue("collector", "bench", payload); err != nil {
				return hotpathResult{}, 0, err
			}
		}
		for _, p := range phones {
			p.Flush()
		}
		clk.Advance(2 * time.Second) // wire latency + acks for the whole wave
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	want := connscaleWaves * n
	if delivered != want {
		return hotpathResult{}, 0, fmt.Errorf("connscale %d conns: delivered %d of %d", n, delivered, want)
	}
	if d := collector.Stats().Duplicates; d != 0 {
		return hotpathResult{}, 0, fmt.Errorf("connscale %d conns: %d duplicate deliveries", n, d)
	}
	pending := 0
	for _, p := range phones {
		pending += p.Pending()
	}
	if pending != 0 {
		return hotpathResult{}, 0, fmt.Errorf("connscale %d conns: %d messages unacked after drain", n, pending)
	}

	msgs := float64(want)
	row := hotpathResult{
		Name:        "connscale_" + strconv.Itoa(n) + "_conns",
		NsPerOp:     float64(elapsed.Nanoseconds()) / msgs,
		BytesPerOp:  int64(float64(m1.TotalAlloc-m0.TotalAlloc) / msgs),
		AllocsPerOp: int64(float64(m1.Mallocs-m0.Mallocs) / msgs),
	}
	return row, msgs / elapsed.Seconds(), nil
}

// runConnscale sweeps the connection counts up to conns. verifyOnly (the
// -gate flag) skips the baseline write: CI smoke asserts the delivery
// contract at scale without touching committed files.
func runConnscale(conns int, verifyOnly bool) error {
	if conns <= 0 {
		conns = 100000
	}
	sweep := connscaleSweep(conns)
	if verifyOnly {
		// Smoke mode measures just the requested count; the sweep decades
		// below it add nothing to the contract check.
		sweep = []int{conns}
	}
	rows := make([]hotpathResult, 0, len(sweep))
	for _, n := range sweep {
		row, throughput, err := connscaleRun(n)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		fmt.Printf("%-24s %12.1f ns/msg %10d B/msg %8d allocs/msg %12.0f msgs/s\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, throughput)
	}
	if verifyOnly {
		fmt.Printf("connscale: %d connections, exactly-once contract held, baseline untouched\n", conns)
		return nil
	}
	if err := mergeHotpathRows(rows); err != nil {
		return err
	}
	fmt.Printf("connscale rows merged into %s\n", hotpathFileName)
	return nil
}

// mergeHotpathRows read-modify-writes BENCH_hotpath.json: rows with the same
// name are replaced in place, new rows are appended, everything else —
// including the microbenchmark suite's rows — is preserved verbatim.
func mergeHotpathRows(rows []hotpathResult) error {
	var file hotpathFile
	if data, err := os.ReadFile(hotpathFileName); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("corrupt baseline %s: %v", hotpathFileName, err)
		}
	}
	for _, row := range rows {
		replaced := false
		for i := range file.Results {
			if file.Results[i].Name == row.Name {
				file.Results[i] = row
				replaced = true
				break
			}
		}
		if !replaced {
			file.Results = append(file.Results, row)
		}
	}
	if file.Note == "" {
		file.Note = "hot-path baseline; `pogo-bench -run hotpath -gate` (make bench-gate) fails on >15% B/op or allocs/op regressions"
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(hotpathFileName, append(b, '\n'), 0o644)
}
