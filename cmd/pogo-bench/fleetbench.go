package main

// The fleet scaling benchmark and its memory-diet regression gate.
// `pogo-bench -run fleet` sweeps the sharded fleet simulation over shard and
// process counts, hard-fails unless every split of a given (seed, phones)
// preserves the exactly-once audit AND the same delivery-log SHA-256, and
// merges the rows into BENCH_fleet.json. `-fleet-scale 10000,100000` appends
// the phones-vs-throughput scaling curve. With -gate it instead replays the
// canonical 2000-phone row and fails on fleet_bytes_per_phone or
// allocs_per_delivery regressions (see gateFleetDiet).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pogo/internal/experiments"
	"pogo/internal/obs"
)

const fleetFileName = "BENCH_fleet.json"

// fleetBenchRun is one row of BENCH_fleet.json: a FleetResult (which carries
// its own phones/shards/procs coordinates) plus the wall-clock speedup
// against the shards=1, procs=1 run of the same fleet size.
type fleetBenchRun struct {
	experiments.FleetResult
	SpeedupVs1Shard float64 `json:"speedup_vs_1_shard"`
}

// fleetBench is the BENCH_fleet.json schema. NumCPU/GOMAXPROCS record the
// machine the wall-clock figures were taken on: the delivery-log hash,
// allocs_per_delivery and fleet_bytes_per_phone are machine-independent, the
// wall-clock columns are not — on a box with fewer cores than workers the
// speedup is flat and cpu_seconds is what attributes the work.
type fleetBench struct {
	Seed       int64           `json:"seed"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Runs       []fleetBenchRun `json:"runs"`
}

// fleetCombo is one (phones, shards, procs) point of the sweep.
type fleetCombo struct {
	phones, shards, procs int
}

// fleetSweep builds the default sweep: shard counts 1, 2, 4, … up to
// maxShards in-process, plus the widest shard count split over two worker
// processes. Scale sizes each get the three points that make the curve
// readable: serial (1×1), sharded (8×1), and sharded multi-process (8×2).
func fleetSweep(phones, maxShards int, scaleSizes []int) []fleetCombo {
	combos := []fleetCombo{{phones, 1, 1}}
	for k := 2; k < maxShards; k *= 2 {
		combos = append(combos, fleetCombo{phones, k, 1})
	}
	if maxShards > 1 {
		combos = append(combos, fleetCombo{phones, maxShards, 1})
		combos = append(combos, fleetCombo{phones, maxShards, 2})
	}
	for _, n := range scaleSizes {
		combos = append(combos,
			fleetCombo{n, 1, 1},
			fleetCombo{n, 8, 1},
			fleetCombo{n, 8, 2})
	}
	return combos
}

func parseFleetScale(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -fleet-scale entry %q (want positive integers, e.g. 10000,100000)", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// runFleet executes the sweep. Every run must preserve the exactly-once
// delivery guarantee, and every run of the same fleet size must produce the
// same delivery-log hash as that size's 1-shard, 1-process run — the
// partitioning, in-process or across workers, must be invisible to the
// simulation. Rows merge into BENCH_fleet.json keyed by (phones, shards,
// procs), so a scale sweep and the default sweep accumulate into one file.
// With -fleet-log the merged delivery log of the last base-size run is
// written out so `make fleet` can diff two same-seed invocations.
func runFleet(seed int64, phones, maxShards int, fleetScale, logPath, traceOut string) error {
	if phones == 0 {
		phones = 2000
	}
	if maxShards == 0 {
		maxShards = 4
		if n := runtime.NumCPU(); n > maxShards {
			maxShards = n
		}
	}
	scaleSizes, err := parseFleetScale(fleetScale)
	if err != nil {
		return err
	}
	combos := fleetSweep(phones, maxShards, scaleSizes)

	baseHash := make(map[int]string) // phones → 1×1 hash
	baseWall := make(map[int]float64)
	var runs []fleetBenchRun
	var lastLog []string
	var lastReg *obs.Registry
	for _, c := range combos {
		cfg := experiments.FleetScenario(seed, c.phones, c.shards)
		cfg.Procs = c.procs
		cfg.KeepLog = logPath != "" && c.phones == phones
		if traceOut != "" && c.procs == 1 {
			// A fresh registry per run: spans from different shard counts must
			// not mix (same seed means identical trace IDs across runs).
			lastReg = obs.NewRegistry()
			cfg.Obs = lastReg
		}
		var res experiments.FleetResult
		if c.procs > 1 {
			if res, err = experiments.FleetMultiproc(cfg, nil); err != nil {
				return fmt.Errorf("fleet phones=%d shards=%d procs=%d: %w", c.phones, c.shards, c.procs, err)
			}
		} else {
			res = experiments.Fleet(cfg)
		}
		if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
			return fmt.Errorf("fleet phones=%d shards=%d procs=%d violated the delivery guarantee: lost=%d dup=%d ooo=%d undrained=%d",
				c.phones, c.shards, c.procs, res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
		}
		if ref, ok := baseHash[c.phones]; !ok {
			baseHash[c.phones] = res.LogSHA256
			baseWall[c.phones] = res.WallSeconds
		} else if res.LogSHA256 != ref {
			return fmt.Errorf("fleet phones=%d shards=%d procs=%d: delivery log hash %s differs from 1-shard hash %s (determinism broken)",
				c.phones, c.shards, c.procs, res.LogSHA256, ref)
		}
		run := fleetBenchRun{FleetResult: res}
		if res.WallSeconds > 0 {
			run.SpeedupVs1Shard = baseWall[c.phones] / res.WallSeconds
		}
		runs = append(runs, run)
		if cfg.KeepLog {
			lastLog = res.Log
		}
		fmt.Printf("fleet phones=%d shards=%d procs=%d seed=%d collectors=%d: %d/%d delivered, epochs=%d, events=%d, cross-shard=%d\n",
			res.Phones, res.Shards, res.Procs, res.Seed, res.Collectors,
			res.Delivered, res.Expected, res.Epochs, res.Events, res.CrossShard)
		fmt.Printf("  %.1f sim-s in %.2f wall-s (%.2f cpu-s): %.0f events/s, %.0f deliveries/s, speedup vs 1 shard %.2fx\n",
			res.SimSeconds, res.WallSeconds, res.CPUSeconds, res.EventsPerSec, res.DeliveriesPerSec, run.SpeedupVs1Shard)
		fmt.Printf("  %.0f B/phone live heap, %.1f allocs/delivery\n", res.BytesPerPhone, res.AllocsPerDelivery)
		fmt.Printf("  delivery log sha256: %s\n", res.LogSHA256)
	}
	for _, n := range append([]int{phones}, scaleSizes...) {
		fmt.Printf("determinism: phones=%d, identical delivery-log hash %s across every (shards x procs) split\n", n, baseHash[n])
	}
	if runtime.NumCPU() < maxShards {
		fmt.Printf("note: only %d CPU(s) available; wall-clock speedup needs as many cores as workers (cpu_seconds attributes the work regardless)\n", runtime.NumCPU())
	}

	if logPath != "" {
		data := strings.Join(lastLog, "\n") + "\n"
		if err := os.WriteFile(logPath, []byte(data), 0o644); err != nil {
			return err
		}
		fmt.Printf("delivery log (%d entries) written to %s\n", len(lastLog), logPath)
	}
	if traceOut != "" {
		if err := writeTraceFile(traceOut, lastReg); err != nil {
			return err
		}
	}
	if err := mergeFleetRows(seed, runs); err != nil {
		return err
	}
	fmt.Printf("baseline written to %s\n", fleetFileName)
	return nil
}

// mergeFleetRows folds fresh rows into BENCH_fleet.json keyed by (phones,
// shards, procs): the default 2000-phone sweep and the -fleet-scale curve are
// recorded by separate invocations but live in one file. A seed change
// invalidates every hash, so the file restarts from scratch.
func mergeFleetRows(seed int64, fresh []fleetBenchRun) error {
	bench := fleetBench{Seed: seed, NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if data, err := os.ReadFile(fleetFileName); err == nil {
		var old fleetBench
		if json.Unmarshal(data, &old) == nil && old.Seed == seed {
			bench.Runs = old.Runs
		}
	}
	for _, f := range fresh {
		replaced := false
		for i, r := range bench.Runs {
			if r.Phones == f.Phones && r.Shards == f.Shards && r.Procs == f.Procs {
				bench.Runs[i] = f
				replaced = true
				break
			}
		}
		if !replaced {
			bench.Runs = append(bench.Runs, f)
		}
	}
	sort.Slice(bench.Runs, func(i, j int) bool {
		a, b := bench.Runs[i], bench.Runs[j]
		if a.Phones != b.Phones {
			return a.Phones < b.Phones
		}
		if a.Shards != b.Shards {
			return a.Shards < b.Shards
		}
		return a.Procs < b.Procs
	})
	b, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(fleetFileName, append(b, '\n'), 0o644)
}

// Memory-diet gate slacks, in the spirit of the hotpath gate's: a change must
// exceed both the 15% threshold and an absolute floor to fail. The live-heap
// measurement jitters a couple hundred bytes per phone with GC timing, so the
// bytes floor is half a kilobyte — a genuine diet regression (reverting any
// one of the pooled structures) costs kilobytes per phone and still trips it.
// allocs_per_delivery is exact per seed; its floor only absorbs rounding.
const (
	gateSlackBytesPerPhone     = 512.0
	gateSlackAllocsPerDelivery = 2.0
)

// gateFleetDiet replays the canonical 2000-phone, 4-shard row and compares
// the two machine-independent memory metrics against the checked-in baseline:
// fleet_bytes_per_phone (the per-device footprint the 100k diet is budgeted
// against) and allocs_per_delivery. Either worse by >15% (past its slack)
// fails the build; wall-clock deltas are printed but advisory, same policy as
// the hotpath gate. The delivery-log hash must match the baseline exactly —
// a hash drift is a determinism break, not a perf regression.
func gateFleetDiet(seed int64) error {
	data, err := os.ReadFile(fleetFileName)
	if err != nil {
		return fmt.Errorf("no baseline (%v); run `pogo-bench -run fleet` and commit %s", err, fleetFileName)
	}
	var base fleetBench
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("corrupt baseline %s: %v", fleetFileName, err)
	}
	if base.Seed != seed {
		return fmt.Errorf("baseline %s was recorded with seed %d, gate run with seed %d", fleetFileName, base.Seed, seed)
	}
	const phones, shards = 2000, 4
	var ref *fleetBenchRun
	for i := range base.Runs {
		r := &base.Runs[i]
		if r.Phones == phones && r.Shards == shards && r.Procs == 1 {
			ref = r
			break
		}
	}
	if ref == nil {
		return fmt.Errorf("baseline %s has no phones=%d shards=%d procs=1 row; run `pogo-bench -run fleet` to record it", fleetFileName, phones, shards)
	}

	res := experiments.Fleet(experiments.FleetScenario(seed, phones, shards))
	if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
		return fmt.Errorf("fleet gate run violated the delivery guarantee: lost=%d dup=%d ooo=%d undrained=%d",
			res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
	}
	if res.LogSHA256 != ref.LogSHA256 {
		return fmt.Errorf("fleet gate: delivery-log hash %s differs from baseline %s (determinism broken; if the workload changed intentionally, refresh %s and the fleet txtar pins)",
			res.LogSHA256, ref.LogSHA256, fleetFileName)
	}

	pct := func(old, new float64) float64 {
		if old == 0 {
			if new == 0 {
				return 0
			}
			return 100
		}
		return 100 * (new - old) / old
	}
	dBytes := pct(ref.BytesPerPhone, res.BytesPerPhone)
	dAllocs := pct(ref.AllocsPerDelivery, res.AllocsPerDelivery)
	dWall := pct(ref.WallSeconds, res.WallSeconds)
	fmt.Printf("fleet gate vs %s (phones=%d shards=%d; fail: B/phone or allocs/delivery worse by >%.0f%%; wall advisory)\n",
		fleetFileName, phones, shards, gateThresholdPct)
	fmt.Printf("  %-22s %10.0f -> %10.0f  %+.1f%%\n", "fleet_bytes_per_phone", ref.BytesPerPhone, res.BytesPerPhone, dBytes)
	fmt.Printf("  %-22s %10.1f -> %10.1f  %+.1f%%\n", "allocs_per_delivery", ref.AllocsPerDelivery, res.AllocsPerDelivery, dAllocs)
	fmt.Printf("  %-22s %10.2f -> %10.2f  %+.1f%% (advisory)\n", "wall_seconds", ref.WallSeconds, res.WallSeconds, dWall)
	failures := 0
	if dBytes > gateThresholdPct && res.BytesPerPhone-ref.BytesPerPhone > gateSlackBytesPerPhone {
		fmt.Println("  FAIL fleet_bytes_per_phone")
		failures++
	}
	if dAllocs > gateThresholdPct && res.AllocsPerDelivery-ref.AllocsPerDelivery > gateSlackAllocsPerDelivery {
		fmt.Println("  FAIL allocs_per_delivery")
		failures++
	}
	if failures > 0 {
		return fmt.Errorf("fleet gate: %d memory regression(s); if intended, regenerate the baseline with `pogo-bench -run fleet`", failures)
	}
	fmt.Println("fleet gate: PASS")
	return nil
}
