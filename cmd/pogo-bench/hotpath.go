package main

// The hot-path microbenchmark suite and its regression gate. `pogo-bench
// -run hotpath` measures the zero-copy message path — broker fanout, the
// msg codecs, and a full transport round trip — with testing.Benchmark and
// records ns/op, B/op, allocs/op to BENCH_hotpath.json. With -gate it
// instead compares a fresh run against the checked-in baseline and fails on
// regressions (see gateHotpath for the thresholds and their rationale).

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

const hotpathFileName = "BENCH_hotpath.json"

// hotpathResult is one benchmark row of BENCH_hotpath.json.
type hotpathResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type hotpathFile struct {
	Note    string          `json:"note"`
	Results []hotpathResult `json:"results"`
}

// hotpathPayload is a representative sensor reading: what a phone's battery
// or wifi script publishes every few seconds.
func hotpathPayload() msg.Map {
	return msg.Map{
		"voltage":   4.1,
		"level":     0.93,
		"plugged":   false,
		"timestamp": 1.7e12,
		"aps": []msg.Value{
			msg.Map{"bssid": "02:1b:77:49:54:fd", "rssi": -61.0},
			msg.Map{"bssid": "02:1b:77:1f:02:aa", "rssi": -74.0},
		},
	}
}

// hotpathBenchmarks returns the suite in display order. Each entry is a
// standard testing benchmark body; allocations are always reported.
func hotpathBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"publish_fanout_1k", func(b *testing.B) {
			br := pubsub.New()
			for i := 0; i < 1000; i++ {
				br.Subscribe("bench", nil, func(pubsub.Event) {})
			}
			payload := hotpathPayload()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish("bench", payload)
			}
		}},
		{"publish_fanout_1k_prefrozen", func(b *testing.B) {
			br := pubsub.New()
			for i := 0; i < 1000; i++ {
				br.Subscribe("bench", nil, func(pubsub.Event) {})
			}
			payload := msg.Freeze(hotpathPayload())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Publish("bench", payload)
			}
		}},
		{"msg_encode_binary", func(b *testing.B) {
			payload := hotpathPayload()
			var buf []byte
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf, err = msg.AppendBinary(buf[:0], payload); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"msg_decode_binary", func(b *testing.B) {
			wire, err := msg.AppendBinary(nil, hotpathPayload())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := msg.DecodeBinary(wire); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"msg_encode_json", func(b *testing.B) {
			payload := hotpathPayload()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := msg.EncodeJSON(payload); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"msg_decode_json", func(b *testing.B) {
			wire, err := msg.EncodeJSON(hotpathPayload())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := msg.DecodeJSON(wire); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"transport_roundtrip", func(b *testing.B) {
			// Full reliable-delivery round trip on the simulated switchboard:
			// enqueue → binary envelope → CRC frame → wire → decode →
			// deduplicate → deliver → ack, all in simulated time.
			clk := vclock.NewSim()
			sw := transport.NewSwitchboard(clk)
			sw.Associate("phone", "collector")
			phone := transport.NewEndpoint(sw.Port("phone", nil), store.OpenMemory(), clk,
				transport.EndpointConfig{BootID: "bench"})
			collector := transport.NewEndpoint(sw.Port("collector", nil), store.OpenMemory(), clk,
				transport.EndpointConfig{BootID: "bench"})
			delivered := 0
			collector.OnMessage(func(string, string, msg.Value) { delivered++ })
			payload := hotpathPayload()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := phone.Enqueue("collector", "bench", payload); err != nil {
					b.Fatal(err)
				}
				phone.Flush()
				clk.Advance(20 * time.Millisecond) // wire latency + ack
			}
			b.StopTimer()
			if delivered != b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
		}},
		{"transport_roundtrip_1k_conns", func(b *testing.B) {
			// The same round trip with 1000 live connections on the
			// switchboard: per-op cost must not degrade as rosters, dedup
			// cursors, and sequence maps grow with the fleet. This is the
			// gated companion of the connscale_<n>_conns sweep rows.
			const conns = 1000
			clk := vclock.NewSim()
			sw := transport.NewSwitchboard(clk)
			collector := transport.NewEndpoint(sw.Port("collector", nil), store.OpenMemory(), clk,
				transport.EndpointConfig{BootID: "bench"})
			delivered := 0
			collector.OnMessage(func(string, string, msg.Value) { delivered++ })
			phones := make([]*transport.Endpoint, conns)
			for i := range phones {
				name := "d" + strconv.Itoa(i)
				sw.Associate(name, "collector")
				phones[i] = transport.NewEndpoint(sw.Port(name, nil), store.OpenMemory(), clk,
					transport.EndpointConfig{BootID: "bench"})
			}
			payload := hotpathPayload()
			// Prime every connection once so the bench measures steady
			// state, not first-touch map growth.
			for _, p := range phones {
				if err := p.Enqueue("collector", "bench", payload); err != nil {
					b.Fatal(err)
				}
				p.Flush()
			}
			clk.Advance(20 * time.Millisecond)
			primed := delivered
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := phones[i%conns]
				if err := p.Enqueue("collector", "bench", payload); err != nil {
					b.Fatal(err)
				}
				p.Flush()
				clk.Advance(20 * time.Millisecond)
			}
			b.StopTimer()
			if delivered != primed+b.N {
				b.Fatalf("delivered %d of %d", delivered-primed, b.N)
			}
		}},
	}
}

// runHotpath measures the suite and either records a new baseline or (gate)
// compares against the checked-in one.
func runHotpath(gate bool) error {
	fresh := make([]hotpathResult, 0, 8)
	for _, bench := range hotpathBenchmarks() {
		r := testing.Benchmark(bench.fn)
		res := hotpathResult{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fresh = append(fresh, res)
		fmt.Printf("%-28s %12.1f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	if gate {
		return gateHotpath(fresh)
	}
	// Merge rather than overwrite: the connscale_<n>_conns sweep rows
	// recorded by `-run connscale` live in the same file and must survive a
	// suite baseline refresh.
	if err := mergeHotpathRows(fresh); err != nil {
		return err
	}
	fmt.Printf("baseline written to %s\n", hotpathFileName)
	return nil
}

// gateThresholdPct is the regression budget: a fresh run may exceed the
// baseline by up to 15% before the gate fails. B/op and allocs/op are hard
// failures — allocation counts are a property of the code, not the machine,
// so any real increase is a code regression. ns/op only warns: wall-clock
// shifts with the host, so it is signal for a human, not for CI.
const gateThresholdPct = 15.0

// gateSlack absorbs quantization on tiny baselines: a change must exceed
// both the percentage threshold and this absolute floor (2 allocs, 64 bytes)
// to fail, so a 1→2 allocs/op jitter on a near-zero row does not break CI.
const (
	gateSlackAllocs = 2
	gateSlackBytes  = 64
)

func gateHotpath(fresh []hotpathResult) error {
	data, err := os.ReadFile(hotpathFileName)
	if err != nil {
		return fmt.Errorf("no baseline (%v); run `pogo-bench -run hotpath` and commit %s", err, hotpathFileName)
	}
	var base hotpathFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("corrupt baseline %s: %v", hotpathFileName, err)
	}
	baseline := make(map[string]hotpathResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}

	pct := func(old, new float64) float64 {
		if old == 0 {
			if new == 0 {
				return 0
			}
			return 100
		}
		return 100 * (new - old) / old
	}
	fmt.Printf("\nbench gate vs %s (fail: B/op or allocs/op worse by >%.0f%%; ns/op advisory)\n",
		hotpathFileName, gateThresholdPct)
	fmt.Printf("%-28s %14s %14s %14s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs/op Δ")
	failures := 0
	for _, f := range fresh {
		b, ok := baseline[f.Name]
		if !ok {
			fmt.Printf("%-28s %14s %14s %14s  (new: no baseline)\n", f.Name, "-", "-", "-")
			continue
		}
		dNs := pct(b.NsPerOp, f.NsPerOp)
		dBytes := pct(float64(b.BytesPerOp), float64(f.BytesPerOp))
		dAllocs := pct(float64(b.AllocsPerOp), float64(f.AllocsPerOp))
		verdict := ""
		if dBytes > gateThresholdPct && f.BytesPerOp-b.BytesPerOp > gateSlackBytes {
			verdict = "FAIL B/op"
			failures++
		}
		if dAllocs > gateThresholdPct && f.AllocsPerOp-b.AllocsPerOp > gateSlackAllocs {
			if verdict != "" {
				verdict += "+allocs"
			} else {
				verdict = "FAIL allocs/op"
			}
			failures++
		}
		if verdict == "" && dNs > gateThresholdPct {
			verdict = "warn ns/op (advisory)"
		}
		fmt.Printf("%-28s %+13.1f%% %+13.1f%% %+13.1f%%  %s\n", f.Name, dNs, dBytes, dAllocs, verdict)
	}
	for name := range baseline {
		if strings.HasPrefix(name, "connscale_") {
			continue // recorded by `-run connscale`, not this suite
		}
		found := false
		for _, f := range fresh {
			if f.Name == name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-28s  removed from suite but still in baseline\n", name)
		}
	}
	if failures > 0 {
		return fmt.Errorf("bench gate: %d hard regression(s); if intended, regenerate the baseline with `pogo-bench -run hotpath`", failures)
	}
	fmt.Println("bench gate: PASS")
	return nil
}
