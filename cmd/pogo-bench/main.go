// Command pogo-bench regenerates the paper's evaluation (§5): every table
// and figure, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	pogo-bench -run all
//	pogo-bench -run table3
//	pogo-bench -run table4 -days 24 -freeze
//
// Experiments run in simulated time; a full 24-day Table 4 takes a few
// minutes of wall clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/obs"
	"pogo/internal/radio"
)

func main() {
	// A fleet worker process (forked by FleetMultiproc's exec spawner) serves
	// the shard protocol on stdin/stdout and never reaches flag parsing.
	experiments.MaybeFleetWorker()
	var (
		run        = flag.String("run", "all", "experiment: table2|table3|table4|figure3|figure4|ablations|all, or pubsub / chaos / fleet / hotpath / latency / connscale (benchmarks, not part of all)")
		days       = flag.Int("days", 24, "table4: experiment length in days")
		seed       = flag.Int64("seed", 1, "table4 / chaos / fleet: world seed")
		phones     = flag.Int("phones", 0, "chaos / fleet: testbed size (0 = per-benchmark default: 50 chaos, 2000 fleet)")
		shards     = flag.Int("shards", 0, "fleet: highest shard count in the sweep (0 = up to 4, or NumCPU when larger)")
		fleetLog   = flag.String("fleet-log", "", "fleet: write the merged delivery log to this file (make fleet diffs two of these)")
		fleetScale = flag.String("fleet-scale", "", "fleet: comma-separated extra fleet sizes (e.g. 10000,100000) to record as scaling-curve rows")
		freeze     = flag.Bool("freeze", false, "table4: enable freeze/thaw state persistence (the post-paper fix)")
		stats      = flag.Bool("stats", false, "dump the full metrics registry after the experiments")
		csvDir     = flag.String("csv", "", "write accounting.csv, timeseries.csv, and ledger-derived table3.csv/table4.csv into this directory")
		gate       = flag.Bool("gate", false, "hotpath / latency: compare against the checked-in baseline instead of rewriting it; connscale: verify only, no baseline write; exit 1 on regression")
		conns      = flag.Int("conns", 100000, "connscale: highest concurrent-connection count in the sweep")
		traceOut   = flag.String("traceout", "", "chaos / fleet: write the last run's causal spans as Chrome/Perfetto trace JSON to this file")
		flightOut  = flag.String("flightout", "pogo-flight.json", "chaos: flight-recorder dump path, written when the delivery audit fails")
		sabotage   = flag.Bool("sabotage-drain", false, "chaos: disable the post-window drain so the audit genuinely fails — exercises the flight recorder")
		verifyFl   = flag.String("verify-flight", "", "load a flight-recorder dump, reassemble every span tree, and exit 0 only if all in-flight paths reconstruct")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the selected run to this file")
	)
	flag.Parse()
	if *verifyFl != "" {
		if err := runVerifyFlight(*verifyFl); err != nil {
			fmt.Fprintln(os.Stderr, "pogo-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pogo-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pogo-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var err error
	if *run == "connscale" {
		err = runConnscale(*conns, *gate)
	} else {
		err = runExperiments(*run, *days, *seed, *phones, *shards, *fleetLog, *fleetScale, *traceOut, *flightOut, *sabotage, *freeze, *gate, *stats, *csvDir)
	}
	if *memProfile != "" {
		runtime.GC() // settle the heap so the profile shows retained memory
		if f, ferr := os.Create(*memProfile); ferr != nil {
			fmt.Fprintln(os.Stderr, "pogo-bench:", ferr)
		} else {
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "pogo-bench:", werr)
			}
			f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pogo-bench:", err)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

func runExperiments(which string, days int, seed int64, phones, shards int, fleetLog, fleetScale, traceOut, flightOut string, sabotage, freeze, gate, stats bool, csvDir string) error {
	want := func(name string) bool { return which == "all" || which == name }
	ran := false
	reg := obs.NewRegistry()

	if which == "chaos" {
		if phones == 0 {
			phones = 50
		}
		return runChaos(seed, phones, traceOut, flightOut, sabotage)
	}
	if which == "fleet" {
		if gate {
			return gateFleetDiet(seed)
		}
		return runFleet(seed, phones, shards, fleetScale, fleetLog, traceOut)
	}
	if which == "hotpath" {
		return runHotpath(gate)
	}
	if which == "latency" {
		return runLatency(seed, phones, gate)
	}

	if which == "pubsub" {
		// Broker fanout microbenchmark: not part of "all" (it measures this
		// machine, not the paper). Records the baseline BENCH_pubsub.json.
		res := experiments.PubsubBench(1000, 2000)
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_pubsub.json", append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("pubsub fanout: %d subscribers x %d publishes: %.0f ns/publish, %.0f deliveries/s, %.1f allocs/publish, %.0f B/publish\n",
			res.Subscribers, res.Publishes, res.NsPerPublish, res.DeliveriesPerSecond,
			res.AllocsPerPublish, res.BytesPerPublish)
		fmt.Println("baseline written to BENCH_pubsub.json")
		return nil
	}
	if want("table2") {
		ran = true
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if want("figure3") {
		ran = true
		fmt.Println(experiments.Figure3(radio.KPN).Render())
	}
	if want("figure4") {
		ran = true
		fmt.Println(experiments.Figure4(16 * time.Minute).Render())
	}
	if want("table3") {
		ran = true
		start := time.Now()
		rows := experiments.Table3Obs(reg)
		fmt.Println(experiments.RenderTable3(rows))
		fmt.Printf("(simulated 6 device-hours in %v)\n\n", time.Since(start).Round(time.Millisecond))
		printTable3Metrics(reg, rows)
		if csvDir != "" {
			if err := writeTable3CSV(csvDir, reg, rows); err != nil {
				return err
			}
		}
	}
	if want("table4") {
		ran = true
		start := time.Now()
		res, err := experiments.Table4(experiments.Table4Config{
			Seed: seed, Days: days, FreezeThaw: freeze, Obs: reg,
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable4(res))
		fmt.Printf("(simulated %d days x 9 sessions in %v)\n\n", days, time.Since(start).Round(time.Second))
		if csvDir != "" {
			if err := writeTable4CSV(csvDir, reg, res); err != nil {
				return err
			}
		}
	}
	if want("ablations") {
		ran = true
		fmt.Println(experiments.RenderFlushPolicies(experiments.AblationFlushPolicies()))
		fmt.Println(experiments.RenderDetectorPolling(experiments.AblationDetectorPolling()))
		fmt.Println(experiments.RenderSensorGating(experiments.AblationSensorGating()))
		ftDays := 6
		if days < ftDays {
			ftDays = days
		}
		rows, err := experiments.AblationFreezeThaw(ftDays)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFreezeThaw(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", which,
			strings.Join([]string{"table2", "table3", "table4", "figure3", "figure4", "ablations", "all", "pubsub", "chaos", "fleet", "hotpath", "latency"}, "|"))
	}
	if stats {
		fmt.Println("metrics registry:")
		obs.WriteText(os.Stdout, reg)
	}
	if csvDir != "" {
		if err := writeLedgerCSVs(csvDir, reg); err != nil {
			return err
		}
		fmt.Printf("ledger CSVs written to %s\n", csvDir)
	}
	return nil
}

// writeLedgerCSVs dumps the full per-entity accounting and the simulated-time
// series. Both are byte-identical across same-seed runs (`make determinism`).
func writeLedgerCSVs(dir string, reg *obs.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf strings.Builder
	obs.WriteAccountingCSV(&buf, reg.Ledger())
	if err := os.WriteFile(filepath.Join(dir, "accounting.csv"), []byte(buf.String()), 0o644); err != nil {
		return err
	}
	buf.Reset()
	obs.WriteSeriesCSV(&buf, reg.Series())
	return os.WriteFile(filepath.Join(dir, "timeseries.csv"), []byte(buf.String()), 0o644)
}

// accountFor finds one ledger row in a snapshot.
func accountFor(snap []obs.AccountSnapshot, device, script, topic string) obs.AccountSnapshot {
	for _, a := range snap {
		if a.Device == device && a.Script == script && a.Topic == topic {
			return a
		}
	}
	return obs.AccountSnapshot{}
}

// closeEnough allows 1% relative drift between the ledger's energy figure and
// the experiment's own meter reading (they are integrated by independent code
// paths from the same simulated events).
func closeEnough(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	tol := 0.01 * b
	if tol < 0.01 {
		tol = 0.01
	}
	return diff <= tol
}

// writeTable3CSV regenerates the Table 3 rows purely from the per-entity
// ledger (entities "<carrier>/base" and "<carrier>/pogo") and cross-checks
// them against the rows the experiment computed from its own meters.
func writeTable3CSV(dir string, reg *obs.Registry, rows []experiments.Table3Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	snap := reg.Ledger().Snapshot()
	var sb strings.Builder
	sb.WriteString("carrier,without_pogo_j,with_pogo_j,increase_pct,uplink_bytes,tail_hits,tail_misses\n")
	match := "MATCH"
	for _, r := range rows {
		tag := strings.ToLower(r.Carrier)
		base := accountFor(snap, tag+"/base", "", "")
		with := accountFor(snap, tag+"/pogo", "", "")
		inc := 0.0
		if base.EnergyTotal > 0 {
			inc = 100 * (with.EnergyTotal - base.EnergyTotal) / base.EnergyTotal
		}
		fmt.Fprintf(&sb, "%s,%.3f,%.3f,%.2f,%d,%d,%d\n", r.Carrier,
			base.EnergyTotal, with.EnergyTotal, inc,
			with.UplinkBytes, with.TailHits, with.TailMisses)
		if !closeEnough(base.EnergyTotal, r.WithoutPogo) ||
			!closeEnough(with.EnergyTotal, r.WithPogo) ||
			with.UplinkBytes != r.UplinkBytes {
			match = "MISMATCH"
		}
	}
	fmt.Printf("table3 from ledger: %s vs experiment meters (1%% energy tolerance)\n", match)
	return os.WriteFile(filepath.Join(dir, "table3.csv"), []byte(sb.String()), 0o644)
}

// writeTable4CSV regenerates the §5.3 uplink-reduction row from the ledger:
// the counterfactual (dev, scan.js, wifi-scan-raw) uplink rows against the
// collector's actually-delivered "clusters" downlink bytes.
func writeTable4CSV(dir string, reg *obs.Registry, res experiments.Table4Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var raw, clustered int64
	for _, a := range reg.Ledger().Snapshot() {
		if a.Script == "scan.js" && a.Topic == "wifi-scan-raw" {
			raw += a.UplinkBytes
		}
		if a.Device == "collector" && a.Script == "" && a.Topic == "clusters" {
			clustered += a.DownlinkBytes
		}
	}
	reduction := 0.0
	if raw > 0 {
		reduction = 100 * (1 - float64(clustered)/float64(raw))
	}
	match := "MATCH"
	if !closeEnough(reduction, res.ReductionPct) {
		match = "MISMATCH"
	}
	fmt.Printf("table4 from ledger: reduction=%.1f%% (experiment reported %.1f%%) %s\n",
		reduction, res.ReductionPct, match)
	var sb strings.Builder
	sb.WriteString("raw_uplink_bytes,cluster_downlink_bytes,reduction_pct\n")
	fmt.Fprintf(&sb, "%d,%d,%.2f\n", raw, clustered, reduction)
	return os.WriteFile(filepath.Join(dir, "table4.csv"), []byte(sb.String()), 0o644)
}

// runChaos runs the seeded fault-injection scenario matrix and records
// BENCH_chaos.json. Everything — traffic, faults, churn, retries — runs in
// simulated time, so the printed report (and the JSON) is a pure function of
// the seed: `pogo-bench -run chaos -seed 1` twice gives byte-identical
// output. Not part of "all": it benchmarks the delivery path, not the paper.
//
// Each scenario runs with causal tracing attached (which by design cannot
// change the delivery log — trace IDs are assigned whether or not anyone
// watches). On an audit failure the span store is dumped to flightOut so the
// in-flight messages can be explained offline; with sabotage the post-window
// drain is disabled to force exactly that failure.
func runChaos(seed int64, phones int, traceOut, flightOut string, sabotage bool) error {
	scenarios := experiments.ChaosScenarios(seed)
	if sabotage {
		sc := scenarios[len(scenarios)-1]
		sc.Name = "sabotage"
		sc.Config.DrainIters = -1
		scenarios = []experiments.ChaosScenario{sc}
	}
	results := make([]experiments.ChaosResult, 0, len(scenarios))
	for _, sc := range scenarios {
		reg := obs.NewRegistry()
		sc.Config.Phones = phones
		sc.Config.Obs = reg
		res := experiments.Chaos(sc.Name, sc.Config)
		results = append(results, res)
		fmt.Printf("chaos %-6s seed=%d phones=%d: %d/%d delivered, lost=%d dup=%d ooo=%d, retries=%d, %.1f deliveries/sim-s\n",
			res.Scenario, res.Seed, res.Phones, res.Delivered, res.Expected,
			res.Lost, res.Duplicated, res.OutOfOrder, res.Retries, res.DeliveriesPerSec)
		fmt.Printf("  net: sent=%d dropped=%d duplicated=%d corrupted=%d delayed=%d partition_drops=%d disconnects=%d\n",
			res.NetSent, res.NetDropped, res.NetDuplicated, res.NetCorrupted,
			res.NetDelayed, res.PartitionDrops, res.Disconnects)
		fmt.Printf("  delivery log sha256: %s\n", res.LogSHA256)
		if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
			reason := fmt.Sprintf("chaos %s seed=%d audit failed: lost=%d dup=%d ooo=%d undrained=%d",
				res.Scenario, res.Seed, res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
			dumpFlight(flightOut, reg, reason)
			return fmt.Errorf("chaos %s violated the delivery guarantee: lost=%d dup=%d ooo=%d undrained=%d",
				res.Scenario, res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
		}
		if traceOut != "" {
			// Last scenario wins: with -traceout the written file holds the
			// final (heaviest) scenario's causal timeline.
			if err := writeTraceFile(traceOut, reg); err != nil {
				return err
			}
		}
	}
	if sabotage {
		return nil // a sabotage run proves the recorder; don't touch the baseline
	}
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_chaos.json", append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("baseline written to BENCH_chaos.json")
	return nil
}

// printTable3Metrics summarizes the observability registry after the Table 3
// runs and cross-checks the phone's uplink-bytes counter against the totals
// the experiment reported through its own, independent code path.
func printTable3Metrics(reg *obs.Registry, rows []experiments.Table3Row) {
	var reported int64
	for _, r := range rows {
		reported += r.UplinkBytes
	}
	counted := reg.CounterValue("transport_bytes_sent_total", obs.L("node", "phone"))
	fmt.Println("end-of-run metrics (with-Pogo trials, all carriers):")
	for _, name := range []string{
		"pubsub_publishes_total",
		"transport_messages_sent_total",
		"transport_bytes_sent_total",
		"transport_flushes_total",
		"tailsync_piggyback_hits_total",
		"tailsync_piggyback_misses_total",
	} {
		fmt.Printf("  %-36s %d\n", name+"{node=phone}", reg.CounterValue(name, obs.L("node", "phone")))
	}
	match := "MATCH"
	if counted != reported {
		match = "MISMATCH"
	}
	fmt.Printf("uplink bytes: counter=%d reported=%d %s\n\n", counted, reported, match)
}
