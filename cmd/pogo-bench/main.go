// Command pogo-bench regenerates the paper's evaluation (§5): every table
// and figure, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	pogo-bench -run all
//	pogo-bench -run table3
//	pogo-bench -run table4 -days 24 -freeze
//
// Experiments run in simulated time; a full 24-day Table 4 takes a few
// minutes of wall clock.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/radio"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment: table2|table3|table4|figure3|figure4|ablations|all")
		days   = flag.Int("days", 24, "table4: experiment length in days")
		seed   = flag.Int64("seed", 1, "table4: world seed")
		freeze = flag.Bool("freeze", false, "table4: enable freeze/thaw state persistence (the post-paper fix)")
	)
	flag.Parse()
	if err := runExperiments(*run, *days, *seed, *freeze); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-bench:", err)
		os.Exit(1)
	}
}

func runExperiments(which string, days int, seed int64, freeze bool) error {
	want := func(name string) bool { return which == "all" || which == name }
	ran := false

	if want("table2") {
		ran = true
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
	}
	if want("figure3") {
		ran = true
		fmt.Println(experiments.Figure3(radio.KPN).Render())
	}
	if want("figure4") {
		ran = true
		fmt.Println(experiments.Figure4(16 * time.Minute).Render())
	}
	if want("table3") {
		ran = true
		start := time.Now()
		fmt.Println(experiments.RenderTable3(experiments.Table3()))
		fmt.Printf("(simulated 6 device-hours in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if want("table4") {
		ran = true
		start := time.Now()
		res, err := experiments.Table4(experiments.Table4Config{
			Seed: seed, Days: days, FreezeThaw: freeze,
		})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable4(res))
		fmt.Printf("(simulated %d days x 9 sessions in %v)\n\n", days, time.Since(start).Round(time.Second))
	}
	if want("ablations") {
		ran = true
		fmt.Println(experiments.RenderFlushPolicies(experiments.AblationFlushPolicies()))
		fmt.Println(experiments.RenderDetectorPolling(experiments.AblationDetectorPolling()))
		fmt.Println(experiments.RenderSensorGating(experiments.AblationSensorGating()))
		ftDays := 6
		if days < ftDays {
			ftDays = days
		}
		rows, err := experiments.AblationFreezeThaw(ftDays)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFreezeThaw(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", which,
			strings.Join([]string{"table2", "table3", "table4", "figure3", "figure4", "ablations", "all"}, "|"))
	}
	return nil
}
