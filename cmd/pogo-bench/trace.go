package main

// Causal-tracing commands: the delivery-latency SLO benchmark and its
// regression gate (`pogo-bench -run latency [-gate]`, baseline
// BENCH_latency.json), Perfetto trace export (-traceout), and the
// flight-recorder verifier (-verify-flight) that reloads a dump written
// after a failed chaos/fleet audit and reconstructs every span tree.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/obs"
)

const latencyFileName = "BENCH_latency.json"

// latencyFile is the BENCH_latency.json schema. Everything in it is measured
// on the simulated clock, so for a given seed/phones the figures are exact —
// the gate below compares them exactly, doubling as a determinism check.
type latencyFile struct {
	Note      string                      `json:"note"`
	Seed      int64                       `json:"seed"`
	Phones    int                         `json:"phones"`
	Scenarios []experiments.LatencyResult `json:"scenarios"`
}

// runLatency measures per-topic delivery-latency quantiles across the chaos
// scenario matrix and either records the baseline or (gate) compares exactly
// against the checked-in one.
func runLatency(seed int64, phones int, gate bool) error {
	if phones == 0 {
		phones = 50
	}
	results, runs := experiments.Latency(seed, phones)
	for i, res := range results {
		run := runs[i]
		if run.Lost != 0 || run.Duplicated != 0 || run.OutOfOrder != 0 || run.Undrained != 0 {
			return fmt.Errorf("latency %s violated the delivery guarantee: lost=%d dup=%d ooo=%d undrained=%d",
				run.Scenario, run.Lost, run.Duplicated, run.OutOfOrder, run.Undrained)
		}
		fmt.Printf("latency %-6s seed=%d phones=%d: %d deliveries, %d span hops (%d dropped)\n",
			res.Scenario, res.Seed, res.Phones, run.Delivered, res.SpanHops, res.SpanDrops)
		for _, t := range res.Topics {
			fmt.Printf("  %-8s n=%-6d p50=%8.3fs p95=%8.3fs p99=%8.3fs\n",
				t.Channel, t.Count, t.P50, t.P95, t.P99)
		}
	}
	if gate {
		return gateLatency(seed, phones, results)
	}
	out := latencyFile{
		Note:      "per-topic delivery-latency SLOs from causal trace spans (simulated time, exact per seed); `pogo-bench -run latency -gate` fails on any drift",
		Seed:      seed,
		Phones:    phones,
		Scenarios: results,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(latencyFileName, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("baseline written to %s\n", latencyFileName)
	return nil
}

// gateLatency compares a fresh run against the baseline. The quantiles are
// pure functions of the seed (simulated clocks, seeded RNGs, IEEE float
// math), so the comparison is exact up to rounding noise: any real drift
// means the delivery path's timing behavior changed and the baseline must be
// regenerated deliberately.
func gateLatency(seed int64, phones int, fresh []experiments.LatencyResult) error {
	data, err := os.ReadFile(latencyFileName)
	if err != nil {
		return fmt.Errorf("no baseline (%v); run `pogo-bench -run latency` and commit %s", err, latencyFileName)
	}
	var base latencyFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("corrupt baseline %s: %v", latencyFileName, err)
	}
	if base.Seed != seed || base.Phones != phones {
		return fmt.Errorf("baseline %s was recorded with seed=%d phones=%d; rerun the gate with matching flags",
			latencyFileName, base.Seed, base.Phones)
	}
	baseline := make(map[string][]obs.TopicLatency, len(base.Scenarios))
	for _, sc := range base.Scenarios {
		baseline[sc.Scenario] = sc.Topics
	}
	same := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }
	failures := 0
	for _, res := range fresh {
		want, ok := baseline[res.Scenario]
		if !ok {
			fmt.Printf("latency gate: scenario %s missing from baseline\n", res.Scenario)
			failures++
			continue
		}
		index := make(map[string]obs.TopicLatency, len(want))
		for _, t := range want {
			index[t.Channel] = t
		}
		for _, got := range res.Topics {
			w, ok := index[got.Channel]
			if !ok {
				fmt.Printf("latency gate: %s/%s missing from baseline\n", res.Scenario, got.Channel)
				failures++
				continue
			}
			if got.Count != w.Count || !same(got.P50, w.P50) || !same(got.P95, w.P95) || !same(got.P99, w.P99) {
				fmt.Printf("latency gate: %s/%s drifted: n=%d p50=%.6f p95=%.6f p99=%.6f (baseline n=%d p50=%.6f p95=%.6f p99=%.6f)\n",
					res.Scenario, got.Channel, got.Count, got.P50, got.P95, got.P99,
					w.Count, w.P50, w.P95, w.P99)
				failures++
			}
			delete(index, got.Channel)
		}
		for ch := range index {
			fmt.Printf("latency gate: %s/%s in baseline but not measured\n", res.Scenario, ch)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("latency gate: %d drift(s); if intended, regenerate the baseline with `pogo-bench -run latency`", failures)
	}
	fmt.Println("latency gate: PASS")
	return nil
}

// writeTraceFile exports the registry's span store as Chrome Trace Event
// JSON loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func writeTraceFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceJSON(f, reg); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("perfetto trace (%d span hops) written to %s\n", reg.Spans().Len(), path)
	return nil
}

// dumpFlight writes the flight-recorder dump after a failed audit, stamping
// it with the latest retained hop instant (the simulated time the run died).
func dumpFlight(path string, reg *obs.Registry, reason string) {
	at := time.Time{}
	if hops := reg.Spans().Hops(); len(hops) > 0 {
		for _, h := range hops {
			if h.At.After(at) {
				at = h.At
			}
		}
	}
	if err := obs.DumpFlightFile(path, reg, reason, at); err != nil {
		fmt.Fprintf(os.Stderr, "pogo-bench: flight dump: %v\n", err)
		return
	}
	fmt.Printf("flight recorder dump written to %s\n", path)
}

// runVerifyFlight reloads a flight dump and proves it is actionable: every
// dumped trace must reassemble into a span tree, and every in-flight trace
// (started but never delivered/expired) must root at its publish/enqueue hop
// so the causal path up to the loss is readable.
func runVerifyFlight(path string) error {
	d, err := obs.LoadFlightDump(path)
	if err != nil {
		return err
	}
	fmt.Printf("flight dump %s: reason=%q traces=%d dropped_hops=%d\n",
		path, d.Reason, len(d.Traces), d.DroppedHops)
	bad := 0
	for _, tr := range d.Traces {
		tree := d.Tree(tr.Trace)
		if tree == nil {
			fmt.Printf("  trace %s: no hops, cannot reassemble\n", tr.Trace)
			bad++
		}
	}
	inflight := d.Incomplete()
	fmt.Printf("in-flight traces (started, no deliver/expire): %d\n", len(inflight))
	for i, id := range inflight {
		tree := d.Tree(id)
		if tree == nil {
			bad++
			continue
		}
		if s := tree.Hop.Stage; s != obs.StageEnqueue && s != obs.StagePublish {
			fmt.Printf("  trace %s: tree roots at %q, not publish/enqueue\n", id, s)
			bad++
			continue
		}
		if i < 8 { // show a sample; the full dump is on disk
			var parts []string
			tree.Walk(func(depth int, n *obs.SpanNode) {
				parts = append(parts, fmt.Sprintf("%s@%s", n.Hop.Stage, n.Hop.Node))
			})
			fmt.Printf("  %s: %s\n", id, strings.Join(parts, " -> "))
		}
	}
	if bad > 0 {
		return fmt.Errorf("verify-flight: %d broken trace(s) in %s", bad, path)
	}
	fmt.Println("verify-flight: OK — every span tree reassembles; in-flight paths reconstruct from publish/enqueue")
	return nil
}
