// Command pogo-collector runs a Pogo node in collector mode: the
// researcher's side of the testbed (§4.2). It connects to the switchboard,
// deploys every *.js file from -scripts to the devices on its roster
// (files matching *collect*.js run locally instead), and prints the data
// its local scripts log.
//
// Usage:
//
//	pogo-collector -server 127.0.0.1:5222 -id researcher -scripts ./exp/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"pogo/internal/core"
	"pogo/internal/geo"
	"pogo/internal/obs"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:5222", "switchboard address")
		id        = flag.String("id", "researcher", "collector identity")
		password  = flag.String("password", "pogo", "account password")
		scriptDir = flag.String("scripts", "", "directory of experiment scripts (required)")
		metrics   = flag.String("metrics", "", "serve /metrics, /trace, /alerts, /stats on this address (e.g. 127.0.0.1:8623); empty disables")
		pprofAt   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6061); empty disables")
	)
	flag.Parse()
	if *scriptDir == "" {
		fmt.Fprintln(os.Stderr, "pogo-collector: -scripts is required")
		os.Exit(1)
	}
	if err := run(*server, *id, *password, *scriptDir, *metrics, *pprofAt); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-collector:", err)
		os.Exit(1)
	}
}

func run(server, id, password, scriptDir, metricsAddr, pprofAddr string) error {
	var reg *obs.Registry
	if metricsAddr != "" {
		reg = obs.NewRegistry()
		// Live collector: the full rule pack (RealTime rules included)
		// evaluates on every real-clock sampling tick, and the runtime
		// sampler contributes goroutine/heap/GC gauges.
		reg.Alerts().EnsureDefaultRules()
		stopRuntime := obs.StartRuntimeSampler(reg)
		defer stopRuntime()
	}
	messenger, err := transport.DialXMPP(server, id, password, "pc")
	if err != nil {
		return fmt.Errorf("connect %s: %w", server, err)
	}
	defer messenger.Close()
	messenger.Instrument(reg)

	node, err := core.NewNode(core.Config{
		ID: id, Mode: core.CollectorMode, Clock: vclock.Real{}, Messenger: messenger,
		FlushPolicy: core.FlushImmediate, Obs: reg,
		OnPrint: func(script, text string) {
			fmt.Printf("[%s] %s\n", script, text)
		},
		OnScriptError: func(script string, err error) {
			fmt.Fprintf(os.Stderr, "[%s] error: %v\n", script, err)
		},
	})
	if err != nil {
		return err
	}
	defer node.Close()

	// Attach the geolocation service so localization experiments work.
	db := geo.NewDB()
	svc := geo.NewService(db, node.LocalContext().Broker())
	defer svc.Close()

	// Stream everything local scripts write to their logs.
	node.Logs().SetOnAppend(func(logName, line string) {
		fmt.Printf("%s << %s\n", logName, line)
	})

	if metricsAddr != "" {
		// Sample the registry so /timeseries carries history for pogo-top
		// and windowed rate queries.
		stopSampling := obs.StartSampling(vclock.Real{}, reg, 5*time.Second, id)
		defer stopSampling()
		go func() {
			if err := http.ListenAndServe(metricsAddr, obs.Handler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "pogo-collector: metrics:", err)
			}
		}()
		fmt.Printf("pogo-collector: metrics on http://%s/metrics (accounting on /accounting, series on /timeseries, alerts on /alerts)\n", metricsAddr)
	}
	if pprofAddr != "" {
		// Flag-guarded profiler on its own mux and address — never exposed
		// implicitly alongside the metrics endpoints.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "pogo-collector: pprof:", err)
			}
		}()
		fmt.Printf("pogo-collector: pprof on http://%s/debug/pprof/\n", pprofAddr)
	}

	entries, err := os.ReadDir(scriptDir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".js") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no *.js scripts in %s", scriptDir)
	}
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(scriptDir, name))
		if err != nil {
			return err
		}
		if strings.Contains(name, "collect") {
			if err := node.DeployLocal(name, string(src)); err != nil {
				return fmt.Errorf("local %s: %w", name, err)
			}
			fmt.Printf("pogo-collector: running %s locally\n", name)
		} else {
			if err := node.Deploy(name, string(src)); err != nil {
				return fmt.Errorf("deploy %s: %w", name, err)
			}
			fmt.Printf("pogo-collector: deployed %s to roster %v\n", name, messenger.Peers())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pogo-collector: shutting down")
	return nil
}
