// Command pogo-doctor runs a one-shot health battery against a live Pogo
// node's metrics endpoint (whatever -metrics was set to on pogo-server or
// pogo-collector): is the node reachable, is the alert engine quiet, has the
// exactly-once delivery contract held, is data still flowing, is the process
// itself healthy. Each check prints one PASS/WARN/FAIL line; the exit code is
// 0 when everything passes, 1 when the worst finding is a warning, 2 when
// anything fails.
//
// Usage:
//
//	pogo-doctor -addr 127.0.0.1:8622
//	pogo-doctor -selftest -expect exactly_once_violation
//
// -selftest needs no running node: it builds a short in-process chaos world
// with a rigged duplicate delivery, serves its registry over loopback HTTP,
// and runs the battery against that — verifying end to end that the doctor
// detects the faults the -expect rules describe. make doctor-smoke uses it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8622", "metrics address of a running pogo-server/pogo-collector")
		selftest = flag.Bool("selftest", false, "run the battery against a rigged in-process chaos world instead of a live node")
		expect   = flag.String("expect", "", "selftest: comma-separated rules that must be firing (e.g. exactly_once_violation)")
	)
	flag.Parse()
	if *selftest {
		os.Exit(runSelftest(*expect))
	}
	os.Exit(runBattery(*addr))
}

// check is one battery finding. Status ranks: PASS < WARN < FAIL.
type check struct {
	status string // "PASS", "WARN", "FAIL"
	name   string
	detail string
}

func statusRank(s string) int {
	switch s {
	case "FAIL":
		return 2
	case "WARN":
		return 1
	default:
		return 0
	}
}

// runBattery executes every check against the node at addr and returns the
// exit code (0 ok, 1 warnings, 2 failures).
func runBattery(addr string) int {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	var checks []check
	snap, err := fetchSnapshot(base + "/metrics.json")
	if err != nil {
		// Nothing else can run without the node; report and bail.
		checks = append(checks, check{"FAIL", "node reachable", err.Error()})
		return report(checks)
	}
	checks = append(checks, check{"PASS", "node reachable",
		fmt.Sprintf("%s: %d counters, %d gauges, %d histograms",
			base, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))})

	checks = append(checks, checkStats(base))
	checks = append(checks, checkAlerts(base)...)
	checks = append(checks, checkExactlyOnce(snap))
	checks = append(checks, checkBacklog(snap))
	checks = append(checks, checkDataFlow(snap))
	checks = append(checks, checkRuntime(snap))
	return report(checks)
}

// report prints one line per check plus a summary, and maps the worst status
// to the exit code.
func report(checks []check) int {
	worst, warns, fails := 0, 0, 0
	for _, c := range checks {
		fmt.Printf("%-4s %-22s %s\n", c.status, c.name, c.detail)
		if r := statusRank(c.status); r > worst {
			worst = r
		}
		switch c.status {
		case "WARN":
			warns++
		case "FAIL":
			fails++
		}
	}
	fmt.Printf("pogo-doctor: %d checks, %d failed, %d warned\n", len(checks), fails, warns)
	return worst
}

// checkStats verifies the human-readable dump endpoint answers.
func checkStats(base string) check {
	resp, err := httpClient().Get(base + "/stats")
	if err != nil {
		return check{"WARN", "stats endpoint", err.Error()}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return check{"WARN", "stats endpoint", resp.Status}
	}
	return check{"PASS", "stats endpoint", "/stats serves " + resp.Header.Get("Content-Type")}
}

// checkAlerts reads /alerts and turns every non-inactive rule into a finding:
// firing critical → FAIL, firing warn / pending → WARN.
func checkAlerts(base string) []check {
	alerts, err := fetchAlerts(base + "/alerts")
	if err != nil {
		return []check{{"WARN", "alert engine", err.Error()}}
	}
	var out []check
	for _, a := range alerts {
		detail := fmt.Sprintf("%s since %s, value=%g",
			a.StateStr, a.Since.Format(time.RFC3339), a.Value)
		switch {
		case a.State == obs.AlertFiring && a.Rule.Severity == "critical":
			out = append(out, check{"FAIL", "alert " + a.Rule.Name, detail})
		case a.State == obs.AlertFiring || a.State == obs.AlertPending:
			out = append(out, check{"WARN", "alert " + a.Rule.Name, detail})
		}
	}
	if len(out) == 0 {
		return []check{{"PASS", "alert engine", fmt.Sprintf("%d rules installed, none active", len(alerts))}}
	}
	return out
}

// checkExactlyOnce audits the delivery contract: any charged violation is a
// hard failure, whatever the alert state.
func checkExactlyOnce(snap obs.Snapshot) check {
	n := sumCounters(snap, "delivery_violations_total")
	if n > 0 {
		return check{"FAIL", "exactly-once delivery", fmt.Sprintf("%d violations charged", n)}
	}
	return check{"PASS", "exactly-once delivery", "no duplicate or out-of-order deliveries"}
}

// checkBacklog flags a swollen outbox before the backpressure rule's hold
// time has elapsed.
func checkBacklog(snap obs.Snapshot) check {
	pending := sumGauges(snap, "outbox_pending") + sumGauges(snap, "node_outbox_pending")
	if pending > 200 {
		return check{"WARN", "outbox backlog", fmt.Sprintf("%.0f messages pending", pending)}
	}
	return check{"PASS", "outbox backlog", fmt.Sprintf("%.0f messages pending", pending)}
}

// checkDataFlow looks for evidence any message has ever arrived — and for
// frames that arrived but were thrown away by the CRC check (mangled base64
// wraps, flipped bytes in flight). Corrupt drops with no surviving traffic
// mean the node is receiving garbage, not nothing.
func checkDataFlow(snap obs.Snapshot) check {
	n := sumCounters(snap, "transport_messages_received_total")
	corrupt := sumCounters(snap, "transport_corrupt_dropped_total")
	switch {
	case n > 0 && corrupt > 0:
		return check{"WARN", "data flow",
			fmt.Sprintf("%d messages received, %d corrupt frames dropped", n, corrupt)}
	case n > 0:
		return check{"PASS", "data flow", fmt.Sprintf("%d messages received", n)}
	case corrupt > 0:
		return check{"FAIL", "data flow",
			fmt.Sprintf("every inbound frame corrupt: %d dropped, 0 delivered", corrupt)}
	}
	return check{"WARN", "data flow", "no messages received yet (idle node, or nothing deployed)"}
}

// checkRuntime sanity-checks the process via the runtime sampler's gauges,
// when the node exports them.
func checkRuntime(snap obs.Snapshot) check {
	g, ok := snap.Gauges["runtime_goroutines"]
	if !ok {
		return check{"PASS", "process runtime", "runtime sampler not enabled on this node"}
	}
	if g > 5000 {
		return check{"WARN", "process runtime", fmt.Sprintf("%.0f goroutines (possible leak)", g)}
	}
	return check{"PASS", "process runtime",
		fmt.Sprintf("%.0f goroutines, %.1f MiB heap", g, snap.Gauges["runtime_heap_alloc_bytes"]/(1<<20))}
}

// runSelftest rigs a short chaos world with a guaranteed duplicate delivery,
// serves its registry over loopback, and runs the battery against it. The
// battery must detect trouble, and every -expect rule must be firing.
func runSelftest(expect string) int {
	reg := obs.NewRegistry()
	w := experiments.NewChaosWorld(experiments.ChaosConfig{
		Seed: 7, Phones: 8, MessagesPerPhone: 6, CommandsPerPhone: 2,
		Window: 2 * time.Minute, Step: 2 * time.Second, RetryAfter: 6 * time.Second,
		Drop: 0.35, MaxDelay: 400 * time.Millisecond, PartitionFrac: 0.5,
		Obs: reg,
	})
	for k := 0; k < w.Rounds(); k++ {
		w.RunRound(k)
	}
	// Re-send phone00's first upload: the transport delivers both copies, the
	// online tracker charges a duplicate, and exactly_once_violation fires.
	if err := w.Enqueue(experiments.ChaosPhoneName(0), experiments.ChaosCollectorName, "upload", 0); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-doctor: selftest rig:", err)
		return 2
	}
	w.Drain()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pogo-doctor: selftest listen:", err)
		return 2
	}
	defer ln.Close()
	go http.Serve(ln, obs.Handler(reg))
	addr := ln.Addr().String()
	fmt.Printf("pogo-doctor: selftest world on http://%s (rigged duplicate delivery)\n", addr)

	code := runBattery(addr)
	if code == 0 {
		fmt.Fprintln(os.Stderr, "pogo-doctor: SELFTEST FAIL: battery passed a rigged world")
		return 1
	}
	alerts, err := fetchAlerts("http://" + addr + "/alerts")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pogo-doctor: SELFTEST FAIL:", err)
		return 1
	}
	firing := map[string]bool{}
	for _, a := range alerts {
		if a.State == obs.AlertFiring {
			firing[a.Rule.Name] = true
		}
	}
	ok := true
	for _, rule := range strings.Split(expect, ",") {
		if rule = strings.TrimSpace(rule); rule == "" {
			continue
		}
		if !firing[rule] {
			fmt.Fprintf(os.Stderr, "pogo-doctor: SELFTEST FAIL: expected %s firing, got %v\n",
				rule, sortedKeys(firing))
			ok = false
		}
	}
	if !ok {
		return 1
	}
	fmt.Printf("pogo-doctor: selftest ok (battery exit %d, firing: %v)\n", code, sortedKeys(firing))
	return 0
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func httpClient() *http.Client { return &http.Client{Timeout: 5 * time.Second} }

// fetchSnapshot pulls the full instrument dump from /metrics.json.
func fetchSnapshot(url string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := httpClient().Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode %s: %w", url, err)
	}
	return snap, nil
}

// fetchAlerts pulls the rule states from /alerts.
func fetchAlerts(url string) ([]obs.AlertSnapshot, error) {
	resp, err := httpClient().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var payload struct {
		Alerts []obs.AlertSnapshot `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return payload.Alerts, nil
}

// sumCounters sums every series in the named counter family (bare name or
// name{labels} keys).
func sumCounters(snap obs.Snapshot, family string) int64 {
	var n int64
	for k, v := range snap.Counters {
		if k == family || strings.HasPrefix(k, family+"{") {
			n += v
		}
	}
	return n
}

// sumGauges sums every series in the named gauge family.
func sumGauges(snap obs.Snapshot, family string) float64 {
	var n float64
	for k, v := range snap.Gauges {
		if k == family || strings.HasPrefix(k, family+"{") {
			n += v
		}
	}
	return n
}
