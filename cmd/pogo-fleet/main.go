// Command pogo-fleet runs the sharded fleet simulation across worker
// processes: a coordinator forks N copies of this binary (via re-exec), hands
// each a contiguous shard range, and exchanges cross-shard traffic at
// conservative-lookahead epoch barriers over the 0xB1 binary wire codec.
//
// Usage:
//
//	pogo-fleet -phones 10000 -shards 8 -procs 2
//	pogo-fleet -phones 10000 -shards 8 -procs 2 -verify
//	pogo-fleet -phones 2000 -procs 4 -log fleet.log
//
// The delivery log (and its SHA-256) is a pure function of the seed — the
// same at any (shards × procs) split. -verify proves it on the spot: it runs
// the same seed in-process and multi-process and hard-fails on any hash or
// audit divergence. `make fleet-smoke` is exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"pogo/internal/experiments"
)

func main() {
	// If this process was forked as a shard worker, serve the wire protocol
	// on stdin/stdout and exit; everything below is coordinator-only.
	experiments.MaybeFleetWorker()

	var (
		seed       = flag.Int64("seed", 1, "world seed; the delivery log is a pure function of it")
		phones     = flag.Int("phones", 2000, "fleet size")
		collectors = flag.Int("collectors", 0, "collector cluster size (0 = phones/128, clamped to [1,16])")
		shards     = flag.Int("shards", 4, "shard count (lockstep epoch partitions)")
		procs      = flag.Int("procs", 1, "worker processes the shard range is split over (1 = in-process)")
		verify     = flag.Bool("verify", false, "run the seed both in-process and with -procs workers and fail on any divergence")
		logPath    = flag.String("log", "", "write the merged delivery log to this file")
	)
	flag.Parse()

	cfg := experiments.FleetScenario(*seed, *phones, *shards)
	cfg.Collectors = *collectors
	cfg.Procs = *procs
	cfg.KeepLog = *logPath != ""

	if err := run(cfg, *verify, *logPath); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-fleet:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.FleetConfig, verify bool, logPath string) error {
	var res experiments.FleetResult
	var err error
	if verify {
		res, err = runVerify(cfg)
	} else if cfg.Procs > 1 {
		res, err = experiments.FleetMultiproc(cfg, nil)
	} else {
		res = experiments.Fleet(cfg)
	}
	if err != nil {
		return err
	}
	if err := audit(res); err != nil {
		return err
	}
	if logPath != "" {
		data := strings.Join(res.Log, "\n") + "\n"
		if err := os.WriteFile(logPath, []byte(data), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "delivery log (%d entries) written to %s\n", len(res.Log), logPath)
	}
	res.Log = nil
	b, jerr := json.MarshalIndent(res, "", "  ")
	if jerr != nil {
		return jerr
	}
	fmt.Println(string(b))
	return nil
}

// runVerify runs the configured seed twice — once in-process, once split over
// cfg.Procs worker processes — and fails unless both runs pass the
// exactly-once audit and produce the same delivery-log SHA-256 and the same
// epoch/event/delivery counts. This is the executable form of the determinism
// claim: partitioning is an implementation detail the log cannot observe.
func runVerify(cfg experiments.FleetConfig) (experiments.FleetResult, error) {
	procs := cfg.Procs
	if procs < 2 {
		procs = 2
	}
	inproc := cfg
	inproc.Procs = 1
	inproc.KeepLog = false
	ref := experiments.Fleet(inproc)
	if err := audit(ref); err != nil {
		return ref, fmt.Errorf("in-process reference: %w", err)
	}
	mcfg := cfg
	mcfg.Procs = procs
	res, err := experiments.FleetMultiproc(mcfg, nil)
	if err != nil {
		return res, err
	}
	if err := audit(res); err != nil {
		return res, fmt.Errorf("procs=%d: %w", procs, err)
	}
	if res.LogSHA256 != ref.LogSHA256 {
		return res, fmt.Errorf("verify: procs=%d delivery-log hash %s differs from in-process hash %s (determinism broken)",
			procs, res.LogSHA256, ref.LogSHA256)
	}
	if res.Delivered != ref.Delivered || res.Epochs != ref.Epochs || res.Events != ref.Events {
		return res, fmt.Errorf("verify: procs=%d counts diverge: delivered %d/%d epochs %d/%d events %d/%d",
			procs, res.Delivered, ref.Delivered, res.Epochs, ref.Epochs, res.Events, ref.Events)
	}
	fmt.Fprintf(os.Stderr,
		"verify: seed=%d phones=%d shards=%d: in-process and %d-process runs identical (sha256 %s)\n",
		res.Seed, res.Phones, res.Shards, procs, res.LogSHA256)
	fmt.Fprintf(os.Stderr,
		"  in-process: wall %.2fs cpu %.2fs   %d-process: wall %.2fs cpu %.2fs (%d cpu(s) on this host)\n",
		ref.WallSeconds, ref.CPUSeconds, procs, res.WallSeconds, res.CPUSeconds, runtime.NumCPU())
	return res, nil
}

func audit(res experiments.FleetResult) error {
	if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
		return fmt.Errorf("delivery guarantee violated: lost=%d dup=%d ooo=%d undrained=%d",
			res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
	}
	return nil
}
