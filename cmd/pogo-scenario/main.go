// Command pogo-scenario runs txtar scenario files against the simulated Pogo
// world. With no arguments it runs every scenario in the repo's library;
// -list enumerates them for CI logs; -update regenerates golden sections
// after an intentional change.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pogo/internal/experiments"
	"pogo/internal/scenario"
)

const defaultDir = "internal/scenario/testdata/scenarios"

func main() {
	// Scenarios with `procs=N` fork this binary into fleet shard workers; a
	// forked copy serves the worker protocol here and never runs scenarios.
	experiments.MaybeFleetWorker()
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list available scenarios and exit")
	update := flag.Bool("update", false, "regenerate golden sections in place")
	short := flag.Bool("short", false, "honor [short] condition prefixes")
	verbose := flag.Bool("v", false, "print run transcripts")
	dir := flag.String("dir", defaultDir, "scenario directory used when no files are given")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		matches, err := filepath.Glob(filepath.Join(*dir, "*.txtar"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "pogo-scenario: no *.txtar under %s\n", *dir)
			return 1
		}
		files = matches
	}
	sort.Strings(files)

	if *list {
		for _, f := range files {
			fmt.Printf("%-24s %s\n", strings.TrimSuffix(filepath.Base(f), ".txtar"), title(f))
		}
		return 0
	}

	r := &scenario.Runner{Short: *short, Update: *update}
	failed := 0
	for _, f := range files {
		res, err := r.RunFile(f)
		switch {
		case err != nil:
			fmt.Printf("FAIL %s: %v\n", f, err)
			if res != nil && *verbose {
				os.Stdout.Write(res.Transcript)
			}
			failed++
			continue
		case res.Skipped:
			fmt.Printf("skip %s: %s\n", f, res.SkipReason)
		default:
			fmt.Printf("ok   %s\n", f)
		}
		if *verbose {
			os.Stdout.Write(res.Transcript)
		}
		if res.Updated {
			if err := os.WriteFile(f, res.Archive, 0o644); err != nil {
				fmt.Printf("FAIL %s: writing updated goldens: %v\n", f, err)
				failed++
				continue
			}
			fmt.Printf("     %s: goldens updated\n", f)
		}
	}
	if failed > 0 {
		fmt.Printf("pogo-scenario: %d of %d scenarios failed\n", failed, len(files))
		return 1
	}
	return 0
}

// title returns the scenario's first comment line (its `# ...` header).
func title(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(scenario.ParseTxtar(data).Comment), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "#") {
			return strings.TrimSpace(strings.TrimPrefix(line, "#"))
		}
		if line != "" {
			break
		}
	}
	return ""
}
