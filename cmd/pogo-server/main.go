// Command pogo-server runs the central XMPP switchboard (the role Openfire
// plays in the paper, §4.6). It only routes messages and manages rosters;
// all Pogo semantics live in the device and collector nodes.
//
// Usage:
//
//	pogo-server -addr :5222 -associate researcher=dev1,dev2 -auto-register
//
// The -associate flag is the administrator's act of assigning devices to
// researchers (§3.1); it may be repeated.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"time"

	"pogo/internal/obs"
	"pogo/internal/vclock"
	"pogo/internal/xmpp"
)

// pprofMux builds a mux serving the net/http/pprof endpoints. The profiler
// is flag-guarded and bound to its own address: profiling a production
// switchboard is an explicit operator decision, never an accidental default.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type associations []string

func (a *associations) String() string { return strings.Join(*a, ";") }

func (a *associations) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5222", "TCP listen address")
		autoReg = flag.Bool("auto-register", true, "create accounts on first login (the paper's zero-registration model)")
		metrics = flag.String("metrics", "", "serve /metrics, /trace, /alerts, /stats on this address (e.g. 127.0.0.1:8622); empty disables")
		pprofAt = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
		offline = flag.Int("offline-queue", 64, "stanzas buffered per offline user and replayed on the next session; 0 bounces instead")
		assoc   associations
	)
	flag.Var(&assoc, "associate", "researcher=dev1,dev2 (repeatable)")
	flag.Parse()

	if err := run(*addr, *autoReg, *metrics, *pprofAt, *offline, assoc); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-server:", err)
		os.Exit(1)
	}
}

func run(addr string, autoReg bool, metricsAddr, pprofAddr string, offlineQueue int, assoc associations) error {
	var reg *obs.Registry
	if metricsAddr != "" {
		reg = obs.NewRegistry()
		// Live server: rules evaluate on the real clock (every sampling
		// tick), including the RealTime ones deterministic runs mute; the
		// runtime sampler adds goroutine/heap/GC gauges to every snapshot.
		reg.Alerts().EnsureDefaultRules()
		stopRuntime := obs.StartRuntimeSampler(reg)
		defer stopRuntime()
	}
	srv := xmpp.NewServer(xmpp.ServerConfig{
		Addr: addr, AllowAutoRegister: autoReg, OfflineQueue: offlineQueue, Obs: reg,
	})
	for _, a := range assoc {
		parts := strings.SplitN(a, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -associate %q, want researcher=dev1,dev2", a)
		}
		researcher := strings.TrimSpace(parts[0])
		for _, dev := range strings.Split(parts[1], ",") {
			if dev = strings.TrimSpace(dev); dev != "" {
				srv.Associate(researcher, dev)
			}
		}
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("pogo-server: switchboard listening on %s (auto-register=%v)\n", srv.Addr(), autoReg)
	if metricsAddr != "" {
		// Feed /timeseries: sample the registry on a real-time cadence so
		// pogo-top and windowed rate queries have history to work with.
		stopSampling := obs.StartSampling(vclock.Real{}, reg, 5*time.Second, "server")
		defer stopSampling()
		go func() {
			if err := http.ListenAndServe(metricsAddr, obs.Handler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "pogo-server: metrics:", err)
			}
		}()
		fmt.Printf("pogo-server: metrics on http://%s/metrics (accounting on /accounting, series on /timeseries, alerts on /alerts)\n", metricsAddr)
	}
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, pprofMux()); err != nil {
				fmt.Fprintln(os.Stderr, "pogo-server: pprof:", err)
			}
		}()
		fmt.Printf("pogo-server: pprof on http://%s/debug/pprof/\n", pprofAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pogo-server: shutting down")
	return nil
}
