// Command pogo-server runs the central XMPP switchboard (the role Openfire
// plays in the paper, §4.6). It only routes messages and manages rosters;
// all Pogo semantics live in the device and collector nodes.
//
// Usage:
//
//	pogo-server -addr :5222 -associate researcher=dev1,dev2 -auto-register
//
// The -associate flag is the administrator's act of assigning devices to
// researchers (§3.1); it may be repeated.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"time"

	"pogo/internal/obs"
	"pogo/internal/vclock"
	"pogo/internal/xmpp"
)

type associations []string

func (a *associations) String() string { return strings.Join(*a, ";") }

func (a *associations) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5222", "TCP listen address")
		autoReg = flag.Bool("auto-register", true, "create accounts on first login (the paper's zero-registration model)")
		metrics = flag.String("metrics", "", "serve /metrics, /trace, /stats on this address (e.g. 127.0.0.1:8622); empty disables")
		offline = flag.Int("offline-queue", 64, "stanzas buffered per offline user and replayed on the next session; 0 bounces instead")
		assoc   associations
	)
	flag.Var(&assoc, "associate", "researcher=dev1,dev2 (repeatable)")
	flag.Parse()

	if err := run(*addr, *autoReg, *metrics, *offline, assoc); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-server:", err)
		os.Exit(1)
	}
}

func run(addr string, autoReg bool, metricsAddr string, offlineQueue int, assoc associations) error {
	var reg *obs.Registry
	if metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	srv := xmpp.NewServer(xmpp.ServerConfig{
		Addr: addr, AllowAutoRegister: autoReg, OfflineQueue: offlineQueue, Obs: reg,
	})
	for _, a := range assoc {
		parts := strings.SplitN(a, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -associate %q, want researcher=dev1,dev2", a)
		}
		researcher := strings.TrimSpace(parts[0])
		for _, dev := range strings.Split(parts[1], ",") {
			if dev = strings.TrimSpace(dev); dev != "" {
				srv.Associate(researcher, dev)
			}
		}
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("pogo-server: switchboard listening on %s (auto-register=%v)\n", srv.Addr(), autoReg)
	if metricsAddr != "" {
		// Feed /timeseries: sample the registry on a real-time cadence so
		// pogo-top and windowed rate queries have history to work with.
		stopSampling := obs.StartSampling(vclock.Real{}, reg, 5*time.Second, "server")
		defer stopSampling()
		go func() {
			if err := http.ListenAndServe(metricsAddr, obs.Handler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "pogo-server: metrics:", err)
			}
		}()
		fmt.Printf("pogo-server: metrics on http://%s/metrics (accounting on /accounting, series on /timeseries)\n", metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pogo-server: shutting down")
	return nil
}
