// Command pogo-top is "top" for a Pogo testbed: it polls a running
// pogo-server or pogo-collector's /accounting endpoint and renders a live
// per-entity table — which device, script, and channel is spending the
// joules, bytes, and CPU wake-ups (§6's per-script resource accounting).
//
// Usage:
//
//	pogo-top -addr 127.0.0.1:8622
//	pogo-top -addr 127.0.0.1:8622 -once
//
// The address is whatever the node's -metrics flag was set to.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pogo/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8622", "metrics address of a running pogo-server/pogo-collector")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	)
	flag.Parse()
	if err := run(*addr, *interval, *once); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-top:", err)
		os.Exit(1)
	}
}

func run(addr string, interval time.Duration, once bool) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/accounting"

	cur, err := fetch(url)
	if err != nil {
		return err
	}
	if once {
		fmt.Print(obs.RenderTop(nil, cur, 0))
		return nil
	}
	var prev []obs.AccountSnapshot
	prevAt := time.Now()
	for {
		// Until a second snapshot exists there is no interval to rate
		// against; dt=0 renders the rate columns as "-".
		dt := time.Since(prevAt)
		if prev == nil {
			dt = 0
		}
		// Clear and home, then redraw — the classic top(1) loop.
		fmt.Printf("\033[2J\033[H")
		fmt.Printf("pogo-top  %s  %s  (poll every %v, ctrl-c quits)\n\n",
			url, time.Now().Format("15:04:05"), interval)
		fmt.Print(obs.RenderTop(prev, cur, dt))
		prev, prevAt = cur, time.Now()
		time.Sleep(interval)
		next, err := fetch(url)
		if err != nil {
			return err
		}
		cur = next
	}
}

// fetch pulls and decodes one /accounting snapshot.
func fetch(url string) ([]obs.AccountSnapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var payload struct {
		Accounts []obs.AccountSnapshot `json:"accounts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return payload.Accounts, nil
}
