// Command pogo-top is "top" for a Pogo testbed: it polls a running
// pogo-server or pogo-collector's /accounting endpoint and renders a live
// per-entity table — which device, script, and channel is spending the
// joules, bytes, and CPU wake-ups (§6's per-script resource accounting).
// Pending and firing health alerts from /alerts are shown as a banner above
// the table. A failed poll is retried with capped exponential backoff rather
// than killing the display.
//
// Usage:
//
//	pogo-top -addr 127.0.0.1:8622
//	pogo-top -addr 127.0.0.1:8622 -once
//
// The address is whatever the node's -metrics flag was set to.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pogo/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8622", "metrics address of a running pogo-server/pogo-collector")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	)
	flag.Parse()
	if err := run(*addr, *interval, *once); err != nil {
		fmt.Fprintln(os.Stderr, "pogo-top:", err)
		os.Exit(1)
	}
}

// maxBackoff caps the retry delay when the polled node is unreachable.
const maxBackoff = 30 * time.Second

func run(addr string, interval time.Duration, once bool) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	accountURL := base + "/accounting"
	alertsURL := base + "/alerts"

	if once {
		cur, err := fetch(accountURL)
		if err != nil {
			return err
		}
		// Alerts are best-effort here: a node without a registry still
		// serves /accounting.
		alerts, _ := fetchAlerts(alertsURL)
		if banner := obs.RenderAlerts(alerts); banner != "" {
			fmt.Print(banner, "\n")
		}
		fmt.Print(obs.RenderTop(nil, cur, 0))
		return nil
	}

	var prev []obs.AccountSnapshot
	var prevAt time.Time
	backoff := interval
	for {
		cur, err := fetch(accountURL)
		if err != nil {
			// A dead poll is a transient, not a fatal: say so in one line
			// and retry with capped exponential backoff.
			fmt.Fprintf(os.Stderr, "pogo-top: %s unreachable (%v); retrying in %v\n",
				base, err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = interval
		alerts, _ := fetchAlerts(alertsURL)

		// Until a second snapshot exists there is no interval to rate
		// against; dt=0 renders the rate columns as "-".
		var dt time.Duration
		if prev != nil {
			dt = time.Since(prevAt)
		}
		// Clear and home, then redraw — the classic top(1) loop.
		fmt.Printf("\033[2J\033[H")
		fmt.Printf("pogo-top  %s  %s  (poll every %v, ctrl-c quits)\n\n",
			accountURL, time.Now().Format("15:04:05"), interval)
		if banner := obs.RenderAlerts(alerts); banner != "" {
			fmt.Print(banner, "\n")
		}
		fmt.Print(obs.RenderTop(prev, cur, dt))
		prev, prevAt = cur, time.Now()
		time.Sleep(interval)
	}
}

// fetch pulls and decodes one /accounting snapshot.
func fetch(url string) ([]obs.AccountSnapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var payload struct {
		Accounts []obs.AccountSnapshot `json:"accounts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return payload.Accounts, nil
}

// fetchAlerts pulls the rule states from /alerts; pending and firing rules
// become the banner above the entity table.
func fetchAlerts(url string) ([]obs.AlertSnapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var payload struct {
		Alerts []obs.AlertSnapshot `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return payload.Alerts, nil
}
