// Command pogod runs a Pogo device node: the middleware a volunteer's phone
// executes (§3.3 — install and go, no registration). Since this build runs
// on servers rather than phones, the phone hardware is simulated in real
// time: a battery model, a 3G modem with tail behaviour, and a Wi-Fi
// environment generated from a synthetic world in which the "user" follows
// a daily schedule.
//
// Usage:
//
//	pogod -server 127.0.0.1:5222 -id dev1 -state /tmp/pogo-dev1
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/env"
	"pogo/internal/obs"
	"pogo/internal/radio"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:5222", "switchboard address")
		id       = flag.String("id", "dev1", "device identity")
		password = flag.String("password", "pogo", "account password")
		stateDir = flag.String("state", "", "state directory (default: temp)")
		seed     = flag.Int64("seed", 42, "synthetic world seed")
		verbose  = flag.Bool("v", true, "print script output")
		hide     = flag.String("hide", "", "comma-separated channels the owner does NOT share (e.g. location,wifi-scan)")
		stats    = flag.Bool("stats", false, "dump the metrics registry on shutdown")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6062); empty disables")
	)
	flag.Parse()
	if err := run(*server, *id, *password, *stateDir, *seed, *verbose, *hide, *stats, *pprofAt); err != nil {
		fmt.Fprintln(os.Stderr, "pogod:", err)
		os.Exit(1)
	}
}

func run(server, id, password, stateDir string, seed int64, verbose bool, hide string, stats bool, pprofAddr string) error {
	var reg *obs.Registry
	if stats {
		reg = obs.NewRegistry()
		// The shutdown dump should cover the process itself, not just the
		// middleware: fold goroutine/heap/GC gauges into the registry.
		stopRuntime := obs.StartRuntimeSampler(reg)
		defer stopRuntime()
	}
	if pprofAddr != "" {
		// Flag-guarded profiler on its own mux — a device node never exposes
		// debug endpoints unless the operator asks.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "pogod: pprof:", err)
			}
		}()
		fmt.Printf("pogod: pprof on http://%s/debug/pprof/\n", pprofAddr)
	}
	privacy := core.NewPrivacy()
	for _, ch := range strings.Split(hide, ",") {
		if ch = strings.TrimSpace(ch); ch != "" {
			privacy.SetShared(ch, false)
		}
	}
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "pogod-"+id+"-")
		if err != nil {
			return err
		}
		stateDir = dir
	}
	storage, err := store.NewDirKV(filepath.Join(stateDir, "kv"))
	if err != nil {
		return err
	}

	clk := vclock.Real{}
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, radio.KPN)
	conn := radio.NewConnectivity(modem, nil)
	// Attribute energy to the ledger: the meter books every component except
	// the modem, which the modem instrument splits by RRC state instead.
	defer meter.Instrument(reg, id, "modem")()
	defer modem.Instrument(reg, id)()

	messenger, err := transport.DialXMPP(server, id, password, "phone")
	if err != nil {
		return fmt.Errorf("connect %s: %w", server, err)
	}
	defer messenger.Close()
	messenger.Instrument(reg)

	node, err := core.NewNode(core.Config{
		ID: id, Mode: core.DeviceMode, Clock: clk, Messenger: messenger,
		Device: droid, Modem: modem, Storage: storage, Privacy: privacy, Obs: reg,
		OutboxPath:  filepath.Join(stateDir, "outbox.log"),
		FlushPolicy: core.FlushInterval, FlushEvery: 15 * time.Second,
		OnPrint: func(script, text string) {
			if verbose {
				fmt.Printf("[%s] %s\n", script, text)
			}
		},
		OnScriptError: func(script string, err error) {
			fmt.Fprintf(os.Stderr, "[%s] error: %v\n", script, err)
		},
	})
	if err != nil {
		return err
	}
	defer node.Close()
	_ = conn

	// Synthetic sensing environment, anchored at process start.
	world := env.NewWorld(seed)
	schedule := world.GenerateSchedule(id, env.ScheduleConfig{Start: clk.Now(), Days: 365, Seed: seed})
	view := env.NewDeviceView(clk, schedule, seed+1)
	node.Sensors().Register(sensors.NewWifiScanSensor(node.Sensors(), view, sensors.WifiScanConfig{Meter: meter}))
	node.Sensors().Register(sensors.NewBatterySensor(node.Sensors(), droid))
	node.Sensors().Register(sensors.NewLocationSensor(node.Sensors(), view))

	fmt.Printf("pogod: %s attached to %s (state in %s); awaiting experiments\n", id, server, stateDir)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pogod: shutting down")
	if stats {
		node.Close() // flush the final per-script usage export
		obs.WriteText(os.Stdout, reg)
	}
	return nil
}
