// Package pogo is a from-scratch reproduction of "Pogo, a Middleware for
// Mobile Phone Sensing" (Brouwers & Langendoen, MIDDLEWARE 2012).
//
// Pogo turns a pool of volunteer smartphones into a shared research
// testbed: researchers push small JavaScript experiments onto remote
// devices, where a topic-based publish/subscribe framework connects sensors
// to scripts and — transparently across an XMPP switchboard — scripts to
// the researcher's collector machine. The middleware buffers outbound data
// durably and transmits it inside other applications' 3G tail-energy
// windows, reducing its own energy overhead to a few percent.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), runnable binaries under cmd/, and worked examples under
// examples/. The benchmarks in this package regenerate every table and
// figure of the paper's evaluation; run them with:
//
//	go test -bench=. -benchmem
//
// or print the full evaluation with:
//
//	go run ./cmd/pogo-bench -run all
package pogo
