// Live-xmpp: the same testbed as the quickstart, but over the real network
// stack — an in-process XMPP server on a TCP loopback socket, with the
// collector and the phone connecting as genuine XMPP clients. Everything
// runs on the real clock for a few seconds.
//
//	go run ./examples/live-xmpp
package main

import (
	"fmt"
	"os"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
	"pogo/internal/xmpp"
)

// startServer boots the switchboard and associates the pair.
func startServer() *xmpp.Server {
	srv := xmpp.NewServer(xmpp.ServerConfig{AllowAutoRegister: true})
	srv.Associate("researcher", "phone-1")
	if err := srv.Start(); err != nil {
		panic(err)
	}
	return srv
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live-xmpp:", err)
		os.Exit(1)
	}
}

func run() error {
	// The switchboard: a real XMPP-subset server on a TCP port.
	srv := startServer()
	defer srv.Close()
	fmt.Println("switchboard listening on", srv.Addr())

	clk := vclock.Real{}

	// Researcher side.
	colM, err := transport.DialXMPP(srv.Addr(), "researcher", "pw", "pc")
	if err != nil {
		return err
	}
	defer colM.Close()
	collector, err := core.NewNode(core.Config{
		ID: "researcher", Mode: core.CollectorMode, Clock: clk, Messenger: colM,
		FlushPolicy: core.FlushImmediate,
	})
	if err != nil {
		return err
	}
	defer collector.Close()

	// Volunteer side: real XMPP client, simulated phone hardware.
	devM, err := transport.DialXMPP(srv.Addr(), "phone-1", "pw", "phone")
	if err != nil {
		return err
	}
	defer devM.Close()
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, fastCarrier())
	phone, err := core.NewNode(core.Config{
		ID: "phone-1", Mode: core.DeviceMode, Clock: clk, Messenger: devM,
		Device: droid, Modem: modem, Storage: store.NewMemKV(),
		FlushPolicy: core.FlushImmediate,
	})
	if err != nil {
		return err
	}
	defer phone.Close()
	phone.Sensors().Register(sensors.NewBatterySensor(phone.Sensors(), droid))

	// Deploy a fast-sampling variant of the battery experiment so a few
	// seconds of wall clock produce several reports.
	fast := `setDescription('fast battery reporter');
subscribe('battery', function (m) {
  publish('battery-report', { voltage: m.voltage, level: m.level, t: m.timestamp });
}, { interval: 1000 });`
	if err := collector.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js")); err != nil {
		return err
	}
	if err := collector.Deploy("battery-fast.js", fast); err != nil {
		return err
	}

	fmt.Println("running for 5 seconds of real time...")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
	}

	lines := collector.Logs().Lines("battery")
	fmt.Printf("collector received %d battery reports over real TCP/XMPP:\n", len(lines))
	for i, l := range lines {
		if i >= 5 {
			fmt.Printf("   ... and %d more\n", len(lines)-i)
			break
		}
		fmt.Println("  ", l)
	}
	if len(lines) == 0 {
		return fmt.Errorf("no reports arrived")
	}
	return nil
}

// fastCarrier shrinks the radio timings so the demo is snappy in real time.
func fastCarrier() radio.CarrierProfile {
	c := radio.KPN
	c.RampUp = 50 * time.Millisecond
	c.Promote = 20 * time.Millisecond
	c.DCHTailTime = 200 * time.Millisecond
	c.FACHTailTime = 500 * time.Millisecond
	c.MinTxTime = 5 * time.Millisecond
	return c
}
