// Localization: the paper's flagship application (§4.1) end to end on a
// synthetic world — Wi-Fi scans are sanitized on the phone (scan.js),
// clustered into places with sliding-window DBSCAN (clustering.js), and the
// collector geocodes the cluster characterizations into annotated places
// (collect.js + the geolocation service).
//
//	go run ./examples/localization [-days 2] [-users 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/env"
	"pogo/internal/geo"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

func main() {
	days := flag.Int("days", 2, "simulated days")
	users := flag.Int("users", 2, "number of volunteers")
	flag.Parse()
	if err := run(*days, *users); err != nil {
		fmt.Fprintln(os.Stderr, "localization:", err)
		os.Exit(1)
	}
}

func run(days, users int) error {
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	world := env.NewWorld(7)

	collector, err := core.NewNode(core.Config{
		ID: "researcher", Mode: core.CollectorMode,
		Clock: clk, Messenger: sb.Port("researcher", nil),
	})
	if err != nil {
		return err
	}
	defer collector.Close()

	// Spin up the volunteers first so their homes exist before the survey.
	var phones []*core.Node
	for i := 1; i <= users; i++ {
		id := fmt.Sprintf("phone-%d", i)
		sb.Associate("researcher", id)
		schedule := world.GenerateSchedule(id, env.ScheduleConfig{
			Start: clk.Now(), Days: days, Seed: int64(100 + i),
		})
		view := env.NewDeviceView(clk, schedule, int64(200+i))

		meter := energy.NewMeter(clk)
		droid := android.NewDevice(clk, meter, android.Config{})
		modem := radio.NewModem(clk, meter, radio.KPN)
		conn := radio.NewConnectivity(modem, nil)
		phone, err := core.NewNode(core.Config{
			ID: id, Mode: core.DeviceMode,
			Clock: clk, Messenger: sb.Port(id, conn),
			Device: droid, Modem: modem, Storage: store.NewMemKV(),
			FlushPolicy: core.FlushInterval, FlushEvery: 5 * time.Minute,
		})
		if err != nil {
			return err
		}
		defer phone.Close()
		phone.Sensors().Register(sensors.NewWifiScanSensor(phone.Sensors(), view, sensors.WifiScanConfig{Meter: meter}))
		phones = append(phones, phone)
	}

	// The geolocation service knows every surveyed AP in the world.
	db := geo.NewDB()
	world.SurveyInto(db)
	svc := geo.NewService(db, collector.LocalContext().Broker())
	defer svc.Close()

	// Deploy the three-stage pipeline.
	if err := collector.DeployLocal("collect.js", scripts.MustSource("collect.js")); err != nil {
		return err
	}
	if err := collector.Deploy("scan.js", scripts.MustSource("scan.js")); err != nil {
		return err
	}
	if err := collector.Deploy("clustering.js", scripts.MustSource("clustering.js")); err != nil {
		return err
	}

	fmt.Printf("simulating %d volunteers for %d days...\n", users, days)
	for d := 0; d < days; d++ {
		clk.Advance(24 * time.Hour)
	}
	for _, p := range phones {
		p.Flush()
	}
	clk.Advance(10 * time.Minute)

	places := collector.Logs().Lines("places")
	fmt.Printf("\nannotated places in the collector database (%d records):\n", len(places))
	for i, l := range places {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", len(places)-i)
			break
		}
		fmt.Println("  ", l)
	}
	for _, p := range phones {
		st := p.Endpoint().Stats()
		fmt.Printf("%s: %d cluster messages sent (%d bytes on the wire)\n",
			p.ID(), st.MessagesSent, st.BytesSent)
	}
	return nil
}
