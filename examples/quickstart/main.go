// Quickstart: a complete Pogo testbed in one process — a switchboard, a
// simulated phone, and a collector — running the battery-reporting
// experiment of §5.2 for ten simulated minutes.
//
//	go run ./examples/quickstart
//
// The walk-through: the collector deploys battery.js (device side) and runs
// battery-collect.js locally; the collector script's subscription to the
// "battery" channel propagates to the phone, switches the battery sensor
// on at the requested 1/min rate, and the readings flow back through the
// durable outbox into the collector's log.
package main

import (
	"fmt"
	"os"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Everything runs on a simulated clock: ten minutes pass in
	// microseconds and the run is perfectly reproducible.
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	sb.Associate("researcher", "phone-1") // the administrator's act (§3.1)

	// --- the researcher's machine ---
	collector, err := core.NewNode(core.Config{
		ID: "researcher", Mode: core.CollectorMode,
		Clock: clk, Messenger: sb.Port("researcher", nil),
	})
	if err != nil {
		return err
	}
	defer collector.Close()

	// --- the volunteer's phone ---
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, radio.KPN)
	conn := radio.NewConnectivity(modem, nil)
	phone, err := core.NewNode(core.Config{
		ID: "phone-1", Mode: core.DeviceMode,
		Clock: clk, Messenger: sb.Port("phone-1", conn),
		Device: droid, Modem: modem, Storage: store.NewMemKV(),
		FlushPolicy: core.FlushTailSync, // piggyback on other apps' traffic (§4.7)
	})
	if err != nil {
		return err
	}
	defer phone.Close()
	phone.Sensors().Register(sensors.NewBatterySensor(phone.Sensors(), droid))

	// A third-party e-mail app checks mail every 5 minutes; Pogo rides its
	// transmission tails.
	email := android.NewPeriodicApp(clk, droid, modem, nil)
	email.Start()
	defer email.Stop()

	// --- the experiment ---
	if err := collector.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js")); err != nil {
		return err
	}
	if err := collector.Deploy("battery.js", scripts.MustSource("battery.js")); err != nil {
		return err
	}

	clk.Advance(10*time.Minute + 30*time.Second)

	lines := collector.Logs().Lines("battery")
	fmt.Printf("collector received %d battery reports in 10 simulated minutes:\n", len(lines))
	for _, l := range lines {
		fmt.Println("  ", l)
	}
	st := phone.Endpoint().Stats()
	fmt.Printf("\nphone transport: %d enqueued, %d sent, %d acked, %d flush passes\n",
		st.MessagesEnqueued, st.MessagesSent, st.MessagesAcked, st.Flushes)
	fmt.Printf("phone energy over the run: %.1f J (%v)\n", meter.Energy(), briefBreakdown(meter))
	fmt.Printf("tail detector: %d transmissions of other apps detected\n", phone.TailDetector().Fires())
	for _, u := range phone.ScriptUsages(core.DefaultPowerModel()) {
		fmt.Printf("script %s: %d entries, %d publishes, ~%.2f J estimated\n",
			u.Name, u.Entries, u.Publishes, u.EstimatedJoules)
	}
	return nil
}

func briefBreakdown(m *energy.Meter) string {
	b := m.EnergyBreakdown()
	return fmt.Sprintf("base %.1f J, cpu %.1f J, modem %.1f J", b["base"], b["cpu"], b["modem"])
}
