// RogueFinder: the paper's §5.1 expressiveness comparison (Listing 2) as a
// running system. The device reports Wi-Fi scans once per minute, but only
// while inside a geofence polygon — demonstrating parameterized
// subscriptions and the release/renew pattern, and that the Wi-Fi sensor
// really powers down while the user is outside the area.
//
//	go run ./examples/roguefinder
package main

import (
	"fmt"
	"os"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// wanderer feeds the location sensor: inside the Listing 2 polygon for 10
// minutes, then outside for 10, and back.
type wanderer struct {
	clk   vclock.Clock
	start time.Time
}

func (w *wanderer) Location(provider string) (sensors.Position, bool) {
	phase := int(w.clk.Now().Sub(w.start)/(10*time.Minute)) % 2
	if phase == 0 {
		return sensors.Position{Lat: 2.0, Lon: 1.0, Provider: provider, Accuracy: 10}, true
	}
	return sensors.Position{Lat: 40.0, Lon: 40.0, Provider: provider, Accuracy: 10}, true
}

type fixedScanner struct{ scans *int }

func (f fixedScanner) ScanWifi() []sensors.AccessPoint {
	*f.scans++
	return []sensors.AccessPoint{
		{BSSID: "de:ad:be:ef", SSID: "FreePublicWiFi", RSSI: -52},
		{BSSID: "ca:fe:ba:be", SSID: "definitely-not-rogue", RSSI: -61},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roguefinder:", err)
		os.Exit(1)
	}
}

func run() error {
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	sb.Associate("researcher", "phone-1")

	collector, err := core.NewNode(core.Config{
		ID: "researcher", Mode: core.CollectorMode,
		Clock: clk, Messenger: sb.Port("researcher", nil),
	})
	if err != nil {
		return err
	}
	defer collector.Close()

	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, radio.KPN)
	conn := radio.NewConnectivity(modem, nil)
	phone, err := core.NewNode(core.Config{
		ID: "phone-1", Mode: core.DeviceMode,
		Clock: clk, Messenger: sb.Port("phone-1", conn),
		Device: droid, Modem: modem, Storage: store.NewMemKV(),
		FlushPolicy: core.FlushImmediate,
	})
	if err != nil {
		return err
	}
	defer phone.Close()

	scans := 0
	phone.Sensors().Register(sensors.NewWifiScanSensor(phone.Sensors(), fixedScanner{&scans}, sensors.WifiScanConfig{Meter: meter}))
	phone.Sensors().Register(sensors.NewLocationSensor(phone.Sensors(), &wanderer{clk: clk, start: clk.Now()}))

	if err := collector.DeployLocal("roguefinder-collect.js", scripts.MustSource("roguefinder-collect.js")); err != nil {
		return err
	}
	if err := collector.Deploy("roguefinder.js", scripts.MustSource("roguefinder.js")); err != nil {
		return err
	}

	// Walk in and out of the polygon for 40 minutes, reporting per phase.
	prevReports, prevScans := 0, 0
	for phase := 0; phase < 4; phase++ {
		clk.Advance(10 * time.Minute)
		reports := len(collector.Logs().Lines("scans"))
		where := "inside geofence "
		if phase%2 == 1 {
			where = "outside geofence"
		}
		fmt.Printf("phase %d (%s): %2d scans taken, %2d reports received\n",
			phase+1, where, scans-prevScans, reports-prevReports)
		prevReports, prevScans = reports, scans
	}
	fmt.Printf("\ntotal reports at collector: %d\n", len(collector.Logs().Lines("scans")))
	fmt.Println("note: outside the polygon the subscription is released, so the")
	fmt.Println("Wi-Fi sensor stops scanning entirely — no energy, no data (§3.5).")
	return nil
}
