// Tailenergy: the §4.7 mechanism made visible. Renders the Figure 3 tail
// trace of a single 3G transmission, the Figure 4 synchronization timeline,
// and the flush-policy comparison showing what tail synchronization buys.
//
//	go run ./examples/tailenergy
package main

import (
	"fmt"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/radio"
)

func main() {
	fmt.Println(experiments.Figure3(radio.KPN).Render())
	fmt.Println(experiments.Figure4(16 * time.Minute).Render())
	fmt.Println(experiments.RenderFlushPolicies(experiments.AblationFlushPolicies()))
	fmt.Println(experiments.RenderDetectorPolling(experiments.AblationDetectorPolling()))
}
