// Testbed-admin: the paper's §6 future-work features working together —
// automated device↔researcher assignment by capability and region, the
// owner's per-channel privacy switch, and per-script power accounting.
//
//	go run ./examples/testbed-admin
package main

import (
	"fmt"
	"os"
	"time"

	"pogo/internal/android"
	"pogo/internal/assign"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "testbed-admin:", err)
		os.Exit(1)
	}
}

type phone struct {
	node    *core.Node
	privacy *core.Privacy
	meter   *energy.Meter
}

func run() error {
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	broker := assign.NewBroker()

	// Five volunteers install Pogo; their devices advertise capabilities.
	phones := map[string]*phone{}
	infos := []assign.DeviceInfo{
		{ID: "p1", Sensors: []string{"battery", "wifi-scan"}, Region: "nl-delft", BatteryLevel: 0.9},
		{ID: "p2", Sensors: []string{"battery"}, Region: "nl-delft", BatteryLevel: 0.7},
		{ID: "p3", Sensors: []string{"battery", "wifi-scan", "location"}, Region: "nl-delft", BatteryLevel: 0.95},
		{ID: "p4", Sensors: []string{"battery", "wifi-scan"}, Region: "us-boston", BatteryLevel: 0.8},
		{ID: "p5", Sensors: []string{"battery"}, Region: "nl-delft", BatteryLevel: 0.1}, // nearly empty
	}
	for _, info := range infos {
		p, err := newPhone(clk, sb, info.ID)
		if err != nil {
			return err
		}
		phones[info.ID] = p
		broker.Register(info)
	}

	// A researcher asks the (automated) administrator for two Delft devices
	// with battery sensors.
	col, err := core.NewNode(core.Config{
		ID: "researcher", Mode: core.CollectorMode,
		Clock: clk, Messenger: sb.Port("researcher", nil),
	})
	if err != nil {
		return err
	}
	defer col.Close()

	granted, err := broker.Assign(assign.Request{
		Researcher: "researcher",
		Sensors:    []string{"battery"},
		Region:     "nl-delft",
		Count:      2,
	}, sb)
	if err != nil {
		return err
	}
	fmt.Printf("assignment broker granted: %v (p4 wrong region, p5 battery too low)\n", granted)

	// Deploy the battery experiment to the granted devices.
	col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	col.Deploy("battery.js", scripts.MustSource("battery.js"))
	clk.Advance(5 * time.Minute)
	fmt.Printf("after 5 min: %d reports collected\n", len(col.Logs().Lines("battery")))

	// One volunteer flips the battery channel off in the Pogo UI.
	revoker := granted[0]
	fmt.Printf("\n%s's owner hides the battery channel...\n", revoker)
	phones[revoker].privacy.SetShared(sensors.ChannelBattery, false)
	before := countFrom(col.Logs().Lines("battery"), revoker)
	clk.Advance(5 * time.Minute)
	after := countFrom(col.Logs().Lines("battery"), revoker)
	fmt.Printf("reports from %s: %d before, +%d after hiding (others keep flowing)\n",
		revoker, before, after-before)

	// Per-script power accounting on a granted device that still shares.
	fmt.Println("\nper-script resource accounting (researcher's view of", granted[1], "):")
	for _, u := range phones[granted[1]].node.ScriptUsages(core.DefaultPowerModel()) {
		fmt.Printf("  %-12s entries=%-4d publishes=%-4d steps=%-8d ≈%.2f J\n",
			u.Name, u.Entries, u.Publishes, u.Steps, u.EstimatedJoules)
	}
	return nil
}

func newPhone(clk *vclock.Sim, sb *transport.Switchboard, id string) (*phone, error) {
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, radio.KPN)
	conn := radio.NewConnectivity(modem, nil)
	privacy := core.NewPrivacy()
	node, err := core.NewNode(core.Config{
		ID: id, Mode: core.DeviceMode, Clock: clk, Messenger: sb.Port(id, conn),
		Device: droid, Modem: modem, Storage: store.NewMemKV(),
		FlushPolicy: core.FlushImmediate, Privacy: privacy,
	})
	if err != nil {
		return nil, err
	}
	node.Sensors().Register(sensors.NewBatterySensor(node.Sensors(), droid))
	return &phone{node: node, privacy: privacy, meter: meter}, nil
}

func countFrom(lines []string, device string) int {
	n := 0
	for _, l := range lines {
		if len(l) >= len(device) && l[:len(device)] == device {
			n++
		}
	}
	return n
}
