module pogo

go 1.22
