package android

import (
	"sync"
	"time"

	"pogo/internal/radio"
	"pogo/internal/vclock"
)

// Span is one activity interval recorded by an ActivityLog.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time
}

// ActivityLog records named activity spans; the experiments use it to render
// the Figure 4 timeline (CPU / e-mail / Pogo activity blocks).
type ActivityLog struct {
	mu    sync.Mutex
	spans []Span
	open  map[string]time.Time
}

// NewActivityLog returns an empty log.
func NewActivityLog() *ActivityLog {
	return &ActivityLog{open: make(map[string]time.Time)}
}

// Begin opens a span for name at the given instant. A second Begin for the
// same name before End restarts the span.
func (l *ActivityLog) Begin(name string, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.open[name] = at
}

// End closes the open span for name. Without a matching Begin it is a no-op.
func (l *ActivityLog) End(name string, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start, ok := l.open[name]
	if !ok {
		return
	}
	delete(l.open, name)
	l.spans = append(l.spans, Span{Name: name, Start: start, End: at})
}

// Mark records an instantaneous event as a zero-length span.
func (l *ActivityLog) Mark(name string, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spans = append(l.spans, Span{Name: name, Start: at, End: at})
}

// Spans returns a copy of the closed spans in recording order.
func (l *ActivityLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}

// SpansFor returns the closed spans with the given name.
func (l *ActivityLog) SpansFor(name string) []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Span
	for _, s := range l.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// PeriodicApp models a third-party background application — the e-mail
// client of §5.2 — that wakes the device on an alarm every Interval, holds a
// wake lock while it transfers data over the given link, and goes back to
// sleep. Its transmissions are what Pogo's tail detector piggybacks on.
type PeriodicApp struct {
	Name string
	// Interval between checks (the paper's experiment: 5 minutes).
	Interval time.Duration
	// TxBytes/RxBytes moved per check (an IMAP poll: small up, bigger down).
	TxBytes int64
	RxBytes int64
	// Process is extra wake-lock time after the transfer (parsing mail).
	Process time.Duration

	clk  vclock.Clock
	dev  *Device
	link radio.DataLink
	log  *ActivityLog

	mu      sync.Mutex
	running bool
	alarm   vclock.Timer
	checks  int
}

// NewPeriodicApp returns an e-mail-checker-shaped background app. log may be
// nil.
func NewPeriodicApp(clk vclock.Clock, dev *Device, link radio.DataLink, log *ActivityLog) *PeriodicApp {
	return &PeriodicApp{
		Name:     "email",
		Interval: 5 * time.Minute,
		TxBytes:  2 * 1024,
		RxBytes:  12 * 1024,
		Process:  300 * time.Millisecond,
		clk:      clk,
		dev:      dev,
		link:     link,
		log:      log,
	}
}

// Start schedules the first check one Interval from now.
func (a *PeriodicApp) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running {
		return
	}
	a.running = true
	a.scheduleLocked()
}

// Stop cancels future checks; an in-flight check completes normally.
func (a *PeriodicApp) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.running = false
	if a.alarm != nil {
		a.alarm.Stop()
		a.alarm = nil
	}
}

// Checks returns how many checks have started.
func (a *PeriodicApp) Checks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checks
}

func (a *PeriodicApp) scheduleLocked() {
	a.alarm = a.dev.SetAlarm(a.Interval, a.check)
}

func (a *PeriodicApp) check() {
	a.mu.Lock()
	if !a.running {
		a.mu.Unlock()
		return
	}
	a.checks++
	a.scheduleLocked()
	a.mu.Unlock()

	lock := a.Name + "-check"
	a.dev.AcquireWakeLock(lock)
	if a.log != nil {
		a.log.Begin(a.Name, a.clk.Now())
	}
	a.link.Transfer(a.TxBytes, a.RxBytes, func() {
		a.clk.AfterFunc(a.Process, func() {
			if a.log != nil {
				a.log.End(a.Name, a.clk.Now())
			}
			a.dev.ReleaseWakeLock(lock)
		})
	})
}
