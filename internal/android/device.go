// Package android simulates the aspects of the Android platform that Pogo's
// power management depends on (§4.5 and §4.7 of the paper):
//
//   - a CPU that deep-sleeps when no application holds a wake lock, waking
//     only for alarms (and lingering awake for a short period after each
//     wake-worthy event, "typically more than a second");
//   - wake locks;
//   - RTC wake-up alarms (AlarmManager);
//   - uptime timers with Thread.sleep semantics: while the CPU sleeps the
//     timers that govern sleeping threads are frozen, so a sleeping thread
//     only resumes after something *else* wakes the CPU. Pogo's tail
//     detector is built entirely on this side effect.
//
// A Device also owns the battery model used by the battery sensor.
package android

import (
	"sync"
	"time"

	"pogo/internal/energy"
	"pogo/internal/vclock"
)

// Config sets device parameters; zero fields take defaults.
type Config struct {
	// BasePower is the always-on floor draw in watts (baseband standby,
	// RAM refresh). Default 0.010 W.
	BasePower float64
	// CPUAwakePower is the additional draw while the CPU is awake (screen
	// off, mostly idle-awake). Default 0.150 W.
	CPUAwakePower float64
	// Linger is how long the CPU stays awake after the last wake-worthy
	// event once no wake locks are held. Default 1200 ms.
	Linger time.Duration
	// BatteryCapacityJoules sets the battery model's capacity. Default
	// 23328 J (≈1750 mAh at 3.7 V, a Galaxy Nexus battery).
	BatteryCapacityJoules float64
}

func (c Config) withDefaults() Config {
	if c.BasePower == 0 {
		c.BasePower = 0.010
	}
	if c.CPUAwakePower == 0 {
		c.CPUAwakePower = 0.150
	}
	if c.Linger == 0 {
		c.Linger = 1200 * time.Millisecond
	}
	if c.BatteryCapacityJoules == 0 {
		c.BatteryCapacityJoules = 23328
	}
	return c
}

// Device is a simulated Android phone's power core. The zero value is not
// usable; construct with NewDevice. All methods are goroutine-safe.
type Device struct {
	clk   vclock.Clock
	meter *energy.Meter
	cfg   Config

	mu           sync.Mutex
	awake        bool
	awakeSince   time.Time
	awakeAccum   time.Duration
	wakeLocks    map[string]int
	lastPoke     time.Time
	sleepTimer   vclock.Timer
	uptimeTimers map[int]*uptimeTimer
	nextTimerID  int
	listeners    []func(awake bool, at time.Time)
	pendingState []cpuChange
}

// NewDevice returns an awake device (as after boot) that immediately starts
// its linger countdown. meter may be nil.
func NewDevice(clk vclock.Clock, meter *energy.Meter, cfg Config) *Device {
	d := &Device{
		clk:          clk,
		meter:        meter,
		cfg:          cfg.withDefaults(),
		wakeLocks:    make(map[string]int),
		uptimeTimers: make(map[int]*uptimeTimer),
	}
	if meter != nil {
		meter.Set("base", d.cfg.BasePower)
	}
	d.mu.Lock()
	d.wakeLocked()
	d.pokeLocked()
	d.unlockAndNotify()
	return d
}

// Awake reports whether the CPU is currently awake.
func (d *Device) Awake() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.awake
}

// Uptime returns cumulative CPU-awake time since construction — the analogue
// of SystemClock.uptimeMillis(), which excludes deep sleep.
func (d *Device) Uptime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.uptimeLocked()
}

func (d *Device) uptimeLocked() time.Duration {
	up := d.awakeAccum
	if d.awake {
		up += d.clk.Now().Sub(d.awakeSince)
	}
	return up
}

// OnCPUStateChange registers a listener for awake/sleep transitions, called
// with the device unlocked.
func (d *Device) OnCPUStateChange(fn func(awake bool, at time.Time)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.listeners = append(d.listeners, fn)
}

// AcquireWakeLock takes (or re-enters) the named wake lock, waking the CPU.
func (d *Device) AcquireWakeLock(name string) {
	d.mu.Lock()
	d.wakeLocks[name]++
	d.wakeLocked()
	d.pokeLocked()
	d.unlockAndNotify()
}

// ReleaseWakeLock releases one hold on the named lock. When the last lock is
// released the linger countdown starts.
func (d *Device) ReleaseWakeLock(name string) {
	d.mu.Lock()
	if n := d.wakeLocks[name]; n > 1 {
		d.wakeLocks[name] = n - 1
	} else {
		delete(d.wakeLocks, name)
	}
	d.pokeLocked()
	d.unlockAndNotify()
}

// WakeLocksHeld returns the number of distinct wake locks currently held.
func (d *Device) WakeLocksHeld() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.wakeLocks)
}

// SetAlarm schedules fn after d elapsed *real* time, waking the CPU for its
// delivery — the analogue of AlarmManager.RTC_WAKEUP. The alarm itself pokes
// the CPU awake for a linger period even if fn returns immediately; this is
// the per-wakeup overhead that makes 1 s alarm polling prohibitive (§4.7).
func (d *Device) SetAlarm(delay time.Duration, fn func()) vclock.Timer {
	return d.SetAlarmInfo(delay, func(bool) { fn() })
}

// SetAlarmInfo is SetAlarm with attribution: fn learns whether this alarm's
// delivery pulled the CPU out of deep sleep (and therefore caused a full
// linger window of awake time), or merely rode a CPU that was already awake.
// The scheduler uses this to charge wake-milliseconds to the script whose
// task forced the wakeup.
func (d *Device) SetAlarmInfo(delay time.Duration, fn func(wokeCPU bool)) vclock.Timer {
	return d.clk.AfterFunc(delay, func() {
		d.mu.Lock()
		wasAsleep := !d.awake
		d.wakeLocked()
		d.pokeLocked()
		d.unlockAndNotify()
		fn(wasAsleep)
	})
}

// Linger returns how long the CPU stays awake after the last wake-worthy
// event, for callers that attribute wake-up cost.
func (d *Device) Linger() time.Duration { return d.cfg.Linger }

// UptimeTimer is a handle on an UptimeAfterFunc callback.
type UptimeTimer struct {
	dev *Device
	id  int
}

// Stop cancels the callback, reporting whether it was prevented.
func (t *UptimeTimer) Stop() bool {
	t.dev.mu.Lock()
	defer t.dev.mu.Unlock()
	ut, ok := t.dev.uptimeTimers[t.id]
	if !ok {
		return false
	}
	if ut.underlying != nil {
		ut.underlying.Stop()
	}
	delete(t.dev.uptimeTimers, t.id)
	return true
}

type uptimeTimer struct {
	id         int
	remaining  time.Duration
	armedAt    time.Time // valid while underlying != nil
	underlying vclock.Timer
	fn         func()
}

// UptimeAfterFunc schedules fn after the CPU has accumulated d more awake
// time — Thread.sleep semantics. While the CPU sleeps the countdown is
// frozen; the callback therefore only ever fires while the CPU is awake,
// and firing does NOT extend the CPU's awake window (a sleeping thread
// holds no wake lock).
func (d *Device) UptimeAfterFunc(delay time.Duration, fn func()) *UptimeTimer {
	if delay < 0 {
		delay = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextTimerID
	d.nextTimerID++
	ut := &uptimeTimer{id: id, remaining: delay, fn: fn}
	d.uptimeTimers[id] = ut
	if d.awake {
		d.armLocked(ut)
	}
	return &UptimeTimer{dev: d, id: id}
}

// armLocked starts ut's underlying clock timer. Caller holds mu and the
// device is awake.
func (d *Device) armLocked(ut *uptimeTimer) {
	ut.armedAt = d.clk.Now()
	id := ut.id
	ut.underlying = d.clk.AfterFunc(ut.remaining, func() {
		d.mu.Lock()
		cur, ok := d.uptimeTimers[id]
		if !ok || cur != ut {
			d.mu.Unlock()
			return
		}
		delete(d.uptimeTimers, id)
		d.mu.Unlock()
		ut.fn()
	})
}

// pokeLocked records a wake-worthy event and (re)schedules the sleep check.
func (d *Device) pokeLocked() {
	now := d.clk.Now()
	d.lastPoke = now
	if d.sleepTimer != nil {
		d.sleepTimer.Stop()
	}
	d.sleepTimer = d.clk.AfterFunc(d.cfg.Linger, d.sleepCheck)
}

// sleepCheck puts the CPU to sleep when no wake locks are held and the
// linger window has elapsed.
func (d *Device) sleepCheck() {
	d.mu.Lock()
	now := d.clk.Now()
	if !d.awake || len(d.wakeLocks) > 0 || now.Sub(d.lastPoke) < d.cfg.Linger {
		d.mu.Unlock()
		return
	}
	d.awakeAccum += now.Sub(d.awakeSince)
	d.awake = false
	if d.meter != nil {
		d.meter.Set("cpu", 0)
	}
	// Freeze uptime timers: bank the awake time they have consumed.
	for _, ut := range d.uptimeTimers {
		if ut.underlying != nil {
			ut.underlying.Stop()
			ut.underlying = nil
			elapsed := now.Sub(ut.armedAt)
			ut.remaining -= elapsed
			if ut.remaining < 0 {
				ut.remaining = 0
			}
		}
	}
	d.pendingState = append(d.pendingState, cpuChange{awake: false, at: now})
	d.unlockAndNotify()
}

// wakeLocked brings the CPU out of deep sleep. Caller holds mu.
func (d *Device) wakeLocked() {
	if d.awake {
		return
	}
	now := d.clk.Now()
	d.awake = true
	d.awakeSince = now
	if d.meter != nil {
		d.meter.Set("cpu", d.cfg.CPUAwakePower)
	}
	// Thaw uptime timers.
	for _, ut := range d.uptimeTimers {
		if ut.underlying == nil {
			d.armLocked(ut)
		}
	}
	d.pendingState = append(d.pendingState, cpuChange{awake: true, at: now})
}

type cpuChange struct {
	awake bool
	at    time.Time
}

func (d *Device) unlockAndNotify() {
	pending := d.pendingState
	d.pendingState = nil
	listeners := make([]func(bool, time.Time), len(d.listeners))
	copy(listeners, d.listeners)
	d.mu.Unlock()
	for _, ch := range pending {
		for _, fn := range listeners {
			fn(ch.awake, ch.at)
		}
	}
}

// BatteryVoltage derives a battery voltage from cumulative energy use — a
// simple linear discharge from 4.20 V (full) to 3.50 V (empty). With no
// meter attached it reports a constant 4.05 V.
func (d *Device) BatteryVoltage() float64 {
	if d.meter == nil {
		return 4.05
	}
	frac := d.meter.Energy() / d.cfg.BatteryCapacityJoules
	if frac > 1 {
		frac = 1
	}
	return 4.20 - 0.70*frac
}

// BatteryLevel reports remaining charge in [0,1] under the same model.
func (d *Device) BatteryLevel() float64 {
	if d.meter == nil {
		return 1
	}
	frac := 1 - d.meter.Energy()/d.cfg.BatteryCapacityJoules
	if frac < 0 {
		frac = 0
	}
	return frac
}
