package android

import (
	"math"
	"testing"
	"time"

	"pogo/internal/energy"
	"pogo/internal/radio"
	"pogo/internal/vclock"
)

func newTestDevice(t *testing.T) (*vclock.Sim, *energy.Meter, *Device) {
	t.Helper()
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	dev := NewDevice(clk, meter, Config{})
	return clk, meter, dev
}

func TestDeviceSleepsAfterLinger(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	if !dev.Awake() {
		t.Fatal("device not awake after boot")
	}
	clk.Advance(2 * time.Second)
	if dev.Awake() {
		t.Error("device still awake past linger with no wake locks")
	}
}

func TestWakeLockKeepsAwake(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	dev.AcquireWakeLock("app")
	clk.Advance(time.Hour)
	if !dev.Awake() {
		t.Fatal("device slept while wake lock held")
	}
	dev.ReleaseWakeLock("app")
	clk.Advance(2 * time.Second)
	if dev.Awake() {
		t.Error("device awake after lock release + linger")
	}
}

func TestWakeLockRefCounting(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	dev.AcquireWakeLock("a")
	dev.AcquireWakeLock("a")
	dev.AcquireWakeLock("b")
	if dev.WakeLocksHeld() != 2 {
		t.Errorf("WakeLocksHeld = %d, want 2 distinct", dev.WakeLocksHeld())
	}
	dev.ReleaseWakeLock("a")
	clk.Advance(time.Minute)
	if !dev.Awake() {
		t.Error("slept while lock a still has one holder")
	}
	dev.ReleaseWakeLock("a")
	dev.ReleaseWakeLock("b")
	clk.Advance(2 * time.Second)
	if dev.Awake() {
		t.Error("awake after all locks released")
	}
}

func TestAlarmWakesCPU(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	clk.Advance(5 * time.Second) // device asleep now
	fired := false
	wasAwake := false
	dev.SetAlarm(time.Minute, func() {
		fired = true
		wasAwake = dev.Awake()
	})
	clk.Advance(2 * time.Minute)
	if !fired {
		t.Fatal("alarm never fired")
	}
	if !wasAwake {
		t.Error("CPU not awake during alarm delivery")
	}
	if dev.Awake() {
		t.Error("device still awake long after alarm linger")
	}
}

func TestUptimeExcludesSleep(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	// Awake for linger (1.2 s) then asleep.
	clk.Advance(time.Hour)
	up := dev.Uptime()
	if up > 2*time.Second || up < time.Second {
		t.Errorf("Uptime = %v, want ≈1.2s (linger only)", up)
	}
	dev.AcquireWakeLock("x")
	clk.Advance(10 * time.Second)
	got := dev.Uptime() - up
	if math.Abs(got.Seconds()-10) > 0.001 {
		t.Errorf("Uptime delta = %v, want 10s", got)
	}
}

func TestUptimeTimerFreezesDuringSleep(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	var firedAt time.Time
	// 5 s of awake time needed; the device sleeps after 1.2 s, so the timer
	// must NOT fire until something else wakes the CPU for long enough.
	dev.UptimeAfterFunc(5*time.Second, func() { firedAt = clk.Now() })
	clk.Advance(time.Hour)
	if !firedAt.IsZero() {
		t.Fatalf("uptime timer fired at %v while CPU mostly asleep", firedAt)
	}
	// Hold the CPU awake; the timer already consumed ~1.2 s of its budget.
	dev.AcquireWakeLock("x")
	start := clk.Now()
	clk.Advance(10 * time.Second)
	if firedAt.IsZero() {
		t.Fatal("uptime timer never fired while awake")
	}
	elapsed := firedAt.Sub(start)
	if elapsed > 4*time.Second || elapsed < 3*time.Second {
		t.Errorf("fired after %v awake, want ≈3.8s (5s minus banked linger)", elapsed)
	}
}

func TestUptimeTimerSleepLoopSynchronizesWithAlarms(t *testing.T) {
	// The §4.7 scenario: Pogo polls every 1 s of uptime; the CPU sleeps;
	// an e-mail alarm at t=300 s wakes it; Pogo's frozen timer then fires
	// within the email's awake window.
	clk, _, dev := newTestDevice(t)
	var pogoFires []time.Time
	var tick func()
	tick = func() {
		pogoFires = append(pogoFires, clk.Now())
		dev.UptimeAfterFunc(time.Second, tick)
	}
	dev.UptimeAfterFunc(time.Second, tick)

	alarmAt := clk.Now().Add(5 * time.Minute)
	dev.SetAlarm(5*time.Minute, func() {
		dev.AcquireWakeLock("email")
		clk.AfterFunc(3*time.Second, func() { dev.ReleaseWakeLock("email") })
	})
	clk.Advance(10 * time.Minute)

	if len(pogoFires) == 0 {
		t.Fatal("pogo loop never ran")
	}
	// Some fires happen in the initial linger window; at least two must land
	// inside the email window [alarmAt, alarmAt+4.2s].
	inWindow := 0
	for _, at := range pogoFires {
		if !at.Before(alarmAt) && at.Before(alarmAt.Add(4200*time.Millisecond)) {
			inWindow++
		}
	}
	if inWindow < 2 {
		t.Errorf("only %d pogo polls inside email awake window; fires=%v", inWindow, pogoFires)
	}
	// And none in the dead of sleep, e.g. minute 2-4.
	for _, at := range pogoFires {
		d := at.Sub(vclock.SimEpoch)
		if d > 2*time.Minute && d < 4*time.Minute {
			t.Errorf("pogo poll at %v while CPU deep-asleep", d)
		}
	}
}

func TestUptimeTimerStop(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	fired := false
	tm := dev.UptimeAfterFunc(500*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop = false")
	}
	if tm.Stop() {
		t.Error("second Stop = true")
	}
	clk.Advance(time.Minute)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestUptimeTimerFiringDoesNotExtendAwake(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	// Chain of 0.3 s uptime timers: without wake locks the CPU must still
	// sleep at ~1.2 s; a thread in a sleep loop cannot keep it awake.
	var tick func()
	tick = func() { dev.UptimeAfterFunc(300*time.Millisecond, tick) }
	dev.UptimeAfterFunc(300*time.Millisecond, tick)
	clk.Advance(10 * time.Second)
	if dev.Awake() {
		t.Error("uptime-timer loop kept CPU awake")
	}
}

func TestCPUStateListener(t *testing.T) {
	clk, _, dev := newTestDevice(t)
	var changes []bool
	dev.OnCPUStateChange(func(awake bool, _ time.Time) { changes = append(changes, awake) })
	clk.Advance(5 * time.Second) // sleep
	dev.AcquireWakeLock("x")     // wake
	dev.ReleaseWakeLock("x")
	clk.Advance(5 * time.Second) // sleep
	want := []bool{false, true, false}
	if len(changes) != len(want) {
		t.Fatalf("changes = %v", changes)
	}
	for i := range want {
		if changes[i] != want[i] {
			t.Errorf("change %d = %v", i, changes[i])
		}
	}
}

func TestCPUEnergyAccounting(t *testing.T) {
	clk, meter, dev := newTestDevice(t)
	clk.Advance(time.Hour)
	// Awake 1.2 s @ (0.15+0.01) W, asleep 3598.8 s @ 0.01 W.
	want := 1.2*0.16 + 3598.8*0.01
	if got := meter.Energy(); math.Abs(got-want) > 0.01 {
		t.Errorf("Energy = %v, want ≈%v", got, want)
	}
	_ = dev
}

func TestBatteryModel(t *testing.T) {
	clk, meter, dev := newTestDevice(t)
	if v := dev.BatteryVoltage(); math.Abs(v-4.20) > 0.01 {
		t.Errorf("fresh voltage = %v", v)
	}
	if l := dev.BatteryLevel(); math.Abs(l-1.0) > 0.001 {
		t.Errorf("fresh level = %v", l)
	}
	meter.Set("drain", 10) // 10 W — drains fast
	clk.Advance(time.Hour) // 36000 J > capacity
	if v := dev.BatteryVoltage(); math.Abs(v-3.50) > 0.01 {
		t.Errorf("drained voltage = %v", v)
	}
	if l := dev.BatteryLevel(); l != 0 {
		t.Errorf("drained level = %v", l)
	}
	noMeter := NewDevice(clk, nil, Config{})
	if noMeter.BatteryVoltage() != 4.05 || noMeter.BatteryLevel() != 1 {
		t.Error("nil-meter battery defaults wrong")
	}
}

func TestPeriodicAppChecksAndStops(t *testing.T) {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	dev := NewDevice(clk, meter, Config{})
	modem := radio.NewModem(clk, meter, radio.KPN)
	log := NewActivityLog()
	app := NewPeriodicApp(clk, dev, modem, log)
	app.Start()
	app.Start() // idempotent
	clk.Advance(26 * time.Minute)
	if got := app.Checks(); got != 5 {
		t.Errorf("Checks = %d, want 5 in 26 min at 5-min interval", got)
	}
	spans := log.SpansFor("email")
	if len(spans) != 5 {
		t.Errorf("email spans = %d", len(spans))
	}
	for _, s := range spans {
		if !s.End.After(s.Start) {
			t.Errorf("span %+v not positive", s)
		}
	}
	if modem.Stats().RxBytes != 5*12*1024 {
		t.Errorf("RxBytes = %d", modem.Stats().RxBytes)
	}
	app.Stop()
	clk.Advance(time.Hour)
	if app.Checks() != 5 {
		t.Error("app kept checking after Stop")
	}
	// Wake locks must all be released; CPU asleep.
	if dev.Awake() || dev.WakeLocksHeld() != 0 {
		t.Error("app leaked wake locks")
	}
}

func TestActivityLog(t *testing.T) {
	l := NewActivityLog()
	t0 := vclock.SimEpoch
	l.Begin("x", t0)
	l.End("x", t0.Add(time.Second))
	l.End("y", t0) // no begin: no-op
	l.Mark("z", t0.Add(2*time.Second))
	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Name != "x" || spans[0].End.Sub(spans[0].Start) != time.Second {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "z" || spans[1].Start != spans[1].End {
		t.Errorf("mark span = %+v", spans[1])
	}
	if got := l.SpansFor("x"); len(got) != 1 {
		t.Errorf("SpansFor(x) = %+v", got)
	}
}

func TestDeviceConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BasePower != 0.010 || cfg.CPUAwakePower != 0.150 ||
		cfg.Linger != 1200*time.Millisecond || cfg.BatteryCapacityJoules != 23328 {
		t.Errorf("defaults = %+v", cfg)
	}
	custom := Config{BasePower: 1, CPUAwakePower: 2, Linger: time.Second, BatteryCapacityJoules: 3}.withDefaults()
	if custom.BasePower != 1 || custom.CPUAwakePower != 2 || custom.Linger != time.Second || custom.BatteryCapacityJoules != 3 {
		t.Errorf("custom overridden: %+v", custom)
	}
}
