// Package assign implements the automated device↔researcher matching of the
// paper's future work (§6: "automate the assignment process between devices
// and researchers based on information such as device capabilities and
// geographical location").
//
// Devices advertise their capabilities (sensor set, region, battery level);
// researchers submit requests (required sensors, region, device count). The
// broker — the testbed administrator's role automated (§3.1) — picks the
// matching devices with the lightest experiment load and creates the
// double-blind associations at the switchboard.
package assign

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DeviceInfo is one device's advertisement.
type DeviceInfo struct {
	ID string
	// Sensors lists the channels the device can provide (and its owner is
	// willing to share, §3.3).
	Sensors []string
	// Region is a coarse location label ("nl-delft"); "" means undisclosed.
	Region string
	// BatteryLevel in [0,1]; low-battery devices are assigned last.
	BatteryLevel float64
	// MaxExperiments caps concurrent assignments (0 = default 4).
	MaxExperiments int
}

// Request is a researcher's resource ask.
type Request struct {
	Researcher string
	// Sensors the experiment needs; every listed channel must be available.
	Sensors []string
	// Region restricts candidates; "" accepts any region.
	Region string
	// Count is the number of devices wanted.
	Count int
	// MinBattery filters out nearly-empty devices (default 0.15).
	MinBattery float64
}

// Associator creates roster links; both the XMPP server and the in-memory
// switchboard implement it.
type Associator interface {
	Associate(a, b string)
}

// ErrUnsatisfiable reports that fewer devices matched than requested.
var ErrUnsatisfiable = errors.New("assign: not enough matching devices")

// Broker matches requests to devices. The zero value is not usable;
// construct with NewBroker.
type Broker struct {
	mu      sync.Mutex
	devices map[string]DeviceInfo
	load    map[string]int
	granted map[string]map[string]bool // researcher → device set
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		devices: make(map[string]DeviceInfo),
		load:    make(map[string]int),
		granted: make(map[string]map[string]bool),
	}
}

// Register adds or refreshes a device advertisement (devices re-advertise
// when capabilities or sharing settings change).
func (b *Broker) Register(info DeviceInfo) error {
	if info.ID == "" {
		return errors.New("assign: device needs an ID")
	}
	if info.MaxExperiments == 0 {
		info.MaxExperiments = 4
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.devices[info.ID] = info
	return nil
}

// Unregister removes a device (uninstalled, or the owner opted out).
func (b *Broker) Unregister(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.devices, id)
}

// Devices returns the registered device IDs, sorted.
func (b *Broker) Devices() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.devices))
	for id := range b.devices {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load returns how many experiments a device currently serves.
func (b *Broker) Load(id string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.load[id]
}

// Assign satisfies a request: it selects Count matching devices —
// preferring lightly-loaded, well-charged ones — records the grants, and
// creates the associations. On ErrUnsatisfiable nothing is assigned.
func (b *Broker) Assign(req Request, a Associator) ([]string, error) {
	if req.Researcher == "" {
		return nil, errors.New("assign: request needs a researcher")
	}
	if req.Count <= 0 {
		return nil, errors.New("assign: request needs a positive count")
	}
	minBattery := req.MinBattery
	if minBattery == 0 {
		minBattery = 0.15
	}

	b.mu.Lock()
	var candidates []DeviceInfo
	for _, d := range b.devices {
		if b.granted[req.Researcher][d.ID] {
			continue // already assigned to this researcher
		}
		if b.load[d.ID] >= d.MaxExperiments {
			continue
		}
		if d.BatteryLevel < minBattery {
			continue
		}
		if req.Region != "" && d.Region != req.Region {
			continue
		}
		if !hasAll(d.Sensors, req.Sensors) {
			continue
		}
		candidates = append(candidates, d)
	}
	if len(candidates) < req.Count {
		b.mu.Unlock()
		return nil, fmt.Errorf("%w: %d of %d for %s",
			ErrUnsatisfiable, len(candidates), req.Count, req.Researcher)
	}
	// Lightest load first, then highest battery, then ID for determinism.
	sort.Slice(candidates, func(i, j int) bool {
		li, lj := b.load[candidates[i].ID], b.load[candidates[j].ID]
		if li != lj {
			return li < lj
		}
		if candidates[i].BatteryLevel != candidates[j].BatteryLevel {
			return candidates[i].BatteryLevel > candidates[j].BatteryLevel
		}
		return candidates[i].ID < candidates[j].ID
	})
	picked := make([]string, 0, req.Count)
	for _, d := range candidates[:req.Count] {
		picked = append(picked, d.ID)
		b.load[d.ID]++
		if b.granted[req.Researcher] == nil {
			b.granted[req.Researcher] = make(map[string]bool)
		}
		b.granted[req.Researcher][d.ID] = true
	}
	b.mu.Unlock()

	for _, id := range picked {
		a.Associate(req.Researcher, id)
	}
	sort.Strings(picked)
	return picked, nil
}

// Release returns a researcher's devices to the pool (experiment over).
// It does not dissociate at the switchboard; callers owning a server can.
func (b *Broker) Release(researcher string, deviceIDs ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, id := range deviceIDs {
		if b.granted[researcher][id] {
			delete(b.granted[researcher], id)
			if b.load[id] > 0 {
				b.load[id]--
			}
		}
	}
}

// Granted lists the devices currently assigned to a researcher, sorted.
func (b *Broker) Granted(researcher string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.granted[researcher]))
	for id := range b.granted[researcher] {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func hasAll(have, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}
