package assign

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

type fakeAssociator struct {
	mu    sync.Mutex
	pairs [][2]string
}

func (f *fakeAssociator) Associate(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pairs = append(f.pairs, [2]string{a, b})
}

func dev(id string, sensors ...string) DeviceInfo {
	return DeviceInfo{ID: id, Sensors: sensors, Region: "nl-delft", BatteryLevel: 0.9}
}

func TestAssignBySensorCapability(t *testing.T) {
	b := NewBroker()
	b.Register(dev("d1", "battery", "wifi-scan"))
	b.Register(dev("d2", "battery"))
	b.Register(dev("d3", "battery", "wifi-scan", "location"))

	a := &fakeAssociator{}
	got, err := b.Assign(Request{Researcher: "r1", Sensors: []string{"wifi-scan"}, Count: 2}, a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"d1", "d3"}) {
		t.Errorf("got %v", got)
	}
	if len(a.pairs) != 2 {
		t.Errorf("associations = %v", a.pairs)
	}
	if !reflect.DeepEqual(b.Granted("r1"), []string{"d1", "d3"}) {
		t.Errorf("Granted = %v", b.Granted("r1"))
	}
}

func TestAssignByRegion(t *testing.T) {
	b := NewBroker()
	d := dev("d1", "battery")
	d.Region = "us-west"
	b.Register(d)
	b.Register(dev("d2", "battery"))

	a := &fakeAssociator{}
	got, err := b.Assign(Request{Researcher: "r1", Region: "nl-delft", Count: 1}, a)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "d2" {
		t.Errorf("got %v", got)
	}
	// "" region matches everything.
	got, err = b.Assign(Request{Researcher: "r2", Count: 2}, a)
	if err != nil || len(got) != 2 {
		t.Errorf("any-region assign = %v, %v", got, err)
	}
}

func TestAssignPrefersLightLoadAndCharge(t *testing.T) {
	b := NewBroker()
	low := dev("low-battery", "battery")
	low.BatteryLevel = 0.3
	b.Register(low)
	b.Register(dev("fresh", "battery"))
	b.Register(dev("busy", "battery"))

	a := &fakeAssociator{}
	// Load up "busy" with three experiments.
	for _, r := range []string{"x1", "x2", "x3"} {
		if _, err := b.Assign(Request{Researcher: r, Count: 3}, a); err != nil {
			t.Fatal(err)
		}
		b.Release(r, "fresh", "low-battery")
	}
	if b.Load("busy") != 3 {
		t.Fatalf("setup: busy load = %d", b.Load("busy"))
	}
	got, err := b.Assign(Request{Researcher: "r9", Count: 1}, a)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "fresh" {
		t.Errorf("picked %v, want the least-loaded, best-charged device", got)
	}
}

func TestAssignBatteryFloor(t *testing.T) {
	b := NewBroker()
	drained := dev("drained", "battery")
	drained.BatteryLevel = 0.05
	b.Register(drained)
	a := &fakeAssociator{}
	if _, err := b.Assign(Request{Researcher: "r", Count: 1}, a); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("err = %v, want unsatisfiable (battery floor)", err)
	}
	if _, err := b.Assign(Request{Researcher: "r", Count: 1, MinBattery: 0.01}, a); err != nil {
		t.Errorf("explicit floor rejected: %v", err)
	}
}

func TestAssignUnsatisfiableLeavesNoState(t *testing.T) {
	b := NewBroker()
	b.Register(dev("d1", "battery"))
	a := &fakeAssociator{}
	_, err := b.Assign(Request{Researcher: "r", Count: 2}, a)
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v", err)
	}
	if len(a.pairs) != 0 {
		t.Error("partial associations created")
	}
	if b.Load("d1") != 0 {
		t.Error("load leaked")
	}
}

func TestAssignNoDoubleGrant(t *testing.T) {
	b := NewBroker()
	b.Register(dev("d1", "battery"))
	a := &fakeAssociator{}
	if _, err := b.Assign(Request{Researcher: "r", Count: 1}, a); err != nil {
		t.Fatal(err)
	}
	// The same researcher asking again must not get the same device.
	if _, err := b.Assign(Request{Researcher: "r", Count: 1}, a); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("double grant: %v", err)
	}
	// A different researcher can share the device (many-to-many, §3.1).
	if got, err := b.Assign(Request{Researcher: "r2", Count: 1}, a); err != nil || got[0] != "d1" {
		t.Errorf("sharing failed: %v %v", got, err)
	}
	if b.Load("d1") != 2 {
		t.Errorf("load = %d", b.Load("d1"))
	}
}

func TestMaxExperimentsCap(t *testing.T) {
	b := NewBroker()
	d := dev("d1", "battery")
	d.MaxExperiments = 1
	b.Register(d)
	a := &fakeAssociator{}
	if _, err := b.Assign(Request{Researcher: "r1", Count: 1}, a); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign(Request{Researcher: "r2", Count: 1}, a); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("cap not enforced: %v", err)
	}
	b.Release("r1", "d1")
	if _, err := b.Assign(Request{Researcher: "r2", Count: 1}, a); err != nil {
		t.Errorf("release did not free capacity: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	b := NewBroker()
	if err := b.Register(DeviceInfo{}); err == nil {
		t.Error("empty ID accepted")
	}
	a := &fakeAssociator{}
	if _, err := b.Assign(Request{Count: 1}, a); err == nil {
		t.Error("empty researcher accepted")
	}
	if _, err := b.Assign(Request{Researcher: "r"}, a); err == nil {
		t.Error("zero count accepted")
	}
}

func TestUnregister(t *testing.T) {
	b := NewBroker()
	b.Register(dev("d1", "battery"))
	b.Unregister("d1")
	if len(b.Devices()) != 0 {
		t.Errorf("Devices = %v", b.Devices())
	}
	a := &fakeAssociator{}
	if _, err := b.Assign(Request{Researcher: "r", Count: 1}, a); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("assigned an unregistered device: %v", err)
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	b := NewBroker()
	b.Release("nobody", "nothing") // must not panic
	if b.Load("nothing") != 0 {
		t.Error("phantom load")
	}
}
