package assign_test

import (
	"testing"

	"pogo/internal/assign"
	"pogo/internal/transport"
	"pogo/internal/vclock"
	"pogo/internal/xmpp"
)

// Both switchboard implementations must be usable as Associators.
var (
	_ assign.Associator = (*xmpp.Server)(nil)
	_ assign.Associator = (*transport.Switchboard)(nil)
)

func TestAssignDrivesSwitchboardRoster(t *testing.T) {
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	broker := assign.NewBroker()
	broker.Register(assign.DeviceInfo{ID: "dev1", Sensors: []string{"battery"}, BatteryLevel: 0.9})
	broker.Register(assign.DeviceInfo{ID: "dev2", Sensors: []string{"battery", "wifi-scan"}, BatteryLevel: 0.8})

	got, err := broker.Assign(assign.Request{
		Researcher: "r1", Sensors: []string{"wifi-scan"}, Count: 1,
	}, sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "dev2" {
		t.Fatalf("assigned %v", got)
	}
	// The association is live at the switchboard: r1 can reach dev2.
	port := sb.Port("r1", nil)
	if peers := port.Peers(); len(peers) != 1 || peers[0] != "dev2" {
		t.Errorf("roster = %v", peers)
	}
}

func TestAssignDrivesXMPPRoster(t *testing.T) {
	srv := xmpp.NewServer(xmpp.ServerConfig{AllowAutoRegister: true})
	broker := assign.NewBroker()
	broker.Register(assign.DeviceInfo{ID: "devA", Sensors: []string{"location"}, Region: "nl", BatteryLevel: 1})

	if _, err := broker.Assign(assign.Request{Researcher: "prof", Sensors: []string{"location"}, Region: "nl", Count: 1}, srv); err != nil {
		t.Fatal(err)
	}
	if got := srv.Roster("prof"); len(got) != 1 || got[0] != "devA" {
		t.Errorf("server roster = %v", got)
	}
}
