package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTrace(n int) []Sample {
	rng := rand.New(rand.NewSource(3))
	places := [][]string{
		{"h1", "h2", "h3"}, {"o1", "o2", "o3", "o4"}, {"c1", "c2"},
	}
	out := make([]Sample, 0, n)
	tm := 0.0
	for len(out) < n {
		p := places[rng.Intn(len(places))]
		stay := 5 + rng.Intn(30)
		for i := 0; i < stay && len(out) < n; i++ {
			aps := make(map[string]float64, len(p))
			for _, k := range p {
				aps[k] = 0.5 + rng.Float64()*0.5
			}
			out = append(out, Sample{T: tm, APs: aps})
			tm += 60000
		}
		out = append(out, Sample{T: tm, APs: map[string]float64{
			fmt.Sprintf("x%d", rng.Intn(1e6)): 0.4,
		}})
		tm += 60000
	}
	return out[:n]
}

// BenchmarkClusterDay processes one simulated day of scans (1440 samples).
func BenchmarkClusterDay(b *testing.B) {
	trace := benchTrace(1440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(DefaultParams(), trace, true)
	}
}

func BenchmarkDistanceSparse(b *testing.B) {
	x := map[string]float64{"a": 0.9, "b": 0.7, "c": 0.5, "d": 0.3}
	y := map[string]float64{"b": 0.8, "c": 0.6, "e": 0.4}
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}
