// Package cluster is the Go reference implementation of the paper's
// modified DBSCAN place-clustering algorithm (§4.1): a sliding window of 60
// samples supplies core objects, the distance metric is one minus the
// cosine coefficient of two scans' normalized RSSI vectors, and the open
// cluster closes as soon as a sample arrives that is not reachable from it.
// The closed cluster is characterized by the sample nearest to the cluster
// mean.
//
// The semantics deliberately mirror clustering.js line for line: the §5.3
// evaluation compares what the on-phone script reported against this
// implementation run over the raw ground-truth traces, and the match
// percentages of Table 4 are only meaningful if the two agree on identical
// input.
package cluster

import (
	"math"
	"sort"
)

// Sample is one sanitized Wi-Fi scan: timestamp (Unix milliseconds, as the
// scripts see it) and a sparse BSSID → normalized-signal vector.
type Sample struct {
	T   float64
	APs map[string]float64
}

// Cluster is a closed dwell: entry/exit times, the number of member
// samples, and the characterizing AP vector.
type Cluster struct {
	Enter   float64
	Exit    float64
	Samples int
	APs     map[string]float64
}

// Params are the algorithm's tuning constants. Defaults match clustering.js.
type Params struct {
	Window     int     // sliding window length (samples)
	Eps        float64 // neighbourhood radius in cosine distance
	MinPts     int     // neighbours (incl. self) for a core object
	MinCluster int     // samples needed before a closed cluster is reported
}

// DefaultParams returns the constants used by clustering.js.
func DefaultParams() Params {
	return Params{Window: 60, Eps: 0.35, MinPts: 4, MinCluster: 5}
}

// Distance is the cosine-coefficient distance between two sparse vectors:
// 0 = identical AP environment, 1 = disjoint.
func Distance(a, b map[string]float64) float64 {
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	cos := dot(a, b) / (na * nb)
	if cos > 1 {
		cos = 1
	}
	return 1 - cos
}

func dot(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for k, va := range a {
		if vb, ok := b[k]; ok {
			sum += va * vb
		}
	}
	return sum
}

func norm(a map[string]float64) float64 {
	sum := 0.0
	for _, v := range a {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Clusterer consumes a stream of samples and emits closed clusters. The
// zero value is not usable; construct with New.
type Clusterer struct {
	params Params
	window []Sample
	open   []Sample
	closed []Cluster
	emit   func(Cluster)
}

// New returns a streaming clusterer. emit (may be nil) is called for every
// closed cluster in addition to it being recorded.
func New(params Params, emit func(Cluster)) *Clusterer {
	if params.Window <= 0 {
		params = DefaultParams()
	}
	return &Clusterer{params: params, emit: emit}
}

// Add feeds one sample through the algorithm.
func (c *Clusterer) Add(s Sample) {
	c.window = append(c.window, s)
	if len(c.window) > c.params.Window {
		c.window = c.window[1:]
	}
	if c.open != nil {
		if c.reachable(s) {
			c.open = append(c.open, s)
		} else {
			c.closeOpen()
		}
	}
	if c.open == nil && c.isCore(s) {
		c.openCluster(s)
	}
}

// Flush closes any open cluster (end of trace). The paper's script does NOT
// do this — a dwell in progress at the end of the experiment is simply cut
// off — so Table 4 post-processing calls Flush only on the ground truth
// when explicitly requested.
func (c *Clusterer) Flush() {
	if c.open != nil {
		c.closeOpen()
	}
}

// Clusters returns the closed clusters so far.
func (c *Clusterer) Clusters() []Cluster {
	out := make([]Cluster, len(c.closed))
	copy(out, c.closed)
	return out
}

// Open reports whether a dwell is currently in progress.
func (c *Clusterer) Open() bool { return c.open != nil }

// State exports the clusterer's internal state (window + open cluster) for
// freeze/thaw-style persistence; Restore rebuilds from it.
func (c *Clusterer) State() (window, open []Sample) {
	return append([]Sample(nil), c.window...), append([]Sample(nil), c.open...)
}

// Restore replaces the internal state; pass open == nil for "no dwell".
func (c *Clusterer) Restore(window, open []Sample) {
	c.window = append([]Sample(nil), window...)
	if len(open) == 0 {
		c.open = nil
	} else {
		c.open = append([]Sample(nil), open...)
	}
}

func (c *Clusterer) isCore(s Sample) bool {
	neighbours := 0
	for i := range c.window {
		if Distance(s.APs, c.window[i].APs) <= c.params.Eps {
			neighbours++
			if neighbours >= c.params.MinPts {
				return true
			}
		}
	}
	return false
}

func (c *Clusterer) reachable(s Sample) bool {
	for i := len(c.open) - 1; i >= 0; i-- {
		if Distance(s.APs, c.open[i].APs) <= c.params.Eps {
			return true
		}
	}
	return false
}

func (c *Clusterer) openCluster(core Sample) {
	var members []Sample
	for i := range c.window {
		if Distance(core.APs, c.window[i].APs) <= c.params.Eps {
			members = append(members, c.window[i])
		}
	}
	c.open = members
}

func (c *Clusterer) closeOpen() {
	open := c.open
	c.open = nil
	if len(open) < c.params.MinCluster {
		return
	}
	rep := Characterize(open)
	cl := Cluster{
		Enter:   open[0].T,
		Exit:    open[len(open)-1].T,
		Samples: len(open),
		APs:     rep.APs,
	}
	c.closed = append(c.closed, cl)
	if c.emit != nil {
		c.emit(cl)
	}
}

// Characterize selects the sample nearest to the mean of all samples — the
// paper's footnote 6.
func Characterize(samples []Sample) Sample {
	mean := Mean(samples)
	best := samples[0]
	bestDist := 2.0
	for _, s := range samples {
		if d := Distance(s.APs, mean); d < bestDist {
			bestDist = d
			best = s
		}
	}
	return best
}

// Mean computes the element-wise mean AP vector of a set of samples.
func Mean(samples []Sample) map[string]float64 {
	mean := make(map[string]float64)
	n := float64(len(samples))
	for _, s := range samples {
		for k, v := range s.APs {
			mean[k] += v / n
		}
	}
	return mean
}

// Run executes the algorithm over a full trace and returns the closed
// clusters; flush controls whether a trailing open dwell is emitted.
func Run(params Params, trace []Sample, flush bool) []Cluster {
	c := New(params, nil)
	for _, s := range trace {
		c.Add(s)
	}
	if flush {
		c.Flush()
	}
	return c.Clusters()
}

// MatchKind classifies how a reported cluster relates to a ground-truth one
// (the Table 4 Match / Partial columns).
type MatchKind int

// Match classifications.
const (
	NoMatch MatchKind = iota + 1
	Exact             // same enter and exit times, same place
	Partial           // same place, overlapping interval, truncated ends
)

// MatchClusters compares reported clusters against ground truth. A report
// matches a truth cluster exactly when both timestamps agree (within slack
// milliseconds) and the AP vectors are within eps; it matches partially
// when the intervals overlap and the places agree.
func MatchClusters(truth, reported []Cluster, eps, slack float64) []MatchKind {
	used := make([]bool, len(reported))
	out := make([]MatchKind, len(truth))
	for i, tc := range truth {
		out[i] = NoMatch
		bestIdx := -1
		best := NoMatch
		for j, rc := range reported {
			if used[j] {
				continue
			}
			if Distance(tc.APs, rc.APs) > eps {
				continue
			}
			overlap := math.Min(tc.Exit, rc.Exit) - math.Max(tc.Enter, rc.Enter)
			if overlap <= 0 {
				continue
			}
			kind := Partial
			if math.Abs(tc.Enter-rc.Enter) <= slack && math.Abs(tc.Exit-rc.Exit) <= slack {
				kind = Exact
			}
			if bestIdx == -1 || kind == Exact && best == Partial {
				bestIdx, best = j, kind
			}
			if best == Exact {
				break
			}
		}
		if bestIdx >= 0 {
			used[bestIdx] = true
			out[i] = best
		}
	}
	return out
}

// MatchStats summarizes a MatchKind list into the Table 4 percentages:
// match counts only exact matches, partial counts exact + partial.
func MatchStats(kinds []MatchKind) (matchPct, partialPct float64) {
	if len(kinds) == 0 {
		return 100, 100
	}
	exact, partial := 0, 0
	for _, k := range kinds {
		switch k {
		case Exact:
			exact++
			partial++
		case Partial:
			partial++
		}
	}
	n := float64(len(kinds))
	return 100 * float64(exact) / n, 100 * float64(partial) / n
}

// SortClusters orders clusters by entry time (stable helper for reports).
func SortClusters(cs []Cluster) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Enter < cs[j].Enter })
}
