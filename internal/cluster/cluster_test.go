package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"pogo/internal/msg"
	"pogo/internal/script"
	"pogo/internal/script/scripts"
)

func place(aps ...string) map[string]float64 {
	m := make(map[string]float64, len(aps))
	for i, ap := range aps {
		m[ap] = 1 - float64(i)*0.1
	}
	return m
}

func dwell(t0 float64, n int, aps map[string]float64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{T: t0 + float64(i)*60000, APs: aps}
	}
	return out
}

func TestDistance(t *testing.T) {
	a := map[string]float64{"x": 1}
	b := map[string]float64{"x": 1}
	if d := Distance(a, b); d > 1e-12 {
		t.Errorf("identical distance = %v", d)
	}
	c := map[string]float64{"y": 1}
	if d := Distance(a, c); d != 1 {
		t.Errorf("disjoint distance = %v", d)
	}
	if d := Distance(a, map[string]float64{}); d != 1 {
		t.Errorf("empty distance = %v", d)
	}
	// Scale invariance of cosine distance.
	big := map[string]float64{"x": 10, "y": 5}
	small := map[string]float64{"x": 2, "y": 1}
	if d := Distance(big, small); d > 1e-12 {
		t.Errorf("scaled distance = %v", d)
	}
}

func TestSingleDwellDetected(t *testing.T) {
	home := place("h1", "h2", "h3")
	away := place("a1", "a2")
	var trace []Sample
	trace = append(trace, dwell(0, 20, home)...)
	trace = append(trace, dwell(20*60000, 6, away)...)
	got := Run(DefaultParams(), trace, false)
	if len(got) != 1 {
		t.Fatalf("clusters = %d, want 1", len(got))
	}
	c := got[0]
	if c.Enter != 0 {
		t.Errorf("Enter = %v", c.Enter)
	}
	if c.Exit != 19*60000 {
		t.Errorf("Exit = %v", c.Exit)
	}
	if c.Samples != 20 {
		t.Errorf("Samples = %d", c.Samples)
	}
	if _, ok := c.APs["h1"]; !ok {
		t.Errorf("characterization = %v", c.APs)
	}
}

func TestMultipleDwells(t *testing.T) {
	home := place("h1", "h2")
	office := place("o1", "o2", "o3")
	noise := place("n1")
	var trace []Sample
	trace = append(trace, dwell(0, 10, home)...)
	trace = append(trace, dwell(1e6, 3, noise)...) // too short to report
	trace = append(trace, dwell(2e6, 15, office)...)
	trace = append(trace, dwell(4e6, 8, home)...)
	trace = append(trace, dwell(6e6, 6, noise)...)
	got := Run(DefaultParams(), trace, false)
	if len(got) != 3 {
		t.Fatalf("clusters = %d, want 3 (home, office, home)", len(got))
	}
	if _, ok := got[0].APs["h1"]; !ok {
		t.Error("first cluster not home")
	}
	if _, ok := got[1].APs["o1"]; !ok {
		t.Error("second cluster not office")
	}
}

func TestShortDwellSuppressed(t *testing.T) {
	var trace []Sample
	trace = append(trace, dwell(0, 4, place("x1", "x2"))...) // < MinCluster
	trace = append(trace, dwell(1e6, 6, place("y1"))...)
	got := Run(DefaultParams(), trace, false)
	for _, c := range got {
		if _, ok := c.APs["x1"]; ok {
			t.Error("sub-threshold dwell reported")
		}
	}
}

func TestFlushEmitsOpenDwell(t *testing.T) {
	trace := dwell(0, 10, place("h1", "h2"))
	if got := Run(DefaultParams(), trace, false); len(got) != 0 {
		t.Fatalf("unterminated dwell reported without flush: %d", len(got))
	}
	got := Run(DefaultParams(), trace, true)
	if len(got) != 1 || got[0].Samples != 10 {
		t.Fatalf("flush result = %+v", got)
	}
}

func TestNoisyRSSIStillClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := place("h1", "h2", "h3", "h4")
	var trace []Sample
	for i := 0; i < 30; i++ {
		aps := make(map[string]float64, len(base))
		for k, v := range base {
			aps[k] = math.Max(0, math.Min(1, v+rng.NormFloat64()*0.08))
		}
		trace = append(trace, Sample{T: float64(i) * 60000, APs: aps})
	}
	trace = append(trace, dwell(31*60000, 6, place("z1"))...)
	got := Run(DefaultParams(), trace, false)
	if len(got) != 1 {
		t.Fatalf("clusters = %d, want 1 despite RSSI noise", len(got))
	}
	if got[0].Samples < 25 {
		t.Errorf("Samples = %d, noise fragmented the dwell", got[0].Samples)
	}
}

func TestStateRestore(t *testing.T) {
	home := place("h1", "h2")
	c1 := New(DefaultParams(), nil)
	for _, s := range dwell(0, 10, home) {
		c1.Add(s)
	}
	if !c1.Open() {
		t.Fatal("no open dwell")
	}
	win, open := c1.State()

	// "Reboot with freeze/thaw".
	c2 := New(DefaultParams(), nil)
	c2.Restore(win, open)
	for _, s := range dwell(2e6, 6, place("x1")) {
		c2.Add(s)
	}
	got := c2.Clusters()
	if len(got) != 1 || got[0].Enter != 0 {
		t.Fatalf("restored run = %+v", got)
	}

	// Reboot WITHOUT freeze/thaw: the dwell's first half is lost, exactly
	// the §5.3 failure mode (later start time).
	c3 := New(DefaultParams(), nil)
	for _, s := range dwell(10*60000, 10, home) { // second half only
		c3.Add(s)
	}
	for _, s := range dwell(2e6, 6, place("x1")) {
		c3.Add(s)
	}
	got3 := c3.Clusters()
	if len(got3) != 1 || got3[0].Enter <= 0 {
		t.Fatalf("lossy run = %+v", got3)
	}
	if got3[0].Enter != 10*60000 {
		t.Errorf("Enter = %v, want the truncated start", got3[0].Enter)
	}
}

func TestMatchClusters(t *testing.T) {
	home := place("h1", "h2")
	office := place("o1")
	truth := []Cluster{
		{Enter: 0, Exit: 100, APs: home},
		{Enter: 200, Exit: 300, APs: office},
		{Enter: 400, Exit: 500, APs: home},
	}
	reported := []Cluster{
		{Enter: 0, Exit: 100, APs: home},     // exact
		{Enter: 250, Exit: 300, APs: office}, // partial (late start)
	}
	kinds := MatchClusters(truth, reported, 0.35, 1)
	want := []MatchKind{Exact, Partial, NoMatch}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
	matchPct, partialPct := MatchStats(kinds)
	if math.Abs(matchPct-33.333) > 0.01 || math.Abs(partialPct-66.666) > 0.01 {
		t.Errorf("stats = %v, %v", matchPct, partialPct)
	}
	if m, p := MatchStats(nil); m != 100 || p != 100 {
		t.Error("empty MatchStats")
	}
}

func TestSortClusters(t *testing.T) {
	cs := []Cluster{{Enter: 5}, {Enter: 1}, {Enter: 3}}
	SortClusters(cs)
	if cs[0].Enter != 1 || cs[2].Enter != 5 {
		t.Errorf("sorted = %+v", cs)
	}
}

// The critical agreement test: the Go reference and clustering.js must
// produce identical clusters on identical input (§5.3's comparison is
// meaningless otherwise).
func TestAgreementWithClusteringJS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	places := []map[string]float64{
		place("h1", "h2", "h3"),
		place("o1", "o2", "o3", "o4"),
		place("c1", "c2"),
	}
	var trace []Sample
	tm := 0.0
	for leg := 0; leg < 6; leg++ {
		p := places[leg%len(places)]
		n := 6 + rng.Intn(20)
		for i := 0; i < n; i++ {
			aps := make(map[string]float64, len(p))
			for k, v := range p {
				aps[k] = math.Max(0.05, math.Min(1, v+rng.NormFloat64()*0.05))
			}
			trace = append(trace, Sample{T: tm, APs: aps})
			tm += 60000
		}
		// Transit: a couple of scans seeing nothing recognizable.
		for i := 0; i < 2+rng.Intn(3); i++ {
			trace = append(trace, Sample{T: tm, APs: map[string]float64{
				fmt.Sprintf("transit-%d", rng.Intn(1e6)): 0.5,
			}})
			tm += 60000
		}
	}

	goClusters := Run(DefaultParams(), trace, false)
	if len(goClusters) < 4 {
		t.Fatalf("weak test input: only %d clusters", len(goClusters))
	}

	jsClusters := runClusteringJS(t, trace)
	if len(jsClusters) != len(goClusters) {
		t.Fatalf("js=%d go=%d clusters", len(jsClusters), len(goClusters))
	}
	for i := range goClusters {
		g, j := goClusters[i], jsClusters[i]
		if g.Enter != j.Enter || g.Exit != j.Exit || g.Samples != j.Samples {
			t.Errorf("cluster %d: go=%+v js=%+v", i, g, j)
		}
		if Distance(g.APs, j.APs) > 1e-9 {
			t.Errorf("cluster %d characterization differs", i)
		}
	}
}

// jsHost adapts the script test host to capture clusters.
type jsHost struct {
	clusters []Cluster
	handler  func(msg.Value, string)
	frozen   msg.Value
	hasState bool
}

func (h *jsHost) Publish(channel string, m msg.Value) error {
	if channel != "clusters" {
		return nil
	}
	mm := m.(msg.Map)
	aps := make(map[string]float64)
	for k, v := range mm["aps"].(msg.Map) {
		aps[k] = v.(float64)
	}
	h.clusters = append(h.clusters, Cluster{
		Enter:   mm["enter"].(float64),
		Exit:    mm["exit"].(float64),
		Samples: int(mm["samples"].(float64)),
		APs:     aps,
	})
	return nil
}

func (h *jsHost) Subscribe(channel string, params msg.Map, handler func(msg.Value, string)) (func(), func(), error) {
	h.handler = handler
	return func() {}, func() {}, nil
}
func (h *jsHost) Print(string, string)       {}
func (h *jsHost) Log(string, string, string) {}
func (h *jsHost) Freeze(_ string, v msg.Value) error {
	h.frozen = v
	h.hasState = true
	return nil
}
func (h *jsHost) Thaw(string) (msg.Value, bool)    { return h.frozen, h.hasState }
func (h *jsHost) SetTimeout(func(), time.Duration) {}
func (h *jsHost) ReportError(_ string, err error)  { panic(err) }

var _ script.Host = (*jsHost)(nil)

func runClusteringJS(t *testing.T, trace []Sample) []Cluster {
	t.Helper()
	h := &jsHost{}
	src := scripts.MustSource("clustering.js")
	s, err := script.New("clustering.js", src, h, script.Config{StepBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, sm := range trace {
		aps := msg.Map{}
		for k, v := range sm.APs {
			aps[k] = v
		}
		h.handler(msg.Map{"t": sm.T, "aps": aps}, "")
	}
	return h.clusters
}

// Property: every reported cluster respects MinCluster and has Enter<=Exit.
func TestPropertyClusterInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var trace []Sample
		tm := 0.0
		for leg := 0; leg < 4; leg++ {
			p := place(fmt.Sprintf("p%d-a", leg%2), fmt.Sprintf("p%d-b", leg%2))
			for i := 0; i < rng.Intn(15); i++ {
				trace = append(trace, Sample{T: tm, APs: p})
				tm += 60000
			}
			trace = append(trace, Sample{T: tm, APs: map[string]float64{"t": 1}})
			tm += 60000
		}
		params := DefaultParams()
		for _, c := range Run(params, trace, true) {
			if c.Samples < params.MinCluster || c.Enter > c.Exit || len(c.APs) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
