package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pogo/internal/android"
	"pogo/internal/energy"
	"pogo/internal/faultnet"
	"pogo/internal/radio"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

const (
	soakDevices = 6
	soakPings   = 40 // per device; the pinger stops itself after this many
)

// runSoak runs the full middleware stack — scripts, broker, endpoint,
// switchboard — under a seeded faultnet with churn for ~20 simulated
// minutes, then calms the network and drains. It returns the collector's
// complete ping delivery log in arrival order.
func runSoak(t *testing.T, seed int64) []string {
	t.Helper()
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	net := faultnet.New(clk, faultnet.Config{
		Seed: seed,
		Drop: 0.25, Duplicate: 0.10, Corrupt: 0.05,
		MaxDelay: 300 * time.Millisecond,
	})

	colFault := net.Wrap(sb.Port("collector", nil))
	col, err := NewNode(Config{
		ID: "collector", Mode: CollectorMode, Clock: clk, Messenger: colFault,
		FlushPolicy: FlushInterval, FlushEvery: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	type soakDev struct {
		node  *Node
		fault *faultnet.Fault
	}
	devs := make([]soakDev, soakDevices)
	stops := make([]func(), 0, soakDevices)
	for i := range devs {
		id := fmt.Sprintf("dev%d", i)
		sb.Associate("collector", id)
		meter := energy.NewMeter(clk)
		droid := android.NewDevice(clk, meter, android.Config{})
		modem := radio.NewModem(clk, meter, radio.KPN)
		f := net.Wrap(sb.Port(id, nil))
		node, err := NewNode(Config{
			ID: id, Mode: DeviceMode, Clock: clk, Messenger: f,
			Device: droid, Modem: modem, Storage: store.NewMemKV(),
			FlushPolicy: FlushInterval, FlushEvery: 15 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		devs[i] = soakDev{node: node, fault: f}
		stops = append(stops, net.Churn(f, 2*time.Minute, 30*time.Second))
	}

	if err := col.DeployLocal("sink.js", `
		setDescription('sink');
		subscribe('ping', function (m, origin) { logTo('pings', origin + ':' + m.n); });
	`); err != nil {
		t.Fatal(err)
	}
	if err := col.Deploy("pinger.js", fmt.Sprintf(`
		setDescription('pinger');
		var n = 0;
		function tick() {
			n++;
			publish('ping', { n: n });
			if (n < %d) setTimeout(tick, 10000);
		}
		setTimeout(tick, 10000);
	`, soakPings)); err != nil {
		t.Fatal(err)
	}

	// ~20 simulated minutes of faulty operation. The FlushInterval policy
	// ticks on its own; this loop only moves time.
	for k := 0; k < 240; k++ {
		clk.Advance(5 * time.Second)
	}

	// Eventual connectivity: churn off (everyone reconnects), faults off.
	for _, stop := range stops {
		stop()
	}
	net.Calm()
	net.HealAll()
	want := soakDevices * soakPings
	for k := 0; k < 400; k++ {
		pending := col.Endpoint().Pending()
		for _, d := range devs {
			pending += d.node.Endpoint().Pending()
		}
		if pending == 0 && len(col.Logs().Lines("pings")) >= want {
			break
		}
		clk.Advance(5 * time.Second)
	}
	return col.Logs().Lines("pings")
}

// TestSoakSameSeedIsByteIdentical replays the identical seed twice and
// demands the two full delivery logs match line for line: every fault draw,
// churn cycle, retry, and delivery lands at the same simulated instant.
func TestSoakSameSeedIsByteIdentical(t *testing.T) {
	a := runSoak(t, 1234)
	b := runSoak(t, 1234)
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logs diverge at line %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("soak delivered nothing")
	}
}

// TestSoakGaplessPerDevice checks the §4.6 delivery guarantee end to end:
// despite drops, duplicates, corruption, and churn, the collector sees every
// device's pings exactly once, in order, with no gaps.
func TestSoakGaplessPerDevice(t *testing.T) {
	lines := runSoak(t, 99)
	perDev := make(map[string][]int)
	for _, l := range lines {
		origin, ns, ok := strings.Cut(l, ":")
		if !ok {
			t.Fatalf("malformed log line %q", l)
		}
		n, err := strconv.Atoi(ns)
		if err != nil {
			t.Fatalf("malformed seq in %q: %v", l, err)
		}
		perDev[origin] = append(perDev[origin], n)
	}
	if len(perDev) != soakDevices {
		t.Fatalf("heard from %d devices, want %d", len(perDev), soakDevices)
	}
	ids := make([]string, 0, len(perDev))
	for id := range perDev {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		got := perDev[id]
		if len(got) != soakPings {
			t.Errorf("%s: %d pings, want %d: %v", id, len(got), soakPings, got)
			continue
		}
		for i, n := range got {
			if n != i+1 {
				t.Errorf("%s: position %d has seq %d (dup, gap, or reorder)", id, i, n)
				break
			}
		}
	}
}
