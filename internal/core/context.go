package core

import (
	"fmt"
	"sync"
	"time"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
	"pogo/internal/script"
)

// Context is an experiment sandbox (§4.2): the scripts of one experiment,
// their broker, and the pairing state with the remote counterpart(s).
// Scripts can only communicate within their context; sensors publish into
// every context's broker via the sensor manager.
type Context struct {
	node  *Node
	owner string // collector that owns this context; "" on the collector itself

	mu        sync.Mutex
	broker    *pubsub.Broker
	scripts   map[string]*deployedScript
	order     []string
	subSeq    int
	localSubs map[int]*localSub
	proxies   map[string]map[int]*proxySub
	closed    bool
}

// proxySub is a proxy subscription held for a remote peer, retaining its
// channel so privacy changes can re-gate it.
type proxySub struct {
	channel string
	sub     *pubsub.Subscription
}

type deployedScript struct {
	source string
	inst   *script.Script
}

// localSub tracks one script subscription for remote synchronization.
type localSub struct {
	id      int
	channel string
	params  msg.Map
	active  bool
	sub     *pubsub.Subscription
}

func newContext(n *Node, owner string) *Context {
	ctx := &Context{
		node:      n,
		owner:     owner,
		broker:    pubsub.New(),
		scripts:   make(map[string]*deployedScript),
		localSubs: make(map[int]*localSub),
		proxies:   make(map[string]map[int]*proxySub),
	}
	// Trace identity is unconditional (not gated on Obs): the IDs it
	// assigns travel in wire envelopes, so they must not depend on whether
	// a registry happens to be attached. Per-owner suffix keeps a device's
	// multiple contexts (one broker each) in disjoint ID spaces.
	ident := n.cfg.ID
	if owner != "" {
		ident += "/" + owner
	}
	ctx.broker.SetTraceIdentity(ident, n.cfg.TraceSeed)
	ctx.broker.Instrument(n.cfg.Obs, n.clk.Now, n.cfg.ID, n.cfg.ObsEntity)
	n.smgr.AddBroker(ctx.broker)
	return ctx
}

// Broker exposes the context's broker (host services like the geocoder
// attach here).
func (c *Context) Broker() *pubsub.Broker { return c.broker }

// Owner returns the collector owning this context ("" on collectors).
func (c *Context) Owner() string { return c.owner }

// ScriptNames lists deployed scripts in deployment order.
func (c *Context) ScriptNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Script returns a deployed script instance by name, or nil.
func (c *Context) Script(name string) *script.Script {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.scripts[name]; ok {
		return d.inst
	}
	return nil
}

// deploy installs (or updates) a script. Identical source is a no-op, so
// redeployments after @hello are idempotent.
func (c *Context) deploy(name, source string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("core: context closed")
	}
	var old *deployedScript
	if cur, ok := c.scripts[name]; ok {
		if cur.source == source {
			c.mu.Unlock()
			return nil
		}
		// Script update: the old instance stops (outside the lock — Stop
		// releases subscriptions, which re-enters the context); its frozen
		// state survives.
		old = cur
		delete(c.scripts, name)
		for i, o := range c.order {
			if o == name {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	if old != nil {
		old.inst.Stop()
	}

	host := &scriptHost{ctx: c, name: name}
	inst, err := script.New(name, source, host, c.node.cfg.ScriptConfig)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.scripts[name] = &deployedScript{source: source, inst: inst}
	c.order = append(c.order, name)
	c.mu.Unlock()

	if !inst.AutoStart() {
		return nil
	}
	if err := inst.Start(); err != nil {
		if c.node.cfg.OnScriptError != nil {
			c.node.cfg.OnScriptError(name, err)
		}
		return err
	}
	return nil
}

// StartScript manually starts a deployed script that opted out of
// autostart (§4.4: "it will not run until the user explicitly starts it
// through the UI" — this is that UI action).
func (c *Context) StartScript(name string) error {
	c.mu.Lock()
	d, ok := c.scripts[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no script %q", name)
	}
	return d.inst.Start()
}

// undeploy stops and removes a script.
func (c *Context) undeploy(name string) {
	c.mu.Lock()
	d, ok := c.scripts[name]
	if ok {
		delete(c.scripts, name)
		for i, o := range c.order {
			if o == name {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	if ok {
		d.inst.Stop()
	}
}

// close tears the context down.
func (c *Context) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	scripts := make([]*deployedScript, 0, len(c.scripts))
	for _, d := range c.scripts {
		scripts = append(scripts, d)
	}
	var proxies []*pubsub.Subscription
	for _, m := range c.proxies {
		for _, p := range m {
			proxies = append(proxies, p.sub)
		}
	}
	c.mu.Unlock()
	for _, d := range scripts {
		d.inst.Stop()
	}
	for _, p := range proxies {
		p.Close()
	}
	c.node.smgr.RemoveBroker(c.broker)
}

// ---- subscription synchronization (the broker pairing of §4.2) ----

// registerLocalSub records a script subscription and announces it to the
// remote counterpart(s).
func (c *Context) registerLocalSub(channel string, params msg.Map, sub *pubsub.Subscription) *localSub {
	c.mu.Lock()
	c.subSeq++
	ls := &localSub{id: c.subSeq, channel: channel, params: params, active: true, sub: sub}
	c.localSubs[ls.id] = ls
	c.mu.Unlock()
	// The owner's privacy policy gates the broker subscription (but not the
	// remote announcement — the collector may know the script asked).
	if !c.node.cfg.Privacy.Shared(channel) {
		sub.Release()
	}
	c.announceSub(ls, "")
	return ls
}

// announceSub sends @subscribe for one subscription; to == "" means every
// counterpart.
func (c *Context) announceSub(ls *localSub, to string) {
	body := msg.Map{"id": float64(ls.id), "channel": ls.channel}
	if ls.params != nil {
		body["params"] = msg.Clone(ls.params)
	}
	peers := []string{to}
	if to == "" {
		peers = c.node.peersForContext(c)
	}
	for _, peer := range peers {
		c.node.sendControl(peer, chanSubscribe, body)
	}
}

// releaseLocalSub deactivates a subscription locally and remotely.
func (c *Context) releaseLocalSub(ls *localSub) {
	c.mu.Lock()
	wasActive := ls.active
	ls.active = false
	c.mu.Unlock()
	ls.sub.Release()
	if !wasActive {
		return
	}
	for _, peer := range c.node.peersForContext(c) {
		c.node.sendControl(peer, chanUnsubscribe, msg.Map{"id": float64(ls.id)})
	}
}

// renewLocalSub reactivates a subscription locally and remotely. The local
// broker subscription only reactivates when the channel is shared; the
// script's intent is remembered so a later privacy change restores it.
func (c *Context) renewLocalSub(ls *localSub) {
	c.mu.Lock()
	wasActive := ls.active
	ls.active = true
	c.mu.Unlock()
	if c.node.cfg.Privacy.Shared(ls.channel) {
		ls.sub.Renew()
	}
	if wasActive {
		return
	}
	c.announceSub(ls, "")
}

// resendSubscriptions re-announces all active subscriptions to one peer
// (collector → freshly hello'd device).
func (c *Context) resendSubscriptions(to string) {
	c.mu.Lock()
	subs := make([]*localSub, 0, len(c.localSubs))
	for i := 1; i <= c.subSeq; i++ {
		if ls, ok := c.localSubs[i]; ok && ls.active {
			subs = append(subs, ls)
		}
	}
	c.mu.Unlock()
	for _, ls := range subs {
		c.announceSub(ls, to)
	}
}

// addProxy installs a proxy subscription on behalf of a remote peer's
// script: locally published messages on the channel are forwarded to the
// peer through the reliable outbox. The proxy carries the remote
// subscription's params, so sensors see the remote demand (§4.2: "a script
// running on a collector node that subscribes to battery information will
// automatically receive voltage measurements from all devices").
func (c *Context) addProxy(peer string, id int, channel string, params msg.Map) {
	if channel == "" {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if byID, ok := c.proxies[peer]; ok {
		if old, exists := byID[id]; exists {
			old.sub.Close()
		}
	} else {
		c.proxies[peer] = make(map[int]*proxySub)
	}
	c.mu.Unlock()

	node := c.node
	sub := c.broker.Subscribe(channel, params, func(ev pubsub.Event) {
		if ev.Origin != "" {
			return // never relay remote-originated data (no device↔device paths)
		}
		// EnqueueTraced carries the publication's trace ID into the wire
		// envelope, so the collector-side fanout joins this span tree.
		if err := node.ep.EnqueueTraced(peer, channel, ev.Message, ev.Trace); err != nil {
			return
		}
		if node.cfg.FlushPolicy == FlushImmediate {
			node.sch.Submit("flush-now", func() { node.Flush() })
		}
	})
	// The device owner's privacy policy gates outbound data (§3.3): a
	// hidden channel's proxy is created released, so no demand reaches the
	// sensor and nothing leaves the phone.
	if !node.cfg.Privacy.Shared(channel) {
		sub.Release()
	}
	c.mu.Lock()
	c.proxies[peer][id] = &proxySub{channel: channel, sub: sub}
	c.mu.Unlock()
}

// removeProxy drops a remote peer's proxy subscription.
func (c *Context) removeProxy(peer string, id int) {
	c.mu.Lock()
	var sub *pubsub.Subscription
	if byID, ok := c.proxies[peer]; ok {
		if p := byID[id]; p != nil {
			sub = p.sub
		}
		delete(byID, id)
	}
	c.mu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// applyPrivacy re-gates every live subscription on a channel after the
// owner changed its sharing setting.
func (c *Context) applyPrivacy(channel string, shared bool) {
	c.mu.Lock()
	var subs []*pubsub.Subscription
	var renews []*pubsub.Subscription
	for _, ls := range c.localSubs {
		if ls.channel != channel {
			continue
		}
		if shared && ls.active {
			renews = append(renews, ls.sub)
		} else if !shared {
			subs = append(subs, ls.sub)
		}
	}
	for _, byID := range c.proxies {
		for _, p := range byID {
			if p.channel != channel {
				continue
			}
			if shared {
				renews = append(renews, p.sub)
			} else {
				subs = append(subs, p.sub)
			}
		}
	}
	c.mu.Unlock()
	for _, s := range subs {
		s.Release()
	}
	for _, s := range renews {
		s.Renew()
	}
}

// ---- the script.Host implementation ----

// scriptHost binds one script to its context. It implements script.Host.
type scriptHost struct {
	ctx  *Context
	name string
}

var _ script.Host = (*scriptHost)(nil)

// Publish implements script.Host: local publication; proxies forward it to
// remote subscribers.
func (h *scriptHost) Publish(channel string, m msg.Value) error {
	if len(channel) > 0 && channel[0] == '@' {
		return fmt.Errorf("core: channel %q is reserved", channel)
	}
	mm, ok := m.(msg.Map)
	if !ok {
		mm = msg.Map{"value": m}
	}
	h.ctx.broker.Publish(channel, mm)
	return nil
}

// Subscribe implements script.Host. Handlers dispatch through the scheduler
// so a publish in script A never re-enters script B synchronously (§4.5
// serialization without deadlock), and so handling holds a wake lock.
func (h *scriptHost) Subscribe(channel string, params msg.Map, handler func(msg.Value, string)) (func(), func(), error) {
	if len(channel) > 0 && channel[0] == '@' {
		return nil, nil, fmt.Errorf("core: channel %q is reserved", channel)
	}
	node := h.ctx.node
	sub := h.ctx.broker.Subscribe(channel, params, func(ev pubsub.Event) {
		m, origin := ev.Message, ev.Origin
		node.sch.Submit("script-"+h.name, func() { handler(m, origin) })
	})
	ls := h.ctx.registerLocalSub(channel, params, sub)
	return func() { h.ctx.releaseLocalSub(ls) },
		func() { h.ctx.renewLocalSub(ls) }, nil
}

// Print implements script.Host.
func (h *scriptHost) Print(scriptName, text string) {
	h.ctx.node.logs.Print(scriptName, text)
	if h.ctx.node.cfg.OnPrint != nil {
		h.ctx.node.cfg.OnPrint(scriptName, text)
	}
}

// Log implements script.Host.
func (h *scriptHost) Log(scriptName, logName, text string) {
	if logName == "" {
		logName = scriptName + ".log"
	}
	h.ctx.node.logs.Append(logName, text)
}

// Freeze implements script.Host: one durable object per script (§4.4).
func (h *scriptHost) Freeze(scriptName string, v msg.Value) error {
	b, err := msg.EncodeJSON(v)
	if err != nil {
		return err
	}
	return h.ctx.node.cfg.Storage.Put(h.freezeKey(scriptName), b)
}

// Thaw implements script.Host.
func (h *scriptHost) Thaw(scriptName string) (msg.Value, bool) {
	b, ok := h.ctx.node.cfg.Storage.Get(h.freezeKey(scriptName))
	if !ok {
		return nil, false
	}
	v, err := msg.DecodeJSON(b)
	if err != nil {
		return nil, false
	}
	return v, true
}

func (h *scriptHost) freezeKey(scriptName string) string {
	return "frozen/" + h.ctx.owner + "/" + scriptName
}

// SetTimeout implements script.Host via the power-aware scheduler: the
// callback fires even if the CPU slept in between (an RTC alarm), and runs
// under a wake lock.
func (h *scriptHost) SetTimeout(fn func(), delay time.Duration) {
	h.ctx.node.sch.After(delay, "timeout-"+h.name, fn)
}

// ReportError implements script.Host.
func (h *scriptHost) ReportError(scriptName string, err error) {
	h.ctx.node.logs.Append("errors", scriptName+": "+err.Error())
	if h.ctx.node.cfg.OnScriptError != nil {
		h.ctx.node.cfg.OnScriptError(scriptName, err)
	}
}
