package core

import (
	"strings"
	"testing"
	"time"

	"pogo/internal/android"
	"pogo/internal/energy"
	"pogo/internal/geo"
	"pogo/internal/msg"
	"pogo/internal/pubsub"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// rig is a complete simulated testbed: one collector, N devices.
type rig struct {
	t   *testing.T
	clk *vclock.Sim
	sb  *transport.Switchboard
	col *Node
	dev map[string]*simDevice
}

type simDevice struct {
	id      string
	meter   *energy.Meter
	droid   *android.Device
	modem   *radio.Modem
	conn    *radio.Connectivity
	port    *transport.Port
	node    *Node
	scanner *stubScanner
	storage store.KV
}

type stubScanner struct {
	aps   []sensors.AccessPoint
	calls int
}

func (s *stubScanner) ScanWifi() []sensors.AccessPoint {
	s.calls++
	return s.aps
}

func newRig(t *testing.T, deviceIDs ...string) *rig {
	t.Helper()
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	r := &rig{t: t, clk: clk, sb: sb, dev: make(map[string]*simDevice)}

	colPort := sb.Port("collector", nil)
	col, err := NewNode(Config{
		ID: "collector", Mode: CollectorMode, Clock: clk, Messenger: colPort,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(col.Close)
	r.col = col

	for _, id := range deviceIDs {
		sb.Associate("collector", id)
		r.addDevice(id, FlushImmediate, store.NewMemKV(), "")
	}
	return r
}

func (r *rig) addDevice(id string, policy FlushPolicy, storage store.KV, outboxPath string) *simDevice {
	r.t.Helper()
	meter := energy.NewMeter(r.clk)
	droid := android.NewDevice(r.clk, meter, android.Config{})
	modem := radio.NewModem(r.clk, meter, radio.KPN)
	conn := radio.NewConnectivity(modem, nil)
	port := r.sb.Port(id, conn)
	node, err := NewNode(Config{
		ID: id, Mode: DeviceMode, Clock: r.clk, Messenger: port,
		Device: droid, Modem: modem, Storage: storage, OutboxPath: outboxPath,
		FlushPolicy: policy,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	scanner := &stubScanner{}
	node.Sensors().Register(sensors.NewBatterySensor(node.Sensors(), droid))
	node.Sensors().Register(sensors.NewWifiScanSensor(node.Sensors(), scanner, sensors.WifiScanConfig{Meter: meter}))
	d := &simDevice{
		id: id, meter: meter, droid: droid, modem: modem, conn: conn,
		port: port, node: node, scanner: scanner, storage: storage,
	}
	r.dev[id] = d
	r.t.Cleanup(node.Close)
	return d
}

func TestEndToEndBatteryExperiment(t *testing.T) {
	r := newRig(t, "dev1", "dev2")
	if err := r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js")); err != nil {
		t.Fatal(err)
	}
	if err := r.col.Deploy("battery.js", scripts.MustSource("battery.js")); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(5*time.Minute + 30*time.Second)

	lines := r.col.Logs().Lines("battery")
	// 2 devices × 5 samples (1/min).
	if len(lines) != 10 {
		t.Fatalf("battery log lines = %d, want 10\n%v", len(lines), lines)
	}
	seen := map[string]int{}
	for _, l := range lines {
		seen[strings.Fields(l)[0]]++
		if !strings.Contains(l, `"voltage":`) {
			t.Errorf("line %q missing voltage", l)
		}
	}
	if seen["dev1"] != 5 || seen["dev2"] != 5 {
		t.Errorf("per-device counts = %v", seen)
	}
}

func TestSensorRunsOnlyWithRemoteDemand(t *testing.T) {
	// The battery sensor must be OFF until the collector script's
	// subscription propagates, and OFF again after undeploy.
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	r.clk.Advance(10 * time.Minute)
	if got := d.node.Endpoint().Stats().MessagesEnqueued; got > 2 {
		t.Fatalf("device enqueued %d messages with no experiment", got)
	}

	r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	r.col.Deploy("battery.js", scripts.MustSource("battery.js"))
	r.clk.Advance(3 * time.Minute)
	n1 := len(r.col.Logs().Lines("battery"))
	if n1 == 0 {
		t.Fatal("no reports with demand")
	}

	r.col.Undeploy("battery.js")
	r.clk.Advance(10 * time.Minute)
	n2 := len(r.col.Logs().Lines("battery"))
	if n2 > n1 {
		t.Errorf("reports kept flowing after undeploy: %d → %d", n1, n2)
	}
}

func TestDeployValidatesSource(t *testing.T) {
	r := newRig(t, "dev1")
	if err := r.col.Deploy("bad.js", "var = ;"); err == nil {
		t.Error("syntax error deployed")
	}
	if err := r.col.DeployLocal("bad.js", "function ("); err == nil {
		t.Error("DeployLocal accepted bad source")
	}
}

func TestModeEnforcement(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	if err := d.node.Deploy("x.js", "print(1);"); err == nil {
		t.Error("device node deployed")
	}
	if err := d.node.Undeploy("x.js"); err == nil {
		t.Error("device node undeployed")
	}
	if err := d.node.DeployLocal("x.js", "print(1);"); err == nil {
		t.Error("device node deployed locally")
	}
	if r.col.LocalContext() == nil {
		t.Error("collector has no local context")
	}
	if d.node.LocalContext() != nil {
		t.Error("device has a local context")
	}
}

func TestScriptUpdateReplacesAndKeepsFrozenState(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	r.col.Deploy("s.js", `
		setDescription('v1');
		var st = thaw();
		var n = st === null ? 0 : st.n;
		freeze({ n: n + 1 });
	`)
	r.clk.Advance(10 * time.Second)
	ctx := d.node.Contexts()["collector"]
	if ctx == nil {
		t.Fatal("no context")
	}
	if desc := ctx.Script("s.js").Description(); desc != "v1" {
		t.Fatalf("desc = %q", desc)
	}

	// Same source again: idempotent, no restart (frozen n stays 1).
	r.col.Deploy("s.js", r.colDeployedSource(t, "s.js"))
	r.clk.Advance(10 * time.Second)

	// Updated source: restart; thaw sees v1's state.
	r.col.Deploy("s.js", `
		setDescription('v2');
		var st = thaw();
		var n = st === null ? 0 : st.n;
		freeze({ n: n + 1 });
		print('n=' + n);
	`)
	r.clk.Advance(10 * time.Second)
	if desc := ctx.Script("s.js").Description(); desc != "v2" {
		t.Errorf("desc after update = %q", desc)
	}
	prints := d.node.Logs().Prints()
	if len(prints) != 1 || prints[0].Text != "n=1" {
		t.Errorf("prints = %+v (state lost across update?)", prints)
	}
}

// colDeployedSource digs the currently deployed source out of the collector.
func (r *rig) colDeployedSource(t *testing.T, name string) string {
	t.Helper()
	r.col.mu.Lock()
	defer r.col.mu.Unlock()
	src, ok := r.col.deploys[name]
	if !ok {
		t.Fatalf("no deployment %s", name)
	}
	return src
}

func TestRebootRedeploysAndThaws(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	r.col.Deploy("counter.js", `
		var st = thaw();
		var boots = st === null ? 0 : st.boots;
		freeze({ boots: boots + 1 });
		print('boot ' + boots);
	`)
	r.clk.Advance(time.Minute)
	if p := d.node.Logs().Prints(); len(p) != 1 || p[0].Text != "boot 0" {
		t.Fatalf("first boot prints = %+v", p)
	}

	// Reboot: node torn down, new node with the SAME storage and identity.
	d.node.Close()
	d.port.Close()
	r.clk.Advance(time.Minute)
	d2 := r.addDevice("dev1", FlushImmediate, d.storage, "")
	r.clk.Advance(time.Minute)

	p := d2.node.Logs().Prints()
	if len(p) != 1 || p[0].Text != "boot 1" {
		t.Errorf("post-reboot prints = %+v (redeploy or thaw failed)", p)
	}
}

func TestOfflineBufferingEndToEnd(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	r.col.Deploy("battery.js", scripts.MustSource("battery.js"))
	r.clk.Advance(2*time.Minute + 10*time.Second)
	base := len(r.col.Logs().Lines("battery"))
	if base == 0 {
		t.Fatal("no reports while online")
	}

	// Out of coverage for an hour: samples buffer on the device.
	d.conn.SetActive(radio.InterfaceNone)
	r.clk.Advance(time.Hour)
	if got := len(r.col.Logs().Lines("battery")); got != base {
		t.Fatalf("reports arrived while offline: %d → %d", base, got)
	}
	if d.node.Pending() < 50 {
		t.Fatalf("Pending = %d, want ~60 buffered samples", d.node.Pending())
	}

	// Coverage back: reconnect flush drains the backlog.
	d.conn.SetActive(radio.InterfaceCellular)
	r.clk.Advance(5 * time.Minute)
	got := len(r.col.Logs().Lines("battery"))
	if got < base+55 {
		t.Errorf("after reconnect: %d lines, want ≥ %d", got, base+55)
	}
	if d.node.Pending() > 6 {
		t.Errorf("Pending = %d after reconnect", d.node.Pending())
	}
}

func TestReservedChannelsRejected(t *testing.T) {
	r := newRig(t, "dev1")
	errs := 0
	r.col.cfg.OnScriptError = func(string, error) { errs++ }
	if err := r.col.DeployLocal("evil.js", `publish('@deploy', { name: 'x' });`); err == nil {
		t.Error("publish on reserved channel succeeded")
	}
	if err := r.col.DeployLocal("evil2.js", `subscribe('@hello', function() {});`); err == nil {
		t.Error("subscribe on reserved channel succeeded")
	}
}

func TestLocalizationPipelineEndToEnd(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]

	// Geo service + survey of the "home" APs.
	db := geo.NewDB()
	db.Add("h1", geo.Coord{Lat: 52.0, Lon: 4.35})
	db.Add("h2", geo.Coord{Lat: 52.0, Lon: 4.35})
	svc := geo.NewService(db, r.col.LocalContext().Broker())
	defer svc.Close()

	r.col.DeployLocal("collect.js", scripts.MustSource("collect.js"))
	r.col.Deploy("scan.js", scripts.MustSource("scan.js"))
	r.col.Deploy("clustering.js", scripts.MustSource("clustering.js"))

	// 20 minutes at home, then the environment changes (user walks away).
	d.scanner.aps = []sensors.AccessPoint{
		{BSSID: "h1", SSID: "home", RSSI: -60},
		{BSSID: "h2", SSID: "home", RSSI: -70},
		{BSSID: "tether", SSID: "AndroidAP", RSSI: -50, LocallyAdministered: true},
	}
	r.clk.Advance(20 * time.Minute)
	d.scanner.aps = []sensors.AccessPoint{{BSSID: "x9", SSID: "street", RSSI: -80}}
	r.clk.Advance(5 * time.Minute)

	places := r.col.Logs().Lines("places")
	if len(places) != 1 {
		t.Fatalf("places = %v", places)
	}
	line := places[0]
	for _, want := range []string{`"device":"dev1"`, `"lat":52`, `"lon":4.35`, `"aps":{"h1":`} {
		if !strings.Contains(line, want) {
			t.Errorf("place record missing %s: %s", want, line)
		}
	}
	if strings.Contains(line, "tether") {
		t.Error("locally administered AP leaked into the cluster")
	}
}

func TestTailSyncFlushPolicy(t *testing.T) {
	// With FlushTailSync and an e-mail app on the device, reports must leave
	// in batches aligned with the email checks and the modem must never ramp
	// up for Pogo alone.
	r := newRig(t)
	r.sb.Associate("collector", "dev1")
	d := r.addDevice("dev1", FlushTailSync, store.NewMemKV(), "")
	email := android.NewPeriodicApp(r.clk, d.droid, d.modem, nil)
	email.Start()

	r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	r.col.Deploy("battery.js", scripts.MustSource("battery.js"))
	r.clk.Advance(31 * time.Minute)

	lines := r.col.Logs().Lines("battery")
	if len(lines) < 20 {
		t.Fatalf("only %d reports in 31 min", len(lines))
	}
	st := d.node.Endpoint().Stats()
	// Batching: ~6 flush bursts for ~25+ messages means ≳4 msgs per burst on
	// average; MessagesSent counts data messages, Flushes counts attempts.
	if st.Flushes == 0 {
		t.Fatal("no flushes")
	}
	if d.node.TailDetector().Fires() < 5 {
		t.Errorf("tail detector fired %d times in 31 min of 5-min emails", d.node.TailDetector().Fires())
	}
	// The device should hold samples between email checks.
	if st.MessagesSent < 20 {
		t.Errorf("sent = %d", st.MessagesSent)
	}
}

func TestRogueFinderAcrossNetwork(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	loc := &stubLocation{lat: 2.0, lon: 1.0} // inside the Listing 2 polygon
	d.node.Sensors().Register(sensors.NewLocationSensor(d.node.Sensors(), loc))
	d.scanner.aps = []sensors.AccessPoint{{BSSID: "rogue", SSID: "evil", RSSI: -50}}

	r.col.DeployLocal("roguefinder-collect.js", scripts.MustSource("roguefinder-collect.js"))
	r.col.Deploy("roguefinder.js", scripts.MustSource("roguefinder.js"))

	r.clk.Advance(5 * time.Minute)
	inArea := len(r.col.Logs().Lines("scans"))
	if inArea == 0 {
		t.Fatal("no scans reported inside the polygon")
	}

	// Leave the polygon: reporting must stop (sensor off, subscription
	// released).
	loc.lat, loc.lon = 50.0, 50.0
	r.clk.Advance(2 * time.Minute) // location sensor notices
	base := len(r.col.Logs().Lines("scans"))
	r.clk.Advance(10 * time.Minute)
	after := len(r.col.Logs().Lines("scans"))
	if after > base+1 {
		t.Errorf("scans kept flowing outside polygon: %d → %d", base, after)
	}
}

type stubLocation struct{ lat, lon float64 }

func (s *stubLocation) Location(provider string) (sensors.Position, bool) {
	return sensors.Position{Lat: s.lat, Lon: s.lon, Provider: provider, Accuracy: 10}, true
}

func TestNewNodeValidation(t *testing.T) {
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)
	port := sb.Port("x", nil)
	if _, err := NewNode(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewNode(Config{ID: "x", Clock: clk, Messenger: port, Mode: Mode(99)}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := NewNode(Config{ID: "x", Clock: clk, Messenger: port, Mode: DeviceMode, FlushPolicy: FlushTailSync}); err == nil {
		t.Error("tail-sync without device accepted")
	}
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	if _, err := NewNode(Config{ID: "x", Clock: clk, Messenger: port, Mode: CollectorMode, Device: droid}); err == nil {
		t.Error("collector with device accepted")
	}
}

func TestLogStore(t *testing.T) {
	l := NewLogStore()
	var hooked []string
	l.SetOnAppend(func(log, line string) { hooked = append(hooked, log+":"+line) })
	l.Append("a", "1")
	l.Append("a", "2")
	l.Append("b", "3")
	if got := l.Lines("a"); len(got) != 2 || got[1] != "2" {
		t.Errorf("Lines(a) = %v", got)
	}
	if len(l.Names()) != 2 {
		t.Errorf("Names = %v", l.Names())
	}
	if len(hooked) != 3 {
		t.Errorf("hooked = %v", hooked)
	}
	for i := 0; i < 1100; i++ {
		l.Print("s", "x")
	}
	if got := len(l.Prints()); got != 1000 {
		t.Errorf("Prints = %d, want capped at 1000", got)
	}
}

func TestPublishNonMapWrapped(t *testing.T) {
	r := newRig(t, "dev1")
	var got []msg.Map
	r.col.LocalContext().Broker().Subscribe("nums", nil, func(ev pubsub.Event) {
		got = append(got, ev.Message)
	})
	_ = got
	// Scripts may publish scalars; the host wraps them as {value: v}.
	if err := r.col.DeployLocal("s.js", `publish('nums', 42);`); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(10 * time.Second)
	if len(got) != 1 || got[0]["value"].(float64) != 42 {
		t.Errorf("got = %v", got)
	}
}
