package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pogo/internal/android"
	"pogo/internal/energy"
	"pogo/internal/radio"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
	"pogo/internal/xmpp"
)

// TestCoreOverRealXMPP exercises the full production path: core nodes on the
// real clock, talking through genuine TCP/XMPP sockets.
func TestCoreOverRealXMPP(t *testing.T) {
	srv := xmpp.NewServer(xmpp.ServerConfig{AllowAutoRegister: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Associate("researcher", "phone")

	clk := vclock.Real{}

	colM, err := transport.DialXMPP(srv.Addr(), "researcher", "pw", "pc")
	if err != nil {
		t.Fatal(err)
	}
	defer colM.Close()
	col, err := NewNode(Config{
		ID: "researcher", Mode: CollectorMode, Clock: clk, Messenger: colM,
		FlushPolicy: FlushImmediate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	devM, err := transport.DialXMPP(srv.Addr(), "phone", "pw", "ph")
	if err != nil {
		t.Fatal(err)
	}
	defer devM.Close()
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	fast := radio.KPN
	fast.RampUp, fast.DCHTailTime, fast.FACHTailTime, fast.MinTxTime =
		10*time.Millisecond, 50*time.Millisecond, 100*time.Millisecond, time.Millisecond
	modem := radio.NewModem(clk, meter, fast)
	dev, err := NewNode(Config{
		ID: "phone", Mode: DeviceMode, Clock: clk, Messenger: devM,
		Device: droid, Modem: modem, Storage: store.NewMemKV(),
		FlushPolicy: FlushImmediate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	var mu sync.Mutex
	var lines []string
	col.Logs().SetOnAppend(func(log, line string) {
		if log == "pings" {
			mu.Lock()
			lines = append(lines, line)
			mu.Unlock()
		}
	})
	if err := col.DeployLocal("sink.js", `
		setDescription('sink');
		subscribe('ping', function (m, origin) { logTo('pings', origin + ':' + m.n); });
	`); err != nil {
		t.Fatal(err)
	}
	if err := col.Deploy("pinger.js", `
		setDescription('pinger');
		var n = 0;
		function tick() { n++; publish('ping', { n: n }); setTimeout(tick, 50); }
		setTimeout(tick, 50);
	`); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n >= 5 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) < 5 {
		t.Fatalf("only %d pings arrived over real XMPP: %v", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "phone:") {
		t.Errorf("origin missing: %q", lines[0])
	}
}

func TestAutoStartOffRequiresManualStart(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	r.col.Deploy("manual.js", `
		setAutoStart(false);
		setDescription('waits for the user');
		function start() { print('running'); }
	`)
	r.clk.Advance(10 * time.Second)
	ctx := d.node.Contexts()["collector"]
	if ctx == nil || ctx.Script("manual.js") == nil {
		t.Fatal("script not deployed")
	}
	if got := len(d.node.Logs().Prints()); got != 0 {
		t.Fatalf("script ran without user consent: %d prints", got)
	}

	// The user taps "start" in the UI.
	if err := ctx.StartScript("manual.js"); err != nil {
		t.Fatal(err)
	}
	prints := d.node.Logs().Prints()
	if len(prints) != 1 || prints[0].Text != "running" {
		t.Errorf("prints = %+v", prints)
	}
	if err := ctx.StartScript("missing.js"); err == nil {
		t.Error("starting an unknown script succeeded")
	}
}
