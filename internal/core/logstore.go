package core

import "sync"

// LogStore is the node's permanent text storage behind the scripts' log()
// and logTo() functions — and, on a collector, the "database" that
// collect.js pushes annotated places into.
type LogStore struct {
	mu       sync.Mutex
	logs     map[string][]string
	prints   []PrintLine
	onAppend func(logName, line string)
}

// PrintLine is one script debug print.
type PrintLine struct {
	Script string
	Text   string
}

// NewLogStore returns empty storage.
func NewLogStore() *LogStore {
	return &LogStore{logs: make(map[string][]string)}
}

// SetOnAppend registers fn to observe every line appended to any log.
//
// Contract: fn is called synchronously on the appending goroutine, after the
// line is stored, outside the store's mutex — so fn may safely call back
// into the LogStore (Lines, Append) but must be quick and must not block,
// or it stalls the script that logged. At most one observer is held; a
// later call replaces the previous one, and nil removes it. Set it before
// scripts run: lines appended concurrently with SetOnAppend may or may not
// be observed.
func (l *LogStore) SetOnAppend(fn func(logName, line string)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onAppend = fn
}

// Append adds a line to the named log.
func (l *LogStore) Append(logName, line string) {
	l.mu.Lock()
	l.logs[logName] = append(l.logs[logName], line)
	fn := l.onAppend
	l.mu.Unlock()
	if fn != nil {
		fn(logName, line)
	}
}

// Lines returns a copy of the named log.
func (l *LogStore) Lines(logName string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.logs[logName]))
	copy(out, l.logs[logName])
	return out
}

// Names lists the logs that have content.
func (l *LogStore) Names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.logs))
	for name := range l.logs {
		out = append(out, name)
	}
	return out
}

// Print records a script debug print (bounded to the most recent 1000).
func (l *LogStore) Print(script, text string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prints = append(l.prints, PrintLine{Script: script, Text: text})
	if len(l.prints) > 1000 {
		l.prints = l.prints[len(l.prints)-1000:]
	}
}

// Prints returns a copy of the recent print lines.
func (l *LogStore) Prints() []PrintLine {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PrintLine, len(l.prints))
	copy(out, l.prints)
	return out
}
