package core

import (
	"strings"
	"testing"
	"time"

	"pogo/internal/store"
)

// multiRig: one device shared by two researchers (the many-to-many relation
// of §3.1).
func multiRig(t *testing.T) (*rig, *Node, *Node, *simDevice) {
	t.Helper()
	r := newRig(t) // collector "collector" unused here
	colA, err := NewNode(Config{
		ID: "alice", Mode: CollectorMode, Clock: r.clk, Messenger: r.sb.Port("alice", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(colA.Close)
	colB, err := NewNode(Config{
		ID: "bob", Mode: CollectorMode, Clock: r.clk, Messenger: r.sb.Port("bob", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(colB.Close)
	r.sb.Associate("alice", "dev1")
	r.sb.Associate("bob", "dev1")
	d := r.addDevice("dev1", FlushImmediate, store.NewMemKV(), "")
	return r, colA, colB, d
}

func TestExperimentsAreSandboxed(t *testing.T) {
	r, colA, colB, d := multiRig(t)

	// Both experiments use a channel named "shared" inside their contexts.
	colA.DeployLocal("a-sink.js", `subscribe('shared', function(m, o) { logTo('got', o + ':' + m.who); });`)
	colB.DeployLocal("b-sink.js", `subscribe('shared', function(m, o) { logTo('got', o + ':' + m.who); });`)
	colA.Deploy("a-pub.js", `setTimeout(function() { publish('shared', { who: 'alice-script' }); }, 1000);`)
	colB.Deploy("b-pub.js", `setTimeout(function() { publish('shared', { who: 'bob-script' }); }, 1000);`)
	r.clk.Advance(time.Minute)

	// The device runs two contexts, one per researcher.
	ctxs := d.node.Contexts()
	if len(ctxs) != 2 || ctxs["alice"] == nil || ctxs["bob"] == nil {
		t.Fatalf("contexts = %v", ctxs)
	}
	gotA := colA.Logs().Lines("got")
	gotB := colB.Logs().Lines("got")
	if len(gotA) != 1 || !strings.Contains(gotA[0], "alice-script") {
		t.Errorf("alice got %v", gotA)
	}
	if len(gotB) != 1 || !strings.Contains(gotB[0], "bob-script") {
		t.Errorf("bob got %v", gotB)
	}
	// Cross-talk check: alice must never see bob's message.
	for _, l := range gotA {
		if strings.Contains(l, "bob") {
			t.Errorf("sandbox breach: %q", l)
		}
	}
}

func TestSensorSharedAcrossExperiments(t *testing.T) {
	// §3.5: two experiments requesting the same sensor at different rates
	// share one schedule at the highest frequency; both receive every
	// sample their subscription asks for.
	r, colA, colB, d := multiRig(t)

	colA.DeployLocal("a.js", `subscribe('battery-report', function(m, o) { logTo('batt', o); });`)
	colB.DeployLocal("b.js", `subscribe('battery-report', function(m, o) { logTo('batt', o); });`)
	colA.Deploy("slow.js", `
		subscribe('battery', function(m) { publish('battery-report', { v: m.voltage }); },
			{ interval: 120 * 1000 });
	`)
	colB.Deploy("fast.js", `
		subscribe('battery', function(m) { publish('battery-report', { v: m.voltage }); },
			{ interval: 30 * 1000 });
	`)
	r.clk.Advance(10*time.Minute + 10*time.Second)

	// One underlying sensor at 30 s: ~20 samples. Both experiments' scripts
	// receive every sample (topic pub/sub within each context's broker is
	// driven by the shared sensor manager).
	fast := len(colB.Logs().Lines("batt"))
	slow := len(colA.Logs().Lines("batt"))
	if fast < 19 || fast > 21 {
		t.Errorf("fast experiment got %d samples, want ~20", fast)
	}
	if slow != fast {
		t.Errorf("slow experiment got %d, fast %d — sensor fan-out broken", slow, fast)
	}
	// Energy sanity: one shared schedule, not two.
	_ = d
}

func TestUndeployOneExperimentLeavesOther(t *testing.T) {
	r, colA, colB, d := multiRig(t)
	colA.DeployLocal("a.js", `subscribe('battery-report', function() { logTo('batt', 'x'); });`)
	colB.DeployLocal("b.js", `subscribe('battery-report', function() { logTo('batt', 'x'); });`)
	src := `subscribe('battery', function(m) { publish('battery-report', { v: m.voltage }); }, { interval: 60 * 1000 });`
	colA.Deploy("rep.js", src)
	colB.Deploy("rep.js", src)
	r.clk.Advance(3 * time.Minute)

	nA := len(colA.Logs().Lines("batt"))
	if nA == 0 {
		t.Fatal("no data flowing")
	}
	colA.Undeploy("rep.js")
	r.clk.Advance(5 * time.Minute)

	if got := len(d.node.Contexts()["alice"].ScriptNames()); got != 0 {
		t.Errorf("alice context still has %d scripts", got)
	}
	nB1 := len(colB.Logs().Lines("batt"))
	r.clk.Advance(3 * time.Minute)
	nB2 := len(colB.Logs().Lines("batt"))
	if nB2 <= nB1 {
		t.Errorf("bob's experiment stalled after alice undeployed: %d → %d", nB1, nB2)
	}
}

func TestDeviceCannotReachOtherDevice(t *testing.T) {
	// §4.2: "device nodes can never communicate with each other directly";
	// even a malicious script publishing on a channel another device's
	// experiment uses must go nowhere.
	r := newRig(t, "dev1", "dev2")
	r.col.DeployLocal("sink.js", `subscribe('chat', function(m, o) { logTo('chat', o + ':' + m.text); });`)
	r.col.Deploy("gossip.js", `
		subscribe('chat', function(m, o) { if (o !== '') logTo('leak', o); });
		setTimeout(function() { publish('chat', { text: 'hi' }); }, 1000);
	`)
	r.clk.Advance(time.Minute)

	// The collector hears both devices...
	got := r.col.Logs().Lines("chat")
	if len(got) != 2 {
		t.Fatalf("collector chat = %v", got)
	}
	// ...but neither device ever saw the other's publication.
	for id, d := range r.dev {
		if leaks := d.node.Logs().Lines("leak"); len(leaks) != 0 {
			t.Errorf("%s saw another device's data: %v", id, leaks)
		}
	}
}

func TestCollectorPublishReachesDevices(t *testing.T) {
	// The reverse path: a collector script publishing configuration that
	// device scripts subscribe to.
	r := newRig(t, "dev1", "dev2")
	r.col.Deploy("cfg-listener.js", `
		subscribe('config', function(m) { logTo('cfg', json(m)); });
	`)
	r.clk.Advance(10 * time.Second)
	r.col.DeployLocal("announce.js", `publish('config', { rate: 5 });`)
	r.clk.Advance(30 * time.Second)

	for id, d := range r.dev {
		got := d.node.Logs().Lines("cfg")
		if len(got) != 1 || !strings.Contains(got[0], `"rate":5`) {
			t.Errorf("%s cfg = %v", id, got)
		}
	}
}

func TestOriginVisibleToCollectorScripts(t *testing.T) {
	r := newRig(t, "dev1", "dev2")
	// The collector script's second handler argument is the origin device —
	// how collect.js distinguishes its users (§4.1). A raw broker
	// subscription would NOT propagate to devices; only script
	// subscriptions are announced.
	r.col.DeployLocal("origins.js", `
		subscribe('battery-report', function(m, origin) { logTo('origins', origin); });
	`)
	r.col.Deploy("rep.js", `
		subscribe('battery', function(m) { publish('battery-report', { v: m.voltage }); },
			{ interval: 60 * 1000 });
	`)
	r.clk.Advance(90 * time.Second)
	origins := r.col.Logs().Lines("origins")
	if len(origins) != 2 {
		t.Fatalf("origins = %v", origins)
	}
	seen := map[string]bool{}
	for _, o := range origins {
		seen[o] = true
	}
	if !seen["dev1"] || !seen["dev2"] {
		t.Errorf("origins = %v", origins)
	}
}
