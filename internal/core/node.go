// Package core implements the Pogo node — the paper's primary contribution
// (§3, §4.2). Both researchers and device owners run the same middleware;
// the only functional difference is that researcher nodes operate in
// collector mode, which gives them the ability to deploy scripts.
//
// A node hosts script *contexts* (sandboxes, one per experiment), each with
// its own publish/subscribe broker. Contexts pair with counterparts on
// remote nodes: subscriptions made by a script on one side materialize as
// proxy subscriptions on the other, so the pub/sub abstraction works
// seamlessly across the network boundary — a collector script subscribing
// to "battery" automatically receives voltage measurements from every
// device in the experiment, and its {interval} parameter drives the remote
// battery sensors' sampling schedules. Device nodes never talk to each
// other (§4.2); the roster at the switchboard enforces it.
//
// Outbound data is buffered in a durable outbox and flushed according to a
// policy: immediately, on an interval, or synchronized with other
// applications' 3G tails (§4.7).
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pogo/internal/android"
	"pogo/internal/msg"
	"pogo/internal/obs"
	"pogo/internal/radio"
	"pogo/internal/sched"
	"pogo/internal/script"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/tail"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// Mode selects a node's role.
type Mode int

// Node modes.
const (
	DeviceMode Mode = iota + 1
	CollectorMode
)

// FlushPolicy selects when the outbox is pushed to the network.
type FlushPolicy int

// Flush policies. The §5.2 experiment compares FlushTailSync (Pogo's
// contribution) against the alternatives.
const (
	// FlushManual leaves flushing to explicit Flush calls (and reconnects).
	FlushManual FlushPolicy = iota + 1
	// FlushImmediate sends every message as soon as it is enqueued —
	// maximal tails, the strawman baseline.
	FlushImmediate
	// FlushInterval flushes every Config.FlushEvery.
	FlushInterval
	// FlushTailSync flushes when the tail detector observes another
	// application's transmission (§4.7); requires a Device and Modem.
	FlushTailSync
)

// Control channels of the context-pairing protocol; application channels
// must not start with '@'.
const (
	chanHello       = "@hello"
	chanDeploy      = "@deploy"
	chanUndeploy    = "@undeploy"
	chanSubscribe   = "@subscribe"
	chanUnsubscribe = "@unsubscribe"
)

// Config assembles a node.
type Config struct {
	// ID is the node's switchboard identity; must match the messenger's.
	ID   string
	Mode Mode
	// Clock drives everything; vclock.Sim for experiments, vclock.Real for
	// the cmd/ binaries.
	Clock vclock.Clock
	// Messenger is the unreliable switchboard attachment.
	Messenger transport.Messenger
	// Device is the simulated phone (device mode; nil in collector mode).
	Device *android.Device
	// Modem supplies the traffic counters for tail detection (device mode,
	// required for FlushTailSync).
	Modem *radio.Modem
	// Storage persists freeze/thaw state; defaults to a fresh MemKV.
	Storage store.KV
	// OutboxPath backs the durable outbox; "" uses a volatile one.
	OutboxPath string
	// FlushPolicy defaults to FlushManual.
	FlushPolicy FlushPolicy
	// FlushEvery is the FlushInterval period (default 1 h — the §4.7
	// "flush the transmit buffer at long intervals" alternative).
	FlushEvery time.Duration
	// MaxMessageAge purges older buffered messages (default 24 h, the
	// deployment's setting). Negative disables purging.
	MaxMessageAge time.Duration
	// Privacy is the device owner's per-channel sharing policy (§3.3);
	// nil shares everything. Changes apply to running experiments at once.
	Privacy *Privacy
	// ScriptConfig tunes the PogoScript runtime.
	ScriptConfig script.Config
	// OnPrint observes script print() output (may be nil).
	OnPrint func(scriptName, text string)
	// OnScriptError observes script runtime errors (may be nil).
	OnScriptError func(scriptName string, err error)
	// Obs, when non-nil, receives metrics and message-lifecycle trace
	// events from every layer of the node (broker, scheduler, transport,
	// tail detector, per-script usage). Nil disables observability at zero
	// cost.
	Obs *obs.Registry
	// ObsEntity overrides the device axis that this node's ledger charges
	// (energy, bytes, wakeups) are booked under. Defaults to ID. Experiment
	// harnesses use it to keep trials apart (e.g. "kpn/pogo") while metric
	// node labels stay stable.
	ObsEntity string
	// TraceSeed seeds deterministic causal trace-ID assignment (broker
	// publications and transport roots). Independent of Obs: traces ride
	// the wire whether or not a registry is attached, so enabling
	// observability never changes a seeded run's bytes.
	TraceSeed int64
}

// Node is a running Pogo middleware instance.
type Node struct {
	cfg  Config
	clk  vclock.Clock
	sch  *sched.Scheduler
	smgr *sensors.Manager
	box  *store.Outbox
	ep   *transport.Endpoint
	det  *tail.Detector
	logs *LogStore

	mu        sync.Mutex
	contexts  map[string]*Context // device mode: one per collector
	local     *Context            // collector mode: the experiment context
	deploys   map[string]string   // collector mode: script name → source
	deploySeq []string
	stopFlush func()
	closed    bool

	obsCancel    func()               // unregisters the usage collect hook; nil without Obs
	usageAnchors map[string]lastUsage // previously ledger-charged usage per script
}

// NewNode assembles and starts a node: it attaches to the messenger,
// arms the flush policy, and (device mode) greets its roster collectors.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID == "" || cfg.Clock == nil || cfg.Messenger == nil {
		return nil, errors.New("core: ID, Clock, and Messenger are required")
	}
	if cfg.Mode != DeviceMode && cfg.Mode != CollectorMode {
		return nil, errors.New("core: bad mode")
	}
	if cfg.Mode == CollectorMode && cfg.Device != nil {
		return nil, errors.New("core: collector nodes have no device")
	}
	if cfg.Storage == nil {
		cfg.Storage = store.NewMemKV()
	}
	if cfg.FlushPolicy == 0 {
		// Collectors are wired and always online: send immediately. Devices
		// default to manual so callers make a deliberate energy choice.
		if cfg.Mode == CollectorMode {
			cfg.FlushPolicy = FlushImmediate
		} else {
			cfg.FlushPolicy = FlushManual
		}
	}
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = time.Hour
	}
	if cfg.MaxMessageAge == 0 {
		cfg.MaxMessageAge = store.DefaultMaxAge
	}
	if cfg.MaxMessageAge < 0 {
		cfg.MaxMessageAge = 0
	}
	if cfg.FlushPolicy == FlushTailSync && (cfg.Device == nil || cfg.Modem == nil) {
		return nil, errors.New("core: FlushTailSync needs Device and Modem")
	}
	if cfg.ObsEntity == "" {
		cfg.ObsEntity = cfg.ID
	}

	var box *store.Outbox
	if cfg.OutboxPath == "" {
		box = store.OpenMemory()
	} else {
		b, err := store.Open(cfg.OutboxPath)
		if err != nil {
			return nil, fmt.Errorf("core: outbox: %w", err)
		}
		box = b
	}

	n := &Node{
		cfg:      cfg,
		clk:      cfg.Clock,
		sch:      sched.New(cfg.Clock, cfg.Device),
		box:      box,
		logs:     NewLogStore(),
		contexts: make(map[string]*Context),
		deploys:  make(map[string]string),
	}
	n.smgr = sensors.NewManager(n.sch)
	n.sch.Instrument(cfg.Obs, cfg.ID, cfg.ObsEntity)
	// Task names follow the conventions in this package: "script-<name>"
	// for subscription dispatch and "timeout-<name>" for setTimeout. Anything
	// else (flush, presence, sensors) is middleware overhead and charges the
	// bare device entity.
	n.sch.SetTaskOwner(func(task string) string {
		if s, ok := cutPrefix(task, "script-"); ok {
			return s
		}
		if s, ok := cutPrefix(task, "timeout-"); ok {
			return s
		}
		return ""
	})
	n.ep = transport.NewEndpoint(cfg.Messenger, box, cfg.Clock, transport.EndpointConfig{
		MaxAge:    cfg.MaxMessageAge,
		Obs:       cfg.Obs,
		Entity:    cfg.ObsEntity,
		TraceSeed: cfg.TraceSeed,
	})
	n.ep.OnMessageTraced(n.handleMessage)
	cfg.Messenger.OnOnline(func() { n.sch.Submit("reconnect-flush", func() { n.Flush() }) })
	cfg.Messenger.OnPresence(n.handlePresence)
	if cfg.Privacy != nil {
		cfg.Privacy.OnChange(func(channel string, shared bool) {
			n.mu.Lock()
			ctxs := make([]*Context, 0, len(n.contexts)+1)
			for _, c := range n.contexts {
				ctxs = append(ctxs, c)
			}
			if n.local != nil {
				ctxs = append(ctxs, n.local)
			}
			n.mu.Unlock()
			for _, c := range ctxs {
				c.applyPrivacy(channel, shared)
			}
		})
	}

	// The flush policy (and in particular the tail detector's self-traffic
	// discounting) must be armed before the node's first transmission.
	switch cfg.FlushPolicy {
	case FlushInterval:
		n.stopFlush = n.sch.Every(cfg.FlushEvery, "flush", func() { n.Flush() })
	case FlushTailSync:
		n.det = tail.New(cfg.Device, cfg.Modem.Stats, 0)
		n.det.Instrument(cfg.Obs, cfg.ID)
		// Pogo's own transmissions (and the acks they provoke) must not
		// re-trigger the detector (§4.7 detects OTHER applications).
		n.ep.OnWire(func(sent, recv int64) { n.det.Discount(sent + recv) })
		// A detected tail is a hit when buffered data rides it out, a miss
		// when the outbox was already empty.
		hits := cfg.Obs.Counter("tailsync_piggyback_hits_total", obs.L("node", cfg.ID))
		misses := cfg.Obs.Counter("tailsync_piggyback_misses_total", obs.L("node", cfg.ID))
		tailMeter := cfg.Obs.Meter(cfg.ObsEntity, "", "")
		n.det.OnTraffic(func(int64) {
			if n.Pending() > 0 {
				hits.Inc()
				tailMeter.AddTailHit(1)
			} else {
				misses.Inc()
				tailMeter.AddTailMiss(1)
			}
			n.Flush()
		})
		n.det.Start()
	}

	if cfg.Obs != nil {
		// Every snapshot also refreshes the node's outbox depth, so the
		// collector_backpressure alert rule (and pogo-top) see live backlog
		// without the node pushing a gauge on its hot path.
		backlog := cfg.Obs.Gauge("node_outbox_pending", obs.L("node", cfg.ID))
		usageCancel := cfg.Obs.OnCollect(func() {
			n.exportUsage()
			backlog.Set(float64(n.Pending()))
		})
		n.obsCancel = usageCancel
	}

	switch cfg.Mode {
	case CollectorMode:
		n.local = newContext(n, "")
	case DeviceMode:
		// Greet roster collectors so they (re)deploy — this is how scripts
		// come back after a reboot.
		for _, peer := range cfg.Messenger.Peers() {
			n.sendControl(peer, chanHello, msg.Map{})
		}
		n.Flush()
	}
	return n, nil
}

// ID returns the node identity.
func (n *Node) ID() string { return n.cfg.ID }

// Mode returns the node's role.
func (n *Node) Mode() Mode { return n.cfg.Mode }

// Scheduler exposes the node's scheduler (sensor registration needs it).
func (n *Node) Scheduler() *sched.Scheduler { return n.sch }

// Sensors returns the node's sensor manager; callers register the device's
// sensors here.
func (n *Node) Sensors() *sensors.Manager { return n.smgr }

// Logs returns the node's log storage (the collector's "database").
func (n *Node) Logs() *LogStore { return n.logs }

// Endpoint exposes the transport endpoint (stats, tests).
func (n *Node) Endpoint() *transport.Endpoint { return n.ep }

// TailDetector returns the tail detector when FlushTailSync is active.
func (n *Node) TailDetector() *tail.Detector { return n.det }

// LocalContext returns the collector's experiment context (nil on devices).
func (n *Node) LocalContext() *Context {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.local
}

// Contexts returns the device's contexts keyed by collector (device mode).
func (n *Node) Contexts() map[string]*Context {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]*Context, len(n.contexts))
	for k, v := range n.contexts {
		out[k] = v
	}
	return out
}

// Flush pushes buffered messages out under the current connectivity.
func (n *Node) Flush() int { return n.ep.Flush() }

// Pending returns the number of buffered outbound messages.
func (n *Node) Pending() int { return n.ep.Pending() }

// Close stops scripts, sensors, the scheduler, and the outbox.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ctxs := make([]*Context, 0, len(n.contexts)+1)
	for _, c := range n.contexts {
		ctxs = append(ctxs, c)
	}
	if n.local != nil {
		ctxs = append(ctxs, n.local)
	}
	stopFlush := n.stopFlush
	obsCancel := n.obsCancel
	n.mu.Unlock()

	if obsCancel != nil {
		obsCancel()
		n.exportUsage() // final usage export; scripts are about to stop
	}
	if n.det != nil {
		n.det.Stop()
	}
	if stopFlush != nil {
		stopFlush()
	}
	for _, c := range ctxs {
		c.close()
	}
	n.smgr.Close()
	n.sch.Close()
	n.box.Close()
}

// ---- collector-mode API ----

// Deploy pushes a script to every device on the roster, now and whenever a
// device (re)appears (§3.2: push-based deployment). Re-deploying the same
// name replaces the script (a field update).
func (n *Node) Deploy(name, source string) error {
	if n.cfg.Mode != CollectorMode {
		return errors.New("core: Deploy requires collector mode")
	}
	// Validate before shipping: a syntax error should fail at the
	// researcher's desk, not on a thousand phones.
	if _, err := script.New(name, source, nil, n.cfg.ScriptConfig); err != nil {
		return fmt.Errorf("core: deploy %s: %w", name, err)
	}
	n.mu.Lock()
	if _, known := n.deploys[name]; !known {
		n.deploySeq = append(n.deploySeq, name)
	}
	n.deploys[name] = source
	n.mu.Unlock()
	for _, peer := range n.cfg.Messenger.Peers() {
		n.sendControl(peer, chanDeploy, msg.Map{"name": name, "source": source})
	}
	n.Flush()
	return nil
}

// Undeploy removes a script from every device.
func (n *Node) Undeploy(name string) error {
	if n.cfg.Mode != CollectorMode {
		return errors.New("core: Undeploy requires collector mode")
	}
	n.mu.Lock()
	delete(n.deploys, name)
	for i, d := range n.deploySeq {
		if d == name {
			n.deploySeq = append(n.deploySeq[:i], n.deploySeq[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
	for _, peer := range n.cfg.Messenger.Peers() {
		n.sendControl(peer, chanUndeploy, msg.Map{"name": name})
	}
	n.Flush()
	return nil
}

// DeployLocal runs a script in the collector's own context (collect.js).
func (n *Node) DeployLocal(name, source string) error {
	if n.cfg.Mode != CollectorMode {
		return errors.New("core: DeployLocal requires collector mode")
	}
	return n.local.deploy(name, source)
}

// ---- message plumbing ----

// sendControl enqueues a control message for a peer on the reliable
// endpoint, flushing right away under the immediate policy.
func (n *Node) sendControl(peer, channel string, payload msg.Map) {
	if err := n.ep.Enqueue(peer, channel, payload); err != nil && n.cfg.OnScriptError != nil {
		n.cfg.OnScriptError("(core)", err)
	}
	if n.cfg.FlushPolicy == FlushImmediate {
		n.sch.Submit("flush-control", func() { n.Flush() })
	}
}

// handleMessage dispatches a deduplicated inbound message. trace is the
// wire-propagated trace ID (0 from an untraced peer); application data
// re-publishes under it so the receiving fanout joins the sender's span
// tree.
func (n *Node) handleMessage(from, channel string, payload msg.Value, trace obs.TraceID) {
	body, _ := payload.(msg.Map)
	switch channel {
	case chanHello:
		n.handleHello(from)
	case chanDeploy:
		if n.cfg.Mode != DeviceMode {
			return
		}
		ctx := n.contextFor(from)
		name := msg.GetString(body, "name")
		source := msg.GetString(body, "source")
		if name == "" {
			return
		}
		if err := ctx.deploy(name, source); err != nil && n.cfg.OnScriptError != nil {
			n.cfg.OnScriptError(name, err)
		}
	case chanUndeploy:
		if ctx := n.existingContext(from); ctx != nil {
			ctx.undeploy(msg.GetString(body, "name"))
		}
	case chanSubscribe:
		ctx := n.contextForInbound(from)
		if ctx == nil {
			return
		}
		id, _ := msg.GetNumber(body, "id")
		params, _ := body["params"].(msg.Map)
		ctx.addProxy(from, int(id), msg.GetString(body, "channel"), params)
	case chanUnsubscribe:
		ctx := n.contextForInbound(from)
		if ctx == nil {
			return
		}
		id, _ := msg.GetNumber(body, "id")
		ctx.removeProxy(from, int(id))
	default:
		// Application data: publish into the paired context with origin. The
		// body was decoded from the wire just for this call, so it can be
		// frozen in place — the broker then shares it with every subscriber
		// without taking its own defensive clone.
		ctx := n.contextForInbound(from)
		if ctx == nil {
			return
		}
		ctx.broker.PublishTraced(channel, msg.FreezeOwned(body), from, trace)
	}
}

// handleHello: a device booted or joined; ship it the current experiment.
func (n *Node) handleHello(from string) {
	if n.cfg.Mode != CollectorMode {
		return
	}
	n.mu.Lock()
	names := append([]string(nil), n.deploySeq...)
	sources := make([]string, len(names))
	for i, name := range names {
		sources[i] = n.deploys[name]
	}
	local := n.local
	n.mu.Unlock()
	for i, name := range names {
		n.sendControl(from, chanDeploy, msg.Map{"name": name, "source": sources[i]})
	}
	if local != nil {
		local.resendSubscriptions(from)
	}
	n.Flush()
}

// handlePresence reacts to roster peers appearing.
func (n *Node) handlePresence(peer string, online bool) {
	if !online {
		return
	}
	n.sch.Submit("presence", func() {
		switch n.cfg.Mode {
		case DeviceMode:
			// A collector (re)appeared: make sure it knows us. Duplicate
			// hellos are cheap; deploys are idempotent.
			n.sendControl(peer, chanHello, msg.Map{})
			n.Flush()
		case CollectorMode:
			n.Flush()
		}
	})
}

// contextFor returns (creating) the device-mode context for a collector.
func (n *Node) contextFor(owner string) *Context {
	n.mu.Lock()
	defer n.mu.Unlock()
	ctx, ok := n.contexts[owner]
	if !ok {
		ctx = newContext(n, owner)
		n.contexts[owner] = ctx
	}
	return ctx
}

// existingContext returns the context paired with owner, or nil.
func (n *Node) existingContext(owner string) *Context {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.contexts[owner]
}

// contextForInbound resolves which context an inbound message from a peer
// belongs to: the collector's local context, or the device's per-collector
// context (created on demand — a @subscribe can precede any @deploy).
func (n *Node) contextForInbound(from string) *Context {
	if n.cfg.Mode == CollectorMode {
		return n.LocalContext()
	}
	return n.contextFor(from)
}

// peersForContext lists the remote counterparts of a context: the single
// owner on devices, the whole roster on collectors.
func (n *Node) peersForContext(c *Context) []string {
	if c.owner != "" {
		return []string{c.owner}
	}
	return n.cfg.Messenger.Peers()
}

// cutPrefix is strings.CutPrefix, inlined to keep this file's imports flat.
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}
