package core

import (
	"sort"
	"sync"
)

// Privacy is the device owner's fine-grained sharing control (§3.3 of the
// paper: "users are given fine-grained control over what sensor information
// they wish to share to protect their privacy", changeable at any time from
// the application interface).
//
// The control is per channel. A hidden channel is enforced at two points on
// the device:
//
//   - proxy subscriptions created on behalf of remote collectors are
//     deactivated, so no data on the channel leaves the phone; and
//   - subscriptions made by remotely-deployed scripts are deactivated, so
//     experiment code cannot read the sensor locally either.
//
// Deactivation uses the broker's release mechanism, so sensors see the
// demand disappear and power down — hiding a channel also stops its sensor
// from sampling.
type Privacy struct {
	mu        sync.Mutex
	hidden    map[string]bool
	listeners []func(channel string, shared bool)
}

// NewPrivacy returns a policy that shares everything (the opportunistic
// default of §3.3: install and go, adjust later).
func NewPrivacy() *Privacy {
	return &Privacy{hidden: make(map[string]bool)}
}

// SetShared changes whether a channel's data may be used and shared.
func (p *Privacy) SetShared(channel string, share bool) {
	p.mu.Lock()
	was := !p.hidden[channel]
	if share {
		delete(p.hidden, channel)
	} else {
		p.hidden[channel] = true
	}
	listeners := make([]func(string, bool), len(p.listeners))
	copy(listeners, p.listeners)
	p.mu.Unlock()
	if was == share {
		return
	}
	for _, fn := range listeners {
		fn(channel, share)
	}
}

// Shared reports whether a channel may be used and shared. A nil Privacy
// shares everything.
func (p *Privacy) Shared(channel string) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.hidden[channel]
}

// Hidden lists the currently hidden channels, sorted.
func (p *Privacy) Hidden() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.hidden))
	for ch := range p.hidden {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}

// OnChange registers a listener for sharing changes; the node uses it to
// re-gate live subscriptions.
func (p *Privacy) OnChange(fn func(channel string, shared bool)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.listeners = append(p.listeners, fn)
}
