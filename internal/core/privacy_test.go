package core

import (
	"testing"
	"time"

	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
)

// privacyRig builds a rig whose device enforces the given policy.
func privacyRig(t *testing.T, p *Privacy) (*rig, *simDevice) {
	t.Helper()
	r := newRig(t)
	r.sb.Associate("collector", "dev1")
	d := r.addDeviceWithPrivacy("dev1", p)
	return r, d
}

// addDeviceWithPrivacy mirrors addDevice but wires a privacy policy.
func (r *rig) addDeviceWithPrivacy(id string, p *Privacy) *simDevice {
	r.t.Helper()
	d := r.addDevice(id, FlushImmediate, store.NewMemKV(), "")
	// Rebuild the node with privacy (simplest: close and recreate).
	d.node.Close()
	d.port.Close()
	port := r.sb.Port(id, d.conn)
	node, err := NewNode(Config{
		ID: id, Mode: DeviceMode, Clock: r.clk, Messenger: port,
		Device: d.droid, Modem: d.modem, Storage: d.storage,
		FlushPolicy: FlushImmediate, Privacy: p,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	node.Sensors().Register(sensors.NewBatterySensor(node.Sensors(), d.droid))
	node.Sensors().Register(sensors.NewWifiScanSensor(node.Sensors(), d.scanner, sensors.WifiScanConfig{Meter: d.meter}))
	d.node, d.port = node, port
	r.t.Cleanup(node.Close)
	return d
}

func TestPrivacyBlocksHiddenChannel(t *testing.T) {
	p := NewPrivacy()
	p.SetShared(sensors.ChannelBattery, false)
	r, _ := privacyRig(t, p)

	r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	r.col.Deploy("battery.js", scripts.MustSource("battery.js"))
	r.clk.Advance(5 * time.Minute)

	if got := len(r.col.Logs().Lines("battery")); got != 0 {
		t.Errorf("%d battery reports leaked through a hidden channel", got)
	}
}

func TestPrivacyHiddenChannelKeepsSensorOff(t *testing.T) {
	p := NewPrivacy()
	p.SetShared(sensors.ChannelWifiScan, false)
	r, d := privacyRig(t, p)

	r.col.DeployLocal("collect.js", scripts.MustSource("collect.js"))
	r.col.Deploy("scan.js", scripts.MustSource("scan.js"))
	d.scanner.aps = []sensors.AccessPoint{{BSSID: "h1", SSID: "home", RSSI: -60}}

	r.clk.Advance(30 * time.Minute)
	// The sensor must never have sampled: hiding the channel removes the
	// demand entirely (§3.3 + §3.5), saving its energy too.
	if d.scanner.calls != 0 {
		t.Errorf("hidden wifi-scan sensor sampled %d times", d.scanner.calls)
	}
	if got := d.meter.ComponentPower("wifi-scan"); got != 0 {
		t.Errorf("scan radio drawing %v W while hidden", got)
	}

	// Un-hiding starts the pipeline.
	p.SetShared(sensors.ChannelWifiScan, true)
	r.clk.Advance(5 * time.Minute)
	if d.scanner.calls == 0 {
		t.Error("sensor did not start after re-sharing")
	}
}

func TestPrivacyToggleAtRuntime(t *testing.T) {
	p := NewPrivacy()
	r, _ := privacyRig(t, p)
	r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	r.col.Deploy("battery.js", scripts.MustSource("battery.js"))

	r.clk.Advance(3 * time.Minute)
	n1 := len(r.col.Logs().Lines("battery"))
	if n1 == 0 {
		t.Fatal("no reports while shared")
	}

	// The user flips the switch (§3.3: "these settings can be changed at
	// any time from the application interface").
	p.SetShared(sensors.ChannelBattery, false)
	r.clk.Advance(10 * time.Minute)
	n2 := len(r.col.Logs().Lines("battery"))
	if n2 > n1 {
		t.Errorf("reports flowed while hidden: %d → %d", n1, n2)
	}

	p.SetShared(sensors.ChannelBattery, true)
	r.clk.Advance(3 * time.Minute)
	n3 := len(r.col.Logs().Lines("battery"))
	if n3 <= n2 {
		t.Errorf("reports did not resume after re-sharing: %d → %d", n2, n3)
	}
}

func TestPrivacyDefaultsShareEverything(t *testing.T) {
	var p *Privacy
	if !p.Shared("anything") {
		t.Error("nil policy must share")
	}
	p2 := NewPrivacy()
	if !p2.Shared("battery") {
		t.Error("fresh policy must share")
	}
	p2.SetShared("a", false)
	p2.SetShared("b", false)
	p2.SetShared("a", false) // no change, no duplicate notification
	if got := p2.Hidden(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Hidden = %v", got)
	}
	changes := 0
	p2.OnChange(func(string, bool) { changes++ })
	p2.SetShared("a", false) // still hidden: no event
	p2.SetShared("a", true)
	if changes != 1 {
		t.Errorf("changes = %d", changes)
	}
}

func TestScriptUsageAccounting(t *testing.T) {
	r := newRig(t, "dev1")
	d := r.dev["dev1"]
	r.col.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
	r.col.Deploy("battery.js", scripts.MustSource("battery.js"))
	r.col.Deploy("idle.js", `setDescription('does nothing');`)
	r.clk.Advance(10 * time.Minute)

	usages := d.node.ScriptUsages(DefaultPowerModel())
	if len(usages) != 2 {
		t.Fatalf("usages = %+v", usages)
	}
	// battery.js publishes every minute; idle.js does nothing — the ranking
	// and magnitudes must reflect that.
	if usages[0].Name != "battery.js" {
		t.Errorf("top consumer = %s", usages[0].Name)
	}
	busy, idle := usages[0], usages[1]
	if busy.Publishes < 8 || busy.Steps == 0 || busy.Entries < 8 {
		t.Errorf("battery.js usage = %+v", busy)
	}
	if busy.EstimatedJoules <= idle.EstimatedJoules {
		t.Error("power model ranks idle script above busy one")
	}
	if idle.Publishes != 0 {
		t.Errorf("idle.js published %d", idle.Publishes)
	}
	if idle.Steps == 0 {
		t.Error("idle.js body consumed no steps")
	}

	// Collector-side accounting works too.
	colUsages := r.col.ScriptUsages(DefaultPowerModel())
	if len(colUsages) != 1 || colUsages[0].Name != "battery-collect.js" {
		t.Fatalf("collector usages = %+v", colUsages)
	}
	if colUsages[0].Entries < 8 {
		t.Errorf("collector script entries = %d", colUsages[0].Entries)
	}
}

func TestPowerModelEstimate(t *testing.T) {
	m := DefaultPowerModel()
	if m.Estimate(0, 0) != 0 {
		t.Error("zero usage, nonzero estimate")
	}
	if m.Estimate(2e6, 10) <= m.Estimate(1e6, 10) {
		t.Error("steps not monotone")
	}
	if m.Estimate(1e6, 11) <= m.Estimate(1e6, 10) {
		t.Error("publishes not monotone")
	}
}
