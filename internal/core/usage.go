package core

import (
	"sort"

	"pogo/internal/obs"
)

// ScriptUsage is the per-script resource accounting of the paper's future
// work (§6: "implement power modelling to estimate the resource consumption
// of individual scripts"). Counters come from the script runtime; the
// energy estimate applies a PowerModel to them.
type ScriptUsage struct {
	// Context is the owning collector ("" for the collector's own scripts).
	Context string
	Name    string
	// Entries counts calls into script code; Steps the interpreter steps
	// they consumed (the CPU-time proxy); Publishes the messages the script
	// emitted; Errors the runtime failures, of which DeadlineExceeded were
	// §4.5 step-budget overruns.
	Entries          int
	Errors           int
	DeadlineExceeded int
	Publishes        int
	Steps            int64
	// EstimatedJoules is the PowerModel applied to the counters.
	EstimatedJoules float64
}

// PowerModel converts script activity counters into an energy estimate.
// The defaults are calibrated against this repository's device model: one
// million interpreter steps approximate 0.1 s of phone CPU at 0.15 W, and
// one published message costs its amortized share of a batched, tail-
// synchronized transmission.
type PowerModel struct {
	JoulesPerMegaStep float64
	JoulesPerPublish  float64
}

// DefaultPowerModel returns the calibrated constants.
func DefaultPowerModel() PowerModel {
	return PowerModel{JoulesPerMegaStep: 0.015, JoulesPerPublish: 0.3}
}

// Estimate applies the model.
func (m PowerModel) Estimate(steps int64, publishes int) float64 {
	return float64(steps)/1e6*m.JoulesPerMegaStep + float64(publishes)*m.JoulesPerPublish
}

// ScriptUsages reports every deployed script's resource consumption under
// the given model, ordered by estimated energy (highest first) then name.
// Researchers use this to find the experiment that is draining volunteers'
// batteries.
func (n *Node) ScriptUsages(model PowerModel) []ScriptUsage {
	n.mu.Lock()
	ctxs := make([]*Context, 0, len(n.contexts)+1)
	for _, c := range n.contexts {
		ctxs = append(ctxs, c)
	}
	if n.local != nil {
		ctxs = append(ctxs, n.local)
	}
	n.mu.Unlock()

	var out []ScriptUsage
	for _, c := range ctxs {
		c.mu.Lock()
		names := append([]string(nil), c.order...)
		insts := make(map[string]*deployedScript, len(names))
		for k, v := range c.scripts {
			insts[k] = v
		}
		owner := c.owner
		c.mu.Unlock()
		for _, name := range names {
			d := insts[name]
			if d == nil {
				continue
			}
			st := d.inst.StatsSnapshot()
			out = append(out, ScriptUsage{
				Context:          owner,
				Name:             name,
				Entries:          st.Entries,
				Errors:           st.Errors,
				DeadlineExceeded: st.DeadlineExceeded,
				Publishes:        st.Publishes,
				Steps:            st.Steps,
				EstimatedJoules:  model.Estimate(st.Steps, st.Publishes),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstimatedJoules != out[j].EstimatedJoules {
			return out[i].EstimatedJoules > out[j].EstimatedJoules
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// exportUsage syncs per-script usage counters into the node's registry as
// gauges (gauges, not counters: script updates reset the runtime's counters,
// so values are not monotonic). Runs as a Registry.OnCollect hook before
// every snapshot, and once more at Close.
//
// It also charges the *increase* since the previous export to the per-entity
// ledger, so (device, script, "") rows accumulate steps, publishes, deadline
// overruns, and modeled CPU energy (state "cpu-model") monotonically even
// across script updates: a counter that shrank means a fresh instance, and
// the anchor resets to zero so the new instance's full activity is charged.
func (n *Node) exportUsage() {
	reg := n.cfg.Obs
	if reg == nil {
		return
	}
	for _, u := range n.ScriptUsages(DefaultPowerModel()) {
		ls := []obs.Label{
			obs.L("node", n.cfg.ID),
			obs.L("context", u.Context),
			obs.L("script", u.Name),
		}
		reg.Gauge("script_entries", ls...).Set(float64(u.Entries))
		reg.Gauge("script_errors", ls...).Set(float64(u.Errors))
		reg.Gauge("script_publishes", ls...).Set(float64(u.Publishes))
		reg.Gauge("script_steps", ls...).Set(float64(u.Steps))
		reg.Gauge("script_estimated_joules", ls...).Set(u.EstimatedJoules)
		n.chargeUsage(reg, u)
	}
}

// lastUsage anchors the previously charged counter values per script, so
// exportUsage books deltas rather than re-booking totals on every collect.
type lastUsage struct {
	steps     int64
	publishes int
	deadlines int
	joules    float64
}

func (n *Node) chargeUsage(reg *obs.Registry, u ScriptUsage) {
	n.mu.Lock()
	if n.usageAnchors == nil {
		n.usageAnchors = make(map[string]lastUsage)
	}
	key := u.Context + "\x00" + u.Name
	prev := n.usageAnchors[key]
	if u.Steps < prev.steps || u.Publishes < prev.publishes ||
		u.DeadlineExceeded < prev.deadlines || u.EstimatedJoules < prev.joules {
		prev = lastUsage{} // script was updated; counters restarted
	}
	n.usageAnchors[key] = lastUsage{
		steps:     u.Steps,
		publishes: u.Publishes,
		deadlines: u.DeadlineExceeded,
		joules:    u.EstimatedJoules,
	}
	entity := n.cfg.ObsEntity
	n.mu.Unlock()

	m := reg.Meter(entity, u.Name, "")
	m.AddSteps(u.Steps - prev.steps)
	m.AddMessages(int64(u.Publishes - prev.publishes))
	m.AddDeadlineExceeded(int64(u.DeadlineExceeded - prev.deadlines))
	if dj := u.EstimatedJoules - prev.joules; dj > 0 {
		m.AddEnergy("cpu-model", dj)
	}
}
