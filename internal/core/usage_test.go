package core

import (
	"math"
	"testing"
)

func TestPowerModelEstimateArithmetic(t *testing.T) {
	m := PowerModel{JoulesPerMegaStep: 0.5, JoulesPerPublish: 2}
	cases := []struct {
		steps     int64
		publishes int
		want      float64
	}{
		{0, 0, 0},
		{1e6, 0, 0.5},
		{0, 3, 6},
		{2e6, 1, 3},
		{500_000, 4, 8.25},
	}
	for _, c := range cases {
		if got := m.Estimate(c.steps, c.publishes); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Estimate(%d, %d) = %v, want %v", c.steps, c.publishes, got, c.want)
		}
	}

	def := DefaultPowerModel()
	if def.JoulesPerMegaStep <= 0 || def.JoulesPerPublish <= 0 {
		t.Errorf("default model has non-positive constants: %+v", def)
	}
	// A publish costs far more than an interpreter step: it is amortized
	// radio energy, not CPU.
	if def.JoulesPerPublish <= def.JoulesPerMegaStep {
		t.Errorf("publish (%v J) should dominate a megastep (%v J)",
			def.JoulesPerPublish, def.JoulesPerMegaStep)
	}
}

func TestScriptUsagesAggregationAndOrder(t *testing.T) {
	r := newRig(t)

	// chatty publishes three messages; quiet runs a few statements and
	// publishes nothing, so chatty must rank first under any positive model.
	if err := r.col.DeployLocal("chatty.js", `
		publish('x', { n: 1 });
		publish('x', { n: 2 });
		publish('x', { n: 3 });
	`); err != nil {
		t.Fatal(err)
	}
	if err := r.col.DeployLocal("quiet.js", `var a = 1; var b = a + 1;`); err != nil {
		t.Fatal(err)
	}

	usages := r.col.ScriptUsages(DefaultPowerModel())
	if len(usages) != 2 {
		t.Fatalf("usages = %d entries, want 2: %+v", len(usages), usages)
	}
	if usages[0].Name != "chatty.js" || usages[1].Name != "quiet.js" {
		t.Fatalf("order = [%s %s], want chatty.js first", usages[0].Name, usages[1].Name)
	}
	if usages[0].EstimatedJoules < usages[1].EstimatedJoules {
		t.Error("usages not sorted by estimated energy, highest first")
	}

	chatty := usages[0]
	if chatty.Context != "" {
		t.Errorf("collector-local context = %q, want empty", chatty.Context)
	}
	if chatty.Publishes != 3 {
		t.Errorf("chatty publishes = %d, want 3", chatty.Publishes)
	}
	if chatty.Entries < 1 || chatty.Steps <= 0 {
		t.Errorf("chatty entries/steps = %d/%d, want positive", chatty.Entries, chatty.Steps)
	}
	wantJ := DefaultPowerModel().Estimate(chatty.Steps, chatty.Publishes)
	if math.Abs(chatty.EstimatedJoules-wantJ) > 1e-9 {
		t.Errorf("chatty joules = %v, want %v (model applied to its counters)", chatty.EstimatedJoules, wantJ)
	}

	quiet := usages[1]
	if quiet.Publishes != 0 || quiet.Errors != 0 {
		t.Errorf("quiet publishes/errors = %d/%d, want 0/0", quiet.Publishes, quiet.Errors)
	}

	// Equal energy (two idle scripts) falls back to name order.
	if err := r.col.DeployLocal("zz-idle.js", `var z = 0;`); err != nil {
		t.Fatal(err)
	}
	if err := r.col.DeployLocal("aa-idle.js", `var z = 0;`); err != nil {
		t.Fatal(err)
	}
	usages = r.col.ScriptUsages(PowerModel{}) // zero model: every script ties at 0 J
	names := make([]string, len(usages))
	for i, u := range usages {
		names[i] = u.Name
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("zero-model tie not sorted by name: %v", names)
		}
	}
}
