// Package energy models device power consumption and substitutes for the
// paper's shunt-resistor measurement rig (a 0.33 Ω shunt sampled by an NI
// USB-6009 ADC, §5.2).
//
// Components (the CPU, the 3G modem, the Wi-Fi radio, ...) report their
// instantaneous power draw to a Meter; power is piecewise constant between
// reports, so the meter integrates energy exactly and can emit the step
// trace that reproduces Figure 3.
package energy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pogo/internal/vclock"
)

// Sample is one point of a power trace: total draw from At onward until the
// next sample.
type Sample struct {
	At    time.Time
	Watts float64
}

// Meter integrates the total power reported by a set of named components.
// The zero value is not usable; construct with NewMeter.
type Meter struct {
	clk vclock.Clock

	mu      sync.Mutex
	levels  map[string]float64
	total   float64 // joules accumulated up to lastAt
	perComp map[string]float64
	lastAt  time.Time
	trace   []Sample
	tracing bool
}

// NewMeter returns a meter reading zero power on the given clock.
func NewMeter(clk vclock.Clock) *Meter {
	return &Meter{
		clk:     clk,
		levels:  make(map[string]float64),
		perComp: make(map[string]float64),
		lastAt:  clk.Now(),
	}
}

// Set reports that a component now draws watts. Negative values clamp to 0.
func (m *Meter) Set(component string, watts float64) {
	if watts < 0 {
		watts = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	if watts == 0 {
		delete(m.levels, component)
	} else {
		m.levels[component] = watts
	}
	if m.tracing {
		m.appendTraceSample()
	}
}

// Add increases a component's draw by watts (may be negative to decrease).
func (m *Meter) Add(component string, watts float64) {
	m.mu.Lock()
	cur := m.levels[component]
	m.mu.Unlock()
	m.Set(component, cur+watts)
}

// Power returns the current total draw in watts.
func (m *Meter) Power() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sumLocked()
}

// ComponentPower returns one component's current draw in watts.
func (m *Meter) ComponentPower(component string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.levels[component]
}

// Energy returns total joules consumed since construction (or the last
// Reset), up to the clock's current instant.
func (m *Meter) Energy() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	return m.total
}

// Reset zeroes the energy accumulator and clears any recorded trace. Current
// component levels are preserved.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	m.total = 0
	m.perComp = make(map[string]float64)
	m.trace = nil
	if m.tracing {
		m.appendTraceSample()
	}
}

// StartTrace begins recording the power step function. The first sample is
// the current level at the current instant.
func (m *Meter) StartTrace() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	m.tracing = true
	m.trace = nil
	m.appendTraceSample()
}

// StopTrace stops recording and returns the samples collected so far.
func (m *Meter) StopTrace() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	m.tracing = false
	out := make([]Sample, len(m.trace))
	copy(out, m.trace)
	m.trace = nil
	return out
}

// Trace returns a copy of the samples recorded so far without stopping.
func (m *Meter) Trace() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.trace))
	copy(out, m.trace)
	return out
}

// accumulate folds the energy since lastAt into total. Caller holds mu.
func (m *Meter) accumulate() {
	now := m.clk.Now()
	if now.After(m.lastAt) {
		dt := now.Sub(m.lastAt).Seconds()
		m.total += m.sumLocked() * dt
		for comp, w := range m.levels {
			m.perComp[comp] += w * dt
		}
		m.lastAt = now
	}
}

// ComponentEnergy returns one component's joules since construction or the
// last Reset.
func (m *Meter) ComponentEnergy(component string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	return m.perComp[component]
}

// EnergyBreakdown returns per-component joules, sorted by name.
func (m *Meter) EnergyBreakdown() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accumulate()
	out := make(map[string]float64, len(m.perComp))
	for k, v := range m.perComp {
		out[k] = v
	}
	return out
}

// sumLocked totals the current draw. Components are added in sorted order:
// float addition is order-sensitive, and map iteration order varies between
// runs, which would make accumulated joules differ in their last bits across
// two same-seed runs and break byte-identical accounting exports.
func (m *Meter) sumLocked() float64 {
	if len(m.levels) == 1 {
		for _, w := range m.levels {
			return w
		}
	}
	names := make([]string, 0, len(m.levels))
	for n := range m.levels {
		names = append(names, n)
	}
	sort.Strings(names)
	sum := 0.0
	for _, n := range names {
		sum += m.levels[n]
	}
	return sum
}

func (m *Meter) appendTraceSample() {
	now := m.clk.Now()
	w := m.sumLocked()
	if n := len(m.trace); n > 0 && m.trace[n-1].At.Equal(now) {
		m.trace[n-1].Watts = w
		return
	}
	m.trace = append(m.trace, Sample{At: now, Watts: w})
}

// TraceEnergy integrates a step-function trace between t0 and t1 (joules).
// Samples outside [t0, t1] clip; the level before the first sample is zero.
func TraceEnergy(trace []Sample, t0, t1 time.Time) float64 {
	if t1.Before(t0) || len(trace) == 0 {
		return 0
	}
	total := 0.0
	for i, s := range trace {
		segStart := s.At
		var segEnd time.Time
		if i+1 < len(trace) {
			segEnd = trace[i+1].At
		} else {
			segEnd = t1
		}
		if segStart.Before(t0) {
			segStart = t0
		}
		if segEnd.After(t1) {
			segEnd = t1
		}
		if segEnd.After(segStart) {
			total += s.Watts * segEnd.Sub(segStart).Seconds()
		}
	}
	return total
}

// RenderTrace renders a trace as an ASCII time/power table plus a bar chart,
// used by pogo-bench to print Figure 3.
func RenderTrace(trace []Sample, start time.Time, width int) string {
	if width <= 0 {
		width = 60
	}
	maxW := 0.0
	for _, s := range trace {
		if s.Watts > maxW {
			maxW = s.Watts
		}
	}
	var sb strings.Builder
	for _, s := range trace {
		bar := 0
		if maxW > 0 {
			bar = int(s.Watts / maxW * float64(width))
		}
		fmt.Fprintf(&sb, "%8.2fs %7.0f mW |%s\n",
			s.At.Sub(start).Seconds(), s.Watts*1000, strings.Repeat("#", bar))
	}
	return sb.String()
}

// Resample converts a step trace into fixed-interval samples over [t0, t1),
// averaging power within each bucket — the shape the paper's ADC produced.
func Resample(trace []Sample, t0, t1 time.Time, interval time.Duration) []Sample {
	if interval <= 0 || !t1.After(t0) {
		return nil
	}
	n := int(t1.Sub(t0) / interval)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		bs := t0.Add(time.Duration(i) * interval)
		be := bs.Add(interval)
		joules := TraceEnergy(trace, bs, be)
		out = append(out, Sample{At: bs, Watts: joules / interval.Seconds()})
	}
	return out
}

// Breakdown summarizes per-component energy between explicit marks; the
// experiments use it to attribute joules to cpu vs modem.
type Breakdown struct {
	mu     sync.Mutex
	meters map[string]*Meter
}

// NewBreakdown returns an empty per-component energy breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{meters: make(map[string]*Meter)}
}

// Meter returns (creating if needed) a sub-meter for a component class.
func (b *Breakdown) Meter(name string, clk vclock.Clock) *Meter {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.meters[name]
	if !ok {
		m = NewMeter(clk)
		b.meters[name] = m
	}
	return m
}

// Report returns "name=J" pairs sorted by name.
func (b *Breakdown) Report() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.meters))
	for n := range b.meters {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%.2fJ", n, b.meters[n].Energy()))
	}
	return strings.Join(parts, " ")
}
