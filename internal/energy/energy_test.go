package energy

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"pogo/internal/vclock"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeterIntegratesConstantPower(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.Set("cpu", 0.2)
	clk.Advance(10 * time.Second)
	if e := m.Energy(); !almost(e, 2.0) {
		t.Errorf("Energy = %v, want 2.0 J", e)
	}
}

func TestMeterStepChanges(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.Set("modem", 0.8)
	clk.Advance(5 * time.Second) // 4 J
	m.Set("modem", 0.25)
	clk.Advance(10 * time.Second) // 2.5 J
	m.Set("modem", 0)
	clk.Advance(100 * time.Second) // 0 J
	if e := m.Energy(); !almost(e, 6.5) {
		t.Errorf("Energy = %v, want 6.5 J", e)
	}
}

func TestMeterMultipleComponents(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.Set("base", 0.01)
	m.Set("cpu", 0.2)
	if p := m.Power(); !almost(p, 0.21) {
		t.Errorf("Power = %v", p)
	}
	clk.Advance(time.Second)
	m.Set("cpu", 0)
	clk.Advance(time.Second)
	if e := m.Energy(); !almost(e, 0.22) {
		t.Errorf("Energy = %v, want 0.22", e)
	}
	if cp := m.ComponentPower("base"); !almost(cp, 0.01) {
		t.Errorf("ComponentPower(base) = %v", cp)
	}
}

func TestMeterAdd(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.Add("x", 0.1)
	m.Add("x", 0.2)
	if p := m.Power(); !almost(p, 0.3) {
		t.Errorf("Power = %v, want 0.3", p)
	}
	m.Add("x", -0.5) // clamps to 0
	if p := m.Power(); p != 0 {
		t.Errorf("Power = %v, want 0", p)
	}
}

func TestMeterNegativeClamps(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.Set("x", -5)
	if p := m.Power(); p != 0 {
		t.Errorf("Power = %v, want 0", p)
	}
}

func TestMeterReset(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.Set("x", 1)
	clk.Advance(time.Second)
	m.Reset()
	if e := m.Energy(); e != 0 {
		t.Errorf("Energy after reset = %v", e)
	}
	clk.Advance(time.Second)
	if e := m.Energy(); !almost(e, 1) {
		t.Errorf("Energy = %v, want 1 (levels preserved across reset)", e)
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	clk := vclock.NewSim()
	m := NewMeter(clk)
	m.StartTrace()
	m.Set("x", 0.5)
	clk.Advance(2 * time.Second)
	m.Set("x", 0)
	trace := m.StopTrace()
	// Initial zero sample and the 0.5 sample coincide at t=0 (merged), then
	// the zero sample at t=2.
	if len(trace) != 2 {
		t.Fatalf("trace = %+v, want 2 samples", trace)
	}
	if !almost(trace[0].Watts, 0.5) || !almost(trace[1].Watts, 0) {
		t.Errorf("trace = %+v", trace)
	}
	if got := TraceEnergy(trace, clk.Now().Add(-2*time.Second), clk.Now()); !almost(got, 1.0) {
		t.Errorf("TraceEnergy = %v, want 1.0", got)
	}
}

func TestTraceEnergyClipping(t *testing.T) {
	start := vclock.SimEpoch
	trace := []Sample{
		{At: start, Watts: 1.0},
		{At: start.Add(10 * time.Second), Watts: 0},
	}
	got := TraceEnergy(trace, start.Add(5*time.Second), start.Add(20*time.Second))
	if !almost(got, 5.0) {
		t.Errorf("TraceEnergy = %v, want 5.0", got)
	}
	if e := TraceEnergy(trace, start.Add(20*time.Second), start.Add(5*time.Second)); e != 0 {
		t.Errorf("reversed interval = %v, want 0", e)
	}
	if e := TraceEnergy(nil, start, start.Add(time.Second)); e != 0 {
		t.Errorf("empty trace = %v, want 0", e)
	}
}

func TestResample(t *testing.T) {
	start := vclock.SimEpoch
	trace := []Sample{
		{At: start, Watts: 1.0},
		{At: start.Add(time.Second), Watts: 0},
	}
	got := Resample(trace, start, start.Add(2*time.Second), 500*time.Millisecond)
	if len(got) != 4 {
		t.Fatalf("Resample returned %d buckets", len(got))
	}
	want := []float64{1, 1, 0, 0}
	for i, s := range got {
		if !almost(s.Watts, want[i]) {
			t.Errorf("bucket %d = %v, want %v", i, s.Watts, want[i])
		}
	}
	if r := Resample(trace, start, start, time.Second); r != nil {
		t.Error("degenerate interval should return nil")
	}
}

func TestRenderTrace(t *testing.T) {
	start := vclock.SimEpoch
	trace := []Sample{{At: start, Watts: 0.8}, {At: start.Add(time.Second), Watts: 0.2}}
	out := RenderTrace(trace, start, 40)
	if !strings.Contains(out, "800 mW") || !strings.Contains(out, "200 mW") {
		t.Errorf("RenderTrace output missing levels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("RenderTrace lines = %d", len(lines))
	}
}

func TestBreakdown(t *testing.T) {
	clk := vclock.NewSim()
	b := NewBreakdown()
	b.Meter("cpu", clk).Set("cpu", 0.2)
	b.Meter("modem", clk).Set("m", 0.8)
	clk.Advance(10 * time.Second)
	rep := b.Report()
	if !strings.Contains(rep, "cpu=2.00J") || !strings.Contains(rep, "modem=8.00J") {
		t.Errorf("Report = %q", rep)
	}
	if b.Meter("cpu", clk) != b.Meter("cpu", clk) {
		t.Error("Meter not memoized")
	}
}

// Property: energy accumulated over a random schedule of Set calls equals
// the sum over the step function computed independently.
func TestPropertyMeterMatchesManualIntegration(t *testing.T) {
	type step struct {
		DtMillis int64
		MilliW   int64
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(20)
			steps := make([]step, n)
			for i := range steps {
				steps[i] = step{DtMillis: int64(r.Intn(10000)), MilliW: int64(r.Intn(2000))}
			}
			args[0] = reflect.ValueOf(steps)
		},
	}
	prop := func(steps []step) bool {
		clk := vclock.NewSim()
		m := NewMeter(clk)
		manual := 0.0
		cur := 0.0
		for _, s := range steps {
			dt := time.Duration(s.DtMillis) * time.Millisecond
			manual += cur * dt.Seconds()
			clk.Advance(dt)
			cur = float64(s.MilliW) / 1000
			m.Set("x", cur)
		}
		return math.Abs(m.Energy()-manual) < 1e-6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: TraceEnergy over adjacent intervals is additive.
func TestPropertyTraceEnergyAdditive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(10)
			watts := make([]float64, n)
			for i := range watts {
				watts[i] = float64(r.Intn(1000)) / 1000
			}
			args[0] = reflect.ValueOf(watts)
			args[1] = reflect.ValueOf(int64(1 + r.Intn(5000)))
		},
	}
	prop := func(watts []float64, midMillis int64) bool {
		start := vclock.SimEpoch
		trace := make([]Sample, len(watts))
		for i, w := range watts {
			trace[i] = Sample{At: start.Add(time.Duration(i) * time.Second), Watts: w}
		}
		end := start.Add(10 * time.Second)
		mid := start.Add(time.Duration(midMillis) * time.Millisecond)
		if mid.After(end) {
			mid = end
		}
		whole := TraceEnergy(trace, start, end)
		parts := TraceEnergy(trace, start, mid) + TraceEnergy(trace, mid, end)
		return math.Abs(whole-parts) < 1e-6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
