package energy

import (
	"sort"

	"pogo/internal/obs"
)

// Instrument mirrors the meter into the registry and charges per-component
// joule deltas to the ledger entity (device, "", ""). Before this existed the
// meter double-booked joules in its own struct and never surfaced them on
// /metrics.
//
// Gauges track the meter's absolute reading (so a Reset shows up as a drop);
// the ledger is charged only with positive deltas observed between collects,
// so it accumulates exactly the energy spent while instrumented. skip names
// components whose joules are attributed elsewhere at finer grain (the
// experiments pass "modem" when radio.Modem.Instrument charges per-RRC-state
// energy for the same device).
//
// The returned cancel removes the collect hook; call reg.Collect() first if
// the final partial interval matters.
func (m *Meter) Instrument(reg *obs.Registry, device string, skip ...string) (cancel func()) {
	if reg == nil || m == nil {
		return func() {}
	}
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	em := reg.Meter(device, "", "")
	last := make(map[string]float64)
	return reg.OnCollect(func() {
		bd := m.EnergyBreakdown()
		reg.Gauge("energy_joules", obs.L("node", device)).Set(m.Energy())
		comps := make([]string, 0, len(bd))
		for c := range bd {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		for _, c := range comps {
			reg.Gauge("energy_component_joules", obs.L("node", device), obs.L("component", c)).Set(bd[c])
			if skipSet[c] {
				continue
			}
			if d := bd[c] - last[c]; d > 0 {
				em.AddEnergy(c, d)
			}
			last[c] = bd[c]
		}
	})
}
