// Package env is the synthetic world that substitutes for the paper's 24-day
// real-user deployment (§5.3): places with Wi-Fi access points, per-user
// mobility schedules, and noisy scan generation.
//
// The real experiment gave 8 users phones for 24 days and collected 246,908
// access point scans. We cannot recruit users, so we generate their lives:
// each user has a home, shares an office and a café with the others, commutes
// on weekdays, runs errands on weekends, and occasionally travels. Scans of
// the current place perturb each AP's RSSI with Gaussian noise and drop APs
// probabilistically, so the clustering problem is non-trivial in the same
// way real 802.11 beacons are.
package env

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pogo/internal/geo"
	"pogo/internal/sensors"
	"pogo/internal/vclock"
)

// AP is one access point placed in the world.
type AP struct {
	BSSID string
	SSID  string
	// BaseRSSI is the mean signal strength seen when dwelling at the AP's
	// place, in dBm.
	BaseRSSI float64
}

// Place is a location where users dwell.
type Place struct {
	Name     string
	Lat, Lon float64
	APs      []AP
}

// Leg is one segment of a user's schedule: dwelling at a place, or in
// transit when Place is nil.
type Leg struct {
	Place *Place
	Start time.Time
	End   time.Time
}

// Schedule is a user's full itinerary, as contiguous legs.
type Schedule struct {
	Legs []Leg
}

// At returns the place occupied at t (nil while in transit or outside the
// schedule).
func (s *Schedule) At(t time.Time) *Place {
	for i := range s.Legs {
		if !t.Before(s.Legs[i].Start) && t.Before(s.Legs[i].End) {
			return s.Legs[i].Place
		}
	}
	return nil
}

// Dwells returns the legs at real places lasting at least minDur — the
// ground-truth sessions of §5.3.
func (s *Schedule) Dwells(minDur time.Duration) []Leg {
	var out []Leg
	for _, l := range s.Legs {
		if l.Place != nil && l.End.Sub(l.Start) >= minDur {
			out = append(out, l)
		}
	}
	return out
}

// World holds the shared geography of one experiment.
type World struct {
	SharedPlaces []*Place // office, café, gym, supermarket
	homes        map[string]*Place
	rng          *rand.Rand
	apSeq        int
}

// NewWorld builds the shared geography from a seed.
func NewWorld(seed int64) *World {
	w := &World{rng: rand.New(rand.NewSource(seed)), homes: make(map[string]*Place)}
	w.SharedPlaces = []*Place{
		w.newPlace("office", 52.0022, 4.3736, 8),
		w.newPlace("cafe", 52.0110, 4.3571, 4),
		w.newPlace("gym", 52.0065, 4.3622, 3),
		w.newPlace("supermarket", 52.0093, 4.3660, 3),
		w.newPlace("station", 52.0066, 4.3565, 5),
	}
	return w
}

// newPlace creates a place with n access points near the coordinate.
func (w *World) newPlace(name string, lat, lon float64, n int) *Place {
	p := &Place{Name: name, Lat: lat, Lon: lon}
	for i := 0; i < n; i++ {
		w.apSeq++
		p.APs = append(p.APs, AP{
			BSSID:    fmt.Sprintf("%02x:%02x:%02x:%02x", (w.apSeq>>24)&0xff, (w.apSeq>>16)&0xff, (w.apSeq>>8)&0xff, w.apSeq&0xff),
			SSID:     fmt.Sprintf("%s-net-%d", name, i),
			BaseRSSI: -50 - w.rng.Float64()*30, // -50 .. -80 dBm
		})
	}
	return p
}

// Home returns (creating on first use) a user's home place.
func (w *World) Home(user string) *Place {
	if p, ok := w.homes[user]; ok {
		return p
	}
	lat := 52.00 + w.rng.Float64()*0.04
	lon := 4.34 + w.rng.Float64()*0.05
	p := w.newPlace("home-"+user, lat, lon, 3+w.rng.Intn(4))
	w.homes[user] = p
	return p
}

// AllPlaces returns the shared places plus every home created so far.
func (w *World) AllPlaces() []*Place {
	out := append([]*Place(nil), w.SharedPlaces...)
	for _, p := range w.homes {
		out = append(out, p)
	}
	return out
}

// SurveyInto registers every AP of every place in a geolocation database,
// simulating the wardriving survey behind the Google geolocation API.
func (w *World) SurveyInto(db *geo.DB) {
	for _, p := range w.AllPlaces() {
		for _, ap := range p.APs {
			db.Add(ap.BSSID, geo.Coord{Lat: p.Lat, Lon: p.Lon})
		}
	}
}

// ScheduleConfig tunes schedule generation.
type ScheduleConfig struct {
	Start time.Time
	Days  int
	Seed  int64
}

// GenerateSchedule produces a user's itinerary: weekday commutes to the
// office with lunch breaks, evening errands, weekends at home with
// excursions. Gaps between dwells are transit legs.
func (w *World) GenerateSchedule(user string, cfg ScheduleConfig) *Schedule {
	rng := rand.New(rand.NewSource(cfg.Seed))
	home := w.Home(user)
	office := w.SharedPlaces[0]
	cafe := w.SharedPlaces[1]
	gym := w.SharedPlaces[2]
	supermarket := w.SharedPlaces[3]

	var legs []Leg
	cursor := cfg.Start
	day := cfg.Start
	addDwell := func(p *Place, until time.Time) {
		if until.After(cursor) {
			legs = append(legs, Leg{Place: p, Start: cursor, End: until})
			cursor = until
		}
	}
	transitTo := func(at time.Time) {
		if at.After(cursor) {
			legs = append(legs, Leg{Place: nil, Start: cursor, End: at})
			cursor = at
		}
	}
	jitter := func(d time.Duration) time.Duration {
		return d + time.Duration(rng.NormFloat64()*float64(15*time.Minute))
	}

	for d := 0; d < cfg.Days; d++ {
		dayStart := day.Add(time.Duration(d) * 24 * time.Hour)
		weekday := dayStart.Weekday()
		weekend := weekday == time.Saturday || weekday == time.Sunday

		if weekend {
			// Morning at home, an errand, afternoon at home, maybe gym.
			addDwell(home, dayStart.Add(jitter(11*time.Hour)))
			transitTo(cursor.Add(20 * time.Minute))
			addDwell(supermarket, cursor.Add(jitter(45*time.Minute)))
			transitTo(cursor.Add(20 * time.Minute))
			if rng.Float64() < 0.4 {
				addDwell(gym, cursor.Add(jitter(90*time.Minute)))
				transitTo(cursor.Add(20 * time.Minute))
			}
			addDwell(home, dayStart.Add(24*time.Hour))
			continue
		}

		// Weekday: home overnight → commute → office → lunch → office →
		// (gym?) → home.
		addDwell(home, dayStart.Add(jitter(8*time.Hour+30*time.Minute)))
		transitTo(cursor.Add(35 * time.Minute))
		addDwell(office, dayStart.Add(jitter(12*time.Hour+30*time.Minute)))
		if rng.Float64() < 0.7 {
			transitTo(cursor.Add(10 * time.Minute))
			addDwell(cafe, cursor.Add(jitter(45*time.Minute)))
			transitTo(cursor.Add(10 * time.Minute))
		}
		addDwell(office, dayStart.Add(jitter(17*time.Hour+30*time.Minute)))
		transitTo(cursor.Add(35 * time.Minute))
		if rng.Float64() < 0.3 {
			addDwell(gym, cursor.Add(jitter(80*time.Minute)))
			transitTo(cursor.Add(25 * time.Minute))
		}
		addDwell(home, dayStart.Add(24*time.Hour))
	}
	return &Schedule{Legs: legs}
}

// DeviceView is a user's phone's window onto the world, implementing the
// sensor source interfaces.
type DeviceView struct {
	clk      vclock.Clock
	schedule *Schedule
	rng      *rand.Rand

	// RSSINoise is the per-scan Gaussian perturbation in dB. Default 4.
	RSSINoise float64
	// DropProb is the probability any AP is missing from a scan. Default
	// 0.1.
	DropProb float64
	// TetherProb is the probability a scan includes a transient locally
	// administered AP (someone's phone hotspot). Default 0.05.
	TetherProb float64

	// OnScan (may be nil) observes every generated scan; the experiment
	// harness uses it as the raw SD-card ground-truth trace of §5.3.
	OnScan func(t time.Time, aps []sensors.AccessPoint)
}

var (
	_ sensors.WifiScanner    = (*DeviceView)(nil)
	_ sensors.LocationSource = (*DeviceView)(nil)
)

// NewDeviceView binds a schedule to a clock.
func NewDeviceView(clk vclock.Clock, schedule *Schedule, seed int64) *DeviceView {
	return &DeviceView{
		clk:        clk,
		schedule:   schedule,
		rng:        rand.New(rand.NewSource(seed)),
		RSSINoise:  4,
		DropProb:   0.1,
		TetherProb: 0.05,
	}
}

// ScanWifi implements sensors.WifiScanner: the AP environment at the
// user's current location, with realistic noise.
func (v *DeviceView) ScanWifi() []sensors.AccessPoint {
	now := v.clk.Now()
	place := v.schedule.At(now)
	var out []sensors.AccessPoint
	if place != nil {
		for _, ap := range place.APs {
			if v.rng.Float64() < v.DropProb {
				continue
			}
			rssi := ap.BaseRSSI + v.rng.NormFloat64()*v.RSSINoise
			if rssi < -99 {
				rssi = -99
			}
			if rssi > -30 {
				rssi = -30
			}
			out = append(out, sensors.AccessPoint{
				BSSID: ap.BSSID, SSID: ap.SSID, RSSI: rssi,
			})
		}
	} else {
		// Transit: a couple of one-off street APs, weak and unstable.
		n := v.rng.Intn(3)
		for i := 0; i < n; i++ {
			out = append(out, sensors.AccessPoint{
				BSSID: fmt.Sprintf("st:%08x", v.rng.Uint32()),
				SSID:  "street",
				RSSI:  -85 + v.rng.NormFloat64()*5,
			})
		}
	}
	if v.rng.Float64() < v.TetherProb {
		out = append(out, sensors.AccessPoint{
			BSSID:               fmt.Sprintf("te:%08x", v.rng.Uint32()),
			SSID:                "AndroidAP",
			RSSI:                -60 + v.rng.NormFloat64()*8,
			LocallyAdministered: true,
		})
	}
	if v.OnScan != nil {
		v.OnScan(now, out)
	}
	return out
}

// Location implements sensors.LocationSource with provider-dependent
// accuracy.
func (v *DeviceView) Location(provider string) (sensors.Position, bool) {
	now := v.clk.Now()
	place := v.schedule.At(now)
	if place == nil {
		return sensors.Position{}, false // no fix in transit (simplified)
	}
	acc := 500.0
	spread := 0.002
	if provider == "GPS" {
		acc = 8
		spread = 0.00005
	}
	return sensors.Position{
		Lat:      place.Lat + v.rng.NormFloat64()*spread,
		Lon:      place.Lon + v.rng.NormFloat64()*spread,
		Provider: provider,
		Accuracy: acc,
	}, true
}

// NormalizeRSSI maps dBm into [0,1] exactly like scan.js does.
func NormalizeRSSI(rssi float64) float64 {
	v := (rssi + 100) / 45 // (-100, -55) → (0, 1)
	return math.Max(0, math.Min(1, v))
}
