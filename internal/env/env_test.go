package env

import (
	"testing"
	"time"

	"pogo/internal/geo"
	"pogo/internal/sensors"
	"pogo/internal/vclock"
)

func testWorldAndSchedule(t *testing.T, days int) (*World, *Schedule) {
	t.Helper()
	w := NewWorld(1)
	s := w.GenerateSchedule("user1", ScheduleConfig{Start: vclock.SimEpoch, Days: days, Seed: 2})
	return w, s
}

func TestScheduleCoversEveryInstant(t *testing.T) {
	_, s := testWorldAndSchedule(t, 7)
	if len(s.Legs) == 0 {
		t.Fatal("empty schedule")
	}
	// Legs must be contiguous and ordered.
	for i := 1; i < len(s.Legs); i++ {
		if !s.Legs[i].Start.Equal(s.Legs[i-1].End) {
			t.Fatalf("gap between legs %d and %d: %v vs %v", i-1, i, s.Legs[i-1].End, s.Legs[i].Start)
		}
	}
	if !s.Legs[0].Start.Equal(vclock.SimEpoch) {
		t.Errorf("starts at %v", s.Legs[0].Start)
	}
	end := s.Legs[len(s.Legs)-1].End
	if end.Before(vclock.SimEpoch.Add(7 * 24 * time.Hour)) {
		t.Errorf("ends at %v, want ≥ 7 days", end)
	}
}

func TestScheduleShape(t *testing.T) {
	w, s := testWorldAndSchedule(t, 14)
	home := w.Home("user1")
	office := w.SharedPlaces[0]

	timeAt := map[*Place]time.Duration{}
	for _, l := range s.Legs {
		timeAt[l.Place] += l.End.Sub(l.Start)
	}
	if timeAt[home] < 7*24*time.Hour {
		t.Errorf("home time = %v, want majority", timeAt[home])
	}
	if timeAt[office] < 30*time.Hour {
		t.Errorf("office time = %v, want ≥ 30 h in two weeks", timeAt[office])
	}
	if timeAt[nil] == 0 {
		t.Error("no transit time")
	}
	// At 03:00 on day 2 the user is home.
	if p := s.At(vclock.SimEpoch.Add(27 * time.Hour)); p != home {
		t.Errorf("at 03:00 user at %v", p)
	}
	// Outside the schedule there is no place.
	if p := s.At(vclock.SimEpoch.Add(1000 * 24 * time.Hour)); p != nil {
		t.Error("place outside schedule")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	w1 := NewWorld(1)
	w2 := NewWorld(1)
	s1 := w1.GenerateSchedule("u", ScheduleConfig{Start: vclock.SimEpoch, Days: 5, Seed: 9})
	s2 := w2.GenerateSchedule("u", ScheduleConfig{Start: vclock.SimEpoch, Days: 5, Seed: 9})
	if len(s1.Legs) != len(s2.Legs) {
		t.Fatalf("legs = %d vs %d", len(s1.Legs), len(s2.Legs))
	}
	for i := range s1.Legs {
		if !s1.Legs[i].Start.Equal(s2.Legs[i].Start) || !s1.Legs[i].End.Equal(s2.Legs[i].End) {
			t.Fatalf("leg %d differs", i)
		}
	}
}

func TestDwells(t *testing.T) {
	_, s := testWorldAndSchedule(t, 3)
	dwells := s.Dwells(30 * time.Minute)
	if len(dwells) < 6 {
		t.Errorf("dwells = %d over 3 days", len(dwells))
	}
	for _, d := range dwells {
		if d.Place == nil {
			t.Error("transit leg in dwells")
		}
		if d.End.Sub(d.Start) < 30*time.Minute {
			t.Error("short leg in dwells")
		}
	}
}

func TestDeviceViewScans(t *testing.T) {
	w, s := testWorldAndSchedule(t, 2)
	clk := vclock.NewSim()
	v := NewDeviceView(clk, s, 3)
	v.DropProb = 0
	v.TetherProb = 1 // force a tether AP

	var rawCount int
	v.OnScan = func(time.Time, []sensors.AccessPoint) { rawCount++ }

	aps := v.ScanWifi()
	home := w.Home("user1")
	// All home APs present (DropProb 0) + one tether.
	if len(aps) != len(home.APs)+1 {
		t.Fatalf("aps = %d, want %d", len(aps), len(home.APs)+1)
	}
	tethers := 0
	for _, ap := range aps {
		if ap.LocallyAdministered {
			tethers++
		}
		if ap.RSSI > -30 || ap.RSSI < -99 {
			t.Errorf("RSSI out of range: %v", ap.RSSI)
		}
	}
	if tethers != 1 {
		t.Errorf("tethers = %d", tethers)
	}
	if rawCount != 1 {
		t.Errorf("OnScan calls = %d", rawCount)
	}

	// Transit scans see only street noise.
	clk2 := vclock.NewSimAt(findTransit(t, s))
	v2 := NewDeviceView(clk2, s, 4)
	v2.TetherProb = 0
	for _, ap := range v2.ScanWifi() {
		if ap.SSID != "street" {
			t.Errorf("transit scan saw %q", ap.SSID)
		}
	}
}

func findTransit(t *testing.T, s *Schedule) time.Time {
	t.Helper()
	for _, l := range s.Legs {
		if l.Place == nil {
			return l.Start.Add(l.End.Sub(l.Start) / 2)
		}
	}
	t.Fatal("no transit leg")
	return time.Time{}
}

func TestDeviceViewLocation(t *testing.T) {
	w, s := testWorldAndSchedule(t, 1)
	clk := vclock.NewSim()
	v := NewDeviceView(clk, s, 5)
	home := w.Home("user1")

	gps, ok := v.Location("GPS")
	if !ok {
		t.Fatal("no GPS fix at home")
	}
	if gps.Accuracy != 8 || gps.Provider != "GPS" {
		t.Errorf("gps = %+v", gps)
	}
	if diff := gps.Lat - home.Lat; diff > 0.001 || diff < -0.001 {
		t.Errorf("gps lat off by %v", diff)
	}
	net, _ := v.Location("NETWORK")
	if net.Accuracy != 500 {
		t.Errorf("network accuracy = %v", net.Accuracy)
	}

	clkT := vclock.NewSimAt(findTransit(t, s))
	vT := NewDeviceView(clkT, s, 6)
	if _, ok := vT.Location("GPS"); ok {
		t.Error("fix while in transit")
	}
}

func TestSurveyInto(t *testing.T) {
	w, _ := testWorldAndSchedule(t, 1)
	db := geo.NewDB()
	w.SurveyInto(db)
	total := 0
	for _, p := range w.AllPlaces() {
		total += len(p.APs)
	}
	if db.Len() != total {
		t.Errorf("surveyed %d, want %d", db.Len(), total)
	}
	// Locating a home scan lands near home.
	home := w.Home("user1")
	aps := map[string]float64{}
	for _, ap := range home.APs {
		aps[ap.BSSID] = 0.8
	}
	c, ok := db.Locate(aps)
	if !ok || c.Lat-home.Lat > 1e-9 || home.Lat-c.Lat > 1e-9 {
		t.Errorf("home locate = %+v", c)
	}
}

func TestHomeMemoized(t *testing.T) {
	w := NewWorld(1)
	if w.Home("a") != w.Home("a") {
		t.Error("Home not memoized")
	}
	if w.Home("a") == w.Home("b") {
		t.Error("distinct users share a home")
	}
	if n := len(w.AllPlaces()); n != 7 {
		t.Errorf("AllPlaces = %d", n)
	}
}

func TestBSSIDsUnique(t *testing.T) {
	w := NewWorld(1)
	for i := 0; i < 8; i++ {
		w.Home(string(rune('a' + i)))
	}
	seen := map[string]bool{}
	for _, p := range w.AllPlaces() {
		for _, ap := range p.APs {
			if seen[ap.BSSID] {
				t.Fatalf("duplicate BSSID %s", ap.BSSID)
			}
			seen[ap.BSSID] = true
		}
	}
}

func TestNormalizeRSSI(t *testing.T) {
	if NormalizeRSSI(-100) != 0 || NormalizeRSSI(-55) != 1 {
		t.Error("anchors wrong")
	}
	if NormalizeRSSI(-150) != 0 || NormalizeRSSI(-10) != 1 {
		t.Error("clamping wrong")
	}
	mid := NormalizeRSSI(-77.5)
	if mid < 0.49 || mid > 0.51 {
		t.Errorf("mid = %v", mid)
	}
}
