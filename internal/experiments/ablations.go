package experiments

import (
	"fmt"
	"strings"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/pubsub"
	"pogo/internal/radio"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/tail"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// FlushPolicyRow compares one outbox flush policy (the §4.7 design-space
// ablation: tail synchronization vs the alternatives it argues against).
type FlushPolicyRow struct {
	Policy        string
	Joules        float64
	IncreasePct   float64 // over the no-Pogo baseline
	PogoTails     int
	DeliveryDelay time.Duration
	Delivered     int
}

// AblationFlushPolicies measures the energy/latency trade-off of each flush
// policy on the KPN profile.
func AblationFlushPolicies() []FlushPolicyRow {
	base := RunPowerTrial(PowerTrialConfig{Carrier: radio.KPN})
	cases := []struct {
		name   string
		policy core.FlushPolicy
		every  time.Duration
	}{
		{"tail-sync (Pogo)", core.FlushTailSync, 0},
		{"immediate", core.FlushImmediate, 0},
		// 4 min deliberately de-phases from the 5-min e-mail checks, so
		// interval flushing pays for its own tails.
		{"interval 4min", core.FlushInterval, 4 * time.Minute},
		{"interval 1h", core.FlushInterval, time.Hour},
	}
	rows := make([]FlushPolicyRow, 0, len(cases))
	for _, c := range cases {
		r := RunPowerTrial(PowerTrialConfig{
			Carrier: radio.KPN, WithPogo: true, Policy: c.policy, FlushEvery: c.every,
		})
		rows = append(rows, FlushPolicyRow{
			Policy:        c.name,
			Joules:        r.Joules,
			IncreasePct:   100 * (r.Joules - base.Joules) / base.Joules,
			PogoTails:     r.PogoTails,
			DeliveryDelay: r.DeliveryDelayMean,
			Delivered:     r.ReportsDelivered,
		})
	}
	return rows
}

// RenderFlushPolicies prints the ablation.
func RenderFlushPolicies(rows []FlushPolicyRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: outbox flush policy (KPN, 1 h, e-mail every 5 min, battery 1/min)\n")
	fmt.Fprintf(&sb, "%-18s %10s %10s %10s %12s %10s\n",
		"Policy", "Energy", "Increase", "PogoTails", "MeanDelay", "Delivered")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %8.1f J %9.2f%% %10d %12s %10d\n",
			r.Policy, r.Joules, r.IncreasePct, r.PogoTails,
			r.DeliveryDelay.Round(time.Second), r.Delivered)
	}
	return sb.String()
}

// DetectorPollingRow compares tail-detector polling strategies: the paper's
// Thread.sleep trick versus naive 1 s RTC alarms (§4.7's rejected design).
type DetectorPollingRow struct {
	Strategy    string
	Joules      float64
	CPUUptime   time.Duration
	TailsCaught int
}

// AblationDetectorPolling runs both polling strategies for an hour next to
// the 5-minute e-mail checker and compares CPU cost and detection coverage.
func AblationDetectorPolling() []DetectorPollingRow {
	run := func(alarms bool) DetectorPollingRow {
		clk := vclock.NewSim()
		meter := energy.NewMeter(clk)
		droid := android.NewDevice(clk, meter, android.Config{})
		modem := radio.NewModem(clk, meter, radio.KPN)
		email := android.NewPeriodicApp(clk, droid, modem, nil)
		email.Start()

		caught := 0
		if alarms {
			// Naive: an RTC alarm every second reads the counters. Every
			// alarm wakes the CPU for the linger period — the CPU
			// effectively never sleeps.
			last := int64(0)
			var tick func()
			tick = func() {
				if cur := modem.Stats().Total(); cur > last {
					last = cur
					caught++
				}
				droid.SetAlarm(time.Second, tick)
			}
			droid.SetAlarm(time.Second, tick)
		} else {
			det := tail.New(droid, modem.Stats, 0)
			det.OnTraffic(func(int64) { caught++ })
			det.Start()
		}
		clk.Advance(time.Hour)
		name := "uptime-sleep (Pogo)"
		if alarms {
			name = "1 s RTC alarms"
		}
		return DetectorPollingRow{
			Strategy:    name,
			Joules:      meter.Energy(),
			CPUUptime:   droid.Uptime(),
			TailsCaught: caught,
		}
	}
	return []DetectorPollingRow{run(false), run(true)}
}

// RenderDetectorPolling prints the ablation.
func RenderDetectorPolling(rows []DetectorPollingRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: tail-detector polling strategy (KPN, 1 h, e-mail every 5 min)\n")
	fmt.Fprintf(&sb, "%-20s %10s %12s %8s\n", "Strategy", "Energy", "CPU uptime", "Caught")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %8.1f J %12s %8d\n",
			r.Strategy, r.Joules, r.CPUUptime.Round(time.Second), r.TailsCaught)
	}
	return sb.String()
}

// SensorGatingRow compares subscription-driven sensor gating against an
// always-on sensor (§3.5: "the sensor can be turned off to save energy").
type SensorGatingRow struct {
	Mode    string
	Joules  float64
	Samples int
}

// AblationSensorGating runs the Wi-Fi scan sensor for an hour with no
// subscriber demand, gated (Pogo) vs forced always-on.
func AblationSensorGating() []SensorGatingRow {
	run := func(forceOn bool) SensorGatingRow {
		clk := vclock.NewSim()
		sb := transport.NewSwitchboard(clk)
		meter := energy.NewMeter(clk)
		droid := android.NewDevice(clk, meter, android.Config{})
		modem := radio.NewModem(clk, meter, radio.KPN)
		conn := radio.NewConnectivity(modem, nil)
		port := sb.Port("dev", conn)
		node, err := core.NewNode(core.Config{
			ID: "dev", Mode: core.DeviceMode, Clock: clk, Messenger: port,
			Device: droid, Modem: modem, Storage: store.NewMemKV(),
		})
		if err != nil {
			panic(err)
		}
		defer node.Close()
		scanner := staticScanner{}
		sensor := sensors.NewWifiScanSensor(node.Sensors(), scanner, sensors.WifiScanConfig{Meter: meter})
		node.Sensors().Register(sensor)

		samples := 0
		var keepAlive *pubsub.Subscription
		if forceOn {
			// A legacy-style middleware samples regardless of demand: model
			// it by subscribing without any consumer logic.
			broker := pubsub.New()
			node.Sensors().AddBroker(broker)
			keepAlive = broker.Subscribe(sensors.ChannelWifiScan, nil, func(pubsub.Event) { samples++ })
		}
		clk.Advance(time.Hour)
		if keepAlive != nil {
			keepAlive.Release()
		}
		name := "gated (Pogo)"
		if forceOn {
			name = "always-on"
		}
		return SensorGatingRow{Mode: name, Joules: meter.Energy(), Samples: samples}
	}
	return []SensorGatingRow{run(false), run(true)}
}

type staticScanner struct{}

func (staticScanner) ScanWifi() []sensors.AccessPoint {
	return []sensors.AccessPoint{{BSSID: "aa", SSID: "net", RSSI: -60}}
}

// RenderSensorGating prints the ablation.
func RenderSensorGating(rows []SensorGatingRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: subscription-driven sensor gating (Wi-Fi scan sensor, 1 h, no consumer)\n")
	fmt.Fprintf(&sb, "%-14s %10s %9s\n", "Mode", "Energy", "Samples")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8.1f J %9d\n", r.Mode, r.Joules, r.Samples)
	}
	return sb.String()
}

// FreezeThawRow compares data quality with and without persistent script
// state (the §5.3 post-mortem fix).
type FreezeThawRow struct {
	Mode       string
	MatchPct   float64
	PartialPct float64
	Locations  int
}

// AblationFreezeThaw reruns a faulty localization session with and without
// freeze/thaw and compares the Table 4 match columns.
func AblationFreezeThaw(days int) ([]FreezeThawRow, error) {
	if days == 0 {
		days = 6
	}
	session := []SessionConfig{{
		User: "User 1", DeviceID: "dev1",
		Duration: time.Duration(days) * 24 * time.Hour, Seed: 101,
		Faults: []Fault{
			{Kind: FaultReboot, At: time.Duration(days) * 24 * time.Hour / 4},
			{Kind: FaultReboot, At: time.Duration(days) * 24 * time.Hour * 2 / 4},
			{Kind: FaultScriptUpdate, At: time.Duration(days) * 24 * time.Hour * 3 / 4},
		},
	}}
	var out []FreezeThawRow
	for _, freeze := range []bool{false, true} {
		res, err := Table4(Table4Config{Seed: 1, Days: days, FreezeThaw: freeze, Sessions: session})
		if err != nil {
			return nil, err
		}
		mode := "as deployed (no freeze/thaw)"
		if freeze {
			mode = "with freeze/thaw"
		}
		r := res.Rows[0]
		out = append(out, FreezeThawRow{
			Mode: mode, MatchPct: r.MatchPct, PartialPct: r.PartialPct, Locations: r.Locations,
		})
	}
	return out, nil
}

// RenderFreezeThaw prints the ablation.
func RenderFreezeThaw(rows []FreezeThawRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: freeze/thaw state persistence under reboots and script updates\n")
	fmt.Fprintf(&sb, "%-30s %7s %8s %10s\n", "Mode", "Match", "Partial", "Locations")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-30s %6.0f%% %7.0f%% %10d\n", r.Mode, r.MatchPct, r.PartialPct, r.Locations)
	}
	return sb.String()
}
