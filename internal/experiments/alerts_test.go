package experiments

import (
	"strings"
	"testing"

	"pogo/internal/obs"
)

// chaosAlertLog runs the heavy chaos scenario with a fresh registry and
// returns the rendered alert transition log.
func chaosAlertLog(t *testing.T, seed int64) string {
	t.Helper()
	cfg := small(ChaosScenarios(seed)[2].Config) // heavy: churn + partitions + all faults
	cfg.Obs = obs.NewRegistry()
	res := Chaos("heavy", cfg)
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Fatalf("chaos run violated delivery guarantee: %+v", res)
	}
	return cfg.Obs.Alerts().FormatLog()
}

// TestChaosAlertLogDeterministic is the alerting analogue of the delivery-log
// determinism contract: two same-seed chaos runs must produce byte-identical
// alert logs — every transition at the same simulated instant with the same
// value. make check runs this under -race, so it also proves alert
// evaluation is race-clean against the chaos stack.
func TestChaosAlertLogDeterministic(t *testing.T) {
	a := chaosAlertLog(t, 42)
	b := chaosAlertLog(t, 42)
	if a != b {
		t.Fatalf("same seed produced diverging alert logs:\n--- run A ---\n%s--- run B ---\n%s", a, b)
	}
	// The heavy scenario must actually exercise the rule pack: partitioned
	// phones recover tens of seconds late, burning the delivery SLO budget.
	// (The full-size retry storm is pinned by alert_storm.txtar; this shrunk
	// world is too small to sustain 3 retries/s.)
	if !strings.Contains(a, "firing delivery_latency_slo") {
		t.Fatalf("heavy chaos produced no delivery_latency_slo alert:\n%s", a)
	}
	// And every line must carry the fixed deterministic shape.
	for _, line := range strings.Split(strings.TrimSuffix(a, "\n"), "\n") {
		if line == "" {
			t.Fatal("empty alert log line")
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			t.Fatalf("malformed alert log line %q", line)
		}
	}
}

// TestChaosAlertLogSeedsDiverge: different fault schedules must yield
// different transition timings — the log reflects the run, not the rules.
func TestChaosAlertLogSeedsDiverge(t *testing.T) {
	if chaosAlertLog(t, 1) == chaosAlertLog(t, 99) {
		t.Fatal("different seeds produced identical alert logs")
	}
}

// TestFleetAlertLogShardInvariant: alert evaluation in a fleet run happens at
// epoch barriers with every shard worker parked, so the alert log — like the
// delivery log — must be byte-identical at any shard count.
func TestFleetAlertLogShardInvariant(t *testing.T) {
	logs := make([]string, 0, 2)
	for _, shards := range []int{1, 2} {
		cfg := smallFleet(7, 40, shards)
		cfg.Obs = obs.NewRegistry()
		res := Fleet(cfg)
		if res.Lost != 0 || res.Duplicated != 0 {
			t.Fatalf("shards=%d violated delivery guarantee: %+v", shards, res)
		}
		logs = append(logs, cfg.Obs.Alerts().FormatLog())
	}
	if logs[0] != logs[1] {
		t.Fatalf("alert log differs across shard counts:\n--- shards=1 ---\n%s--- shards=2 ---\n%s", logs[0], logs[1])
	}
}

// TestChaosViolationCounterTracksScriptedDuplicate: the online exactly-once
// tracker must flag a duplicate delivery the moment it is recorded, so the
// exactly_once_violation rule can fire mid-run rather than at audit time.
func TestChaosViolationCounterTracksScriptedDuplicate(t *testing.T) {
	cfg := small(ChaosScenarios(3)[0].Config) // light faults: everything delivers
	cfg.Obs = obs.NewRegistry()
	w := NewChaosWorld(cfg)
	for k := 0; k < w.Rounds(); k++ {
		w.RunRound(k)
	}
	if got := cfg.Obs.CounterValue("delivery_violations_total", obs.L("kind", "duplicate")); got != 0 {
		t.Fatalf("clean run charged %d duplicate violations", got)
	}
	// Re-send phone00's first upload: the transport treats it as a fresh
	// message and delivers it, making the application-level stream see n=0
	// twice.
	if err := w.Enqueue(ChaosPhoneName(0), ChaosCollectorName, "upload", 0); err != nil {
		t.Fatal(err)
	}
	w.Drain()
	if got := cfg.Obs.CounterValue("delivery_violations_total", obs.L("kind", "duplicate")); got != 1 {
		t.Fatalf("duplicate violations = %d, want 1", got)
	}
	if st, _ := cfg.Obs.Alerts().State("exactly_once_violation"); st != obs.AlertFiring {
		t.Fatalf("exactly_once_violation state = %v, want firing", st)
	}
	res := w.Result("dup")
	if res.Duplicated != 1 {
		t.Fatalf("audit duplicated = %d, want 1 (online tracker and audit disagree)", res.Duplicated)
	}
}
