package experiments

import "time"

// SmallTable4Config is the two-session shrunk Table 4 workload shared by the
// unit tests and the scenario DSL's `table4` command: User A reboots halfway
// through, User B spends half the run offline so part of their backlog ages
// past the 24 h purge. Keeping the shape in one place means the txtar-scripted
// run and the direct experiments run are the same experiment by construction,
// so the parity test can compare their rendered outputs byte for byte.
func SmallTable4Config(seed int64, days int) Table4Config {
	dur := time.Duration(days) * 24 * time.Hour
	return Table4Config{
		Seed: seed, Days: days,
		Sessions: []SessionConfig{
			{User: "User A", DeviceID: "devA", Duration: dur, Seed: 201,
				Faults: []Fault{{Kind: FaultReboot, At: dur / 2}}},
			{User: "User B", DeviceID: "devB", Duration: dur, Seed: 202,
				Faults: []Fault{{Kind: FaultOffline, At: dur / 4, Until: dur * 7 / 8}}},
		},
	}
}
