package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"pogo/internal/faultnet"
	"pogo/internal/msg"
	"pogo/internal/obs"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// ChaosConfig drives a seeded fault-injection run: a testbed of phones
// uploading to one collector (and receiving commands back) across a faultnet
// that drops, duplicates, corrupts, delays, partitions, and churns. The run
// is fully deterministic in the seed: everything is scheduled on a simulated
// clock and every random draw comes from faultnet's seeded RNG.
type ChaosConfig struct {
	Seed             int64
	Phones           int           // default 50
	MessagesPerPhone int           // phone → collector uploads; default 20
	CommandsPerPhone int           // collector → phone commands; default 3
	Window           time.Duration // traffic injection window; default 10 min
	Step             time.Duration // flush/advance granularity; default 5 s

	// Fault mix, applied to every link for the whole window.
	Drop      float64
	Duplicate float64
	Corrupt   float64
	MaxDelay  time.Duration

	// Churn: phones disconnect/reconnect with these mean up/down times
	// (exponentially distributed, seeded). Zero disables churn.
	MeanUp, MeanDown time.Duration

	// PartitionFrac of the phones are asymmetrically cut off from the
	// collector during the middle third of the window, then healed.
	PartitionFrac float64

	RetryAfter time.Duration // endpoint retransmission base; default 15 s

	// DrainIters caps the post-window drain loop (default 600 flush/advance
	// rounds — ample for every scenario in the matrix). Negative disables
	// the drain entirely: the flight-recorder smoke uses that to leave
	// messages genuinely in flight and force an audit failure.
	DrainIters int
	Obs        *obs.Registry
}

// ChaosResult reports a chaos run. Lost/Duplicated/OutOfOrder are the
// headline numbers: the hardened delivery path must hold them at zero for
// every scenario in the matrix. Log is the full delivery log in arrival
// order (one line per application-level delivery); LogSHA256 fingerprints it
// so two runs can be compared for bit-for-bit reproducibility without
// shipping the log itself in BENCH_chaos.json.
type ChaosResult struct {
	Scenario         string  `json:"scenario"`
	Seed             int64   `json:"seed"`
	Phones           int     `json:"phones"`
	MessagesPerPhone int     `json:"messages_per_phone"`
	CommandsPerPhone int     `json:"commands_per_phone"`
	Expected         int     `json:"expected_deliveries"`
	Delivered        int     `json:"delivered"`
	Lost             int     `json:"lost"`
	Duplicated       int     `json:"duplicated"`
	OutOfOrder       int     `json:"out_of_order"`
	Undrained        int     `json:"undrained"` // outbox entries still pending at the end
	Retries          int     `json:"retries"`
	CorruptDropped   int     `json:"corrupt_dropped"`
	NetSent          int     `json:"net_sent"`
	NetDropped       int     `json:"net_dropped"`
	NetDuplicated    int     `json:"net_duplicated"`
	NetCorrupted     int     `json:"net_corrupted"`
	NetDelayed       int     `json:"net_delayed"`
	PartitionDrops   int     `json:"net_partition_drops"`
	Disconnects      int     `json:"disconnects"`
	SimSeconds       float64 `json:"sim_seconds"`
	DeliveriesPerSec float64 `json:"deliveries_per_sim_second"`
	LogSHA256        string  `json:"log_sha256"`
	Log              []string `json:"-"`
}

// ChaosScenario pairs a name with its fault mix for the scenario matrix.
type ChaosScenario struct {
	Name   string
	Config ChaosConfig
}

// ChaosScenarios is the benchmark matrix at three fault levels. The same
// traffic pattern runs under progressively nastier networks; BENCH_chaos.json
// records how throughput and retry cost degrade while losses stay at zero.
func ChaosScenarios(seed int64) []ChaosScenario {
	return []ChaosScenario{
		{Name: "light", Config: ChaosConfig{
			Seed: seed,
			Drop: 0.05, Duplicate: 0.02, Corrupt: 0.01, MaxDelay: 50 * time.Millisecond,
		}},
		{Name: "medium", Config: ChaosConfig{
			Seed: seed,
			Drop: 0.20, Duplicate: 0.10, Corrupt: 0.05, MaxDelay: 200 * time.Millisecond,
			MeanUp: 3 * time.Minute, MeanDown: 20 * time.Second,
		}},
		{Name: "heavy", Config: ChaosConfig{
			Seed: seed,
			Drop: 0.40, Duplicate: 0.20, Corrupt: 0.10, MaxDelay: 500 * time.Millisecond,
			MeanUp: 90 * time.Second, MeanDown: 45 * time.Second,
			PartitionFrac: 0.2,
		}},
	}
}

const chaosCollector = "collector"

func chaosPhoneName(i int) string { return fmt.Sprintf("phone%02d", i) }

// ChaosPhoneName is the canonical name of the i-th phone in a chaos world.
// The scenario DSL uses it to address entities (`kill phone03`).
func ChaosPhoneName(i int) string { return chaosPhoneName(i) }

// ChaosCollectorName is the chaos world's single collector entity.
const ChaosCollectorName = chaosCollector

// ChaosWorld is a constructed-but-not-yet-run chaos testbed: the phones,
// collector, faultnet, and simulated clock of one scenario, exposed so the
// run can be driven round by round. experiments.Chaos drives it start to
// finish; the scenario DSL (internal/scenario) interleaves its own commands
// — partitions, kills, extra publishes — between rounds. Both produce
// bit-identical results for the same call schedule because every step is a
// method on this world.
type ChaosWorld struct {
	cfg    ChaosConfig
	clk    *vclock.Sim
	start  time.Time
	net    *faultnet.Net
	coll   *transport.Endpoint
	phones []*transport.Endpoint
	faults []*faultnet.Fault
	stops  []func()
	log    []string
	iters  int
	cut    int
	undrained int

	// Online exactly-once bookkeeping: the end-of-run audit catches
	// violations after the fact, but alert rules need them as they happen.
	// Keyed like auditChaosLog streams (receiver|sender|channel).
	seenSeqs map[string]map[int]bool
	lastSeq  map[string]int
}

// NewChaosWorld builds the testbed for one seeded scenario. Zero-valued
// config fields take the documented defaults. Construction order is part of
// the determinism contract: it must not change, or same-seed delivery logs
// (and the pinned BENCH_chaos.json hashes) change with it.
func NewChaosWorld(cfg ChaosConfig) *ChaosWorld {
	if cfg.Phones == 0 {
		cfg.Phones = 50
	}
	if cfg.MessagesPerPhone == 0 {
		cfg.MessagesPerPhone = 20
	}
	if cfg.CommandsPerPhone == 0 {
		cfg.CommandsPerPhone = 3
	}
	if cfg.Window == 0 {
		cfg.Window = 10 * time.Minute
	}
	if cfg.Step == 0 {
		cfg.Step = 5 * time.Second
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 15 * time.Second
	}
	if cfg.DrainIters == 0 {
		cfg.DrainIters = 600
	}

	w := &ChaosWorld{cfg: cfg, seenSeqs: make(map[string]map[int]bool), lastSeq: make(map[string]int)}
	w.clk = vclock.NewSim()
	if cfg.Obs != nil {
		// Health evaluation rides the sampling path: observe() is called at
		// the end of every round/step, so alert state advances at
		// deterministic simulated instants. Deterministic mode mutes
		// RealTime (wall-clock) rules — the alert log must be a pure
		// function of the seed.
		alerts := cfg.Obs.Alerts()
		alerts.SetDeterministic(true)
		alerts.EnsureDefaultRules()
	}
	w.start = w.clk.Now()
	sb := transport.NewSwitchboard(w.clk)
	w.net = faultnet.New(w.clk, faultnet.Config{
		Seed: cfg.Seed,
		Drop: cfg.Drop, Duplicate: cfg.Duplicate, Corrupt: cfg.Corrupt,
		MaxDelay: cfg.MaxDelay,
		Obs:      cfg.Obs,
	})

	record := func(at string) func(from, channel string, payload msg.Value) {
		return func(from, channel string, payload msg.Value) {
			n := -1
			if m, ok := payload.(msg.Map); ok {
				if f, ok := m["n"].(float64); ok {
					n = int(f)
				}
			}
			w.log = append(w.log, fmt.Sprintf("%s <- %s %s %d", at, from, channel, n))
			w.trackDelivery(at, from, channel, n)
		}
	}

	// The collector: a plain (never-churned) port behind the same faultnet,
	// so its acks and commands suffer the fault mix too.
	collFault := w.net.Wrap(sb.Port(chaosCollector, nil))
	w.coll = transport.NewEndpoint(collFault, store.OpenMemory(), w.clk, transport.EndpointConfig{
		RetryAfter: cfg.RetryAfter, BootID: "chaos-" + chaosCollector, Obs: cfg.Obs,
		TraceSeed: cfg.Seed,
	})
	w.coll.OnMessage(record(chaosCollector))

	w.phones = make([]*transport.Endpoint, cfg.Phones)
	w.faults = make([]*faultnet.Fault, cfg.Phones)
	w.stops = make([]func(), 0, cfg.Phones)
	for i := 0; i < cfg.Phones; i++ {
		id := chaosPhoneName(i)
		sb.Associate(id, chaosCollector)
		f := w.net.Wrap(sb.Port(id, nil))
		w.faults[i] = f
		ep := transport.NewEndpoint(f, store.OpenMemory(), w.clk, transport.EndpointConfig{
			RetryAfter: cfg.RetryAfter, BootID: "chaos-" + id, Obs: cfg.Obs,
			TraceSeed: cfg.Seed,
		})
		ep.OnMessage(record(id))
		w.phones[i] = ep
		if cfg.MeanUp > 0 && cfg.MeanDown > 0 {
			w.stops = append(w.stops, w.net.Churn(f, cfg.MeanUp, cfg.MeanDown))
		}
	}

	w.iters = int(cfg.Window / cfg.Step)
	if w.iters < 1 {
		w.iters = 1
	}
	w.cut = int(float64(cfg.Phones) * cfg.PartitionFrac)
	return w
}

// Rounds is the number of injection rounds in the traffic window.
func (w *ChaosWorld) Rounds() int { return w.iters }

// Clock exposes the world's simulated clock.
func (w *ChaosWorld) Clock() *vclock.Sim { return w.clk }

// Net exposes the world's fault domain (for scripted partitions and
// mid-run fault-mix changes).
func (w *ChaosWorld) Net() *faultnet.Net { return w.net }

// Config returns the world's (defaults-resolved) configuration.
func (w *ChaosWorld) Config() ChaosConfig { return w.cfg }

// EntityNames lists every entity in the world: the collector first, then the
// phones in index order.
func (w *ChaosWorld) EntityNames() []string {
	out := make([]string, 0, len(w.phones)+1)
	out = append(out, chaosCollector)
	for i := range w.phones {
		out = append(out, chaosPhoneName(i))
	}
	return out
}

// Endpoint returns the named entity's transport endpoint, or nil.
func (w *ChaosWorld) Endpoint(name string) *transport.Endpoint {
	if name == chaosCollector {
		return w.coll
	}
	for i := range w.phones {
		if chaosPhoneName(i) == name {
			return w.phones[i]
		}
	}
	return nil
}

// Fault returns the named entity's fault wrapper (phones only have churnable
// faults; the collector's wrapper is returned too), or nil.
func (w *ChaosWorld) Fault(name string) *faultnet.Fault {
	for i := range w.phones {
		if chaosPhoneName(i) == name {
			return w.faults[i]
		}
	}
	return nil
}

// Enqueue queues one numbered message from one entity to another; it is
// recorded in the delivery log like scheduled traffic.
func (w *ChaosWorld) Enqueue(from, to, channel string, n int) error {
	ep := w.Endpoint(from)
	if ep == nil {
		return fmt.Errorf("chaos: unknown entity %q", from)
	}
	ep.Enqueue(to, channel, msg.Map{"n": float64(n)})
	return nil
}

// FlushAll flushes every endpoint (phones in index order, collector last)
// and returns the total still-pending outbox entries.
func (w *ChaosWorld) FlushAll() int {
	pending := 0
	for _, ep := range w.phones {
		ep.Flush()
		pending += ep.Pending()
	}
	w.coll.Flush()
	pending += w.coll.Pending()
	return pending
}

// Pending is the total outbox entries across all endpoints, without flushing.
func (w *ChaosWorld) Pending() int {
	pending := 0
	for _, ep := range w.phones {
		pending += ep.Pending()
	}
	return pending + w.coll.Pending()
}

// trackDelivery updates the online exactly-once bookkeeping for one recorded
// delivery and charges violations to the delivery_violations_total counters.
// Pure bookkeeping: it never touches the clock, the net, or the log.
func (w *ChaosWorld) trackDelivery(at, from, channel string, n int) {
	if n < 0 {
		return
	}
	key := at + "|" + from + "|" + channel
	seen := w.seenSeqs[key]
	if seen == nil {
		seen = make(map[int]bool)
		w.seenSeqs[key] = seen
		w.lastSeq[key] = -1
	}
	if seen[n] {
		w.cfg.Obs.Counter("delivery_violations_total", obs.L("kind", "duplicate")).Inc()
	} else if n < w.lastSeq[key] {
		w.cfg.Obs.Counter("delivery_violations_total", obs.L("kind", "out_of_order")).Inc()
	}
	seen[n] = true
	if n > w.lastSeq[key] {
		w.lastSeq[key] = n
	}
}

// observe publishes the world's health gauges and takes one registry sample
// at the current simulated instant, which also steps the alert engine. It
// adds no simulated events and sends no messages, so delivery logs — and
// their pinned SHA-256 baselines — are unaffected: alerting is a pure
// observer. No-op without a registry.
func (w *ChaosWorld) observe() {
	if w.cfg.Obs == nil {
		return
	}
	w.cfg.Obs.Gauge("outbox_pending").Set(float64(w.Pending()))
	w.cfg.Obs.Sample(w.clk.Now(), "chaos")
}

// RunRound executes injection round k: the scheduled partition/heal events
// (when PartitionFrac is set), this round's staggered enqueues, one flush of
// every endpoint, and one Step of simulated time.
func (w *ChaosWorld) RunRound(k int) {
	cfg := w.cfg
	if w.cut > 0 && k == w.iters/3 {
		for i := 0; i < w.cut; i++ {
			w.net.PartitionPair(chaosPhoneName(i), chaosCollector)
		}
	}
	if w.cut > 0 && k == 2*w.iters/3 {
		w.net.HealAll()
	}
	for i := 0; i < cfg.Phones; i++ {
		id := chaosPhoneName(i)
		for j := 0; j < cfg.MessagesPerPhone; j++ {
			at := (j*w.iters)/cfg.MessagesPerPhone + i%5 // staggered across phones
			if at >= w.iters {
				at = w.iters - 1
			}
			if at == k {
				w.phones[i].Enqueue(chaosCollector, "upload", msg.Map{"n": float64(j)})
			}
		}
		for j := 0; j < cfg.CommandsPerPhone; j++ {
			if (j*w.iters)/cfg.CommandsPerPhone == k {
				w.coll.Enqueue(id, "cmd", msg.Map{"n": float64(j)})
			}
		}
	}
	w.FlushAll()
	w.clk.Advance(cfg.Step)
	w.observe()
}

// Advance moves simulated time forward in Step increments, flushing every
// endpoint each step — scripted dead time between injection phases.
func (w *ChaosWorld) Advance(d time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += w.cfg.Step {
		w.FlushAll()
		w.clk.Advance(w.cfg.Step)
		w.observe()
	}
}

// Drain ends the run: churn stops, faults calm, partitions heal, and the
// flush/advance loop runs until outboxes empty or DrainIters rounds pass.
// Returns the entries still pending (0 on a healthy run).
func (w *ChaosWorld) Drain() int {
	cfg := w.cfg
	for _, stop := range w.stops {
		stop()
	}
	w.stops = nil
	w.net.Calm()
	w.net.HealAll()
	undrained := 0
	if cfg.DrainIters < 0 {
		// Drain disabled: count what is still in flight without flushing.
		for _, ep := range w.phones {
			undrained += ep.Pending()
		}
		undrained += w.coll.Pending()
	}
	for k := 0; k < cfg.DrainIters; k++ {
		undrained = w.FlushAll()
		if undrained == 0 {
			break
		}
		w.clk.Advance(cfg.Step)
		w.observe()
	}
	w.clk.Advance(2 * cfg.MaxDelay) // let straggling delayed duplicates land
	w.undrained = undrained
	w.observe()
	return undrained
}

// Result audits the delivery log as it stands and summarizes the run. It can
// be called repeatedly (after each scripted phase) — it only reads state.
func (w *ChaosWorld) Result(name string) ChaosResult {
	cfg := w.cfg
	res := ChaosResult{
		Scenario: name, Seed: cfg.Seed, Phones: cfg.Phones,
		MessagesPerPhone: cfg.MessagesPerPhone, CommandsPerPhone: cfg.CommandsPerPhone,
		Expected:  cfg.Phones * (cfg.MessagesPerPhone + cfg.CommandsPerPhone),
		Delivered: len(w.log),
		Undrained: w.undrained,
		Log:       w.log,
	}
	for _, ep := range w.phones {
		st := ep.Stats()
		res.Retries += st.Retries
		res.CorruptDropped += st.CorruptDropped
	}
	cst := w.coll.Stats()
	res.Retries += cst.Retries
	res.CorruptDropped += cst.CorruptDropped
	ns := w.net.Stats()
	res.NetSent, res.NetDropped, res.NetDuplicated = ns.Sent, ns.Dropped, ns.Duplicated
	res.NetCorrupted, res.NetDelayed = ns.Corrupted, ns.Delayed
	res.PartitionDrops = ns.PartitionDrops
	res.Disconnects = ns.Disconnects

	res.Lost, res.Duplicated, res.OutOfOrder = auditChaosLog(w.log, cfg)

	res.SimSeconds = w.clk.Now().Sub(w.start).Seconds()
	if res.SimSeconds > 0 {
		res.DeliveriesPerSec = float64(res.Delivered) / res.SimSeconds
	}
	sum := sha256.Sum256([]byte(strings.Join(w.log, "\n")))
	res.LogSHA256 = hex.EncodeToString(sum[:])
	return res
}

// Chaos runs one seeded scenario and audits every delivery. See ChaosConfig
// for the knobs; zero-valued fields take the documented defaults.
func Chaos(name string, cfg ChaosConfig) ChaosResult {
	w := NewChaosWorld(cfg)
	for k := 0; k < w.Rounds(); k++ {
		w.RunRound(k)
	}
	w.Drain()
	return w.Result(name)
}

// auditChaosLog checks every (receiver, sender, channel) stream for
// exactly-once FIFO delivery of sequences 0..n-1.
func auditChaosLog(log []string, cfg ChaosConfig) (lost, dup, ooo int) {
	streams := make(map[string][]int)
	for _, line := range log {
		var at, from, channel string
		var n int
		if _, err := fmt.Sscanf(line, "%s <- %s %s %d", &at, &from, &channel, &n); err != nil {
			continue
		}
		key := at + "|" + from + "|" + channel
		streams[key] = append(streams[key], n)
	}
	audit := func(got []int, want int) {
		counts := make(map[int]int)
		for _, s := range got {
			counts[s]++
		}
		for s := 0; s < want; s++ {
			switch c := counts[s]; {
			case c == 0:
				lost++
			case c > 1:
				dup += c - 1
			}
		}
		if !sort.IntsAreSorted(got) {
			ooo++
		}
	}
	for i := 0; i < cfg.Phones; i++ {
		id := chaosPhoneName(i)
		audit(streams[chaosCollector+"|"+id+"|upload"], cfg.MessagesPerPhone)
		audit(streams[id+"|"+chaosCollector+"|cmd"], cfg.CommandsPerPhone)
	}
	return lost, dup, ooo
}
