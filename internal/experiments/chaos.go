package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"pogo/internal/faultnet"
	"pogo/internal/msg"
	"pogo/internal/obs"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// ChaosConfig drives a seeded fault-injection run: a testbed of phones
// uploading to one collector (and receiving commands back) across a faultnet
// that drops, duplicates, corrupts, delays, partitions, and churns. The run
// is fully deterministic in the seed: everything is scheduled on a simulated
// clock and every random draw comes from faultnet's seeded RNG.
type ChaosConfig struct {
	Seed             int64
	Phones           int           // default 50
	MessagesPerPhone int           // phone → collector uploads; default 20
	CommandsPerPhone int           // collector → phone commands; default 3
	Window           time.Duration // traffic injection window; default 10 min
	Step             time.Duration // flush/advance granularity; default 5 s

	// Fault mix, applied to every link for the whole window.
	Drop      float64
	Duplicate float64
	Corrupt   float64
	MaxDelay  time.Duration

	// Churn: phones disconnect/reconnect with these mean up/down times
	// (exponentially distributed, seeded). Zero disables churn.
	MeanUp, MeanDown time.Duration

	// PartitionFrac of the phones are asymmetrically cut off from the
	// collector during the middle third of the window, then healed.
	PartitionFrac float64

	RetryAfter time.Duration // endpoint retransmission base; default 15 s

	// DrainIters caps the post-window drain loop (default 600 flush/advance
	// rounds — ample for every scenario in the matrix). Negative disables
	// the drain entirely: the flight-recorder smoke uses that to leave
	// messages genuinely in flight and force an audit failure.
	DrainIters int
	Obs        *obs.Registry
}

// ChaosResult reports a chaos run. Lost/Duplicated/OutOfOrder are the
// headline numbers: the hardened delivery path must hold them at zero for
// every scenario in the matrix. Log is the full delivery log in arrival
// order (one line per application-level delivery); LogSHA256 fingerprints it
// so two runs can be compared for bit-for-bit reproducibility without
// shipping the log itself in BENCH_chaos.json.
type ChaosResult struct {
	Scenario         string  `json:"scenario"`
	Seed             int64   `json:"seed"`
	Phones           int     `json:"phones"`
	MessagesPerPhone int     `json:"messages_per_phone"`
	CommandsPerPhone int     `json:"commands_per_phone"`
	Expected         int     `json:"expected_deliveries"`
	Delivered        int     `json:"delivered"`
	Lost             int     `json:"lost"`
	Duplicated       int     `json:"duplicated"`
	OutOfOrder       int     `json:"out_of_order"`
	Undrained        int     `json:"undrained"` // outbox entries still pending at the end
	Retries          int     `json:"retries"`
	CorruptDropped   int     `json:"corrupt_dropped"`
	NetSent          int     `json:"net_sent"`
	NetDropped       int     `json:"net_dropped"`
	NetDuplicated    int     `json:"net_duplicated"`
	NetCorrupted     int     `json:"net_corrupted"`
	NetDelayed       int     `json:"net_delayed"`
	PartitionDrops   int     `json:"net_partition_drops"`
	Disconnects      int     `json:"disconnects"`
	SimSeconds       float64 `json:"sim_seconds"`
	DeliveriesPerSec float64 `json:"deliveries_per_sim_second"`
	LogSHA256        string  `json:"log_sha256"`
	Log              []string `json:"-"`
}

// ChaosScenario pairs a name with its fault mix for the scenario matrix.
type ChaosScenario struct {
	Name   string
	Config ChaosConfig
}

// ChaosScenarios is the benchmark matrix at three fault levels. The same
// traffic pattern runs under progressively nastier networks; BENCH_chaos.json
// records how throughput and retry cost degrade while losses stay at zero.
func ChaosScenarios(seed int64) []ChaosScenario {
	return []ChaosScenario{
		{Name: "light", Config: ChaosConfig{
			Seed: seed,
			Drop: 0.05, Duplicate: 0.02, Corrupt: 0.01, MaxDelay: 50 * time.Millisecond,
		}},
		{Name: "medium", Config: ChaosConfig{
			Seed: seed,
			Drop: 0.20, Duplicate: 0.10, Corrupt: 0.05, MaxDelay: 200 * time.Millisecond,
			MeanUp: 3 * time.Minute, MeanDown: 20 * time.Second,
		}},
		{Name: "heavy", Config: ChaosConfig{
			Seed: seed,
			Drop: 0.40, Duplicate: 0.20, Corrupt: 0.10, MaxDelay: 500 * time.Millisecond,
			MeanUp: 90 * time.Second, MeanDown: 45 * time.Second,
			PartitionFrac: 0.2,
		}},
	}
}

const chaosCollector = "collector"

func chaosPhoneName(i int) string { return fmt.Sprintf("phone%02d", i) }

// Chaos runs one seeded scenario and audits every delivery. See ChaosConfig
// for the knobs; zero-valued fields take the documented defaults.
func Chaos(name string, cfg ChaosConfig) ChaosResult {
	if cfg.Phones == 0 {
		cfg.Phones = 50
	}
	if cfg.MessagesPerPhone == 0 {
		cfg.MessagesPerPhone = 20
	}
	if cfg.CommandsPerPhone == 0 {
		cfg.CommandsPerPhone = 3
	}
	if cfg.Window == 0 {
		cfg.Window = 10 * time.Minute
	}
	if cfg.Step == 0 {
		cfg.Step = 5 * time.Second
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 15 * time.Second
	}
	if cfg.DrainIters == 0 {
		cfg.DrainIters = 600
	}

	clk := vclock.NewSim()
	start := clk.Now()
	sb := transport.NewSwitchboard(clk)
	net := faultnet.New(clk, faultnet.Config{
		Seed: cfg.Seed,
		Drop: cfg.Drop, Duplicate: cfg.Duplicate, Corrupt: cfg.Corrupt,
		MaxDelay: cfg.MaxDelay,
		Obs:      cfg.Obs,
	})

	var log []string
	record := func(at, from, channel string, payload msg.Value) {
		n := -1
		if m, ok := payload.(msg.Map); ok {
			if f, ok := m["n"].(float64); ok {
				n = int(f)
			}
		}
		log = append(log, fmt.Sprintf("%s <- %s %s %d", at, from, channel, n))
	}

	// The collector: a plain (never-churned) port behind the same faultnet,
	// so its acks and commands suffer the fault mix too.
	collFault := net.Wrap(sb.Port(chaosCollector, nil))
	collEP := transport.NewEndpoint(collFault, store.OpenMemory(), clk, transport.EndpointConfig{
		RetryAfter: cfg.RetryAfter, BootID: "chaos-" + chaosCollector, Obs: cfg.Obs,
		TraceSeed: cfg.Seed,
	})
	collEP.OnMessage(func(from, channel string, payload msg.Value) {
		record(chaosCollector, from, channel, payload)
	})

	phones := make([]*transport.Endpoint, cfg.Phones)
	faults := make([]*faultnet.Fault, cfg.Phones)
	stops := make([]func(), 0, cfg.Phones)
	for i := 0; i < cfg.Phones; i++ {
		id := chaosPhoneName(i)
		sb.Associate(id, chaosCollector)
		f := net.Wrap(sb.Port(id, nil))
		faults[i] = f
		ep := transport.NewEndpoint(f, store.OpenMemory(), clk, transport.EndpointConfig{
			RetryAfter: cfg.RetryAfter, BootID: "chaos-" + id, Obs: cfg.Obs,
			TraceSeed: cfg.Seed,
		})
		me := id
		ep.OnMessage(func(from, channel string, payload msg.Value) {
			record(me, from, channel, payload)
		})
		phones[i] = ep
		if cfg.MeanUp > 0 && cfg.MeanDown > 0 {
			stops = append(stops, net.Churn(f, cfg.MeanUp, cfg.MeanDown))
		}
	}

	flushAll := func() int {
		pending := 0
		for _, ep := range phones {
			ep.Flush()
			pending += ep.Pending()
		}
		collEP.Flush()
		pending += collEP.Pending()
		return pending
	}

	// Injection window: enqueue traffic on a fixed schedule, flush, advance.
	iters := int(cfg.Window / cfg.Step)
	if iters < 1 {
		iters = 1
	}
	cut := int(float64(cfg.Phones) * cfg.PartitionFrac)
	for k := 0; k < iters; k++ {
		if cut > 0 && k == iters/3 {
			for i := 0; i < cut; i++ {
				net.PartitionPair(chaosPhoneName(i), chaosCollector)
			}
		}
		if cut > 0 && k == 2*iters/3 {
			net.HealAll()
		}
		for i := 0; i < cfg.Phones; i++ {
			id := chaosPhoneName(i)
			for j := 0; j < cfg.MessagesPerPhone; j++ {
				at := (j*iters)/cfg.MessagesPerPhone + i%5 // staggered across phones
				if at >= iters {
					at = iters - 1
				}
				if at == k {
					phones[i].Enqueue(chaosCollector, "upload", msg.Map{"n": float64(j)})
				}
			}
			for j := 0; j < cfg.CommandsPerPhone; j++ {
				if (j*iters)/cfg.CommandsPerPhone == k {
					collEP.Enqueue(id, "cmd", msg.Map{"n": float64(j)})
				}
			}
		}
		flushAll()
		clk.Advance(cfg.Step)
	}

	// Drain: faults off, partitions healed, churned phones reconnected. With
	// eventual connectivity the retransmission path must deliver everything.
	for _, stop := range stops {
		stop()
	}
	net.Calm()
	net.HealAll()
	undrained := 0
	if cfg.DrainIters < 0 {
		// Drain disabled: count what is still in flight without flushing.
		for _, ep := range phones {
			undrained += ep.Pending()
		}
		undrained += collEP.Pending()
	}
	for k := 0; k < cfg.DrainIters; k++ {
		undrained = flushAll()
		if undrained == 0 {
			break
		}
		clk.Advance(cfg.Step)
	}
	clk.Advance(2 * cfg.MaxDelay) // let straggling delayed duplicates land

	res := ChaosResult{
		Scenario: name, Seed: cfg.Seed, Phones: cfg.Phones,
		MessagesPerPhone: cfg.MessagesPerPhone, CommandsPerPhone: cfg.CommandsPerPhone,
		Expected:  cfg.Phones * (cfg.MessagesPerPhone + cfg.CommandsPerPhone),
		Delivered: len(log),
		Undrained: undrained,
		Log:       log,
	}
	for _, ep := range phones {
		st := ep.Stats()
		res.Retries += st.Retries
		res.CorruptDropped += st.CorruptDropped
	}
	cst := collEP.Stats()
	res.Retries += cst.Retries
	res.CorruptDropped += cst.CorruptDropped
	ns := net.Stats()
	res.NetSent, res.NetDropped, res.NetDuplicated = ns.Sent, ns.Dropped, ns.Duplicated
	res.NetCorrupted, res.NetDelayed = ns.Corrupted, ns.Delayed
	res.PartitionDrops = ns.PartitionDrops
	res.Disconnects = ns.Disconnects

	res.Lost, res.Duplicated, res.OutOfOrder = auditChaosLog(log, cfg)

	res.SimSeconds = clk.Now().Sub(start).Seconds()
	if res.SimSeconds > 0 {
		res.DeliveriesPerSec = float64(res.Delivered) / res.SimSeconds
	}
	sum := sha256.Sum256([]byte(strings.Join(log, "\n")))
	res.LogSHA256 = hex.EncodeToString(sum[:])
	return res
}

// auditChaosLog checks every (receiver, sender, channel) stream for
// exactly-once FIFO delivery of sequences 0..n-1.
func auditChaosLog(log []string, cfg ChaosConfig) (lost, dup, ooo int) {
	streams := make(map[string][]int)
	for _, line := range log {
		var at, from, channel string
		var n int
		if _, err := fmt.Sscanf(line, "%s <- %s %s %d", &at, &from, &channel, &n); err != nil {
			continue
		}
		key := at + "|" + from + "|" + channel
		streams[key] = append(streams[key], n)
	}
	audit := func(got []int, want int) {
		counts := make(map[int]int)
		for _, s := range got {
			counts[s]++
		}
		for s := 0; s < want; s++ {
			switch c := counts[s]; {
			case c == 0:
				lost++
			case c > 1:
				dup += c - 1
			}
		}
		if !sort.IntsAreSorted(got) {
			ooo++
		}
	}
	for i := 0; i < cfg.Phones; i++ {
		id := chaosPhoneName(i)
		audit(streams[chaosCollector+"|"+id+"|upload"], cfg.MessagesPerPhone)
		audit(streams[id+"|"+chaosCollector+"|cmd"], cfg.CommandsPerPhone)
	}
	return lost, dup, ooo
}
