package experiments

import (
	"reflect"
	"testing"
	"time"
)

// small shrinks a scenario to test size while keeping its fault mix.
func small(cfg ChaosConfig) ChaosConfig {
	cfg.Phones = 8
	cfg.MessagesPerPhone = 6
	cfg.CommandsPerPhone = 2
	cfg.Window = 2 * time.Minute
	cfg.Step = 2 * time.Second
	cfg.RetryAfter = 6 * time.Second
	if cfg.MeanUp > 0 {
		cfg.MeanUp, cfg.MeanDown = 30*time.Second, 10*time.Second
	}
	return cfg
}

func TestChaosDeterministicSameSeed(t *testing.T) {
	cfg := small(ChaosScenarios(42)[2].Config) // heavy: churn + partitions + all faults
	a := Chaos("heavy", cfg)
	b := Chaos("heavy", cfg)
	if a.LogSHA256 != b.LogSHA256 {
		t.Errorf("same seed, different delivery logs: %s vs %s", a.LogSHA256, b.LogSHA256)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		t.Error("same seed produced diverging delivery logs")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestChaosDifferentSeedsDiverge(t *testing.T) {
	cfg1 := small(ChaosScenarios(1)[1].Config)
	cfg2 := small(ChaosScenarios(2)[1].Config)
	a := Chaos("medium", cfg1)
	b := Chaos("medium", cfg2)
	if a.LogSHA256 == b.LogSHA256 {
		t.Error("different seeds produced identical delivery logs")
	}
}

// The headline guarantee: under every fault level, eventual connectivity
// means exactly-once in-order delivery of everything — nothing lost, nothing
// duplicated, outboxes fully drained.
func TestChaosZeroLossZeroDup(t *testing.T) {
	for _, sc := range ChaosScenarios(7) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Chaos(sc.Name, small(sc.Config))
			if res.Delivered != res.Expected {
				t.Errorf("delivered %d of %d", res.Delivered, res.Expected)
			}
			if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 {
				t.Errorf("lost=%d dup=%d ooo=%d, want all zero", res.Lost, res.Duplicated, res.OutOfOrder)
			}
			if res.Undrained != 0 {
				t.Errorf("%d outbox entries never drained", res.Undrained)
			}
			if sc.Config.Drop > 0 && res.NetDropped == 0 {
				t.Error("fault injection seems inert: nothing was dropped")
			}
		})
	}
}
