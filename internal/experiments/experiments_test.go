package experiments

import (
	"strings"
	"testing"
	"time"

	"pogo/internal/radio"
)

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	bySLOC := map[string]int{}
	locTotal, rogueTotal := 0, 0
	for _, r := range rows {
		bySLOC[r.File] = r.SLOC
		if r.App == "Localization example" {
			locTotal += r.SLOC
		} else {
			rogueTotal += r.SLOC
		}
		if r.Size <= 0 {
			t.Errorf("%s size = %d", r.File, r.Size)
		}
	}
	// Paper: clustering.js (155) dominates; localization ≈ 214 total;
	// RogueFinder ≈ 32; collector stub ≈ 5.
	if bySLOC["clustering.js"] < bySLOC["scan.js"]+bySLOC["collect.js"] {
		t.Errorf("clustering.js (%d) should dominate", bySLOC["clustering.js"])
	}
	if locTotal < 5*rogueTotal/2 {
		t.Errorf("localization (%d) vs roguefinder (%d): wrong ratio", locTotal, rogueTotal)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "clustering.js") || !strings.Contains(out, "total") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure3TailShape(t *testing.T) {
	f := Figure3(radio.KPN)
	// Paper's Figure 3 on KPN: b→c ≈ 6 s, c→d ≈ 53.5 s.
	if got := f.Marks.C.Sub(f.Marks.B); got != 6*time.Second {
		t.Errorf("b→c = %v", got)
	}
	if got := f.Marks.D.Sub(f.Marks.C); got != 53500*time.Millisecond {
		t.Errorf("c→d = %v", got)
	}
	if !f.Marks.A.Before(f.Marks.B) {
		t.Error("mark ordering wrong")
	}
	// Tail energy dominates the transmission itself.
	if f.TailEnergy < 3*f.ActiveEnergy {
		t.Errorf("tail %v J vs active %v J: tail must dominate", f.TailEnergy, f.ActiveEnergy)
	}
	out := f.Render()
	for _, want := range []string{"a (ramp-up start)", "b (tx end)", "c (DCH", "d (FACH", "mW"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("three 2x1h simulations")
	}
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Carrier] = r
		// The paper's headline: Pogo's overhead is marginal, not tens of
		// percent. Allow the simulated substrate some slack.
		if r.IncreasePct < 0 || r.IncreasePct > 15 {
			t.Errorf("%s increase = %.2f%%, outside the paper's regime", r.Carrier, r.IncreasePct)
		}
		if r.PogoTails > 1 {
			t.Errorf("%s: Pogo generated %d own tails", r.Carrier, r.PogoTails)
		}
		// "these values were reported in batches of five".
		if r.BatchSize < 4 || r.BatchSize > 6 {
			t.Errorf("%s batch size = %.1f, want ≈5", r.Carrier, r.BatchSize)
		}
	}
	// KPN's long tail makes its baseline the highest (paper: 277 > 205 > 182)
	// and its relative increase the lowest (4.09 < 6.57 < 6.73).
	if !(byName["KPN"].WithoutPogo > byName["Vodafone"].WithoutPogo &&
		byName["Vodafone"].WithoutPogo > byName["T-Mobile"].WithoutPogo) {
		t.Errorf("baseline ordering wrong: %+v", rows)
	}
	if byName["KPN"].IncreasePct >= byName["T-Mobile"].IncreasePct {
		t.Errorf("KPN increase (%.2f) should be below T-Mobile (%.2f)",
			byName["KPN"].IncreasePct, byName["T-Mobile"].IncreasePct)
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "KPN") || !strings.Contains(out, "Vodafone") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure4Synchronization(t *testing.T) {
	f := Figure4(16 * time.Minute)
	emails := 0
	pogoTx := 0
	for _, s := range f.Spans {
		switch s.Name {
		case "email":
			emails++
		case "pogo-tx":
			pogoTx++
		}
	}
	if emails < 2 {
		t.Fatalf("emails = %d in 16 min", emails)
	}
	if pogoTx == 0 {
		t.Fatal("no pogo transmissions")
	}
	// Every pogo transmission must fall inside (or within 5 s of) an email
	// window — that is the synchronization claim.
	for _, p := range f.Spans {
		if p.Name != "pogo-tx" {
			continue
		}
		ok := false
		for _, e := range f.Spans {
			if e.Name != "email" {
				continue
			}
			if !p.Start.Before(e.Start.Add(-5*time.Second)) && !p.Start.After(e.End.Add(5*time.Second)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("pogo tx at %v not synchronized with any email window", p.Start)
		}
	}
	out := f.Render()
	for _, want := range []string{"cpu", "email", "pogo-tx", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPowerTrialDeliversEverything(t *testing.T) {
	r := RunPowerTrial(PowerTrialConfig{Carrier: radio.KPN, WithPogo: true, Duration: 20 * time.Minute})
	if r.ReportsDelivered < 18 {
		t.Errorf("delivered %d of ~20 reports", r.ReportsDelivered)
	}
	if r.EmailChecks != 4 {
		t.Errorf("email checks = %d in 20 min", r.EmailChecks)
	}
	if r.Joules <= 0 || r.Breakdown["modem"] <= 0 {
		t.Errorf("energy accounting empty: %v %v", r.Joules, r.Breakdown)
	}
	if r.DeliveryDelayMean <= 0 || r.DeliveryDelayMean > 6*time.Minute {
		t.Errorf("mean delay = %v", r.DeliveryDelayMean)
	}
}

func TestTable4SmallRun(t *testing.T) {
	// The canonical shrunk workload: User A reboots halfway, User B's long
	// offline stretch ages part of the backlog past the 24 h purge. The
	// scenario DSL's `table4` command runs this same config.
	days := 3
	res, err := Table4(SmallTable4Config(1, days))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// ~1 scan/min around the clock.
		if r.Scans < days*1300 || r.Scans > days*1500 {
			t.Errorf("%s scans = %d", r.User, r.Scans)
		}
		if r.Locations < days*2 {
			t.Errorf("%s locations = %d", r.User, r.Locations)
		}
		if r.PartialPct < r.MatchPct {
			t.Errorf("%s partial (%v) < match (%v)", r.User, r.PartialPct, r.MatchPct)
		}
		if r.MatchPct < 40 || r.PartialPct < 60 {
			t.Errorf("%s quality too low: match=%v partial=%v", r.User, r.MatchPct, r.PartialPct)
		}
	}
	// User B lost a day of messages to the 24 h purge: its match must be
	// visibly below User A's.
	if res.Rows[1].MatchPct >= res.Rows[0].MatchPct {
		t.Errorf("offline user (%v) should lose clusters vs %v",
			res.Rows[1].MatchPct, res.Rows[0].MatchPct)
	}
	// The headline: on-line clustering reduces transfer volume drastically
	// (paper: 98.3%).
	if res.ReductionPct < 90 {
		t.Errorf("reduction = %.1f%%", res.ReductionPct)
	}
	out := RenderTable4(res)
	if !strings.Contains(out, "User A") || !strings.Contains(out, "reduced by") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable4Deterministic(t *testing.T) {
	run := func() SessionResult {
		res, err := Table4(Table4Config{
			Seed: 5, Days: 1,
			Sessions: []SessionConfig{{
				User: "U", DeviceID: "d", Duration: 24 * time.Hour, Seed: 301,
				Faults: []Fault{{Kind: FaultReboot, At: 11 * time.Hour}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0]
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic Table 4:\n%+v\n%+v", a, b)
	}
}

func TestAblationFreezeThawImprovesQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-day sessions")
	}
	rows, err := AblationFreezeThaw(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	noFreeze, withFreeze := rows[0], rows[1]
	if withFreeze.MatchPct < noFreeze.MatchPct {
		t.Errorf("freeze/thaw did not help: %v vs %v", withFreeze.MatchPct, noFreeze.MatchPct)
	}
	out := RenderFreezeThaw(rows)
	if !strings.Contains(out, "freeze/thaw") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationDetectorPolling(t *testing.T) {
	rows := AblationDetectorPolling()
	sleepRow, alarmRow := rows[0], rows[1]
	// Alarm polling keeps the CPU essentially always awake: vastly more
	// uptime and joules, for the same detection coverage.
	if alarmRow.CPUUptime < 10*sleepRow.CPUUptime {
		t.Errorf("uptime: alarms %v vs sleep %v", alarmRow.CPUUptime, sleepRow.CPUUptime)
	}
	if alarmRow.Joules < sleepRow.Joules+100 {
		t.Errorf("energy: alarms %v vs sleep %v", alarmRow.Joules, sleepRow.Joules)
	}
	if sleepRow.TailsCaught == 0 {
		t.Error("sleep strategy caught nothing")
	}
	out := RenderDetectorPolling(rows)
	if !strings.Contains(out, "RTC alarms") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationSensorGating(t *testing.T) {
	rows := AblationSensorGating()
	gated, always := rows[0], rows[1]
	if always.Samples < 50 {
		t.Errorf("always-on samples = %d", always.Samples)
	}
	if always.Joules < gated.Joules+20 {
		t.Errorf("gating saved nothing: %v vs %v", gated.Joules, always.Joules)
	}
	out := RenderSensorGating(rows)
	if !strings.Contains(out, "always-on") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationFlushPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("five 1 h simulations")
	}
	rows := AblationFlushPolicies()
	byName := map[string]FlushPolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	tailSync := byName["tail-sync (Pogo)"]
	immediate := byName["immediate"]
	hourly := byName["interval 1h"]
	// Immediate flushing costs far more energy than tail-sync.
	if immediate.Joules < tailSync.Joules*1.1 {
		t.Errorf("immediate (%v J) should cost well above tail-sync (%v J)",
			immediate.Joules, tailSync.Joules)
	}
	// Hourly flushing is cheap but slow; tail-sync delivers much faster.
	if hourly.DeliveryDelay < 2*tailSync.DeliveryDelay {
		t.Errorf("delay: hourly %v vs tail-sync %v", hourly.DeliveryDelay, tailSync.DeliveryDelay)
	}
	if tailSync.PogoTails > 1 {
		t.Errorf("tail-sync caused %d own tails", tailSync.PogoTails)
	}
	out := RenderFlushPolicies(rows)
	if !strings.Contains(out, "tail-sync") {
		t.Errorf("render:\n%s", out)
	}
}
