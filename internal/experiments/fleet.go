package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"time"

	"pogo/internal/faultnet"
	"pogo/internal/fleet"
	"pogo/internal/msg"
	"pogo/internal/obs"
	"pogo/internal/store"
	"pogo/internal/transport"
)

// FleetConfig drives the parallel-fleet scenario: the chaos workload —
// phones uploading to collectors through seeded fault injection, collectors
// commanding phones back, the hardened transport recovering everything —
// scaled to thousands of phones and executed across fleet.Engine shards.
//
// Determinism is shard-count-proof by construction: every entity draws its
// faults from its own RNG seeded by (Seed, name), every payload crosses the
// fabric with the same fixed latency whether or not sender and receiver
// share a shard, and phone→collector assignment depends only on the phone
// index. The per-seed delivery log is therefore byte-identical at any Shards
// and any GOMAXPROCS — `make fleet` enforces exactly that.
type FleetConfig struct {
	Seed   int64
	Phones int // default 2000
	Shards int // default 4
	// Collectors is the size of the collector cluster phones are hashed
	// across. It must not default from Shards (that would change the
	// workload's shape with the partitioning); default Phones/128, clamped
	// to [1, 16].
	Collectors       int
	MessagesPerPhone int           // phone → collector uploads; default 20
	CommandsPerPhone int           // collector → phone commands; default 3
	Window           time.Duration // traffic injection window; default 5 min
	Step             time.Duration // per-entity flush period; default 5 s

	// Fault mix, per entity, drawn from per-entity seeded RNGs.
	Drop      float64
	Duplicate float64
	Corrupt   float64
	MaxDelay  time.Duration

	// Latency is the fabric delivery latency and the engine's conservative
	// lookahead (= epoch length). Default 100 ms.
	Latency    time.Duration
	RetryAfter time.Duration // endpoint retransmission base; default 15 s
	DrainLimit time.Duration // extra simulated time to recover losses; default 15 min
	Obs        *obs.Registry
}

// FleetScenario is the canonical benchmark mix for `pogo-bench -run fleet`:
// light chaos-style faults over the given fleet size.
func FleetScenario(seed int64, phones, shards int) FleetConfig {
	return FleetConfig{
		Seed:   seed,
		Phones: phones,
		Shards: shards,
		Drop:   0.05, Duplicate: 0.02, Corrupt: 0.01,
		MaxDelay: 50 * time.Millisecond,
	}
}

// FleetResult reports one fleet run. Lost/Duplicated/OutOfOrder must be zero
// — the delivery guarantee is unchanged from the chaos suite — and LogSHA256
// must be identical across shard counts and GOMAXPROCS for a given seed.
type FleetResult struct {
	Seed             int64    `json:"seed"`
	Phones           int      `json:"phones"`
	Collectors       int      `json:"collectors"`
	Shards           int      `json:"shards"`
	Expected         int      `json:"expected_deliveries"`
	Delivered        int      `json:"delivered"`
	Lost             int      `json:"lost"`
	Duplicated       int      `json:"duplicated"`
	OutOfOrder       int      `json:"out_of_order"`
	Undrained        int      `json:"undrained"`
	Epochs           int      `json:"epochs"`
	Events           int64    `json:"events"`
	FabricMessages   int64    `json:"fabric_messages"`
	CrossShard       int64    `json:"cross_shard_messages"`
	SimSeconds       float64  `json:"sim_seconds"`
	WallSeconds      float64  `json:"wall_seconds"`
	EventsPerSec     float64  `json:"events_per_wall_second"`
	DeliveriesPerSec float64  `json:"deliveries_per_wall_second"`
	// AllocsPerDelivery / BytesPerDelivery are runtime.MemStats deltas over
	// the simulation run divided by delivered messages — machine-independent,
	// so they are comparable across baselines in a way wall-clock is not.
	AllocsPerDelivery float64  `json:"allocs_per_delivery"`
	BytesPerDelivery  float64  `json:"bytes_per_delivery"`
	LogSHA256         string   `json:"log_sha256"`
	Log               []string `json:"-"`
}

// fleetEntry is one application-level delivery, recorded on the receiver's
// shard and merged into the global log by content afterwards.
type fleetEntry struct {
	at               time.Time
	receiver, sender string
	channel          string
	n                int
}

func fleetPhoneName(i int) string     { return fmt.Sprintf("phone%04d", i) }
func fleetCollectorName(i int) string { return fmt.Sprintf("collector%02d", i) }

// fleetEntitySeed derives a per-entity RNG seed from the world seed, so an
// entity's fault schedule depends only on its own name and traffic — never
// on which shard it landed in or who shares that shard.
func fleetEntitySeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// fleetCollectorOf assigns phone i to a collector by hashing its name:
// shard-count-invariant (it never sees Shards) yet decorrelated from the
// round-robin shard placement, so most phone↔collector pairs genuinely cross
// shards.
func fleetCollectorOf(i, collectors int) int {
	h := fnv.New64a()
	h.Write([]byte(fleetPhoneName(i)))
	return int(h.Sum64() % uint64(collectors))
}

// Fleet runs the sharded parallel fleet scenario. See FleetConfig for the
// knobs; zero-valued fields take the documented defaults.
func Fleet(cfg FleetConfig) FleetResult {
	if cfg.Phones == 0 {
		cfg.Phones = 2000
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Collectors == 0 {
		cfg.Collectors = cfg.Phones / 128
		if cfg.Collectors < 1 {
			cfg.Collectors = 1
		}
		if cfg.Collectors > 16 {
			cfg.Collectors = 16
		}
	}
	if cfg.MessagesPerPhone == 0 {
		cfg.MessagesPerPhone = 20
	}
	if cfg.CommandsPerPhone == 0 {
		cfg.CommandsPerPhone = 3
	}
	if cfg.Window == 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.Step == 0 {
		cfg.Step = 5 * time.Second
	}
	if cfg.Latency == 0 {
		cfg.Latency = 100 * time.Millisecond
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 15 * time.Second
	}
	if cfg.DrainLimit == 0 {
		cfg.DrainLimit = 15 * time.Minute
	}

	if cfg.Obs != nil {
		// Same contract as the chaos world: alert evaluation happens at
		// deterministic simulated instants (epoch barriers below), and
		// RealTime rules — barrier_stall is wall-clock — are muted so the
		// alert log stays a pure function of the seed at any shard count.
		alerts := cfg.Obs.Alerts()
		alerts.SetDeterministic(true)
		alerts.EnsureDefaultRules()
	}
	eng := fleet.NewEngine(fleet.Config{
		Shards:    cfg.Shards,
		Lookahead: cfg.Latency,
		Obs:       cfg.Obs,
	})
	start := eng.Shard(0).Clock().Now()
	logs := make([][]fleetEntry, eng.Shards())
	var endpoints []*transport.Endpoint

	// record returns a delivery handler appending to the receiver shard's
	// local log — shard workers never touch each other's slices.
	record := func(shard int, receiver string) func(from, channel string, payload msg.Value) {
		clk := eng.Shard(shard).Clock()
		return func(from, channel string, payload msg.Value) {
			n := -1
			if m, ok := payload.(msg.Map); ok {
				if f, ok := m["n"].(float64); ok {
					n = int(f)
				}
			}
			logs[shard] = append(logs[shard], fleetEntry{
				at: clk.Now(), receiver: receiver, sender: from, channel: channel, n: n,
			})
		}
	}

	// build wires one entity: port → per-entity seeded fault wrapper →
	// reliable endpoint, plus its periodic flush tick and end-of-window calm.
	build := func(shard int, name string, tickPhase time.Duration) *transport.Endpoint {
		sh := eng.Shard(shard)
		net := faultnet.New(sh.Clock(), faultnet.Config{
			Seed: fleetEntitySeed(cfg.Seed, name),
			Drop: cfg.Drop, Duplicate: cfg.Duplicate, Corrupt: cfg.Corrupt,
			MaxDelay: cfg.MaxDelay,
			Obs:      cfg.Obs,
		})
		f := net.Wrap(sh.Port(name))
		ep := transport.NewEndpoint(f, store.OpenMemory(), sh.Clock(), transport.EndpointConfig{
			RetryAfter: cfg.RetryAfter, BootID: "fleet-" + name, Obs: cfg.Obs,
			TraceSeed: cfg.Seed,
		})
		ep.OnMessage(record(shard, name))
		var tick func()
		tick = func() {
			sh.Clock().AfterFunc(cfg.Step, tick)
			ep.Flush()
		}
		sh.Clock().AfterFunc(tickPhase, tick)
		sh.Clock().AfterFunc(cfg.Window, net.Calm)
		endpoints = append(endpoints, ep)
		return ep
	}

	collectors := make([]*transport.Endpoint, cfg.Collectors)
	for c := 0; c < cfg.Collectors; c++ {
		collectors[c] = build(c%cfg.Shards, fleetCollectorName(c),
			cfg.Step*time.Duration(1+c%16)/16)
	}
	msgGap := cfg.Window / time.Duration(cfg.MessagesPerPhone)
	cmdGap := cfg.Window / time.Duration(cfg.CommandsPerPhone)
	for i := 0; i < cfg.Phones; i++ {
		name := fleetPhoneName(i)
		shard := i % cfg.Shards
		ci := fleetCollectorOf(i, cfg.Collectors)
		coll := fleetCollectorName(ci)
		ep := build(shard, name, cfg.Step*time.Duration(1+i%64)/64)
		clk := eng.Shard(shard).Clock()
		// Stagger each phone inside the per-message slot by a hash of its
		// index — same spread at any shard count.
		phase := time.Duration(int64(i)*7919%997) * msgGap / 997
		for j := 0; j < cfg.MessagesPerPhone; j++ {
			j := j
			clk.AfterFunc(msgGap*time.Duration(j)+phase, func() {
				ep.Enqueue(coll, "upload", msg.Map{"n": float64(j)})
			})
		}
		cep := collectors[ci]
		cclk := eng.Shard(ci % cfg.Shards).Clock()
		cphase := time.Duration(int64(i)*104729%997) * cmdGap / 997
		for j := 0; j < cfg.CommandsPerPhone; j++ {
			j := j
			cclk.AfterFunc(cmdGap*time.Duration(j)+cphase, func() {
				cep.Enqueue(name, "cmd", msg.Map{"n": float64(j)})
			})
		}
	}

	expected := cfg.Phones * (cfg.MessagesPerPhone + cfg.CommandsPerPhone)
	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	wall0 := time.Now()
	// Health sampling rides the epoch barrier: the done callback runs with
	// every shard worker parked, so counter totals are identical across runs
	// and shard counts. Per-epoch sampling would be wasteful (and the engine
	// runs thousands of epochs), so sample on a coarse simulated cadence.
	const obsEvery = 30 * time.Second
	nextObs := start.Add(obsEvery)
	stats := eng.Run(cfg.Window+cfg.DrainLimit, func(now time.Time) bool {
		delivered := 0
		for _, l := range logs {
			delivered += len(l)
		}
		if cfg.Obs != nil && !now.Before(nextObs) {
			pending := 0
			for _, ep := range endpoints {
				pending += ep.Pending()
			}
			cfg.Obs.Gauge("outbox_pending").Set(float64(pending))
			cfg.Obs.Sample(now, "fleet")
			for !now.Before(nextObs) {
				nextObs = nextObs.Add(obsEvery)
			}
		}
		if delivered < expected {
			return false
		}
		for _, ep := range endpoints {
			if ep.Pending() > 0 {
				return false
			}
		}
		return true
	})
	wall := time.Since(wall0)
	runtime.ReadMemStats(&memAfter)

	undrained := 0
	for _, ep := range endpoints {
		undrained += ep.Pending()
	}
	var entries []fleetEntry
	for _, l := range logs {
		entries = append(entries, l...)
	}
	// Audit on arrival order (each receiver's stream arrives on one shard, so
	// concatenation preserves per-stream FIFO order) before the content sort
	// below erases it.
	lost, dup, ooo := auditFleetLog(entries, cfg)
	// Content sort: time, then receiver/sender/channel/payload. The delivery
	// path guarantees exactly-once per stream, so the key is unique and the
	// resulting log is independent of shard layout and scheduling.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if !a.at.Equal(b.at) {
			return a.at.Before(b.at)
		}
		if a.receiver != b.receiver {
			return a.receiver < b.receiver
		}
		if a.sender != b.sender {
			return a.sender < b.sender
		}
		if a.channel != b.channel {
			return a.channel < b.channel
		}
		return a.n < b.n
	})
	log := make([]string, len(entries))
	for i, en := range entries {
		log[i] = fmt.Sprintf("t=%d %s <- %s %s %d",
			en.at.Sub(start)/time.Millisecond, en.receiver, en.sender, en.channel, en.n)
	}

	res := FleetResult{
		Seed: cfg.Seed, Phones: cfg.Phones, Collectors: cfg.Collectors,
		Shards: cfg.Shards, Expected: expected, Delivered: len(entries),
		Undrained: undrained,
		Epochs:    stats.Epochs, Events: stats.Events,
		FabricMessages: stats.Fabric, CrossShard: stats.CrossShard,
		Log: log,
	}
	res.Lost, res.Duplicated, res.OutOfOrder = lost, dup, ooo
	res.SimSeconds = eng.Shard(0).Clock().Now().Sub(start).Seconds()
	res.WallSeconds = wall.Seconds()
	if res.WallSeconds > 0 {
		res.EventsPerSec = float64(stats.Events) / res.WallSeconds
		res.DeliveriesPerSec = float64(res.Delivered) / res.WallSeconds
	}
	if res.Delivered > 0 {
		res.AllocsPerDelivery = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Delivered)
		res.BytesPerDelivery = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(res.Delivered)
	}
	sum := sha256.Sum256([]byte(strings.Join(log, "\n")))
	res.LogSHA256 = hex.EncodeToString(sum[:])
	return res
}

// auditFleetLog checks every (receiver, sender, channel) stream for
// exactly-once FIFO delivery of 0..n-1, mirroring the chaos audit.
func auditFleetLog(entries []fleetEntry, cfg FleetConfig) (lost, dup, ooo int) {
	type stream struct{ receiver, sender, channel string }
	got := make(map[stream][]int)
	order := make(map[stream][]int) // arrival order, pre-sort is lost; rebuild per at
	for _, en := range entries {
		k := stream{en.receiver, en.sender, en.channel}
		got[k] = append(got[k], en.n)
		order[k] = append(order[k], en.n)
	}
	audit := func(k stream, want int) {
		counts := make(map[int]int)
		for _, n := range got[k] {
			counts[n]++
		}
		for n := 0; n < want; n++ {
			switch c := counts[n]; {
			case c == 0:
				lost++
			case c > 1:
				dup += c - 1
			}
		}
		if !sort.IntsAreSorted(order[k]) {
			ooo++
		}
	}
	for i := 0; i < cfg.Phones; i++ {
		phone := fleetPhoneName(i)
		coll := fleetCollectorName(fleetCollectorOf(i, cfg.Collectors))
		audit(stream{coll, phone, "upload"}, cfg.MessagesPerPhone)
		audit(stream{phone, coll, "cmd"}, cfg.CommandsPerPhone)
	}
	return lost, dup, ooo
}
