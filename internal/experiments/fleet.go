package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"strings"
	"time"

	"pogo/internal/faultnet"
	"pogo/internal/fleet"
	"pogo/internal/msg"
	"pogo/internal/obs"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// FleetConfig drives the parallel-fleet scenario: the chaos workload —
// phones uploading to collectors through seeded fault injection, collectors
// commanding phones back, the hardened transport recovering everything —
// scaled to thousands of phones and executed across fleet.Engine shards,
// optionally split over multiple worker processes.
//
// Determinism is partition-proof by construction: every entity draws its
// faults from its own RNG seeded by (Seed, name), every payload crosses the
// fabric with the same fixed latency whether or not sender and receiver
// share a shard (or a process), and phone→collector assignment depends only
// on the phone index. The per-seed delivery log is therefore byte-identical
// at any Shards, any Procs, and any GOMAXPROCS — `make fleet` enforces
// exactly that.
type FleetConfig struct {
	Seed   int64
	Phones int // default 2000
	Shards int // default 4
	// Procs splits the shard range over this many worker processes (see
	// FleetMultiproc). Fleet itself ignores it; it rides in the config so
	// drivers can carry one value and so workers echo it in results.
	Procs int
	// Collectors is the size of the collector cluster phones are hashed
	// across. It must not default from Shards (that would change the
	// workload's shape with the partitioning); default Phones/128, clamped
	// to [1, 16].
	Collectors       int
	MessagesPerPhone int           // phone → collector uploads; default 20
	CommandsPerPhone int           // collector → phone commands; default 3
	Window           time.Duration // traffic injection window; default 5 min
	Step             time.Duration // per-entity flush period; default 5 s

	// Fault mix, per entity, drawn from per-entity seeded RNGs.
	Drop      float64
	Duplicate float64
	Corrupt   float64
	MaxDelay  time.Duration

	// Latency is the fabric delivery latency and the engine's conservative
	// lookahead (= epoch length). Default 100 ms.
	Latency    time.Duration
	RetryAfter time.Duration // endpoint retransmission base; default 15 s
	DrainLimit time.Duration // extra simulated time to recover losses; default 15 min

	// KeepLog materializes FleetResult.Log (one formatted line per delivery).
	// Off by default: at 100k phones the textual log costs more than the
	// simulated fleet, and the hash is computed without it.
	KeepLog bool

	// Obs is never serialized to worker processes; multi-process runs only
	// instrument the coordinator side.
	Obs *obs.Registry `json:"-"`
}

// FleetScenario is the canonical benchmark mix for `pogo-bench -run fleet`:
// light chaos-style faults over the given fleet size.
func FleetScenario(seed int64, phones, shards int) FleetConfig {
	return FleetConfig{
		Seed:   seed,
		Phones: phones,
		Shards: shards,
		Drop:   0.05, Duplicate: 0.02, Corrupt: 0.01,
		MaxDelay: 50 * time.Millisecond,
	}
}

// fleetNormalize applies the documented defaults in place. Idempotent: the
// multi-process coordinator normalizes before serializing to workers, and
// workers normalize again on the already-normalized config.
func fleetNormalize(cfg *FleetConfig) {
	if cfg.Phones == 0 {
		cfg.Phones = 2000
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	if cfg.Collectors == 0 {
		cfg.Collectors = cfg.Phones / 128
		if cfg.Collectors < 1 {
			cfg.Collectors = 1
		}
		if cfg.Collectors > 16 {
			cfg.Collectors = 16
		}
	}
	if cfg.MessagesPerPhone == 0 {
		cfg.MessagesPerPhone = 20
	}
	if cfg.CommandsPerPhone == 0 {
		cfg.CommandsPerPhone = 3
	}
	if cfg.Window == 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.Step == 0 {
		cfg.Step = 5 * time.Second
	}
	if cfg.Latency == 0 {
		cfg.Latency = 100 * time.Millisecond
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 15 * time.Second
	}
	if cfg.DrainLimit == 0 {
		cfg.DrainLimit = 15 * time.Minute
	}
}

// FleetResult reports one fleet run. Lost/Duplicated/OutOfOrder must be zero
// — the delivery guarantee is unchanged from the chaos suite — and LogSHA256
// must be identical across shard counts, process counts and GOMAXPROCS for a
// given seed.
type FleetResult struct {
	Seed           int64 `json:"seed"`
	Phones         int   `json:"phones"`
	Collectors     int   `json:"collectors"`
	Shards         int   `json:"shards"`
	Procs          int   `json:"procs"`
	Expected       int   `json:"expected_deliveries"`
	Delivered      int   `json:"delivered"`
	Lost           int   `json:"lost"`
	Duplicated     int   `json:"duplicated"`
	OutOfOrder     int   `json:"out_of_order"`
	Undrained      int   `json:"undrained"`
	Epochs         int   `json:"epochs"`
	Events         int64 `json:"events"`
	FabricMessages int64 `json:"fabric_messages"`
	CrossShard     int64 `json:"cross_shard_messages"`

	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the user+system rusage consumed by the run across every
	// participating process (workers plus coordinator). On a box with fewer
	// cores than shards the wall-clock speedup is flat, but cpu_seconds still
	// attributes the work: wall ≈ cpu / min(cores, parallelism).
	CPUSeconds       float64   `json:"cpu_seconds"`
	WorkerCPUSeconds []float64 `json:"worker_cpu_seconds,omitempty"`
	EventsPerSec     float64   `json:"events_per_wall_second"`
	DeliveriesPerSec float64   `json:"deliveries_per_wall_second"`
	// AllocsPerDelivery / BytesPerDelivery are runtime.MemStats deltas over
	// the simulation run divided by delivered messages — machine-independent,
	// so they are comparable across baselines in a way wall-clock is not.
	// Multi-process runs sum the deltas of every participating process.
	AllocsPerDelivery float64 `json:"allocs_per_delivery"`
	BytesPerDelivery  float64 `json:"bytes_per_delivery"`
	// BytesPerPhone is the live-heap cost of building the fleet (post-GC
	// HeapAlloc delta across world construction, summed over worker
	// processes) divided by Phones: the per-device memory footprint the
	// 100k-phone diet is budgeted against.
	BytesPerPhone float64  `json:"fleet_bytes_per_phone"`
	LogSHA256     string   `json:"log_sha256"`
	Log           []string `json:"-"`
}

func fleetPhoneName(i int) string     { return fmt.Sprintf("phone%04d", i) }
func fleetCollectorName(i int) string { return fmt.Sprintf("collector%02d", i) }

// fleetEntitySeed derives a per-entity RNG seed from the world seed, so an
// entity's fault schedule depends only on its own name and traffic — never
// on which shard or process it landed in or who shares that shard.
func fleetEntitySeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// fleetCollectorOf assigns phone i to a collector by hashing its name:
// shard-count-invariant (it never sees Shards) yet decorrelated from the
// round-robin shard placement, so most phone↔collector pairs genuinely cross
// shards.
func fleetCollectorOf(i, collectors int) int {
	h := fnv.New64a()
	h.Write([]byte(fleetPhoneName(i)))
	return int(h.Sum64() % uint64(collectors))
}

// fleetNames precomputes the naming and placement tables every part of a run
// agrees on: entity index → name (phones first, then collectors), the
// lexicographic rank of each name (so the compact log sorts exactly like the
// old string log did — note "phone10000" < "phone9999"), the reverse name →
// index map used on the delivery path, and each phone's collector. One table
// serves the whole run; worker processes rebuild it identically from the
// config.
type fleetNames struct {
	phones, collectors, shards int
	names                      []string
	rank                       []int32
	index                      map[string]int32
	collOf                     []int32
}

func newFleetNames(cfg *FleetConfig) *fleetNames {
	fn := &fleetNames{phones: cfg.Phones, collectors: cfg.Collectors, shards: cfg.Shards}
	fn.names = make([]string, cfg.Phones+cfg.Collectors)
	for i := 0; i < cfg.Phones; i++ {
		fn.names[i] = fleetPhoneName(i)
	}
	for c := 0; c < cfg.Collectors; c++ {
		fn.names[cfg.Phones+c] = fleetCollectorName(c)
	}
	fn.index = make(map[string]int32, len(fn.names))
	for i, s := range fn.names {
		fn.index[s] = int32(i)
	}
	ord := make([]int32, len(fn.names))
	for i := range ord {
		ord[i] = int32(i)
	}
	slices.SortFunc(ord, func(a, b int32) int { return strings.Compare(fn.names[a], fn.names[b]) })
	fn.rank = make([]int32, len(fn.names))
	for r, i := range ord {
		fn.rank[i] = int32(r)
	}
	fn.collOf = make([]int32, cfg.Phones)
	for i := range fn.collOf {
		fn.collOf[i] = int32(fleetCollectorOf(i, cfg.Collectors))
	}
	return fn
}

func (fn *fleetNames) lookup(name string) int32 {
	if i, ok := fn.index[name]; ok {
		return i
	}
	return -1
}

func (fn *fleetNames) rankOf(i int32) int32 {
	if i >= 0 && int(i) < len(fn.rank) {
		return fn.rank[i]
	}
	return -1
}

func (fn *fleetNames) phoneShard(i int) int      { return i % fn.shards }
func (fn *fleetNames) collShard(c int) int       { return c % fn.shards }
func (fn *fleetNames) collIndex(c int) int32     { return int32(fn.phones + c) }
func (fn *fleetNames) collName(c int) string     { return fn.names[fn.phones+c] }
func (fn *fleetNames) phoneName(i int) string    { return fn.names[i] }
func (fn *fleetNames) entityName(i int32) string { return fn.names[i] }

// fleetGen is one self-rescheduling traffic stream: phone i's uploads, or
// the command stream a collector sends phone i. The old builder scheduled
// one AfterFunc closure per message up front — ~23 live closures plus timer
// events per phone for the whole run. A generator is one 80-byte struct in a
// contiguous slice holding one reusable callback that re-arms itself via the
// pooled Schedule path, so pending traffic costs O(streams), not O(messages).
type fleetGen struct {
	ep          *transport.Endpoint
	clk         *vclock.Sim
	to          string
	ch          string
	first, gap  time.Duration
	next, total int32
	fire        func()
}

func (g *fleetGen) run() {
	g.ep.Enqueue(g.to, g.ch, msg.Map{"n": float64(g.next)})
	g.next++
	if g.next < g.total {
		g.clk.Schedule(g.gap, g.fire)
	}
}

// fleetWorld is a built (but not yet run) fleet partition: the engine owning
// global shards [lo, hi), the entities living on them, and the per-shard
// compact delivery logs. The in-process Fleet builds the full range; each
// multi-process worker builds only its own slice, so a worker's heap holds
// only the devices it simulates.
type fleetWorld struct {
	cfg         *FleetConfig
	names       *fleetNames
	eng         *fleet.Engine
	start       time.Time
	lo, hi      int
	logs        []*fleetLog  // indexed by local shard (global - lo)
	rings       []*fleetRing // per-shard diagnostic rings; nil unless requested
	endpoints   []*transport.Endpoint
	gens        []fleetGen
	ownedPhones int
}

func (w *fleetWorld) delivered() int {
	n := 0
	for _, l := range w.logs {
		n += l.n
	}
	return n
}

func (w *fleetWorld) pending() int {
	n := 0
	for _, ep := range w.endpoints {
		n += ep.Pending()
	}
	return n
}

// buildFleetWorld wires every entity whose shard falls in [lo, hi). The
// construction order — collectors, then phones, then generator arming — is
// the same global program order at any partitioning; a worker merely skips
// entities it does not own, so the relative order of any two insertions into
// the same shard's clock (the only order that matters for same-instant
// tiebreaks) is partition-invariant.
func buildFleetWorld(cfg *FleetConfig, names *fleetNames, lo, hi int, withRings bool) *fleetWorld {
	w := &fleetWorld{cfg: cfg, names: names, lo: lo, hi: hi}
	w.eng = fleet.NewEngine(fleet.Config{
		Shards:    hi - lo,
		ShardBase: lo,
		Lookahead: cfg.Latency,
		Remote:    hi-lo < cfg.Shards,
		Obs:       cfg.Obs,
	})
	w.start = w.eng.Shard(0).Clock().Now()
	w.logs = make([]*fleetLog, hi-lo)
	for i := range w.logs {
		w.logs[i] = &fleetLog{}
	}
	if withRings {
		// One ring per shard: delivery handlers run on the shard's own
		// goroutine, so rings (like logs) must never be shared across shards.
		w.rings = make([]*fleetRing, hi-lo)
		for i := range w.rings {
			w.rings[i] = newFleetRing(32)
		}
	}
	owned := func(g int) bool { return g >= lo && g < hi }

	// build wires one entity: port → per-entity seeded fault wrapper (lean
	// RNG: 8 bytes of state instead of math/rand's ~5 KB table) → reliable
	// endpoint, plus its periodic flush tick and end-of-window calm, all on
	// the pooled Schedule path.
	build := func(g int, idx int32, tickPhase time.Duration) *transport.Endpoint {
		name := names.entityName(idx)
		sh := w.eng.Shard(g - lo)
		clk := sh.Clock()
		net := faultnet.New(clk, faultnet.Config{
			Seed: fleetEntitySeed(cfg.Seed, name),
			Drop: cfg.Drop, Duplicate: cfg.Duplicate, Corrupt: cfg.Corrupt,
			MaxDelay: cfg.MaxDelay,
			Lean:     true,
			Obs:      cfg.Obs,
		})
		f := net.Wrap(sh.Port(name))
		ep := transport.NewEndpoint(f, store.OpenMemory(), clk, transport.EndpointConfig{
			RetryAfter: cfg.RetryAfter, BootID: "fleet-" + name, Obs: cfg.Obs,
			TraceSeed: cfg.Seed,
		})
		log := w.logs[g-lo]
		var ring *fleetRing
		if w.rings != nil {
			ring = w.rings[g-lo]
		}
		ep.OnMessage(func(from, channel string, payload msg.Value) {
			n := int32(-1)
			if m, ok := payload.(msg.Map); ok {
				if f, ok := m["n"].(float64); ok {
					n = int32(f)
				}
			}
			e := fleetEntryC{
				atMs: int32(clk.Now().Sub(w.start) / time.Millisecond),
				recv: idx, send: names.lookup(from),
				n: n, ch: fleetChanCode(channel),
			}
			log.add(e)
			if ring != nil {
				ring.add(e)
			}
		})
		var tick func()
		tick = func() {
			clk.Schedule(cfg.Step, tick)
			ep.Flush()
		}
		clk.Schedule(tickPhase, tick)
		clk.Schedule(cfg.Window, net.Calm)
		w.endpoints = append(w.endpoints, ep)
		return ep
	}

	collectors := make([]*transport.Endpoint, cfg.Collectors)
	for c := 0; c < cfg.Collectors; c++ {
		if owned(names.collShard(c)) {
			collectors[c] = build(names.collShard(c), names.collIndex(c),
				cfg.Step*time.Duration(1+c%16)/16)
		}
	}

	ng := 0
	for i := 0; i < cfg.Phones; i++ {
		if owned(names.phoneShard(i)) {
			ng++
		}
		if owned(names.collShard(int(names.collOf[i]))) {
			ng++
		}
	}
	w.gens = make([]fleetGen, 0, ng)
	msgGap := cfg.Window / time.Duration(cfg.MessagesPerPhone)
	cmdGap := cfg.Window / time.Duration(cfg.CommandsPerPhone)
	for i := 0; i < cfg.Phones; i++ {
		ci := int(names.collOf[i])
		if owned(names.phoneShard(i)) {
			w.ownedPhones++
			ep := build(names.phoneShard(i), int32(i), cfg.Step*time.Duration(1+i%64)/64)
			// Stagger each phone inside the per-message slot by a hash of its
			// index — same spread at any shard count.
			phase := time.Duration(int64(i)*7919%997) * msgGap / 997
			w.gens = append(w.gens, fleetGen{
				ep: ep, clk: w.eng.Shard(names.phoneShard(i) - lo).Clock(),
				to: names.collName(ci), ch: "upload",
				first: phase, gap: msgGap, total: int32(cfg.MessagesPerPhone),
			})
		}
		if owned(names.collShard(ci)) {
			cphase := time.Duration(int64(i)*104729%997) * cmdGap / 997
			w.gens = append(w.gens, fleetGen{
				ep: collectors[ci], clk: w.eng.Shard(names.collShard(ci) - lo).Clock(),
				to: names.phoneName(i), ch: "cmd",
				first: cphase, gap: cmdGap, total: int32(cfg.CommandsPerPhone),
			})
		}
	}
	// Arm the generators only after the slice stopped growing: fire closures
	// hold pointers into it.
	for k := range w.gens {
		g := &w.gens[k]
		g.fire = g.run
		g.clk.Schedule(g.first, g.fire)
	}
	return w
}

// Fleet runs the sharded parallel fleet scenario in this process. See
// FleetConfig for the knobs; zero-valued fields take the documented defaults.
// For a multi-process split, see FleetMultiproc.
func Fleet(cfg FleetConfig) FleetResult {
	fleetNormalize(&cfg)
	if cfg.Obs != nil {
		// Same contract as the chaos world: alert evaluation happens at
		// deterministic simulated instants (epoch barriers below), and
		// RealTime rules — barrier_stall is wall-clock — are muted so the
		// alert log stays a pure function of the seed at any shard count.
		alerts := cfg.Obs.Alerts()
		alerts.SetDeterministic(true)
		alerts.EnsureDefaultRules()
	}
	heap0 := obs.HeapLiveBytes()
	names := newFleetNames(&cfg)
	w := buildFleetWorld(&cfg, names, 0, cfg.Shards, false)
	buildBytes := heapDelta(heap0)

	expected := cfg.Phones * (cfg.MessagesPerPhone + cfg.CommandsPerPhone)
	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	cpu0 := cpuSeconds()
	wall0 := time.Now()
	// Health sampling rides the epoch barrier: the done callback runs with
	// every shard worker parked, so counter totals are identical across runs
	// and shard counts. Per-epoch sampling would be wasteful (and the engine
	// runs thousands of epochs), so sample on a coarse simulated cadence.
	const obsEvery = 30 * time.Second
	nextObs := w.start.Add(obsEvery)
	stats := w.eng.Run(cfg.Window+cfg.DrainLimit, func(now time.Time) bool {
		delivered := w.delivered()
		if cfg.Obs != nil && !now.Before(nextObs) {
			cfg.Obs.Gauge("outbox_pending").Set(float64(w.pending()))
			cfg.Obs.Sample(now, "fleet")
			for !now.Before(nextObs) {
				nextObs = nextObs.Add(obsEvery)
			}
		}
		return delivered >= expected && w.pending() == 0
	})
	wall := time.Since(wall0)
	cpu := cpuSeconds() - cpu0
	runtime.ReadMemStats(&memAfter)

	seal := fleetSealLog(&cfg, names, w.logs, cfg.KeepLog)
	res := FleetResult{
		Seed: cfg.Seed, Phones: cfg.Phones, Collectors: cfg.Collectors,
		Shards: cfg.Shards, Procs: 1,
		Expected: expected, Delivered: seal.delivered,
		Lost: seal.lost, Duplicated: seal.dup, OutOfOrder: seal.ooo,
		Undrained: w.pending(),
		Epochs:    stats.Epochs, Events: stats.Events,
		FabricMessages: stats.Fabric, CrossShard: stats.CrossShard,
		LogSHA256: seal.sha, Log: seal.log,
	}
	res.SimSeconds = w.eng.Shard(0).Clock().Now().Sub(w.start).Seconds()
	res.WallSeconds = wall.Seconds()
	res.CPUSeconds = cpu
	if res.WallSeconds > 0 {
		res.EventsPerSec = float64(stats.Events) / res.WallSeconds
		res.DeliveriesPerSec = float64(res.Delivered) / res.WallSeconds
	}
	if res.Delivered > 0 {
		res.AllocsPerDelivery = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Delivered)
		res.BytesPerDelivery = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(res.Delivered)
	}
	res.BytesPerPhone = float64(buildBytes) / float64(cfg.Phones)
	if cfg.Obs != nil {
		cfg.Obs.Gauge("fleet_build_heap_bytes").Set(float64(buildBytes))
		cfg.Obs.Gauge("fleet_bytes_per_phone").Set(res.BytesPerPhone)
	}
	return res
}

// heapDelta returns the live-heap growth since the before measurement,
// clamped at zero (a collection can shrink unrelated memory in between).
func heapDelta(before uint64) uint64 {
	after := obs.HeapLiveBytes()
	if after < before {
		return 0
	}
	return after - before
}
