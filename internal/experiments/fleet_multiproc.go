package experiments

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"pogo/internal/fleet"
	"pogo/internal/obs"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// Multi-process fleet: FleetMultiproc forks (or is handed) cfg.Procs worker
// processes, each building and running only one contiguous global shard
// range [lo, hi) of the fleet. Workers meet the coordinator at every epoch
// barrier over a byte-framed pipe protocol; staged cross-process traffic
// rides the same 0xB1 binary envelope codec devices use on the wire
// (transport.AppendWireBatch), so inter-process bytes stay on the audited
// format. Because each worker engine merges sorted(local ∪ inbound) with the
// same (deliver-at, sender, sender-seq) content key a single process sorts
// the global staged set by, a seed yields a byte-identical delivery log at
// any (shards × processes) split — the scenario suite pins exactly that.
//
// Frame format, both directions: [1 type byte][uvarint length][payload].
//
//	'C' coordinator → worker  JSON fleetWorkerBoot (config + shard range)
//	'R' worker → coordinator  empty; the worker's world is built
//	'B' worker → coordinator  barrier: now-offset, delivered, pending,
//	                          then length-prefixed 0xB1 envelopes of
//	                          outbound staged traffic (one per sender run)
//	'M' coordinator → worker  stop byte, then this worker's inbound staged
//	                          traffic as length-prefixed 0xB1 envelopes
//	'L' worker → coordinator  one per local shard: compact delivery log
//	'F' worker → coordinator  JSON fleetWorkerFinal (stats, rusage, heap)
const (
	fleetFrameBoot    = byte('C')
	fleetFrameReady   = byte('R')
	fleetFrameBarrier = byte('B')
	fleetFrameMerge   = byte('M')
	fleetFrameLog     = byte('L')
	fleetFrameFinal   = byte('F')
)

// fleetWorkerEnv marks a process as a fleet worker; MaybeFleetWorker checks
// it before the hosting binary does anything else.
const fleetWorkerEnv = "POGO_FLEET_WORKER"

// fleetWorkerBoot is the 'C' payload.
type fleetWorkerBoot struct {
	Cfg    FleetConfig `json:"cfg"`
	Lo     int         `json:"lo"`
	Hi     int         `json:"hi"`
	Worker int         `json:"worker"`
}

// fleetWorkerFinal is the 'F' payload: everything the coordinator folds into
// the aggregate FleetResult.
type fleetWorkerFinal struct {
	Epochs      int     `json:"epochs"`
	Events      int64   `json:"events"`
	Fabric      int64   `json:"fabric"`
	Cross       int64   `json:"cross"`
	Undrained   int     `json:"undrained"`
	OwnedPhones int     `json:"owned_phones"`
	BuildBytes  uint64  `json:"build_bytes"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	Mallocs     uint64  `json:"mallocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

func fleetAppendUv(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func fleetWriteFrame(w *bufio.Writer, typ byte, payload []byte) error {
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// fleetFrameMax bounds a frame so a corrupted length can't OOM the reader.
// The largest legitimate frames are 100k-phone shard logs (tens of MB).
const fleetFrameMax = 1 << 30

func fleetReadFrame(r *bufio.Reader, want byte) ([]byte, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("fleet ipc: got frame %q, want %q", typ, want)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > fleetFrameMax {
		return nil, fmt.Errorf("fleet ipc: frame %q claims %d bytes", typ, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// fleetStagedCodec converts between fleet.Staged slices and length-prefixed
// 0xB1 envelope runs, reusing its scratch across barriers. Deliver-at
// instants travel as offsets from the barrier instant in the envelope ID
// field (always in (0, Lookahead], so one or two varint bytes).
type fleetStagedCodec struct {
	envBuf []byte
	items  []transport.WireItem
}

func (c *fleetStagedCodec) appendStaged(dst []byte, now time.Time, staged []fleet.Staged) []byte {
	for i := 0; i < len(staged); {
		from := staged[i].From
		c.items = c.items[:0]
		j := i
		for ; j < len(staged) && staged[j].From == from; j++ {
			m := &staged[j]
			c.items = append(c.items, transport.WireItem{
				ID:      uint64(m.At.Sub(now)),
				Seq:     m.Seq,
				Channel: m.To,
				Body:    m.Payload,
			})
		}
		c.envBuf = transport.AppendWireBatch(c.envBuf[:0], from, c.items)
		dst = fleetAppendUv(dst, uint64(len(c.envBuf)))
		dst = append(dst, c.envBuf...)
		i = j
	}
	return dst
}

// decodeStaged parses length-prefixed envelopes appended by appendStaged.
// Payload bytes alias data, which must stay reachable until the messages are
// delivered (the callers pass freshly read frame buffers and let the GC
// decide).
func (c *fleetStagedCodec) decodeStaged(data []byte, now time.Time, dst []fleet.Staged) ([]fleet.Staged, error) {
	for len(data) > 0 {
		n, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < n {
			return nil, fmt.Errorf("fleet ipc: truncated staged envelope")
		}
		frame := data[sz : sz+int(n)]
		data = data[sz+int(n):]
		from, items, err := transport.DecodeWireBatch(frame, c.items[:0])
		if err != nil {
			return nil, fmt.Errorf("fleet ipc: staged envelope: %w", err)
		}
		c.items = items
		for k := range items {
			it := &items[k]
			dst = append(dst, fleet.Staged{
				At:      now.Add(time.Duration(it.ID)),
				From:    from,
				To:      it.Channel,
				Seq:     it.Seq,
				Payload: it.Body,
			})
		}
	}
	return dst, nil
}

// FleetSpawner starts worker number `worker` and returns its pipe ends plus
// a wait function reporting the worker's exit. ExecFleetSpawner re-executes
// the current binary; PipeFleetSpawner runs the worker in-process (for
// tests, including under -race).
type FleetSpawner func(worker int) (in io.WriteCloser, out io.Reader, wait func() error, err error)

// ExecFleetSpawner spawns workers by re-executing the current binary with
// POGO_FLEET_WORKER set. The hosting main (or TestMain) must call
// MaybeFleetWorker before doing anything else.
func ExecFleetSpawner() FleetSpawner {
	return func(worker int) (io.WriteCloser, io.Reader, func() error, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, nil, nil, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), fleetWorkerEnv+"=1")
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, nil, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, nil, err
		}
		return in, out, cmd.Wait, nil
	}
}

// PipeFleetSpawner serves each worker on a goroutine over synchronous pipes:
// the full protocol minus process isolation. Tests use it to exercise the
// multi-process path deterministically under -race.
func PipeFleetSpawner() FleetSpawner {
	return func(worker int) (io.WriteCloser, io.Reader, func() error, error) {
		bootR, bootW := io.Pipe()
		resR, resW := io.Pipe()
		errc := make(chan error, 1)
		go func() {
			err := FleetWorkerServe(bootR, resW)
			if err != nil {
				resW.CloseWithError(err)
				bootR.CloseWithError(err)
			} else {
				resW.Close()
			}
			errc <- err
		}()
		return bootW, resR, func() error { return <-errc }, nil
	}
}

// MaybeFleetWorker turns this process into a fleet worker if it was spawned
// as one (POGO_FLEET_WORKER set): it serves the worker protocol on
// stdin/stdout and exits. Hosting binaries call it first thing in main;
// test packages that drive multi-process fleets call it from TestMain.
func MaybeFleetWorker() {
	if os.Getenv(fleetWorkerEnv) == "" {
		return
	}
	if err := FleetWorkerServe(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pogo fleet worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// fleetRingDump formats a worker's recent-delivery rings for error context.
func fleetRingDump(names *fleetNames, rings []*fleetRing) string {
	var b []byte
	for _, ring := range rings {
		for _, e := range ring.tail() {
			if len(b) > 0 {
				b = append(b, "; "...)
			}
			b = names.appendEntry(b, e)
		}
	}
	if len(b) == 0 {
		return "none"
	}
	return string(b)
}

// FleetWorkerServe runs one worker: read the boot config, build the owned
// shard range, trade staged traffic at every barrier, then stream the
// compact logs and final stats back. It returns once the coordinator stops
// the fleet (or on protocol failure, with recent-delivery context from the
// worker's diagnostic ring).
func FleetWorkerServe(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	payload, err := fleetReadFrame(br, fleetFrameBoot)
	if err != nil {
		return err
	}
	var boot fleetWorkerBoot
	if err := json.Unmarshal(payload, &boot); err != nil {
		return fmt.Errorf("fleet worker boot: %w", err)
	}
	cfg := boot.Cfg
	cfg.Obs = nil
	cfg.KeepLog = false
	fleetNormalize(&cfg)
	if boot.Lo < 0 || boot.Hi > cfg.Shards || boot.Lo >= boot.Hi {
		return fmt.Errorf("fleet worker %d: bad shard range [%d,%d) of %d", boot.Worker, boot.Lo, boot.Hi, cfg.Shards)
	}
	names := newFleetNames(&cfg)
	heap0 := obs.HeapLiveBytes()
	world := buildFleetWorld(&cfg, names, boot.Lo, boot.Hi, true)
	buildBytes := heapDelta(heap0)
	if err := fleetWriteFrame(bw, fleetFrameReady, nil); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	cpu0 := cpuSeconds()
	var codec fleetStagedCodec
	var xerr error
	var encBuf []byte
	var inbound []fleet.Staged
	exchange := func(now time.Time, outbound []fleet.Staged) ([]fleet.Staged, bool) {
		encBuf = encBuf[:0]
		encBuf = fleetAppendUv(encBuf, uint64(now.Sub(world.start)))
		encBuf = fleetAppendUv(encBuf, uint64(world.delivered()))
		encBuf = fleetAppendUv(encBuf, uint64(world.pending()))
		encBuf = codec.appendStaged(encBuf, now, outbound)
		if xerr = fleetWriteFrame(bw, fleetFrameBarrier, encBuf); xerr != nil {
			return nil, true
		}
		if xerr = bw.Flush(); xerr != nil {
			return nil, true
		}
		var mp []byte
		if mp, xerr = fleetReadFrame(br, fleetFrameMerge); xerr != nil {
			return nil, true
		}
		if len(mp) == 0 {
			xerr = fmt.Errorf("fleet ipc: empty merge frame")
			return nil, true
		}
		stop := mp[0] != 0
		inbound = inbound[:0]
		if inbound, xerr = codec.decodeStaged(mp[1:], now, inbound); xerr != nil {
			return nil, true
		}
		return inbound, stop
	}
	stats := world.eng.RunExchanged(cfg.Window+cfg.DrainLimit, exchange, nil)
	if xerr != nil {
		return fmt.Errorf("fleet worker %d shards [%d,%d): %w (recent deliveries: %s)",
			boot.Worker, boot.Lo, boot.Hi, xerr, fleetRingDump(names, world.rings))
	}
	cpu := cpuSeconds() - cpu0
	runtime.ReadMemStats(&ms1)

	for i, l := range world.logs {
		encBuf = encBuf[:0]
		encBuf = fleetAppendUv(encBuf, uint64(boot.Lo+i))
		encBuf = fleetAppendUv(encBuf, uint64(l.n))
		l.each(func(e fleetEntryC) {
			encBuf = fleetAppendUv(encBuf, uint64(uint32(e.atMs)))
			encBuf = fleetAppendUv(encBuf, uint64(uint32(e.recv)))
			encBuf = fleetAppendUv(encBuf, uint64(uint32(e.send)))
			encBuf = fleetAppendUv(encBuf, uint64(uint32(e.n)))
			encBuf = append(encBuf, e.ch)
		})
		if err := fleetWriteFrame(bw, fleetFrameLog, encBuf); err != nil {
			return err
		}
	}
	fin := fleetWorkerFinal{
		Epochs: stats.Epochs, Events: stats.Events,
		Fabric: stats.Fabric, Cross: stats.CrossShard,
		Undrained:   world.pending(),
		OwnedPhones: world.ownedPhones,
		BuildBytes:  buildBytes,
		CPUSeconds:  cpu,
		Mallocs:     ms1.Mallocs - ms0.Mallocs,
		AllocBytes:  ms1.TotalAlloc - ms0.TotalAlloc,
	}
	fj, err := json.Marshal(fin)
	if err != nil {
		return err
	}
	if err := fleetWriteFrame(bw, fleetFrameFinal, fj); err != nil {
		return err
	}
	return bw.Flush()
}

// fleetConn is one worker from the coordinator's side.
type fleetConn struct {
	in     io.WriteCloser
	bw     *bufio.Writer
	br     *bufio.Reader
	wait   func() error
	lo, hi int
}

func (c *fleetConn) kill() {
	if c == nil {
		return
	}
	if c.in != nil {
		c.in.Close()
	}
	if c.wait != nil {
		c.wait()
	}
}

// fleetDecodeLog parses an 'L' frame into (global shard, that shard's log).
func fleetDecodeLog(data []byte) (shard int, l *fleetLog, err error) {
	rd := data
	take := func() uint64 {
		v, sz := binary.Uvarint(rd)
		if sz <= 0 {
			err = fmt.Errorf("fleet ipc: truncated log frame")
			return 0
		}
		rd = rd[sz:]
		return v
	}
	shard = int(take())
	count := int(take())
	if err != nil || count < 0 || count > fleetFrameMax {
		return 0, nil, fmt.Errorf("fleet ipc: bad log frame header")
	}
	entries := make([]fleetEntryC, 0, count)
	for i := 0; i < count; i++ {
		var e fleetEntryC
		e.atMs = int32(uint32(take()))
		e.recv = int32(uint32(take()))
		e.send = int32(uint32(take()))
		e.n = int32(uint32(take()))
		if err != nil {
			return 0, nil, err
		}
		if len(rd) == 0 {
			return 0, nil, fmt.Errorf("fleet ipc: truncated log entry")
		}
		e.ch = rd[0]
		rd = rd[1:]
		entries = append(entries, e)
	}
	return shard, &fleetLog{chunks: [][]fleetEntryC{entries}, n: len(entries)}, nil
}

// FleetMultiproc runs the fleet split over cfg.Procs worker processes, each
// owning one contiguous shard range, and aggregates a FleetResult that is
// field-for-field comparable with Fleet's: same delivery guarantee, same
// content-ordered log hash (pinned identical to the in-process hash by the
// scenario suite), with cpu/heap/alloc figures summed across workers.
// spawn defaults to ExecFleetSpawner.
func FleetMultiproc(cfg FleetConfig, spawn FleetSpawner) (FleetResult, error) {
	fleetNormalize(&cfg)
	if cfg.Procs > cfg.Shards {
		cfg.Procs = cfg.Shards
	}
	if cfg.Procs <= 1 {
		return Fleet(cfg), nil
	}
	if spawn == nil {
		spawn = ExecFleetSpawner()
	}
	procs := cfg.Procs
	cpu0 := cpuSeconds()
	names := newFleetNames(&cfg)
	shardWorker := make([]int, cfg.Shards)
	conns := make([]*fleetConn, procs)
	defer func() {
		for _, c := range conns {
			c.kill()
		}
	}()
	for wk := 0; wk < procs; wk++ {
		lo, hi := wk*cfg.Shards/procs, (wk+1)*cfg.Shards/procs
		for s := lo; s < hi; s++ {
			shardWorker[s] = wk
		}
		in, out, wait, err := spawn(wk)
		if err != nil {
			return FleetResult{}, fmt.Errorf("fleet: spawn worker %d: %w", wk, err)
		}
		c := &fleetConn{in: in, bw: bufio.NewWriterSize(in, 1<<16), br: bufio.NewReaderSize(out, 1<<16), wait: wait, lo: lo, hi: hi}
		conns[wk] = c
		bootCfg := cfg
		bootCfg.Obs = nil
		bootCfg.KeepLog = false
		bj, err := json.Marshal(fleetWorkerBoot{Cfg: bootCfg, Lo: lo, Hi: hi, Worker: wk})
		if err != nil {
			return FleetResult{}, err
		}
		if err := fleetWriteFrame(c.bw, fleetFrameBoot, bj); err != nil {
			return FleetResult{}, fmt.Errorf("fleet: boot worker %d: %w", wk, err)
		}
		if err := c.bw.Flush(); err != nil {
			return FleetResult{}, fmt.Errorf("fleet: boot worker %d: %w", wk, err)
		}
	}
	for wk, c := range conns {
		if _, err := fleetReadFrame(c.br, fleetFrameReady); err != nil {
			return FleetResult{}, fmt.Errorf("fleet: worker %d never became ready: %w", wk, err)
		}
	}

	// Route a destination entity to the worker owning its shard.
	entityWorker := func(idx int32) int {
		if int(idx) < cfg.Phones {
			return shardWorker[names.phoneShard(int(idx))]
		}
		return shardWorker[names.collShard(int(idx)-cfg.Phones)]
	}

	expected := cfg.Phones * (cfg.MessagesPerPhone + cfg.CommandsPerPhone)
	start := vclock.SimEpoch
	endOff := uint64(cfg.Window + cfg.DrainLimit)
	var codec fleetStagedCodec
	var decoded []fleet.Staged
	inbound := make([][]fleet.Staged, procs)
	var mBuf []byte
	var ipcBytes, ipcMsgs int64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wall0 := time.Now()
	var nowOff uint64
	for {
		totDelivered, totPending := 0, 0
		for i := range inbound {
			inbound[i] = inbound[i][:0]
		}
		for wk, c := range conns {
			p, err := fleetReadFrame(c.br, fleetFrameBarrier)
			if err != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d barrier: %w", wk, err)
			}
			rd := p
			var hdr [3]uint64
			for i := range hdr {
				v, sz := binary.Uvarint(rd)
				if sz <= 0 {
					return FleetResult{}, fmt.Errorf("fleet: worker %d: short barrier header", wk)
				}
				hdr[i], rd = v, rd[sz:]
			}
			if wk == 0 {
				nowOff = hdr[0]
			} else if hdr[0] != nowOff {
				return FleetResult{}, fmt.Errorf("fleet: workers disagree on barrier instant (%d vs %d ns)", hdr[0], nowOff)
			}
			totDelivered += int(hdr[1])
			totPending += int(hdr[2])
			now := start.Add(time.Duration(nowOff))
			decoded, err = codec.decodeStaged(rd, now, decoded[:0])
			if err != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d staged: %w", wk, err)
			}
			ipcBytes += int64(len(p))
			ipcMsgs += int64(len(decoded))
			for _, m := range decoded {
				di := names.lookup(m.To)
				if di < 0 {
					continue // unknown destination: dropped, as in-process merge would
				}
				inbound[entityWorker(di)] = append(inbound[entityWorker(di)], m)
			}
		}
		stop := (totDelivered >= expected && totPending == 0) || nowOff >= endOff
		now := start.Add(time.Duration(nowOff))
		for wk, c := range conns {
			mBuf = mBuf[:0]
			if stop {
				mBuf = append(mBuf, 1)
			} else {
				mBuf = append(mBuf, 0)
			}
			mBuf = codec.appendStaged(mBuf, now, inbound[wk])
			if err := fleetWriteFrame(c.bw, fleetFrameMerge, mBuf); err != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d merge: %w", wk, err)
			}
			if err := c.bw.Flush(); err != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d merge: %w", wk, err)
			}
			ipcBytes += int64(len(mBuf))
		}
		if stop {
			break
		}
	}
	wall := time.Since(wall0)
	runtime.ReadMemStats(&ms1)

	logs := make([]*fleetLog, cfg.Shards)
	finals := make([]fleetWorkerFinal, procs)
	for wk, c := range conns {
		for s := c.lo; s < c.hi; s++ {
			p, err := fleetReadFrame(c.br, fleetFrameLog)
			if err != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d log: %w", wk, err)
			}
			g, l, err := fleetDecodeLog(p)
			if err != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d log: %w", wk, err)
			}
			if g < c.lo || g >= c.hi || logs[g] != nil {
				return FleetResult{}, fmt.Errorf("fleet: worker %d sent log for shard %d outside [%d,%d)", wk, g, c.lo, c.hi)
			}
			logs[g] = l
		}
		p, err := fleetReadFrame(c.br, fleetFrameFinal)
		if err != nil {
			return FleetResult{}, fmt.Errorf("fleet: worker %d final: %w", wk, err)
		}
		if err := json.Unmarshal(p, &finals[wk]); err != nil {
			return FleetResult{}, fmt.Errorf("fleet: worker %d final: %w", wk, err)
		}
		c.in.Close()
		if err := c.wait(); err != nil {
			return FleetResult{}, fmt.Errorf("fleet: worker %d exited: %w", wk, err)
		}
		c.wait, c.in = nil, nil
	}

	seal := fleetSealLog(&cfg, names, logs, cfg.KeepLog)
	res := FleetResult{
		Seed: cfg.Seed, Phones: cfg.Phones, Collectors: cfg.Collectors,
		Shards: cfg.Shards, Procs: procs,
		Expected: expected, Delivered: seal.delivered,
		Lost: seal.lost, Duplicated: seal.dup, OutOfOrder: seal.ooo,
		LogSHA256: seal.sha, Log: seal.log,
	}
	var buildBytes, mallocs, allocBytes uint64
	for wk, fin := range finals {
		res.Undrained += fin.Undrained
		res.Events += fin.Events
		res.FabricMessages += fin.Fabric
		res.CrossShard += fin.Cross
		if fin.Epochs > res.Epochs {
			res.Epochs = fin.Epochs
		}
		buildBytes += fin.BuildBytes
		mallocs += fin.Mallocs
		allocBytes += fin.AllocBytes
		res.WorkerCPUSeconds = append(res.WorkerCPUSeconds, fin.CPUSeconds)
		res.CPUSeconds += fin.CPUSeconds
		_ = wk
	}
	mallocs += ms1.Mallocs - ms0.Mallocs
	allocBytes += ms1.TotalAlloc - ms0.TotalAlloc
	res.CPUSeconds += cpuSeconds() - cpu0
	res.SimSeconds = time.Duration(nowOff).Seconds()
	res.WallSeconds = wall.Seconds()
	if res.WallSeconds > 0 {
		res.EventsPerSec = float64(res.Events) / res.WallSeconds
		res.DeliveriesPerSec = float64(res.Delivered) / res.WallSeconds
	}
	if res.Delivered > 0 {
		res.AllocsPerDelivery = float64(mallocs) / float64(res.Delivered)
		res.BytesPerDelivery = float64(allocBytes) / float64(res.Delivered)
	}
	res.BytesPerPhone = float64(buildBytes) / float64(cfg.Phones)
	if cfg.Obs != nil {
		cfg.Obs.Counter("fleet_ipc_bytes_total").Add(ipcBytes)
		cfg.Obs.Counter("fleet_ipc_staged_total").Add(ipcMsgs)
		cfg.Obs.Gauge("fleet_build_heap_bytes").Set(float64(buildBytes))
		cfg.Obs.Gauge("fleet_bytes_per_phone").Set(res.BytesPerPhone)
	}
	return res, nil
}
