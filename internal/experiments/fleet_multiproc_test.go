package experiments

import (
	"strings"
	"testing"
)

// TestFleetMultiprocMatchesInProcess is the multi-process determinism
// regression: splitting the shard range over worker protocol instances must
// reproduce the in-process run byte for byte — same delivery-log hash, same
// exactly-once audit, same epoch count. The pipe spawner runs the full wire
// protocol (boot, barriers with 0xB1 staged envelopes, log streaming) on
// goroutines, so `make check` exercises it under -race.
func TestFleetMultiprocMatchesInProcess(t *testing.T) {
	cfg := smallFleet(7, 60, 4)
	ref := Fleet(cfg)
	if ref.Lost != 0 || ref.Duplicated != 0 || ref.OutOfOrder != 0 || ref.Undrained != 0 {
		t.Fatalf("reference run violated delivery guarantee: %+v", ref)
	}
	for _, procs := range []int{2, 4} {
		mcfg := cfg
		mcfg.Procs = procs
		res, err := FleetMultiproc(mcfg, PipeFleetSpawner())
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
			t.Errorf("procs=%d violated delivery guarantee: lost=%d dup=%d ooo=%d undrained=%d",
				procs, res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
		}
		if res.LogSHA256 != ref.LogSHA256 {
			t.Errorf("procs=%d: log hash %s != in-process hash %s", procs, res.LogSHA256, ref.LogSHA256)
		}
		if res.Delivered != ref.Delivered {
			t.Errorf("procs=%d: delivered %d != in-process %d", procs, res.Delivered, ref.Delivered)
		}
		if res.Epochs != ref.Epochs {
			t.Errorf("procs=%d: epochs %d != in-process %d", procs, res.Epochs, ref.Epochs)
		}
		if res.Events != ref.Events {
			t.Errorf("procs=%d: events %d != in-process %d", procs, res.Events, ref.Events)
		}
		if res.FabricMessages != ref.FabricMessages {
			t.Errorf("procs=%d: fabric %d != in-process %d", procs, res.FabricMessages, ref.FabricMessages)
		}
		if res.Procs != procs {
			t.Errorf("procs=%d: result reports procs=%d", procs, res.Procs)
		}
		if len(res.WorkerCPUSeconds) != procs {
			t.Errorf("procs=%d: %d worker cpu figures", procs, len(res.WorkerCPUSeconds))
		}
	}
}

// TestFleetMultiprocKeepLog: the coordinator materializes the same textual
// log the in-process run would.
func TestFleetMultiprocKeepLog(t *testing.T) {
	cfg := smallFleet(3, 24, 2)
	cfg.KeepLog = true
	ref := Fleet(cfg)
	mcfg := cfg
	mcfg.Procs = 2
	res, err := FleetMultiproc(mcfg, PipeFleetSpawner())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) == 0 || len(res.Log) != len(ref.Log) {
		t.Fatalf("log lengths differ: multiproc %d vs in-process %d", len(res.Log), len(ref.Log))
	}
	if strings.Join(res.Log, "\n") != strings.Join(ref.Log, "\n") {
		t.Error("materialized logs differ between multiproc and in-process runs")
	}
}

// TestFleetBytesPerPhone: the per-device footprint measurement must be
// populated and, at this scale, comfortably under the 100k-phone budget of
// 4 KB/phone the bench gate enforces.
func TestFleetBytesPerPhone(t *testing.T) {
	res := Fleet(smallFleet(1, 256, 4))
	if res.BytesPerPhone <= 0 {
		t.Fatalf("fleet_bytes_per_phone not measured: %v", res.BytesPerPhone)
	}
	// Small worlds amortize fixed costs poorly, so allow generous headroom
	// over the 4 KB budget enforced at 100k phones.
	if res.BytesPerPhone > 64<<10 {
		t.Errorf("fleet_bytes_per_phone = %.0f, absurdly high", res.BytesPerPhone)
	}
	if res.CPUSeconds <= 0 {
		t.Errorf("cpu_seconds not measured: %v", res.CPUSeconds)
	}
}
