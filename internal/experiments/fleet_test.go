package experiments

import (
	"runtime"
	"testing"
	"time"

	"pogo/internal/obs"
)

func smallFleet(seed int64, phones, shards int) FleetConfig {
	cfg := FleetScenario(seed, phones, shards)
	cfg.MessagesPerPhone = 5
	cfg.CommandsPerPhone = 2
	cfg.Window = time.Minute
	cfg.Collectors = 2
	return cfg
}

// TestFleetDeterministicAcrossShardsAndProcs is the full-stack determinism
// regression: the same seed yields zero-loss exactly-once delivery AND a
// byte-identical delivery-log hash whatever the shard count and GOMAXPROCS.
// make check runs it under -race, so it also proves the parallel engine
// keeps the transport/faultnet/obs stack race-clean.
func TestFleetDeterministicAcrossShardsAndProcs(t *testing.T) {
	const phones = 60
	ref := Fleet(smallFleet(7, phones, 1))
	if ref.Lost != 0 || ref.Duplicated != 0 || ref.OutOfOrder != 0 || ref.Undrained != 0 {
		t.Fatalf("reference run violated delivery guarantee: %+v", ref)
	}
	if ref.Delivered != ref.Expected || ref.Expected != phones*(5+2) {
		t.Fatalf("delivered %d of %d expected", ref.Delivered, ref.Expected)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{2, 4} {
			res := Fleet(smallFleet(7, phones, shards))
			if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
				t.Errorf("shards=%d procs=%d violated delivery guarantee: lost=%d dup=%d ooo=%d undrained=%d",
					shards, procs, res.Lost, res.Duplicated, res.OutOfOrder, res.Undrained)
			}
			if res.LogSHA256 != ref.LogSHA256 {
				t.Errorf("shards=%d procs=%d: log hash %s != 1-shard hash %s",
					shards, procs, res.LogSHA256, ref.LogSHA256)
			}
			if res.CrossShard == 0 {
				t.Errorf("shards=%d: no cross-shard traffic recorded", shards)
			}
		}
	}
}

// TestFleetObsInstrumentation checks the engine's counters surface through a
// registry attached to the scenario.
func TestFleetObsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallFleet(3, 20, 2)
	cfg.Obs = reg
	res := Fleet(cfg)
	if res.Lost != 0 || res.Undrained != 0 {
		t.Fatalf("run violated delivery guarantee: %+v", res)
	}
	if got := reg.CounterValue("fleet_epochs_total"); got != int64(res.Epochs) || got == 0 {
		t.Errorf("fleet_epochs_total = %d, result says %d", got, res.Epochs)
	}
	if got := reg.CounterValue("fleet_fabric_messages_total"); got != res.FabricMessages || got == 0 {
		t.Errorf("fleet_fabric_messages_total = %d, result says %d", got, res.FabricMessages)
	}
	if got := reg.CounterValue("fleet_cross_shard_messages_total"); got != res.CrossShard || got == 0 {
		t.Errorf("fleet_cross_shard_messages_total = %d, result says %d", got, res.CrossShard)
	}
}
