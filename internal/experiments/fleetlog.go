package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"math/bits"
	"slices"
	"strconv"
)

// The fleet's delivery log used to be one fleetEntry (two string headers, an
// interface-free but pointer-bearing struct) plus one formatted line per
// delivery. At 100k phones that is ~2.3M deliveries: the strings alone cost
// more than the simulated devices. The compact form below stores a delivery
// in 20 bytes — entity names become indexes into fleetNames, channels become
// one-byte codes, instants become milliseconds-since-start — and the log is
// chunked so growth never copies, and so a worker process can stream chunks
// to the coordinator without materializing text. Lines are only formatted
// when a caller asks for the log (KeepLog) or while hashing.

// fleetEntryC is one application-level delivery in compact form. recv/send
// index fleetNames; -1 means unknown (never produced by the fleet workload,
// tolerated for robustness).
type fleetEntryC struct {
	atMs int32 // delivery instant, ms since simulation start (truncated)
	recv int32
	send int32
	n    int32 // payload sequence number, -1 if the payload was not ours
	ch   uint8 // fleetChan* code
}

const (
	fleetChanUpload = uint8(0)
	fleetChanCmd    = uint8(1)
	fleetChanOther  = uint8(0xff)
)

func fleetChanCode(ch string) uint8 {
	switch ch {
	case "upload":
		return fleetChanUpload
	case "cmd":
		return fleetChanCmd
	}
	return fleetChanOther
}

func fleetChanName(ch uint8) string {
	switch ch {
	case fleetChanUpload:
		return "upload"
	case fleetChanCmd:
		return "cmd"
	}
	return "?"
}

// fleetChanSortKey orders channel codes the way the textual log sorted
// channel names: "cmd" < "upload".
func fleetChanSortKey(ch uint8) uint8 {
	switch ch {
	case fleetChanCmd:
		return 0
	case fleetChanUpload:
		return 1
	}
	return 0xff
}

// fleetLogChunk caps a log chunk at 16k entries (~320 KB). Early chunks are
// smaller so tiny scenario worlds don't pay 320 KB per shard.
const fleetLogChunk = 1 << 14

// fleetLog is one shard's delivery log: an append-only chunked slice of
// compact entries. Only the owning shard appends (delivery handlers run on
// the shard's worker); readers run at barriers or after the run.
type fleetLog struct {
	chunks [][]fleetEntryC
	n      int
}

func (l *fleetLog) add(e fleetEntryC) {
	k := len(l.chunks) - 1
	if k < 0 || len(l.chunks[k]) == cap(l.chunks[k]) {
		size := fleetLogChunk
		if k < 7 {
			size = 64 << uint(k+1)
		}
		l.chunks = append(l.chunks, make([]fleetEntryC, 0, size))
		k++
	}
	l.chunks[k] = append(l.chunks[k], e)
	l.n++
}

// each visits entries in append order.
func (l *fleetLog) each(fn func(fleetEntryC)) {
	for _, c := range l.chunks {
		for _, e := range c {
			fn(e)
		}
	}
}

// fleetRing is a fixed-size ring of the most recent deliveries. Multi-process
// workers keep one so a protocol failure can be reported with the worker's
// recent delivery context without retaining an unbounded log copy.
type fleetRing struct {
	buf []fleetEntryC
	n   int // total entries ever added
}

func newFleetRing(size int) *fleetRing { return &fleetRing{buf: make([]fleetEntryC, size)} }

func (r *fleetRing) add(e fleetEntryC) {
	r.buf[r.n%len(r.buf)] = e
	r.n++
}

// tail returns the retained entries, oldest first.
func (r *fleetRing) tail() []fleetEntryC {
	if r.n <= len(r.buf) {
		return r.buf[:r.n]
	}
	out := make([]fleetEntryC, 0, len(r.buf))
	for i := r.n - len(r.buf); i < r.n; i++ {
		out = append(out, r.buf[i%len(r.buf)])
	}
	return out
}

// appendEntry formats one compact entry exactly like the historical log line:
// "t=<ms> <receiver> <- <sender> <channel> <n>".
func (fn *fleetNames) appendEntry(dst []byte, e fleetEntryC) []byte {
	dst = append(dst, "t="...)
	dst = strconv.AppendInt(dst, int64(e.atMs), 10)
	dst = append(dst, ' ')
	dst = fn.appendName(dst, e.recv)
	dst = append(dst, " <- "...)
	dst = fn.appendName(dst, e.send)
	dst = append(dst, ' ')
	dst = append(dst, fleetChanName(e.ch)...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(e.n), 10)
	return dst
}

func (fn *fleetNames) appendName(dst []byte, i int32) []byte {
	if i >= 0 && int(i) < len(fn.names) {
		return append(dst, fn.names[i]...)
	}
	return append(dst, '?')
}

// fleetAudit checks every (receiver, sender, channel) stream for exactly-once
// FIFO delivery of 0..n-1 over bitmaps instead of per-stream maps: two bits
// arrays sized phones × messages, scanned in per-shard arrival order (each
// stream's receiver lives on one shard, so shard order preserves per-stream
// FIFO order). Entries that do not belong to a known stream are ignored, as
// the map-based audit ignored them.
func fleetAudit(cfg *FleetConfig, fn *fleetNames, logs []*fleetLog) (lost, dup, ooo int) {
	phones := cfg.Phones
	upWant, cmdWant := cfg.MessagesPerPhone, cfg.CommandsPerPhone
	upWords := (upWant + 63) / 64
	cmdWords := (cmdWant + 63) / 64
	upBits := make([]uint64, phones*upWords)
	cmdBits := make([]uint64, phones*cmdWords)
	upLast := make([]int32, phones)
	cmdLast := make([]int32, phones)
	for i := range upLast {
		upLast[i], cmdLast[i] = -1, -1
	}
	upOOO := make([]bool, phones)
	cmdOOO := make([]bool, phones)

	mark := func(set []uint64, words, p int, n int32) bool {
		w := &set[p*words+int(n)/64]
		b := uint64(1) << (uint(n) % 64)
		if *w&b != 0 {
			return true
		}
		*w |= b
		return false
	}
	for _, l := range logs {
		l.each(func(e fleetEntryC) {
			switch e.ch {
			case fleetChanUpload:
				p := int(e.send)
				if p < 0 || p >= phones || e.n < 0 || int(e.n) >= upWant {
					return
				}
				if int(e.recv) != phones+int(fn.collOf[p]) {
					return // not the stream this phone uploads on
				}
				if mark(upBits, upWords, p, e.n) {
					dup++
				}
				if e.n < upLast[p] {
					if !upOOO[p] {
						upOOO[p] = true
						ooo++
					}
				} else {
					upLast[p] = e.n
				}
			case fleetChanCmd:
				p := int(e.recv)
				if p < 0 || p >= phones || e.n < 0 || int(e.n) >= cmdWant {
					return
				}
				if int(e.send) != phones+int(fn.collOf[p]) {
					return
				}
				if mark(cmdBits, cmdWords, p, e.n) {
					dup++
				}
				if e.n < cmdLast[p] {
					if !cmdOOO[p] {
						cmdOOO[p] = true
						ooo++
					}
				} else {
					cmdLast[p] = e.n
				}
			}
		})
	}
	set := 0
	for _, w := range upBits {
		set += bits.OnesCount64(w)
	}
	for _, w := range cmdBits {
		set += bits.OnesCount64(w)
	}
	lost = phones*upWant + phones*cmdWant - set
	return lost, dup, ooo
}

// fleetSeal is the post-run reduction of the per-shard logs: the audit
// verdict, the content-ordered log hash, and (only if asked) the textual log.
type fleetSeal struct {
	delivered      int
	lost, dup, ooo int
	sha            string
	log            []string
}

// fleetSealLog merges the per-shard logs (global shard order), audits them,
// sorts by the shard-layout-independent content key and hashes the formatted
// lines through a streaming SHA-256. The sort key — (ms, receiver, sender,
// channel, n), names compared lexicographically via the precomputed rank
// table — is unique because delivery is exactly-once per stream, so the
// sealed log is a pure function of the seed at any (shards × processes)
// split.
func fleetSealLog(cfg *FleetConfig, fn *fleetNames, logs []*fleetLog, keep bool) fleetSeal {
	var s fleetSeal
	s.lost, s.dup, s.ooo = fleetAudit(cfg, fn, logs)
	total := 0
	for _, l := range logs {
		total += l.n
	}
	s.delivered = total
	entries := make([]fleetEntryC, 0, total)
	for _, l := range logs {
		l.each(func(e fleetEntryC) { entries = append(entries, e) })
	}
	slices.SortFunc(entries, func(a, b fleetEntryC) int {
		if a.atMs != b.atMs {
			if a.atMs < b.atMs {
				return -1
			}
			return 1
		}
		if ra, rb := fn.rankOf(a.recv), fn.rankOf(b.recv); ra != rb {
			return int(ra) - int(rb)
		}
		if ra, rb := fn.rankOf(a.send), fn.rankOf(b.send); ra != rb {
			return int(ra) - int(rb)
		}
		if ka, kb := fleetChanSortKey(a.ch), fleetChanSortKey(b.ch); ka != kb {
			return int(ka) - int(kb)
		}
		if a.n < b.n {
			return -1
		}
		if a.n > b.n {
			return 1
		}
		return 0
	})
	h := sha256.New()
	var buf []byte
	if keep {
		s.log = make([]string, 0, total)
	}
	for i, e := range entries {
		buf = fn.appendEntry(buf[:0], e)
		if i > 0 {
			h.Write([]byte{'\n'})
		}
		h.Write(buf)
		if keep {
			s.log = append(s.log, string(buf))
		}
	}
	s.sha = hex.EncodeToString(h.Sum(nil))
	return s
}
