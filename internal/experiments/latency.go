package experiments

import (
	"pogo/internal/obs"
)

// LatencyResult reports the per-topic delivery-latency SLO quantiles of one
// chaos scenario, measured end to end on the causal trace spans: the clock
// starts at the sender's enqueue hop and stops at the receiver's deliver hop,
// both on the simulated clock, so every figure is a pure function of the
// seed and exactly reproducible.
type LatencyResult struct {
	Scenario  string             `json:"scenario"`
	Seed      int64              `json:"seed"`
	Phones    int                `json:"phones"`
	SpanHops  int                `json:"span_hops"`
	SpanDrops uint64             `json:"span_drops"`
	Topics    []obs.TopicLatency `json:"topics"`
}

// Latency runs the chaos scenario matrix with causal tracing attached and
// returns each scenario's per-topic latency quantiles. The delivery audit
// still applies: a scenario that loses or duplicates traffic fails the run
// (second return value is that scenario's ChaosResult for diagnosis).
func Latency(seed int64, phones int) ([]LatencyResult, []ChaosResult) {
	var out []LatencyResult
	var runs []ChaosResult
	for _, sc := range ChaosScenarios(seed) {
		reg := obs.NewRegistry()
		sc.Config.Phones = phones
		sc.Config.Obs = reg
		res := Chaos(sc.Name, sc.Config)
		runs = append(runs, res)
		out = append(out, LatencyResult{
			Scenario:  sc.Name,
			Seed:      seed,
			Phones:    res.Phones,
			SpanHops:  reg.Spans().Len(),
			SpanDrops: reg.Spans().Dropped(),
			Topics:    obs.LatencyReport(reg),
		})
	}
	return out, runs
}
