package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pogo/internal/android"
	"pogo/internal/cluster"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/env"
	"pogo/internal/geo"
	"pogo/internal/msg"
	"pogo/internal/obs"
	"pogo/internal/pubsub"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// FaultKind classifies the deployment incidents of §5.3.
type FaultKind int

// Fault kinds.
const (
	// FaultReboot power-cycles the phone: the node goes down for two
	// minutes and comes back with fresh processes (scripts redeployed via
	// @hello; in-memory state lost; frozen state survives when enabled).
	FaultReboot FaultKind = iota + 1
	// FaultOffline disables data connectivity between At and Until (user
	// 2a's roaming trip, user 3's broken 3G) — scanning continues, messages
	// buffer and age out after 24 h.
	FaultOffline
	// FaultScriptUpdate redeploys clustering.js with a new version marker,
	// restarting it mid-dwell (the paper's "when we uploaded a new version
	// of the script").
	FaultScriptUpdate
)

// Fault is one scheduled incident.
type Fault struct {
	Kind  FaultKind
	At    time.Duration // offset from session start
	Until time.Duration // for FaultOffline
}

// SessionConfig describes one user session of the deployment.
type SessionConfig struct {
	User     string
	DeviceID string
	// StartOffset delays the session start within the experiment (user 2b
	// begins when 2a's phone is replaced).
	StartOffset time.Duration
	Duration    time.Duration
	Seed        int64
	// WifiOnly models user 7 (no mobile internet): connectivity exists only
	// while dwelling at a place with Wi-Fi.
	WifiOnly bool
	Faults   []Fault
}

// Table4Config drives the whole experiment.
type Table4Config struct {
	Seed int64
	// Days is the experiment length; the paper ran 24.
	Days int
	// FreezeThaw enables persistent script state. The as-deployed paper
	// version did NOT have it (it was added afterwards, §5.3); disable to
	// reproduce the paper's match percentages, enable for the ablation.
	FreezeThaw bool
	// Sessions overrides the default 9-session roster (tests use fewer).
	Sessions []SessionConfig
	// WorkDir hosts the durable outbox files; defaults to a temp dir.
	WorkDir string
	// Obs, when non-nil, instruments every session's nodes into this
	// registry. Device charges land under the session's DeviceID entity; the
	// collector's "clusters" channel row accumulates the payload bytes that
	// actually crossed the network, and a counterfactual
	// (DeviceID, "scan.js", "wifi-scan-raw") row accumulates what shipping
	// raw scans would have cost — the two sides of the §5.3 reduction.
	Obs *obs.Registry
}

// DefaultSessions builds the paper's 9 sessions (8 users; user 2 split into
// 2a/2b when the phone was swapped).
func DefaultSessions(days int) []SessionConfig {
	d := 24 * time.Hour
	full := time.Duration(days) * d
	frac := func(num, den int) time.Duration {
		return full * time.Duration(num) / time.Duration(den)
	}
	return []SessionConfig{
		{User: "User 1", DeviceID: "dev1", Duration: full, Seed: 101,
			Faults: []Fault{{Kind: FaultReboot, At: frac(1, 3)}, {Kind: FaultScriptUpdate, At: frac(1, 2)}}},
		// User 2a: own phone, trip abroad with data roaming off; session
		// ends when the phone is replaced.
		{User: "User 2a", DeviceID: "dev2a", Duration: frac(8, 24), Seed: 102,
			Faults: []Fault{{Kind: FaultOffline, At: frac(4, 24), Until: frac(7, 24)}}},
		{User: "User 2b", DeviceID: "dev2b", StartOffset: frac(8, 24), Duration: frac(5, 24), Seed: 102,
			Faults: []Fault{{Kind: FaultReboot, At: frac(2, 24)}}},
		// User 3: broken 3G for two days; many reboots.
		{User: "User 3", DeviceID: "dev3", Duration: full, Seed: 103,
			Faults: []Fault{
				{Kind: FaultOffline, At: frac(10, 24), Until: frac(12, 24)},
				{Kind: FaultReboot, At: frac(5, 24)}, {Kind: FaultReboot, At: frac(15, 24)},
				{Kind: FaultReboot, At: frac(20, 24)}, {Kind: FaultScriptUpdate, At: frac(1, 2)},
			}},
		{User: "User 4", DeviceID: "dev4", Duration: full, Seed: 104,
			Faults: []Fault{{Kind: FaultReboot, At: frac(2, 5)}, {Kind: FaultScriptUpdate, At: frac(1, 2)}}},
		{User: "User 5", DeviceID: "dev5", Duration: full, Seed: 105,
			Faults: []Fault{{Kind: FaultScriptUpdate, At: frac(1, 2)}}},
		{User: "User 6", DeviceID: "dev6", Duration: full, Seed: 106,
			Faults: []Fault{{Kind: FaultReboot, At: frac(1, 4)}, {Kind: FaultReboot, At: frac(3, 4)},
				{Kind: FaultScriptUpdate, At: frac(1, 2)}}},
		// User 7: Wi-Fi offload only.
		{User: "User 7", DeviceID: "dev7", Duration: full, Seed: 107, WifiOnly: true,
			Faults: []Fault{{Kind: FaultScriptUpdate, At: frac(1, 2)}}},
		{User: "User 8", DeviceID: "dev8", Duration: full, Seed: 108,
			Faults: []Fault{{Kind: FaultReboot, At: frac(3, 5)}, {Kind: FaultScriptUpdate, At: frac(1, 2)}}},
	}
}

// SessionResult is one Table 4 row.
type SessionResult struct {
	User         string
	Scans        int
	RawBytes     int64
	Locations    int
	ClusterBytes int64
	MatchPct     float64
	PartialPct   float64
}

// Table4Result aggregates the experiment.
type Table4Result struct {
	Rows []SessionResult
	// ReductionPct is the §5.3 headline: how much transfer volume on-line
	// clustering saved versus shipping raw scans.
	ReductionPct float64
	TotalScans   int
	TotalPlaces  int
}

// Table4 reruns the §5.3 deployment on the synthetic world.
func Table4(cfg Table4Config) (Table4Result, error) {
	if cfg.Days == 0 {
		cfg.Days = 24
	}
	if cfg.Sessions == nil {
		cfg.Sessions = DefaultSessions(cfg.Days)
	}
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "pogo-table4-")
		if err != nil {
			return Table4Result{}, err
		}
		defer os.RemoveAll(dir)
		cfg.WorkDir = dir
	}
	world := env.NewWorld(cfg.Seed + 1)

	var out Table4Result
	for _, sess := range cfg.Sessions {
		row, err := runSession(world, sess, cfg)
		if err != nil {
			return out, fmt.Errorf("session %s: %w", sess.User, err)
		}
		out.Rows = append(out.Rows, row)
		out.TotalScans += row.Scans
		out.TotalPlaces += row.Locations
	}
	var raw, clustered int64
	for _, r := range out.Rows {
		raw += r.RawBytes
		clustered += r.ClusterBytes
	}
	if raw > 0 {
		out.ReductionPct = 100 * (1 - float64(clustered)/float64(raw))
	}
	return out, nil
}

// rawScan is one ground-truth scan record.
type rawScan struct {
	t   time.Time
	aps []sensors.AccessPoint
}

// runSession simulates one user's deployment session end to end.
func runSession(world *env.World, sess SessionConfig, cfg Table4Config) (SessionResult, error) {
	clk := vclock.NewSimAt(vclock.SimEpoch.Add(sess.StartOffset))
	sb := transport.NewSwitchboard(clk)
	sb.Associate("collector", sess.DeviceID)

	// Collector with the full pipeline: geocoder + collect.js, plus a Go
	// tap on the clusters channel for the Table 4 accounting.
	colPort := sb.Port("collector", nil)
	col, err := core.NewNode(core.Config{
		ID: "collector", Mode: core.CollectorMode, Clock: clk, Messenger: colPort,
		Obs: cfg.Obs,
	})
	if err != nil {
		return SessionResult{}, err
	}
	defer col.Close()
	db := geo.NewDB()
	schedule := world.GenerateSchedule(sess.User, env.ScheduleConfig{
		Start: clk.Now(), Days: cfg.Days, Seed: sess.Seed,
	})
	world.SurveyInto(db)
	svc := geo.NewService(db, col.LocalContext().Broker())
	defer svc.Close()

	var reported []cluster.Cluster
	var clusterBytes int64
	col.LocalContext().Broker().Subscribe("clusters", nil, func(ev pubsub.Event) {
		if ev.Origin == "" {
			return
		}
		c, ok := clusterFromMsg(ev.Message)
		if !ok {
			return
		}
		reported = append(reported, c)
		if b, err := msg.EncodeJSON(ev.Message); err == nil {
			clusterBytes += int64(len(b))
		}
	})

	if err := col.DeployLocal("collect.js", scripts.MustSource("collect.js")); err != nil {
		return SessionResult{}, err
	}
	if err := col.Deploy("scan.js", scripts.MustSource("scan.js")); err != nil {
		return SessionResult{}, err
	}
	if err := col.Deploy("clustering.js", scripts.MustSource("clustering.js")); err != nil {
		return SessionResult{}, err
	}

	// Device-side state that persists across reboots.
	var storage store.KV
	if cfg.FreezeThaw {
		storage = store.NewMemKV()
	} else {
		storage = blackholeKV{} // the as-deployed version had no freeze/thaw
	}
	outboxPath := filepath.Join(cfg.WorkDir, sess.DeviceID+".outbox")
	view := env.NewDeviceView(clk, schedule, sess.Seed+7)

	var raws []rawScan
	var rawBytes int64
	// Counterfactual ledger row: what shipping every raw scan would have
	// cost in uplink payload bytes had clustering.js not run on the phone.
	rawMeter := cfg.Obs.Meter(sess.DeviceID, "scan.js", "wifi-scan-raw")
	view.OnScan = func(t time.Time, aps []sensors.AccessPoint) {
		cp := make([]sensors.AccessPoint, len(aps))
		copy(cp, aps)
		raws = append(raws, rawScan{t: t, aps: cp})
		list := make([]msg.Value, 0, len(aps))
		for _, ap := range aps {
			list = append(list, ap.Message())
		}
		if b, err := msg.EncodeJSON(msg.Map{"aps": list, "timestamp": float64(t.UnixMilli())}); err == nil {
			rawBytes += int64(len(b))
			rawMeter.AddUplink(int64(len(b)))
		}
	}

	dev := &sessionDevice{
		clk: clk, sb: sb, sess: sess, storage: storage,
		outboxPath: outboxPath, view: view, obs: cfg.Obs,
	}
	if err := dev.boot(); err != nil {
		return SessionResult{}, err
	}
	defer dev.shutdown()

	// Schedule faults.
	for _, f := range sess.Faults {
		f := f
		if f.At >= sess.Duration {
			continue
		}
		switch f.Kind {
		case FaultReboot:
			clk.AfterFunc(f.At, func() {
				dev.shutdown()
				clk.AfterFunc(2*time.Minute, func() { dev.boot() })
			})
		case FaultOffline:
			clk.AfterFunc(f.At, func() { dev.forceOffline(true) })
			until := f.Until
			if until <= f.At {
				until = f.At + time.Hour
			}
			clk.AfterFunc(until, func() { dev.forceOffline(false) })
		case FaultScriptUpdate:
			clk.AfterFunc(f.At, func() {
				col.Deploy("clustering.js",
					"// field update v2\n"+scripts.MustSource("clustering.js"))
			})
		}
	}

	// User 7's connectivity follows Wi-Fi availability: check every minute.
	if sess.WifiOnly {
		stop := dev.pollWifiCoverage(schedule)
		defer stop()
	}

	// Run the session. Advance in day-sized chunks to bound event-queue
	// growth in pathological cases.
	remaining := sess.Duration
	for remaining > 0 {
		step := 24 * time.Hour
		if step > remaining {
			step = remaining
		}
		clk.Advance(step)
		remaining -= step
	}
	// Drain in-flight deliveries (final flush happens on the next interval;
	// give it one more period plus transfer time).
	dev.flushNow()
	clk.Advance(10 * time.Minute)

	// Ground truth: the Go reference clustering over the raw SD-card trace,
	// sanitized exactly like scan.js does.
	var truthTrace []cluster.Sample
	for _, r := range raws {
		aps := make(map[string]float64)
		for _, ap := range r.aps {
			if ap.LocallyAdministered {
				continue
			}
			aps[ap.BSSID] = env.NormalizeRSSI(ap.RSSI)
		}
		if len(aps) == 0 {
			continue
		}
		truthTrace = append(truthTrace, cluster.Sample{T: float64(r.t.UnixMilli()), APs: aps})
	}
	truth := cluster.Run(cluster.DefaultParams(), truthTrace, false)

	kinds := cluster.MatchClusters(truth, reported, cluster.DefaultParams().Eps, 1000)
	matchPct, partialPct := cluster.MatchStats(kinds)

	return SessionResult{
		User:         sess.User,
		Scans:        len(raws),
		RawBytes:     rawBytes,
		Locations:    len(reported),
		ClusterBytes: clusterBytes,
		MatchPct:     matchPct,
		PartialPct:   partialPct,
	}, nil
}

// sessionDevice owns the rebootable device-side stack of one session.
type sessionDevice struct {
	clk        *vclock.Sim
	sb         *transport.Switchboard
	sess       SessionConfig
	storage    store.KV
	outboxPath string
	view       *env.DeviceView
	obs        *obs.Registry

	node    *core.Node
	port    *transport.Port
	conn    *radio.Connectivity
	offline bool
	down    bool
}

// boot builds a fresh device stack (first boot and after reboots).
func (d *sessionDevice) boot() error {
	meter := energy.NewMeter(d.clk)
	droid := android.NewDevice(d.clk, meter, android.Config{})
	var conn *radio.Connectivity
	var modem *radio.Modem
	if d.sess.WifiOnly {
		wifi := radio.NewWifi(d.clk, meter)
		conn = radio.NewConnectivity(nil, wifi)
	} else {
		modem = radio.NewModem(d.clk, meter, radio.KPN)
		conn = radio.NewConnectivity(modem, nil)
	}
	if d.offline {
		conn.SetActive(radio.InterfaceNone)
	}
	port := d.sb.Port(d.sess.DeviceID, conn)
	node, err := core.NewNode(core.Config{
		ID: d.sess.DeviceID, Mode: core.DeviceMode, Clock: d.clk, Messenger: port,
		Device: droid, Modem: modem, Storage: d.storage, OutboxPath: d.outboxPath,
		FlushPolicy: core.FlushInterval, FlushEvery: 5 * time.Minute,
		Obs: d.obs,
	})
	if err != nil {
		return err
	}
	node.Sensors().Register(sensors.NewWifiScanSensor(node.Sensors(), d.view, sensors.WifiScanConfig{Meter: meter}))
	node.Sensors().Register(sensors.NewBatterySensor(node.Sensors(), droid))
	d.node, d.port, d.conn = node, port, conn
	d.down = false
	return nil
}

// shutdown tears the device stack down (reboot start / session end).
func (d *sessionDevice) shutdown() {
	if d.down || d.node == nil {
		return
	}
	d.down = true
	d.node.Close()
	d.port.Close()
}

// forceOffline toggles the data-roaming / broken-3G condition.
func (d *sessionDevice) forceOffline(off bool) {
	d.offline = off
	if d.down {
		return
	}
	if off {
		d.conn.SetActive(radio.InterfaceNone)
	} else if d.sess.WifiOnly {
		d.conn.SetActive(radio.InterfaceWifi)
	} else {
		d.conn.SetActive(radio.InterfaceCellular)
	}
}

// flushNow forces a final flush at session end.
func (d *sessionDevice) flushNow() {
	if !d.down && d.node != nil {
		d.node.Flush()
	}
}

// pollWifiCoverage drives user 7's connectivity: online only while dwelling
// somewhere with Wi-Fi.
func (d *sessionDevice) pollWifiCoverage(schedule *env.Schedule) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		if !d.down && !d.offline {
			if schedule.At(d.clk.Now()) != nil {
				d.conn.SetActive(radio.InterfaceWifi)
			} else {
				d.conn.SetActive(radio.InterfaceNone)
			}
		}
		d.clk.AfterFunc(time.Minute, tick)
	}
	d.clk.AfterFunc(time.Minute, tick)
	return func() { stopped = true }
}

// clusterFromMsg parses a clusters-channel message.
func clusterFromMsg(m msg.Map) (cluster.Cluster, bool) {
	enter, ok1 := msg.GetNumber(m, "enter")
	exit, ok2 := msg.GetNumber(m, "exit")
	samples, _ := msg.GetNumber(m, "samples")
	apsRaw, ok3 := m["aps"].(msg.Map)
	if !ok1 || !ok2 || !ok3 {
		return cluster.Cluster{}, false
	}
	aps := make(map[string]float64, len(apsRaw))
	for k, v := range apsRaw {
		if f, ok := v.(float64); ok {
			aps[k] = f
		}
	}
	return cluster.Cluster{Enter: enter, Exit: exit, Samples: int(samples), APs: aps}, true
}

// blackholeKV swallows writes: freeze/thaw becomes a no-op, reproducing the
// as-deployed version of the paper's clustering.js.
type blackholeKV struct{}

var _ store.KV = blackholeKV{}

func (blackholeKV) Put(string, []byte) error  { return nil }
func (blackholeKV) Get(string) ([]byte, bool) { return nil, false }
func (blackholeKV) Delete(string) error       { return nil }

// RenderTable4 prints the rows in the paper's format.
func RenderTable4(res Table4Result) string {
	var sb strings.Builder
	sb.WriteString("Table 4: results of the localization experiment\n")
	fmt.Fprintf(&sb, "%-8s %8s %12s %10s %10s %7s %8s\n",
		"User", "Scans", "Size", "Locations", "Size", "Match", "Partial")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-8s %8d %12d %10d %10d %6.0f%% %7.0f%%\n",
			r.User, r.Scans, r.RawBytes, r.Locations, r.ClusterBytes, r.MatchPct, r.PartialPct)
	}
	fmt.Fprintf(&sb, "total: %d scans, %d locations; data reduced by %.1f%% via on-line clustering\n",
		res.TotalScans, res.TotalPlaces, res.ReductionPct)
	return sb.String()
}

// sortSessionRows keeps row order stable by user label (helper for tests).
func sortSessionRows(rows []SessionResult) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].User < rows[j].User })
}
