// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate, plus the ablations called out
// in DESIGN.md. Each experiment returns a typed result with a Render method
// producing the row/series format of the paper.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/obs"
	"pogo/internal/radio"
	"pogo/internal/script/scripts"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// PowerTrialConfig describes one §5.2 power measurement run: a device with
// an e-mail application checking every EmailInterval, with or without Pogo
// reporting battery voltage alongside it.
type PowerTrialConfig struct {
	Carrier       radio.CarrierProfile
	Duration      time.Duration // default 1 h (the paper's trace length)
	EmailInterval time.Duration // default 5 min
	WithPogo      bool
	// Policy applies when WithPogo; default FlushTailSync (§4.7).
	Policy core.FlushPolicy
	// FlushEvery is the period for core.FlushInterval.
	FlushEvery time.Duration
	// RecordTrace captures the power step function (Figure 3).
	RecordTrace bool
	// Log records activity spans (Figure 4).
	Log *android.ActivityLog
	// Obs, when non-nil, instruments both nodes into this registry.
	Obs *obs.Registry
	// ObsDevice is the ledger entity axis this trial's energy, bytes, and
	// time-series samples are booked under; "" means "phone". Table3Obs
	// uses it to keep per-carrier trials apart in one registry while the
	// metric node labels stay "phone"/"collector".
	ObsDevice string
}

func (c PowerTrialConfig) withDefaults() PowerTrialConfig {
	if c.Carrier.Name == "" {
		c.Carrier = radio.KPN
	}
	if c.Duration == 0 {
		c.Duration = time.Hour
	}
	if c.EmailInterval == 0 {
		c.EmailInterval = 5 * time.Minute
	}
	if c.Policy == 0 {
		c.Policy = core.FlushTailSync
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = time.Hour
	}
	if c.ObsDevice == "" {
		c.ObsDevice = "phone"
	}
	return c
}

// PowerTrialResult reports one run's energy accounting.
type PowerTrialResult struct {
	Config      PowerTrialConfig
	Joules      float64
	EmailChecks int
	// RampUps counts modem activations; PogoTails is how many were NOT
	// triggered by the e-mail application — the tails Pogo itself caused.
	RampUps   int
	PogoTails int
	// ReportsDelivered counts battery reports that reached the collector.
	ReportsDelivered int
	// MeanBatchSize is reports per transmission burst (the paper's
	// "batches of five").
	MeanBatchSize float64
	// DeliveryDelayMean is the average enqueue→deliver latency.
	DeliveryDelayMean time.Duration
	// UplinkBytes is the phone's total data-batch payload bytes for the
	// whole run (settle window included), from the transport's own counter.
	UplinkBytes int64
	// Breakdown is the per-component energy split of the measured window.
	Breakdown map[string]float64
	// Trace is the power step function when RecordTrace was set.
	Trace []energy.Sample
	// TraceStart anchors the trace timestamps.
	TraceStart time.Time
}

// RunPowerTrial executes one power measurement in simulated time.
func RunPowerTrial(cfg PowerTrialConfig) PowerTrialResult {
	cfg = cfg.withDefaults()
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)

	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, cfg.Carrier)
	conn := radio.NewConnectivity(modem, nil)

	rampUps := 0
	modem.OnStateChange(func(_, to radio.State, _ time.Time) {
		if to == radio.RampUp {
			rampUps++
		}
	})

	email := android.NewPeriodicApp(clk, droid, modem, cfg.Log)
	email.Interval = cfg.EmailInterval
	email.Start()

	res := PowerTrialResult{Config: cfg}

	var devNode, colNode *core.Node
	var delays []time.Duration
	var burstTimes []time.Time
	if cfg.WithPogo {
		sb.Associate("collector", "phone")
		colPort := sb.Port("collector", nil)
		var err error
		colNode, err = core.NewNode(core.Config{
			ID: "collector", Mode: core.CollectorMode, Clock: clk, Messenger: colPort,
			Obs: cfg.Obs,
		})
		if err != nil {
			panic(err)
		}
		defer colNode.Close()

		devPort := sb.Port("phone", conn)
		devNode, err = core.NewNode(core.Config{
			ID: "phone", Mode: core.DeviceMode, Clock: clk, Messenger: devPort,
			Device: droid, Modem: modem, Storage: store.NewMemKV(),
			FlushPolicy: cfg.Policy, FlushEvery: cfg.FlushEvery,
			Obs: cfg.Obs, ObsEntity: cfg.ObsDevice,
		})
		if err != nil {
			panic(err)
		}
		defer devNode.Close()
		devNode.Sensors().Register(sensors.NewBatterySensor(devNode.Sensors(), droid))

		// Collector side: receive battery reports, measuring latency.
		colNode.LocalContext().Broker().Subscribe("battery-report", nil, nil)
		colNode.DeployLocal("battery-collect.js", scripts.MustSource("battery-collect.js"))
		colNode.Deploy("battery.js", scripts.MustSource("battery.js"))

		if cfg.Log != nil {
			// Record CPU and Pogo transmission activity for Figure 4.
			droid.OnCPUStateChange(func(awake bool, at time.Time) {
				if awake {
					cfg.Log.Begin("cpu", at)
				} else {
					cfg.Log.End("cpu", at)
				}
			})
			if det := devNode.TailDetector(); det != nil {
				det.OnTraffic(func(int64) {
					now := clk.Now()
					cfg.Log.Begin("pogo-tx", now)
					clk.AfterFunc(time.Second, func() { cfg.Log.End("pogo-tx", clk.Now()) })
				})
			}
		}
		colNode.Logs().SetOnAppend(func(logName, line string) {
			if logName != "battery" {
				return
			}
			res.ReportsDelivered++
			now := clk.Now()
			if t, ok := parseReportTimestamp(line); ok {
				delays = append(delays, now.Sub(t))
			}
			if len(burstTimes) == 0 || now.Sub(burstTimes[len(burstTimes)-1]) > 30*time.Second {
				burstTimes = append(burstTimes, now)
			}
		})
	}

	// Let the deployment settle — and its transmission tail die out —
	// before the measured hour begins.
	clk.Advance(3 * time.Minute)
	meter.Reset()
	// Instrument the power sources only now, so the ledger (like the meter)
	// sees nothing but the measured window. The meter skips its "modem"
	// component because the modem instrument books that energy per RRC state.
	var stopObs []func()
	if cfg.Obs != nil {
		stopObs = append(stopObs,
			meter.Instrument(cfg.Obs, cfg.ObsDevice, "modem"),
			modem.Instrument(cfg.Obs, cfg.ObsDevice),
			obs.StartSampling(clk, cfg.Obs, time.Minute, cfg.ObsDevice))
	}
	rampsBefore, checksBefore := rampUps, email.Checks()
	if cfg.RecordTrace {
		meter.StartTrace()
	}
	res.TraceStart = clk.Now()
	clk.Advance(cfg.Duration)

	res.Joules = meter.Energy()
	res.Breakdown = meter.EnergyBreakdown()
	if cfg.RecordTrace {
		res.Trace = meter.StopTrace()
	}
	res.EmailChecks = email.Checks() - checksBefore
	res.RampUps = rampUps - rampsBefore
	res.PogoTails = res.RampUps - res.EmailChecks
	if res.PogoTails < 0 {
		res.PogoTails = 0
	}
	if len(burstTimes) > 0 {
		res.MeanBatchSize = float64(res.ReportsDelivered) / float64(len(burstTimes))
	}
	if len(delays) > 0 {
		var sum time.Duration
		for _, d := range delays {
			sum += d
		}
		res.DeliveryDelayMean = sum / time.Duration(len(delays))
	}
	if devNode != nil {
		res.UplinkBytes = devNode.Endpoint().Stats().BytesSent
	}
	if cfg.Obs != nil {
		cfg.Obs.Collect() // book the window's final energy and usage deltas
		for _, stop := range stopObs {
			stop()
		}
	}
	email.Stop()
	return res
}

// parseReportTimestamp extracts the "t": field of a battery report line.
func parseReportTimestamp(line string) (time.Time, bool) {
	idx := strings.Index(line, `"t":`)
	if idx < 0 {
		return time.Time{}, false
	}
	rest := line[idx+4:]
	end := strings.IndexAny(rest, ",}")
	if end < 0 {
		return time.Time{}, false
	}
	var ms float64
	if _, err := fmt.Sscanf(strings.TrimSpace(rest[:end]), "%f", &ms); err != nil {
		return time.Time{}, false
	}
	return time.UnixMilli(int64(ms)).UTC(), true
}

// Table3Row is one carrier's with/without-Pogo comparison.
type Table3Row struct {
	Carrier     string
	WithoutPogo float64 // J over the measured hour
	WithPogo    float64
	IncreasePct float64
	PogoTails   int // modem activations caused by Pogo itself (0 = perfect sync)
	BatchSize   float64
	UplinkBytes int64 // phone uplink payload bytes over the whole with-Pogo run
}

// Table3 reruns the §5.2 experiment across the three carriers.
func Table3() []Table3Row { return Table3Obs(nil) }

// Table3Obs is Table3 with every trial instrumented into reg (the registry
// accumulates across carriers: the phone's uplink-bytes counter ends at the
// sum of the rows' UplinkBytes). Each trial's ledger charges land under
// their own entity — "<carrier>/base" and "<carrier>/pogo" — so the table
// can be regenerated from the accounting alone. reg may be nil.
func Table3Obs(reg *obs.Registry) []Table3Row {
	rows := make([]Table3Row, 0, 3)
	for _, carrier := range radio.Carriers() {
		tag := strings.ToLower(carrier.Name)
		base := RunPowerTrial(PowerTrialConfig{Carrier: carrier, Obs: reg,
			ObsDevice: tag + "/base"})
		with := RunPowerTrial(PowerTrialConfig{Carrier: carrier, WithPogo: true, Obs: reg,
			ObsDevice: tag + "/pogo"})
		rows = append(rows, Table3Row{
			Carrier:     carrier.Name,
			WithoutPogo: base.Joules,
			WithPogo:    with.Joules,
			IncreasePct: 100 * (with.Joules - base.Joules) / base.Joules,
			PogoTails:   with.PogoTails,
			BatchSize:   with.MeanBatchSize,
			UplinkBytes: with.UplinkBytes,
		})
	}
	return rows
}

// RenderTable3 prints the rows in the paper's format.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: power consumption with- and without Pogo (1 h, e-mail every 5 min,\n")
	sb.WriteString("battery sampled 1/min, tail-synchronized transmission)\n")
	fmt.Fprintf(&sb, "%-10s %14s %12s %10s %10s %8s\n",
		"Carrier", "Without Pogo", "With Pogo", "Increase", "PogoTails", "Batch")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.2f J %10.2f J %9.2f%% %10d %8.1f\n",
			r.Carrier, r.WithoutPogo, r.WithPogo, r.IncreasePct, r.PogoTails, r.BatchSize)
	}
	return sb.String()
}

// Figure3Marks are the annotated instants of the tail-energy trace.
type Figure3Marks struct {
	A time.Time // ramp-up starts
	B time.Time // transmission ends (DCH tail begins)
	C time.Time // DCH → FACH
	D time.Time // FACH → idle
}

// Figure3Result is the §4.7 trace: one e-mail check on the KPN network.
type Figure3Result struct {
	Carrier string
	Trace   []energy.Sample
	Start   time.Time
	Marks   Figure3Marks
	// TailEnergy is the B→D joules; ActiveEnergy is A→B.
	TailEnergy   float64
	ActiveEnergy float64
}

// Figure3 records the power trace of a single transmission with its RRC
// marks.
func Figure3(carrier radio.CarrierProfile) Figure3Result {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, carrier)

	res := Figure3Result{Carrier: carrier.Name, Start: clk.Now()}
	modem.OnStateChange(func(_, to radio.State, at time.Time) {
		switch to {
		case radio.RampUp:
			res.Marks.A = at
		case radio.DCHTail:
			res.Marks.B = at
		case radio.FACHTail:
			res.Marks.C = at
		case radio.Idle:
			res.Marks.D = at
		}
	})

	clk.Advance(5 * time.Second) // settle to sleep
	meter.StartTrace()
	droid.SetAlarm(time.Second, func() {
		droid.AcquireWakeLock("email")
		modem.Transfer(2048, 12288, func() {
			clk.AfterFunc(300*time.Millisecond, func() { droid.ReleaseWakeLock("email") })
		})
	})
	clk.Advance(90 * time.Second)
	res.Trace = meter.StopTrace()
	res.ActiveEnergy = energy.TraceEnergy(res.Trace, res.Marks.A, res.Marks.B)
	res.TailEnergy = energy.TraceEnergy(res.Trace, res.Marks.B, res.Marks.D)
	return res
}

// Render prints the Figure 3 trace with the a/b/c/d marks.
func (f Figure3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: tail energy of one transmission on %s\n", f.Carrier)
	fmt.Fprintf(&sb, "a (ramp-up start)  t=%6.2fs\n", f.Marks.A.Sub(f.Start).Seconds())
	fmt.Fprintf(&sb, "b (tx end)         t=%6.2fs\n", f.Marks.B.Sub(f.Start).Seconds())
	fmt.Fprintf(&sb, "c (DCH→FACH)       t=%6.2fs  (b→c = %.1fs)\n",
		f.Marks.C.Sub(f.Start).Seconds(), f.Marks.C.Sub(f.Marks.B).Seconds())
	fmt.Fprintf(&sb, "d (FACH→idle)      t=%6.2fs  (c→d = %.1fs, tail b→d = %.1fs)\n",
		f.Marks.D.Sub(f.Start).Seconds(), f.Marks.D.Sub(f.Marks.C).Seconds(),
		f.Marks.D.Sub(f.Marks.B).Seconds())
	fmt.Fprintf(&sb, "active energy a→b: %.2f J   tail energy b→d: %.2f J (%.0f%% of total)\n",
		f.ActiveEnergy, f.TailEnergy, 100*f.TailEnergy/(f.ActiveEnergy+f.TailEnergy))
	sb.WriteString(energy.RenderTrace(energy.Resample(f.Trace, f.Start, f.Marks.D.Add(5*time.Second), 2*time.Second), f.Start, 50))
	return sb.String()
}

// Figure4Result is the activity timeline of §4.7's Figure 4.
type Figure4Result struct {
	Start time.Time
	End   time.Time
	Spans []android.Span
}

// Figure4 runs Pogo (tail-sync) next to the e-mail app and records when the
// CPU, the e-mail app, and Pogo were active.
func Figure4(duration time.Duration) Figure4Result {
	log := android.NewActivityLog()
	cfg := PowerTrialConfig{
		Carrier: radio.KPN, Duration: duration, WithPogo: true, Log: log,
	}
	res := RunPowerTrial(cfg)
	return Figure4Result{
		Start: res.TraceStart,
		End:   res.TraceStart.Add(duration),
		Spans: log.Spans(),
	}
}

// Render draws the Figure 4 timeline as ASCII rows.
func (f Figure4Result) Render() string {
	names := []string{"cpu", "email", "pogo-tx"}
	width := 100
	total := f.End.Sub(f.Start)
	var sb strings.Builder
	sb.WriteString("Figure 4: Pogo synchronizing with the e-mail application\n")
	for _, name := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range f.Spans {
			if s.Name != name || s.End.Before(f.Start) || s.Start.After(f.End) {
				continue
			}
			from := int(float64(s.Start.Sub(f.Start)) / float64(total) * float64(width))
			to := int(float64(s.End.Sub(f.Start)) / float64(total) * float64(width))
			if from < 0 {
				from = 0
			}
			if to >= width {
				to = width - 1
			}
			for i := from; i <= to; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&sb, "%-8s |%s|\n", name, row)
	}
	fmt.Fprintf(&sb, "          %s → %s\n", f.Start.Format("15:04:05"), f.End.Format("15:04:05"))
	return sb.String()
}
