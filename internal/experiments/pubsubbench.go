package experiments

import (
	"sync/atomic"
	"time"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
)

// PubsubBenchResult is the broker fanout microbenchmark: `pogo-bench -run
// pubsub` records it to BENCH_pubsub.json so regressions in the broker's
// hot path show up as a diff against the committed baseline.
type PubsubBenchResult struct {
	Subscribers         int     `json:"subscribers"`
	Publishes           int     `json:"publishes"`
	Deliveries          int64   `json:"deliveries"`
	NsPerPublish        float64 `json:"ns_per_publish"`
	DeliveriesPerSecond float64 `json:"deliveries_per_second"`
}

// PubsubBench publishes `publishes` messages to a channel with `subscribers`
// active subscriptions and measures wall-clock broker throughput. Delivery
// is synchronous on the publisher's goroutine, so the measurement is the
// full fanout cost including each subscriber's defensive payload clone.
// The delivery counter is atomic: handlers run on whichever goroutine calls
// Publish, and under the parallel fleet engine that can be several shard
// workers sharing one broker.
func PubsubBench(subscribers, publishes int) PubsubBenchResult {
	br := pubsub.New()
	var delivered atomic.Int64
	for i := 0; i < subscribers; i++ {
		br.Subscribe("bench", nil, func(pubsub.Event) { delivered.Add(1) })
	}
	payload := msg.Map{"voltage": 4.1, "level": 0.9, "timestamp": 1.0}

	start := time.Now()
	for i := 0; i < publishes; i++ {
		br.Publish("bench", payload)
	}
	elapsed := time.Since(start)

	res := PubsubBenchResult{
		Subscribers: subscribers,
		Publishes:   publishes,
		Deliveries:  delivered.Load(),
	}
	if publishes > 0 {
		res.NsPerPublish = float64(elapsed.Nanoseconds()) / float64(publishes)
	}
	if elapsed > 0 {
		res.DeliveriesPerSecond = float64(delivered.Load()) / elapsed.Seconds()
	}
	return res
}
