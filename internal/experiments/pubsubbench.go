package experiments

import (
	"runtime"
	"sync/atomic"
	"time"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
)

// PubsubBenchResult is the broker fanout microbenchmark: `pogo-bench -run
// pubsub` records it to BENCH_pubsub.json so regressions in the broker's
// hot path show up as a diff against the committed baseline.
type PubsubBenchResult struct {
	Subscribers         int     `json:"subscribers"`
	Publishes           int     `json:"publishes"`
	Deliveries          int64   `json:"deliveries"`
	NsPerPublish        float64 `json:"ns_per_publish"`
	DeliveriesPerSecond float64 `json:"deliveries_per_second"`
	// AllocsPerPublish / BytesPerPublish are runtime.MemStats deltas over the
	// timed loop. Unlike ns_per_publish they are machine-independent, which is
	// why the bench gate treats them as the hard regression signal.
	AllocsPerPublish float64 `json:"allocs_per_publish"`
	BytesPerPublish  float64 `json:"bytes_per_publish"`
}

// PubsubBench publishes `publishes` messages to a channel with `subscribers`
// active subscriptions and measures wall-clock broker throughput. Delivery
// is synchronous on the publisher's goroutine, so the measurement is the
// full fanout cost: one freeze clone per publish, then the same frozen tree
// shared with every subscriber (copy-on-write replaces the old
// clone-per-subscriber discipline). The delivery counter is atomic: handlers
// run on whichever goroutine calls Publish, and under the parallel fleet
// engine that can be several shard workers sharing one broker.
func PubsubBench(subscribers, publishes int) PubsubBenchResult {
	br := pubsub.New()
	var delivered atomic.Int64
	for i := 0; i < subscribers; i++ {
		br.Subscribe("bench", nil, func(pubsub.Event) { delivered.Add(1) })
	}
	payload := msg.Map{"voltage": 4.1, "level": 0.9, "timestamp": 1.0}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < publishes; i++ {
		br.Publish("bench", payload)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	res := PubsubBenchResult{
		Subscribers: subscribers,
		Publishes:   publishes,
		Deliveries:  delivered.Load(),
	}
	if publishes > 0 {
		res.NsPerPublish = float64(elapsed.Nanoseconds()) / float64(publishes)
		res.AllocsPerPublish = float64(after.Mallocs-before.Mallocs) / float64(publishes)
		res.BytesPerPublish = float64(after.TotalAlloc-before.TotalAlloc) / float64(publishes)
	}
	if elapsed > 0 {
		res.DeliveriesPerSecond = float64(delivered.Load()) / elapsed.Seconds()
	}
	return res
}
