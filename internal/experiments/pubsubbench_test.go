package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
)

// TestPubsubBenchCounts is the basic contract: every publish reaches every
// subscriber exactly once.
func TestPubsubBenchCounts(t *testing.T) {
	res := PubsubBench(7, 11)
	if res.Deliveries != 7*11 {
		t.Errorf("deliveries = %d, want %d", res.Deliveries, 7*11)
	}
	if res.Subscribers != 7 || res.Publishes != 11 {
		t.Errorf("result echo = %d/%d, want 7/11", res.Subscribers, res.Publishes)
	}
}

// TestPubsubConcurrentPublish is the regression for the bench's delivery
// counter: handlers run on whichever goroutine calls Publish, so a broker
// shared across parallel fleet shards fans out from several goroutines at
// once. The counter must be atomic — `make check` runs this under -race,
// which fails on the old plain-int64 increment.
func TestPubsubConcurrentPublish(t *testing.T) {
	const publishers, perPublisher, subscribers = 8, 200, 5
	br := pubsub.New()
	var delivered atomic.Int64
	for i := 0; i < subscribers; i++ {
		br.Subscribe("bench", nil, func(pubsub.Event) { delivered.Add(1) })
	}
	payload := msg.Map{"n": 1.0}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				br.Publish("bench", payload)
			}
		}()
	}
	wg.Wait()
	if want := int64(publishers * perPublisher * subscribers); delivered.Load() != want {
		t.Errorf("deliveries = %d, want %d", delivered.Load(), want)
	}
}
