//go:build !unix

package experiments

// cpuSeconds is unavailable off unix; results report 0, which consumers
// treat as "not measured".
func cpuSeconds() float64 { return 0 }
