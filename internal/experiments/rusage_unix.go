//go:build unix

package experiments

import (
	"syscall"
	"time"
)

// cpuSeconds returns this process's cumulative user+system CPU time. Deltas
// around a run attribute the work wall-clock cannot: on a box with fewer
// cores than shards the speedup is flat while cpu_seconds still shows every
// process burning its share.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return (time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())).Seconds()
}
