package experiments

import (
	"fmt"
	"strings"

	"pogo/internal/script/scripts"
)

// Table2Row is one script's complexity entry.
type Table2Row struct {
	App  string
	File string
	SLOC int
	Size int // bytes
}

// Table2 counts source lines of code and byte sizes of the bundled Pogo
// applications, as §5.1 does for the localization example and RogueFinder.
func Table2() ([]Table2Row, error) {
	apps := []struct {
		app   string
		files []string
	}{
		{"Localization example", []string{"scan.js", "clustering.js", "collect.js"}},
		{"RogueFinder", []string{"roguefinder.js", "roguefinder-collect.js"}},
	}
	var rows []Table2Row
	for _, a := range apps {
		for _, f := range a.files {
			src, err := scripts.Source(f)
			if err != nil {
				return nil, err
			}
			size, err := scripts.Size(f)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{App: a.app, File: f, SLOC: scripts.SLOC(src), Size: size})
		}
	}
	return rows, nil
}

// RenderTable2 prints the rows with per-application totals, mirroring the
// paper's layout.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: code complexity for Pogo applications\n")
	fmt.Fprintf(&sb, "%-22s %-24s %6s %8s\n", "Application", "File", "SLOC", "Size")
	app := ""
	sloc, size := 0, 0
	flush := func() {
		if app != "" {
			fmt.Fprintf(&sb, "%-22s %-24s %6d %8d\n", "", "total", sloc, size)
		}
		sloc, size = 0, 0
	}
	for _, r := range rows {
		if r.App != app {
			flush()
			app = r.App
			fmt.Fprintf(&sb, "%-22s %-24s %6d %8d\n", r.App, r.File, r.SLOC, r.Size)
		} else {
			fmt.Fprintf(&sb, "%-22s %-24s %6d %8d\n", "", r.File, r.SLOC, r.Size)
		}
		sloc += r.SLOC
		size += r.Size
	}
	flush()
	return sb.String()
}
