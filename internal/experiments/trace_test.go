package experiments

import (
	"bytes"
	"testing"

	"pogo/internal/obs"
)

// TestChaosLogUnchangedByTracing is the observer-effect regression: trace IDs
// are assigned and carried on the wire whether or not a registry is watching,
// so attaching causal tracing must not perturb a single byte of the delivery
// log. (The failure mode it guards: wire length feeding faultnet's
// rejection-sampled corruption RNG, so a "harmless" observer shifts every
// subsequent fault draw.)
func TestChaosLogUnchangedByTracing(t *testing.T) {
	cfg := small(ChaosScenarios(42)[2].Config) // heavy: churn + partitions + all faults
	off := Chaos("heavy", cfg)

	cfg.Obs = obs.NewRegistry()
	on := Chaos("heavy", cfg)
	if off.LogSHA256 != on.LogSHA256 {
		t.Fatalf("tracing changed the delivery log: off=%s on=%s", off.LogSHA256, on.LogSHA256)
	}
	if spans := cfg.Obs.Spans(); spans.Len() == 0 {
		t.Fatal("traced run recorded no span hops")
	}
	if rep := obs.LatencyReport(cfg.Obs); len(rep) == 0 {
		t.Fatal("traced run recorded no delivery-latency histograms")
	}
}

// traceExport renders a small fleet run's span store as trace JSON.
func traceExport(t *testing.T, seed int64, phones, shards int) ([]byte, *obs.Registry, FleetResult) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := smallFleet(seed, phones, shards)
	cfg.Obs = reg
	res := Fleet(cfg)
	if res.Lost != 0 || res.Duplicated != 0 || res.OutOfOrder != 0 || res.Undrained != 0 {
		t.Fatalf("shards=%d violated delivery guarantee: %+v", shards, res)
	}
	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, reg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reg, res
}

// TestFleetTraceDeterministicAcrossShards: the exported trace.json — every
// hop of every message's causal path, with simulated-clock timestamps — is
// byte-identical at 1, 2, and 4 shards. Shard workers race to record hops,
// but the export is a pure function of the hop set, so the layout cannot
// leak through. Valid only while nothing was evicted; the test pins that
// precondition.
func TestFleetTraceDeterministicAcrossShards(t *testing.T) {
	const seed, phones = 7, 60
	ref, refReg, refRes := traceExport(t, seed, phones, 1)
	if refReg.Spans().Dropped() != 0 {
		t.Fatalf("span ring overflowed (%d dropped); shrink the scenario", refReg.Spans().Dropped())
	}
	if refReg.Spans().Len() == 0 {
		t.Fatal("no span hops recorded")
	}
	for _, shards := range []int{2, 4} {
		got, reg, res := traceExport(t, seed, phones, shards)
		if reg.Spans().Dropped() != 0 {
			t.Fatalf("shards=%d: span ring overflowed", shards)
		}
		if res.LogSHA256 != refRes.LogSHA256 {
			t.Errorf("shards=%d: delivery log diverged", shards)
		}
		if !bytes.Equal(ref, got) {
			t.Errorf("shards=%d: trace.json differs from 1-shard export (%d vs %d bytes)",
				shards, len(got), len(ref))
		}
	}
}

// TestLatencyDeterministic: the SLO quantiles are a pure function of the
// seed (they are read off simulated-clock span timestamps).
func TestLatencyDeterministic(t *testing.T) {
	run := func() []LatencyResult {
		var out []LatencyResult
		for _, sc := range ChaosScenarios(5)[:1] { // light only: keep the test quick
			reg := obs.NewRegistry()
			cfg := small(sc.Config)
			cfg.Obs = reg
			res := Chaos(sc.Name, cfg)
			if res.Lost != 0 || res.Undrained != 0 {
				t.Fatalf("%s violated delivery guarantee: %+v", sc.Name, res)
			}
			out = append(out, LatencyResult{Scenario: sc.Name, Topics: obs.LatencyReport(reg)})
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("scenario counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Topics) == 0 {
			t.Fatalf("%s measured no topics", a[i].Scenario)
		}
		for j, ta := range a[i].Topics {
			tb := b[i].Topics[j]
			if ta != tb {
				t.Errorf("%s topic %s drifted between identical runs: %+v vs %+v",
					a[i].Scenario, ta.Channel, ta, tb)
			}
		}
	}
}
