// Package faultnet is Pogo's deterministic fault-injection network layer.
//
// The paper's end-to-end acknowledgement scheme (§4.6) exists because real
// deployments lose messages constantly: TCP sessions go stale when phones hop
// between wireless interfaces, switchboard deliveries race reconnects, and
// phones churn on and off the network for hours. This package turns those
// failure modes into a composable, *seeded* wrapper around any messenger, so
// robustness tests and the chaos harness can replay the exact same disaster
// from a single int64.
//
// A Net wraps messengers (the in-memory switchboard's ports, or any other
// implementation of the Messenger shape) with:
//
//   - probabilistic payload drop (the stale-TCP silent loss),
//   - payload duplication (retransmit races),
//   - payload corruption (a byte flipped in flight),
//   - uniform delay jitter, which also produces reordering,
//   - asymmetric partitions (A can reach B while B cannot reach A),
//   - phone churn: disconnect → reconnect cycles with fresh sessions.
//
// Every random decision is drawn from one seeded RNG and every delayed
// delivery is scheduled on the injected vclock, so when the clock is a
// vclock.Sim the entire fault schedule is bit-for-bit reproducible.
//
// The package deliberately does not import internal/transport: Messenger
// mirrors transport.Messenger structurally, so a *transport.Port satisfies
// faultnet.Messenger and a *faultnet.Fault satisfies transport.Messenger
// without an import cycle (which also lets internal/xmpp tests use the
// TCPProxy in this package).
package faultnet

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"pogo/internal/obs"
	"pogo/internal/vclock"
)

// ErrOffline reports a send attempted while the fault wrapper is churned
// offline (mirrors transport.ErrOffline semantics).
var ErrOffline = errors.New("faultnet: offline")

// Messenger is the structural mirror of transport.Messenger — the unreliable
// datagram layer faultnet wraps and re-exposes.
type Messenger interface {
	LocalID() string
	Online() bool
	Send(to string, payload []byte) error
	OnReceive(fn func(from string, payload []byte))
	OnOnline(fn func())
	OnPresence(fn func(peer string, online bool))
	Peers() []string
}

// Config sets the fault probabilities and the seed they are drawn from.
type Config struct {
	// Seed initialises the fault RNG; identical seeds (plus identical call
	// schedules, which a vclock.Sim guarantees) replay identical faults.
	Seed int64
	// Drop is the probability a payload is silently lost in flight.
	Drop float64
	// Duplicate is the probability a payload is delivered twice.
	Duplicate float64
	// Corrupt is the probability one payload byte is flipped in flight.
	Corrupt float64
	// MaxDelay adds uniform extra latency in [0, MaxDelay] to every payload;
	// unequal delays reorder deliveries. 0 disables jitter.
	MaxDelay time.Duration
	// Lean draws faults from a compact splitmix64 source (8 bytes of state)
	// instead of math/rand's default source (~5 KB of lagged-Fibonacci table
	// per Net). The fleet experiment creates one Net per simulated phone, so
	// at 100k phones the default source alone would cost ~500 MB. The stream
	// is equally deterministic but DIFFERENT from the default source for the
	// same seed, so flipping this flag changes any pinned fault schedule.
	Lean bool
	// Obs, when non-nil, receives the fault counters
	// (faultnet_*_total) so chaos runs are observable.
	Obs *obs.Registry
}

// Stats counts the faults a Net has injected.
type Stats struct {
	Sent           int // payloads offered to the fault layer (excl. partition drops)
	Dropped        int // lost to the Drop probability
	Duplicated     int // extra copies delivered
	Corrupted      int // payloads with a flipped byte
	Delayed        int // payloads given non-zero extra latency
	PartitionDrops int // lost to an active partition
	ChurnDrops     int // inbound payloads discarded while churned offline
	Disconnects    int // churn disconnect events
	Reconnects     int // churn reconnect events
}

// Net is a fault domain: a seeded RNG, a partition table, and the shared
// counters for every messenger wrapped in it. All methods are goroutine-safe;
// under a vclock.Sim all activity is single-threaded and deterministic.
type Net struct {
	clk vclock.Clock

	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	blocked map[string]map[string]bool // from → to → blocked
	stats   Stats

	// Instruments; nil (no-op) when cfg.Obs is nil.
	obsDropped     *obs.Counter
	obsDuplicated  *obs.Counter
	obsCorrupted   *obs.Counter
	obsPartitioned *obs.Counter
	obsChurnDrops  *obs.Counter
	obsDisconnects *obs.Counter
	obsReconnects  *obs.Counter
}

// New returns a fault domain on the given clock.
func New(clk vclock.Clock, cfg Config) *Net {
	src := rand.NewSource(cfg.Seed)
	if cfg.Lean {
		src = LeanSource(cfg.Seed)
	}
	n := &Net{
		clk:     clk,
		cfg:     cfg,
		rng:     rand.New(src),
		blocked: make(map[string]map[string]bool),
	}
	if reg := cfg.Obs; reg != nil {
		n.obsDropped = reg.Counter("faultnet_dropped_total")
		n.obsDuplicated = reg.Counter("faultnet_duplicated_total")
		n.obsCorrupted = reg.Counter("faultnet_corrupted_total")
		n.obsPartitioned = reg.Counter("faultnet_partition_drops_total")
		n.obsChurnDrops = reg.Counter("faultnet_churn_drops_total")
		n.obsDisconnects = reg.Counter("faultnet_disconnects_total")
		n.obsReconnects = reg.Counter("faultnet_reconnects_total")
	}
	return n
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Calm zeroes all fault probabilities (partitions and churn are controlled
// separately). The chaos harness calls it for the drain phase, where eventual
// connectivity must become actual connectivity.
func (n *Net) Calm() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Drop, n.cfg.Duplicate, n.cfg.Corrupt, n.cfg.MaxDelay = 0, 0, 0, 0
}

// SetFaults replaces the live fault probabilities mid-run, leaving the RNG
// stream, partitions, churn cycles, and counters untouched. The scenario DSL
// uses it (`inject_fault drop=0.3 delay=200ms`) to script weather changes —
// a carrier outage clearing up, a congested cell — without rebuilding the
// world. Calm is equivalent to SetFaults(0, 0, 0, 0).
func (n *Net) SetFaults(drop, duplicate, corrupt float64, maxDelay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Drop, n.cfg.Duplicate, n.cfg.Corrupt, n.cfg.MaxDelay = drop, duplicate, corrupt, maxDelay
}

// Partition blocks payloads flowing from → to. It is asymmetric: the reverse
// direction stays open unless blocked separately.
func (n *Net) Partition(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.blocked[from] == nil {
		n.blocked[from] = make(map[string]bool)
	}
	n.blocked[from][to] = true
}

// PartitionPair blocks both directions between a and b.
func (n *Net) PartitionPair(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal unblocks the from → to direction.
func (n *Net) Heal(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked[from], to)
}

// HealAll removes every partition.
func (n *Net) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[string]map[string]bool)
}

// Partitioned reports whether from → to is currently blocked.
func (n *Net) Partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[from][to]
}

// Wrap returns a fault-injecting messenger around m. The wrapper registers
// itself as m's receive and online handler; attach application handlers to
// the returned Fault, not to m.
func (n *Net) Wrap(m Messenger) *Fault {
	f := &Fault{net: n, inner: m}
	m.OnReceive(f.receiveInner)
	m.OnOnline(f.innerOnline)
	return f
}

// expDuration draws an exponentially distributed duration with the given
// mean, clamped to [1ms, 10×mean] to keep schedules sane.
func (n *Net) expDuration(mean time.Duration) time.Duration {
	n.mu.Lock()
	x := n.rng.ExpFloat64()
	n.mu.Unlock()
	d := time.Duration(x * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if max := 10 * mean; d > max {
		d = max
	}
	return d
}

// Churn starts a disconnect→reconnect cycle on f: after an exponential
// up-time with mean meanUp the fault disconnects, stays down an exponential
// down-time with mean meanDown, reconnects (a fresh session: OnOnline
// handlers fire), and repeats. The returned stop function ends the cycle and
// reconnects f if it is down.
func (n *Net) Churn(f *Fault, meanUp, meanDown time.Duration) (stop func()) {
	var st struct {
		sync.Mutex
		stopped bool
	}
	var schedule func(up bool)
	schedule = func(up bool) {
		mean := meanUp
		if !up {
			mean = meanDown
		}
		n.clk.AfterFunc(n.expDuration(mean), func() {
			st.Lock()
			stopped := st.stopped
			st.Unlock()
			if stopped {
				return
			}
			if up {
				f.Disconnect()
			} else {
				f.Reconnect()
			}
			schedule(!up)
		})
	}
	schedule(true)
	return func() {
		st.Lock()
		st.stopped = true
		st.Unlock()
		if f.Down() {
			f.Reconnect()
		}
	}
}

// Fault is one messenger wrapped in a fault domain. It implements the same
// Messenger shape as the wrapped value (and therefore transport.Messenger).
type Fault struct {
	net   *Net
	inner Messenger

	mu         sync.Mutex
	down       bool
	onReceive  func(from string, payload []byte)
	onOnline   []func()
	onPresence []func(peer string, online bool)
}

var _ Messenger = (*Fault)(nil)

// Inner returns the wrapped messenger.
func (f *Fault) Inner() Messenger { return f.inner }

// LocalID implements Messenger.
func (f *Fault) LocalID() string { return f.inner.LocalID() }

// Online implements Messenger: offline while churned down.
func (f *Fault) Online() bool {
	f.mu.Lock()
	down := f.down
	f.mu.Unlock()
	return !down && f.inner.Online()
}

// Down reports whether the fault is currently churned offline.
func (f *Fault) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Disconnect churns the node offline: sends fail with ErrOffline and inbound
// payloads are discarded, exactly like a session whose TCP connection went
// stale underneath it.
func (f *Fault) Disconnect() {
	f.mu.Lock()
	was := f.down
	f.down = true
	f.mu.Unlock()
	if !was {
		n := f.net
		n.mu.Lock()
		n.stats.Disconnects++
		n.mu.Unlock()
		n.obsDisconnects.Inc()
	}
}

// Reconnect brings a churned node back with a fresh session: OnOnline
// handlers fire so the transport endpoint replays its outbox.
func (f *Fault) Reconnect() {
	f.mu.Lock()
	was := f.down
	f.down = false
	handlers := append([]func(){}, f.onOnline...)
	f.mu.Unlock()
	if !was {
		return
	}
	n := f.net
	n.mu.Lock()
	n.stats.Reconnects++
	n.mu.Unlock()
	n.obsReconnects.Inc()
	if f.inner.Online() {
		for _, fn := range handlers {
			fn()
		}
	}
}

// Send implements Messenger, running the payload through the fault pipeline:
// partition check, drop, corrupt, duplicate, delay — in that fixed order so
// the RNG stream is stable for a given schedule.
func (f *Fault) Send(to string, payload []byte) error {
	if !f.Online() {
		return ErrOffline
	}
	n := f.net
	n.mu.Lock()
	if n.blocked[f.inner.LocalID()][to] {
		n.stats.PartitionDrops++
		n.mu.Unlock()
		n.obsPartitioned.Inc()
		return nil // silently lost, like any in-flight payload at a cut
	}
	n.stats.Sent++
	if n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop {
		n.stats.Dropped++
		n.mu.Unlock()
		n.obsDropped.Inc()
		return nil
	}
	corruptAt := -1
	if n.cfg.Corrupt > 0 && len(payload) > 0 && n.rng.Float64() < n.cfg.Corrupt {
		corruptAt = n.rng.Intn(len(payload))
		n.stats.Corrupted++
	}
	copies := 1
	if n.cfg.Duplicate > 0 && n.rng.Float64() < n.cfg.Duplicate {
		copies = 2
		n.stats.Duplicated++
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		if n.cfg.MaxDelay > 0 {
			delays[i] = time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay) + 1))
			if delays[i] > 0 {
				n.stats.Delayed++
			}
		}
	}
	n.mu.Unlock()
	if corruptAt >= 0 {
		n.obsCorrupted.Inc()
	}
	if copies > 1 {
		n.obsDuplicated.Inc()
	}

	for i := 0; i < copies; i++ {
		body := append([]byte(nil), payload...)
		if corruptAt >= 0 {
			body[corruptAt] ^= 0xff
		}
		if delays[i] == 0 {
			if err := f.inner.Send(to, body); err != nil && i == 0 {
				return err
			}
			continue
		}
		n.clk.AfterFunc(delays[i], func() {
			// Fire-and-forget: by delivery time the inner link may have
			// gone away, which is precisely the loss being modeled.
			_ = f.inner.Send(to, body)
		})
	}
	return nil
}

// receiveInner gates inbound payloads on churn state.
func (f *Fault) receiveInner(from string, payload []byte) {
	f.mu.Lock()
	down := f.down
	fn := f.onReceive
	f.mu.Unlock()
	if down {
		n := f.net
		n.mu.Lock()
		n.stats.ChurnDrops++
		n.mu.Unlock()
		n.obsChurnDrops.Inc()
		return
	}
	if fn != nil {
		fn(from, payload)
	}
}

// innerOnline propagates the wrapped messenger's connectivity events unless
// the fault is churned down.
func (f *Fault) innerOnline() {
	f.mu.Lock()
	down := f.down
	handlers := append([]func(){}, f.onOnline...)
	f.mu.Unlock()
	if down {
		return
	}
	for _, fn := range handlers {
		fn()
	}
}

// OnReceive implements Messenger.
func (f *Fault) OnReceive(fn func(from string, payload []byte)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onReceive = fn
}

// OnOnline implements Messenger.
func (f *Fault) OnOnline(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onOnline = append(f.onOnline, fn)
}

// OnPresence implements Messenger, delegating to the wrapped messenger.
func (f *Fault) OnPresence(fn func(peer string, online bool)) {
	f.inner.OnPresence(fn)
}

// Peers implements Messenger.
func (f *Fault) Peers() []string { return f.inner.Peers() }
