package faultnet

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"pogo/internal/vclock"
)

// pipe is the minimal inner messenger: two always-online ends delivering to
// each other after a fixed latency on the sim clock.
type pipe struct {
	id  string
	clk vclock.Clock

	mu        sync.Mutex
	peer      *pipe
	onReceive func(from string, payload []byte)
	onOnline  []func()
}

func pipePair(clk vclock.Clock) (*pipe, *pipe) {
	a := &pipe{id: "a", clk: clk}
	b := &pipe{id: "b", clk: clk}
	a.peer, b.peer = b, a
	return a, b
}

func (p *pipe) LocalID() string { return p.id }
func (p *pipe) Online() bool    { return true }
func (p *pipe) Peers() []string { return []string{p.peer.id} }

func (p *pipe) Send(to string, payload []byte) error {
	body := append([]byte(nil), payload...)
	peer := p.peer
	p.clk.AfterFunc(time.Millisecond, func() {
		peer.mu.Lock()
		fn := peer.onReceive
		peer.mu.Unlock()
		if fn != nil {
			fn(p.id, body)
		}
	})
	return nil
}

func (p *pipe) OnReceive(fn func(string, []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onReceive = fn
}
func (p *pipe) OnOnline(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onOnline = append(p.onOnline, fn)
}
func (p *pipe) OnPresence(func(string, bool)) {}

// fireOnline simulates the inner messenger reconnecting.
func (p *pipe) fireOnline() {
	p.mu.Lock()
	handlers := append([]func(){}, p.onOnline...)
	p.mu.Unlock()
	for _, fn := range handlers {
		fn()
	}
}

func wrapPair(clk *vclock.Sim, cfg Config) (*Net, *Fault, *Fault, *pipe, *pipe) {
	pa, pb := pipePair(clk)
	n := New(clk, cfg)
	return n, n.Wrap(pa), n.Wrap(pb), pa, pb
}

// blast sends count payloads a→b and returns how many arrived, with bodies.
func blast(clk *vclock.Sim, fa, fb *Fault, count int) [][]byte {
	var got [][]byte
	fb.OnReceive(func(_ string, payload []byte) {
		got = append(got, append([]byte(nil), payload...))
	})
	for i := 0; i < count; i++ {
		fa.Send("b", []byte{byte(i), 0x5a})
	}
	clk.Advance(time.Second)
	return got
}

func TestSameSeedSameFaults(t *testing.T) {
	run := func() (Stats, int) {
		clk := vclock.NewSim()
		n, fa, fb, _, _ := wrapPair(clk, Config{
			Seed: 42, Drop: 0.3, Duplicate: 0.2, Corrupt: 0.2, MaxDelay: 50 * time.Millisecond,
		})
		got := blast(clk, fa, fb, 200)
		return n.Stats(), len(got)
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 || g1 != g2 {
		t.Errorf("same seed diverged: %+v/%d vs %+v/%d", s1, g1, s2, g2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Corrupted == 0 || s1.Delayed == 0 {
		t.Errorf("fault mix not exercised: %+v", s1)
	}
	if g1 != s1.Sent-s1.Dropped+s1.Duplicated {
		t.Errorf("arithmetic: got %d, sent=%d dropped=%d duplicated=%d", g1, s1.Sent, s1.Dropped, s1.Duplicated)
	}
}

func TestDifferentSeedDifferentFaults(t *testing.T) {
	run := func(seed int64) Stats {
		clk := vclock.NewSim()
		n, fa, fb, _, _ := wrapPair(clk, Config{Seed: seed, Drop: 0.3, MaxDelay: 10 * time.Millisecond})
		blast(clk, fa, fb, 300)
		return n.Stats()
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	clk := vclock.NewSim()
	n, fa, fb, _, _ := wrapPair(clk, Config{Seed: 5, Corrupt: 1.0})
	var got []byte
	fb.OnReceive(func(_ string, payload []byte) { got = payload })
	fa.Send("b", []byte("hello"))
	clk.Advance(time.Second)
	if got == nil {
		t.Fatal("nothing arrived")
	}
	diff := 0
	for i, c := range []byte("hello") {
		if got[i] != c {
			diff++
			if got[i] != c^0xff {
				t.Errorf("byte %d flipped to %x, want %x", i, got[i], c^0xff)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	if n.Stats().Corrupted != 1 {
		t.Errorf("Corrupted = %d", n.Stats().Corrupted)
	}
}

func TestDelayJitterReorders(t *testing.T) {
	clk := vclock.NewSim()
	_, fa, fb, _, _ := wrapPair(clk, Config{Seed: 11, MaxDelay: 200 * time.Millisecond})
	got := blast(clk, fa, fb, 50)
	if len(got) != 50 {
		t.Fatalf("arrived %d of 50", len(got))
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i][0] < got[i-1][0] {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("200ms jitter over 50 sends never reordered; suspicious")
	}
}

func TestPartitionAsymmetry(t *testing.T) {
	clk := vclock.NewSim()
	n, fa, fb, _, _ := wrapPair(clk, Config{Seed: 3})
	var atA, atB int
	fa.OnReceive(func(string, []byte) { atA++ })
	fb.OnReceive(func(string, []byte) { atB++ })

	n.Partition("a", "b")
	fa.Send("b", []byte("x"))
	fb.Send("a", []byte("y"))
	clk.Advance(time.Second)
	if atB != 0 {
		t.Error("a→b delivered across the cut")
	}
	if atA != 1 {
		t.Errorf("b→a delivered %d, want 1 (asymmetric)", atA)
	}
	if n.Stats().PartitionDrops != 1 {
		t.Errorf("PartitionDrops = %d", n.Stats().PartitionDrops)
	}

	n.HealAll()
	fa.Send("b", []byte("x"))
	clk.Advance(time.Second)
	if atB != 1 {
		t.Error("heal did not restore a→b")
	}
}

func TestChurnDisconnectReconnect(t *testing.T) {
	clk := vclock.NewSim()
	n, fa, fb, _, _ := wrapPair(clk, Config{Seed: 8})
	onlineFired := 0
	fb.OnOnline(func() { onlineFired++ })
	fb.OnReceive(func(string, []byte) {})

	fb.Disconnect()
	if fb.Online() {
		t.Error("Online() true while churned down")
	}
	if err := fb.Send("a", []byte("x")); err != ErrOffline {
		t.Errorf("Send while down = %v, want ErrOffline", err)
	}
	fa.Send("b", []byte("x"))
	clk.Advance(time.Second)
	if n.Stats().ChurnDrops != 1 {
		t.Errorf("ChurnDrops = %d", n.Stats().ChurnDrops)
	}

	fb.Reconnect()
	if !fb.Online() || onlineFired != 1 {
		t.Errorf("reconnect: online=%v fired=%d", fb.Online(), onlineFired)
	}
	fb.Reconnect() // idempotent: no second session event
	if onlineFired != 1 {
		t.Errorf("double reconnect fired %d", onlineFired)
	}
	st := n.Stats()
	if st.Disconnects != 1 || st.Reconnects != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChurnScheduleIsSeededAndStoppable(t *testing.T) {
	run := func() Stats {
		clk := vclock.NewSim()
		n, _, fb, _, _ := wrapPair(clk, Config{Seed: 21})
		stop := n.Churn(fb, 2*time.Minute, 30*time.Second)
		clk.Advance(30 * time.Minute)
		stop()
		if fb.Down() {
			t.Error("stop() left the fault disconnected")
		}
		down := fb.Down()
		clk.Advance(30 * time.Minute)
		if fb.Down() != down {
			t.Error("churn continued after stop()")
		}
		return n.Stats()
	}
	s1 := run()
	s2 := run()
	if s1 != s2 {
		t.Errorf("churn schedule not seeded: %+v vs %+v", s1, s2)
	}
	if s1.Disconnects < 5 {
		t.Errorf("Disconnects = %d over 30 min of 2.5-min cycles", s1.Disconnects)
	}
}

func TestInnerOnlineSuppressedWhileDown(t *testing.T) {
	clk := vclock.NewSim()
	_, _, fb, _, pb := wrapPair(clk, Config{Seed: 1})
	fired := 0
	fb.OnOnline(func() { fired++ })
	fb.Disconnect()
	pb.fireOnline() // inner reconnects while the fault holds the node down
	if fired != 0 {
		t.Error("inner online leaked through a churned-down fault")
	}
	fb.Reconnect()
	pb.fireOnline()
	if fired != 2 { // one from Reconnect, one propagated
		t.Errorf("fired = %d, want 2", fired)
	}
}

// TestTCPProxyDropsLiveConnections exercises the real-socket fault: an
// established session dies mid-stream, new connections still succeed.
func TestTCPProxyDropsLiveConnections(t *testing.T) {
	// Echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					c.Write(append(sc.Bytes(), '\n'))
				}
			}(c)
		}
	}()

	proxy, err := NewTCPProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	roundtrip := func(c net.Conn) error {
		if _, err := c.Write([]byte("ping\n")); err != nil {
			return err
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err := bufio.NewReader(c).ReadString('\n')
		return err
	}

	c1 := dial()
	defer c1.Close()
	if err := roundtrip(c1); err != nil {
		t.Fatalf("healthy roundtrip: %v", err)
	}

	proxy.DropConns()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := roundtrip(c1); err != nil {
			break // session is dead, as it should be
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived DropConns")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A fresh session works (the "reconnect" path).
	c2 := dial()
	defer c2.Close()
	if err := roundtrip(c2); err != nil {
		t.Fatalf("post-drop reconnect roundtrip: %v", err)
	}

	// Refusal mode: new connections die immediately.
	proxy.SetRefuse(true)
	c3 := dial()
	defer c3.Close()
	if err := roundtrip(c3); err == nil {
		t.Fatal("roundtrip succeeded while proxy refusing")
	}
	proxy.SetRefuse(false)
	c4 := dial()
	defer c4.Close()
	if err := roundtrip(c4); err != nil {
		t.Fatalf("post-refusal roundtrip: %v", err)
	}
}
