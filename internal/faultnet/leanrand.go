package faultnet

import "math/rand"

// leanSource is a splitmix64 rand.Source64: one uint64 of state instead of
// the ~5 KB lagged-Fibonacci table math/rand's default source carries. The
// fleet experiment seeds one RNG per simulated device, so at 100k devices
// the source's footprint is the difference between ~800 KB and ~500 MB.
//
// Splitmix64 passes BigCrush and, crucially for Pogo, is a pure function of
// the seed and draw index — the same (Seed, call-schedule) determinism
// contract the default source satisfies, with a different stream.
type leanSource struct{ s uint64 }

// LeanSource returns a compact deterministic rand.Source64 for the given
// seed. Intended for workloads that create one RNG per entity; the chaos
// suite keeps the default source so its pinned baselines stay valid.
func LeanSource(seed int64) rand.Source64 {
	// Pre-mix the seed once so adjacent seeds (entity seeds differ in a few
	// bits) don't start in correlated states.
	s := &leanSource{s: uint64(seed)}
	s.Uint64()
	return s
}

func (l *leanSource) Uint64() uint64 {
	l.s += 0x9e3779b97f4a7c15
	z := l.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (l *leanSource) Int63() int64 { return int64(l.Uint64() >> 1) }

func (l *leanSource) Seed(seed int64) { l.s = uint64(seed); l.Uint64() }
