package faultnet

import (
	"math/rand"
	"testing"
)

func TestLeanSourceDeterministic(t *testing.T) {
	a := rand.New(LeanSource(42))
	b := rand.New(LeanSource(42))
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %x vs %x", i, av, bv)
		}
	}
}

func TestLeanSourceSeedsDecorrelated(t *testing.T) {
	// Adjacent seeds must not produce overlapping prefixes: the fleet derives
	// per-entity seeds that can differ in only a few bits.
	a := rand.New(LeanSource(1))
	b := rand.New(LeanSource(2))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d of 1000 draws collided across adjacent seeds", same)
	}
}

func TestLeanConfigUsesLeanStream(t *testing.T) {
	// A Lean net must draw a different (but still seeded) fault schedule than
	// the default source — pinned chaos baselines depend on the default
	// stream staying untouched.
	draw := func(lean bool) []float64 {
		src := rand.NewSource(7)
		if lean {
			src = LeanSource(7)
		}
		r := rand.New(src)
		out := make([]float64, 8)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}
	d, l := draw(false), draw(true)
	diff := false
	for i := range d {
		if d[i] != l[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("lean and default sources produced identical streams")
	}
}
