package faultnet

import (
	"io"
	"net"
	"sync"
)

// TCPProxy sits between a real client and a real server socket and breaks
// their connections on demand — the "TCP session gone stale" failure from
// §4.6, reproduced with actual sockets for the XMPP robustness tests.
//
// Unlike the in-memory fault layer, the proxy is not deterministic (it rides
// the kernel's scheduler); it exists to prove the real client survives real
// socket deaths, while seeded chaos runs stay on the simulated switchboard.
type TCPProxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	refuse bool
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewTCPProxy starts a proxy on an ephemeral localhost port forwarding to
// target (an addr like "127.0.0.1:5222").
func NewTCPProxy(target string) (*TCPProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &TCPProxy{target: target, ln: ln, conns: make(map[net.Conn]bool)}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address; point clients here.
func (p *TCPProxy) Addr() string { return p.ln.Addr().String() }

// SetRefuse makes the proxy hang up new connections immediately (true) or
// resume forwarding them (false) — a server that is reachable but rejecting.
func (p *TCPProxy) SetRefuse(refuse bool) {
	p.mu.Lock()
	p.refuse = refuse
	p.mu.Unlock()
}

// DropConns severs every live proxied connection without touching the
// listener: both sides see their established session die mid-stream.
func (p *TCPProxy) DropConns() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Active returns the number of live proxied connections (client side).
func (p *TCPProxy) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns) / 2
}

// Close shuts the proxy down, severing all connections.
func (p *TCPProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropConns()
	p.wg.Wait()
}

func (p *TCPProxy) accept() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse, closed := p.refuse, p.closed
		p.mu.Unlock()
		if refuse || closed {
			client.Close()
			continue
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client, server)
	}
}

// track registers the pair and pipes bytes both ways until either side dies,
// then severs both.
func (p *TCPProxy) track(client, server net.Conn) {
	p.mu.Lock()
	p.conns[client] = true
	p.conns[server] = true
	p.mu.Unlock()
	untrack := func() {
		client.Close()
		server.Close()
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, server)
		p.mu.Unlock()
	}
	var once sync.Once
	pipe := func(dst, src net.Conn) {
		defer p.wg.Done()
		io.Copy(dst, src)
		once.Do(untrack)
	}
	p.wg.Add(2)
	go pipe(server, client)
	go pipe(client, server)
}
