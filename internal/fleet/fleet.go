// Package fleet is Pogo's sharded discrete-event simulation engine: the
// machinery that lets one seeded experiment execute a multi-thousand-phone
// testbed across every core of the machine while staying bit-for-bit
// deterministic.
//
// A vclock.Sim is a single event loop, so every experiment before this
// package ran its whole fleet on one goroutine. The fleet engine partitions
// the simulated devices into K shards, each owning its own vclock.Sim and
// device stack, and executes the shards on worker goroutines in bounded time
// epochs. The epoch length is the engine's conservative lookahead: because
// every cross-shard message takes at least Lookahead of simulated time on the
// wire (the fabric's latency floor — the analogue of the switchboard /
// faultnet delay floor), no event executed inside an epoch can causally
// affect another shard within the same epoch. Shards therefore never need
// fine-grained synchronization; they only meet at epoch barriers.
//
// Cross-shard sends are staged into per-shard mailboxes during the epoch and
// merged at the barrier in (deliver-at, sender, sender-seq) order before
// being scheduled onto the destination shards' clocks. That merge order is a
// pure function of the simulation's own content — it mentions neither shard
// IDs nor goroutine interleaving — so a given seed produces byte-identical
// delivery logs regardless of the shard count or GOMAXPROCS. The determinism
// guarantee the chaos suite enforces for the single-loop simulator survives
// real parallelism.
//
// Ports implement the transport.Messenger shape (structurally, like
// faultnet.Messenger), so the full delivery stack — faultnet fault wrappers,
// transport endpoints with retransmission and FIFO dedup — runs unmodified
// on top of the fabric.
package fleet

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"pogo/internal/obs"
	"pogo/internal/vclock"
)

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent simulation partitions (and worker
	// goroutines). Default 1.
	Shards int
	// Lookahead is both the epoch length and the fabric's uniform delivery
	// latency. Every Port.Send arrives exactly Lookahead after the send
	// instant, which is what makes the conservative epoch barrier safe: no
	// message staged during an epoch can be due before the epoch ends.
	// Default 100 ms.
	Lookahead time.Duration
	// Start is the initial instant of every shard clock. Default
	// vclock.SimEpoch.
	Start time.Time
	// ShardBase offsets the shard IDs this engine reports (Shard.ID, obs
	// labels). A multi-process fleet gives each worker engine the first
	// global index of its contiguous shard range, so logs and metrics from
	// different processes name disjoint shards. Default 0.
	ShardBase int
	// Remote marks this engine as one partition of a larger fleet: staged
	// messages whose destination is not registered locally are handed to the
	// RunExchanged exchange callback instead of being counted as dropped.
	Remote bool
	// Obs, when non-nil, receives the engine's instruments: epoch count,
	// fabric/cross-shard traffic, per-epoch shard occupancy, and wall-clock
	// barrier stalls.
	Obs *obs.Registry
}

// Engine is a set of shards advancing in lockstep epochs. Construct with
// NewEngine, create ports, schedule the workload on the shard clocks, then
// call Run. The engine is not reusable after Run returns.
type Engine struct {
	cfg    Config
	shards []*Shard
	dir    map[string]*Port

	events     atomic.Int64
	fabricMsgs int64
	crossMsgs  int64
	dropped    int64
	epochs     int

	// Barrier-merge scratch, reused across epochs so merging allocates only
	// when an epoch stages more traffic than any epoch before it.
	mergeScratch  []Staged
	remoteScratch []Staged

	obsEpochs    *obs.Counter
	obsFabric    *obs.Counter
	obsCross     *obs.Counter
	obsDropped   *obs.Counter
	obsStall     *obs.Histogram
	obsOccupancy *obs.Histogram
}

// NewEngine returns an engine with cfg.Shards empty shards.
func NewEngine(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = 100 * time.Millisecond
	}
	if cfg.Start.IsZero() {
		cfg.Start = vclock.SimEpoch
	}
	e := &Engine{cfg: cfg, dir: make(map[string]*Port)}
	for i := 0; i < cfg.Shards; i++ {
		e.shards = append(e.shards, &Shard{
			eng: e,
			id:  cfg.ShardBase + i,
			clk: vclock.NewSimAt(cfg.Start),
		})
	}
	if reg := cfg.Obs; reg != nil {
		e.obsEpochs = reg.Counter("fleet_epochs_total")
		e.obsFabric = reg.Counter("fleet_fabric_messages_total")
		e.obsCross = reg.Counter("fleet_cross_shard_messages_total")
		e.obsDropped = reg.Counter("fleet_dropped_total")
		e.obsStall = reg.Histogram("fleet_barrier_stall_seconds", obs.DefBuckets)
		e.obsOccupancy = reg.Histogram("fleet_shard_epoch_events", obs.CountBuckets)
		for i := 0; i < cfg.Shards; i++ {
			e.shards[i].obsEvents = reg.Counter("fleet_shard_events_total", obs.L("shard", fmt.Sprintf("%d", e.shards[i].id)))
		}
	}
	return e
}

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Lookahead returns the epoch length / fabric latency.
func (e *Engine) Lookahead() time.Duration { return e.cfg.Lookahead }

// Shard returns partition i. Shard state (its clock, the stacks built on its
// ports) must only be touched during setup, from that shard's own callbacks,
// or from a barrier callback — never from another shard's code.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Staged is one staged cross-fabric payload: the unit the barrier merge
// orders by (At, From, Seq). It is exported so a multi-process coordinator
// can carry staged traffic between worker engines; within one process it
// never escapes the engine.
type Staged struct {
	At       time.Time // delivery instant: send time + Lookahead
	From, To string
	Seq      uint64 // per-sender send counter: the deterministic tiebreak
	Payload  []byte
}

// Shard is one simulation partition: a clock plus the entities built on it.
type Shard struct {
	eng *Engine
	id  int
	clk *vclock.Sim

	staged    []Staged // written by this shard's worker, drained at barriers
	arena     []byte   // current payload slab; see copyPayload
	events    int64
	obsEvents *obs.Counter

	req  chan time.Time
	done chan epochReport
}

type epochReport struct {
	events int
	wall   time.Duration
}

// ID returns the shard index.
func (s *Shard) ID() int { return s.id }

// Clock returns the shard's simulated clock. Schedule workload callbacks on
// it during setup; during Run it advances in lockstep with the other shards.
func (s *Shard) Clock() *vclock.Sim { return s.clk }

// Events returns the number of callbacks this shard has executed.
func (s *Shard) Events() int64 { return s.events }

// Port creates this shard's attachment point for identity id and registers
// it in the engine-wide directory. IDs must be unique across the engine.
func (s *Shard) Port(id string) *Port {
	p := &Port{shard: s, id: id}
	s.eng.dir[id] = p
	return p
}

// Port is one entity's connection to the cross-shard fabric. It implements
// the transport.Messenger / faultnet.Messenger shape: always online, with
// every Send staged into the owning shard's mailbox for delivery exactly
// Lookahead later. Methods must be called from the owning shard (or during
// setup / at a barrier), matching the engine's ownership discipline.
type Port struct {
	shard *Shard
	id    string
	seq   uint64
	peers []string

	onReceive  func(from string, payload []byte)
	onOnline   []func()
	onPresence []func(peer string, online bool)
}

// LocalID implements Messenger.
func (p *Port) LocalID() string { return p.id }

// Online implements Messenger; fabric ports are always attached. Churn and
// partitions are modeled by faultnet wrappers above the port.
func (p *Port) Online() bool { return true }

// arenaSlab is the size of a shard's payload slab. Copies are carved out of
// the current slab (one allocation per ~64 KiB of traffic instead of one per
// Send); a full slab is simply abandoned to the GC, which keeps it alive for
// exactly as long as any delivered payload still aliases it. Slabs are never
// reused, so receivers may retain payloads indefinitely.
const arenaSlab = 64 << 10

// copyPayload copies p into the shard's arena. Full-capacity subslices stop
// a receiver's append from bleeding into the next payload. Called only from
// the owning shard, so no locking.
func (s *Shard) copyPayload(p []byte) []byte {
	if len(p) >= arenaSlab/4 {
		return append([]byte(nil), p...) // oversized: give it its own allocation
	}
	if len(s.arena)+len(p) > cap(s.arena) {
		s.arena = make([]byte, 0, arenaSlab)
	}
	off := len(s.arena)
	s.arena = append(s.arena, p...)
	return s.arena[off : off+len(p) : off+len(p)]
}

// Send implements Messenger: the payload is copied and staged for delivery
// at now + Lookahead, the fabric's uniform latency. Locality is intentionally
// invisible — a same-shard destination pays the same latency and traverses
// the same barrier merge as a cross-shard one, so delivery timing and
// ordering are independent of how entities are partitioned.
func (p *Port) Send(to string, payload []byte) error {
	s := p.shard
	m := Staged{
		At:      s.clk.Now().Add(s.eng.cfg.Lookahead),
		From:    p.id,
		To:      to,
		Seq:     p.seq,
		Payload: s.copyPayload(payload),
	}
	p.seq++
	s.staged = append(s.staged, m)
	return nil
}

// OnReceive implements Messenger.
func (p *Port) OnReceive(fn func(from string, payload []byte)) { p.onReceive = fn }

// OnOnline implements Messenger. Fabric ports never reconnect, so handlers
// are retained but only fired by faultnet churn wrappers above the port.
func (p *Port) OnOnline(fn func()) { p.onOnline = append(p.onOnline, fn) }

// OnPresence implements Messenger. Fleet rosters are static, so presence
// never fires.
func (p *Port) OnPresence(fn func(peer string, online bool)) {
	p.onPresence = append(p.onPresence, fn)
}

// SetPeers installs the static roster returned by Peers.
func (p *Port) SetPeers(peers []string) { p.peers = append([]string(nil), peers...) }

// Peers implements Messenger.
func (p *Port) Peers() []string { return append([]string(nil), p.peers...) }

func (p *Port) deliver(from string, payload []byte) {
	if p.onReceive != nil {
		p.onReceive(from, payload)
	}
}

// RunStats summarizes an Engine.Run.
type RunStats struct {
	Epochs     int
	Events     int64 // callbacks executed across all shards
	Fabric     int64 // payloads through the fabric
	CrossShard int64 // fabric payloads whose destination was another shard
	Dropped    int64 // payloads to unknown destinations
}

// ExchangeFunc is the cross-process hook of RunExchanged. It runs at every
// epoch barrier with the workers parked: outbound holds this engine's staged
// messages whose destination is not registered locally (always empty unless
// Config.Remote), sorted by (From, Seq) so its wire encoding is
// deterministic. It returns the staged messages other engines addressed to
// this one — all due in (now, now+Lookahead], like any staged traffic — and
// whether the whole fleet should stop after this barrier. The outbound slice
// is only valid until the next barrier; the engine retains inbound payload
// bytes until their delivery instant.
type ExchangeFunc func(now time.Time, outbound []Staged) (inbound []Staged, stop bool)

// Run advances all shards in lockstep epochs of Lookahead until the barrier
// callback reports done or maxSim simulated time has elapsed (whichever is
// first; maxSim <= 0 means no cap). The done callback runs on the Run caller
// while every worker is parked at the barrier, so it may safely inspect any
// shard's state; it receives the barrier instant.
func (e *Engine) Run(maxSim time.Duration, done func(now time.Time) bool) RunStats {
	return e.RunExchanged(maxSim, nil, done)
}

// RunExchanged is Run for an engine that owns one contiguous shard range of
// a larger, multi-process fleet: at every barrier it trades staged traffic
// with the other partitions through exchange (which may be nil — then the
// engine is the whole fleet and behaves exactly like Run). Determinism is
// preserved because each engine merges sorted(local ∪ inbound) with the same
// content key a single-process engine sorts the global staged set by: the
// per-destination insertion order — and therefore every same-instant
// tiebreak — is identical at any (shards × processes) split.
func (e *Engine) RunExchanged(maxSim time.Duration, exchange ExchangeFunc, done func(now time.Time) bool) RunStats {
	for _, s := range e.shards {
		s.req = make(chan time.Time)
		s.done = make(chan epochReport)
		go s.work()
	}
	defer func() {
		for _, s := range e.shards {
			close(s.req)
		}
	}()

	now := e.cfg.Start
	end := time.Time{}
	if maxSim > 0 {
		end = now.Add(maxSim)
	}
	for {
		deadline := now.Add(e.cfg.Lookahead)
		for _, s := range e.shards {
			s.req <- deadline
		}
		minWall, maxWall := time.Duration(-1), time.Duration(0)
		for _, s := range e.shards {
			rep := <-s.done
			s.events += int64(rep.events)
			s.obsEvents.Add(int64(rep.events))
			e.events.Add(int64(rep.events))
			e.obsOccupancy.Observe(float64(rep.events))
			if minWall < 0 || rep.wall < minWall {
				minWall = rep.wall
			}
			if rep.wall > maxWall {
				maxWall = rep.wall
			}
		}
		// Barrier stall: how long the fastest shard idled waiting for the
		// slowest — the cost of load imbalance at this epoch.
		e.obsStall.Observe((maxWall - minWall).Seconds())
		now = deadline
		e.epochs++
		e.obsEpochs.Inc()
		local, outbound := e.drainStaged()
		var inbound []Staged
		stop := false
		if exchange != nil {
			inbound, stop = exchange(now, outbound)
		}
		e.merge(now, local, inbound)
		if done != nil && done(now) {
			break
		}
		if stop {
			break
		}
		if !end.IsZero() && !now.Before(end) {
			break
		}
	}
	return RunStats{
		Epochs:     e.epochs,
		Events:     e.events.Load(),
		Fabric:     e.fabricMsgs,
		CrossShard: e.crossMsgs,
		Dropped:    e.dropped,
	}
}

// work is a shard's worker loop: execute one epoch per request.
func (s *Shard) work() {
	for deadline := range s.req {
		t0 := time.Now()
		n := s.clk.RunUntil(deadline)
		s.done <- epochReport{events: n, wall: time.Since(t0)}
	}
}

// drainStaged empties every shard's mailbox into the engine's reusable merge
// scratch. With Config.Remote, messages addressed outside the local
// directory are split into the second slice — sorted by (From, Seq) so the
// coordinator wire bytes are deterministic — for the exchange callback.
func (e *Engine) drainStaged() (local, remote []Staged) {
	local = e.mergeScratch[:0]
	remote = e.remoteScratch[:0]
	for _, s := range e.shards {
		if !e.cfg.Remote {
			local = append(local, s.staged...)
		} else {
			for _, m := range s.staged {
				if _, ok := e.dir[m.To]; ok {
					local = append(local, m)
				} else {
					remote = append(remote, m)
				}
			}
		}
		s.staged = s.staged[:0]
	}
	sort.Slice(remote, func(i, j int) bool {
		a, b := remote[i], remote[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Seq < b.Seq
	})
	e.mergeScratch, e.remoteScratch = local, remote
	return local, remote
}

// merge schedules the barrier's staged deliveries — local traffic plus
// whatever other processes sent us — onto the destination shards in
// (deliver-at, sender, sender-seq) order. The sort key never mentions shards
// or processes, so the destination clocks see an identical insertion
// sequence — and therefore identical same-instant tiebreaks — whatever the
// partitioning. Runs at the barrier: every worker is parked, so touching all
// shard state is safe.
func (e *Engine) merge(now time.Time, local, inbound []Staged) {
	all := local
	if len(inbound) > 0 {
		all = append(all, inbound...)
		e.mergeScratch = all
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Seq < b.Seq
	})
	for _, m := range all {
		dst, ok := e.dir[m.To]
		if !ok {
			e.dropped++
			e.obsDropped.Inc()
			continue
		}
		e.fabricMsgs++
		e.obsFabric.Inc()
		// A sender with no local port is another process's entity: always a
		// cross-shard hop from this engine's point of view.
		if src, ok := e.dir[m.From]; !ok || src.shard != dst.shard {
			e.crossMsgs++
			e.obsCross.Inc()
		}
		m := m
		dst.shard.clk.Schedule(m.At.Sub(now), func() {
			dst.deliver(m.From, m.Payload)
		})
	}
}
