package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"pogo/internal/obs"
	"pogo/internal/vclock"
)

// pingPong builds a small workload directly on the engine — N ports in a
// ring, each sending M numbered pings to its successor, every ping answered
// with a pong — runs it, and returns the merged delivery log. The log is
// sorted by content (time, receiver, sender, payload), never by shard or
// goroutine, so identical runs must produce identical logs.
func pingPong(shards, ports, pings int) []string {
	e := NewEngine(Config{Shards: shards, Lookahead: 50 * time.Millisecond})
	logs := make([][]string, e.Shards())
	for i := 0; i < ports; i++ {
		sh := e.Shard(i % e.Shards())
		p := sh.Port(fmt.Sprintf("port%03d", i))
		next := fmt.Sprintf("port%03d", (i+1)%ports)
		shardIdx := sh.ID()
		me := p
		p.OnReceive(func(from string, payload []byte) {
			logs[shardIdx] = append(logs[shardIdx], fmt.Sprintf("%d %s <- %s %s",
				sh.Clock().Now().UnixNano(), me.LocalID(), from, payload))
			if strings.HasPrefix(string(payload), "ping") {
				me.Send(from, []byte("pong"+strings.TrimPrefix(string(payload), "ping")))
			}
		})
		for j := 0; j < pings; j++ {
			j := j
			sh.Clock().AfterFunc(time.Duration(j+1)*100*time.Millisecond, func() {
				me.Send(next, []byte(fmt.Sprintf("ping%03d", j)))
			})
		}
	}
	e.Run(time.Duration(pings+10)*100*time.Millisecond, nil)
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	sort.Strings(all)
	return all
}

func logHash(log []string) string {
	sum := sha256.Sum256([]byte(strings.Join(log, "\n")))
	return hex.EncodeToString(sum[:])
}

// TestDeterministicAcrossShardsAndProcs is the engine's core guarantee: the
// same workload yields byte-identical delivery logs whatever the shard count
// and whatever GOMAXPROCS — i.e. real parallelism does not perturb the
// simulation. Run under -race by make check.
func TestDeterministicAcrossShardsAndProcs(t *testing.T) {
	const ports, pings = 24, 8
	ref := pingPong(1, ports, pings)
	if len(ref) != 2*ports*pings {
		t.Fatalf("reference log has %d entries, want %d", len(ref), 2*ports*pings)
	}
	want := logHash(ref)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 3, 4, 8} {
			if got := logHash(pingPong(shards, ports, pings)); got != want {
				t.Errorf("shards=%d GOMAXPROCS=%d: log hash %s, want %s", shards, procs, got, want)
			}
		}
	}
}

// TestFabricLatencyAndOrdering checks the fabric contract: a payload sent at
// t arrives at exactly t+Lookahead, and same-instant deliveries to one
// receiver arrive in (sender, sender-seq) order.
func TestFabricLatencyAndOrdering(t *testing.T) {
	e := NewEngine(Config{Shards: 2, Lookahead: 100 * time.Millisecond})
	a := e.Shard(0).Port("a")
	b := e.Shard(1).Port("b")
	z := e.Shard(0).Port("z")
	var got []string
	var at []time.Time
	b.OnReceive(func(from string, payload []byte) {
		got = append(got, from+":"+string(payload))
		at = append(at, e.Shard(1).Clock().Now())
	})
	// Same send instant from two senders, plus two in-order sends from one.
	start := e.Shard(0).Clock().Now()
	e.Shard(0).Clock().AfterFunc(time.Second, func() {
		z.Send("b", []byte("3"))
		a.Send("b", []byte("1"))
		a.Send("b", []byte("2"))
	})
	e.Run(2*time.Second, nil)
	want := []string{"a:1", "a:2", "z:3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delivery order = %v, want %v", got, want)
	}
	wantAt := start.Add(time.Second + 100*time.Millisecond)
	for i, ts := range at {
		if !ts.Equal(wantAt) {
			t.Errorf("delivery %d at %v, want send+lookahead %v", i, ts, wantAt)
		}
	}
}

// TestEngineObsAndStats checks the engine's instrumentation: epochs, fabric
// and cross-shard counters, unknown-destination drops.
func TestEngineObsAndStats(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(Config{Shards: 2, Lookahead: 100 * time.Millisecond, Obs: reg})
	a := e.Shard(0).Port("a")
	b := e.Shard(1).Port("b")
	delivered := 0
	b.OnReceive(func(string, []byte) { delivered++ })
	a.OnReceive(func(string, []byte) { delivered++ })
	e.Shard(0).Clock().AfterFunc(50*time.Millisecond, func() {
		a.Send("b", []byte("x"))       // cross-shard
		a.Send("nowhere", []byte("y")) // dropped
	})
	e.Shard(1).Clock().AfterFunc(150*time.Millisecond, func() {
		b.Send("a", []byte("z")) // cross-shard back
	})
	stats := e.Run(time.Second, nil)
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	if stats.Fabric != 2 || stats.CrossShard != 2 || stats.Dropped != 1 {
		t.Errorf("stats = %+v, want Fabric=2 CrossShard=2 Dropped=1", stats)
	}
	if stats.Epochs != 10 || reg.CounterValue("fleet_epochs_total") != 10 {
		t.Errorf("epochs = %d (counter %d), want 10", stats.Epochs, reg.CounterValue("fleet_epochs_total"))
	}
	if got := reg.CounterValue("fleet_cross_shard_messages_total"); got != 2 {
		t.Errorf("fleet_cross_shard_messages_total = %d, want 2", got)
	}
	if got := reg.CounterValue("fleet_dropped_total"); got != 1 {
		t.Errorf("fleet_dropped_total = %d, want 1", got)
	}
	if stats.Events == 0 || reg.CounterValue("fleet_shard_events_total", obs.L("shard", "0")) == 0 {
		t.Error("per-shard event accounting empty")
	}
}

// TestBarrierDoneCallback checks that the barrier callback can stop the run
// and safely inspect shard state.
func TestBarrierDoneCallback(t *testing.T) {
	e := NewEngine(Config{Shards: 3, Lookahead: 100 * time.Millisecond})
	fired := 0
	e.Shard(2).Clock().AfterFunc(250*time.Millisecond, func() { fired++ })
	barriers := 0
	stats := e.Run(time.Hour, func(now time.Time) bool {
		barriers++
		return fired > 0 // reads shard 2's state: workers are parked here
	})
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if barriers != 3 || stats.Epochs != 3 {
		t.Errorf("stopped after %d barriers (%d epochs), want 3", barriers, stats.Epochs)
	}
	if got := e.Shard(2).Clock().Now(); !got.Equal(vclock.SimEpoch.Add(300 * time.Millisecond)) {
		t.Errorf("shard clock at %v, want start+300ms", got)
	}
}
