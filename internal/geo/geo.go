// Package geo simulates the Google geolocation service the paper's
// collect.js uses (§4.1): given a set of observed Wi-Fi access points, it
// returns a coordinate estimate — here, the signal-weighted centroid of the
// known APs' surveyed positions.
//
// The Service half plugs into a collector context's broker as a
// request/response pair of channels: scripts publish {id, aps} on
// "geo-lookup" and receive {id, lat, lon, accuracy} on "geo-result".
package geo

import (
	"sync"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
)

// Coord is a surveyed access point position.
type Coord struct {
	Lat, Lon float64
}

// DB maps BSSIDs to surveyed coordinates. The zero value is not usable;
// construct with NewDB.
type DB struct {
	mu  sync.RWMutex
	aps map[string]Coord
}

// NewDB returns an empty AP survey database.
func NewDB() *DB {
	return &DB{aps: make(map[string]Coord)}
}

// Add surveys an access point at the given coordinate.
func (d *DB) Add(bssid string, c Coord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.aps[bssid] = c
}

// Len returns the number of surveyed APs.
func (d *DB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.aps)
}

// Locate estimates a position from a sparse BSSID → signal-weight vector.
// It returns false when no observed AP is in the database.
func (d *DB) Locate(aps map[string]float64) (Coord, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var lat, lon, weight float64
	for bssid, w := range aps {
		c, ok := d.aps[bssid]
		if !ok {
			continue
		}
		if w <= 0 {
			w = 0.01
		}
		lat += c.Lat * w
		lon += c.Lon * w
		weight += w
	}
	if weight == 0 {
		return Coord{}, false
	}
	return Coord{Lat: lat / weight, Lon: lon / weight}, true
}

// Channel names of the lookup service.
const (
	ChannelLookup = "geo-lookup"
	ChannelResult = "geo-result"
)

// Service answers geo-lookup requests on a broker. Construct with
// NewService; call Close to detach.
type Service struct {
	db  *DB
	sub *pubsub.Subscription
	// Lookups counts served requests (including misses).
	mu      sync.Mutex
	lookups int
	misses  int
}

// NewService attaches a lookup responder to the broker.
func NewService(db *DB, broker *pubsub.Broker) *Service {
	s := &Service{db: db}
	s.sub = broker.Subscribe(ChannelLookup, nil, func(ev pubsub.Event) {
		s.mu.Lock()
		s.lookups++
		s.mu.Unlock()
		id, _ := ev.Message["id"]
		apsRaw, _ := ev.Message["aps"].(msg.Map)
		aps := make(map[string]float64, len(apsRaw))
		for k, v := range apsRaw {
			if f, ok := v.(float64); ok {
				aps[k] = f
			}
		}
		c, ok := s.db.Locate(aps)
		if !ok {
			s.mu.Lock()
			s.misses++
			s.mu.Unlock()
			broker.Publish(ChannelResult, msg.Map{"id": id, "error": "not-found"})
			return
		}
		broker.Publish(ChannelResult, msg.Map{
			"id": id, "lat": c.Lat, "lon": c.Lon, "accuracy": 30.0,
		})
	})
	return s
}

// Stats returns (lookups, misses).
func (s *Service) Stats() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookups, s.misses
}

// Close detaches the service from its broker.
func (s *Service) Close() { s.sub.Close() }
