package geo

import (
	"math"
	"testing"

	"pogo/internal/msg"
	"pogo/internal/pubsub"
)

func TestLocateWeightedCentroid(t *testing.T) {
	db := NewDB()
	db.Add("a", Coord{Lat: 52.0, Lon: 4.0})
	db.Add("b", Coord{Lat: 52.2, Lon: 4.2})
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	// Equal weights → midpoint.
	c, ok := db.Locate(map[string]float64{"a": 1, "b": 1})
	if !ok || math.Abs(c.Lat-52.1) > 1e-9 || math.Abs(c.Lon-4.1) > 1e-9 {
		t.Errorf("Locate = %+v, %v", c, ok)
	}
	// Heavier weight pulls the estimate.
	c, _ = db.Locate(map[string]float64{"a": 3, "b": 1})
	if c.Lat >= 52.1 {
		t.Errorf("weighting ignored: %+v", c)
	}
	// Unknown APs are ignored; all-unknown is a miss.
	c, ok = db.Locate(map[string]float64{"a": 1, "zz": 1})
	if !ok || math.Abs(c.Lat-52.0) > 1e-9 {
		t.Errorf("partial = %+v, %v", c, ok)
	}
	if _, ok := db.Locate(map[string]float64{"zz": 1}); ok {
		t.Error("all-unknown lookup succeeded")
	}
	if _, ok := db.Locate(nil); ok {
		t.Error("empty lookup succeeded")
	}
}

func TestLocateZeroWeight(t *testing.T) {
	db := NewDB()
	db.Add("a", Coord{Lat: 52.0, Lon: 4.0})
	c, ok := db.Locate(map[string]float64{"a": 0})
	if !ok || math.Abs(c.Lat-52.0) > 1e-9 {
		t.Errorf("zero-weight Locate = %+v, %v", c, ok)
	}
}

func TestServiceAnswersLookups(t *testing.T) {
	db := NewDB()
	db.Add("a", Coord{Lat: 52.0, Lon: 4.35})
	broker := pubsub.New()
	svc := NewService(db, broker)
	defer svc.Close()

	var results []msg.Map
	broker.Subscribe(ChannelResult, nil, func(ev pubsub.Event) {
		results = append(results, ev.Message)
	})

	broker.Publish(ChannelLookup, msg.Map{"id": "r1", "aps": msg.Map{"a": 0.8}})
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0]["id"].(string) != "r1" || results[0]["lat"].(float64) != 52.0 {
		t.Errorf("result = %v", results[0])
	}

	// A miss still answers, with an error marker.
	broker.Publish(ChannelLookup, msg.Map{"id": "r2", "aps": msg.Map{"nope": 0.5}})
	if len(results) != 2 || results[1]["error"].(string) != "not-found" {
		t.Errorf("miss result = %v", results)
	}
	lookups, misses := svc.Stats()
	if lookups != 2 || misses != 1 {
		t.Errorf("stats = %d, %d", lookups, misses)
	}
}

func TestServiceClose(t *testing.T) {
	db := NewDB()
	broker := pubsub.New()
	svc := NewService(db, broker)
	svc.Close()
	broker.Publish(ChannelLookup, msg.Map{"id": "r1", "aps": msg.Map{}})
	if lookups, _ := svc.Stats(); lookups != 0 {
		t.Error("closed service handled a lookup")
	}
}
