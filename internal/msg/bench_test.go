package msg

import "testing"

func benchPayload() Map {
	aps := Map{}
	for _, k := range []string{"aa:01", "aa:02", "aa:03", "aa:04", "aa:05", "aa:06"} {
		aps[k] = 0.73
	}
	return Map{"t": 1338508800000.0, "aps": aps, "samples": 42.0}
}

func BenchmarkEncodeJSON(b *testing.B) {
	m := benchPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeJSON(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeJSON(b *testing.B) {
	raw, err := EncodeJSON(benchPayload())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeJSON(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	m := benchPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Clone(m)
	}
}
