package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"unicode/utf8"
	"unsafe"
)

// Compact binary message codec: the wire format for the transport and fleet
// fabric. JSON remains the interchange format for everything human-facing
// (/metrics.json, CSV export, logs) and for fuzz cross-checks; the two codecs
// are value-equivalent by construction — both coerce NaN/±Inf to null and
// both treat integral floats |x| < 1e15 as integers — so switching the wire
// codec cannot change what a subscriber observes.
//
// Layout: one tag byte per value, varint lengths, no padding.
//
//	tag 0x00  null
//	tag 0x01  false
//	tag 0x02  true
//	tag 0x03  float64     8 bytes IEEE 754, big-endian
//	tag 0x04  integer     zigzag varint (integral floats, |x| < 1e15)
//	tag 0x05  string      uvarint byte length + UTF-8 bytes
//	tag 0x06  array       uvarint count + count values
//	tag 0x07  map         uvarint count + count × (uvarint key len + key bytes + value),
//	                      keys sorted lexicographically (deterministic bytes)
//
// The first byte of any binary value is ≤ 0x07, which can never begin valid
// JSON (whitespace, '{', '[', '"', digits, '-', 't', 'f', 'n' are all
// ≥ 0x09) — Decode exploits that to sniff the codec.
//
// Decoding is zero-copy over the input buffer except for retained strings
// (map keys and string values must outlive the frame, so they are copied
// out); structure (slices, maps) is allocated, scalars are not. Hostile
// input cannot over-allocate: every claimed length and count is bounded by
// the bytes actually remaining in the buffer before anything is allocated,
// and nesting depth shares maxJSONDepth with the JSON decoder.

const (
	tagNull   = 0x00
	tagFalse  = 0x01
	tagTrue   = 0x02
	tagFloat  = 0x03
	tagInt    = 0x04
	tagString = 0x05
	tagArray  = 0x06
	tagMap    = 0x07
)

// binaryMaxTag is the highest tag byte; Decode uses it to sniff binary
// input from JSON.
const binaryMaxTag = tagMap

// ErrBinary reports malformed binary codec input.
var ErrBinary = errors.New("msg: binary decode")

// encBufPool recycles encode buffers so steady-state encoding is
// allocation-free. Buffers are returned by EncodeBinary before copying out;
// external callers that want pooling should use AppendBinary with their own
// buffer discipline (the transport does).
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

// EncodeBinary serializes a message value to the binary codec. The returned
// slice is freshly allocated and owned by the caller; hot paths that reuse
// buffers should call AppendBinary instead.
func EncodeBinary(v Value) ([]byte, error) {
	bp := encBufPool.Get().(*[]byte)
	buf, err := AppendBinary((*bp)[:0], v)
	if err != nil {
		// AppendBinary returns a nil slice on error: keep the buffer the
		// pool slot already had instead of clobbering it with nil, which
		// would silently re-allocate on every future Get.
		encBufPool.Put(bp)
		return nil, err
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	*bp = buf[:0]
	encBufPool.Put(bp)
	return out, nil
}

// AppendBinary appends the binary encoding of v to dst and returns the
// extended slice. This is the allocation-free primitive under EncodeBinary:
// with a pre-sized dst it performs no heap allocation for scalar payloads
// and only the sorted-key scratch for maps.
func AppendBinary(dst []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNull), nil
	case bool:
		if x {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// Mirror the JSON encoder: JSON has no NaN/Inf, so both codecs
			// agree the value is null.
			return append(dst, tagNull), nil
		}
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			dst = append(dst, tagInt)
			return binary.AppendVarint(dst, int64(x)), nil
		}
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case string:
		dst = append(dst, tagString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case []Value:
		dst = append(dst, tagArray)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = AppendBinary(dst, e); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case Map:
		dst = append(dst, tagMap)
		dst = binary.AppendUvarint(dst, uint64(Len(x)))
		// Sorted-key scratch comes from a pool and is held until the
		// iteration finishes — nested maps Get their own scratch because
		// this one isn't Put back yet.
		sp := keysPool.Get().(*[]string)
		keys := (*sp)[:0]
		for k, e := range x {
			if isMarker(k, e) {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var err error
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			if dst, err = AppendBinary(dst, x[k]); err != nil {
				*sp = keys[:0]
				keysPool.Put(sp)
				return nil, err
			}
		}
		*sp = keys[:0]
		keysPool.Put(sp)
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedValue, v)
	}
}

// keysPool recycles the sorted-key scratch slices map encoding needs, so a
// steady-state encode of nested maps allocates nothing.
var keysPool = sync.Pool{
	New: func() any { s := make([]string, 0, 16); return &s },
}

// DecodeBinary parses a binary-codec value. It rejects trailing data, depth
// beyond maxJSONDepth, and any length or count exceeding the bytes that
// remain — malformed or hostile input errors out before large allocations.
func DecodeBinary(data []byte) (Value, error) {
	v, rest, err := decodeBinary(data, 0, false)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes of trailing data", ErrBinary, len(rest))
	}
	return v, nil
}

// DecodeBinaryFrozen parses a binary-codec value for the delivery hot path:
// map keys are interned, string values alias the input buffer instead of
// being copied out, and a map root is frozen in place, ready to share across
// subscribers. The returned value RETAINS data — the caller must not modify
// the buffer after the call (hand the decoder its own copy, as the transport
// receive path does).
func DecodeBinaryFrozen(data []byte) (Value, error) {
	// Byte-identical bodies decode to the same immutable tree; a memo hit
	// skips the whole decode. Retransmissions and unchanged periodic
	// readings make exact duplicates common.
	if v, ok := cachedFrozen(data); ok {
		return v, nil
	}
	v, rest, err := decodeBinary(data, 0, true)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes of trailing data", ErrBinary, len(rest))
	}
	if m, ok := v.(Map); ok {
		// FreezeOwned refuses (returns the map unfrozen) when hostile input
		// already carries an ordinary entry under the marker key — content
		// always wins over the optimization.
		fm := FreezeOwned(m)
		if IsFrozen(fm) {
			// Only genuinely frozen (immutable, shareable) roots are memoized.
			storeFrozen(data, fm)
		}
		return fm, nil
	}
	return v, nil
}

func decodeBinary(data []byte, depth int, alias bool) (Value, []byte, error) {
	if depth > maxJSONDepth {
		return nil, nil, fmt.Errorf("%w: nesting too deep", ErrBinary)
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("%w: unexpected end of input", ErrBinary)
	}
	tag := data[0]
	data = data[1:]
	switch tag {
	case tagNull:
		return nil, data, nil
	case tagFalse:
		return false, data, nil
	case tagTrue:
		return true, data, nil
	case tagFloat:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("%w: truncated float", ErrBinary)
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(data))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// The encoder never emits NaN/Inf (both codecs coerce them to
			// null); hostile bits get the same treatment on the way in.
			return nil, data[8:], nil
		}
		return boxFloat(f), data[8:], nil
	case tagInt:
		n, sz := binary.Varint(data)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: bad varint", ErrBinary)
		}
		return boxFloat(float64(n)), data[sz:], nil
	case tagString:
		s, rest, err := decodeBinaryStr(data, alias)
		if err != nil {
			return nil, nil, err
		}
		return s, rest, nil
	case tagArray:
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: bad array count", ErrBinary)
		}
		data = data[sz:]
		// Every element takes at least one byte: a count beyond the bytes
		// remaining is a lie, reject before allocating.
		if n > uint64(len(data)) {
			return nil, nil, fmt.Errorf("%w: array count %d exceeds input", ErrBinary, n)
		}
		out := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			var (
				e   Value
				err error
			)
			e, data, err = decodeBinary(data, depth+1, alias)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, e)
		}
		return out, data, nil
	case tagMap:
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: bad map count", ErrBinary)
		}
		data = data[sz:]
		// Every entry takes at least two bytes (key length + value tag).
		if n > uint64(len(data))/2 {
			return nil, nil, fmt.Errorf("%w: map count %d exceeds input", ErrBinary, n)
		}
		// Alias mode over-hints by one so the root map can absorb the freeze
		// marker without a rehash.
		hint := n
		if alias {
			hint++
		}
		out := make(Map, hint)
		for i := uint64(0); i < n; i++ {
			var (
				k   string
				v   Value
				err error
			)
			k, data, err = decodeBinaryKey(data, alias)
			if err != nil {
				return nil, nil, err
			}
			v, data, err = decodeBinary(data, depth+1, alias)
			if err != nil {
				return nil, nil, err
			}
			out[k] = v
		}
		return out, data, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrBinary, tag)
	}
}

// decodeBinaryStr reads uvarint length + bytes. In copy mode the string is
// the one copy the decoder makes: it must outlive the frame buffer. In alias
// mode the string shares the input buffer's backing array (the caller
// guaranteed the buffer is retained and immutable). Invalid UTF-8 is coerced
// to U+FFFD exactly like the JSON codec, so the two wire formats can never
// disagree about string content.
func decodeBinaryStr(data []byte, alias bool) (string, []byte, error) {
	raw, rest, err := decodeBinaryRaw(data)
	if err != nil {
		return "", nil, err
	}
	if !utf8.Valid(raw) {
		return fixUTF8(raw), rest, nil
	}
	if alias {
		return aliasString(raw), rest, nil
	}
	return string(raw), rest, nil
}

// decodeBinaryKey reads a map key. In alias mode keys are interned: sensor
// payloads repeat the same few keys forever, so after first sight a key
// costs no allocation at all and every frozen message shares one canonical
// copy.
func decodeBinaryKey(data []byte, alias bool) (string, []byte, error) {
	raw, rest, err := decodeBinaryRaw(data)
	if err != nil {
		return "", nil, err
	}
	if !utf8.Valid(raw) {
		return fixUTF8(raw), rest, nil
	}
	if alias {
		return Intern(raw), rest, nil
	}
	return string(raw), rest, nil
}

// decodeBinaryRaw bounds-checks a uvarint length prefix and returns the raw
// byte span plus the remainder.
func decodeBinaryRaw(data []byte) (raw, rest []byte, err error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("%w: bad string length", ErrBinary)
	}
	data = data[sz:]
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: string length %d exceeds input", ErrBinary, n)
	}
	return data[:n], data[n:], nil
}

// aliasString reinterprets b as a string without copying. Callers must
// guarantee b's backing array is never written again — the alias-decode
// contract.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Decode parses either codec, sniffing by the first byte: binary tags are
// 0x00..0x07, which never begin valid JSON. This keeps mixed-codec peers
// interoperable — a node that still speaks JSON is decoded transparently.
func Decode(data []byte) (Value, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrBinary)
	}
	if data[0] <= binaryMaxTag {
		return DecodeBinary(data)
	}
	return DecodeJSON(data)
}

// DecodeFrozen is Decode for the delivery path: the same codec sniff, but a
// map result arrives already frozen and the binary path aliases strings into
// data instead of copying them out. data must not be modified after the
// call. Legacy JSON input still pays the copying decoder; only the freeze is
// added there.
func DecodeFrozen(data []byte) (Value, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrBinary)
	}
	if data[0] <= binaryMaxTag {
		return DecodeBinaryFrozen(data)
	}
	if v, ok := cachedFrozen(data); ok {
		return v, nil
	}
	v, err := DecodeJSON(data)
	if err != nil {
		return nil, err
	}
	if m, ok := v.(Map); ok {
		fm := FreezeOwned(m)
		if IsFrozen(fm) {
			storeFrozen(data, fm)
		}
		return fm, nil
	}
	return v, nil
}
