package msg

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	values := []Value{
		nil,
		true,
		false,
		0.0,
		-1.0,
		42.0,
		-0.5,
		1e-9,
		123456789012345678.0, // past the integer cutoff: stays float
		999999999999999.0,    // |x| < 1e15: integer encoding
		math.MaxFloat64,
		"",
		"hello",
		"unicode ✓ and \"quotes\" and \x00 nul",
		[]Value{},
		[]Value{1.0, "two", nil, false, []Value{2.5}},
		Map{},
		Map{"wifi": Map{"rssi": -61.0, "ssid": "eduroam"}, "tags": []Value{"a", "b"}},
	}
	for _, v := range values {
		b, err := EncodeBinary(v)
		if err != nil {
			t.Fatalf("EncodeBinary(%#v): %v", v, err)
		}
		back, err := DecodeBinary(b)
		if err != nil {
			t.Fatalf("DecodeBinary(%#v): %v", v, err)
		}
		if !Equal(v, back) {
			t.Errorf("round-trip diverged:\n in: %#v\nout: %#v", v, back)
		}
	}
}

func TestBinaryNaNInfAsNull(t *testing.T) {
	b, err := EncodeBinary([]Value{math.NaN(), math.Inf(1), math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(back, []Value{nil, nil, nil}) {
		t.Errorf("NaN/Inf = %#v, want nulls (JSON parity)", back)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	m := Map{"zeta": 1.0, "alpha": 2.0, "mid": []Value{true, nil, "s"}}
	b1, err := EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeBinary(Clone(m))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("binary encoding not deterministic across clones")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	m := Map{
		"device":    "phone-0042",
		"channel":   "wifi-scan",
		"timestamp": 1722870000.0,
		"readings":  []Value{-61.0, -72.0, -55.0, -80.0},
		"charging":  false,
	}
	jb, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) >= len(jb) {
		t.Errorf("binary (%d bytes) not smaller than JSON (%d bytes)", len(bb), len(jb))
	}
}

func TestDecodeSniffsCodec(t *testing.T) {
	m := Map{"a": 1.0, "s": "x"}
	jb, _ := EncodeJSON(m)
	bb, _ := EncodeBinary(m)
	for _, in := range [][]byte{jb, bb} {
		v, err := Decode(in)
		if err != nil {
			t.Fatalf("Decode(%q): %v", in, err)
		}
		if !Equal(v, m) {
			t.Errorf("Decode(%q) = %#v, want %#v", in, v, m)
		}
	}
	// Scalar JSON forms must also sniff correctly: they start with digits,
	// '-', '"', 't', 'f', 'n' — all above the binary tag range.
	for _, in := range []string{`1`, `-2.5`, `"s"`, `true`, `false`, `null`, ` {"a":1}`} {
		if _, err := Decode([]byte(in)); err != nil {
			t.Errorf("Decode(%q): %v", in, err)
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(empty) succeeded, want error")
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	good, _ := EncodeBinary(Map{"a": []Value{1.0, "x"}})
	cases := map[string][]byte{
		"empty":              {},
		"unknown tag":        {0x7f},
		"truncated float":    {tagFloat, 1, 2, 3},
		"bad varint":         {tagInt, 0x80},
		"truncated string":   {tagString, 10, 'a', 'b'},
		"array count bomb":   {tagArray, 0xff, 0xff, 0xff, 0xff, 0x07, tagNull},
		"map count bomb":     {tagMap, 0xff, 0xff, 0xff, 0xff, 0x07},
		"string length bomb": {tagString, 0xff, 0xff, 0xff, 0xff, 0x07, 'a'},
		"trailing data":      append(append([]byte{}, good...), tagNull),
		"map missing value":  {tagMap, 1, 1, 'k'},
	}
	for name, in := range cases {
		if _, err := DecodeBinary(in); err == nil {
			t.Errorf("%s: DecodeBinary(%v) succeeded, want error", name, in)
		}
	}
	// Truncate the good encoding at every prefix: none may panic, all but
	// the full length must error.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeBinary(good[:i]); err == nil {
			t.Errorf("prefix of length %d decoded successfully", i)
		}
	}
}

func TestBinaryDepthLimit(t *testing.T) {
	// 20k nested arrays: [ [ [ ... null ... ] ] ] — two header bytes per
	// level, well past maxJSONDepth. Must error, not overflow the stack.
	depth := maxJSONDepth + 10
	buf := make([]byte, 0, depth*2+1)
	for i := 0; i < depth; i++ {
		buf = append(buf, tagArray, 1)
	}
	buf = append(buf, tagNull)
	if _, err := DecodeBinary(buf); err == nil {
		t.Error("DecodeBinary accepted nesting past the depth limit")
	}
	// The JSON decoder enforces the same bound.
	js := strings.Repeat("[", depth) + "null" + strings.Repeat("]", depth)
	if _, err := DecodeJSON([]byte(js)); err == nil {
		t.Error("DecodeJSON accepted nesting past the depth limit")
	}
}

// TestPropertyBinaryJSONEquivalence: for random message values, the two
// codecs agree — decoding the binary form and decoding the JSON form give
// Equal values.
func TestPropertyBinaryJSONEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(Map{"v": randomValue(r, 3)})
		},
	}
	prop := func(m Map) bool {
		jb, err := EncodeJSON(m)
		if err != nil {
			return false
		}
		bb, err := EncodeBinary(m)
		if err != nil {
			return false
		}
		jv, err := DecodeJSON(jb)
		if err != nil {
			return false
		}
		bv, err := DecodeBinary(bb)
		if err != nil {
			return false
		}
		return Equal(jv, bv) && Equal(m, bv)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
