// Frozen messages: the copy-on-write discipline behind the broker's
// zero-copy fanout.
//
// The paper's delivery contract gives every subscriber its own private copy
// of a published message, which at deployment scale (a collector channel
// with ~1000 device proxies) turns one publish into a thousand deep clones.
// Freezing inverts the ownership: Freeze deep-copies the tree ONCE into an
// immutable "frozen" form, and the broker hands every subscriber the same
// frozen tree. A subscriber that wants to mutate calls Thaw (or
// pubsub.Event.MutableMessage) and pays for its own private clone — copies
// happen lazily, only where a writer actually exists, so fanout cost drops
// from O(subscribers × tree) to O(tree).
//
// Frozen-ness is recorded as a sentinel entry inside the root map under
// markerKey. The marker's value has an unexported type, so no decoder (JSON
// or binary — both produce only the six domain types) and no script can
// forge it: hostile wire input may contain the marker KEY, but then it is an
// ordinary entry that encodes, clones, and compares like any other. Every
// walker in this package (Clone, Equal, Normalize, the codecs) and the
// script-value converter skip marker entries, so freezing is invisible to
// message content — a frozen map encodes to exactly the bytes its unfrozen
// original would.
package msg

import "sort"

// markerKey holds the freeze marker. The key starts with NUL so it sorts
// before (and can never collide with) any key a well-behaved publisher uses.
const markerKey = "\x00frozen"

// frozenMark is the marker's value type. Unexported and carrying no state:
// only this package can create one, which is what makes IsFrozen sound.
type frozenMark struct{}

// IsFrozen reports whether m is a frozen (immutable, shareable) message
// root. Only roots returned by Freeze/FreezeOwned are frozen; nested maps
// inside a frozen tree are protected by the root's contract, not their own
// marker.
func IsFrozen(m Map) bool {
	_, ok := m[markerKey].(frozenMark)
	return ok
}

// Freeze returns an immutable snapshot of m that may be shared across
// goroutines without copying. When m is already frozen it is returned
// as-is (a "freeze hit": O(1), allocation-free). Otherwise the tree is
// deep-cloned once and the clone is marked; the caller's map is NOT
// mutated, so publishers stay free to reuse or modify their own maps after
// publishing.
//
// Pathological case: if m already carries an ordinary (non-marker) entry
// under the marker key, marking the clone would overwrite that entry. Freeze
// refuses to lose content — it returns the plain unfrozen clone instead.
// Callers that share messages must therefore check IsFrozen on the result
// (the broker falls back to per-subscriber clones), never assume it.
//
// The returned map must be treated as read-only. Mutate through Thaw.
// Freeze(nil) is nil.
func Freeze(m Map) Map {
	if m == nil {
		return nil
	}
	if IsFrozen(m) {
		return m
	}
	out := cloneMap(m, 1)
	if _, collides := out[markerKey]; collides {
		return out
	}
	out[markerKey] = frozenMark{}
	return out
}

// FreezeOwned marks m frozen IN PLACE, avoiding Freeze's defensive clone.
// The caller asserts it holds the only reference — typical for maps freshly
// decoded off the wire or just built by a script conversion. After the call
// the map is immutable: the caller must not write to it again.
// FreezeOwned(nil) is nil.
func FreezeOwned(m Map) Map {
	if m == nil {
		return nil
	}
	if _, collides := m[markerKey]; collides {
		return m // same content-preserving refusal as Freeze
	}
	m[markerKey] = frozenMark{}
	return m
}

// Thaw returns a privately owned, mutable version of m: a deep clone when m
// is frozen (the lazy copy of the copy-on-write discipline), m itself when
// it is already mutable. Thaw(nil) is nil.
func Thaw(m Map) Map {
	if m == nil || !IsFrozen(m) {
		return m
	}
	return cloneMap(m, 1)
}

// Len returns the number of message entries in m, excluding the freeze
// marker: the length Equal, the codecs, and subscribers observe.
func Len(m Map) int {
	n := len(m)
	if IsFrozen(m) {
		n--
	}
	return n
}

// Keys returns m's keys sorted lexicographically, excluding the freeze
// marker — the deterministic iteration order used by the codecs and the
// script-value converter.
func Keys(m Map) []string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if isMarker(k, v) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// isMarker reports whether a map entry is the freeze marker (and must be
// skipped by every walker).
func isMarker(k string, v Value) bool {
	if k != markerKey {
		return false
	}
	_, ok := v.(frozenMark)
	return ok
}
