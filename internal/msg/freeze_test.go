package msg

import (
	"reflect"
	"testing"
)

func TestFreezeBasics(t *testing.T) {
	orig := Map{"n": 1.0, "nest": Map{"x": "y"}}
	fz := Freeze(orig)
	if !IsFrozen(fz) {
		t.Fatal("Freeze result is not frozen")
	}
	if IsFrozen(orig) {
		t.Error("Freeze mutated the caller's map")
	}
	if !Equal(orig, fz) {
		t.Error("frozen copy differs from original")
	}
	// Re-freezing is a hit: same map back, no copy.
	fz2 := Freeze(fz)
	if reflect.ValueOf(fz2).Pointer() != reflect.ValueOf(fz).Pointer() {
		t.Error("Freeze of a frozen map did not return it unchanged")
	}
	if Freeze(nil) != nil {
		t.Error("Freeze(nil) != nil")
	}
}

func TestFreezeIsolation(t *testing.T) {
	orig := Map{"n": 1.0, "nest": Map{"x": "y"}}
	fz := Freeze(orig)
	// Publisher keeps mutating its own map after the freeze; the frozen
	// snapshot must not see it.
	orig["n"] = 99.0
	orig["nest"].(Map)["x"] = "z"
	if fz["n"].(float64) != 1.0 {
		t.Error("mutating original changed frozen scalar")
	}
	if fz["nest"].(Map)["x"].(string) != "y" {
		t.Error("mutating original changed frozen nested map")
	}
}

func TestFreezeOwned(t *testing.T) {
	m := Map{"a": 1.0}
	fz := FreezeOwned(m)
	if reflect.ValueOf(fz).Pointer() != reflect.ValueOf(m).Pointer() {
		t.Error("FreezeOwned did not mark in place")
	}
	if !IsFrozen(m) {
		t.Error("FreezeOwned did not freeze")
	}
	if FreezeOwned(nil) != nil {
		t.Error("FreezeOwned(nil) != nil")
	}
}

func TestThaw(t *testing.T) {
	fz := Freeze(Map{"n": 1.0, "nest": Map{"x": "y"}})
	th := Thaw(fz)
	if IsFrozen(th) {
		t.Fatal("Thaw result still frozen")
	}
	th["n"] = 2.0
	th["nest"].(Map)["x"] = "z"
	if fz["n"].(float64) != 1.0 || fz["nest"].(Map)["x"].(string) != "y" {
		t.Error("mutating thawed copy leaked into frozen original")
	}
	// Thawing a mutable map is the identity.
	m := Map{"a": 1.0}
	if reflect.ValueOf(Thaw(m)).Pointer() != reflect.ValueOf(m).Pointer() {
		t.Error("Thaw of a mutable map copied it")
	}
	if Thaw(nil) != nil {
		t.Error("Thaw(nil) != nil")
	}
}

func TestLenAndKeysSkipMarker(t *testing.T) {
	fz := Freeze(Map{"b": 1.0, "a": 2.0})
	if Len(fz) != 2 {
		t.Errorf("Len(frozen) = %d, want 2", Len(fz))
	}
	keys := Keys(fz)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys(frozen) = %v, want [a b]", keys)
	}
	if Len(Map{}) != 0 || len(Keys(Map{})) != 0 {
		t.Error("Len/Keys of empty map nonzero")
	}
}

// TestFreezeInvisibleToContent pins the core invariant: freezing must not
// change what any observer of message CONTENT sees — equality, clones,
// normalization, and both codecs behave identically on frozen and unfrozen
// trees.
func TestFreezeInvisibleToContent(t *testing.T) {
	orig := Map{"wifi": Map{"rssi": -61.0}, "tags": []Value{"a", "b"}}
	fz := Freeze(orig)

	if !Equal(orig, fz) || !Equal(fz, orig) {
		t.Error("Equal distinguishes frozen from unfrozen")
	}
	cl, _ := Clone(fz).(Map)
	if IsFrozen(cl) {
		t.Error("Clone of a frozen map is still frozen")
	}
	n, err := Normalize(fz)
	if err != nil {
		t.Fatalf("Normalize(frozen): %v", err)
	}
	if IsFrozen(n.(Map)) {
		t.Error("Normalize kept the freeze marker")
	}

	j1, err1 := EncodeJSON(orig)
	j2, err2 := EncodeJSON(fz)
	if err1 != nil || err2 != nil || string(j1) != string(j2) {
		t.Errorf("JSON encodings differ: %q vs %q (%v, %v)", j1, j2, err1, err2)
	}
	b1, err1 := EncodeBinary(orig)
	b2, err2 := EncodeBinary(fz)
	if err1 != nil || err2 != nil || string(b1) != string(b2) {
		t.Errorf("binary encodings differ (%v, %v)", err1, err2)
	}
}

// TestHostileMarkerKey: wire input that happens to contain the marker KEY is
// an ordinary entry — it cannot forge frozen-ness (the marker's value type
// is unexported) and it survives both codecs untouched.
func TestHostileMarkerKey(t *testing.T) {
	m := Map{"\x00frozen": 1.0, "a": 2.0}
	if IsFrozen(m) {
		t.Fatal("plain entry under the marker key counted as frozen")
	}
	if Len(m) != 2 || len(Keys(m)) != 2 {
		t.Error("Len/Keys dropped a non-marker entry under the marker key")
	}
	for _, enc := range []func(Value) ([]byte, error){EncodeJSON, EncodeBinary} {
		b, err := enc(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(m, back) {
			t.Errorf("hostile marker key did not round-trip: %#v", back)
		}
	}
	// Freeze refuses to overwrite the hostile entry: the result keeps the
	// content but is NOT frozen (callers fall back to per-subscriber clones).
	fz := Freeze(m)
	if !Equal(m, fz) {
		t.Error("freeze of hostile-key map lost content")
	}
	if IsFrozen(fz) {
		t.Error("freeze of hostile-key map claims frozen despite collision")
	}
	if IsFrozen(FreezeOwned(Map{"\x00frozen": 1.0})) {
		t.Error("FreezeOwned froze over a colliding entry")
	}
}
