package msg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"
)

// FuzzBinaryRoundTrip drives arbitrary bytes through the binary decoder.
// Inputs it accepts must round-trip canonically (decode → encode → decode
// converges, second encode is byte-identical) and must be value-equivalent
// through the JSON codec: the two wire formats may never disagree about
// message content. Hostile inputs may be rejected but must not panic — and
// the decoder's length/count guards mean a rejected input has not allocated
// anything proportional to its claimed sizes.
func FuzzBinaryRoundTrip(f *testing.F) {
	seeds := []Value{
		nil,
		true,
		42.0,
		-0.5,
		1e-9,
		123456789012345678.0,
		"hello",
		"unicode ✓ and \"quotes\"",
		[]Value{},
		[]Value{1.0, "two", nil, false},
		Map{},
		Map{"wifi": Map{"rssi": -61.0, "ssid": "eduroam"}, "tags": []Value{"a", "b"}},
	}
	for _, v := range seeds {
		b, err := EncodeBinary(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Hostile shapes: claimed sizes far beyond the input, bad tags, depth.
	f.Add([]byte{tagArray, 0xff, 0xff, 0xff, 0xff, 0x07})
	f.Add([]byte{tagMap, 0xff, 0xff, 0xff, 0xff, 0x07})
	f.Add([]byte{tagString, 0xff, 0xff, 0xff, 0xff, 0x07})
	f.Add([]byte{0x7f})
	f.Add(bytes.Repeat([]byte{tagArray, 1}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeBinary(data)
		if err != nil {
			return // rejecting garbage is fine; crashing is not
		}
		b, err := EncodeBinary(v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v (input %q)", err, data)
		}
		v2, err := DecodeBinary(b)
		if err != nil {
			t.Fatalf("own encoding does not decode: %v", err)
		}
		if !Equal(v, v2) {
			t.Errorf("binary round-trip diverged:\n in: %#v\nout: %#v", v, v2)
		}
		b2, err := EncodeBinary(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("binary encoding not canonical: %x vs %x", b, b2)
		}
		// Cross-codec equivalence: the value must survive the JSON codec
		// with identical content.
		jb, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("binary-decoded value does not JSON-encode: %v", err)
		}
		jv, err := DecodeJSON(jb)
		if err != nil {
			t.Fatalf("JSON re-decode failed: %v (wire %q)", err, jb)
		}
		if !Equal(v, jv) {
			t.Errorf("codecs disagree:\nbinary: %#v\n  json: %#v", v, jv)
		}
	})
}

// refDecodeJSON is the stdlib-based decoder the hand-rolled one replaced,
// kept as the semantic reference: the fuzz suite cross-checks the two on
// every input. One deliberate fix over the original: the trailing-data
// check uses Token-until-EOF rather than Decoder.More, because More()
// reports false for a trailing ']' or '}' and the original silently
// accepted inputs like "true]".
func refDecodeJSON(data []byte) (Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	raw, err := refDecodeToken(dec)
	if err != nil {
		return nil, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("trailing data")
	}
	return raw, nil
}

func refDecodeToken(dec *json.Decoder) (Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			out := Map{}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("object key is %T, want string", keyTok)
				}
				val, err := refDecodeToken(dec)
				if err != nil {
					return nil, err
				}
				out[key] = val
			}
			if _, err := dec.Token(); err != nil {
				return nil, err
			}
			return out, nil
		case '[':
			out := []Value{}
			for dec.More() {
				val, err := refDecodeToken(dec)
				if err != nil {
					return nil, err
				}
				out = append(out, val)
			}
			if _, err := dec.Token(); err != nil {
				return nil, err
			}
			return out, nil
		default:
			return nil, fmt.Errorf("unexpected delimiter %q", t)
		}
	case json.Number:
		return t.Float64()
	case string, bool, nil:
		return t, nil
	default:
		return nil, fmt.Errorf("unexpected token %T", tok)
	}
}
