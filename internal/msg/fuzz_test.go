package msg

import (
	"testing"
)

// FuzzDecode checks that any input DecodeJSON accepts round-trips through
// the codec: decode → encode → decode must converge to an Equal value.
// Payloads reach DecodeJSON straight off the wire (transport envelopes), so
// the decoder must hold this invariant for arbitrary bytes.
func FuzzDecode(f *testing.F) {
	seeds := []Value{
		nil,
		true,
		42.0,
		-0.5,
		1e-9,
		123456789012345678.0,
		"hello",
		"unicode ✓ and \"quotes\"",
		[]Value{},
		[]Value{1.0, "two", nil, false},
		Map{},
		Map{"wifi": Map{"rssi": -61.0, "ssid": "eduroam"}, "tags": []Value{"a", "b"}},
	}
	for _, v := range seeds {
		b, err := EncodeJSON(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"truncated":`))
	f.Add([]byte(`1e999`))
	f.Add([]byte("\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeJSON(data)
		if err != nil {
			return // rejecting garbage is fine; crashing is not
		}
		b, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v (input %q)", err, data)
		}
		v2, err := DecodeJSON(b)
		if err != nil {
			t.Fatalf("own encoding does not decode: %v (encoded %q)", err, b)
		}
		if !Equal(v, v2) {
			t.Errorf("round-trip diverged:\n in: %#v\nout: %#v\n(wire %q)", v, v2, b)
		}
		// Deterministic encoding: a second encode must be byte-identical.
		b2, err := EncodeJSON(v2)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Errorf("encoding not canonical: %q vs %q", b, b2)
		}
	})
}
