package msg

import (
	"testing"
)

// FuzzDecode checks that any input DecodeJSON accepts round-trips through
// the codec: decode → encode → decode must converge to an Equal value.
// Payloads reach DecodeJSON straight off the wire (transport envelopes), so
// the decoder must hold this invariant for arbitrary bytes.
func FuzzDecode(f *testing.F) {
	seeds := []Value{
		nil,
		true,
		42.0,
		-0.5,
		1e-9,
		123456789012345678.0,
		"hello",
		"unicode ✓ and \"quotes\"",
		[]Value{},
		[]Value{1.0, "two", nil, false},
		Map{},
		Map{"wifi": Map{"rssi": -61.0, "ssid": "eduroam"}, "tags": []Value{"a", "b"}},
	}
	for _, v := range seeds {
		b, err := EncodeJSON(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"truncated":`))
	f.Add([]byte(`1e999`))
	f.Add([]byte("\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeJSON(data)
		if err != nil {
			return // rejecting garbage is fine; crashing is not
		}
		b, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v (input %q)", err, data)
		}
		v2, err := DecodeJSON(b)
		if err != nil {
			t.Fatalf("own encoding does not decode: %v (encoded %q)", err, b)
		}
		if !Equal(v, v2) {
			t.Errorf("round-trip diverged:\n in: %#v\nout: %#v\n(wire %q)", v, v2, b)
		}
		// Deterministic encoding: a second encode must be byte-identical.
		b2, err := EncodeJSON(v2)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Errorf("encoding not canonical: %q vs %q", b, b2)
		}
	})
}

// FuzzDecodeVsStdlib pins the hand-rolled JSON decoder to encoding/json
// semantics: on every input both must agree on acceptance, and on accepted
// inputs they must produce Equal values. Inputs are capped well below the
// nesting-depth limit, where the two implementations may legitimately draw
// the line one level apart.
func FuzzDecodeVsStdlib(f *testing.F) {
	f.Add([]byte(`{"a":[1,2.5,"x",null,true],"b":{"c":-3}}`))
	f.Add([]byte(`"esc \u00e9 \ud83d\ude00 \ud800 tail"`))
	f.Add([]byte(`  [ 0.5e-3 , -0 , 1e15 ]  `))
	f.Add([]byte(`{"dup":1,"dup":2}`))
	f.Add([]byte("\"raw \x80\xff bytes\""))
	f.Add([]byte(`01`))
	f.Add([]byte(`1.`))
	f.Add([]byte(`[1,]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		got, gotErr := DecodeJSON(data)
		want, wantErr := refDecodeJSON(data)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("acceptance disagrees with stdlib on %q:\n ours: %v\n  ref: %v", data, gotErr, wantErr)
		}
		if gotErr == nil && !Equal(got, want) {
			t.Errorf("value disagrees with stdlib on %q:\n ours: %#v\n  ref: %#v", data, got, want)
		}
	})
}
