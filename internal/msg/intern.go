// Bounded string interning and boxed-float caching for the frozen decode
// path.
//
// Wire decoding is dominated by small heap objects: every map key is copied
// out of the frame buffer, and every numeric value boxes a fresh float64
// when it lands in an interface. Sensor payloads are wildly repetitive —
// the same handful of keys ("level", "voltage", "bssid", ...) and a small
// working set of numeric readings arrive millions of times — so both costs
// are cacheable. The interner keeps one canonical copy of each key seen on
// the wire (bounded, copy-on-write, lock-free reads); the float cache keeps
// one boxed interface per recently seen bit pattern. Neither cache is ever
// invalidated: strings and boxed floats are immutable, so a stale entry is
// merely unused, never wrong.
package msg

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
)

// internCap bounds the interner so hostile wire input cannot grow it without
// limit. Past the cap, misses fall back to a plain copy — correctness is
// unaffected, only dedup stops.
const internCap = 8192

// internTable is a copy-on-write string set: readers Load an immutable map
// and do one allocation-free lookup (the compiler elides the []byte→string
// conversion in `m[string(b)]`); writers buffer new entries in a pending map
// under a mutex and publish a merged clone only when pending has grown to a
// fraction of the published size. Cloning on every miss would cost O(n) per
// insert — O(n²) to fill the table, which a fleet of fresh node names does in
// one burst — whereas geometric publication keeps the total clone work linear
// while the read path stays lock-free. Entries parked in pending are still
// deduplicated (miss checks pending before inserting); they just pay the
// mutex until the next publish.
type internTable struct {
	mu      sync.Mutex
	m       atomic.Pointer[map[string]string]
	pending map[string]string
}

var interner internTable

// Intern returns a canonical string equal to string(b). The canonical copy
// is shared across all callers, so repeated wire keys cost zero allocations
// after first sight. Safe for concurrent use.
func Intern(b []byte) string {
	if m := interner.m.Load(); m != nil {
		if s, ok := (*m)[string(b)]; ok {
			return s
		}
	}
	return interner.miss(string(b))
}

// InternString is Intern for input already held as a string.
func InternString(s string) string {
	if m := interner.m.Load(); m != nil {
		if hit, ok := (*m)[s]; ok {
			return hit
		}
	}
	return interner.miss(s)
}

func (t *internTable) miss(s string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.m.Load()
	published := 0
	if old != nil {
		if hit, ok := (*old)[s]; ok {
			return hit
		}
		published = len(*old)
	}
	if hit, ok := t.pending[s]; ok {
		return hit
	}
	if published+len(t.pending) >= internCap {
		return s
	}
	if t.pending == nil {
		t.pending = make(map[string]string, 64)
	}
	t.pending[s] = s
	// Publish once pending reaches an eighth of the published size: small
	// tables publish every miss (so steady-state keys reach the lock-free map
	// immediately), while a burst of fresh strings — a fleet's worth of new
	// node names — batches up. Each publish clones published+pending entries,
	// so the geometric threshold bounds total clone work at O(cap) instead of
	// the O(cap²) a clone-per-miss table costs.
	if len(t.pending)*8 < published {
		return s
	}
	next := make(map[string]string, published+len(t.pending))
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	for k, v := range t.pending {
		next[k] = v
	}
	t.m.Store(&next)
	t.pending = nil
	return s
}

// internLen reports the current table size, counting entries not yet
// published to the lock-free map (tests only).
func internLen() int {
	interner.mu.Lock()
	defer interner.mu.Unlock()
	n := len(interner.pending)
	if m := interner.m.Load(); m != nil {
		n += len(*m)
	}
	return n
}

// floatBoxes is a direct-mapped cache of boxed float64 interface values,
// indexed by a Fibonacci hash of the bit pattern. A hit returns the shared
// box with no allocation; a miss boxes once and overwrites the slot. Boxed
// floats are immutable, so sharing one box across goroutines and messages
// is safe.
var floatBoxes [4096]atomic.Value

// boxFloat returns f as an interface value, reusing a cached box when the
// same bit pattern was seen recently.
func boxFloat(f float64) Value {
	bits := math.Float64bits(f)
	idx := (bits * 0x9e3779b97f4a7c15) >> 52 // top 12 bits of a Fibonacci hash
	if v := floatBoxes[idx].Load(); v != nil {
		if g, ok := v.(float64); ok && math.Float64bits(g) == bits {
			return v
		}
	}
	var v Value = f // the one boxing allocation on a miss
	floatBoxes[idx].Store(v)
	return v
}

// frozenBody memoizes one decoded frozen tree keyed by its exact wire bytes.
// Frozen trees are deeply immutable and shareable by contract (the broker
// already hands one tree to every subscriber), so two byte-identical bodies
// may legally decode to the same tree. Duplicate bodies are common in
// practice — retransmissions after a cut connection, fleet-wide identical
// config pushes, and periodic sensors whose readings have not changed — and
// a hit skips the decode entirely: zero allocations, zero copies.
type frozenBody struct {
	data []byte
	v    Value
}

// frozenBodyMax bounds how large a body the cache will retain; each slot
// pins its bytes (DecodeFrozen callers hand over the buffer), so huge blobs
// stay out.
const frozenBodyMax = 4096

var bodyCache [512]atomic.Pointer[frozenBody]

func bodySlot(b []byte) *atomic.Pointer[frozenBody] {
	// FNV-1a over the body; bodies are small (frozenBodyMax caps retention
	// and lookups bail on oversized input before hashing).
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return &bodyCache[h&511]
}

// cachedFrozen returns the memoized frozen tree for these exact bytes, if
// one is present.
func cachedFrozen(data []byte) (Value, bool) {
	if len(data) > frozenBodyMax {
		return nil, false
	}
	if p := bodySlot(data).Load(); p != nil && bytes.Equal(p.data, data) {
		return p.v, true
	}
	return nil, false
}

// storeFrozen memoizes a frozen tree under its wire bytes. Callers must only
// pass trees that are actually frozen (sharing a mutable tree would be
// unsound) and data the caller owns per the DecodeFrozen contract.
func storeFrozen(data []byte, v Value) {
	if len(data) > frozenBodyMax {
		return
	}
	bodySlot(data).Store(&frozenBody{data: data, v: v})
}
