package msg

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternConcurrentShards drives the interner the way a multi-shard fleet
// does: many shard workers decoding envelopes at once, most keys shared
// (channel names, wire keys), some keys private per shard (entity names).
// Run under -race (make check does) this pins the lock-free read path /
// mutex-guarded miss path split. Correctness bar: every call returns a
// string equal to its input, concurrency notwithstanding.
func TestInternConcurrentShards(t *testing.T) {
	const shards = 8
	const rounds = 400
	shared := []string{"upload", "cmd", "level", "voltage", "bssid", "n"}
	var wg sync.WaitGroup
	errs := make(chan string, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, k := range shared {
					if got := InternString(k); got != k {
						errs <- fmt.Sprintf("shard %d: InternString(%q) = %q", s, k, got)
						return
					}
					if got := Intern([]byte(k)); got != k {
						errs <- fmt.Sprintf("shard %d: Intern(%q) = %q", s, k, got)
						return
					}
				}
				private := fmt.Sprintf("shard%d-key%d", s, i%50)
				if got := Intern([]byte(private)); got != private {
					errs <- fmt.Sprintf("shard %d: Intern(%q) = %q", s, private, got)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestInternSteadyStateZeroAlloc: a published key must be returned without
// allocating — the compiler elides the []byte→string conversion on the
// lock-free map lookup. This is the property that makes per-delivery decode
// cost independent of key reuse volume.
func TestInternSteadyStateZeroAlloc(t *testing.T) {
	key := []byte("intern-steady-state-key")
	InternString(string(key)) // enter pending
	InternString(string(key)) // small tables publish immediately on next miss path
	// Force publication by taking the miss path until the key is readable
	// lock-free (small tables publish every miss, so once is enough; loop for
	// robustness against future threshold tuning).
	for i := 0; i < 10; i++ {
		if m := interner.m.Load(); m != nil {
			if _, ok := (*m)[string(key)]; ok {
				break
			}
		}
		InternString(fmt.Sprintf("intern-steady-filler-%d", i))
	}
	if m := interner.m.Load(); m == nil {
		t.Skip("interner never published; cannot measure the lock-free path")
	} else if _, ok := (*m)[string(key)]; !ok {
		t.Skip("key stuck in pending; cannot measure the lock-free path")
	}
	if avg := testing.AllocsPerRun(100, func() { Intern(key) }); avg != 0 {
		t.Errorf("Intern hit path allocates %.1f times per call, want 0", avg)
	}
}

// TestInternBurstPublicationLinear pins the geometric pending-batch publish:
// filling a fresh table with a burst of distinct keys (a fleet's worth of
// node names) must cost O(1) amortized allocations per key. A regression to
// clone-per-miss costs O(n) map-entry allocations per key — at this size
// hundreds per key — so the budget below fails loudly without being brittle.
func TestInternBurstPublicationLinear(t *testing.T) {
	const keys = 4096
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("phone%05d", i)
	}
	var table *internTable
	avg := testing.AllocsPerRun(3, func() {
		table = &internTable{}
		for _, k := range names {
			if got := table.miss(k); got != k {
				t.Fatalf("miss(%q) = %q", k, got)
			}
		}
	})
	perKey := avg / keys
	if perKey > 30 {
		t.Errorf("burst insert costs %.1f allocs/key (%.0f total for %d keys); geometric publication should stay O(1) amortized",
			perKey, avg, keys)
	}
	// The burst must actually have published: lock-free readers see the keys.
	if m := table.m.Load(); m == nil || len(*m) == 0 {
		t.Error("burst never published to the lock-free map")
	} else if _, ok := (*m)[names[0]]; !ok {
		t.Error("first burst key missing from the published map")
	}
}

// TestInternCapBounded: past internCap the table stops growing and misses
// degrade to identity — hostile or oversized key sets must not balloon the
// process.
func TestInternCapBounded(t *testing.T) {
	table := &internTable{}
	for i := 0; i < internCap+512; i++ {
		k := fmt.Sprintf("cap-key-%d", i)
		if got := table.miss(k); got != k {
			t.Fatalf("miss(%q) = %q", k, got)
		}
	}
	n := len(table.pending)
	if m := table.m.Load(); m != nil {
		n += len(*m)
	}
	if n > internCap {
		t.Errorf("table grew to %d entries, cap is %d", n, internCap)
	}
}
