package msg

import (
	"errors"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// A hand-rolled JSON decoder. The stdlib path this replaces allocated a
// fresh json.Decoder (and, before the double-copy fix, a full string copy of
// the input) on every call — real garbage on the receive path, where the
// transport decodes one body per delivered message in a loop. json.Decoder
// cannot be pooled (it has no Reset and carries sticky read-ahead state), so
// the loop-friendly fix is a decoder with no per-call state at all: this
// scanner walks the input in place and allocates only the values it
// returns. Semantics mirror encoding/json: strict number/escape syntax,
// unescaped control characters rejected, invalid UTF-8 coerced to U+FFFD,
// last duplicate key wins. The fuzz suite cross-checks it against the
// stdlib on arbitrary inputs.

// maxJSONDepth bounds recursion so hostile deeply-nested input cannot
// exhaust the stack. (The binary codec enforces the same bound.)
const maxJSONDepth = 10000

var errTrailingData = errors.New("msg: decode: trailing data")

// DecodeJSON parses JSON into a message value. Objects decode to Map, arrays
// to []Value, numbers to float64 — exactly the message value domain.
func DecodeJSON(data []byte) (Value, error) {
	d := jsonScanner{in: data}
	d.skipSpace()
	v, err := d.value(0)
	if err != nil {
		return nil, fmt.Errorf("msg: decode: %w", err)
	}
	d.skipSpace()
	if d.i < len(d.in) {
		return nil, errTrailingData
	}
	return v, nil
}

type jsonScanner struct {
	in []byte
	i  int
}

func (d *jsonScanner) skipSpace() {
	for d.i < len(d.in) {
		switch d.in[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *jsonScanner) errf(format string, args ...any) error {
	return fmt.Errorf("offset %d: "+format, append([]any{d.i}, args...)...)
}

// value scans one JSON value starting at d.i (whitespace already skipped).
func (d *jsonScanner) value(depth int) (Value, error) {
	if depth > maxJSONDepth {
		return nil, errors.New("nesting too deep")
	}
	if d.i >= len(d.in) {
		return nil, errors.New("unexpected end of input")
	}
	switch c := d.in[d.i]; {
	case c == '{':
		return d.object(depth)
	case c == '[':
		return d.array(depth)
	case c == '"':
		return d.string()
	case c == 't':
		return true, d.literal("true")
	case c == 'f':
		return false, d.literal("false")
	case c == 'n':
		return nil, d.literal("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return d.number()
	default:
		return nil, d.errf("unexpected character %q", c)
	}
}

func (d *jsonScanner) literal(lit string) error {
	if len(d.in)-d.i < len(lit) || string(d.in[d.i:d.i+len(lit)]) != lit {
		return d.errf("invalid literal")
	}
	d.i += len(lit)
	return nil
}

func (d *jsonScanner) object(depth int) (Value, error) {
	d.i++ // '{'
	out := Map{}
	d.skipSpace()
	if d.i < len(d.in) && d.in[d.i] == '}' {
		d.i++
		return out, nil
	}
	for {
		d.skipSpace()
		if d.i >= len(d.in) || d.in[d.i] != '"' {
			return nil, d.errf("object key must be a string")
		}
		key, err := d.string()
		if err != nil {
			return nil, err
		}
		d.skipSpace()
		if d.i >= len(d.in) || d.in[d.i] != ':' {
			return nil, d.errf("missing ':' after object key")
		}
		d.i++
		d.skipSpace()
		v, err := d.value(depth + 1)
		if err != nil {
			return nil, err
		}
		out[key] = v
		d.skipSpace()
		if d.i >= len(d.in) {
			return nil, errors.New("unterminated object")
		}
		switch d.in[d.i] {
		case ',':
			d.i++
		case '}':
			d.i++
			return out, nil
		default:
			return nil, d.errf("expected ',' or '}'")
		}
	}
}

func (d *jsonScanner) array(depth int) (Value, error) {
	d.i++ // '['
	out := []Value{}
	d.skipSpace()
	if d.i < len(d.in) && d.in[d.i] == ']' {
		d.i++
		return out, nil
	}
	for {
		d.skipSpace()
		v, err := d.value(depth + 1)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		d.skipSpace()
		if d.i >= len(d.in) {
			return nil, errors.New("unterminated array")
		}
		switch d.in[d.i] {
		case ',':
			d.i++
		case ']':
			d.i++
			return out, nil
		default:
			return nil, d.errf("expected ',' or ']'")
		}
	}
}

func (d *jsonScanner) number() (float64, error) {
	start := d.i
	if d.i < len(d.in) && d.in[d.i] == '-' {
		d.i++
	}
	// Integer part: a single 0, or a nonzero digit followed by digits.
	switch {
	case d.i < len(d.in) && d.in[d.i] == '0':
		d.i++
	case d.i < len(d.in) && d.in[d.i] >= '1' && d.in[d.i] <= '9':
		for d.i < len(d.in) && d.in[d.i] >= '0' && d.in[d.i] <= '9' {
			d.i++
		}
	default:
		return 0, d.errf("invalid number")
	}
	if d.i < len(d.in) && d.in[d.i] == '.' {
		d.i++
		if d.i >= len(d.in) || d.in[d.i] < '0' || d.in[d.i] > '9' {
			return 0, d.errf("invalid number: missing fraction digits")
		}
		for d.i < len(d.in) && d.in[d.i] >= '0' && d.in[d.i] <= '9' {
			d.i++
		}
	}
	if d.i < len(d.in) && (d.in[d.i] == 'e' || d.in[d.i] == 'E') {
		d.i++
		if d.i < len(d.in) && (d.in[d.i] == '+' || d.in[d.i] == '-') {
			d.i++
		}
		if d.i >= len(d.in) || d.in[d.i] < '0' || d.in[d.i] > '9' {
			return 0, d.errf("invalid number: missing exponent digits")
		}
		for d.i < len(d.in) && d.in[d.i] >= '0' && d.in[d.i] <= '9' {
			d.i++
		}
	}
	f, err := strconv.ParseFloat(string(d.in[start:d.i]), 64)
	if err != nil {
		return 0, err
	}
	return f, nil
}

func (d *jsonScanner) string() (string, error) {
	d.i++ // '"'
	start := d.i
	// Fast path: scan for the closing quote; bail to the slow path at the
	// first escape or invalid-UTF-8 candidate.
	for d.i < len(d.in) {
		c := d.in[d.i]
		if c == '"' {
			s := d.in[start:d.i]
			d.i++
			if !utf8.Valid(s) {
				return fixUTF8(s), nil
			}
			return string(s), nil
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			break
		}
		d.i++
	}
	// Slow path: build the string rune by rune from the fast-scanned prefix.
	buf := append([]byte(nil), d.in[start:d.i]...)
	for d.i < len(d.in) {
		c := d.in[d.i]
		switch {
		case c == '"':
			d.i++
			return string(buf), nil
		case c < 0x20:
			return "", d.errf("unescaped control character in string")
		case c == '\\':
			d.i++
			if d.i >= len(d.in) {
				return "", errors.New("unterminated escape")
			}
			switch e := d.in[d.i]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
				d.i++
			case 'b':
				buf = append(buf, '\b')
				d.i++
			case 'f':
				buf = append(buf, '\f')
				d.i++
			case 'n':
				buf = append(buf, '\n')
				d.i++
			case 'r':
				buf = append(buf, '\r')
				d.i++
			case 't':
				buf = append(buf, '\t')
				d.i++
			case 'u':
				d.i++
				r, err := d.hex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(rune(r)) {
					// A high surrogate must be followed by \uXXXX low; any
					// unpaired surrogate decodes to U+FFFD, like the stdlib.
					if d.i+1 < len(d.in) && d.in[d.i] == '\\' && d.in[d.i+1] == 'u' {
						save := d.i
						d.i += 2
						r2, err := d.hex4()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(rune(r), rune(r2)); dec != utf8.RuneError {
							buf = utf8.AppendRune(buf, dec)
							continue
						}
						d.i = save // second escape was not the pair: re-scan it
					}
					buf = utf8.AppendRune(buf, utf8.RuneError)
					continue
				}
				buf = utf8.AppendRune(buf, rune(r))
			default:
				return "", d.errf("invalid escape '\\%c'", e)
			}
		case c < 0x80:
			buf = append(buf, c)
			d.i++
		default:
			r, size := utf8.DecodeRune(d.in[d.i:])
			if r == utf8.RuneError && size <= 1 {
				buf = utf8.AppendRune(buf, utf8.RuneError)
				d.i++
				continue
			}
			buf = append(buf, d.in[d.i:d.i+size]...)
			d.i += size
		}
	}
	return "", errors.New("unterminated string")
}

// hex4 reads 4 hex digits of a \u escape.
func (d *jsonScanner) hex4() (uint16, error) {
	if len(d.in)-d.i < 4 {
		return 0, errors.New("truncated \\u escape")
	}
	var r uint16
	for k := 0; k < 4; k++ {
		c := d.in[d.i+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | uint16(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | uint16(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | uint16(c-'A'+10)
		default:
			return 0, d.errf("invalid \\u escape")
		}
	}
	d.i += 4
	return r, nil
}

// fixUTF8 copies s replacing invalid UTF-8 sequences with U+FFFD,
// matching encoding/json's unquote behavior.
func fixUTF8(s []byte) string {
	buf := make([]byte, 0, len(s)+3)
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRune(s[i:])
		if r == utf8.RuneError && size <= 1 {
			buf = utf8.AppendRune(buf, utf8.RuneError)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return string(buf)
}
