// Package msg defines the message representation exchanged through Pogo's
// publish/subscribe framework.
//
// Messages are trees of key/value pairs (§4.3 of the paper) that map directly
// onto PogoScript objects so they can cross the Java↔JavaScript boundary —
// here the Go↔PogoScript boundary — without translation glue. Messages are
// serialized to JSON when delivered to a remote node.
//
// The value domain is deliberately small: nil, bool, float64, string,
// []Value, and Map. Integers are represented as float64, matching
// JavaScript's single number type.
package msg

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is any value that may appear in a message tree: nil, bool, float64,
// string, []Value, or Map.
type Value = any

// Map is a message object node: string keys to Values.
type Map = map[string]Value

// ErrUnsupportedValue reports a Go value outside the message value domain.
var ErrUnsupportedValue = errors.New("msg: unsupported value type")

// Normalize converts an arbitrary Go value into the canonical message value
// domain. It accepts all Go integer and float types (converted to float64),
// strings, bools, nil, slices, and maps with string keys. It returns
// ErrUnsupportedValue for anything else (channels, funcs, structs, ...).
func Normalize(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case bool, float64, string:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int8:
		return float64(x), nil
	case int16:
		return float64(x), nil
	case int32:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint:
		return float64(x), nil
	case uint8:
		return float64(x), nil
	case uint16:
		return float64(x), nil
	case uint32:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	case []Value:
		out := make([]Value, len(x))
		for i, e := range x {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case Map:
		out := make(Map, len(x))
		for k, e := range x {
			if isMarker(k, e) {
				continue // normalized copies are mutable; drop the freeze marker
			}
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedValue, v)
	}
}

// MustNormalize is Normalize for statically well-formed literals; it panics
// on unsupported values and is intended for tests and package literals.
func MustNormalize(v any) Value {
	n, err := Normalize(v)
	if err != nil {
		panic(err)
	}
	return n
}

// Clone deep-copies a message value. Maps and slices are copied; scalars are
// returned as-is. Clones are always mutable: cloning a frozen map drops the
// freeze marker. Cloning at ownership boundaries keeps subscribers from
// mutating each other's view of a published message; the broker now freezes
// instead (see freeze.go), so Clone is the slow path writers pay via Thaw.
func Clone(v Value) Value {
	switch x := v.(type) {
	case []Value:
		return cloneSlice(x, 0)
	case Map:
		return cloneMap(x, 0)
	default:
		return x
	}
}

func cloneSlice(x []Value, extraCap int) []Value {
	out := make([]Value, len(x), len(x)+extraCap)
	for i, e := range x {
		out[i] = Clone(e)
	}
	return out
}

// cloneMap deep-copies a map, skipping the freeze marker. extraCap reserves
// room so Freeze can add the marker to the clone without a rehash.
func cloneMap(x Map, extraCap int) Map {
	out := make(Map, len(x)+extraCap)
	for k, e := range x {
		if isMarker(k, e) {
			continue
		}
		out[k] = Clone(e)
	}
	return out
}

// Equal reports deep equality of two message values. NaN compares equal to
// NaN so that round-tripped messages containing NaN still match.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false
		}
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return x == y
	case []Value:
		y, ok := b.([]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case Map:
		y, ok := b.(Map)
		if !ok || Len(x) != Len(y) {
			return false
		}
		for k, v := range x {
			if isMarker(k, v) {
				continue // freeze markers are invisible to message content
			}
			w, present := y[k]
			if !present || !Equal(v, w) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// EncodeJSON serializes a message value to JSON with deterministic key order
// (keys sorted lexicographically). Deterministic output keeps byte-count
// accounting in the experiments reproducible.
func EncodeJSON(v Value) ([]byte, error) {
	var sb strings.Builder
	if err := encodeJSON(&sb, v); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func encodeJSON(sb *strings.Builder, v Value) error {
	switch x := v.(type) {
	case nil:
		sb.WriteString("null")
	case bool:
		sb.WriteString(strconv.FormatBool(x))
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// JSON has no NaN/Inf; JavaScript's JSON.stringify emits null.
			sb.WriteString("null")
			return nil
		}
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			sb.WriteString(strconv.FormatInt(int64(x), 10))
			return nil
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		appendJSONString(sb, x)
	case []Value:
		sb.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				sb.WriteByte(',')
			}
			if err := encodeJSON(sb, e); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	case Map:
		keys := Keys(x)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			appendJSONString(sb, k)
			sb.WriteByte(':')
			if err := encodeJSON(sb, x[k]); err != nil {
				return err
			}
		}
		sb.WriteByte('}')
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedValue, v)
	}
	return nil
}

// appendJSONString writes a JSON-quoted string. The common case — no
// characters needing escapes — is a single pass; escaping falls back to the
// slow path. Output matches encoding/json for the characters we emit.
func appendJSONString(sb *strings.Builder, s string) {
	clean := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			clean = false
			break
		}
	}
	if clean {
		sb.WriteByte('"')
		sb.WriteString(s)
		sb.WriteByte('"')
		return
	}
	b, _ := json.Marshal(s)
	sb.Write(b)
}

// Get walks a dotted path ("wifi.rssi") through nested Maps and returns the
// value at the leaf, or (nil, false) when any step is missing.
func Get(m Map, path string) (Value, bool) {
	cur := Value(m)
	for _, part := range strings.Split(path, ".") {
		obj, ok := cur.(Map)
		if !ok {
			return nil, false
		}
		cur, ok = obj[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// GetString returns the string at a dotted path, or "" when absent or not a
// string.
func GetString(m Map, path string) string {
	v, ok := Get(m, path)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// GetNumber returns the float64 at a dotted path and whether it was present
// and numeric.
func GetNumber(m Map, path string) (float64, bool) {
	v, ok := Get(m, path)
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}
