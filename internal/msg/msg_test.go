package msg

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeScalars(t *testing.T) {
	tests := []struct {
		name string
		in   any
		want Value
	}{
		{"nil", nil, nil},
		{"bool", true, true},
		{"string", "hi", "hi"},
		{"float64", 3.5, 3.5},
		{"float32", float32(2), 2.0},
		{"int", 7, 7.0},
		{"int8", int8(-3), -3.0},
		{"int16", int16(300), 300.0},
		{"int32", int32(-9), -9.0},
		{"int64", int64(1 << 40), float64(1 << 40)},
		{"uint", uint(5), 5.0},
		{"uint8", uint8(255), 255.0},
		{"uint16", uint16(9), 9.0},
		{"uint32", uint32(12), 12.0},
		{"uint64", uint64(99), 99.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Normalize(tt.in)
			if err != nil {
				t.Fatalf("Normalize(%v): %v", tt.in, err)
			}
			if !Equal(got, tt.want) {
				t.Errorf("Normalize(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeNested(t *testing.T) {
	in := Map{"a": 1, "b": []Value{int32(2), "x", Map{"c": uint8(3)}}}
	got, err := Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Map{"a": 1.0, "b": []Value{2.0, "x", Map{"c": 3.0}}}
	if !Equal(got, want) {
		t.Errorf("Normalize = %#v, want %#v", got, want)
	}
}

func TestNormalizeUnsupported(t *testing.T) {
	for _, in := range []any{make(chan int), func() {}, struct{ X int }{1}} {
		if _, err := Normalize(in); err == nil {
			t.Errorf("Normalize(%T) succeeded, want error", in)
		}
	}
	if _, err := Normalize(Map{"k": make(chan int)}); err == nil {
		t.Error("Normalize(nested chan) succeeded, want error")
	}
	if _, err := Normalize([]Value{func() {}}); err == nil {
		t.Error("Normalize(slice of func) succeeded, want error")
	}
}

func TestMustNormalizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNormalize(chan) did not panic")
		}
	}()
	MustNormalize(make(chan int))
}

func TestCloneIndependence(t *testing.T) {
	orig := Map{"list": []Value{1.0, Map{"x": "y"}}, "n": 2.0}
	clone, ok := Clone(orig).(Map)
	if !ok {
		t.Fatal("clone is not a Map")
	}
	if !Equal(orig, clone) {
		t.Fatal("clone differs from original")
	}
	clone["n"] = 99.0
	clone["list"].([]Value)[1].(Map)["x"] = "z"
	if orig["n"].(float64) != 2.0 {
		t.Error("mutating clone changed original scalar")
	}
	if orig["list"].([]Value)[1].(Map)["x"].(string) != "y" {
		t.Error("mutating clone changed nested original")
	}
}

func TestEqualBasics(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{nil, 0.0, false},
		{1.0, 1.0, true},
		{1.0, 2.0, false},
		{1.0, "1", false},
		{"a", "a", true},
		{true, true, true},
		{true, false, false},
		{math.NaN(), math.NaN(), true},
		{[]Value{1.0}, []Value{1.0}, true},
		{[]Value{1.0}, []Value{1.0, 2.0}, false},
		{Map{"a": 1.0}, Map{"a": 1.0}, true},
		{Map{"a": 1.0}, Map{"b": 1.0}, false},
		{Map{"a": 1.0}, Map{"a": 1.0, "b": 2.0}, false},
	}
	for _, tt := range tests {
		if got := Equal(tt.a, tt.b); got != tt.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEncodeJSONDeterministic(t *testing.T) {
	m := Map{"zeta": 1.0, "alpha": 2.0, "mid": []Value{true, nil, "s"}}
	b1, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("non-deterministic encoding: %s vs %s", b1, b2)
	}
	want := `{"alpha":2,"mid":[true,null,"s"],"zeta":1}`
	if string(b1) != want {
		t.Errorf("EncodeJSON = %s, want %s", b1, want)
	}
}

func TestEncodeJSONIntegersCompact(t *testing.T) {
	b, err := EncodeJSON(Map{"n": 60000.0, "f": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"f":0.5,"n":60000}`
	if string(b) != want {
		t.Errorf("EncodeJSON = %s, want %s", b, want)
	}
}

func TestEncodeJSONNaNInf(t *testing.T) {
	b, err := EncodeJSON([]Value{math.NaN(), math.Inf(1), math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[null,null,null]" {
		t.Errorf("EncodeJSON = %s, want [null,null,null]", b)
	}
}

func TestDecodeJSON(t *testing.T) {
	v, err := DecodeJSON([]byte(`{"a":[1,2.5,"x",null,true],"b":{"c":-3}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Map{
		"a": []Value{1.0, 2.5, "x", nil, true},
		"b": Map{"c": -3.0},
	}
	if !Equal(v, want) {
		t.Errorf("DecodeJSON = %#v, want %#v", v, want)
	}
}

func TestDecodeJSONEmptyArray(t *testing.T) {
	v, err := DecodeJSON([]byte(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := v.([]Value)
	if !ok || len(arr) != 0 {
		t.Errorf("DecodeJSON([]) = %#v, want empty []Value", v)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	for _, in := range []string{"", "{", `{"a":}`, "[1,2] extra", "nope"} {
		if _, err := DecodeJSON([]byte(in)); err == nil {
			t.Errorf("DecodeJSON(%q) succeeded, want error", in)
		}
	}
}

func TestGetPaths(t *testing.T) {
	m := Map{"wifi": Map{"rssi": -70.0, "ssid": "eduroam"}, "flat": 1.0}
	if v, ok := Get(m, "wifi.rssi"); !ok || v.(float64) != -70.0 {
		t.Errorf("Get(wifi.rssi) = %v, %v", v, ok)
	}
	if _, ok := Get(m, "wifi.missing"); ok {
		t.Error("Get(wifi.missing) found")
	}
	if _, ok := Get(m, "flat.sub"); ok {
		t.Error("Get(flat.sub) found through scalar")
	}
	if s := GetString(m, "wifi.ssid"); s != "eduroam" {
		t.Errorf("GetString = %q", s)
	}
	if s := GetString(m, "wifi.rssi"); s != "" {
		t.Errorf("GetString on number = %q, want empty", s)
	}
	if f, ok := GetNumber(m, "flat"); !ok || f != 1.0 {
		t.Errorf("GetNumber(flat) = %v, %v", f, ok)
	}
	if _, ok := GetNumber(m, "wifi.ssid"); ok {
		t.Error("GetNumber on string succeeded")
	}
}

// randomValue builds a random message value of bounded depth for property
// tests.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return math.Trunc(r.NormFloat64() * 1000)
		default:
			return randomString(r)
		}
	}
	switch r.Intn(6) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 0
	case 2:
		return float64(r.Intn(1<<20)) / 8
	case 3:
		return randomString(r)
	case 4:
		n := r.Intn(4)
		out := make([]Value, n)
		for i := range out {
			out[i] = randomValue(r, depth-1)
		}
		return out
	default:
		n := r.Intn(4)
		out := Map{}
		for i := 0; i < n; i++ {
			out[randomString(r)] = randomValue(r, depth-1)
		}
		return out
	}
}

func randomString(r *rand.Rand) string {
	alpha := []rune("abcdefgh_0123 é√")
	n := r.Intn(8)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(alpha[r.Intn(len(alpha))])
	}
	return sb.String()
}

func TestPropertyJSONRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(Map{"v": randomValue(r, 3)})
		},
	}
	prop := func(m Map) bool {
		b, err := EncodeJSON(m)
		if err != nil {
			return false
		}
		back, err := DecodeJSON(b)
		if err != nil {
			return false
		}
		return Equal(m, back)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(Map{"v": randomValue(r, 3)})
		},
	}
	prop := func(m Map) bool { return Equal(m, Clone(m)) }
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyEncodeDeterministic(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(Map{"v": randomValue(r, 3), "w": randomValue(r, 2)})
		},
	}
	prop := func(m Map) bool {
		a, err1 := EncodeJSON(m)
		b, err2 := EncodeJSON(Clone(m))
		return err1 == nil && err2 == nil && string(a) == string(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
