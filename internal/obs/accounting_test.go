package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// Two registries built with the same metrics in different registration and
// label orders must render identical Prometheus text: families sorted by
// name, series sorted by canonical key, label order normalized away.
func TestPromSnapshotOrderingDeterministic(t *testing.T) {
	build := func(flipped bool) *Registry {
		r := NewRegistry()
		if flipped {
			r.Counter("zeta_total", L("node", "b"), L("role", "phone")).Add(7)
			r.Counter("zeta_total", L("role", "phone"), L("node", "a")).Add(3)
			r.Gauge("beta_level", L("node", "n")).Set(1.5)
			r.Counter("alpha_total").Inc()
		} else {
			r.Counter("alpha_total").Inc()
			r.Gauge("beta_level", L("node", "n")).Set(1.5)
			r.Counter("zeta_total", L("node", "a"), L("role", "phone")).Add(3)
			r.Counter("zeta_total", L("node", "b"), L("role", "phone")).Add(7)
		}
		r.Meter("dev2", "s.js", "").AddSteps(10)
		r.Meter("dev1", "", "chan").AddUplink(100)
		return r
	}
	var a, b strings.Builder
	WriteProm(&a, build(false))
	WriteProm(&b, build(true))
	if a.String() != b.String() {
		t.Fatalf("registration/label order changed prom output:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	out := a.String()
	ia := strings.Index(out, "alpha_total ")
	ib := strings.Index(out, "beta_level{")
	iza := strings.Index(out, `zeta_total{node="a",role="phone"} 3`)
	izb := strings.Index(out, `zeta_total{node="b",role="phone"} 7`)
	if ia < 0 || ib < 0 || iza < 0 || izb < 0 {
		t.Fatalf("missing expected series in prom output:\n%s", out)
	}
	if !(ia < ib && ib < iza && iza < izb) {
		t.Fatalf("families/series not sorted: alpha@%d beta@%d zeta(a)@%d zeta(b)@%d", ia, ib, iza, izb)
	}
}

// Label order must not create distinct series: the canonical key sorts
// labels, so both spellings charge the same counter.
func TestLabeledMetricOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", L("b", "2"), L("a", "1")).Add(4)
	r.Counter("m_total", L("a", "1"), L("b", "2")).Add(6)
	if got := r.CounterValue("m_total", L("b", "2"), L("a", "1")); got != 10 {
		t.Fatalf("label order split the series: got %d, want 10", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 {
		t.Fatalf("expected 1 canonical series, got %d: %v", len(snap.Counters), snap.Counters)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is NaN.
	var empty HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if !math.IsNaN(empty.Quantile(q)) {
			t.Fatalf("empty.Quantile(%v) = %v, want NaN", q, empty.Quantile(q))
		}
	}

	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})

	// NaN observations are dropped, not booked.
	h.Observe(math.NaN())
	if s := r.Snapshot().Histograms["lat_seconds"]; s.Count != 0 {
		t.Fatalf("NaN observation was counted: %+v", s)
	}

	// Single sample in bucket (1,2]: interpolation stays inside the bucket
	// and q=1 reaches the bucket's upper edge.
	h.Observe(1.5)
	s := r.Snapshot().Histograms["lat_seconds"]
	if got := s.Quantile(0.5); got <= 1 || got > 2 {
		t.Fatalf("single-sample Quantile(0.5) = %v, want in (1, 2]", got)
	}
	if got := s.Quantile(1); got != 2 {
		t.Fatalf("single-sample Quantile(1) = %v, want 2", got)
	}

	// q outside [0,1] and q=NaN are invalid.
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(s.Quantile(q)) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, s.Quantile(q))
		}
	}

	// A sample in the +Inf overflow bucket clamps to the largest finite
	// bound — there is no upper edge to interpolate toward.
	h.Observe(100)
	s = r.Snapshot().Histograms["lat_seconds"]
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("+Inf-bucket Quantile(1) = %v, want largest finite bound 4", got)
	}

	// No finite bounds at all: nothing to clamp to.
	noBounds := HistogramSnapshot{Count: 1, Counts: []int64{1}}
	if !math.IsNaN(noBounds.Quantile(0.5)) {
		t.Fatalf("bound-less Quantile(0.5) = %v, want NaN", noBounds.Quantile(0.5))
	}
}

// Ledger snapshots sort by (device, script, topic) regardless of charge
// order, and every Meter method tolerates a nil receiver so call sites
// never branch on whether accounting is enabled.
func TestLedgerSnapshotSortedAndNilSafe(t *testing.T) {
	l := NewLedger()
	l.Meter("dev2", "b.js", "").AddSteps(1)
	l.Meter("dev1", "", "chan").AddUplink(10)
	l.Meter("dev1", "a.js", "").AddEnergy("cpu", 0.5)
	l.Meter("dev1", "", "").AddDownlink(20)

	snap := l.Snapshot()
	var keys []string
	for _, s := range snap {
		keys = append(keys, s.Device+"|"+s.Script+"|"+s.Topic)
	}
	want := []string{"dev1||", "dev1||chan", "dev1|a.js|", "dev2|b.js|"}
	if len(keys) != len(want) {
		t.Fatalf("got %d rows %v, want %v", len(keys), keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("row %d = %q, want %q (full: %v)", i, keys[i], want[i], keys)
		}
	}

	var nilLedger *Ledger
	m := nilLedger.Meter("d", "s", "t") // nil Meter
	m.AddEnergy("dch", 1)
	m.AddUplink(1)
	m.AddDownlink(1)
	m.AddMessages(1)
	m.AddWake(1)
	m.AddSteps(1)
	m.AddDeadlineExceeded(1)
	m.AddTailHit(1)
	m.AddTailMiss(1)
	if got := nilLedger.Snapshot(); got != nil {
		t.Fatalf("nil ledger snapshot = %v, want nil", got)
	}
}

// The series ring evicts oldest-first, counts what it dropped, and windowed
// rate queries read only the requested span.
func TestSeriesRingEvictionAndRate(t *testing.T) {
	s := NewSeriesStore(3)
	base := time.Unix(1000, 0).UTC()
	for i := 0; i < 5; i++ {
		s.Append(SeriesSample{
			At:       base.Add(time.Duration(i) * time.Second),
			Counters: map[string]int64{"c": int64(i * 10)},
		})
	}
	if s.Len() != 3 || s.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3 and 2", s.Len(), s.Dropped())
	}
	all := s.Samples()
	if !all[0].At.Equal(base.Add(2*time.Second)) || !all[2].At.Equal(base.Add(4*time.Second)) {
		t.Fatalf("ring did not evict oldest-first: %v .. %v", all[0].At, all[2].At)
	}
	// Newest two samples: counter went 30 -> 40 over 1s.
	if got := s.Rate("c", time.Second); got != 10 {
		t.Fatalf("Rate over 1s = %v, want 10", got)
	}
	// Full retained window: 20 -> 40 over 2s.
	if got := s.Rate("c", 2*time.Second); got != 10 {
		t.Fatalf("Rate over 2s = %v, want 10", got)
	}
	if got := s.Rate("missing", time.Minute); got != 0 {
		t.Fatalf("Rate of unknown key = %v, want 0", got)
	}
	win := s.Window(base.Add(3*time.Second), base.Add(4*time.Second))
	if len(win) != 2 {
		t.Fatalf("Window returned %d samples, want 2", len(win))
	}
}

// Two identically charged registries export byte-identical accounting and
// time-series CSVs — the property `make determinism` checks end to end.
func TestCSVExportDeterministic(t *testing.T) {
	build := func(flipped bool) *Registry {
		r := NewRegistry()
		charges := []func(){
			func() { r.Meter("phone", "scan.js", "").AddSteps(500) },
			func() { r.Meter("phone", "", "wifi-scan").AddMessages(3) },
			func() {
				m := r.Meter("phone", "", "")
				m.AddEnergy("dch", 1.25)
				m.AddEnergy("fach", 0.5)
				m.AddUplink(2048)
			},
		}
		if flipped {
			for i := len(charges) - 1; i >= 0; i-- {
				charges[i]()
			}
		} else {
			for _, c := range charges {
				c()
			}
		}
		at := time.Unix(2000, 0).UTC()
		r.Sample(at, "phone")
		r.Sample(at.Add(time.Minute), "phone")
		return r
	}
	r1, r2 := build(false), build(true)
	var a1, a2, s1, s2 strings.Builder
	WriteAccountingCSV(&a1, r1.Ledger())
	WriteAccountingCSV(&a2, r2.Ledger())
	if a1.String() != a2.String() {
		t.Fatalf("accounting CSV depends on charge order:\n--- a ---\n%s\n--- b ---\n%s", a1.String(), a2.String())
	}
	WriteSeriesCSV(&s1, r1.Series())
	WriteSeriesCSV(&s2, r2.Series())
	if s1.String() != s2.String() {
		t.Fatalf("series CSV depends on charge order:\n--- a ---\n%s\n--- b ---\n%s", s1.String(), s2.String())
	}
	if !strings.HasPrefix(a1.String(), "device,script,topic,state,") {
		t.Fatalf("unexpected accounting CSV header: %q", strings.SplitN(a1.String(), "\n", 2)[0])
	}
}

// RenderTop must work from a cold start (nil previous snapshot, zero dt)
// and order rows by energy spent.
func TestRenderTopColdStart(t *testing.T) {
	cur := []AccountSnapshot{
		{Entity: Entity{Device: "dev1"}, EnergyTotal: 1.0, UplinkBytes: 10},
		{Entity: Entity{Device: "dev2"}, EnergyTotal: 5.0, UplinkBytes: 20, Messages: 4},
	}
	out := RenderTop(nil, cur, 0)
	i1, i2 := strings.Index(out, "dev1"), strings.Index(out, "dev2")
	if i1 < 0 || i2 < 0 {
		t.Fatalf("missing devices in rendering:\n%s", out)
	}
	if i2 > i1 {
		t.Fatalf("rows not sorted by energy (dev2 should lead):\n%s", out)
	}
	if !strings.Contains(out, "ENERGY") {
		t.Fatalf("missing header:\n%s", out)
	}
}
