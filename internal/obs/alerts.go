package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the deterministic alerting engine: declarative rules evaluated
// against the registry on (simulated) clock ticks, driving a
// pending → firing → resolved state machine whose transition log is a pure
// function of the metric stream — and therefore of the seed.
//
// The paper argues the middleware must keep researchers informed of fleet
// health without polling individual phones (§3.2); the recorded metric stack
// (registry, ledger, series, spans) answers "what happened" but nothing
// evaluated it. Rules close that loop, and because evaluation happens at
// deterministic simulated instants against deterministic values, a same-seed
// chaos run produces a byte-identical alert log — alerts become something a
// scenario archive can pin, not just something a human glances at.
//
// Determinism contract:
//
//   - Evaluate is only ever called at instants from the driving clock
//     (Registry.Sample calls it after appending each series sample).
//   - Rules read the evaluation-time snapshot and the series store, never the
//     wall clock.
//   - Rules over real-clock quantities (barrier stall wall times, the runtime
//     sampler's gauges) are marked RealTime and are skipped entirely when the
//     engine is in deterministic mode, so they cannot leak wall-clock
//     nondeterminism into the log.

// AlertState is one state of a rule's alert lifecycle.
type AlertState int

const (
	// AlertInactive: the rule's condition does not hold.
	AlertInactive AlertState = iota
	// AlertPending: the condition holds but has not yet held For long.
	AlertPending
	// AlertFiring: the condition has held for at least For.
	AlertFiring
)

// String returns the lowercase state name used in logs and JSON.
func (s AlertState) String() string {
	switch s {
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// RuleKind selects a rule's evaluation strategy.
type RuleKind string

const (
	// RuleThreshold compares the family's current value against Value.
	RuleThreshold RuleKind = "threshold"
	// RuleRate compares the family's per-second increase over the trailing
	// Window against Value.
	RuleRate RuleKind = "rate"
	// RuleAbsence holds when the family is missing from the registry, or when
	// its value has not changed across a fully covered trailing Window
	// (staleness — the "data stopped flowing" detector).
	RuleAbsence RuleKind = "absence"
	// RuleBurnRate holds when the SLO error-budget burn rate of a latency
	// histogram family exceeds Value: over the trailing Window, the fraction
	// of observations above Objective seconds, divided by Budget.
	RuleBurnRate RuleKind = "burn_rate"
)

// Rule is one declarative health check. Metric names a family (all label
// sets are summed) or a single canonical key (name{k=v}); which one is
// irrelevant to the evaluator — a family with one unlabeled series and a
// bare counter look the same.
type Rule struct {
	Name     string        `json:"name"`
	Severity string        `json:"severity"` // "warn" or "critical"
	Kind     RuleKind      `json:"kind"`
	Metric   string        `json:"metric"`
	Op       string        `json:"op,omitempty"`      // threshold/rate comparison; default ">"
	Value    float64       `json:"value"`             // threshold, rate/s, or burn factor
	Window   time.Duration `json:"window,omitempty"`  // rate/absence/burn trailing window
	For      time.Duration `json:"for,omitempty"`     // condition must hold this long to fire
	KeepFor  time.Duration `json:"keep_for,omitempty"` // flap suppression: stay firing until false this long
	// Burn-rate parameters.
	Objective float64 `json:"objective,omitempty"` // latency objective in seconds
	Budget    float64 `json:"budget,omitempty"`    // allowed bad fraction (error budget)
	// RealTime marks rules over wall-clock-derived metrics. They are skipped
	// in deterministic mode so seeded alert logs stay byte-identical.
	RealTime bool `json:"real_time,omitempty"`
}

// AlertEvent is one state transition in the alert log.
type AlertEvent struct {
	At       time.Time  `json:"at"`
	Rule     string     `json:"rule"`
	Severity string     `json:"severity"`
	State    AlertState `json:"-"`
	Value    float64    `json:"value"`
}

// MarshalState is the JSON face of State.
func (e AlertEvent) stateString() string {
	if e.State == AlertInactive {
		return "resolved"
	}
	return e.State.String()
}

// Line renders the event as one deterministic log line. Timestamps are the
// simulated instants evaluation ran at, so two same-seed runs render
// byte-identical lines.
func (e AlertEvent) Line() string {
	return fmt.Sprintf("%s %s %s severity=%s value=%s",
		e.At.UTC().Format(time.RFC3339Nano), e.stateString(), e.Rule,
		e.Severity, formatAlertNum(e.Value))
}

// AlertSnapshot is the externally visible state of one rule.
type AlertSnapshot struct {
	Rule     Rule       `json:"rule"`
	State    AlertState `json:"-"`
	StateStr string     `json:"state"`
	Since    time.Time  `json:"since,omitempty"` // pending/firing entry instant
	Value    float64    `json:"value"`           // last evaluated value
}

// UnmarshalJSON rehydrates State from the wire's state string, so clients
// (pogo-top, pogo-doctor) that decode /alerts get snapshots RenderAlerts and
// state comparisons work on directly.
func (s *AlertSnapshot) UnmarshalJSON(b []byte) error {
	type plain AlertSnapshot
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*s = AlertSnapshot(p)
	switch s.StateStr {
	case "pending":
		s.State = AlertPending
	case "firing":
		s.State = AlertFiring
	default:
		s.State = AlertInactive
	}
	return nil
}

// ruleStatus is the per-rule state machine.
type ruleStatus struct {
	state        AlertState
	pendingSince time.Time
	firingSince  time.Time
	lastTrue     time.Time
	value        float64
}

// AlertEngine evaluates rules against a registry. Construct via
// Registry.Alerts; a nil engine is a valid no-op. All methods are safe for
// concurrent use, though deterministic drivers call Evaluate from a single
// goroutine (or parked at a barrier).
type AlertEngine struct {
	mu            sync.Mutex
	reg           *Registry
	rules         []Rule
	status        map[string]*ruleStatus
	log           []AlertEvent
	deterministic bool
	defaultLoaded bool
}

// Alerts returns the registry's alert engine (nil on a nil registry).
func (r *Registry) Alerts() *AlertEngine {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.alerts == nil {
		r.alerts = &AlertEngine{reg: r, status: make(map[string]*ruleStatus)}
	}
	return r.alerts
}

// SetDeterministic marks the engine as driven by a simulated clock: rules
// with RealTime set are skipped entirely, so the alert log stays a pure
// function of the seed. Live servers leave it false and evaluate everything.
func (e *AlertEngine) SetDeterministic(v bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.deterministic = v
	e.mu.Unlock()
}

// AddRules installs rules. A rule whose name is already installed replaces
// the definition but keeps the alert state (so re-wiring a shared registry is
// idempotent). Evaluation order is installation order — deterministic.
func (e *AlertEngine) AddRules(rules ...Rule) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range rules {
		if r.Op == "" {
			r.Op = ">"
		}
		if r.Kind == "" {
			r.Kind = RuleThreshold
		}
		replaced := false
		for i := range e.rules {
			if e.rules[i].Name == r.Name {
				e.rules[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			e.rules = append(e.rules, r)
			e.status[r.Name] = &ruleStatus{}
		}
	}
}

// EnsureDefaultRules installs the default rule pack once. Safe to call from
// every wiring site that shares a registry.
func (e *AlertEngine) EnsureDefaultRules() {
	if e == nil {
		return
	}
	e.mu.Lock()
	loaded := e.defaultLoaded
	e.defaultLoaded = true
	e.mu.Unlock()
	if !loaded {
		e.AddRules(DefaultRules()...)
	}
}

// Rules returns a copy of the installed rules in evaluation order.
func (e *AlertEngine) Rules() []Rule {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Rule(nil), e.rules...)
}

// Rule returns the named rule and whether it is installed.
func (e *AlertEngine) Rule(name string) (Rule, bool) {
	if e == nil {
		return Rule{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// State returns the named rule's current alert state (AlertInactive and
// false when the rule is not installed).
func (e *AlertEngine) State(name string) (AlertState, bool) {
	if e == nil {
		return AlertInactive, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.status[name]
	if !ok {
		return AlertInactive, false
	}
	return st.state, true
}

// Snapshot returns every rule's current state in evaluation order.
func (e *AlertEngine) Snapshot() []AlertSnapshot {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertSnapshot, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.status[r.Name]
		snap := AlertSnapshot{Rule: r, State: st.state, StateStr: st.state.String(), Value: st.value}
		switch st.state {
		case AlertPending:
			snap.Since = st.pendingSince
		case AlertFiring:
			snap.Since = st.firingSince
		}
		out = append(out, snap)
	}
	return out
}

// Firing returns the currently firing rules in evaluation order.
func (e *AlertEngine) Firing() []AlertSnapshot {
	var out []AlertSnapshot
	for _, s := range e.Snapshot() {
		if s.State == AlertFiring {
			out = append(out, s)
		}
	}
	return out
}

// Log returns a copy of the transition log in emission order.
func (e *AlertEngine) Log() []AlertEvent {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]AlertEvent(nil), e.log...)
}

// FormatLog renders the transition log as newline-terminated lines — the
// byte-identical-per-seed artifact scenario archives pin.
func (e *AlertEngine) FormatLog() string {
	var sb strings.Builder
	for _, ev := range e.Log() {
		sb.WriteString(ev.Line())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Evaluate runs every rule against the registry at instant at, stepping the
// state machines and appending transitions to the log. Deterministic drivers
// call it at simulated instants (Registry.Sample does so automatically);
// calling it with a fresh snapshot is also valid for one-shot health checks.
func (e *AlertEngine) Evaluate(at time.Time) {
	if e == nil || e.reg == nil {
		return
	}
	e.evaluate(at, e.reg.Snapshot())
}

// evaluate is the Sample-path entry: the snapshot was just taken at `at` and
// appended to the series store, so windows end exactly at this sample.
func (e *AlertEngine) evaluate(at time.Time, snap Snapshot) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var series []SeriesSample
	haveSeries := false
	for i := range e.rules {
		r := e.rules[i]
		if r.RealTime && e.deterministic {
			continue
		}
		if (r.Kind == RuleRate || r.Kind == RuleAbsence || r.Kind == RuleBurnRate) && !haveSeries {
			series = e.reg.Series().Samples()
			haveSeries = true
		}
		value, cond := evalRule(r, snap, series)
		e.step(at, r, value, cond)
	}
}

// step advances one rule's state machine and logs transitions.
func (e *AlertEngine) step(at time.Time, r Rule, value float64, cond bool) {
	st := e.status[r.Name]
	st.value = value
	emit := func(state AlertState) {
		ev := AlertEvent{At: at, Rule: r.Name, Severity: r.Severity, State: state, Value: value}
		e.log = append(e.log, ev)
		e.exportState(r, state)
	}
	if cond {
		st.lastTrue = at
		switch st.state {
		case AlertInactive:
			st.state = AlertPending
			st.pendingSince = at
			if r.For > 0 {
				emit(AlertPending)
			}
			fallthrough
		case AlertPending:
			if at.Sub(st.pendingSince) >= r.For {
				st.state = AlertFiring
				st.firingSince = at
				emit(AlertFiring)
			}
		}
		return
	}
	switch st.state {
	case AlertPending:
		// The condition lapsed before the alert fired: cancel silently, as
		// Prometheus does — the log records only pending/firing/resolved.
		st.state = AlertInactive
	case AlertFiring:
		// Flap suppression: hold the alert until the condition has been false
		// for KeepFor.
		if at.Sub(st.lastTrue) >= r.KeepFor {
			st.state = AlertInactive
			emit(AlertInactive)
		}
	}
}

// exportState mirrors the rule's state into a pogo_alert_firing gauge so
// /metrics carries ALERTS-style series and expect_metric can read them.
// Evaluation runs after the triggering sample was appended, so the gauge
// lands in the *next* sample — a one-tick lag, deterministic like the rest.
func (e *AlertEngine) exportState(r Rule, state AlertState) {
	g := e.reg.Gauge("pogo_alert_firing", L("rule", r.Name), L("severity", r.Severity))
	if state == AlertFiring {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// evalRule computes (value, condition) for one rule.
func evalRule(r Rule, snap Snapshot, series []SeriesSample) (float64, bool) {
	switch r.Kind {
	case RuleRate:
		rate := familyRate(series, r.Metric, r.Window)
		ok, err := alertCmp(r.Op, rate, r.Value)
		return rate, ok && err == nil
	case RuleAbsence:
		return evalAbsence(r, snap, series)
	case RuleBurnRate:
		burn := familyBurnRate(series, r.Metric, r.Window, r.Objective, r.Budget)
		factor := r.Value
		if factor == 0 {
			factor = 1
		}
		return burn, burn >= factor
	default: // RuleThreshold
		v, present := familyValue(snap, r.Metric)
		if !present {
			return 0, false
		}
		ok, err := alertCmp(r.Op, v, r.Value)
		return v, ok && err == nil
	}
}

// evalAbsence: condition holds when the family has never been registered, or
// when the trailing window is fully covered by samples and the family's value
// did not change across it.
func evalAbsence(r Rule, snap Snapshot, series []SeriesSample) (float64, bool) {
	cur, present := familyValue(snap, r.Metric)
	if !present {
		return 0, true
	}
	if r.Window <= 0 || len(series) == 0 {
		return cur, false
	}
	newest := series[len(series)-1]
	cutoff := newest.At.Add(-r.Window)
	// Baseline is the newest sample at or before the window start; without
	// one the store does not span the window yet (startup) — not stale.
	var baseline *SeriesSample
	for i := len(series) - 1; i >= 0; i-- {
		if !series[i].At.After(cutoff) {
			baseline = &series[i]
			break
		}
	}
	if baseline == nil {
		return cur, false
	}
	old, _ := sampleFamilyValue(*baseline, r.Metric)
	return cur, cur == old
}

// familyValue sums every snapshot series belonging to the family (exact key
// or name{...} prefixed). Histogram families contribute their observation
// counts. The bool reports whether any series matched.
func familyValue(snap Snapshot, family string) (float64, bool) {
	var total float64
	matched := false
	for k, v := range snap.Counters {
		if keyInFamily(k, family) {
			total += float64(v)
			matched = true
		}
	}
	for k, v := range snap.Gauges {
		if keyInFamily(k, family) {
			total += v
			matched = true
		}
	}
	for k, h := range snap.Histograms {
		if keyInFamily(k, family) {
			total += float64(h.Count)
			matched = true
		}
	}
	return total, matched
}

// sampleFamilyValue is familyValue over one stored series sample.
func sampleFamilyValue(s SeriesSample, family string) (float64, bool) {
	return familyValue(Snapshot{Counters: s.Counters, Gauges: s.Gauges, Histograms: s.Histograms}, family)
}

// keyInFamily reports whether canonical key k belongs to the family: the
// bare family name or any labeled variant of it.
func keyInFamily(k, family string) bool {
	if k == family {
		return true
	}
	return len(k) > len(family) && strings.HasPrefix(k, family) && k[len(family)] == '{'
}

// oldestInWindow returns the oldest sample at or after cutoff (nil if none).
func oldestInWindow(series []SeriesSample, cutoff time.Time) *SeriesSample {
	for i := range series {
		if !series[i].At.Before(cutoff) {
			return &series[i]
		}
	}
	return nil
}

// familyRate is the family's per-second increase over the trailing window,
// measured between the newest sample and the oldest in-window one. Zero with
// fewer than two distinct-instant samples in the window.
func familyRate(series []SeriesSample, family string, window time.Duration) float64 {
	if len(series) == 0 {
		return 0
	}
	newest := series[len(series)-1]
	oldest := oldestInWindow(series, newest.At.Add(-window))
	if oldest == nil || !newest.At.After(oldest.At) {
		return 0
	}
	nv, _ := sampleFamilyValue(newest, family)
	ov, _ := sampleFamilyValue(*oldest, family)
	return (nv - ov) / newest.At.Sub(oldest.At).Seconds()
}

// familyBurnRate computes the SLO burn rate of a latency histogram family
// over the trailing window: the fraction of in-window observations above
// objective seconds, divided by budget (the allowed bad fraction).
//
// Edge cases, pinned by tests: an empty window (no observations) burns 0; a
// zero budget burns +Inf the moment a single observation is bad, and 0 while
// none are.
func familyBurnRate(series []SeriesSample, family string, window time.Duration, objective, budget float64) float64 {
	if len(series) == 0 {
		return 0
	}
	newest := series[len(series)-1]
	oldest := oldestInWindow(series, newest.At.Add(-window))
	bad, total := familyBadCount(newest, family, objective)
	if oldest != nil && !newest.At.Equal(oldest.At) {
		ob, ot := familyBadCount(*oldest, family, objective)
		bad -= ob
		total -= ot
	}
	if total <= 0 {
		return 0
	}
	badFrac := float64(bad) / float64(total)
	if budget <= 0 {
		if bad > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return badFrac / budget
}

// familyBadCount sums (observations above objective, total observations)
// across the family's histograms in one sample. "Above objective" is
// resolved conservatively on bucket bounds: an observation counts as good
// only if its whole bucket is at or under the objective.
func familyBadCount(s SeriesSample, family string, objective float64) (bad, total int64) {
	for k, h := range s.Histograms {
		if !keyInFamily(k, family) {
			continue
		}
		var good int64
		for i, b := range h.Bounds {
			if b <= objective {
				good += h.Counts[i]
			}
		}
		bad += h.Count - good
		total += h.Count
	}
	return bad, total
}

// alertCmp mirrors the scenario DSL's comparison operators.
func alertCmp(op string, have, want float64) (bool, error) {
	switch op {
	case ">":
		return have > want, nil
	case ">=":
		return have >= want, nil
	case "<":
		return have < want, nil
	case "<=":
		return have <= want, nil
	case "==":
		return have == want, nil
	case "!=":
		return have != want, nil
	}
	return false, fmt.Errorf("unknown operator %q", op)
}

// formatAlertNum renders values without float noise; +Inf stays readable.
func formatAlertNum(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// DefaultRules is the stock health pack: one rule per failure mode the stack
// already meters. Deterministic drivers (chaos, fleet, scenarios) load it via
// EnsureDefaultRules; live binaries do too, plus the RealTime rules actually
// evaluate there.
func DefaultRules() []Rule {
	return []Rule{
		{
			// The transport guarantees exactly-once in-order delivery; a
			// single observed violation is a page, immediately.
			Name: "exactly_once_violation", Severity: "critical",
			Kind: RuleThreshold, Metric: "delivery_violations_total",
			Op: ">", Value: 0,
			KeepFor: time.Minute,
		},
		{
			// Retransmission storm: sustained retry pressure across the
			// fleet's endpoints.
			Name: "retry_storm", Severity: "warn",
			Kind: RuleRate, Metric: "transport_retries_total",
			Op: ">", Value: 3, // retries/sec fleet-wide
			Window: time.Minute, For: 30 * time.Second, KeepFor: time.Minute,
		},
		{
			// Collector backpressure: outboxes piling up faster than the
			// fleet drains them.
			Name: "collector_backpressure", Severity: "warn",
			Kind: RuleThreshold, Metric: "outbox_pending",
			Op: ">", Value: 200,
			For: 15 * time.Second, KeepFor: time.Minute,
		},
		{
			// Switchboard offline queues growing: sessions are dying faster
			// than they resume.
			Name: "offline_queue_growth", Severity: "warn",
			Kind: RuleRate, Metric: "xmpp_server_queued_total",
			Op: ">", Value: 1, // queued stanzas/sec
			Window: time.Minute, For: 30 * time.Second, KeepFor: time.Minute,
		},
		{
			// Delivery-latency SLO burn: more than Budget of recent
			// deliveries took longer than Objective, at Value times the
			// sustainable rate.
			Name: "delivery_latency_slo", Severity: "critical",
			Kind: RuleBurnRate, Metric: "trace_delivery_latency_seconds",
			Objective: 15, Budget: 0.05, Value: 2,
			Window: 2 * time.Minute, For: 30 * time.Second, KeepFor: time.Minute,
		},
		{
			// Data flow stalled: the node stopped receiving anything for a
			// full window while up.
			Name: "data_flow_stalled", Severity: "warn",
			Kind: RuleAbsence, Metric: "transport_messages_received_total",
			Window: 5 * time.Minute, For: 0, KeepFor: 0,
		},
		{
			// Fleet epoch-barrier stall spikes: wall-clock load imbalance.
			// RealTime — skipped under deterministic evaluation.
			Name: "barrier_stall", Severity: "warn",
			Kind: RuleBurnRate, Metric: "fleet_barrier_stall_seconds",
			Objective: 0.5, Budget: 0.05, Value: 1,
			Window: 2 * time.Minute, For: 0, KeepFor: time.Minute,
			RealTime: true,
		},
	}
}

// WriteAlertsProm renders the engine in a Prometheus-flavoured text form:
// one ALERTS{alertname,severity,alertstate} sample per non-inactive rule
// (value 1), matching what a Prometheus server exposes for its own rules.
func (e *AlertEngine) WriteAlertsProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP ALERTS Pogo alert rule states (pending or firing).\n# TYPE ALERTS gauge\n")
	for _, s := range e.Snapshot() {
		if s.State == AlertInactive {
			continue
		}
		fmt.Fprintf(w, "ALERTS{alertname=%q,severity=%q,alertstate=%q} 1\n",
			s.Rule.Name, s.Rule.Severity, s.State.String())
	}
}
