package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

var alertT0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// tick samples the registry at t0+offset, which drives one alert evaluation.
func tick(r *Registry, offset time.Duration) {
	r.Sample(alertT0.Add(offset), "test")
}

func requireState(t *testing.T, e *AlertEngine, rule string, want AlertState) {
	t.Helper()
	got, ok := e.State(rule)
	if !ok {
		t.Fatalf("rule %q not installed", rule)
	}
	if got != want {
		t.Fatalf("rule %q: state = %v, want %v", rule, got, want)
	}
}

func TestAlertThresholdLifecycle(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "backlog", Severity: "warn",
		Kind: RuleThreshold, Metric: "pending", Op: ">", Value: 10,
		For: 20 * time.Second,
	})

	g := r.Gauge("pending")
	g.Set(5)
	tick(r, 0)
	requireState(t, e, "backlog", AlertInactive)

	// Condition starts holding: pending, then firing once For has elapsed.
	g.Set(50)
	tick(r, 10*time.Second)
	requireState(t, e, "backlog", AlertPending)
	tick(r, 20*time.Second)
	requireState(t, e, "backlog", AlertPending) // 10s elapsed < For
	tick(r, 30*time.Second)
	requireState(t, e, "backlog", AlertFiring) // 20s elapsed == For

	// Condition clears; KeepFor is zero, so it resolves immediately.
	g.Set(0)
	tick(r, 40*time.Second)
	requireState(t, e, "backlog", AlertInactive)

	var states []string
	for _, ev := range e.Log() {
		states = append(states, ev.stateString())
	}
	want := []string{"pending", "firing", "resolved"}
	if len(states) != len(want) {
		t.Fatalf("log states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("log states = %v, want %v", states, want)
		}
	}
}

func TestAlertPendingLapsesSilently(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "blip", Severity: "warn",
		Kind: RuleThreshold, Metric: "pending", Op: ">", Value: 10,
		For: time.Minute,
	})
	g := r.Gauge("pending")
	g.Set(50)
	tick(r, 0)
	requireState(t, e, "blip", AlertPending)
	g.Set(0)
	tick(r, 10*time.Second)
	requireState(t, e, "blip", AlertInactive)
	// The lapse must not appear as "resolved": only firing alerts resolve.
	for _, ev := range e.Log() {
		if ev.stateString() == "resolved" || ev.stateString() == "firing" {
			t.Fatalf("unexpected %s event for an alert that never fired", ev.stateString())
		}
	}
}

func TestAlertFlapSuppression(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "flappy", Severity: "warn",
		Kind: RuleThreshold, Metric: "pending", Op: ">", Value: 10,
		KeepFor: time.Minute, // For: 0 — fires on first true tick
	})
	g := r.Gauge("pending")
	g.Set(50)
	tick(r, 0)
	requireState(t, e, "flappy", AlertFiring)

	// Condition flaps false/true/false inside KeepFor: alert must stay
	// firing with no resolved/refire churn in the log.
	g.Set(0)
	tick(r, 20*time.Second)
	requireState(t, e, "flappy", AlertFiring)
	g.Set(50)
	tick(r, 40*time.Second)
	requireState(t, e, "flappy", AlertFiring)
	g.Set(0)
	tick(r, 60*time.Second)
	requireState(t, e, "flappy", AlertFiring) // only 20s since last true

	// False for a full KeepFor: now it resolves.
	tick(r, 100*time.Second)
	requireState(t, e, "flappy", AlertInactive)

	if got := len(e.Log()); got != 2 { // firing + resolved, nothing between
		t.Fatalf("flap produced %d log events, want 2:\n%s", got, e.FormatLog())
	}
}

func TestAlertRateRule(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "storm", Severity: "warn",
		Kind: RuleRate, Metric: "retries_total",
		Op: ">", Value: 2, Window: time.Minute,
	})
	c := r.Counter("retries_total", L("node", "a"))
	c2 := r.Counter("retries_total", L("node", "b"))
	tick(r, 0)
	requireState(t, e, "storm", AlertInactive)

	// 300 retries across the family in 60s → 5/s > 2/s.
	c.Add(200)
	c2.Add(100)
	tick(r, time.Minute)
	requireState(t, e, "storm", AlertFiring)

	// No further increase over the next window → rate back to 0.
	tick(r, 2*time.Minute)
	requireState(t, e, "storm", AlertInactive)
}

func TestAlertAbsenceRule(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "stalled", Severity: "warn",
		Kind: RuleAbsence, Metric: "received_total", Window: time.Minute,
	})

	// Family never registered: absent from the very first evaluation.
	tick(r, 0)
	requireState(t, e, "stalled", AlertFiring)

	// Metric appears and moves: resolves.
	c := r.Counter("received_total")
	c.Add(1)
	tick(r, 10*time.Second)
	requireState(t, e, "stalled", AlertInactive)

	// Keeps moving: stays resolved even once the window is covered.
	c.Add(1)
	tick(r, 40*time.Second)
	c.Add(1)
	tick(r, 70*time.Second)
	requireState(t, e, "stalled", AlertInactive)

	// Goes quiet: once a full window passes with no change, stale again.
	tick(r, 100*time.Second)
	requireState(t, e, "stalled", AlertInactive) // window spans 40s..100s; value moved at 70s
	tick(r, 140*time.Second)
	requireState(t, e, "stalled", AlertFiring) // 70s..140s: no change
}

func TestBurnRateEdgeCases(t *testing.T) {
	bounds := []float64{1, 5, 15, 60}
	mk := func(counts []int64, count int64) HistogramSnapshot {
		return HistogramSnapshot{Count: count, Bounds: bounds, Counts: counts}
	}
	sample := func(at time.Time, h HistogramSnapshot) SeriesSample {
		return SeriesSample{At: at, Histograms: map[string]HistogramSnapshot{"lat{channel=x}": h}}
	}

	// Empty window: no observations at all → burn 0, not NaN.
	empty := []SeriesSample{sample(alertT0, mk([]int64{0, 0, 0, 0, 0}, 0))}
	if got := familyBurnRate(empty, "lat", time.Minute, 15, 0.05); got != 0 {
		t.Fatalf("empty window burn = %v, want 0", got)
	}
	// No samples at all.
	if got := familyBurnRate(nil, "lat", time.Minute, 15, 0.05); got != 0 {
		t.Fatalf("no-samples burn = %v, want 0", got)
	}

	// 10 observations, 1 above the 15s objective, budget 5%:
	// badFrac 0.1 / 0.05 = burn 2.
	one := []SeriesSample{sample(alertT0, mk([]int64{5, 3, 1, 1, 0}, 10))}
	if got := familyBurnRate(one, "lat", time.Minute, 15, 0.05); got != 2 {
		t.Fatalf("burn = %v, want 2", got)
	}

	// Zero budget: any bad observation is an infinite burn...
	if got := familyBurnRate(one, "lat", time.Minute, 15, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero-budget burn = %v, want +Inf", got)
	}
	// ...but a perfect window burns 0 even with no budget.
	good := []SeriesSample{sample(alertT0, mk([]int64{5, 3, 2, 0, 0}, 10))}
	if got := familyBurnRate(good, "lat", time.Minute, 15, 0); got != 0 {
		t.Fatalf("zero-budget clean burn = %v, want 0", got)
	}

	// Windowed: older cumulative sample subtracted, so only the delta counts.
	// Old: 10 obs, 1 bad. New: 20 obs, 6 bad. Window delta: 10 obs, 5 bad.
	windowed := []SeriesSample{
		sample(alertT0, mk([]int64{5, 3, 1, 1, 0}, 10)),
		sample(alertT0.Add(30*time.Second), mk([]int64{8, 4, 2, 5, 1}, 20)),
	}
	got := familyBurnRate(windowed, "lat", time.Minute, 15, 0.05)
	if want := (5.0 / 10.0) / 0.05; got != want {
		t.Fatalf("windowed burn = %v, want %v", got, want)
	}
}

func TestBurnRateRuleLifecycle(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "slo", Severity: "critical",
		Kind: RuleBurnRate, Metric: "lat",
		Objective: 15, Budget: 0.05, Value: 2, Window: 2 * time.Minute,
	})
	h := r.Histogram("lat", []float64{1, 5, 15, 60}, L("channel", "x"))
	for i := 0; i < 9; i++ {
		h.Observe(1)
	}
	tick(r, 0)
	requireState(t, e, "slo", AlertInactive) // 0 bad / 9

	h.Observe(59) // 1 bad of 10 → burn 2 ≥ 2
	tick(r, 30*time.Second)
	requireState(t, e, "slo", AlertFiring)
}

func TestAlertRealTimeSkippedWhenDeterministic(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.SetDeterministic(true)
	e.AddRules(Rule{
		Name: "wall", Severity: "warn",
		Kind: RuleThreshold, Metric: "stall", Op: ">", Value: 0,
		RealTime: true,
	})
	r.Gauge("stall").Set(99)
	tick(r, 0)
	requireState(t, e, "wall", AlertInactive)
	if len(e.Log()) != 0 {
		t.Fatalf("real-time rule logged events in deterministic mode:\n%s", e.FormatLog())
	}

	e.SetDeterministic(false)
	tick(r, time.Second)
	requireState(t, e, "wall", AlertFiring)
}

func TestAlertLogLinesAndFiringGauge(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{
		Name: "x", Severity: "critical",
		Kind: RuleThreshold, Metric: "v", Op: ">", Value: 0,
	})
	r.Gauge("v").Set(3)
	tick(r, 0)

	log := e.FormatLog()
	want := "2026-01-01T00:00:00Z firing x severity=critical value=3\n"
	if log != want {
		t.Fatalf("log = %q, want %q", log, want)
	}
	snap := r.Snapshot()
	if got := snap.Gauges[Key("pogo_alert_firing", L("rule", "x"), L("severity", "critical"))]; got != 1 {
		t.Fatalf("pogo_alert_firing = %v, want 1", got)
	}

	r.Gauge("v").Set(0)
	tick(r, time.Second)
	snap = r.Snapshot()
	if got := snap.Gauges[Key("pogo_alert_firing", L("rule", "x"), L("severity", "critical"))]; got != 0 {
		t.Fatalf("pogo_alert_firing after resolve = %v, want 0", got)
	}
}

func TestAlertRuleReplaceKeepsState(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(Rule{Name: "a", Kind: RuleThreshold, Metric: "v", Op: ">", Value: 0})
	r.Gauge("v").Set(1)
	tick(r, 0)
	requireState(t, e, "a", AlertFiring)

	// Re-adding (re-wiring a shared registry) must not reset the state.
	e.AddRules(Rule{Name: "a", Kind: RuleThreshold, Metric: "v", Op: ">", Value: 0, Severity: "warn"})
	requireState(t, e, "a", AlertFiring)
	if got, _ := e.Rule("a"); got.Severity != "warn" {
		t.Fatalf("rule definition not replaced: %+v", got)
	}
}

func TestEnsureDefaultRulesIdempotent(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.EnsureDefaultRules()
	n := len(e.Rules())
	if n == 0 {
		t.Fatal("no default rules installed")
	}
	e.EnsureDefaultRules()
	if got := len(e.Rules()); got != n {
		t.Fatalf("EnsureDefaultRules not idempotent: %d then %d rules", n, got)
	}
}

func TestNilAlertEngineSafe(t *testing.T) {
	var e *AlertEngine
	e.AddRules(Rule{Name: "x"})
	e.EnsureDefaultRules()
	e.SetDeterministic(true)
	e.Evaluate(alertT0)
	if e.Rules() != nil || e.Log() != nil || e.Snapshot() != nil || e.Firing() != nil {
		t.Fatal("nil engine returned non-nil data")
	}
	if _, ok := e.State("x"); ok {
		t.Fatal("nil engine reported a rule state")
	}
	var r *Registry
	if r.Alerts() != nil {
		t.Fatal("nil registry returned an engine")
	}
}

func TestWriteAlertsProm(t *testing.T) {
	r := NewRegistry()
	e := r.Alerts()
	e.AddRules(
		Rule{Name: "hot", Severity: "critical", Kind: RuleThreshold, Metric: "v", Op: ">", Value: 0},
		Rule{Name: "cold", Severity: "warn", Kind: RuleThreshold, Metric: "v", Op: "<", Value: -1},
	)
	r.Gauge("v").Set(5)
	tick(r, 0)
	var sb strings.Builder
	e.WriteAlertsProm(&sb)
	out := sb.String()
	if !strings.Contains(out, `ALERTS{alertname="hot",severity="critical",alertstate="firing"} 1`) {
		t.Fatalf("missing firing sample:\n%s", out)
	}
	if strings.Contains(out, "cold") {
		t.Fatalf("inactive rule exposed:\n%s", out)
	}
}
