package obs

import (
	"fmt"
	"io"
	"time"
)

// WriteAccountingCSV renders the ledger as CSV, one row per (entity, energy
// state) plus one "total" row per entity carrying the integer quantities.
// Rows follow Ledger.Snapshot's (device, script, topic) order with energy
// states sorted, so same-seed runs produce byte-identical files.
func WriteAccountingCSV(w io.Writer, l *Ledger) {
	fmt.Fprintln(w, "device,script,topic,state,energy_joules,uplink_bytes,downlink_bytes,messages,wake_ms,steps,deadline_exceeded,tail_hits,tail_misses")
	for _, a := range l.Snapshot() {
		for _, st := range sortedKeys(a.Energy) {
			fmt.Fprintf(w, "%s,%s,%s,%s,%.6f,0,0,0,0,0,0,0,0\n",
				csvField(a.Device), csvField(a.Script), csvField(a.Topic), csvField(st), a.Energy[st])
		}
		fmt.Fprintf(w, "%s,%s,%s,total,%.6f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			csvField(a.Device), csvField(a.Script), csvField(a.Topic),
			a.EnergyTotal, a.UplinkBytes, a.DownlinkBytes, a.Messages,
			a.WakeMS, a.Steps, a.DeadlineExceeded, a.TailHits, a.TailMisses)
	}
}

// WriteSeriesCSV renders the time-series store in long format: one row per
// (sample, metric), with metrics sorted within each sample. Histograms emit
// their count and sum. Timestamps are RFC 3339 in UTC (simulated instants
// are already UTC).
func WriteSeriesCSV(w io.Writer, s *SeriesStore) {
	fmt.Fprintln(w, "at,tag,kind,key,value")
	for _, sm := range s.Samples() {
		at := sm.At.UTC().Format(time.RFC3339Nano)
		for _, k := range sortedKeys(sm.Counters) {
			fmt.Fprintf(w, "%s,%s,counter,%s,%d\n", at, csvField(sm.Tag), csvField(k), sm.Counters[k])
		}
		for _, k := range sortedKeys(sm.Gauges) {
			fmt.Fprintf(w, "%s,%s,gauge,%s,%g\n", at, csvField(sm.Tag), csvField(k), sm.Gauges[k])
		}
		for _, k := range sortedKeys(sm.Histograms) {
			h := sm.Histograms[k]
			fmt.Fprintf(w, "%s,%s,hist_count,%s,%d\n", at, csvField(sm.Tag), csvField(k), h.Count)
			fmt.Fprintf(w, "%s,%s,hist_sum,%s,%g\n", at, csvField(sm.Tag), csvField(k), h.Sum)
		}
	}
}

// csvField quotes a value when it contains a comma, quote, or newline
// (RFC 4180). Metric keys contain commas between labels, so this triggers
// routinely.
func csvField(v string) string {
	needQuote := false
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needQuote = true
			break
		}
	}
	if !needQuote {
		return v
	}
	out := make([]byte, 0, len(v)+2)
	out = append(out, '"')
	for i := 0; i < len(v); i++ {
		if v[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, v[i])
	}
	return string(append(out, '"'))
}
