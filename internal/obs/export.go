package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome Trace Event Format export (the trace.json Perfetto and
// chrome://tracing load): every retained hop becomes a complete ("X") slice
// on its node's track, and cross-node causal edges become flow arrows. The
// output is a pure function of the retained hop set — hops are content-
// sorted by the SpanStore before rendering and every id in the file derives
// from hop content — so same-seed runs export byte-identical files
// regardless of shard count or goroutine interleaving.

// traceEvent is one entry of the "traceEvents" array. Field order is fixed
// by the struct, keeping the marshaled bytes deterministic.
type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   int64           `json:"ts"` // microseconds since first hop
	Dur  int64           `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	ID   string          `json:"id,omitempty"`
	BP   string          `json:"bp,omitempty"`
	Args *traceEventArgs `json:"args,omitempty"`
}

type traceEventArgs struct {
	Name   string `json:"name,omitempty"` // thread_name metadata
	Trace  string `json:"trace,omitempty"`
	Msg    uint64 `json:"msg,omitempty"`
	Detail string `json:"detail,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceJSON renders the registry's span store as Chrome Trace Event
// JSON. Safe on a nil registry (writes an empty trace).
func WriteTraceJSON(w io.Writer, r *Registry) error {
	return writeTraceJSONHops(w, r.Spans().Hops())
}

func writeTraceJSONHops(w io.Writer, hops []Hop) error {
	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if len(hops) > 0 {
		// Stable thread ids: sorted node names, 1-based.
		nodeSet := make(map[string]struct{})
		epoch := hops[0].At
		for _, h := range hops {
			nodeSet[h.Node] = struct{}{}
			if h.At.Before(epoch) {
				epoch = h.At
			}
		}
		nodes := make([]string, 0, len(nodeSet))
		for n := range nodeSet {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		tid := make(map[string]int, len(nodes))
		for i, n := range nodes {
			tid[n] = i + 1
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
				Args: &traceEventArgs{Name: n},
			})
		}
		ts := func(h Hop) int64 { return h.At.Sub(epoch).Microseconds() }
		// Hops arrive sorted by trace then time; walk each trace's group.
		for i := 0; i < len(hops); {
			j := i
			for j < len(hops) && hops[j].Trace == hops[i].Trace {
				j++
			}
			group := hops[i:j]
			hex := group[0].Trace.String()
			for k, h := range group {
				dur := int64(1)
				if k+1 < len(group) {
					if d := ts(group[k+1]) - ts(h); d > dur {
						dur = d
					}
				}
				cat := h.Channel
				if cat == "" {
					cat = "pogo"
				}
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: string(h.Stage), Cat: cat, Ph: "X",
					Ts: ts(h), Dur: dur, Pid: 1, Tid: tid[h.Node],
					Args: &traceEventArgs{Trace: hex, Msg: h.MsgID, Detail: h.Detail},
				})
				// Causal flow arrow to the next hop when it changes node.
				if k+1 < len(group) && group[k+1].Node != h.Node {
					id := hex + "-" + strconv.Itoa(k)
					next := group[k+1]
					out.TraceEvents = append(out.TraceEvents,
						traceEvent{Name: "hop", Cat: cat, Ph: "s", Ts: ts(h), Pid: 1, Tid: tid[h.Node], ID: id},
						traceEvent{Name: "hop", Cat: cat, Ph: "f", BP: "e", Ts: ts(next), Pid: 1, Tid: tid[next.Node], ID: id},
					)
				}
			}
			i = j
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// TopicLatency is the delivery-latency SLO snapshot of one channel,
// quantiles estimated from the trace_delivery_latency_seconds histogram.
type TopicLatency struct {
	Channel string  `json:"channel"`
	Count   int64   `json:"count"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
}

// latencyFamily is the histogram family LatencyReport aggregates.
const latencyFamily = "trace_delivery_latency_seconds"

// LatencyReport extracts the per-topic delivery-latency SLO snapshot,
// sorted by channel. Empty (not nil-panicking) on a nil registry.
func LatencyReport(r *Registry) []TopicLatency {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type pair struct {
		channel string
		snap    HistogramSnapshot
	}
	var pairs []pair
	for k, m := range r.meta {
		if m.name != latencyFamily {
			continue
		}
		h, ok := r.hists[k]
		if !ok {
			continue
		}
		channel := ""
		for _, l := range m.labels {
			if l.Key == "channel" {
				channel = l.Value
			}
		}
		pairs = append(pairs, pair{channel, h.snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].channel < pairs[j].channel })
	out := make([]TopicLatency, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, TopicLatency{
			Channel: p.channel,
			Count:   p.snap.Count,
			P50:     p.snap.Quantile(0.50),
			P95:     p.snap.Quantile(0.95),
			P99:     p.snap.Quantile(0.99),
		})
	}
	return out
}
