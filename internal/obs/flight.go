package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Flight recorder: when a chaos/fleet audit fails (a 0-lost/0-dup violation,
// previously reported only as "hash divergence, good luck"), the recent
// contents of the span store are dumped to disk as a replayable causal
// timeline. The dump is self-contained JSON — hops plus enough structure to
// rebuild every span tree offline with LoadFlightDump + AssembleTree.

// FlightTrace is one trace's retained hops, canonically ordered.
type FlightTrace struct {
	Trace TraceID `json:"trace"`
	Hops  []Hop   `json:"hops"`
}

// FlightDump is the on-disk flight-recorder format.
type FlightDump struct {
	// Reason describes the audit failure that triggered the dump.
	Reason string `json:"reason"`
	// At is the (simulated) instant the dump was taken.
	At time.Time `json:"at"`
	// DroppedHops counts ring evictions before the dump: when nonzero, the
	// oldest traces below may be truncated.
	DroppedHops uint64        `json:"dropped_hops"`
	Traces      []FlightTrace `json:"traces"`
}

// BuildFlightDump captures the registry's span store. Works (emptily) on a
// nil registry so dump paths need no observability branch.
func BuildFlightDump(r *Registry, reason string, at time.Time) *FlightDump {
	d := &FlightDump{Reason: reason, At: at, DroppedHops: r.Spans().Dropped(), Traces: []FlightTrace{}}
	hops := r.Spans().Hops() // sorted by trace, then canonical hop order
	for i := 0; i < len(hops); {
		j := i
		for j < len(hops) && hops[j].Trace == hops[i].Trace {
			j++
		}
		d.Traces = append(d.Traces, FlightTrace{
			Trace: hops[i].Trace,
			Hops:  append([]Hop(nil), hops[i:j]...),
		})
		i = j
	}
	return d
}

// WriteFile serializes the dump as indented JSON at path.
func (d *FlightDump) WriteFile(path string) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal flight dump: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// DumpFlightFile is the one-call form: capture the span store and write it.
func DumpFlightFile(path string, r *Registry, reason string, at time.Time) error {
	return BuildFlightDump(r, reason, at).WriteFile(path)
}

// LoadFlightDump parses a dump written by WriteFile.
func LoadFlightDump(path string) (*FlightDump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("obs: parse flight dump %s: %w", path, err)
	}
	return &d, nil
}

// Tree rebuilds the span tree of one dumped trace (nil if absent).
func (d *FlightDump) Tree(trace TraceID) *SpanNode {
	for _, t := range d.Traces {
		if t.Trace == trace {
			return AssembleTree(t.Hops)
		}
	}
	return nil
}

// Incomplete lists dumped traces that entered the transport (publish or
// enqueue hop present) but reached no terminal stage (deliver or expire) —
// the in-flight messages an audit failure most wants explained. Sorted
// ascending.
func (d *FlightDump) Incomplete() []TraceID {
	var out []TraceID
	for _, t := range d.Traces {
		var started, terminal bool
		for _, h := range t.Hops {
			switch h.Stage {
			case StagePublish, StageEnqueue:
				started = true
			case StageDeliver, StageExpire:
				terminal = true
			}
		}
		if started && !terminal {
			out = append(out, t.Trace)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
