package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Handler returns an http.Handler exposing the registry expvar-style:
//
//	GET /metrics            — full Snapshot as JSON (counters, gauges, histograms)
//	GET /trace              — retained lifecycle events as JSON
//	GET /trace?channel=ch   — events for one channel
//	GET /stats              — the human-readable text dump (same as -stats)
//
// Everything is stdlib-only JSON; point curl or a scraper at it.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		t := r.Tracer()
		var events []Event
		if ch := req.URL.Query().Get("channel"); ch != "" {
			events = t.Channel(ch)
		} else {
			events = t.Events()
		}
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{t.Dropped(), events})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, r)
	})
	return mux
}

// WriteText renders the registry as a sorted, aligned text report — the
// -stats output of cmd/pogod and cmd/pogo-bench.
func WriteText(w io.Writer, r *Registry) {
	s := r.Snapshot()
	section := func(title string) { fmt.Fprintf(w, "%s:\n", title) }
	if len(s.Counters) > 0 {
		section("counters")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-64s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-64s %g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(w, "  %-64s count=%d sum=%g mean=%g\n", k, h.Count, h.Sum, mean)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
