package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Handler returns an http.Handler exposing the registry:
//
//	GET /metrics            — Prometheus text exposition format (scrape this)
//	GET /metrics.json       — full Snapshot as JSON (counters, gauges, histograms)
//	GET /accounting         — the per-entity resource ledger as JSON
//	GET /timeseries         — retained time-series samples as JSON (?last=N limits)
//	GET /trace              — retained lifecycle events as JSON
//	GET /trace?channel=ch   — events for one channel
//	GET /trace.pftrace      — span store as Chrome/Perfetto trace.json
//	GET /alerts             — alert rules, states, and transition log as JSON
//	GET /alerts?format=prom — firing/pending rules as Prometheus ALERTS samples
//	GET /stats              — the human-readable text dump (same as -stats)
//
// Everything is stdlib-only; point curl, a Prometheus scraper, or pogo-top
// at it.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/accounting", func(w http.ResponseWriter, req *http.Request) {
		r.Collect() // book any pull-style deltas before reading the ledger
		accounts := r.Ledger().Snapshot()
		if accounts == nil {
			accounts = []AccountSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Accounts []AccountSnapshot `json:"accounts"`
		}{accounts})
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, req *http.Request) {
		samples := r.Series().Samples()
		if n, err := strconv.Atoi(req.URL.Query().Get("last")); err == nil && n >= 0 && n < len(samples) {
			samples = samples[len(samples)-n:]
		}
		if samples == nil {
			samples = []SeriesSample{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64         `json:"dropped"`
			Samples []SeriesSample `json:"samples"`
		}{r.Series().Dropped(), samples})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		t := r.Tracer()
		var events []Event
		if ch := req.URL.Query().Get("channel"); ch != "" {
			events = t.Channel(ch)
		} else {
			events = t.Events()
		}
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{t.Dropped(), events})
	})
	mux.HandleFunc("/trace.pftrace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		WriteTraceJSON(w, r)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, req *http.Request) {
		e := r.Alerts()
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			e.WriteAlertsProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		alerts := e.Snapshot()
		if alerts == nil {
			alerts = []AlertSnapshot{}
		}
		log := e.Log()
		if log == nil {
			log = []AlertEvent{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Alerts []AlertSnapshot `json:"alerts"`
			Log    []AlertEvent    `json:"log"`
		}{alerts, log})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, r)
	})
	return mux
}

// WriteText renders the registry as a sorted, aligned text report — the
// -stats output of cmd/pogod and cmd/pogo-bench.
func WriteText(w io.Writer, r *Registry) {
	s := r.Snapshot()
	section := func(title string) { fmt.Fprintf(w, "%s:\n", title) }
	if len(s.Counters) > 0 {
		section("counters")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-64s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-64s %g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(w, "  %-64s count=%d sum=%g mean=%g\n", k, h.Count, h.Sum, mean)
		}
	}
	if t := r.Tracer(); t != nil || r.Spans() != nil {
		section("tracing")
		fmt.Fprintf(w, "  %-64s %d\n", "tracer events dropped", t.Dropped())
		fmt.Fprintf(w, "  %-64s %d\n", "span hops retained", r.Spans().Len())
		fmt.Fprintf(w, "  %-64s %d\n", "span hops dropped", r.Spans().Dropped())
	}
	if slos := LatencyReport(r); len(slos) > 0 {
		section("delivery latency SLOs (s)")
		for _, tl := range slos {
			fmt.Fprintf(w, "  %-44s count=%d p50=%.3f p95=%.3f p99=%.3f\n",
				tl.Channel, tl.Count, tl.P50, tl.P95, tl.P99)
		}
	}
	if snaps := r.Alerts().Snapshot(); len(snaps) > 0 {
		active := 0
		for _, a := range snaps {
			if a.State != AlertInactive {
				active++
			}
		}
		if active > 0 {
			section("alerts")
			for _, a := range snaps {
				if a.State == AlertInactive {
					continue
				}
				fmt.Fprintf(w, "  %-44s %s severity=%s value=%s since=%s\n",
					a.Rule.Name, a.State, a.Rule.Severity,
					formatAlertNum(a.Value), a.Since.UTC().Format("2006-01-02T15:04:05Z07:00"))
			}
		}
	}
	if accts := r.Ledger().Snapshot(); len(accts) > 0 {
		section("accounting (device/script/topic)")
		for _, a := range accts {
			fmt.Fprintf(w, "  %-44s energy=%.3fJ up=%dB down=%dB msgs=%d wake=%dms steps=%d deadline=%d tail=%d/%d\n",
				a.Device+"/"+a.Script+"/"+a.Topic,
				a.EnergyTotal, a.UplinkBytes, a.DownlinkBytes, a.Messages,
				a.WakeMS, a.Steps, a.DeadlineExceeded, a.TailHits, a.TailHits+a.TailMisses)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
