package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlerContentTypes pins the Content-Type of every endpoint: /metrics
// (and /alerts?format=prom) speak the Prometheus 0.0.4 text exposition,
// every JSON endpoint says application/json, and the text dumps are
// text/plain. A scraper that content-negotiates must never see a bare or
// wrong header.
func TestHandlerContentTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	r.Alerts().AddRules(Rule{Name: "a", Kind: RuleThreshold, Metric: "x_total", Op: ">", Value: 0})
	r.Sample(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), "t")
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	cases := []struct {
		path string
		want string
		json bool
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8", false},
		{"/metrics.json", "application/json", true},
		{"/accounting", "application/json", true},
		{"/timeseries", "application/json", true},
		{"/trace", "application/json", true},
		{"/trace.pftrace", "application/json", true},
		{"/alerts", "application/json", true},
		{"/alerts?format=prom", "text/plain; version=0.0.4; charset=utf-8", false},
		{"/stats", "text/plain; charset=utf-8", false},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", tc.path, resp.StatusCode)
			continue
		}
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Errorf("GET %s: Content-Type = %q, want %q", tc.path, got, tc.want)
		}
		if tc.json && !json.Valid(body) {
			t.Errorf("GET %s: body is not valid JSON:\n%s", tc.path, body)
		}
	}
}

// TestAlertsEndpointBody sanity-checks the /alerts JSON and prom payloads.
func TestAlertsEndpointBody(t *testing.T) {
	r := NewRegistry()
	r.Gauge("pending").Set(5)
	r.Alerts().AddRules(Rule{Name: "backlog", Severity: "warn", Kind: RuleThreshold, Metric: "pending", Op: ">", Value: 1})
	r.Sample(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), "t")
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Alerts []AlertSnapshot `json:"alerts"`
		Log    []AlertEvent    `json:"log"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("decode /alerts: %v", err)
	}
	resp.Body.Close()
	if len(payload.Alerts) != 1 || payload.Alerts[0].StateStr != "firing" {
		t.Fatalf("alerts payload = %+v", payload.Alerts)
	}
	if len(payload.Log) != 1 || payload.Log[0].Rule != "backlog" {
		t.Fatalf("log payload = %+v", payload.Log)
	}

	resp, err = srv.Client().Get(srv.URL + "/alerts?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `ALERTS{alertname="backlog",severity="warn",alertstate="firing"} 1`) {
		t.Fatalf("prom payload:\n%s", body)
	}
}
