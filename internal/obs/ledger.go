package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Entity identifies who spent a resource. The three axes mirror the paper's
// evaluation: Device is the phone (or node) that did the work, Script is the
// sandboxed experiment script that asked for it (§3's per-experiment
// deadlines, Table 4's clustering script), Topic is the pub/sub channel the
// traffic rode (Table 3/Figure 4 attribute bytes to channels). Any axis may
// be empty: (device,"","") is whole-device accounting, (device,script,"") is
// per-script, (device,"",topic) is per-channel.
type Entity struct {
	Device string `json:"device"`
	Script string `json:"script,omitempty"`
	Topic  string `json:"topic,omitempty"`
}

// account is the mutable per-entity ledger row. Integer quantities are
// lock-free; the energy-by-state map takes a small mutex (energy charging
// happens on radio state transitions and collect hooks, not per message).
type account struct {
	uplink     atomic.Int64
	downlink   atomic.Int64
	messages   atomic.Int64
	wakeMS     atomic.Int64
	steps      atomic.Int64
	deadlines  atomic.Int64
	tailHits   atomic.Int64
	tailMisses atomic.Int64

	mu     sync.Mutex
	energy map[string]float64 // joules by radio/power state
}

// Meter is a charging handle for one (device, script, topic) entity. All
// methods are safe on a nil receiver, so call sites never branch on whether
// accounting is enabled.
type Meter struct {
	a *account
}

// AddEnergy charges joules spent in the named radio/power state (e.g. "dch",
// "fach", "cpu", "base").
func (m *Meter) AddEnergy(state string, joules float64) {
	if m == nil || joules == 0 {
		return
	}
	m.a.mu.Lock()
	m.a.energy[state] += joules
	m.a.mu.Unlock()
}

// AddUplink charges n bytes sent toward the server.
func (m *Meter) AddUplink(n int64) {
	if m == nil {
		return
	}
	m.a.uplink.Add(n)
}

// AddDownlink charges n bytes received from the server.
func (m *Meter) AddDownlink(n int64) {
	if m == nil {
		return
	}
	m.a.downlink.Add(n)
}

// AddMessages charges n pub/sub messages.
func (m *Meter) AddMessages(n int64) {
	if m == nil {
		return
	}
	m.a.messages.Add(n)
}

// AddWake charges ms milliseconds of CPU-awake time caused by this entity
// (alarm linger, scheduled work).
func (m *Meter) AddWake(ms int64) {
	if m == nil {
		return
	}
	m.a.wakeMS.Add(ms)
}

// AddSteps charges n interpreter steps.
func (m *Meter) AddSteps(n int64) {
	if m == nil {
		return
	}
	m.a.steps.Add(n)
}

// AddDeadlineExceeded counts n script calls killed by the execution budget
// (the paper's per-call deadline, §4.5).
func (m *Meter) AddDeadlineExceeded(n int64) {
	if m == nil {
		return
	}
	m.a.deadlines.Add(n)
}

// AddTailHit counts a flush that piggybacked on an existing 3G tail (§4.7).
func (m *Meter) AddTailHit(n int64) {
	if m == nil {
		return
	}
	m.a.tailHits.Add(n)
}

// AddTailMiss counts a flush that had to power the radio up on its own.
func (m *Meter) AddTailMiss(n int64) {
	if m == nil {
		return
	}
	m.a.tailMisses.Add(n)
}

// Ledger maps entities to accounts. Obtain one from Registry.Ledger; a nil
// *Ledger hands out nil Meters and empty snapshots.
type Ledger struct {
	mu       sync.Mutex
	accounts map[Entity]*account
}

// NewLedger returns an empty ledger. Most callers want Registry.Ledger
// instead, so the accounts ride the same snapshot/exposition path as the
// metrics.
func NewLedger() *Ledger {
	return &Ledger{accounts: make(map[Entity]*account)}
}

// Meter returns (registering on first use) the charging handle for the
// entity. Returns nil on a nil ledger.
func (l *Ledger) Meter(device, script, topic string) *Meter {
	if l == nil {
		return nil
	}
	e := Entity{Device: device, Script: script, Topic: topic}
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[e]
	if !ok {
		a = &account{energy: make(map[string]float64)}
		l.accounts[e] = a
	}
	return &Meter{a: a}
}

// AccountSnapshot is one ledger row at a point in time.
type AccountSnapshot struct {
	Entity
	Energy           map[string]float64 `json:"energy_joules,omitempty"`
	EnergyTotal      float64            `json:"energy_total_joules"`
	UplinkBytes      int64              `json:"uplink_bytes"`
	DownlinkBytes    int64              `json:"downlink_bytes"`
	Messages         int64              `json:"messages"`
	WakeMS           int64              `json:"wake_ms"`
	Steps            int64              `json:"steps"`
	DeadlineExceeded int64              `json:"deadline_exceeded"`
	TailHits         int64              `json:"tail_hits"`
	TailMisses       int64              `json:"tail_misses"`
}

// Snapshot copies every account, sorted by (device, script, topic) so two
// identical runs serialize byte-for-byte. EnergyTotal is summed over states
// in sorted order for the same reason (float addition is order-sensitive).
func (l *Ledger) Snapshot() []AccountSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	entities := make([]Entity, 0, len(l.accounts))
	for e := range l.accounts {
		entities = append(entities, e)
	}
	accts := make(map[Entity]*account, len(l.accounts))
	for e, a := range l.accounts {
		accts[e] = a
	}
	l.mu.Unlock()
	sort.Slice(entities, func(i, j int) bool {
		a, b := entities[i], entities[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Script != b.Script {
			return a.Script < b.Script
		}
		return a.Topic < b.Topic
	})
	out := make([]AccountSnapshot, 0, len(entities))
	for _, e := range entities {
		a := accts[e]
		s := AccountSnapshot{
			Entity:           e,
			UplinkBytes:      a.uplink.Load(),
			DownlinkBytes:    a.downlink.Load(),
			Messages:         a.messages.Load(),
			WakeMS:           a.wakeMS.Load(),
			Steps:            a.steps.Load(),
			DeadlineExceeded: a.deadlines.Load(),
			TailHits:         a.tailHits.Load(),
			TailMisses:       a.tailMisses.Load(),
		}
		a.mu.Lock()
		if len(a.energy) > 0 {
			s.Energy = make(map[string]float64, len(a.energy))
			states := make([]string, 0, len(a.energy))
			for st := range a.energy {
				states = append(states, st)
			}
			sort.Strings(states)
			for _, st := range states {
				s.Energy[st] = a.energy[st]
				s.EnergyTotal += a.energy[st]
			}
		}
		a.mu.Unlock()
		out = append(out, s)
	}
	return out
}
