// Lifecycle tracing is verified from outside the package (obs_test) so the
// test can assemble a real simulated testbed: a collector and a device wired
// through the in-memory switchboard, both instrumented into one registry.
// The traced message must yield the ordered span sequence
// publish → enqueue → send → deliver → fanout, and — because every timestamp
// comes from the simulated clock — two identical runs must produce
// byte-for-byte identical traces.
package obs_test

import (
	"reflect"
	"testing"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/obs"
	"pogo/internal/radio"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// runPingLifecycle builds a fresh collector+device testbed, publishes one
// message on channel "ping" from a device script five simulated seconds in,
// and returns the channel's trace.
func runPingLifecycle(t *testing.T) []obs.Event {
	t.Helper()
	reg := obs.NewRegistry()
	clk := vclock.NewSim()
	sb := transport.NewSwitchboard(clk)

	col, err := core.NewNode(core.Config{
		ID: "collector", Mode: core.CollectorMode, Clock: clk,
		Messenger: sb.Port("collector", nil), Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	sb.Associate("collector", "phone")
	meter := energy.NewMeter(clk)
	droid := android.NewDevice(clk, meter, android.Config{})
	modem := radio.NewModem(clk, meter, radio.KPN)
	conn := radio.NewConnectivity(modem, nil)
	dev, err := core.NewNode(core.Config{
		ID: "phone", Mode: core.DeviceMode, Clock: clk,
		Messenger: sb.Port("phone", conn), Device: droid, Modem: modem,
		Storage: store.NewMemKV(), FlushPolicy: core.FlushImmediate, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	if err := col.DeployLocal("collect.js", `subscribe('ping', function (m, origin) {});`); err != nil {
		t.Fatal(err)
	}
	if err := col.Deploy("ping.js", `setTimeout(function () { publish('ping', { n: 1 }); }, 5000);`); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	return reg.Tracer().Channel("ping")
}

func TestMessageLifecycleTrace(t *testing.T) {
	events := runPingLifecycle(t)

	type step struct {
		node  string
		stage obs.Stage
	}
	want := []step{
		{"phone", obs.StagePublish},     // device broker delivers to the proxy
		{"phone", obs.StageEnqueue},     // proxy buffers for the collector
		{"phone", obs.StageSend},        // immediate flush hands it to the wire
		{"collector", obs.StageDeliver}, // endpoint dedups and accepts
		{"collector", obs.StageFanout},  // collector broker reaches the script
	}
	if len(events) != len(want) {
		t.Fatalf("trace has %d events, want %d:\n%+v", len(events), len(want), events)
	}
	for i, w := range want {
		ev := events[i]
		if ev.Node != w.node || ev.Stage != w.stage {
			t.Errorf("event[%d] = %s@%s, want %s@%s", i, ev.Stage, ev.Node, w.stage, w.node)
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Errorf("event[%d].Seq = %d not after %d", i, ev.Seq, events[i-1].Seq)
		}
	}

	// Timestamps are simulated time: monotone along the lifecycle, after the
	// script's 5 s timeout, inside the 10 s run, with the radio hop putting
	// delivery strictly after the send.
	epoch := vclock.SimEpoch
	for i, ev := range events {
		if ev.At.Before(epoch.Add(5*time.Second)) || ev.At.After(epoch.Add(10*time.Second)) {
			t.Errorf("event[%d] at %v, outside the simulated window", i, ev.At)
		}
		if i > 0 && ev.At.Before(events[i-1].At) {
			t.Errorf("event[%d] at %v before its predecessor at %v", i, ev.At, events[i-1].At)
		}
	}
	if !events[3].At.After(events[2].At) {
		t.Errorf("deliver at %v not after send at %v", events[3].At, events[2].At)
	}

	// The send and deliver stages carry the same outbox message id.
	if events[2].MsgID == 0 || events[2].MsgID != events[3].MsgID {
		t.Errorf("send/deliver msg ids = %d/%d, want equal and nonzero",
			events[2].MsgID, events[3].MsgID)
	}
}

func TestMessageLifecycleTraceDeterministic(t *testing.T) {
	a := runPingLifecycle(t)
	b := runPingLifecycle(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical simulated runs traced differently:\n%+v\nvs\n%+v", a, b)
	}
}
