// Package obs is Pogo's observability substrate: a dependency-free metrics
// registry plus a lightweight message-lifecycle tracer.
//
// The paper's evaluation (§5) rests on quantities — bytes uplinked, messages
// delivered, tail-sync hit rate, per-script resource cost — that the rest of
// the stack previously computed ad hoc. This package gives every layer one
// way to count them and one way to watch a message travel
// publish → fanout → enqueue → flush → send → deliver.
//
// Design rules:
//
//   - Hot paths are lock-free: Counter/Gauge/Histogram updates are single
//     atomic operations. The registry's mutex is only taken at registration
//     (once per metric) and at snapshot time.
//   - Everything is nil-safe. A nil *Registry hands out nil instruments, and
//     every instrument method on a nil receiver is a no-op, so instrumented
//     packages never need an "is observability on?" branch.
//   - No timestamps are generated here. Callers pass instants from their own
//     clock (vclock.Sim in experiments), so traces are deterministic and
//     byte-for-byte reproducible across runs.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric (e.g. node=dev1).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing int64. All methods are safe on a nil
// receiver (no-ops), so uninstrumented code paths cost one pointer test.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (atomic bit-pattern storage).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper-bound inclusive,
// with an implicit +Inf overflow bucket). Observations are two atomic adds
// plus a CAS for the running sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets suit durations in seconds across the simulated stack's scales
// (milliseconds of wire latency up to the hour-scale flush intervals).
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300, 900, 3600}

// CountBuckets suit small cardinalities: fanout sizes, batch sizes.
var CountBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 500, 1000}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. NaN observations are dropped: they cannot be
// bucketed meaningfully and would poison the running sum.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is a consistent-enough copy of a histogram's state.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the owning bucket, the same estimator Prometheus uses for
// histogram_quantile. Returns NaN for an empty histogram or q outside
// [0, 1]. When the quantile lands in the +Inf overflow bucket the largest
// finite bound is returned (there is no upper edge to interpolate toward).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Counts {
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(s.Bounds) { // +Inf bucket
				if len(s.Bounds) == 0 {
					return math.NaN()
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			within := rank - float64(cum)
			return lo + (hi-lo)*(within/float64(n))
		}
		cum += n
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Sub returns the histogram of observations made after prev was taken,
// assuming prev is an earlier snapshot of the same histogram. Used for
// windowed quantiles over the time-series store.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i]
		if i < len(prev.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	return out
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry holds named, labeled instruments plus the tracer. The zero value
// is not usable; construct with NewRegistry. A nil *Registry is a valid
// "observability off" registry: it hands out nil instruments and a nil
// tracer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	meta       map[string]metricMeta // canonical key -> family name + labels
	collectors map[int]func()
	nextID     int
	tracer     *Tracer
	spans      *SpanStore
	ledger     *Ledger
	series     *SeriesStore
	alerts     *AlertEngine
}

// metricMeta remembers the structured identity behind a canonical key so the
// Prometheus exposition can regroup series into families.
type metricMeta struct {
	name   string
	labels []Label // sorted by key
}

// NewRegistry returns an empty registry with an attached tracer, ledger, and
// time-series store.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		meta:       make(map[string]metricMeta),
		collectors: make(map[int]func()),
		tracer:     NewTracer(DefaultTraceCapacity),
		spans:      NewSpanStore(DefaultSpanCapacity),
		ledger:     NewLedger(),
		series:     NewSeriesStore(DefaultSeriesCapacity),
	}
	// Registered lazily on first eviction; before that, /stats surfaces the
	// zero drop counts through its dedicated tracing section.
	r.tracer.OnDrop(func() { r.Counter("trace_dropped_events").Inc() })
	r.spans.OnDrop(func() { r.Counter("trace_dropped_spans").Inc() })
	r.spans.latencyFor = func(channel string) *Histogram {
		return r.Histogram("trace_delivery_latency_seconds", DeliveryLatencyBuckets, L("channel", channel))
	}
	return r
}

// recordMeta stores the family identity for a canonical key. Caller holds
// r.mu.
func (r *Registry) recordMeta(k, name string, labels []Label) {
	if _, ok := r.meta[k]; ok {
		return
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	r.meta[k] = metricMeta{name: name, labels: ls}
}

// key renders the canonical metric identity: name{k1=v1,k2=v2} with label
// keys sorted.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Key renders the canonical instrument identity — name{k1=v1,k2=v2} with
// label keys sorted — exactly as Snapshot keys its maps. External consumers
// (the scenario DSL's expect_metric, log scrapers) use it to look up a series
// without depending on label order.
func Key(name string, labels ...Label) string {
	return key(name, labels)
}

// Counter returns (registering on first use) the counter with this name and
// label set. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
		r.recordMeta(k, name, labels)
	}
	return c
}

// CounterValue reads a counter's current value without registering it; 0
// when absent or on a nil registry.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	k := key(name, labels)
	r.mu.Lock()
	c := r.counters[k]
	r.mu.Unlock()
	return c.Value()
}

// Gauge returns (registering on first use) the gauge with this name and
// label set. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
		r.recordMeta(k, name, labels)
	}
	return g
}

// Histogram returns (registering on first use) the histogram with this name
// and label set. bounds apply only at first registration. Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram(bounds)
		r.hists[k] = h
		r.recordMeta(k, name, labels)
	}
	return h
}

// Tracer returns the registry's lifecycle tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Spans returns the registry's causal span store (nil on a nil registry; a
// nil store is a valid no-op recorder).
func (r *Registry) Spans() *SpanStore {
	if r == nil {
		return nil
	}
	return r.spans
}

// Ledger returns the registry's per-entity resource ledger (nil on a nil
// registry; a nil ledger hands out nil Meters).
func (r *Registry) Ledger() *Ledger {
	if r == nil {
		return nil
	}
	return r.ledger
}

// Meter is shorthand for Ledger().Meter: the charging handle for one
// (device, script, topic) entity. Nil-safe end to end.
func (r *Registry) Meter(device, script, topic string) *Meter {
	return r.Ledger().Meter(device, script, topic)
}

// Series returns the registry's time-series store (nil on a nil registry).
func (r *Registry) Series() *SeriesStore {
	if r == nil {
		return nil
	}
	return r.series
}

// Collect runs the registered collect hooks without building a snapshot.
// Components whose hooks push deltas into the ledger call this before
// cancelling the hook so the final partial interval is booked.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	r.mu.Lock()
	ids := make([]int, 0, len(r.collectors))
	for id := range r.collectors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	hooks := make([]func(), 0, len(ids))
	for _, id := range ids {
		hooks = append(hooks, r.collectors[id])
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// OnCollect registers fn to run before every Snapshot — components use it to
// sync pull-style values (per-script usage gauges) into the registry. The
// returned cancel removes the hook; components must cancel before teardown.
func (r *Registry) OnCollect(fn func()) (cancel func()) {
	if r == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.collectors[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.collectors, id)
		r.mu.Unlock()
	}
}

// Snapshot is a point-in-time copy of every instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot runs the collect hooks, then copies all instruments. Returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	// Hooks run outside r.mu (they may register/set instruments), in
	// registration order so any deltas they book are order-deterministic.
	r.Collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}
