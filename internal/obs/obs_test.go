package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total", L("node", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels (any label order) is the same instrument.
	if r.Counter("msgs_total", L("node", "a")) != c {
		t.Error("re-registration returned a different counter")
	}
	c2 := r.Counter("msgs_total", L("node", "b"))
	if c2 == c {
		t.Error("different labels shared an instrument")
	}
	if got := r.CounterValue("msgs_total", L("node", "a")); got != 5 {
		t.Errorf("CounterValue = %d", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Errorf("absent CounterValue = %d", got)
	}

	g := r.Gauge("temp")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v", got)
	}
}

func TestLabelKeyCanonical(t *testing.T) {
	a := key("m", []Label{L("b", "2"), L("a", "1")})
	b := key("m", []Label{L("a", "1"), L("b", "2")})
	if a != b || a != "m{a=1,b=2}" {
		t.Errorf("keys %q vs %q", a, b)
	}
	if key("m", nil) != "m" {
		t.Error("unlabeled key")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("z", DefBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	tr := r.Tracer()
	tr.Record(time.Time{}, "n", "ch", StagePublish, 0, "")
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer recorded")
	}
	tr.Reset()
	cancel := r.OnCollect(func() {})
	cancel()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 99, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 0.5+1+2+10+99+1000 {
		t.Errorf("sum = %v", h.Sum())
	}
	snap := r.Snapshot().Histograms["lat"]
	// Upper-bound inclusive: ≤1 → bucket0, ≤10 → bucket1, ≤100 → bucket2, rest +Inf.
	want := []int64{2, 2, 1, 1}
	for i, n := range want {
		if snap.Counts[i] != n {
			t.Errorf("bucket[%d] = %d, want %d (all: %v)", i, snap.Counts[i], n, snap.Counts)
		}
	}
}

func TestTracerRingAndOrdering(t *testing.T) {
	tr := NewTracer(4)
	base := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		tr.Record(base.Add(time.Duration(i)*time.Second), "n", "ch", StagePublish, uint64(i), "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d", tr.Dropped())
	}
	for i, ev := range evs {
		if ev.MsgID != uint64(i+2) {
			t.Errorf("event[%d].MsgID = %d, want %d", i, ev.MsgID, i+2)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Error("sequence not increasing")
		}
	}
	if got := tr.Channel("other"); len(got) != 0 {
		t.Errorf("Channel(other) = %v", got)
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("reset did not clear")
	}
	tr.Record(base, "n", "ch", StageDeliver, 9, "")
	if got := tr.Events(); len(got) != 1 || got[0].Seq != 6 {
		t.Errorf("post-reset events = %+v (seq must keep running)", got)
	}
}

func TestOnCollectRunsAtSnapshot(t *testing.T) {
	r := NewRegistry()
	calls := 0
	cancel := r.OnCollect(func() {
		calls++
		r.Gauge("pulled").Set(float64(calls))
	})
	s := r.Snapshot()
	if calls != 1 || s.Gauges["pulled"] != 1 {
		t.Errorf("calls=%d gauges=%v", calls, s.Gauges)
	}
	cancel()
	r.Snapshot()
	if calls != 1 {
		t.Error("hook ran after cancel")
	}
}

// TestConcurrentHotPaths exercises the atomic paths under -race.
func TestConcurrentHotPaths(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := r.Counter("c", L("node", "x"))
			g := r.Gauge("g")
			h := r.Histogram("h", DefBuckets)
			tr := r.Tracer()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 7))
				tr.Record(time.Time{}, "n", "ch", StageSend, uint64(j), "")
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Snapshot()
				r.Tracer().Events()
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c", L("node", "x")); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", DefBuckets).Count(); got != 8000 {
		t.Errorf("histogram count = %d", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport_bytes_sent_total", L("node", "phone")).Add(123)
	r.Tracer().Record(time.Date(2012, 6, 1, 0, 0, 5, 0, time.UTC), "phone", "battery", StagePublish, 0, "fanout=1")
	r.Tracer().Record(time.Date(2012, 6, 1, 0, 0, 6, 0, time.UTC), "phone", "wifi", StagePublish, 0, "fanout=0")
	h := Handler(r)

	get := func(path string) string {
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Body.String()
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE transport_bytes_sent_total counter",
		"# HELP transport_bytes_sent_total",
		`transport_bytes_sent_total{node="phone"} 123`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("bad /metrics.json JSON: %v", err)
	}
	if snap.Counters["transport_bytes_sent_total{node=phone}"] != 123 {
		t.Errorf("metrics = %+v", snap.Counters)
	}

	r.Meter("phone", "gsm.js", "battery").AddUplink(45)
	var acct struct {
		Accounts []AccountSnapshot `json:"accounts"`
	}
	if err := json.Unmarshal([]byte(get("/accounting")), &acct); err != nil {
		t.Fatalf("bad /accounting JSON: %v", err)
	}
	if len(acct.Accounts) != 1 || acct.Accounts[0].UplinkBytes != 45 || acct.Accounts[0].Script != "gsm.js" {
		t.Errorf("accounting = %+v", acct.Accounts)
	}

	r.Sample(time.Date(2012, 6, 1, 0, 1, 0, 0, time.UTC), "test")
	var ts struct {
		Dropped uint64         `json:"dropped"`
		Samples []SeriesSample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(get("/timeseries")), &ts); err != nil {
		t.Fatalf("bad /timeseries JSON: %v", err)
	}
	if len(ts.Samples) != 1 || ts.Samples[0].Counters["transport_bytes_sent_total{node=phone}"] != 123 {
		t.Errorf("timeseries = %+v", ts.Samples)
	}

	var trace struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(get("/trace")), &trace); err != nil {
		t.Fatalf("bad /trace JSON: %v", err)
	}
	if len(trace.Events) != 2 {
		t.Errorf("trace events = %d", len(trace.Events))
	}
	if err := json.Unmarshal([]byte(get("/trace?channel=battery")), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 1 || trace.Events[0].Channel != "battery" {
		t.Errorf("filtered trace = %+v", trace.Events)
	}

	stats := get("/stats")
	if !strings.Contains(stats, "transport_bytes_sent_total{node=phone}") || !strings.Contains(stats, "123") {
		t.Errorf("stats dump:\n%s", stats)
	}
}
