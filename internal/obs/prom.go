package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in Prometheus text exposition format 0.0.4:
// one family per metric name with # HELP and # TYPE lines, label values
// escaped, histograms expanded into _bucket/_sum/_count series, and the
// per-entity ledger appended as pogo_entity_* families. Output is fully
// sorted, so two identical registries render byte-identically.
func WriteProm(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	s := r.Snapshot() // runs collect hooks first
	r.mu.Lock()
	meta := make(map[string]metricMeta, len(r.meta))
	for k, m := range r.meta {
		meta[k] = m
	}
	r.mu.Unlock()

	type series struct {
		key    string // canonical key, for ordering
		labels string // rendered {...} or ""
	}
	families := make(map[string][]series) // sanitized family name -> series
	kinds := make(map[string]string)      // family name -> counter|gauge|histogram
	add := func(k, kind string) series {
		m, ok := meta[k]
		if !ok {
			// Defensive: every key registered through the Registry has
			// meta; treat a stray one as an unlabeled family.
			m = metricMeta{name: k}
		}
		name := sanitizeName(m.name)
		sr := series{key: k, labels: renderLabels(m.labels)}
		families[name] = append(families[name], sr)
		kinds[name] = kind
		return sr
	}
	counterVals := make(map[string]int64)
	for k := range s.Counters {
		add(k, "counter")
		counterVals[k] = s.Counters[k]
	}
	gaugeVals := make(map[string]float64)
	for k := range s.Gauges {
		add(k, "gauge")
		gaugeVals[k] = s.Gauges[k]
	}
	histVals := make(map[string]HistogramSnapshot)
	for k := range s.Histograms {
		add(k, "histogram")
		histVals[k] = s.Histograms[k]
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		srs := families[name]
		sort.Slice(srs, func(i, j int) bool { return srs[i].key < srs[j].key })
		kind := kinds[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(name))
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		for _, sr := range srs {
			switch kind {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", name, sr.labels, counterVals[sr.key])
			case "gauge":
				fmt.Fprintf(w, "%s%s %s\n", name, sr.labels, formatFloat(gaugeVals[sr.key]))
			case "histogram":
				writePromHistogram(w, name, sr.labels, histVals[sr.key])
			}
		}
	}
	writePromLedger(w, r.Ledger())
}

func writePromHistogram(w io.Writer, name, labels string, h HistogramSnapshot) {
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", formatFloat(b)), cum)
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1]
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
}

// writePromLedger renders the per-entity ledger. Ledger.Snapshot is already
// sorted by (device, script, topic); within an entity, energy states are
// emitted in sorted order.
func writePromLedger(w io.Writer, l *Ledger) {
	accts := l.Snapshot()
	if len(accts) == 0 {
		return
	}
	entLabels := func(a AccountSnapshot, extra ...string) string {
		ls := []Label{{Key: "device", Value: a.Device}, {Key: "script", Value: a.Script}, {Key: "topic", Value: a.Topic}}
		for i := 0; i+1 < len(extra); i += 2 {
			ls = append(ls, Label{Key: extra[i], Value: extra[i+1]})
		}
		return renderLabels(ls)
	}
	intFamily := func(name, help string, value func(AccountSnapshot) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, a := range accts {
			fmt.Fprintf(w, "%s%s %d\n", name, entLabels(a), value(a))
		}
	}
	fmt.Fprintf(w, "# HELP pogo_entity_energy_joules_total Joules charged to an entity, by radio/power state.\n# TYPE pogo_entity_energy_joules_total counter\n")
	for _, a := range accts {
		states := make([]string, 0, len(a.Energy))
		for st := range a.Energy {
			states = append(states, st)
		}
		sort.Strings(states)
		for _, st := range states {
			fmt.Fprintf(w, "pogo_entity_energy_joules_total%s %s\n", entLabels(a, "state", st), formatFloat(a.Energy[st]))
		}
	}
	intFamily("pogo_entity_uplink_bytes_total", "Payload bytes an entity sent toward the server.", func(a AccountSnapshot) int64 { return a.UplinkBytes })
	intFamily("pogo_entity_downlink_bytes_total", "Payload bytes delivered to an entity.", func(a AccountSnapshot) int64 { return a.DownlinkBytes })
	intFamily("pogo_entity_messages_total", "Pub/sub messages charged to an entity.", func(a AccountSnapshot) int64 { return a.Messages })
	intFamily("pogo_entity_wake_milliseconds_total", "CPU-awake milliseconds an entity caused.", func(a AccountSnapshot) int64 { return a.WakeMS })
	intFamily("pogo_entity_steps_total", "Interpreter steps an entity consumed.", func(a AccountSnapshot) int64 { return a.Steps })
	intFamily("pogo_entity_deadline_exceeded_total", "Script calls killed by the execution budget.", func(a AccountSnapshot) int64 { return a.DeadlineExceeded })
	intFamily("pogo_entity_tailsync_hits_total", "Flushes that piggybacked on a 3G tail.", func(a AccountSnapshot) int64 { return a.TailHits })
	intFamily("pogo_entity_tailsync_misses_total", "Flushes that powered the radio up on their own.", func(a AccountSnapshot) int64 { return a.TailMisses })
}

// renderLabels renders a sorted label set as {k1="v1",k2="v2"}, or "" when
// empty, with Prometheus escaping applied to values.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeName(l.Key))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// mergeLabel appends one more label (e.g. le) to an already-rendered label
// block.
func mergeLabel(labels, k, v string) string {
	pair := sanitizeName(k) + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// escapeLabelValue applies the exposition-format escapes: backslash, double
// quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeName maps an arbitrary string onto the Prometheus metric/label
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			sb.WriteRune(c)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// helpFor returns the # HELP text for a family. Families not in the table
// get a generic line; the format only requires the line to exist.
func helpFor(name string) string {
	if h, ok := promHelp[name]; ok {
		return h
	}
	return "Pogo metric " + name + "."
}

var promHelp = map[string]string{
	"transport_bytes_sent_total":     "Wire bytes sent by the transport, including envelope framing.",
	"transport_bytes_received_total": "Wire bytes received by the transport.",
	"transport_messages_sent_total":  "Transport envelope transmissions, including retries.",
	"tailsync_piggyback_hits_total":  "Flushes that rode an existing 3G tail (paper sec. 4.7).",
	"energy_component_joules":        "Joules consumed per energy-model component since instrumentation.",
	"energy_joules":                  "Total joules across all energy-model components.",
	"radio_state_seconds":            "Seconds the 3G modem spent in each RRC state.",
	"radio_state_joules":             "Joules the 3G modem spent in each RRC state.",
	"radio_state_transitions_total":  "RRC state entries, by destination state.",
	"script_steps":                   "Cumulative interpreter steps per script.",
	"script_deadline_exceeded":       "Script calls killed by the execution budget (paper sec. 4.5).",
}
