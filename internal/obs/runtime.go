package obs

import (
	"runtime"
	"time"
)

// StartRuntimeSampler exports Go runtime health as gauges, refreshed via an
// OnCollect hook so every snapshot (and thus every /metrics scrape) sees
// current values:
//
//	runtime_goroutines        — runtime.NumGoroutine()
//	runtime_heap_alloc_bytes  — MemStats.HeapAlloc
//	runtime_heap_sys_bytes    — MemStats.HeapSys
//	runtime_gc_runs_total     — MemStats.NumGC (gauge: it is read, not counted)
//	runtime_gc_pause_total_seconds — cumulative stop-the-world pause time
//	runtime_gc_last_pause_seconds  — most recent pause
//
// These are wall-clock facts about the hosting process, so the sampler is for
// live binaries only: deterministic drivers must never call it, and the
// default barrier_stall-style rules that could read such gauges are marked
// RealTime so even a misconfigured wiring cannot leak nondeterminism into a
// seeded alert log. The returned stop removes the hook.
// HeapLiveBytes forces a collection and returns MemStats.HeapAlloc: the
// bytes still reachable after GC. Two calls bracketing a construction phase
// give that phase's live-memory footprint — the measurement behind the
// fleet's bytes-per-phone figure — independent of transient garbage.
func HeapLiveBytes() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func StartRuntimeSampler(r *Registry) (stop func()) {
	if r == nil {
		return func() {}
	}
	goroutines := r.Gauge("runtime_goroutines")
	heapAlloc := r.Gauge("runtime_heap_alloc_bytes")
	heapSys := r.Gauge("runtime_heap_sys_bytes")
	gcRuns := r.Gauge("runtime_gc_runs_total")
	gcPauseTotal := r.Gauge("runtime_gc_pause_total_seconds")
	gcLastPause := r.Gauge("runtime_gc_last_pause_seconds")
	return r.OnCollect(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcRuns.Set(float64(ms.NumGC))
		gcPauseTotal.Set(time.Duration(ms.PauseTotalNs).Seconds())
		if ms.NumGC > 0 {
			gcLastPause.Set(time.Duration(ms.PauseNs[(ms.NumGC+255)%256]).Seconds())
		}
	})
}
