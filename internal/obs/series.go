package obs

import (
	"math"
	"sync"
	"time"

	"pogo/internal/vclock"
)

// DefaultSeriesCapacity bounds the ring of retained samples. At the default
// 30 s experiment cadence this holds 8.5 simulated hours; live servers at
// 5 s hold ~85 minutes.
const DefaultSeriesCapacity = 1024

// SeriesSample is one registry snapshot at an instant. Timestamps come from
// the caller's clock (vclock.Sim in experiments), never from the wall, so a
// seeded run produces byte-identical sample streams.
type SeriesSample struct {
	At         time.Time                    `json:"at"`
	Tag        string                       `json:"tag,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// SeriesStore is a fixed-capacity ring of SeriesSamples with windowed
// rate and quantile queries. A nil *SeriesStore ignores appends and returns
// empty results.
type SeriesStore struct {
	mu      sync.Mutex
	ring    []SeriesSample
	start   int // index of oldest sample
	n       int
	dropped uint64
}

// NewSeriesStore returns an empty store retaining up to capacity samples
// (DefaultSeriesCapacity if capacity <= 0).
func NewSeriesStore(capacity int) *SeriesStore {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &SeriesStore{ring: make([]SeriesSample, capacity)}
}

// Append records one sample, evicting the oldest when full.
func (s *SeriesStore) Append(sample SeriesSample) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < len(s.ring) {
		s.ring[(s.start+s.n)%len(s.ring)] = sample
		s.n++
		return
	}
	s.ring[s.start] = sample
	s.start = (s.start + 1) % len(s.ring)
	s.dropped++
}

// Samples returns the retained samples, oldest first.
func (s *SeriesStore) Samples() []SeriesSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSample, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.start+i)%len(s.ring)])
	}
	return out
}

// Len returns the number of retained samples.
func (s *SeriesStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many samples have been evicted since creation.
func (s *SeriesStore) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Window returns samples with from <= At <= to, oldest first.
func (s *SeriesStore) Window(from, to time.Time) []SeriesSample {
	all := s.Samples()
	out := make([]SeriesSample, 0, len(all))
	for _, sm := range all {
		if !sm.At.Before(from) && !sm.At.After(to) {
			out = append(out, sm)
		}
	}
	return out
}

// Rate returns the per-second increase of the counter with canonical key k
// over the trailing window, measured from the newest sample backwards.
// Returns 0 with fewer than two samples in the window.
func (s *SeriesStore) Rate(k string, window time.Duration) float64 {
	all := s.Samples()
	if len(all) == 0 {
		return 0
	}
	newest := all[len(all)-1]
	var oldest *SeriesSample
	for i := range all {
		if !all[i].At.Before(newest.At.Add(-window)) {
			oldest = &all[i]
			break
		}
	}
	if oldest == nil || !newest.At.After(oldest.At) {
		return 0
	}
	dv := newest.Counters[k] - oldest.Counters[k]
	dt := newest.At.Sub(oldest.At).Seconds()
	return float64(dv) / dt
}

// QuantileOver returns the q-quantile of observations of histogram k made
// inside the trailing window (the newest cumulative snapshot minus the
// oldest in-window one). NaN when the window holds no observations.
func (s *SeriesStore) QuantileOver(k string, window time.Duration, q float64) float64 {
	all := s.Samples()
	if len(all) == 0 {
		return math.NaN()
	}
	newest := all[len(all)-1]
	var oldest *SeriesSample
	for i := range all {
		if !all[i].At.Before(newest.At.Add(-window)) {
			oldest = &all[i]
			break
		}
	}
	h, ok := newest.Histograms[k]
	if !ok || oldest == nil {
		return math.NaN()
	}
	if prev, ok := oldest.Histograms[k]; ok && !newest.At.Equal(oldest.At) {
		h = h.Sub(prev)
	}
	return h.Quantile(q)
}

// StartSampling snapshots the registry every interval on clk, appending to
// the registry's series store with the given tag. Returns a stop function.
// On a simulated clock the callback runs in deterministic event order, so
// two same-seed runs record identical streams.
func StartSampling(clk vclock.Clock, r *Registry, interval time.Duration, tag string) (stop func()) {
	if r == nil || clk == nil || interval <= 0 {
		return func() {}
	}
	var (
		mu      sync.Mutex
		stopped bool
		timer   vclock.Timer
	)
	var tick func()
	tick = func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		r.Sample(clk.Now(), tag)
		mu.Lock()
		if !stopped {
			timer = clk.AfterFunc(interval, tick)
		}
		mu.Unlock()
	}
	mu.Lock()
	timer = clk.AfterFunc(interval, tick)
	mu.Unlock()
	return func() {
		mu.Lock()
		stopped = true
		t := timer
		mu.Unlock()
		if t != nil {
			t.Stop()
		}
	}
}

// Sample takes one snapshot (running collect hooks) at the given instant and
// appends it to the series store, then evaluates the alert rules against it.
// On a simulated clock the alert state machines therefore advance at
// deterministic instants, making the alert log a pure function of the seed.
// No-op on a nil registry.
func (r *Registry) Sample(at time.Time, tag string) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	r.series.Append(SeriesSample{
		At:         at,
		Tag:        tag,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	})
	r.mu.Lock()
	alerts := r.alerts
	r.mu.Unlock()
	alerts.evaluate(at, snap)
}
