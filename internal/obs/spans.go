package obs

import (
	"sort"
	"sync"
	"time"
)

// Causal distributed tracing. Where the Tracer (trace.go) records isolated
// point events, the SpanStore records *hops* keyed by an 8-byte trace ID that
// travels with the message across the wire (transport envelope field, XMPP
// stanza attribute), so the full causal chain
//
//	publish → enqueue → send/retry → route → offline → replay → deliver → fanout
//
// can be reassembled into a span tree even when the hops were recorded by
// different processes, shards, or goroutines.
//
// Determinism rules, matching the rest of the stack:
//
//   - Trace IDs derive from (seed, entity, outbox seq) — never from wall
//     clock or math/rand — so the same seeded run assigns the same IDs.
//   - Every read-side view (Hops, Traces, Tree, the exporters) is a pure
//     function of the hop *set*: hops are content-sorted and deduplicated,
//     never exposed in recording order, so concurrent shard workers feeding
//     one store still yield byte-identical exports.
//   - Timestamps are supplied by callers from their own (simulated) clock.

// TraceID is the 8-byte causal identity of one published message. Zero means
// "untraced": decoders map an absent wire field to 0 and recorders drop
// zero-trace hops, which is what makes old-peer interop a no-op.
type TraceID uint64

const hexdigits = "0123456789abcdef"

// String renders the fixed-width lowercase hex form (%016x).
func (t TraceID) String() string {
	var b [16]byte
	v := uint64(t)
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// MarshalJSON encodes the ID as its hex string, the form used in flight
// dumps and trace exports (JSON numbers above 2^53 are hostile to other
// tooling).
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the hex-string form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return errBadTraceID
		}
	}
	*t = TraceID(v)
	return nil
}

type badTraceIDError struct{}

func (badTraceIDError) Error() string { return "obs: malformed trace id" }

var errBadTraceID = badTraceIDError{}

// NewTraceID derives the deterministic trace ID of the seq-th traced message
// originated by entity under the given simulation seed: FNV-64a over the
// seed, the entity name, and the sequence number. The same (seed, entity,
// seq) triple always yields the same ID — across runs, shard counts, and
// process reboots (transport re-derives root IDs from persisted outbox IDs).
// The all-zero digest is remapped to 1 so 0 stays reserved for "untraced".
func NewTraceID(seed int64, entity string, seq uint64) TraceID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < len(entity); i++ {
		mix(entity[i])
	}
	mix(0) // separator: ("ab",1) must differ from ("a",b1)
	for i := 0; i < 8; i++ {
		mix(byte(seq >> (8 * i)))
	}
	if h == 0 {
		h = 1
	}
	return TraceID(h)
}

// Hop is one causally linked step of a traced message. Unlike Event it
// carries no store-assigned sequence number: its identity is purely its
// content, so hops recorded concurrently (fleet shards) or replayed out of
// order reassemble identically.
type Hop struct {
	Trace   TraceID   `json:"trace"`
	At      time.Time `json:"at"`
	Stage   Stage     `json:"stage"`
	Node    string    `json:"node"`
	Channel string    `json:"channel,omitempty"`
	// MsgID is the sender-side outbox id for transport hops (0 elsewhere).
	MsgID  uint64 `json:"msg,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// stageRank orders lifecycle stages for parent-linkage: a hop's parent is
// the nearest earlier hop of strictly lower rank, so publish anchors
// enqueue, enqueue anchors each (re)send, the last send anchors the route,
// and so on down to deliver and the receiving broker's fanout.
func stageRank(s Stage) int {
	switch s {
	case StagePublish:
		return 0
	case StageEnqueue:
		return 1
	case StageFlush:
		return 2
	case StageSend:
		return 3
	case StageRoute:
		return 4
	case StageOffline:
		return 5
	case StageReplay:
		return 6
	case StageDeliver:
		return 7
	case StageFanout:
		return 8
	case StageExpire:
		return 9
	default:
		return 10
	}
}

// DefaultSpanCapacity bounds the span store's ring buffer.
const DefaultSpanCapacity = 16384

// DeliveryLatencyBuckets suit end-to-end delivery latency in seconds:
// millisecond wire hops through retry-dominated tails of minutes.
var DeliveryLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 15, 30, 60, 120, 300, 900,
}

// maxTrackedRoots bounds the first-hop index used for delivery-latency
// observation; beyond it new traces still record hops but skip the latency
// histogram.
const maxTrackedRoots = 1 << 20

// SpanStore records hops into a bounded ring and reassembles span trees.
// The zero value is not usable; construct with NewSpanStore (NewRegistry
// attaches one). All methods are nil-safe, and recording is safe from
// concurrent goroutines.
type SpanStore struct {
	mu      sync.Mutex
	cap     int
	buf     []Hop // ring
	start   int   // index of oldest hop
	dropped uint64
	onDrop  func()
	// roots holds the earliest-known hop instant per trace, the zero point
	// for delivery-latency observation at StageDeliver.
	roots map[TraceID]time.Time
	// latencyFor supplies the per-channel delivery-latency histogram; set by
	// NewRegistry, nil on a bare store.
	latencyFor func(channel string) *Histogram
}

// NewSpanStore returns a store retaining the most recent capacity hops
// (DefaultSpanCapacity when capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{cap: capacity, roots: make(map[TraceID]time.Time)}
}

// OnDrop registers fn to run once per evicted hop; NewRegistry wires it to
// the trace_dropped_spans counter so truncated traces are detectable from
// /stats.
func (s *SpanStore) OnDrop(fn func()) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onDrop = fn
	s.mu.Unlock()
}

// Record appends one hop. Zero-trace hops are dropped (untraced message from
// an old peer). Nil-safe no-op. A StageDeliver hop additionally observes
// end-to-end latency against the trace's earliest known hop.
func (s *SpanStore) Record(at time.Time, trace TraceID, stage Stage, node, channel string, msgID uint64, detail string) {
	if s == nil || trace == 0 {
		return
	}
	hop := Hop{Trace: trace, At: at, Stage: stage, Node: node, Channel: channel, MsgID: msgID, Detail: detail}
	var (
		observe *Histogram
		latency float64
	)
	s.mu.Lock()
	if root, ok := s.roots[trace]; !ok {
		if len(s.roots) < maxTrackedRoots {
			s.roots[trace] = at
		}
	} else if at.Before(root) {
		s.roots[trace] = at
	} else if stage == StageDeliver && s.latencyFor != nil {
		latency = at.Sub(root).Seconds()
		observe = s.latencyFor(channel)
	}
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, hop)
	} else {
		s.buf[s.start] = hop
		s.start = (s.start + 1) % s.cap
		s.dropped++
		if s.onDrop != nil {
			s.onDrop()
		}
	}
	s.mu.Unlock()
	observe.Observe(latency)
}

// Dropped reports how many hops the ring has evicted.
func (s *SpanStore) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len reports how many hops are currently retained.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Reset discards all retained hops and root timestamps.
func (s *SpanStore) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = s.buf[:0]
	s.start = 0
	s.roots = make(map[TraceID]time.Time)
}

// hopLess is the canonical content ordering of hops: time, then lifecycle
// rank, then the remaining fields as tiebreak. It depends only on hop
// content, never on recording order.
func hopLess(a, b Hop) bool {
	if !a.At.Equal(b.At) {
		return a.At.Before(b.At)
	}
	if ra, rb := stageRank(a.Stage), stageRank(b.Stage); ra != rb {
		return ra < rb
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Channel != b.Channel {
		return a.Channel < b.Channel
	}
	if a.MsgID != b.MsgID {
		return a.MsgID < b.MsgID
	}
	return a.Detail < b.Detail
}

func hopEqual(a, b Hop) bool {
	return a.Trace == b.Trace && a.At.Equal(b.At) && a.Stage == b.Stage &&
		a.Node == b.Node && a.Channel == b.Channel && a.MsgID == b.MsgID && a.Detail == b.Detail
}

// sortDedup canonicalizes a hop slice in place: content-sorted with exact
// duplicates collapsed (a hop recorded twice — e.g. a duplicated delivery
// report — is one causal fact, not two).
func sortDedup(hops []Hop) []Hop {
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Trace != hops[j].Trace {
			return hops[i].Trace < hops[j].Trace
		}
		return hopLess(hops[i], hops[j])
	})
	out := hops[:0]
	for _, h := range hops {
		if len(out) > 0 && hopEqual(out[len(out)-1], h) {
			continue
		}
		out = append(out, h)
	}
	return out
}

// Hops returns every retained hop in canonical content order (sorted by
// trace, then time/stage; exact duplicates removed).
func (s *SpanStore) Hops() []Hop {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	hops := make([]Hop, 0, len(s.buf))
	for i := 0; i < len(s.buf); i++ {
		hops = append(hops, s.buf[(s.start+i)%len(s.buf)])
	}
	s.mu.Unlock()
	return sortDedup(hops)
}

// HopsFor returns the retained hops of one trace in canonical order.
func (s *SpanStore) HopsFor(trace TraceID) []Hop {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	var hops []Hop
	for i := 0; i < len(s.buf); i++ {
		if h := s.buf[(s.start+i)%len(s.buf)]; h.Trace == trace {
			hops = append(hops, h)
		}
	}
	s.mu.Unlock()
	return sortDedup(hops)
}

// Traces lists the distinct trace IDs with retained hops, ascending.
func (s *SpanStore) Traces() []TraceID {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seen := make(map[TraceID]struct{})
	for i := 0; i < len(s.buf); i++ {
		seen[s.buf[i].Trace] = struct{}{}
	}
	s.mu.Unlock()
	out := make([]TraceID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SpanNode is one hop with its causal children: the span tree of a trace.
type SpanNode struct {
	Hop      Hop         `json:"hop"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree reassembles the span tree of one trace from whatever hops were
// retained, tolerating out-of-order and duplicated recording: hops are
// canonicalized first, then each hop is parented onto the nearest earlier
// hop of strictly lower lifecycle rank (falling back to the root), which
// makes retransmitted sends siblings under their enqueue and puts a replayed
// offline delivery under the replay hop. Returns nil when no hops remain.
func (s *SpanStore) Tree(trace TraceID) *SpanNode {
	return AssembleTree(s.HopsFor(trace))
}

// AssembleTree builds a span tree from canonically ordered hops of a single
// trace (see Tree). Exported so flight-dump tooling can rebuild trees from
// serialized hops without a live store.
func AssembleTree(hops []Hop) *SpanNode {
	if len(hops) == 0 {
		return nil
	}
	nodes := make([]*SpanNode, len(hops))
	for i := range hops {
		nodes[i] = &SpanNode{Hop: hops[i]}
	}
	root := nodes[0]
	for i := 1; i < len(nodes); i++ {
		parent := root
		for j := i - 1; j >= 0; j-- {
			if stageRank(nodes[j].Hop.Stage) < stageRank(nodes[i].Hop.Stage) {
				parent = nodes[j]
				break
			}
		}
		if parent == nodes[i] {
			parent = root
		}
		parent.Children = append(parent.Children, nodes[i])
	}
	return root
}

// Walk visits the tree depth-first, parents before children.
func (n *SpanNode) Walk(fn func(depth int, node *SpanNode)) {
	var rec func(depth int, node *SpanNode)
	rec = func(depth int, node *SpanNode) {
		fn(depth, node)
		for _, c := range node.Children {
			rec(depth+1, c)
		}
	}
	if n != nil {
		rec(0, n)
	}
}

// Stages returns the set of stages present in the tree, in canonical hop
// order — the quick "did this message make it to deliver?" probe used by
// flight-dump verification.
func (n *SpanNode) Stages() []Stage {
	var out []Stage
	n.Walk(func(_ int, node *SpanNode) { out = append(out, node.Hop.Stage) })
	return out
}
