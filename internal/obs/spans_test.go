package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func hopAt(sec int, trace TraceID, stage Stage, node string) Hop {
	return Hop{Trace: trace, At: time.Unix(int64(sec), 0), Stage: stage, Node: node, Channel: "ch"}
}

func TestNewTraceIDDeterministic(t *testing.T) {
	a := NewTraceID(7, "phone01", 3)
	if a != NewTraceID(7, "phone01", 3) {
		t.Fatal("same inputs produced different trace IDs")
	}
	distinct := map[TraceID]string{a: "base"}
	for name, id := range map[string]TraceID{
		"other seed":   NewTraceID(8, "phone01", 3),
		"other entity": NewTraceID(7, "phone02", 3),
		"other seq":    NewTraceID(7, "phone01", 4),
		// The NUL separator keeps (entity, seq) unambiguous: "phone0" + 13
		// must not collide with "phone01" + 3 by concatenation.
		"entity/seq shift": NewTraceID(7, "phone0", 13),
	} {
		if id == 0 {
			t.Fatalf("%s: derived the reserved zero ID", name)
		}
		if prev, dup := distinct[id]; dup {
			t.Fatalf("%s collided with %s: %s", name, prev, id)
		}
		distinct[id] = name
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	in := NewTraceID(1, "n", 1)
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"` + in.String() + `"`; string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var out TraceID
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %s != %s", out, in)
	}
	if err := json.Unmarshal([]byte(`"zz"`), &out); err == nil {
		t.Fatal("malformed hex unmarshalled without error")
	}
}

// TestAssembleTreeOutOfOrder feeds a full hop set in scrambled recording
// order: the tree must still root at enqueue with each later stage nested
// under its causal parent, because assembly orders by content, never arrival.
func TestAssembleTreeOutOfOrder(t *testing.T) {
	tr := NewTraceID(1, "phone", 1)
	hops := []Hop{
		hopAt(40, tr, StageDeliver, "collector"),
		hopAt(20, tr, StageSend, "phone"),
		hopAt(10, tr, StageEnqueue, "phone"),
		hopAt(30, tr, StageSend, "phone"), // retransmission
	}
	st := NewSpanStore(16)
	for _, h := range hops {
		st.Record(h.At, h.Trace, h.Stage, h.Node, h.Channel, h.MsgID, h.Detail)
	}
	tree := st.Tree(tr)
	if tree == nil || tree.Hop.Stage != StageEnqueue {
		t.Fatalf("tree root = %+v, want enqueue", tree)
	}
	got := tree.Stages()
	want := []Stage{StageEnqueue, StageSend, StageSend, StageDeliver}
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
	// Both sends are siblings under enqueue; deliver hangs off a send.
	if len(tree.Children) != 2 {
		t.Fatalf("enqueue has %d children, want the 2 sends", len(tree.Children))
	}
}

// TestSpanStoreDuplicateHops: the same hop recorded twice (duplicated
// delivery of the hop event itself) collapses to one node in every view.
func TestSpanStoreDuplicateHops(t *testing.T) {
	tr := NewTraceID(1, "phone", 2)
	st := NewSpanStore(16)
	for i := 0; i < 3; i++ {
		st.Record(time.Unix(10, 0), tr, StageEnqueue, "phone", "ch", 1, "")
	}
	st.Record(time.Unix(20, 0), tr, StageDeliver, "collector", "ch", 1, "")
	if hops := st.HopsFor(tr); len(hops) != 2 {
		t.Fatalf("HopsFor kept %d hops, want 2 (exact duplicates collapse)", len(hops))
	}
	if tree := st.Tree(tr); len(tree.Children) != 1 {
		t.Fatalf("tree = %+v, want enqueue -> deliver", tree)
	}
}

func TestSpanStoreEvictionCountsDrops(t *testing.T) {
	st := NewSpanStore(2)
	fired := 0
	st.OnDrop(func() { fired++ })
	tr := NewTraceID(1, "n", 1)
	for i := 0; i < 5; i++ {
		st.Record(time.Unix(int64(i), 0), tr, StageSend, "n", "ch", 1, "")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", st.Len())
	}
	if st.Dropped() != 3 || fired != 3 {
		t.Fatalf("Dropped = %d, hook fired %d, want 3/3", st.Dropped(), fired)
	}
	// Zero-trace hops are untraced noise, never recorded or counted.
	st.Record(time.Unix(9, 0), 0, StageSend, "n", "ch", 1, "")
	if st.Len() != 2 || st.Dropped() != 3 {
		t.Fatal("zero-trace record must be a no-op")
	}
}

// TestRegistryDropCountersLazy: a pristine registry exposes no drop counters
// (keeping snapshot cardinality unchanged for pre-tracing consumers), but the
// first eviction registers and bumps trace_dropped_events / _spans, and the
// /stats text always reports the tracing section.
func TestRegistryDropCountersLazy(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Snapshot().Counters["trace_dropped_spans"]; ok {
		t.Fatal("drop counter registered before any drop")
	}
	tr := NewTraceID(1, "n", 1)
	for i := 0; i <= DefaultSpanCapacity; i++ {
		reg.Spans().Record(time.Unix(int64(i), 0), tr, StageSend, "n", "ch", 1, "")
	}
	if got := reg.Snapshot().Counters["trace_dropped_spans"]; got != 1 {
		t.Fatalf("trace_dropped_spans = %v, want 1", got)
	}
	var buf bytes.Buffer
	WriteText(&buf, reg)
	if !strings.Contains(buf.String(), "span hops dropped") {
		t.Fatalf("stats text missing tracing section:\n%s", buf.String())
	}
}

func TestDeliveryLatencyHistogram(t *testing.T) {
	reg := NewRegistry()
	tr := NewTraceID(1, "phone", 1)
	reg.Spans().Record(time.Unix(10, 0), tr, StageEnqueue, "phone", "upload", 1, "")
	reg.Spans().Record(time.Unix(12, 0), tr, StageDeliver, "collector", "upload", 1, "")
	rep := LatencyReport(reg)
	if len(rep) != 1 || rep[0].Channel != "upload" || rep[0].Count != 1 {
		t.Fatalf("LatencyReport = %+v, want one upload delivery", rep)
	}
	// 2 s latency lands in the 2.5 s bucket: every quantile interpolates
	// inside (1, 2.5].
	if rep[0].P50 <= 1 || rep[0].P50 > 2.5 {
		t.Fatalf("p50 = %v, want within the 2.5s bucket", rep[0].P50)
	}
}

// TestTraceJSONDeterministicOrder: the export depends only on the hop set,
// not recording order.
func TestTraceJSONDeterministicOrder(t *testing.T) {
	tr1 := NewTraceID(1, "a", 1)
	tr2 := NewTraceID(1, "b", 1)
	hops := []Hop{
		hopAt(10, tr1, StageEnqueue, "a"),
		hopAt(20, tr1, StageDeliver, "b"),
		hopAt(15, tr2, StageEnqueue, "b"),
		hopAt(25, tr2, StageDeliver, "a"),
	}
	render := func(order []int) string {
		reg := NewRegistry()
		for _, i := range order {
			h := hops[i]
			reg.Spans().Record(h.At, h.Trace, h.Stage, h.Node, h.Channel, h.MsgID, h.Detail)
		}
		var buf bytes.Buffer
		if err := WriteTraceJSON(&buf, reg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render([]int{0, 1, 2, 3})
	b := render([]int{3, 1, 2, 0})
	if a != b {
		t.Fatalf("trace JSON depends on recording order:\n%s\nvs\n%s", a, b)
	}
	var tf map[string]any
	if err := json.Unmarshal([]byte(a), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// Cross-node enqueue→deliver pairs must emit flow ("s"/"f") events.
	if !strings.Contains(a, `"ph":"s"`) || !strings.Contains(a, `"ph":"f"`) {
		t.Fatalf("export missing flow events:\n%s", a)
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	reg := NewRegistry()
	done := NewTraceID(1, "phone", 1)
	stuck := NewTraceID(1, "phone", 2)
	reg.Spans().Record(time.Unix(10, 0), done, StageEnqueue, "phone", "upload", 1, "")
	reg.Spans().Record(time.Unix(12, 0), done, StageDeliver, "collector", "upload", 1, "")
	reg.Spans().Record(time.Unix(11, 0), stuck, StageEnqueue, "phone", "upload", 2, "")
	reg.Spans().Record(time.Unix(13, 0), stuck, StageSend, "phone", "upload", 2, "attempt=1")

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := DumpFlightFile(path, reg, "test audit failure", time.Unix(13, 0)); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "test audit failure" || len(d.Traces) != 2 {
		t.Fatalf("dump = %+v, want 2 traces", d)
	}
	inflight := d.Incomplete()
	if len(inflight) != 1 || inflight[0] != stuck {
		t.Fatalf("Incomplete = %v, want [%s]", inflight, stuck)
	}
	tree := d.Tree(stuck)
	if tree == nil || tree.Hop.Stage != StageEnqueue || len(tree.Children) != 1 ||
		tree.Children[0].Hop.Stage != StageSend {
		t.Fatalf("reassembled tree = %+v, want enqueue -> send", tree)
	}
	if d.Tree(done).Hop.Stage != StageEnqueue {
		t.Fatal("delivered trace lost its tree in the round trip")
	}
}
