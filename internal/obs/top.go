package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTop formats two ledger snapshots, taken dt apart, as the live table
// pogo-top displays: one row per entity, heaviest energy spender first. The
// energy share column is each row's fraction of the energy booked across all
// rows with an energy figure (only device rows and the modeled per-script
// rows carry one); message rates come from the delta between the snapshots.
// It returns the rendered string so the caller owns all terminal I/O.
func RenderTop(prev, cur []AccountSnapshot, dt time.Duration) string {
	prevBy := make(map[Entity]AccountSnapshot, len(prev))
	for _, a := range prev {
		prevBy[a.Entity] = a
	}
	var totalJ float64
	for _, a := range cur {
		totalJ += a.EnergyTotal
	}
	rows := append([]AccountSnapshot(nil), cur...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].EnergyTotal != rows[j].EnergyTotal {
			return rows[i].EnergyTotal > rows[j].EnergyTotal
		}
		a, b := rows[i].Entity, rows[j].Entity
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Script != b.Script {
			return a.Script < b.Script
		}
		return a.Topic < b.Topic
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-18s %-18s %10s %5s %10s %10s %8s %7s %8s %5s\n",
		"DEVICE", "SCRIPT", "TOPIC", "ENERGY J", "EN%", "UP B", "DOWN B",
		"MSGS", "MSG/S", "WAKE ms", "TAIL%")
	for _, a := range rows {
		p := prevBy[a.Entity]
		rate := "-"
		if dt > 0 {
			rate = fmt.Sprintf("%.2f", float64(a.Messages-p.Messages)/dt.Seconds())
		}
		enPct := "-"
		if totalJ > 0 && a.EnergyTotal > 0 {
			enPct = fmt.Sprintf("%.1f", 100*a.EnergyTotal/totalJ)
		}
		tail := "-"
		if n := a.TailHits + a.TailMisses; n > 0 {
			tail = fmt.Sprintf("%.0f", 100*float64(a.TailHits)/float64(n))
		}
		fmt.Fprintf(&sb, "%-16s %-18s %-18s %10.3f %5s %10d %10d %8d %7s %8d %5s\n",
			clip(a.Device, 16), clip(a.Script, 18), clip(a.Topic, 18),
			a.EnergyTotal, enPct, a.UplinkBytes, a.DownlinkBytes,
			a.Messages, rate, a.WakeMS, tail)
	}
	return sb.String()
}

// RenderAlerts formats the non-inactive alerts as the banner pogo-top shows
// above the entity table: one line per pending/firing rule, firing first.
// Empty string when everything is healthy.
func RenderAlerts(alerts []AlertSnapshot) string {
	var firing, pending []AlertSnapshot
	for _, a := range alerts {
		switch a.State {
		case AlertFiring:
			firing = append(firing, a)
		case AlertPending:
			pending = append(pending, a)
		}
	}
	if len(firing)+len(pending) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, a := range append(firing, pending...) {
		fmt.Fprintf(&sb, "ALERT %-8s %-28s severity=%-8s value=%s\n",
			strings.ToUpper(a.State.String()), clip(a.Rule.Name, 28),
			a.Rule.Severity, formatAlertNum(a.Value))
	}
	return sb.String()
}

// clip shortens s to width runes with a trailing ellipsis.
func clip(s string, width int) string {
	if len(s) <= width {
		return s
	}
	if width <= 1 {
		return s[:width]
	}
	return s[:width-1] + "…"
}
