package obs

import (
	"sync"
	"time"
)

// Stage names one step of a message's lifecycle through the stack.
type Stage string

// Lifecycle stages, in the order a message that crosses the network
// traverses them. A locally consumed message stops at StagePublish; a
// remote-bound one continues through the transport to the peer, where the
// final broker fanout is recorded as StageFanout.
const (
	// StagePublish: a broker delivered a local publication to its active
	// subscriptions (internal/pubsub).
	StagePublish Stage = "publish"
	// StageEnqueue: the transport buffered a message in the durable outbox
	// (internal/transport).
	StageEnqueue Stage = "enqueue"
	// StageFlush: a flush pass found eligible buffered messages — timer,
	// reconnect, or tail-sync triggered.
	StageFlush Stage = "flush"
	// StageSend: one buffered message was handed to the messenger inside a
	// batch envelope.
	StageSend Stage = "send"
	// StageDeliver: the receiving endpoint accepted a fresh (deduplicated)
	// message and handed it to the application.
	StageDeliver Stage = "deliver"
	// StageFanout: the receiving broker re-published a remote-originated
	// message to its local subscriptions.
	StageFanout Stage = "fanout"
	// StageExpire: the max-age policy purged a buffered message unsent.
	StageExpire Stage = "expire"
	// StageRoute: the XMPP switchboard routed a stanza toward an online
	// recipient (internal/xmpp).
	StageRoute Stage = "route"
	// StageOffline: the switchboard parked a stanza in the recipient's
	// offline queue.
	StageOffline Stage = "offline"
	// StageReplay: the switchboard replayed a queued stanza to a recipient
	// that came back online.
	StageReplay Stage = "replay"
)

// Event is one recorded lifecycle step. Seq is a tracer-wide monotonic
// sequence number: under the single-threaded simulated clock it totally
// orders events, making traces reproducible bit-for-bit.
type Event struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Node    string    `json:"node"`
	Channel string    `json:"channel,omitempty"`
	Stage   Stage     `json:"stage"`
	// MsgID is the sender's outbox id for transport stages (0 where no
	// per-message id exists, e.g. broker stages).
	MsgID  uint64 `json:"msg,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// DefaultTraceCapacity bounds the tracer's ring buffer.
const DefaultTraceCapacity = 8192

// Tracer records lifecycle events into a bounded ring buffer. The zero value
// is not usable; construct with NewTracer. All methods are nil-safe.
//
// Timestamps are supplied by callers from their own clock, so a simulation
// produces identical traces on every run.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	dropped uint64
	onDrop  func()
	buf     []Event // ring
	start   int     // index of oldest event
}

// OnDrop registers fn to run once per evicted event. NewRegistry uses it to
// surface evictions as the trace_dropped_events counter so silently
// truncated traces become visible in /stats. Nil-safe.
func (t *Tracer) OnDrop(fn func()) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onDrop = fn
	t.mu.Unlock()
}

// NewTracer returns a tracer retaining the most recent capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Record appends one event. Nil-safe no-op.
func (t *Tracer) Record(at time.Time, node, channel string, stage Stage, msgID uint64, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{
		Seq: t.seq, At: at, Node: node, Channel: channel,
		Stage: stage, MsgID: msgID, Detail: detail,
	}
	t.seq++
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % t.cap
	t.dropped++
	if t.onDrop != nil {
		t.onDrop()
	}
}

// Events returns the retained events in sequence order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	for i := 0; i < len(t.buf); i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Channel returns the retained events for one channel, in sequence order.
func (t *Tracer) Channel(channel string) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Channel == channel {
			out = append(out, ev)
		}
	}
	return out
}

// Dropped reports how many events the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained events (the sequence counter keeps running).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.start = 0
}
