package pubsub

import (
	"testing"

	"pogo/internal/msg"
)

func BenchmarkPublishOneSubscriber(b *testing.B) {
	br := New()
	br.Subscribe("ch", nil, func(Event) {})
	payload := msg.Map{"voltage": 4.1, "level": 0.9, "timestamp": 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish("ch", payload)
	}
}

func BenchmarkPublishFanOut16(b *testing.B) {
	br := New()
	for i := 0; i < 16; i++ {
		br.Subscribe("ch", nil, func(Event) {})
	}
	payload := msg.Map{"n": 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish("ch", payload)
	}
}

func BenchmarkSubscribeRelease(b *testing.B) {
	br := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := br.Subscribe("ch", nil, func(Event) {})
		sub.Close()
	}
}

// BenchmarkPublishFanOut1k exercises the broker at the paper's deployment
// scale: a collector-side channel with ~1000 device proxies subscribed. The
// per-subscriber cost is dominated by the defensive payload clone each
// subscriber receives.
func BenchmarkPublishFanOut1k(b *testing.B) {
	br := New()
	for i := 0; i < 1000; i++ {
		br.Subscribe("ch", nil, func(Event) {})
	}
	payload := msg.Map{"voltage": 4.1, "level": 0.9, "timestamp": 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Publish("ch", payload)
	}
}
