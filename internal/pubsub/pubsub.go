// Package pubsub implements Pogo's topic-based publish/subscribe framework
// (§4.3 of the paper).
//
// Components — sensors, scripts, and (via proxy subscriptions created by the
// core) remote nodes — publish messages on named channels and subscribe to
// channels with optional parameter objects. Two features beyond a plain
// broker carry the paper's design:
//
//   - Subscriptions can be released and renewed (the RogueFinder pattern in
//     Listing 2), and carry a parameter object (e.g. {interval: 60000}).
//   - Publishers can observe the set of active subscriptions on their
//     channels, so a sensor can power itself down when nobody is listening
//     and pick the cheapest schedule that satisfies all listeners (§3.5).
//
// Delivery is synchronous on the publisher's goroutine, which keeps the
// discrete-event simulation deterministic; the scheduler layer (internal/
// sched) introduces asynchrony where the paper requires it.
package pubsub

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pogo/internal/msg"
	"pogo/internal/obs"
)

// Event is a delivered publication.
type Event struct {
	// Channel the message was published on.
	Channel string
	// Message payload. The broker freezes a published message once and hands
	// every subscriber the SAME frozen tree (msg.IsFrozen reports true), so
	// fanout costs one copy regardless of subscriber count. Treat it as
	// read-only; a handler that wants to mutate calls MutableMessage and
	// pays for its own private clone.
	Message msg.Map
	// Params of the subscription the event is being delivered to. Frozen and
	// shared with the subscription: read-only.
	Params msg.Map
	// Origin identifies the remote node the message came from, or "" for a
	// local publication. The core fills this in for messages that crossed
	// the network boundary so collector scripts can distinguish devices.
	Origin string
	// Trace is the message's causal trace ID: assigned at local publish
	// (when the broker has a trace identity), inherited from the wire for
	// remote-originated fanout, 0 when untraced. Proxy subscriptions carry
	// it into the transport so the trace survives the hop.
	Trace obs.TraceID

	// cow counts lazy copy-on-write clones for the owning broker's metrics
	// (msg_cow_clones); nil-safe.
	cow *obs.Counter
}

// MutableMessage returns a privately owned, mutable version of the event's
// message, cloning lazily on first call (the "write" half of copy-on-write).
// Subsequent calls — and direct reads of e.Message afterwards — see the same
// private copy.
func (e *Event) MutableMessage() msg.Map {
	if e.Message == nil || !msg.IsFrozen(e.Message) {
		return e.Message
	}
	e.Message = msg.Thaw(e.Message)
	e.cow.Inc()
	return e.Message
}

// Handler consumes events for one subscription.
type Handler func(Event)

// SubscriptionInfo is a read-only view of an active subscription, as exposed
// to publishers (sensors) deciding whether and how fast to sample.
type SubscriptionInfo struct {
	Channel string
	Params  msg.Map
}

// Broker is a goroutine-safe topic-based message broker. The zero value is
// not usable; construct with New.
type Broker struct {
	mu       sync.Mutex
	subs     map[string][]*Subscription // channel → subscriptions (active and inactive)
	snap     map[string][]*Subscription // publish-path snapshot cache, see snapshot()
	watchers map[int]*watcher
	nextID   int
	obs      *brokerObs // nil until Instrument

	// Trace identity (SetTraceIdentity). Assignment is deliberately
	// independent of obs: trace IDs ride the wire, so they must be
	// identical whether or not a registry is attached.
	traceEntity string // node + "#pub": the derivation entity, precomputed
	traceSeed   int64
	traceSeq    uint64 // next local-publication sequence number
}

// brokerObs bundles the broker's instruments; all fields are nil-safe.
type brokerObs struct {
	node       string
	entity     string
	now        func() time.Time
	publishes  *obs.Counter
	deliveries *obs.Counter
	freezeHits *obs.Counter
	cowClones  *obs.Counter
	fanout     *obs.Histogram
	active     *obs.Gauge
	tracer     *obs.Tracer
	spans      *obs.SpanStore
	ledger     *obs.Ledger
}

// Instrument attaches the broker to a metrics registry. node labels the
// metrics; entity is the ledger device axis that per-topic message counts
// are charged to (usually the node ID); now supplies trace timestamps (the
// owning node's clock, so simulated runs trace deterministically). Safe to
// call at most once, before traffic flows.
func (b *Broker) Instrument(reg *obs.Registry, now func() time.Time, node, entity string) {
	if reg == nil || now == nil {
		return
	}
	o := &brokerObs{
		node:       node,
		entity:     entity,
		now:        now,
		publishes:  reg.Counter("pubsub_publishes_total", obs.L("node", node)),
		deliveries: reg.Counter("pubsub_deliveries_total", obs.L("node", node)),
		freezeHits: reg.Counter("msg_freeze_hits", obs.L("node", node)),
		cowClones:  reg.Counter("msg_cow_clones", obs.L("node", node)),
		fanout:     reg.Histogram("pubsub_fanout_subscribers", obs.CountBuckets, obs.L("node", node)),
		active:     reg.Gauge("pubsub_subscriptions_active", obs.L("node", node)),
		tracer:     reg.Tracer(),
		spans:      reg.Spans(),
		ledger:     reg.Ledger(),
	}
	b.mu.Lock()
	b.obs = o
	b.mu.Unlock()
}

// New returns an empty broker.
func New() *Broker {
	return &Broker{
		subs:     make(map[string][]*Subscription),
		snap:     make(map[string][]*Subscription),
		watchers: make(map[int]*watcher),
	}
}

// snapshot returns the cached publish-order view of a channel's
// subscriptions, building it on the first publish after a membership change.
// The returned slice is immutable (rebuilt, never patched), so PublishFrom
// can iterate it outside the lock — activity is re-checked per delivery via
// the atomic active flag, which keeps Release/Renew out of the invalidation
// story entirely. Caller holds b.mu.
func (b *Broker) snapshot(channel string) []*Subscription {
	snap, ok := b.snap[channel]
	if !ok {
		snap = append([]*Subscription(nil), b.subs[channel]...)
		b.snap[channel] = snap
	}
	return snap
}

type watcher struct {
	channel string // "" watches every channel
	fn      func(channel string)
}

// Subscribe registers a handler on a channel. params may be nil. The returned
// subscription is active until released. A nil handler subscription is valid
// and acts as a pure demand signal (used by proxy bookkeeping in tests).
func (b *Broker) Subscribe(channel string, params msg.Map, h Handler) *Subscription {
	sub := &Subscription{
		broker:  b,
		channel: channel,
		params:  msg.Freeze(params),
		handler: h,
	}
	sub.active.Store(true)
	b.mu.Lock()
	b.subs[channel] = append(b.subs[channel], sub)
	delete(b.snap, channel)
	b.mu.Unlock()
	b.notifyChange(channel)
	return sub
}

// Publish delivers a message to every active subscription on the channel.
// The message is frozen once (msg.Freeze) and the same immutable tree is
// handed to every subscriber — fanout is zero-copy; handlers clone lazily
// through Event.MutableMessage. Publish returns the number of subscriptions
// the message was delivered to.
func (b *Broker) Publish(channel string, m msg.Map) int {
	return b.PublishFrom(channel, m, "")
}

// SetTraceIdentity enables deterministic trace-ID assignment for local
// publications: the n-th publish derives obs.NewTraceID(seed, node+"#pub",
// n). The "#pub" suffix keeps the broker's ID space disjoint from the
// transport's outbox-ID space on the same node. Call once, before traffic
// flows; the core wires it for every node regardless of observability so
// wire bytes never depend on whether a registry is attached.
func (b *Broker) SetTraceIdentity(node string, seed int64) {
	b.mu.Lock()
	b.traceEntity = node + "#pub"
	b.traceSeed = seed
	b.mu.Unlock()
}

// PublishFrom is Publish with an origin annotation; the core uses it for
// messages arriving from remote nodes.
func (b *Broker) PublishFrom(channel string, m msg.Map, origin string) int {
	return b.PublishTraced(channel, m, origin, 0)
}

// PublishTraced is PublishFrom with explicit trace context: the core passes
// the wire-propagated trace ID of a remote-originated message so the
// receiving fanout joins the sender's span tree. trace 0 on a local
// publication assigns a fresh deterministic ID (when SetTraceIdentity was
// called); trace 0 with no identity leaves the event untraced.
func (b *Broker) PublishTraced(channel string, m msg.Map, origin string, trace obs.TraceID) int {
	b.mu.Lock()
	o := b.obs
	subs := b.snapshot(channel)
	if trace == 0 && origin == "" && b.traceEntity != "" {
		trace = obs.NewTraceID(b.traceSeed, b.traceEntity, b.traceSeq)
		b.traceSeq++
	}
	b.mu.Unlock()

	wasFrozen := msg.IsFrozen(m)
	frozen := msg.Freeze(m)
	// Freeze declines to mark a map that hides an ordinary entry under the
	// marker key; those (wire-crafted) messages fall back to the historical
	// clone-per-subscriber path rather than lose content or share a mutable
	// map.
	shared := msg.IsFrozen(frozen)

	delivered := 0
	for _, s := range subs {
		if s.handler != nil && s.active.Load() {
			delivered++
		}
	}
	if o != nil {
		if wasFrozen {
			o.freezeHits.Inc()
		}
		o.publishes.Inc()
		o.deliveries.Add(int64(delivered))
		o.fanout.Observe(float64(delivered))
		// Local publications open a message's lifecycle; remote-originated
		// ones close it with the receiving broker's fanout. Recorded before
		// the handlers run: delivery is synchronous, so anything a handler
		// does (the proxy's enqueue, a chained publish) traces after its
		// cause.
		stage := obs.StagePublish
		detail := "fanout=" + strconv.Itoa(delivered)
		if origin != "" {
			stage = obs.StageFanout
			detail += " origin=" + origin
		}
		o.tracer.Record(o.now(), o.node, channel, stage, 0, detail)
		o.spans.Record(o.now(), trace, stage, o.node, channel, 0, detail)
		if o.ledger != nil {
			o.ledger.Meter(o.entity, "", channel).AddMessages(1)
		}
	}
	var cow *obs.Counter
	if o != nil {
		cow = o.cowClones
	}
	for _, s := range subs {
		if s.handler == nil || !s.active.Load() {
			continue
		}
		delivery := frozen
		if !shared && delivery != nil {
			delivery, _ = msg.Clone(frozen).(msg.Map)
		}
		s.handler(Event{
			Channel: channel,
			Message: delivery,
			Params:  s.params,
			Origin:  origin,
			Trace:   trace,
			cow:     cow,
		})
	}
	return delivered
}

// Subscriptions returns the active subscriptions on a channel. The param
// maps are frozen (shared, read-only) snapshots.
func (b *Broker) Subscriptions(channel string) []SubscriptionInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []SubscriptionInfo
	for _, s := range b.subs[channel] {
		if s.active.Load() {
			out = append(out, SubscriptionInfo{Channel: channel, Params: s.Params()})
		}
	}
	return out
}

// HasSubscribers reports whether any active subscription exists on a channel.
// Sensors use this to gate sampling (§4.3: "If not, the sensor can be turned
// off to save energy").
func (b *Broker) HasSubscribers(channel string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs[channel] {
		if s.active.Load() {
			return true
		}
	}
	return false
}

// Channels returns every channel that currently has at least one active
// subscription.
func (b *Broker) Channels() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for ch, subs := range b.subs {
		for _, s := range subs {
			if s.active.Load() {
				out = append(out, ch)
				break
			}
		}
	}
	return out
}

// OnSubscriptionChange registers fn to be called (synchronously) whenever the
// set of active subscriptions on channel changes — subscribe, release, renew,
// or param change via re-subscribe. An empty channel watches all channels.
// The returned cancel function removes the watcher.
func (b *Broker) OnSubscriptionChange(channel string, fn func(channel string)) (cancel func()) {
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.watchers[id] = &watcher{channel: channel, fn: fn}
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.watchers, id)
		b.mu.Unlock()
	}
}

func (b *Broker) notifyChange(channel string) {
	b.mu.Lock()
	if b.obs != nil {
		active := 0
		for _, subs := range b.subs {
			for _, s := range subs {
				if s.active.Load() {
					active++
				}
			}
		}
		b.obs.active.Set(float64(active))
	}
	fns := make([]func(string), 0, len(b.watchers))
	for _, w := range b.watchers {
		if w.channel == "" || w.channel == channel {
			fns = append(fns, w.fn)
		}
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(channel)
	}
}

// removeSub drops a subscription from the broker entirely (on Close).
func (b *Broker) removeSub(sub *Subscription) {
	b.mu.Lock()
	list := b.subs[sub.channel]
	for i, s := range list {
		if s == sub {
			b.subs[sub.channel] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(b.subs[sub.channel]) == 0 {
		delete(b.subs, sub.channel)
	}
	delete(b.snap, sub.channel)
	b.mu.Unlock()
}

// Subscription is a handle on a channel subscription. Release deactivates it
// and Renew reactivates it; both are idempotent (§4.4: "these methods have no
// effect when the subscription is inactive or active respectively").
type Subscription struct {
	broker  *Broker
	channel string
	params  msg.Map
	handler Handler

	// active is atomic: the broker reads it on every publish (under its own
	// mutex, not the subscription's), while Release/Renew write it under the
	// subscription mutex.
	active atomic.Bool

	mu     sync.Mutex
	closed bool
}

// Channel returns the subscribed channel name.
func (s *Subscription) Channel() string { return s.channel }

// Params returns the subscription's parameter object (nil when the
// subscription has none). The map is frozen at Subscribe time and shared:
// read-only for all callers, no per-call copy. A caller that needs a mutable
// version thaws it (msg.Thaw) and pays for its own clone.
func (s *Subscription) Params() msg.Map {
	return s.params
}

// Active reports whether the subscription currently receives events.
func (s *Subscription) Active() bool {
	return s.active.Load()
}

// Release deactivates the subscription. No-op if already inactive or closed.
func (s *Subscription) Release() {
	s.mu.Lock()
	if s.closed || !s.active.Load() {
		s.mu.Unlock()
		return
	}
	s.active.Store(false)
	s.mu.Unlock()
	s.broker.notifyChange(s.channel)
}

// Renew reactivates a released subscription. No-op if already active or
// closed.
func (s *Subscription) Renew() {
	s.mu.Lock()
	if s.closed || s.active.Load() {
		s.mu.Unlock()
		return
	}
	s.active.Store(true)
	s.mu.Unlock()
	s.broker.notifyChange(s.channel)
}

// Close permanently removes the subscription from the broker. Used when a
// script or context is torn down.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	wasActive := s.active.Load()
	s.closed = true
	s.active.Store(false)
	s.mu.Unlock()
	s.broker.removeSub(s)
	if wasActive {
		s.broker.notifyChange(s.channel)
	}
}
