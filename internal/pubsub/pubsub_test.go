package pubsub

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"pogo/internal/msg"
)

func TestPublishDeliversToSubscribers(t *testing.T) {
	b := New()
	var got []msg.Map
	b.Subscribe("battery", nil, func(ev Event) { got = append(got, ev.Message) })
	n := b.Publish("battery", msg.Map{"voltage": 3.9})
	if n != 1 {
		t.Errorf("Publish delivered to %d, want 1", n)
	}
	if len(got) != 1 || got[0]["voltage"].(float64) != 3.9 {
		t.Errorf("got %v", got)
	}
}

func TestPublishOnlyMatchingChannel(t *testing.T) {
	b := New()
	hits := 0
	b.Subscribe("a", nil, func(Event) { hits++ })
	b.Publish("b", msg.Map{})
	if hits != 0 {
		t.Error("subscriber on channel a received channel b message")
	}
}

// TestSubscriberCopyOnWrite pins the zero-copy delivery contract: events
// carry a shared frozen message, and MutableMessage gives each handler a
// private clone whose mutations leak neither to other subscribers nor back
// to the publisher.
func TestSubscriberCopyOnWrite(t *testing.T) {
	b := New()
	var second msg.Map
	first := true
	b.Subscribe("c", nil, func(ev Event) {
		if !msg.IsFrozen(ev.Message) {
			t.Error("delivered message is not frozen")
		}
		if first {
			first = false
			m := ev.MutableMessage()
			m["mutated"] = true
			m["nested"].(msg.Map)["x"] = 99.0
			if !msg.Equal(m, ev.Message) {
				t.Error("MutableMessage and Message diverged within the event")
			}
		} else {
			second = ev.Message
		}
	})
	b.Subscribe("c", nil, func(ev Event) {
		if _, ok := ev.Message["mutated"]; ok {
			t.Error("first subscriber's mutation leaked to a peer in the same fanout")
		}
	})
	orig := msg.Map{"nested": msg.Map{"x": 1.0}}
	b.Publish("c", orig)
	b.Publish("c", orig)
	if _, ok := second["mutated"]; ok {
		t.Error("mutation by first delivery leaked into second")
	}
	if second["nested"].(msg.Map)["x"].(float64) != 1.0 {
		t.Error("nested mutation leaked into published original")
	}
	if _, ok := orig["mutated"]; ok {
		t.Error("subscriber mutated publisher's message")
	}
	if msg.IsFrozen(orig) {
		t.Error("Publish froze the publisher's own map")
	}
}

// TestFrozenSharingNoRaces: many subscribers reading the same frozen tree
// while half of them mutate through MutableMessage — run under -race (make
// check does) this proves sharing is race-free and COW isolates writers.
func TestFrozenSharingNoRaces(t *testing.T) {
	b := New()
	const subscribers = 16
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		mutate := i%2 == 0
		b.Subscribe("shared", nil, func(ev Event) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if mutate {
					m := ev.MutableMessage()
					m["private"] = true
					m["nested"].(msg.Map)["x"] = 2.0
				} else {
					// Pure readers walk the shared frozen tree.
					if ev.Message["nested"].(msg.Map)["x"].(float64) != 1.0 {
						t.Error("reader saw a writer's private mutation")
					}
				}
			}()
		})
	}
	for i := 0; i < 50; i++ {
		b.Publish("shared", msg.Map{"nested": msg.Map{"x": 1.0}, "n": float64(i)})
	}
	wg.Wait()
}

func TestReleaseRenewIdempotent(t *testing.T) {
	b := New()
	hits := 0
	sub := b.Subscribe("ch", nil, func(Event) { hits++ })

	b.Publish("ch", msg.Map{})
	sub.Release()
	sub.Release() // idempotent
	b.Publish("ch", msg.Map{})
	if hits != 1 {
		t.Fatalf("hits = %d after release, want 1", hits)
	}
	sub.Renew()
	sub.Renew() // idempotent
	b.Publish("ch", msg.Map{})
	if hits != 2 {
		t.Errorf("hits = %d after renew, want 2", hits)
	}
	if !sub.Active() {
		t.Error("Active = false after renew")
	}
}

func TestCloseRemovesSubscription(t *testing.T) {
	b := New()
	hits := 0
	sub := b.Subscribe("ch", nil, func(Event) { hits++ })
	sub.Close()
	b.Publish("ch", msg.Map{})
	if hits != 0 {
		t.Error("closed subscription still received events")
	}
	sub.Renew() // no-op after close
	if sub.Active() {
		t.Error("Renew reactivated a closed subscription")
	}
	if b.HasSubscribers("ch") {
		t.Error("HasSubscribers true after close")
	}
}

func TestSubscriptionParams(t *testing.T) {
	b := New()
	params := msg.Map{"interval": 60000.0, "provider": "GPS"}
	sub := b.Subscribe("location", params, func(Event) {})

	// Mutating the caller's map must not affect the stored params: Subscribe
	// froze its own snapshot.
	params["interval"] = 1.0
	got := sub.Params()
	if got["interval"].(float64) != 60000.0 {
		t.Error("params not snapshotted on subscribe")
	}
	// Params is frozen and shared — no per-call copy. Writers thaw.
	if !msg.IsFrozen(got) {
		t.Error("Params not frozen")
	}
	mine := msg.Thaw(got)
	mine["provider"] = "NETWORK"
	if sub.Params()["provider"].(string) != "GPS" {
		t.Error("thawed copy aliased internal state")
	}

	infos := b.Subscriptions("location")
	if len(infos) != 1 || infos[0].Params["interval"].(float64) != 60000.0 {
		t.Errorf("Subscriptions = %+v", infos)
	}
}

func TestNilParams(t *testing.T) {
	b := New()
	sub := b.Subscribe("x", nil, func(Event) {})
	if sub.Params() != nil {
		t.Errorf("Params = %v, want nil", sub.Params())
	}
}

func TestEventFields(t *testing.T) {
	b := New()
	var ev Event
	b.Subscribe("wifi-scan", msg.Map{"interval": 5.0}, func(e Event) { ev = e })
	b.PublishFrom("wifi-scan", msg.Map{"aps": []msg.Value{}}, "device-3")
	if ev.Channel != "wifi-scan" {
		t.Errorf("Channel = %q", ev.Channel)
	}
	if ev.Origin != "device-3" {
		t.Errorf("Origin = %q", ev.Origin)
	}
	if ev.Params["interval"].(float64) != 5.0 {
		t.Errorf("Params = %v", ev.Params)
	}
}

func TestHasSubscribersTracksActivation(t *testing.T) {
	b := New()
	if b.HasSubscribers("ch") {
		t.Error("HasSubscribers on empty broker")
	}
	sub := b.Subscribe("ch", nil, func(Event) {})
	if !b.HasSubscribers("ch") {
		t.Error("HasSubscribers false after subscribe")
	}
	sub.Release()
	if b.HasSubscribers("ch") {
		t.Error("HasSubscribers true after release")
	}
	sub.Renew()
	if !b.HasSubscribers("ch") {
		t.Error("HasSubscribers false after renew")
	}
}

func TestOnSubscriptionChange(t *testing.T) {
	b := New()
	var events []string
	cancel := b.OnSubscriptionChange("wifi-scan", func(ch string) {
		events = append(events, ch)
	})

	sub := b.Subscribe("wifi-scan", nil, func(Event) {})
	b.Subscribe("other", nil, func(Event) {}) // must not notify
	sub.Release()
	sub.Renew()
	if len(events) != 3 {
		t.Fatalf("events = %v, want 3 notifications", events)
	}
	cancel()
	sub.Release()
	if len(events) != 3 {
		t.Error("watcher fired after cancel")
	}
}

func TestOnSubscriptionChangeWildcard(t *testing.T) {
	b := New()
	var channels []string
	b.OnSubscriptionChange("", func(ch string) { channels = append(channels, ch) })
	b.Subscribe("a", nil, func(Event) {})
	b.Subscribe("b", nil, func(Event) {})
	if !reflect.DeepEqual(channels, []string{"a", "b"}) {
		t.Errorf("channels = %v", channels)
	}
}

func TestChannels(t *testing.T) {
	b := New()
	s1 := b.Subscribe("a", nil, func(Event) {})
	b.Subscribe("b", nil, func(Event) {})
	chans := b.Channels()
	if len(chans) != 2 {
		t.Errorf("Channels = %v", chans)
	}
	s1.Release()
	chans = b.Channels()
	if len(chans) != 1 || chans[0] != "b" {
		t.Errorf("Channels after release = %v", chans)
	}
}

func TestNilHandlerSubscription(t *testing.T) {
	b := New()
	b.Subscribe("demand", msg.Map{"interval": 1.0}, nil)
	if !b.HasSubscribers("demand") {
		t.Error("nil-handler subscription not counted as demand")
	}
	if n := b.Publish("demand", msg.Map{}); n != 0 {
		t.Errorf("delivered to %d nil handlers", n)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New()
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe("ch", nil, func(Event) {
				mu.Lock()
				total++
				mu.Unlock()
			})
			for j := 0; j < 50; j++ {
				b.Publish("ch", msg.Map{"j": float64(j)})
			}
			sub.Close()
		}()
	}
	wg.Wait()
	if total == 0 {
		t.Error("no deliveries under concurrency")
	}
}

// Property: after an arbitrary sequence of release/renew toggles, the number
// of deliveries equals the number of publishes issued while active.
func TestPropertyToggleDeliveryCount(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			ops := make([]byte, r.Intn(40))
			for i := range ops {
				ops[i] = byte(r.Intn(3)) // 0=publish 1=release 2=renew
			}
			args[0] = reflect.ValueOf(ops)
		},
	}
	prop := func(ops []byte) bool {
		b := New()
		hits := 0
		sub := b.Subscribe("ch", nil, func(Event) { hits++ })
		want := 0
		active := true
		for _, op := range ops {
			switch op {
			case 0:
				b.Publish("ch", msg.Map{})
				if active {
					want++
				}
			case 1:
				sub.Release()
				active = false
			case 2:
				sub.Renew()
				active = true
			}
		}
		return hits == want
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
