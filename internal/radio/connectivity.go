package radio

import "sync"

// Interface identifies a network interface class.
type Interface int

// Interface values. InterfaceNone means the device is offline (airplane
// mode, roaming with data disabled, or out of coverage).
const (
	InterfaceNone Interface = iota + 1
	InterfaceCellular
	InterfaceWifi
)

// String returns the interface name.
func (i Interface) String() string {
	switch i {
	case InterfaceNone:
		return "none"
	case InterfaceCellular:
		return "cellular"
	case InterfaceWifi:
		return "wifi"
	default:
		return "?"
	}
}

// DataLink is the minimal transfer capability the transport layer needs;
// both *Modem and *Wifi implement it.
type DataLink interface {
	Transfer(tx, rx int64, onDone func())
	Stats() TrafficStats
}

var (
	_ DataLink = (*Modem)(nil)
	_ DataLink = (*Wifi)(nil)
)

// Connectivity is the simulated ConnectivityManager: it tracks which
// interface is active as the user moves in and out of coverage, and notifies
// listeners on handover. Phones have no transparent TCP handover between
// interfaces (§4.6), so Pogo's transport reconnects on every change.
type Connectivity struct {
	mu        sync.Mutex
	active    Interface
	cellular  DataLink
	wifi      DataLink
	listeners []func(old, new Interface)
}

// NewConnectivity returns a manager with the given links; either may be nil.
// The initial active interface is cellular when present, else Wi-Fi when
// present, else none.
func NewConnectivity(cellular, wifi DataLink) *Connectivity {
	c := &Connectivity{cellular: cellular, wifi: wifi, active: InterfaceNone}
	if cellular != nil {
		c.active = InterfaceCellular
	} else if wifi != nil {
		c.active = InterfaceWifi
	}
	return c
}

// Active returns the currently active interface.
func (c *Connectivity) Active() Interface {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

// Link returns the DataLink for the active interface, or nil when offline.
func (c *Connectivity) Link() DataLink {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.linkLocked()
}

func (c *Connectivity) linkLocked() DataLink {
	switch c.active {
	case InterfaceCellular:
		return c.cellular
	case InterfaceWifi:
		return c.wifi
	default:
		return nil
	}
}

// SetActive switches the active interface, notifying listeners when it
// actually changes.
func (c *Connectivity) SetActive(iface Interface) {
	c.mu.Lock()
	if c.active == iface {
		c.mu.Unlock()
		return
	}
	old := c.active
	c.active = iface
	listeners := make([]func(Interface, Interface), len(c.listeners))
	copy(listeners, c.listeners)
	c.mu.Unlock()
	for _, fn := range listeners {
		fn(old, iface)
	}
}

// OnChange registers a handover listener.
func (c *Connectivity) OnChange(fn func(old, new Interface)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, fn)
}

// Online reports whether any interface is active.
func (c *Connectivity) Online() bool { return c.Active() != InterfaceNone }
