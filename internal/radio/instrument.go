package radio

import (
	"sync"
	"time"

	"pogo/internal/obs"
)

// Instrument attributes the modem's energy to RRC states in the registry's
// per-entity ledger, under entity (device, "", "") with states named
// "modem:RAMP", "modem:TX", "modem:DCH", "modem:FACH". It also maintains
// per-state dwell/energy gauges and a transition counter.
//
// The integration is piecewise constant exactly like the energy meter's, so
// the sum over modem:* states equals the meter's "modem" component over the
// same interval; callers instrumenting both pass skip="modem" to
// energy.Meter.Instrument to avoid double-booking.
//
// The returned cancel removes the collect hook that books the in-progress
// dwell; the state-change listener cannot be unregistered (the modem keeps
// no removable listener list) but charges nothing once the modem is idle.
func (m *Modem) Instrument(reg *obs.Registry, device string) (cancel func()) {
	if m == nil || reg == nil {
		return func() {}
	}
	em := reg.Meter(device, "", "")
	var st struct {
		sync.Mutex
		state State
		at    time.Time
	}
	st.state = m.State()
	st.at = m.clk.Now()
	// charge books the dwell in the current state up to `until`; on a
	// transition it then anchors the new state.
	charge := func(until time.Time, next State, transition bool) {
		st.Lock()
		defer st.Unlock()
		if until.After(st.at) {
			dt := until.Sub(st.at).Seconds()
			name := st.state.String()
			if w := m.statePower(st.state); w > 0 {
				j := w * dt
				em.AddEnergy("modem:"+name, j)
				reg.Gauge("radio_state_joules", obs.L("node", device), obs.L("state", name)).Add(j)
			}
			reg.Gauge("radio_state_seconds", obs.L("node", device), obs.L("state", name)).Add(dt)
			st.at = until
		}
		if transition {
			st.state = next
			st.at = until
			reg.Counter("radio_state_transitions_total", obs.L("node", device), obs.L("state", next.String())).Inc()
		}
	}
	m.OnStateChange(func(old, new State, at time.Time) { charge(at, new, true) })
	return reg.OnCollect(func() { charge(m.clk.Now(), Idle, false) })
}
