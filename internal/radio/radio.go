// Package radio models the device's wireless interfaces: a 3G cellular modem
// with RRC state behaviour (ramp-up, DCH, FACH, tail timers — §4.7 and
// Figure 3 of the paper), a Wi-Fi radio, traffic counters equivalent to
// Android's TrafficStats, and a connectivity manager that reports interface
// handovers (§4.6).
//
// Tail energy is an artefact of the radio resource control protocol: after a
// transmission the modem lingers in the high-power DCH state and then in the
// medium-power FACH state, for durations set by the carrier. The three
// carrier profiles below are calibrated to reproduce the relative shape of
// the paper's Table 3 (KPN has by far the longest tail; Figure 3 shows
// b→c ≈ 6 s of DCH and c→d ≈ 53.5 s of FACH on KPN).
package radio

import (
	"sync"
	"time"

	"pogo/internal/energy"
	"pogo/internal/vclock"
)

// State is an RRC state of the 3G modem.
type State int

// Modem states. Transmitting is DCH with data in flight.
const (
	Idle State = iota + 1
	RampUp
	Promoting
	Transmitting
	DCHTail
	FACHTail
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case RampUp:
		return "RAMP"
	case Promoting:
		return "PROMOTE"
	case Transmitting:
		return "TX"
	case DCHTail:
		return "DCH"
	case FACHTail:
		return "FACH"
	default:
		return "?"
	}
}

// CarrierProfile holds the RRC timing and power parameters of one mobile
// carrier. Durations are the dwell times in each state; powers are the draw
// while in that state.
type CarrierProfile struct {
	Name string
	// RampUp is the channel-negotiation delay from Idle before bytes flow.
	RampUp time.Duration
	// Promote is the FACH→DCH promotion delay.
	Promote time.Duration
	// DCHTailTime is how long the modem stays in DCH after the last byte
	// (Figure 3: b→c).
	DCHTailTime time.Duration
	// FACHTailTime is how long the modem stays in FACH before returning to
	// idle (Figure 3: c→d).
	FACHTailTime time.Duration

	PowerRamp float64 // W during ramp-up / promotion
	PowerDCH  float64 // W while transmitting or in the DCH tail
	PowerFACH float64 // W in the FACH tail

	// ThroughputBps is the sustained transfer rate used to convert bytes
	// into transmission time.
	ThroughputBps float64
	// MinTxTime floors the duration of any transfer.
	MinTxTime time.Duration
}

// The three major Dutch carriers the paper measured (§5.2). Values are
// calibrated to the published traces: KPN's very long FACH tail dominates
// its per-transmission energy.
var (
	KPN = CarrierProfile{
		Name:          "KPN",
		RampUp:        2500 * time.Millisecond,
		Promote:       600 * time.Millisecond,
		DCHTailTime:   6 * time.Second,
		FACHTailTime:  53500 * time.Millisecond,
		PowerRamp:     0.65,
		PowerDCH:      0.80,
		PowerFACH:     0.25,
		ThroughputBps: 200e3,
		MinTxTime:     200 * time.Millisecond,
	}
	TMobile = CarrierProfile{
		Name:          "T-Mobile",
		RampUp:        2 * time.Second,
		Promote:       500 * time.Millisecond,
		DCHTailTime:   4 * time.Second,
		FACHTailTime:  20 * time.Second,
		PowerRamp:     0.65,
		PowerDCH:      0.80,
		PowerFACH:     0.25,
		ThroughputBps: 250e3,
		MinTxTime:     200 * time.Millisecond,
	}
	Vodafone = CarrierProfile{
		Name:          "Vodafone",
		RampUp:        2200 * time.Millisecond,
		Promote:       500 * time.Millisecond,
		DCHTailTime:   5 * time.Second,
		FACHTailTime:  28 * time.Second,
		PowerRamp:     0.65,
		PowerDCH:      0.80,
		PowerFACH:     0.25,
		ThroughputBps: 220e3,
		MinTxTime:     200 * time.Millisecond,
	}
)

// Carriers lists the built-in profiles in the paper's Table 3 order.
func Carriers() []CarrierProfile { return []CarrierProfile{KPN, TMobile, Vodafone} }

// TrafficStats mirrors Android's per-interface byte counters; the tail
// detector polls these (§4.7).
type TrafficStats struct {
	TxBytes int64
	RxBytes int64
}

// Total returns TxBytes+RxBytes.
func (t TrafficStats) Total() int64 { return t.TxBytes + t.RxBytes }

// transfer is one queued application transfer.
type transfer struct {
	tx, rx int64
	onDone []func()
}

// Modem is the simulated 3G modem. The zero value is not usable; construct
// with NewModem. All methods are goroutine-safe.
type Modem struct {
	clk     vclock.Clock
	meter   *energy.Meter
	profile CarrierProfile
	emName  string

	mu        sync.Mutex
	state     State
	pending   []transfer // queued while ramping/promoting
	inflight  []transfer // being transmitted
	stats     TrafficStats
	timer     vclock.Timer
	txEnd     time.Time
	listeners []func(old, new State, at time.Time)
	// notifyQueue buffers state-change notifications generated while mu is
	// held; unlockAndNotify drains it after releasing the lock so listeners
	// can call back into the modem.
	notifyQueue []stateChange
}

// NewModem returns an idle modem drawing no power. meter may be nil.
func NewModem(clk vclock.Clock, meter *energy.Meter, profile CarrierProfile) *Modem {
	return &Modem{
		clk:     clk,
		meter:   meter,
		profile: profile,
		emName:  "modem",
		state:   Idle,
	}
}

// Profile returns the modem's carrier profile.
func (m *Modem) Profile() CarrierProfile { return m.profile }

// State returns the current RRC state.
func (m *Modem) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Stats returns the current traffic counters. Counters advance when a
// transfer completes.
func (m *Modem) Stats() TrafficStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// OnStateChange registers a listener invoked (with the modem unlocked) on
// every state transition. Experiments use this to locate the Figure 3 marks.
func (m *Modem) OnStateChange(fn func(old, new State, at time.Time)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// Transfer queues an application transfer of tx uplink and rx downlink
// bytes. onDone (may be nil) runs when the bytes have been moved and the
// traffic counters updated. Energy flows to the meter as the modem moves
// through its states.
func (m *Modem) Transfer(tx, rx int64, onDone func()) {
	if tx < 0 {
		tx = 0
	}
	if rx < 0 {
		rx = 0
	}
	tr := transfer{tx: tx, rx: rx}
	if onDone != nil {
		tr.onDone = append(tr.onDone, onDone)
	}

	m.mu.Lock()
	switch m.state {
	case Idle:
		m.pending = append(m.pending, tr)
		m.setStateLocked(RampUp)
		m.resetTimerLocked(m.profile.RampUp, m.rampDone)
	case RampUp, Promoting:
		m.pending = append(m.pending, tr)
	case FACHTail:
		m.pending = append(m.pending, tr)
		m.setStateLocked(Promoting)
		m.resetTimerLocked(m.profile.Promote, m.rampDone)
	case DCHTail:
		m.inflight = append(m.inflight, tr)
		m.startTxLocked()
	case Transmitting:
		m.inflight = append(m.inflight, tr)
		m.extendTxLocked(tr)
	}
	m.unlockAndNotify()
}

// rampDone fires when ramp-up or promotion completes: move queued transfers
// in flight and start transmitting.
func (m *Modem) rampDone() {
	m.mu.Lock()
	if m.state != RampUp && m.state != Promoting {
		m.mu.Unlock()
		return
	}
	m.inflight = append(m.inflight, m.pending...)
	m.pending = nil
	m.startTxLocked()
	m.unlockAndNotify()
}

// startTxLocked enters Transmitting and schedules completion for everything
// in flight.
func (m *Modem) startTxLocked() {
	m.setStateLocked(Transmitting)
	total := int64(0)
	for _, tr := range m.inflight {
		total += tr.tx + tr.rx
	}
	dur := m.txDuration(total)
	m.txEnd = m.clk.Now().Add(dur)
	m.resetTimerLocked(dur, m.txDone)
}

// extendTxLocked pushes the transmission end out by the new transfer's time.
func (m *Modem) extendTxLocked(tr transfer) {
	extra := m.txDuration(tr.tx + tr.rx)
	m.txEnd = m.txEnd.Add(extra)
	m.resetTimerLocked(m.txEnd.Sub(m.clk.Now()), m.txDone)
}

func (m *Modem) txDuration(bytes int64) time.Duration {
	if m.profile.ThroughputBps <= 0 {
		return m.profile.MinTxTime
	}
	d := time.Duration(float64(bytes) * 8 / m.profile.ThroughputBps * float64(time.Second))
	if d < m.profile.MinTxTime {
		d = m.profile.MinTxTime
	}
	return d
}

// txDone fires at the end of a transmission: update counters, run
// completions, enter the DCH tail.
func (m *Modem) txDone() {
	m.mu.Lock()
	if m.state != Transmitting {
		m.mu.Unlock()
		return
	}
	var done []func()
	for _, tr := range m.inflight {
		m.stats.TxBytes += tr.tx
		m.stats.RxBytes += tr.rx
		done = append(done, tr.onDone...)
	}
	m.inflight = nil
	m.setStateLocked(DCHTail)
	m.resetTimerLocked(m.profile.DCHTailTime, m.dchExpired)
	m.unlockAndNotify()
	for _, fn := range done {
		fn()
	}
}

func (m *Modem) dchExpired() {
	m.mu.Lock()
	if m.state != DCHTail {
		m.mu.Unlock()
		return
	}
	m.setStateLocked(FACHTail)
	m.resetTimerLocked(m.profile.FACHTailTime, m.fachExpired)
	m.unlockAndNotify()
}

func (m *Modem) fachExpired() {
	m.mu.Lock()
	if m.state != FACHTail {
		m.mu.Unlock()
		return
	}
	m.setStateLocked(Idle)
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	m.unlockAndNotify()
}

// setStateLocked updates the state, meter power, and records the pending
// notification. Caller holds mu and must call unlockAndNotify.
func (m *Modem) setStateLocked(s State) {
	if m.state == s {
		return
	}
	old := m.state
	m.state = s
	if m.meter != nil {
		m.meter.Set(m.emName, m.statePower(s))
	}
	m.notifyQueue = append(m.notifyQueue, stateChange{old: old, new: s, at: m.clk.Now()})
}

func (m *Modem) statePower(s State) float64 {
	switch s {
	case RampUp, Promoting:
		return m.profile.PowerRamp
	case Transmitting, DCHTail:
		return m.profile.PowerDCH
	case FACHTail:
		return m.profile.PowerFACH
	default:
		return 0
	}
}

func (m *Modem) resetTimerLocked(d time.Duration, fn func()) {
	if m.timer != nil {
		m.timer.Stop()
	}
	m.timer = m.clk.AfterFunc(d, fn)
}

type stateChange struct {
	old, new State
	at       time.Time
}

func (m *Modem) unlockAndNotify() {
	pending := m.notifyQueue
	m.notifyQueue = nil
	listeners := make([]func(State, State, time.Time), len(m.listeners))
	copy(listeners, m.listeners)
	m.mu.Unlock()
	for _, ch := range pending {
		for _, fn := range listeners {
			fn(ch.old, ch.new, ch.at)
		}
	}
}
