package radio

import (
	"math"
	"testing"
	"time"

	"pogo/internal/energy"
	"pogo/internal/vclock"
)

func TestModemIdleByDefault(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	if m.State() != Idle {
		t.Errorf("State = %v, want Idle", m.State())
	}
	if s := m.Stats(); s.Total() != 0 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestModemFullCycle(t *testing.T) {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	m := NewModem(clk, meter, KPN)

	var transitions []State
	m.OnStateChange(func(_, to State, _ time.Time) { transitions = append(transitions, to) })

	done := false
	m.Transfer(1000, 0, func() { done = true })
	if m.State() != RampUp {
		t.Fatalf("State = %v, want RampUp", m.State())
	}
	// Ramp-up (2.5 s) + tx (min 200 ms) + DCH tail (6 s) + FACH (53.5 s).
	clk.Advance(KPN.RampUp)
	if m.State() != Transmitting {
		t.Fatalf("State after ramp = %v", m.State())
	}
	clk.Advance(time.Second)
	if !done {
		t.Fatal("onDone never ran")
	}
	if m.State() != DCHTail {
		t.Fatalf("State after tx = %v", m.State())
	}
	if got := m.Stats().TxBytes; got != 1000 {
		t.Errorf("TxBytes = %d", got)
	}
	clk.Advance(KPN.DCHTailTime)
	if m.State() != FACHTail {
		t.Fatalf("State after DCH tail = %v", m.State())
	}
	clk.Advance(KPN.FACHTailTime)
	if m.State() != Idle {
		t.Fatalf("State after FACH tail = %v", m.State())
	}
	want := []State{RampUp, Transmitting, DCHTail, FACHTail, Idle}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
	if meter.Power() != 0 {
		t.Errorf("meter power = %v after idle", meter.Power())
	}
	if meter.Energy() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestModemTailEnergyDominates(t *testing.T) {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	m := NewModem(clk, meter, KPN)

	m.Transfer(1024, 0, nil)
	clk.Advance(KPN.RampUp + time.Second) // through tx end
	eAfterTx := meter.Energy()
	clk.Advance(KPN.DCHTailTime + KPN.FACHTailTime + time.Second)
	eTotal := meter.Energy()
	tail := eTotal - eAfterTx
	if tail < 2*eAfterTx {
		t.Errorf("tail energy %v J not dominant over active %v J", tail, eAfterTx)
	}
}

func TestModemBatchingAmortizesTail(t *testing.T) {
	run := func(batch bool) float64 {
		clk := vclock.NewSim()
		meter := energy.NewMeter(clk)
		m := NewModem(clk, meter, KPN)
		if batch {
			for i := 0; i < 5; i++ {
				m.Transfer(200, 0, nil)
			}
			clk.Advance(10 * time.Minute)
		} else {
			for i := 0; i < 5; i++ {
				m.Transfer(200, 0, nil)
				clk.Advance(2 * time.Minute)
			}
		}
		return meter.Energy()
	}
	batched, spread := run(true), run(false)
	if batched*2 > spread {
		t.Errorf("batched %v J should be far below spread %v J", batched, spread)
	}
}

func TestModemSendDuringDCHTailSkipsRamp(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	m.Transfer(100, 0, nil)
	clk.Advance(KPN.RampUp + time.Second) // in DCH tail now
	if m.State() != DCHTail {
		t.Fatalf("setup: state = %v", m.State())
	}
	m.Transfer(100, 0, nil)
	if m.State() != Transmitting {
		t.Errorf("State = %v, want immediate Transmitting from DCH tail", m.State())
	}
}

func TestModemSendDuringFACHPromotes(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	m.Transfer(100, 0, nil)
	clk.Advance(KPN.RampUp + time.Second + KPN.DCHTailTime + time.Second)
	if m.State() != FACHTail {
		t.Fatalf("setup: state = %v", m.State())
	}
	m.Transfer(100, 0, nil)
	if m.State() != Promoting {
		t.Fatalf("State = %v, want Promoting", m.State())
	}
	clk.Advance(KPN.Promote)
	if m.State() != Transmitting {
		t.Errorf("State after promote = %v", m.State())
	}
}

func TestModemConcurrentTransfersCoalesce(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	doneCount := 0
	m.Transfer(500, 0, func() { doneCount++ })
	m.Transfer(700, 100, func() { doneCount++ }) // queued during ramp
	clk.Advance(KPN.RampUp)
	if m.State() != Transmitting {
		t.Fatalf("state = %v", m.State())
	}
	m.Transfer(300, 0, func() { doneCount++ }) // extends in-flight tx
	clk.Advance(time.Minute)
	if doneCount != 3 {
		t.Errorf("doneCount = %d, want 3", doneCount)
	}
	s := m.Stats()
	if s.TxBytes != 1500 || s.RxBytes != 100 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestModemCountersUpdateAtCompletionOnly(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	m.Transfer(10000, 0, nil)
	clk.Advance(KPN.RampUp / 2)
	if m.Stats().Total() != 0 {
		t.Error("counters moved during ramp-up")
	}
}

func TestModemNegativeBytesClamped(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	m.Transfer(-5, -7, nil)
	clk.Advance(time.Minute)
	if m.Stats().Total() != 0 {
		t.Errorf("Stats = %+v", m.Stats())
	}
}

func TestCarrierProfiles(t *testing.T) {
	cs := Carriers()
	if len(cs) != 3 || cs[0].Name != "KPN" || cs[1].Name != "T-Mobile" || cs[2].Name != "Vodafone" {
		t.Errorf("Carriers = %+v", cs)
	}
	// KPN's Figure 3 tail: ~6 s DCH then ~53.5 s FACH.
	if KPN.DCHTailTime != 6*time.Second || KPN.FACHTailTime != 53500*time.Millisecond {
		t.Error("KPN tail timing drifted from Figure 3")
	}
	for _, c := range cs {
		if c.PowerDCH <= c.PowerFACH {
			t.Errorf("%s: DCH power must exceed FACH", c.Name)
		}
	}
	// Total tail ordering drives Table 3: KPN ≫ Vodafone > T-Mobile.
	tail := func(c CarrierProfile) time.Duration { return c.DCHTailTime + c.FACHTailTime }
	if !(tail(KPN) > tail(Vodafone) && tail(Vodafone) > tail(TMobile)) {
		t.Error("carrier tail ordering wrong")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		Idle: "IDLE", RampUp: "RAMP", Promoting: "PROMOTE",
		Transmitting: "TX", DCHTail: "DCH", FACHTail: "FACH", State(0): "?",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestWifiTransfer(t *testing.T) {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	w := NewWifi(clk, meter)
	done := false
	w.Transfer(1e6, 2e6, func() { done = true })
	if meter.Power() == 0 {
		t.Error("wifi not drawing power during transfer")
	}
	clk.Advance(time.Minute)
	if !done {
		t.Fatal("transfer never completed")
	}
	if meter.Power() != 0 {
		t.Error("wifi still drawing power after transfer")
	}
	s := w.Stats()
	if s.TxBytes != 1e6 || s.RxBytes != 2e6 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestWifiFarCheaperThanCellular(t *testing.T) {
	clk := vclock.NewSim()
	meterW := energy.NewMeter(clk)
	w := NewWifi(clk, meterW)
	meterM := energy.NewMeter(clk)
	m := NewModem(clk, meterM, KPN)
	w.Transfer(10*1024, 0, nil)
	m.Transfer(10*1024, 0, nil)
	clk.Advance(5 * time.Minute)
	if meterW.Energy()*10 > meterM.Energy() {
		t.Errorf("wifi %v J vs modem %v J: wifi should be ≥10x cheaper", meterW.Energy(), meterM.Energy())
	}
}

func TestConnectivityHandover(t *testing.T) {
	clk := vclock.NewSim()
	m := NewModem(clk, nil, KPN)
	w := NewWifi(clk, nil)
	c := NewConnectivity(m, w)
	if c.Active() != InterfaceCellular {
		t.Fatalf("initial Active = %v", c.Active())
	}
	if c.Link() != DataLink(m) {
		t.Error("Link != modem")
	}

	var events [][2]Interface
	c.OnChange(func(old, new Interface) { events = append(events, [2]Interface{old, new}) })

	c.SetActive(InterfaceWifi)
	c.SetActive(InterfaceWifi) // no-op
	c.SetActive(InterfaceNone)
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if events[0] != [2]Interface{InterfaceCellular, InterfaceWifi} {
		t.Errorf("first event = %v", events[0])
	}
	if c.Online() {
		t.Error("Online = true when InterfaceNone")
	}
	if c.Link() != nil {
		t.Error("Link != nil when offline")
	}
}

func TestConnectivityDefaults(t *testing.T) {
	if c := NewConnectivity(nil, NewWifi(vclock.NewSim(), nil)); c.Active() != InterfaceWifi {
		t.Errorf("wifi-only default = %v", c.Active())
	}
	if c := NewConnectivity(nil, nil); c.Active() != InterfaceNone {
		t.Errorf("no-link default = %v", c.Active())
	}
}

func TestInterfaceString(t *testing.T) {
	if InterfaceCellular.String() != "cellular" || InterfaceWifi.String() != "wifi" ||
		InterfaceNone.String() != "none" || Interface(0).String() != "?" {
		t.Error("Interface.String wrong")
	}
}

func TestModemEnergyMatchesHandComputation(t *testing.T) {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	m := NewModem(clk, meter, KPN)
	m.Transfer(1, 0, nil) // MinTxTime applies
	clk.Advance(10 * time.Minute)
	want := KPN.RampUp.Seconds()*KPN.PowerRamp +
		KPN.MinTxTime.Seconds()*KPN.PowerDCH +
		KPN.DCHTailTime.Seconds()*KPN.PowerDCH +
		KPN.FACHTailTime.Seconds()*KPN.PowerFACH
	if got := meter.Energy(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}
