package radio

import (
	"sync"
	"time"

	"pogo/internal/energy"
	"pogo/internal/vclock"
)

// Wifi is the simulated Wi-Fi data interface. Unlike the 3G modem it has no
// meaningful tail: the radio draws power only while a transfer is active
// (plus a short association overhead), which is why offloading over Wi-Fi is
// cheap (user 7 in §5.3 relied on it exclusively).
type Wifi struct {
	clk   vclock.Clock
	meter *energy.Meter

	// ActivePower is the draw during a transfer, in watts.
	ActivePower float64
	// ThroughputBps converts bytes to transfer time.
	ThroughputBps float64
	// Overhead is added to every transfer's duration (association, DHCP...).
	Overhead time.Duration

	mu       sync.Mutex
	stats    TrafficStats
	active   int
	txEnd    time.Time
	pending  []transfer
	timerSet bool
}

// NewWifi returns a Wi-Fi interface with typical smartphone parameters.
func NewWifi(clk vclock.Clock, meter *energy.Meter) *Wifi {
	return &Wifi{
		clk:           clk,
		meter:         meter,
		ActivePower:   0.30,
		ThroughputBps: 5e6,
		Overhead:      150 * time.Millisecond,
	}
}

// Stats returns the interface's traffic counters.
func (w *Wifi) Stats() TrafficStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Transfer moves tx uplink and rx downlink bytes; onDone (may be nil) runs
// on completion.
func (w *Wifi) Transfer(tx, rx int64, onDone func()) {
	if tx < 0 {
		tx = 0
	}
	if rx < 0 {
		rx = 0
	}
	dur := w.Overhead
	if w.ThroughputBps > 0 {
		dur += time.Duration(float64(tx+rx) * 8 / w.ThroughputBps * float64(time.Second))
	}
	w.mu.Lock()
	w.active++
	if w.meter != nil && w.active == 1 {
		w.meter.Set("wifi", w.ActivePower)
	}
	w.mu.Unlock()
	w.clk.AfterFunc(dur, func() {
		w.mu.Lock()
		w.stats.TxBytes += tx
		w.stats.RxBytes += rx
		w.active--
		if w.meter != nil && w.active == 0 {
			w.meter.Set("wifi", 0)
		}
		w.mu.Unlock()
		if onDone != nil {
			onDone()
		}
	})
}
