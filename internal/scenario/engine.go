package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pogo/internal/experiments"
	"pogo/internal/obs"
	"pogo/internal/script/scripts"
)

// Runner executes scenario archives. The zero value runs with defaults;
// Update regenerates golden sections in place of comparing them.
type Runner struct {
	Short  bool // honor [short]/[!short] condition prefixes
	Update bool // match_file rewrites goldens instead of comparing
}

// Result reports one archive run.
type Result struct {
	Name       string
	Transcript []byte // deterministic run log: identical bytes for identical seeds
	Skipped    bool
	SkipReason string
	Updated    bool   // a golden section was rewritten under -update
	Archive    []byte // the re-serialized archive when Updated
}

// RunFile loads and runs one scenario file.
func (r *Runner) RunFile(pathname string) (*Result, error) {
	data, err := os.ReadFile(pathname)
	if err != nil {
		return nil, err
	}
	return r.Run(pathname, data)
}

// errSkip aborts a run without failing it.
type errSkip struct{ reason string }

func (e errSkip) Error() string { return "skip: " + e.reason }

// Run executes the archive's script. The returned Result is non-nil even on
// error, carrying the transcript up to the failure for diagnosis.
func (r *Runner) Run(name string, data []byte) (*Result, error) {
	arch := ParseTxtar(data)
	cmds, err := ParseScript(name, arch.Comment)
	if err != nil {
		return &Result{Name: name}, err
	}
	st := &state{r: r, name: name, arch: arch, reg: obs.NewRegistry(), outputs: map[string][]byte{}}
	defer st.close()
	res := &Result{Name: name}
	for _, c := range cmds {
		run := true
		for _, cond := range c.Conds {
			ok, err := st.evalCond(c, cond)
			if err != nil {
				res.Transcript = st.transcript.Bytes()
				return res, err
			}
			if !ok {
				run = false
				break
			}
		}
		if !run {
			st.printf("~ %s\n", c.Raw)
			continue
		}
		st.printf("> %s\n", c.Raw)
		err := st.dispatch(c)
		if skip, ok := err.(errSkip); ok {
			res.Skipped, res.SkipReason = true, skip.reason
			break
		}
		if c.Neg {
			if err == nil {
				res.Transcript = st.transcript.Bytes()
				return res, c.Errf("succeeded unexpectedly (negated with !)")
			}
			st.printf("[expected failure] %v\n", err)
			err = nil
		}
		if err != nil {
			res.Transcript = st.transcript.Bytes()
			return res, err
		}
	}
	res.Transcript = st.transcript.Bytes()
	if st.updated {
		res.Updated = true
		res.Archive = FormatTxtar(st.arch)
	}
	return res, nil
}

// state is the mutable execution context of one archive run.
type state struct {
	r          *Runner
	name       string
	arch       *Archive
	transcript bytes.Buffer
	outputs    map[string][]byte // named artifacts for match_file / expect_output_sha256
	reg        *obs.Registry
	mode       string
	chaos      *chaosState
	fleetCfg   *experiments.FleetConfig
	fleetRes   *experiments.FleetResult
	pogo       *pogoState
	crowd      int // size of the last crowd command's cohort
	updated    bool
}

func (st *state) close() {
	if st.pogo != nil {
		st.pogo.close()
		st.pogo = nil
	}
}

func (st *state) printf(format string, args ...any) {
	fmt.Fprintf(&st.transcript, format, args...)
}

// evalCond evaluates one [cond] prefix. Unknown conditions are errors, not
// skips — a typo must not silently disable an assertion.
func (st *state) evalCond(c Command, cond string) (bool, error) {
	neg := strings.HasPrefix(cond, "!")
	name := strings.TrimPrefix(cond, "!")
	var v bool
	switch {
	case name == "short":
		v = st.r.Short
	case name == "update":
		v = st.r.Update
	case name == "race":
		v = raceEnabled
	case name == "chaos":
		v = st.mode == modeChaos
	case name == "fleet":
		v = st.mode == modeFleet
	case name == "pogo":
		v = st.mode == modePogo
	case strings.HasPrefix(name, "shards:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "shards:"))
		if err != nil {
			return false, c.Errf("bad condition %q: shard count is not a number", cond)
		}
		v = st.fleetCfg != nil && st.fleetCfg.Shards == n
	default:
		return false, c.Errf("unknown condition %q", cond)
	}
	if neg {
		v = !v
	}
	return v, nil
}

func (st *state) dispatch(c Command) error {
	switch c.Name {
	case "skip":
		return errSkip{reason: strings.Join(c.Args, " ")}
	case "world_up":
		return st.cmdWorldUp(c)
	case "world_down":
		return st.cmdWorldDown(c)
	case "pogo_up":
		return st.cmdPogoUp(c)
	case "run":
		return st.cmdRun(c)
	case "rounds":
		return st.cmdRounds(c)
	case "advance":
		return st.cmdAdvance(c)
	case "flush":
		return st.cmdFlush(c)
	case "drain":
		return st.cmdDrain(c)
	case "publish":
		return st.cmdPublish(c)
	case "kill":
		return st.cmdKillReboot(c, true)
	case "reboot":
		return st.cmdKillReboot(c, false)
	case "inject_fault":
		return st.cmdInjectFault(c)
	case "heal":
		return st.cmdHeal(c)
	case "crowd":
		return st.cmdCrowd(c)
	case "deploy":
		return st.cmdDeploy(c, false)
	case "deploy_local":
		return st.cmdDeploy(c, true)
	case "subscribe":
		return st.cmdSubscribe(c)
	case "offline":
		return st.cmdConnectivity(c, false)
	case "online":
		return st.cmdConnectivity(c, true)
	case "table3":
		return st.cmdTable3(c)
	case "table4":
		return st.cmdTable4(c)
	case "save_log":
		return st.cmdSaveLog(c)
	case "match_file":
		return st.cmdMatchFile(c)
	case "expect_delivered":
		return st.cmdExpectDelivered(c)
	case "expect_stat":
		return st.cmdExpectStat(c)
	case "expect_metric":
		return st.cmdExpectMetric(c)
	case "expect_log_sha256":
		return st.cmdExpectLogSHA(c)
	case "expect_output_sha256":
		return st.cmdExpectOutputSHA(c)
	case "expect_log_count":
		return st.cmdExpectLogCount(c)
	case "audit_exactly_once":
		return st.cmdAudit(c)
	case "expect_alert":
		return st.cmdExpectAlert(c, true)
	case "expect_no_alert":
		return st.cmdExpectAlert(c, false)
	case "save_alert_log":
		return st.cmdSaveAlertLog(c)
	}
	return c.Errf("unknown command")
}

// needChaos / needFleetRun / needPogo gate mode-specific commands.
func (st *state) needChaos(c Command) (*chaosState, error) {
	if st.mode != modeChaos || st.chaos == nil {
		return nil, c.Errf("needs a chaos world (world_up <phones> 1 ... first)")
	}
	return st.chaos, nil
}

func (st *state) needPogo(c Command) (*pogoState, error) {
	if st.mode != modePogo || st.pogo == nil {
		return nil, c.Errf("needs a pogo world (pogo_up first)")
	}
	return st.pogo, nil
}

// --- world construction ---

func (st *state) cmdWorldUp(c Command) error {
	if st.mode != modeNone {
		return c.Errf("world already up (mode %s)", st.mode)
	}
	pos, kv, err := kvArgs(c, 2, "seed", "shards", "procs", "msgs", "cmds", "window", "step",
		"drop", "dup", "corrupt", "delay", "mean_up", "mean_down",
		"partition_frac", "retry", "drain_iters")
	if err != nil {
		return err
	}
	phones, err := strconv.Atoi(pos[0])
	if err != nil || phones < 1 {
		return c.Errf("bad phone count %q", pos[0])
	}
	collectors, err := strconv.Atoi(pos[1])
	if err != nil || collectors < 1 {
		return c.Errf("bad collector count %q", pos[1])
	}
	seedN, err := kvInt(c, kv, "seed", 1)
	if err != nil {
		return err
	}
	shards, err := kvInt(c, kv, "shards", 0)
	if err != nil {
		return err
	}
	procs, err := kvInt(c, kv, "procs", 0)
	if err != nil {
		return err
	}
	msgs, err := kvInt(c, kv, "msgs", 0)
	if err != nil {
		return err
	}
	cmdsPer, err := kvInt(c, kv, "cmds", 0)
	if err != nil {
		return err
	}
	window, err := kvDuration(c, kv, "window", 0)
	if err != nil {
		return err
	}
	step, err := kvDuration(c, kv, "step", 0)
	if err != nil {
		return err
	}
	drop, err := kvFloat(c, kv, "drop", 0)
	if err != nil {
		return err
	}
	dup, err := kvFloat(c, kv, "dup", 0)
	if err != nil {
		return err
	}
	corrupt, err := kvFloat(c, kv, "corrupt", 0)
	if err != nil {
		return err
	}
	delay, err := kvDuration(c, kv, "delay", 0)
	if err != nil {
		return err
	}
	meanUp, err := kvDuration(c, kv, "mean_up", 0)
	if err != nil {
		return err
	}
	meanDown, err := kvDuration(c, kv, "mean_down", 0)
	if err != nil {
		return err
	}
	partFrac, err := kvFloat(c, kv, "partition_frac", 0)
	if err != nil {
		return err
	}
	retry, err := kvDuration(c, kv, "retry", 0)
	if err != nil {
		return err
	}
	drainIters, err := kvInt(c, kv, "drain_iters", 0)
	if err != nil {
		return err
	}

	if shards > 0 {
		cfg := experiments.FleetConfig{
			Seed: int64(seedN), Phones: phones, Collectors: collectors, Shards: shards,
			Procs:            procs,
			MessagesPerPhone: msgs, CommandsPerPhone: cmdsPer,
			Window: window, Step: step,
			Drop: drop, Duplicate: dup, Corrupt: corrupt, MaxDelay: delay,
			RetryAfter: retry,
			// Scenarios assert on delivery_log lines, so always materialize
			// the textual log; scripted worlds are small.
			KeepLog: true,
			Obs:     st.reg,
		}
		if meanUp > 0 || meanDown > 0 || partFrac > 0 || drainIters != 0 {
			return c.Errf("churn/partition/drain options are chaos-only (fleet faults are per-entity)")
		}
		if procs > shards {
			return c.Errf("procs=%d exceeds shards=%d", procs, shards)
		}
		st.fleetCfg = &cfg
		st.mode = modeFleet
		if procs > 1 {
			st.printf("world: fleet phones=%d collectors=%d shards=%d procs=%d seed=%d\n",
				phones, collectors, shards, procs, seedN)
		} else {
			st.printf("world: fleet phones=%d collectors=%d shards=%d seed=%d\n",
				phones, collectors, shards, seedN)
		}
		return nil
	}
	if collectors != 1 {
		return c.Errf("chaos world has exactly 1 collector (got %d); pass shards=K for a fleet", collectors)
	}
	st.chaos = newChaosState(experiments.ChaosConfig{
		Seed: int64(seedN), Phones: phones,
		MessagesPerPhone: msgs, CommandsPerPhone: cmdsPer,
		Window: window, Step: step,
		Drop: drop, Duplicate: dup, Corrupt: corrupt, MaxDelay: delay,
		MeanUp: meanUp, MeanDown: meanDown, PartitionFrac: partFrac,
		RetryAfter: retry, DrainIters: drainIters, Obs: st.reg,
	})
	st.mode = modeChaos
	st.printf("world: chaos phones=%d seed=%d rounds=%d\n",
		phones, seedN, st.chaos.w.Rounds())
	return nil
}

// cmdWorldDown tears the active world down so the archive can bring up the
// next one (the ported chaos matrix runs three fault levels in one file).
// The registry, outputs, and transcript persist across worlds.
func (st *state) cmdWorldDown(c Command) error {
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	if st.mode == modeNone {
		return c.Errf("no world is up")
	}
	if st.pogo != nil {
		st.pogo.close()
	}
	st.mode, st.chaos, st.fleetCfg, st.fleetRes, st.pogo = modeNone, nil, nil, nil, nil
	st.printf("world: down\n")
	return nil
}

func (st *state) cmdPogoUp(c Command) error {
	if st.mode != modeNone {
		return c.Errf("world already up (mode %s)", st.mode)
	}
	_, kv, err := kvArgs(c, 0, "carrier", "flush_every")
	if err != nil {
		return err
	}
	carrier := radioDefaultCarrier()
	if name, ok := kv["carrier"]; ok {
		carrier, err = carrierByName(name)
		if err != nil {
			return c.Errf("%v", err)
		}
	}
	flushEvery, err := kvDuration(c, kv, "flush_every", 0)
	if err != nil {
		return err
	}
	p, err := newPogoState(st.reg, carrier, flushEvery)
	if err != nil {
		return c.Errf("%v", err)
	}
	st.pogo = p
	st.mode = modePogo
	st.printf("world: pogo carrier=%s nodes=[collector phone]\n", carrier.Name)
	return nil
}

// --- simulation driving ---

func (st *state) cmdRun(c Command) error {
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	switch st.mode {
	case modeChaos:
		cs := st.chaos
		for ; cs.next < cs.w.Rounds(); cs.next++ {
			cs.w.RunRound(cs.next)
		}
		cs.w.Drain()
		cs.ran = true
		res := cs.w.Result(st.name)
		st.printf("run: delivered=%d/%d lost=%d dup=%d ooo=%d undrained=%d retries=%d\n",
			res.Delivered, res.Expected, res.Lost, res.Duplicated, res.OutOfOrder,
			res.Undrained, res.Retries)
		st.printf("log sha256=%s\n", res.LogSHA256)
		return nil
	case modeFleet:
		if st.fleetRes != nil {
			return c.Errf("fleet already ran")
		}
		var res experiments.FleetResult
		if st.fleetCfg.Procs > 1 {
			// Split over real worker processes (re-exec of this binary; both
			// cmd/pogo-scenario and the test binary install the worker hook).
			var err error
			if res, err = experiments.FleetMultiproc(*st.fleetCfg, nil); err != nil {
				return c.Errf("fleet procs=%d: %v", st.fleetCfg.Procs, err)
			}
		} else {
			res = experiments.Fleet(*st.fleetCfg)
		}
		st.fleetRes = &res
		// Wall-clock and allocation figures are real-time measurements —
		// deliberately left out of the transcript, which must be
		// byte-identical across runs.
		st.printf("run: delivered=%d/%d lost=%d dup=%d ooo=%d undrained=%d epochs=%d\n",
			res.Delivered, res.Expected, res.Lost, res.Duplicated, res.OutOfOrder,
			res.Undrained, res.Epochs)
		st.printf("log sha256=%s\n", res.LogSHA256)
		return nil
	}
	return c.Errf("needs a chaos or fleet world")
}

func (st *state) cmdRounds(c Command) error {
	cs, err := st.needChaos(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 1 {
		return c.Errf("want: rounds <n>")
	}
	n, err := strconv.Atoi(c.Args[0])
	if err != nil || n < 1 {
		return c.Errf("bad round count %q", c.Args[0])
	}
	for i := 0; i < n && cs.next < cs.w.Rounds(); i++ {
		cs.w.RunRound(cs.next)
		cs.next++
	}
	st.printf("rounds: at %d/%d\n", cs.next, cs.w.Rounds())
	return nil
}

func (st *state) cmdAdvance(c Command) error {
	if len(c.Args) != 1 {
		return c.Errf("want: advance <duration>")
	}
	d, err := time.ParseDuration(c.Args[0])
	if err != nil || d <= 0 {
		return c.Errf("bad duration %q", c.Args[0])
	}
	switch st.mode {
	case modeChaos:
		st.chaos.w.Advance(d)
		return nil
	case modePogo:
		st.pogo.clk.Advance(d)
		return nil
	}
	return c.Errf("needs a chaos or pogo world")
}

func (st *state) cmdFlush(c Command) error {
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	switch st.mode {
	case modeChaos:
		st.chaos.w.FlushAll()
		return nil
	case modePogo:
		st.pogo.dev.Flush()
		st.pogo.col.Flush()
		return nil
	}
	return c.Errf("needs a chaos or pogo world")
}

func (st *state) cmdDrain(c Command) error {
	cs, err := st.needChaos(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	undrained := cs.w.Drain()
	cs.ran = true
	st.printf("drain: undrained=%d\n", undrained)
	return nil
}

func (st *state) cmdPublish(c Command) error {
	cs, err := st.needChaos(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 4 {
		return c.Errf("want: publish <from> <to> <channel> <n>")
	}
	n, err := strconv.Atoi(c.Args[3])
	if err != nil {
		return c.Errf("bad sequence number %q", c.Args[3])
	}
	if err := cs.w.Enqueue(c.Args[0], c.Args[1], c.Args[2], n); err != nil {
		return c.Errf("%v", err)
	}
	return nil
}

func (st *state) cmdKillReboot(c Command, kill bool) error {
	if len(c.Args) != 1 {
		return c.Errf("want: %s <entity-glob>", c.Name)
	}
	switch st.mode {
	case modeChaos:
		cs := st.chaos
		names, err := cs.matchEntities(c.Args[0])
		if err != nil {
			return c.Errf("%v", err)
		}
		n := 0
		for _, name := range names {
			f := cs.w.Fault(name)
			if f == nil {
				if len(names) == 1 {
					return c.Errf("%s has no fault wrapper (the collector cannot churn)", name)
				}
				continue // glob swept up the collector; phones-only is intended
			}
			if kill {
				f.Disconnect()
			} else {
				f.Reconnect()
			}
			n++
		}
		st.printf("%s: %d entities\n", c.Name, n)
		return nil
	case modePogo:
		p := st.pogo
		if c.Args[0] != "phone" {
			return c.Errf("pogo mode can only %s the phone", c.Name)
		}
		// Kill = pull connectivity; reboot = restore it. Full process reboot
		// is table4's domain; here the observable is offline buffering.
		if kill {
			p.conn.SetActive(radioInterfaceNone())
		} else {
			p.conn.SetActive(radioInterfaceCellular())
		}
		st.printf("%s: phone\n", c.Name)
		return nil
	}
	return c.Errf("needs a chaos or pogo world")
}

func (st *state) cmdInjectFault(c Command) error {
	cs, err := st.needChaos(c)
	if err != nil {
		return err
	}
	_, kv, err := kvArgs(c, 0, "drop", "dup", "corrupt", "delay", "partition")
	if err != nil {
		return err
	}
	if pair, ok := kv["partition"]; ok {
		parts := strings.Split(pair, ",")
		if len(parts) != 2 {
			return c.Errf("partition wants two comma-separated entity globs, got %q", pair)
		}
		as, err := cs.matchEntities(parts[0])
		if err != nil {
			return c.Errf("%v", err)
		}
		bs, err := cs.matchEntities(parts[1])
		if err != nil {
			return c.Errf("%v", err)
		}
		n := 0
		for _, a := range as {
			for _, b := range bs {
				if a == b {
					continue
				}
				cs.w.Net().PartitionPair(a, b)
				n++
			}
		}
		st.printf("inject_fault: partitioned %d pairs\n", n)
	}
	mixChanged := false
	for _, k := range []string{"drop", "dup", "corrupt", "delay"} {
		if _, ok := kv[k]; ok {
			mixChanged = true
		}
	}
	if mixChanged {
		if cs.drop, err = kvFloat(c, kv, "drop", cs.drop); err != nil {
			return err
		}
		if cs.dup, err = kvFloat(c, kv, "dup", cs.dup); err != nil {
			return err
		}
		if cs.corrupt, err = kvFloat(c, kv, "corrupt", cs.corrupt); err != nil {
			return err
		}
		if cs.delay, err = kvDuration(c, kv, "delay", cs.delay); err != nil {
			return err
		}
		cs.w.Net().SetFaults(cs.drop, cs.dup, cs.corrupt, cs.delay)
		st.printf("inject_fault: drop=%s dup=%s corrupt=%s delay=%s\n",
			formatNum(cs.drop), formatNum(cs.dup), formatNum(cs.corrupt), cs.delay)
	}
	if !mixChanged && kv["partition"] == "" {
		return c.Errf("nothing to inject (want drop=/dup=/corrupt=/delay= or partition=A,B)")
	}
	return nil
}

func (st *state) cmdHeal(c Command) error {
	cs, err := st.needChaos(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	cs.w.Net().HealAll()
	return nil
}

func (st *state) cmdCrowd(c Command) error {
	cs, err := st.needChaos(c)
	if err != nil {
		return err
	}
	pos, kv, err := kvArgs(c, 2, "seed", "at", "burst", "channel")
	if err != nil {
		return err
	}
	place := pos[0]
	users, err := strconv.Atoi(pos[1])
	if err != nil || users < 1 {
		return c.Errf("bad user count %q", pos[1])
	}
	if users > cs.w.Config().Phones {
		return c.Errf("crowd of %d users exceeds the world's %d phones", users, cs.w.Config().Phones)
	}
	seedN, err := kvInt(c, kv, "seed", int(cs.w.Config().Seed))
	if err != nil {
		return err
	}
	at, err := kvDuration(c, kv, "at", 9*time.Hour) // mid-morning: everyone is out
	if err != nil {
		return err
	}
	burst, err := kvInt(c, kv, "burst", 5)
	if err != nil {
		return err
	}
	channel := kv["channel"]
	if channel == "" {
		channel = "flash"
	}
	if channel == "upload" || channel == "cmd" {
		return c.Errf("channel %q is reserved for scheduled traffic (the exactly-once audit would count crowd messages as duplicates)", channel)
	}
	members, err := crowdAt(int64(seedN), users, place, at)
	if err != nil {
		return c.Errf("%v", err)
	}
	// Every phone whose user is dwelling at the place publishes a burst —
	// the flash crowd all lighting up the same cell at once.
	for _, i := range members {
		from := experiments.ChaosPhoneName(i)
		for j := 0; j < burst; j++ {
			if err := cs.w.Enqueue(from, experiments.ChaosCollectorName, channel, j); err != nil {
				return c.Errf("%v", err)
			}
		}
	}
	st.crowd = len(members)
	st.printf("crowd: %d/%d phones at %s, burst=%d on %q\n", len(members), users, place, burst, channel)
	return nil
}

// --- pogo-mode scripting ---

func (st *state) cmdDeploy(c Command, local bool) error {
	p, err := st.needPogo(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 1 {
		return c.Errf("want: %s <script.js>", c.Name)
	}
	name := c.Args[0]
	// Script source: an archive section wins (scenarios can carry bespoke
	// PogoScript), else the embedded script library.
	var source string
	if data, ok := st.arch.File(name); ok {
		source = string(data)
	} else {
		source, err = scripts.Source(name)
		if err != nil {
			return c.Errf("no archive section %q and no library script: %v", name, err)
		}
	}
	if local {
		err = p.col.DeployLocal(name, source)
	} else {
		err = p.col.Deploy(name, source)
	}
	if err != nil {
		return c.Errf("%v", err)
	}
	return nil
}

func (st *state) cmdSubscribe(c Command) error {
	p, err := st.needPogo(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 1 {
		return c.Errf("want: subscribe <channel>")
	}
	p.col.LocalContext().Broker().Subscribe(c.Args[0], nil, nil)
	return nil
}

func (st *state) cmdConnectivity(c Command, online bool) error {
	p, err := st.needPogo(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	if online {
		p.conn.SetActive(radioInterfaceCellular())
	} else {
		p.conn.SetActive(radioInterfaceNone())
	}
	return nil
}

func (st *state) cmdExpectLogCount(c Command) error {
	p, err := st.needPogo(c)
	if err != nil {
		return err
	}
	if len(c.Args) != 3 {
		return c.Errf("want: expect_log_count <log> <op> <n>")
	}
	want, err := strconv.ParseFloat(c.Args[2], 64)
	if err != nil {
		return c.Errf("bad count %q", c.Args[2])
	}
	have := float64(len(p.col.Logs().Lines(c.Args[0])))
	ok, err := cmpOp(c.Args[1], have, want)
	if err != nil {
		return c.Errf("%v", err)
	}
	if !ok {
		return c.Errf("log %q has %s lines, want %s %s",
			c.Args[0], formatNum(have), c.Args[1], formatNum(want))
	}
	return nil
}

// --- paper tables ---

func (st *state) cmdTable3(c Command) error {
	if st.mode != modeNone {
		return c.Errf("table3 is self-contained; run it before any world_up")
	}
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	rows := experiments.Table3Obs(st.reg)
	st.outputs["table3.txt"] = []byte(experiments.RenderTable3(rows))
	var acc bytes.Buffer
	obs.WriteAccountingCSV(&acc, st.reg.Ledger())
	st.outputs["accounting.csv"] = acc.Bytes()
	var ser bytes.Buffer
	obs.WriteSeriesCSV(&ser, st.reg.Series())
	st.outputs["timeseries.csv"] = ser.Bytes()
	st.printf("table3: %d carriers -> table3.txt accounting.csv timeseries.csv\n", len(rows))
	return nil
}

func (st *state) cmdTable4(c Command) error {
	if st.mode != modeNone {
		return c.Errf("table4 is self-contained; run it before any world_up")
	}
	_, kv, err := kvArgs(c, 0, "seed", "days")
	if err != nil {
		return err
	}
	seedN, err := kvInt(c, kv, "seed", 1)
	if err != nil {
		return err
	}
	days, err := kvInt(c, kv, "days", 1)
	if err != nil {
		return err
	}
	cfg := experiments.SmallTable4Config(int64(seedN), days)
	cfg.Obs = st.reg
	res, err := experiments.Table4(cfg)
	if err != nil {
		return c.Errf("%v", err)
	}
	st.outputs["table4.txt"] = []byte(experiments.RenderTable4(res))
	st.printf("table4: %d sessions, %d scans, %d locations -> table4.txt\n",
		len(res.Rows), res.TotalScans, res.TotalPlaces)
	return nil
}

// --- artifacts and assertions ---

// deliveryLog returns the current delivery log of the active world.
func (st *state) deliveryLog(c Command) ([]string, string, error) {
	switch st.mode {
	case modeChaos:
		res := st.chaos.w.Result(st.name)
		return res.Log, res.LogSHA256, nil
	case modeFleet:
		if st.fleetRes == nil {
			return nil, "", c.Errf("fleet has not run yet")
		}
		return st.fleetRes.Log, st.fleetRes.LogSHA256, nil
	}
	return nil, "", c.Errf("needs a chaos or fleet world")
}

func (st *state) cmdSaveLog(c Command) error {
	if len(c.Args) != 1 {
		return c.Errf("want: save_log <name>")
	}
	log, _, err := st.deliveryLog(c)
	if err != nil {
		return err
	}
	st.outputs[c.Args[0]] = []byte(strings.Join(log, "\n") + "\n")
	st.printf("save_log: %s (%d lines)\n", c.Args[0], len(log))
	return nil
}

func (st *state) cmdMatchFile(c Command) error {
	if len(c.Args) != 1 {
		return c.Errf("want: match_file <name>")
	}
	name := c.Args[0]
	out, ok := st.outputs[name]
	if !ok {
		return c.Errf("no output %q produced yet (outputs come from table3/table4/save_log)", name)
	}
	if st.r.Update {
		st.arch.SetFile(name, out)
		st.updated = true
		st.printf("match_file: updated %s (%d bytes)\n", name, len(out))
		return nil
	}
	want, ok := st.arch.File(name)
	if !ok {
		return c.Errf("no golden section %q in the archive (run with -update to create it)", name)
	}
	if !bytes.Equal(fixNL(out), fixNL(want)) {
		return c.Errf("%s differs from golden (%d vs %d bytes); rerun with -update after an intentional change\n%s",
			name, len(out), len(want), firstDiff(out, want))
	}
	st.printf("match_file: %s ok\n", name)
	return nil
}

// firstDiff renders the first differing line for the match_file error.
func firstDiff(got, want []byte) string {
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return fmt.Sprintf("first diff at line %d:\n  got:  %q\n  want: %q", i+1, g, w)
		}
	}
	return "contents equal after newline normalization"
}

// stat reads a named scalar from the active world's result.
func (st *state) stat(c Command, field string) (float64, error) {
	if field == "crowd" {
		return float64(st.crowd), nil
	}
	switch st.mode {
	case modeChaos:
		cs := st.chaos
		if field == "pending" {
			return float64(cs.w.Pending()), nil
		}
		if field == "rounds" {
			return float64(cs.w.Rounds()), nil
		}
		res := cs.w.Result(st.name)
		switch field {
		case "expected":
			return float64(res.Expected), nil
		case "delivered":
			return float64(res.Delivered), nil
		case "lost":
			return float64(res.Lost), nil
		case "duplicated":
			return float64(res.Duplicated), nil
		case "out_of_order":
			return float64(res.OutOfOrder), nil
		case "undrained":
			return float64(res.Undrained), nil
		case "retries":
			return float64(res.Retries), nil
		case "corrupt_dropped":
			return float64(res.CorruptDropped), nil
		case "net_sent":
			return float64(res.NetSent), nil
		case "net_dropped":
			return float64(res.NetDropped), nil
		case "net_duplicated":
			return float64(res.NetDuplicated), nil
		case "net_corrupted":
			return float64(res.NetCorrupted), nil
		case "net_delayed":
			return float64(res.NetDelayed), nil
		case "partition_drops":
			return float64(res.PartitionDrops), nil
		case "disconnects":
			return float64(res.Disconnects), nil
		}
	case modeFleet:
		if st.fleetRes == nil {
			return 0, c.Errf("fleet has not run yet")
		}
		res := st.fleetRes
		switch field {
		case "expected":
			return float64(res.Expected), nil
		case "delivered":
			return float64(res.Delivered), nil
		case "lost":
			return float64(res.Lost), nil
		case "duplicated":
			return float64(res.Duplicated), nil
		case "out_of_order":
			return float64(res.OutOfOrder), nil
		case "undrained":
			return float64(res.Undrained), nil
		case "shards":
			return float64(res.Shards), nil
		case "collectors":
			return float64(res.Collectors), nil
		case "epochs":
			return float64(res.Epochs), nil
		}
	default:
		return 0, c.Errf("needs a chaos or fleet world")
	}
	return 0, c.Errf("unknown stat %q", field)
}

func (st *state) cmdExpectStat(c Command) error {
	if len(c.Args) != 3 {
		return c.Errf("want: expect_stat <field> <op> <n>")
	}
	have, err := st.stat(c, c.Args[0])
	if err != nil {
		return err
	}
	want, err := strconv.ParseFloat(c.Args[2], 64)
	if err != nil {
		return c.Errf("bad number %q", c.Args[2])
	}
	ok, err := cmpOp(c.Args[1], have, want)
	if err != nil {
		return c.Errf("%v", err)
	}
	if !ok {
		return c.Errf("%s = %s, want %s %s", c.Args[0], formatNum(have), c.Args[1], formatNum(want))
	}
	return nil
}

func (st *state) cmdExpectDelivered(c Command) error {
	switch len(c.Args) {
	case 0:
		// Bare form: every expected message arrived and nothing is pending.
		delivered, err := st.stat(c, "delivered")
		if err != nil {
			return err
		}
		expected, err := st.stat(c, "expected")
		if err != nil {
			return err
		}
		undrained, err := st.stat(c, "undrained")
		if err != nil {
			return err
		}
		if delivered < expected || undrained != 0 {
			return c.Errf("delivered %s of %s expected (undrained %s)",
				formatNum(delivered), formatNum(expected), formatNum(undrained))
		}
		return nil
	case 2:
		have, err := st.stat(c, "delivered")
		if err != nil {
			return err
		}
		want, err := strconv.ParseFloat(c.Args[1], 64)
		if err != nil {
			return c.Errf("bad number %q", c.Args[1])
		}
		ok, err := cmpOp(c.Args[0], have, want)
		if err != nil {
			return c.Errf("%v", err)
		}
		if !ok {
			return c.Errf("delivered = %s, want %s %s", formatNum(have), c.Args[0], formatNum(want))
		}
		return nil
	}
	return c.Errf("want: expect_delivered [<op> <n>]")
}

func (st *state) cmdExpectLogSHA(c Command) error {
	if len(c.Args) != 1 {
		return c.Errf("want: expect_log_sha256 <hex>")
	}
	_, have, err := st.deliveryLog(c)
	if err != nil {
		return err
	}
	if have != c.Args[0] {
		return c.Errf("log sha256 = %s, want %s", have, c.Args[0])
	}
	return nil
}

func (st *state) cmdExpectOutputSHA(c Command) error {
	if len(c.Args) != 2 {
		return c.Errf("want: expect_output_sha256 <name> <hex>")
	}
	out, ok := st.outputs[c.Args[0]]
	if !ok {
		return c.Errf("no output %q produced yet", c.Args[0])
	}
	sum := sha256.Sum256(out)
	have := hex.EncodeToString(sum[:])
	if have != c.Args[1] {
		return c.Errf("%s sha256 = %s, want %s", c.Args[0], have, c.Args[1])
	}
	return nil
}

func (st *state) cmdAudit(c Command) error {
	if len(c.Args) != 0 {
		return c.Errf("takes no arguments")
	}
	lost, err := st.stat(c, "lost")
	if err != nil {
		return err
	}
	dup, err := st.stat(c, "duplicated")
	if err != nil {
		return err
	}
	ooo, err := st.stat(c, "out_of_order")
	if err != nil {
		return err
	}
	if lost != 0 || dup != 0 || ooo != 0 {
		return c.Errf("exactly-once violated: lost=%s duplicated=%s out_of_order=%s",
			formatNum(lost), formatNum(dup), formatNum(ooo))
	}
	st.printf("audit_exactly_once: ok\n")
	return nil
}

// --- alerts ---

// cmdExpectAlert asserts the current state of one alert rule. Alert
// evaluation happens on the simulated clock (chaos rounds, fleet epoch
// barriers), so the assertion is deterministic: a rule either always fires at
// this point of the script for this seed, or never does.
//
//	expect_alert <rule> [state=firing|pending]   — rule is in that state
//	expect_no_alert <rule>                       — rule is inactive
func (st *state) cmdExpectAlert(c Command, wantActive bool) error {
	pos, kv, err := kvArgs(c, 1, "state")
	if err != nil {
		return err
	}
	engine := st.reg.Alerts()
	state, ok := engine.State(pos[0])
	if !ok {
		return c.Errf("no alert rule %q is installed (rules load when a world comes up)", pos[0])
	}
	if !wantActive {
		if len(kv) != 0 {
			return c.Errf("expect_no_alert takes no options")
		}
		if state != obs.AlertInactive {
			return c.Errf("alert %q is %s, want inactive", pos[0], state)
		}
		st.printf("expect_no_alert: %s ok\n", pos[0])
		return nil
	}
	want := obs.AlertFiring
	switch kv["state"] {
	case "", "firing":
	case "pending":
		want = obs.AlertPending
	default:
		return c.Errf("bad state=%q (want firing or pending)", kv["state"])
	}
	if state != want {
		return c.Errf("alert %q is %s, want %s", pos[0], state, want)
	}
	st.printf("expect_alert: %s %s ok\n", pos[0], want)
	return nil
}

// cmdSaveAlertLog captures the alert transition log as a named output, so
// match_file can pin exactly which rules fired and in what order — the alert
// analogue of save_log.
func (st *state) cmdSaveAlertLog(c Command) error {
	if len(c.Args) != 1 {
		return c.Errf("want: save_alert_log <name>")
	}
	log := st.reg.Alerts().FormatLog()
	st.outputs[c.Args[0]] = []byte(log)
	st.printf("save_alert_log: %s (%d events)\n", c.Args[0], strings.Count(log, "\n"))
	return nil
}

// --- metrics ---

func (st *state) cmdExpectMetric(c Command) error {
	if len(c.Args) != 3 {
		return c.Errf("want: expect_metric <name{labels}> <op> <n>")
	}
	have, err := st.metricValue(c, c.Args[0])
	if err != nil {
		return err
	}
	want, err := strconv.ParseFloat(c.Args[2], 64)
	if err != nil {
		return c.Errf("bad number %q", c.Args[2])
	}
	ok, err := cmpOp(c.Args[1], have, want)
	if err != nil {
		return c.Errf("%v", err)
	}
	if !ok {
		return c.Errf("%s = %s, want %s %s", c.Args[0], formatNum(have), c.Args[1], formatNum(want))
	}
	return nil
}

// metricValue resolves a selector against the registry. pogo_entity_*
// families read the ledger (summing over rows matching the given partial
// device/script/topic labels); everything else is an exact counter/gauge/
// histogram lookup by canonical key.
func (st *state) metricValue(c Command, sel string) (float64, error) {
	name, labels, err := parseSelector(sel)
	if err != nil {
		return 0, c.Errf("%v", err)
	}
	if strings.HasPrefix(name, "pogo_entity_") {
		return st.entityValue(c, name, labels)
	}
	snap := st.reg.Snapshot()
	k := obs.Key(name, labels...)
	if v, ok := snap.Counters[k]; ok {
		return float64(v), nil
	}
	if v, ok := snap.Gauges[k]; ok {
		return v, nil
	}
	if h, ok := snap.Histograms[k]; ok {
		return float64(h.Count), nil
	}
	return 0, c.Errf("metric %q not found", k)
}

func (st *state) entityValue(c Command, family string, labels []obs.Label) (float64, error) {
	sel := map[string]string{}
	for _, l := range labels {
		switch l.Key {
		case "device", "script", "topic", "state":
			sel[l.Key] = l.Value
		default:
			return 0, c.Errf("entity metrics take device/script/topic/state labels, not %q", l.Key)
		}
	}
	st.reg.Collect() // book pending deltas before reading the ledger
	var total float64
	matched := false
	for _, a := range st.reg.Ledger().Snapshot() {
		if v, ok := sel["device"]; ok && a.Device != v {
			continue
		}
		if v, ok := sel["script"]; ok && a.Script != v {
			continue
		}
		if v, ok := sel["topic"]; ok && a.Topic != v {
			continue
		}
		matched = true
		switch family {
		case "pogo_entity_uplink_bytes_total":
			total += float64(a.UplinkBytes)
		case "pogo_entity_downlink_bytes_total":
			total += float64(a.DownlinkBytes)
		case "pogo_entity_messages_total":
			total += float64(a.Messages)
		case "pogo_entity_wake_milliseconds_total":
			total += float64(a.WakeMS)
		case "pogo_entity_steps_total":
			total += float64(a.Steps)
		case "pogo_entity_deadline_exceeded_total":
			total += float64(a.DeadlineExceeded)
		case "pogo_entity_tailsync_hits_total":
			total += float64(a.TailHits)
		case "pogo_entity_tailsync_misses_total":
			total += float64(a.TailMisses)
		case "pogo_entity_energy_joules_total":
			if state, ok := sel["state"]; ok {
				total += a.Energy[state]
			} else {
				total += a.EnergyTotal
			}
		default:
			return 0, c.Errf("unknown entity metric family %q", family)
		}
	}
	if !matched {
		return 0, c.Errf("no ledger rows match %s", sel)
	}
	return total, nil
}
