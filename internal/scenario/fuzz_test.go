package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzScenarioParse hammers the archive and script parsers: no input may
// panic, every parse error must carry a file:line position, and
// Parse∘Format must be the identity on Format's output.
func FuzzScenarioParse(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("testdata", "scenarios", "*.txtar"))
	for _, file := range files {
		if data, err := os.ReadFile(file); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("world_up 50 1 seed=1\nrun\n-- golden.txt --\nx\n"))
	f.Add([]byte("[short] [!race] ! expect_stat lost == 0\n"))
	f.Add([]byte("skip 'two words' it''s\n"))
	f.Add([]byte("'unterminated\n-- a --\n-- a --\ndup section\n"))
	f.Add([]byte("--  --\nnot a marker: empty name\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		arch := ParseTxtar(data) // must never panic or fail
		out := FormatTxtar(arch)
		if again := FormatTxtar(ParseTxtar(out)); !bytes.Equal(again, out) {
			t.Fatalf("Parse/Format round trip not stable:\n%q\nvs\n%q", out, again)
		}

		cmds, err := ParseScript("fuzz.txtar", arch.Comment)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "fuzz.txtar:") {
				t.Fatalf("parse error lost its file:line position: %v", err)
			}
			return
		}
		for _, c := range cmds {
			if c.Name == "" {
				t.Fatalf("parsed command with empty name at line %d", c.Line)
			}
			if c.Line < 1 {
				t.Fatalf("command %q has line %d", c.Name, c.Line)
			}
			if e := c.Errf("boom"); !strings.HasPrefix(e.Error(), "fuzz.txtar:") {
				t.Fatalf("Errf lost the position: %v", e)
			}
		}
	})
}
