package scenario

import (
	"os"
	"testing"

	"pogo/internal/experiments"
)

// TestMain installs the fleet worker hook: scenarios with `procs=N` fork this
// test binary as shard workers, and a forked copy must serve the worker
// protocol instead of running the test suite.
func TestMain(m *testing.M) {
	experiments.MaybeFleetWorker()
	os.Exit(m.Run())
}
