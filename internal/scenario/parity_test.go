package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"pogo/internal/experiments"
)

// pinnedLogHashes extracts the expect_log_sha256 arguments of a scenario
// archive, in script order.
func pinnedLogHashes(t *testing.T, file string) []string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^expect_log_sha256 ([0-9a-f]{64})$`)
	var hashes []string
	for _, m := range re.FindAllSubmatch(data, -1) {
		hashes = append(hashes, string(m[1]))
	}
	return hashes
}

// TestChaosTxtarParity proves the DSL is a faithful re-expression of the Go
// chaos experiment: the hashes pinned in chaos.txtar must be the exact
// same-seed delivery-log SHA-256s that internal/experiments produces AND the
// baselines recorded in BENCH_chaos.json. Any divergence between the three
// fails here, not silently.
func TestChaosTxtarParity(t *testing.T) {
	pinned := pinnedLogHashes(t, filepath.Join("testdata", "scenarios", "chaos.txtar"))
	scenarios := experiments.ChaosScenarios(1)
	if len(pinned) != len(scenarios) {
		t.Fatalf("chaos.txtar pins %d hashes, experiment matrix has %d levels", len(pinned), len(scenarios))
	}

	var bench []struct {
		Scenario  string `json:"scenario"`
		LogSHA256 string `json:"log_sha256"`
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_chaos.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	benchHash := map[string]string{}
	for _, b := range bench {
		benchHash[b.Scenario] = b.LogSHA256
	}

	for i, sc := range scenarios {
		sc := sc
		i := i
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			if h, ok := benchHash[sc.Name]; !ok {
				t.Errorf("BENCH_chaos.json has no %q baseline", sc.Name)
			} else if h != pinned[i] {
				t.Errorf("chaos.txtar pins %s, BENCH_chaos.json records %s", pinned[i], h)
			}
			res := experiments.Chaos(sc.Name, sc.Config)
			if res.LogSHA256 != pinned[i] {
				t.Errorf("experiments.Chaos(%s) log sha256 = %s, chaos.txtar pins %s",
					sc.Name, res.LogSHA256, pinned[i])
			}
		})
	}
}

// TestFleetTxtarParity: the hash pinned in fleet.txtar must equal every
// shard-count baseline in BENCH_fleet.json (the delivery log is shard-count
// invariant). The actual fleet execution happens through the archive in
// TestScenarios; a small two-shard-count run here re-proves the invariance
// property the pin relies on.
func TestFleetTxtarParity(t *testing.T) {
	pinned := pinnedLogHashes(t, filepath.Join("testdata", "scenarios", "fleet.txtar"))
	if len(pinned) != 1 {
		t.Fatalf("fleet.txtar pins %d hashes, want 1", len(pinned))
	}
	var bench struct {
		Runs []struct {
			Phones    int    `json:"phones"`
			Shards    int    `json:"shards"`
			Procs     int    `json:"procs"`
			LogSHA256 string `json:"log_sha256"`
		} `json:"runs"`
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	// The baseline also carries -fleet-scale rows at other fleet sizes; the
	// txtar pin covers the canonical 2000-phone workload at every
	// (shards x procs) split.
	matched := 0
	for _, run := range bench.Runs {
		if run.Phones != 2000 {
			continue
		}
		matched++
		if run.LogSHA256 != pinned[0] {
			t.Errorf("fleet.txtar pins %s, BENCH_fleet.json shards=%d procs=%d records %s",
				pinned[0], run.Shards, run.Procs, run.LogSHA256)
		}
	}
	if matched == 0 {
		t.Fatal("BENCH_fleet.json has no 2000-phone runs")
	}

	small := experiments.Fleet(experiments.FleetScenario(7, 120, 1))
	resharded := experiments.Fleet(experiments.FleetScenario(7, 120, 3))
	if small.LogSHA256 != resharded.LogSHA256 {
		t.Errorf("shard invariance broken: shards=1 %s vs shards=3 %s",
			small.LogSHA256, resharded.LogSHA256)
	}
}

// TestTable4TxtarParity: running the canonical small Table 4 config directly
// through internal/experiments must render byte-identically to the golden
// section the table4.txtar scenario matches against.
func TestTable4TxtarParity(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "scenarios", "table4.txtar"))
	if err != nil {
		t.Fatal(err)
	}
	golden, ok := ParseTxtar(data).File("table4.txt")
	if !ok {
		t.Fatal("table4.txtar has no table4.txt golden section")
	}
	res, err := experiments.Table4(experiments.SmallTable4Config(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := experiments.RenderTable4(res); got != string(golden) {
		t.Errorf("direct experiment rendering differs from the txtar golden\n%s",
			firstDiff([]byte(got), golden))
	}
}
