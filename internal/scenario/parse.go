package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pogo/internal/obs"
)

// Command is one parsed script line.
type Command struct {
	File  string
	Line  int      // 1-based line within the archive file
	Neg   bool     // `! cmd`: the command must fail
	Conds []string // `[cond]` prefixes; all must hold or the line is skipped
	Name  string
	Args  []string
	Raw   string // the line as written, for transcript echo
}

// Errf formats a script error carrying its file:line position — every
// parse- and run-time failure in this package goes through it, so error
// text is always attributable to the scenario line that caused it.
func (c Command) Errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s: %s", c.File, c.Line, c.Name, fmt.Sprintf(format, args...))
}

func parseErrf(file string, line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", file, line, fmt.Sprintf(format, args...))
}

// ParseScript parses the comment section of a scenario archive into its
// command list. Blank lines and lines whose first token starts with `#` are
// skipped. Errors carry file:line.
func ParseScript(file string, comment []byte) ([]Command, error) {
	var cmds []Command
	for i, raw := range strings.Split(string(comment), "\n") {
		lineNo := i + 1
		line := strings.TrimSuffix(raw, "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		toks, err := tokenize(trimmed)
		if err != nil {
			return nil, parseErrf(file, lineNo, "%v", err)
		}
		if len(toks) == 0 {
			continue
		}
		cmd := Command{File: file, Line: lineNo, Raw: trimmed}
		// Condition prefixes, then optional negation, then the name.
		for len(toks) > 0 && strings.HasPrefix(toks[0], "[") {
			t := toks[0]
			if !strings.HasSuffix(t, "]") || len(t) < 3 {
				return nil, parseErrf(file, lineNo, "malformed condition %q (want [cond])", t)
			}
			cmd.Conds = append(cmd.Conds, t[1:len(t)-1])
			toks = toks[1:]
		}
		if len(toks) > 0 && toks[0] == "!" {
			cmd.Neg = true
			toks = toks[1:]
		}
		if len(toks) == 0 {
			return nil, parseErrf(file, lineNo, "conditions and negation but no command")
		}
		if toks[0] == "" {
			return nil, parseErrf(file, lineNo, "empty command name (quoted empty token)")
		}
		cmd.Name = toks[0]
		cmd.Args = toks[1:]
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// tokenize splits a line on spaces, honoring single-quoted tokens
// (testscript style: 'two words'; a doubled ” inside quotes is a literal
// quote).
func tokenize(line string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inTok, quoted := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quoted:
			if c == '\'' {
				if i+1 < len(line) && line[i+1] == '\'' {
					cur.WriteByte('\'')
					i++
					continue
				}
				quoted = false
				continue
			}
			cur.WriteByte(c)
		case c == ' ' || c == '\t':
			if inTok {
				toks = append(toks, cur.String())
				cur.Reset()
				inTok = false
			}
		case c == '\'':
			quoted = true
			inTok = true
		default:
			cur.WriteByte(c)
			inTok = true
		}
	}
	if quoted {
		return nil, fmt.Errorf("unterminated ' quote")
	}
	if inTok {
		toks = append(toks, cur.String())
	}
	return toks, nil
}

// kvArgs splits a command's arguments into leading positional arguments and
// key=value options, validating every key against allowed. Positional
// arguments must precede options.
func kvArgs(c Command, positional int, allowed ...string) ([]string, map[string]string, error) {
	if len(c.Args) < positional {
		return nil, nil, c.Errf("want %d positional argument(s), got %d", positional, len(c.Args))
	}
	pos := c.Args[:positional]
	kv := make(map[string]string)
	for _, a := range c.Args[positional:] {
		eq := strings.IndexByte(a, '=')
		if eq <= 0 {
			return nil, nil, c.Errf("argument %q is not key=value", a)
		}
		k, v := a[:eq], a[eq+1:]
		ok := false
		for _, want := range allowed {
			if k == want {
				ok = true
				break
			}
		}
		if !ok {
			return nil, nil, c.Errf("unknown option %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
		if _, dup := kv[k]; dup {
			return nil, nil, c.Errf("duplicate option %q", k)
		}
		kv[k] = v
	}
	return pos, kv, nil
}

// kvDuration parses an optional duration option ("10m", "1h30m"); def when
// absent.
func kvDuration(c Command, kv map[string]string, key string, def time.Duration) (time.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, c.Errf("bad duration %s=%q: %v", key, v, err)
	}
	if d < 0 {
		return 0, c.Errf("negative duration %s=%q", key, v)
	}
	return d, nil
}

func kvFloat(c Command, kv map[string]string, key string, def float64) (float64, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, c.Errf("bad number %s=%q", key, v)
	}
	return f, nil
}

func kvInt(c Command, kv map[string]string, key string, def int) (int, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, c.Errf("bad integer %s=%q", key, v)
	}
	return n, nil
}

// parseSelector parses a metric selector — name or name{k=v,k2=v2} — into
// its family name and label set.
func parseSelector(s string) (string, []obs.Label, error) {
	open := strings.IndexByte(s, '{')
	if open < 0 {
		if strings.ContainsAny(s, "}=,") {
			return "", nil, fmt.Errorf("malformed selector %q", s)
		}
		return s, nil, nil
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, fmt.Errorf("selector %q: missing closing }", s)
	}
	name := s[:open]
	if name == "" {
		return "", nil, fmt.Errorf("selector %q: empty metric name", s)
	}
	var labels []obs.Label
	body := s[open+1 : len(s)-1]
	if body == "" {
		return name, nil, nil
	}
	for _, part := range strings.Split(body, ",") {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return "", nil, fmt.Errorf("selector %q: label %q is not key=value", s, part)
		}
		labels = append(labels, obs.L(part[:eq], part[eq+1:]))
	}
	return name, labels, nil
}

// cmpOp evaluates `have op want` for the comparison operators the expect
// commands accept.
func cmpOp(op string, have, want float64) (bool, error) {
	switch op {
	case "==":
		return have == want, nil
	case "!=":
		return have != want, nil
	case ">=":
		return have >= want, nil
	case "<=":
		return have <= want, nil
	case ">":
		return have > want, nil
	case "<":
		return have < want, nil
	}
	return false, fmt.Errorf("unknown operator %q (want == != >= <= > <)", op)
}

// formatNum renders a comparison operand without float noise: integers stay
// integers.
func formatNum(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
