package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"pogo/internal/obs"
)

func TestParseScript(t *testing.T) {
	tests := []struct {
		name   string
		src    string
		want   []Command // Raw omitted; filled from src line in the check
		errSub string    // non-empty: parse must fail containing this
	}{
		{
			name: "plain command with args",
			src:  "world_up 50 1 seed=1\n",
			want: []Command{{Line: 1, Name: "world_up", Args: []string{"50", "1", "seed=1"}}},
		},
		{
			name: "comments and blanks are skipped",
			src:  "# a comment\n\n  \nrun\n",
			want: []Command{{Line: 4, Name: "run"}},
		},
		{
			name: "condition prefixes stack",
			src:  "[short] [!race] skip too slow\n",
			want: []Command{{Line: 1, Conds: []string{"short", "!race"}, Name: "skip", Args: []string{"too", "slow"}}},
		},
		{
			name: "negation after conditions",
			src:  "[chaos] ! kill collector\n",
			want: []Command{{Line: 1, Conds: []string{"chaos"}, Neg: true, Name: "kill", Args: []string{"collector"}}},
		},
		{
			name: "quoted tokens keep spaces and doubled quotes",
			src:  "skip 'two words' 'it''s'\n",
			want: []Command{{Line: 1, Name: "skip", Args: []string{"two words", "it's"}}},
		},
		{
			name:   "malformed condition",
			src:    "[short run\n",
			errSub: "f.txtar:1: malformed condition \"[short\"",
		},
		{
			name:   "conditions but no command",
			src:    "[short] !\n",
			errSub: "f.txtar:1: conditions and negation but no command",
		},
		{
			name:   "unterminated quote",
			src:    "run\nskip 'oops\n",
			errSub: "f.txtar:2: unterminated ' quote",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cmds, err := ParseScript("f.txtar", []byte(tc.src))
			if tc.errSub != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errSub) {
					t.Fatalf("err = %v, want containing %q", err, tc.errSub)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := range cmds {
				cmds[i].File, cmds[i].Raw = "", "" // positional fields under test only
				if len(cmds[i].Args) == 0 {
					cmds[i].Args = nil
				}
			}
			if !reflect.DeepEqual(cmds, tc.want) {
				t.Errorf("parsed %#v\nwant   %#v", cmds, tc.want)
			}
		})
	}
}

// Unknown commands parse fine (the DSL is open at parse time) and fail at
// dispatch with a file:line error.
func TestUnknownCommandFailsAtDispatch(t *testing.T) {
	_, err := (&Runner{}).Run("u.txtar", []byte("frobnicate now\n"))
	if err == nil || err.Error() != "u.txtar:1: frobnicate: unknown command" {
		t.Fatalf("err = %v", err)
	}
}

func TestKVArgs(t *testing.T) {
	mk := func(args ...string) Command {
		return Command{File: "f", Line: 1, Name: "cmd", Args: args}
	}
	t.Run("positional then options", func(t *testing.T) {
		pos, kv, err := kvArgs(mk("a", "b", "seed=4", "delay=50ms"), 2, "seed", "delay")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pos, []string{"a", "b"}) {
			t.Errorf("pos = %v", pos)
		}
		if kv["seed"] != "4" || kv["delay"] != "50ms" {
			t.Errorf("kv = %v", kv)
		}
	})
	for _, tc := range []struct {
		name   string
		c      Command
		n      int
		errSub string
	}{
		{"missing positional", mk("a"), 2, "want 2 positional argument(s), got 1"},
		{"bare word where option expected", mk("a", "fast"), 1, `argument "fast" is not key=value`},
		{"unknown option", mk("bogus=1"), 0, `unknown option "bogus"`},
		{"duplicate option", mk("seed=1", "seed=2"), 0, `duplicate option "seed"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := kvArgs(tc.c, tc.n, "seed", "delay")
			if err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Errorf("err = %v, want containing %q", err, tc.errSub)
			}
		})
	}
}

func TestKVTypedOptions(t *testing.T) {
	c := Command{File: "f", Line: 3, Name: "cmd"}
	if d, err := kvDuration(c, map[string]string{"w": "1h30m"}, "w", 0); err != nil || d != 90*time.Minute {
		t.Errorf("1h30m -> %v, %v", d, err)
	}
	if d, err := kvDuration(c, nil, "w", 10*time.Minute); err != nil || d != 10*time.Minute {
		t.Errorf("default -> %v, %v", d, err)
	}
	if _, err := kvDuration(c, map[string]string{"w": "-5s"}, "w", 0); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := kvDuration(c, map[string]string{"w": "10 minutes"}, "w", 0); err == nil {
		t.Error("malformed duration accepted")
	}
	if f, err := kvFloat(c, map[string]string{"d": "0.25"}, "d", 0); err != nil || f != 0.25 {
		t.Errorf("0.25 -> %v, %v", f, err)
	}
	if _, err := kvFloat(c, map[string]string{"d": "x"}, "d", 0); err == nil {
		t.Error("malformed float accepted")
	}
	if n, err := kvInt(c, map[string]string{"n": "42"}, "n", 0); err != nil || n != 42 {
		t.Errorf("42 -> %v, %v", n, err)
	}
	if _, err := kvInt(c, map[string]string{"n": "4.2"}, "n", 0); err == nil {
		t.Error("non-integer accepted")
	}
}

func TestParseSelector(t *testing.T) {
	tests := []struct {
		sel    string
		name   string
		labels []obs.Label
		bad    bool
	}{
		{sel: "transport_retries_total", name: "transport_retries_total"},
		{sel: "m{}", name: "m"},
		{sel: "m{a=1}", name: "m", labels: []obs.Label{obs.L("a", "1")}},
		{
			sel:    "pogo_entity_uplink_bytes_total{device=devA,script=scan.js}",
			name:   "pogo_entity_uplink_bytes_total",
			labels: []obs.Label{obs.L("device", "devA"), obs.L("script", "scan.js")},
		},
		{sel: "m{a=1", bad: true},  // missing }
		{sel: "{a=1}", bad: true},  // empty name
		{sel: "m{a}", bad: true},   // label not k=v
		{sel: "m}a=1{", bad: true}, // stray braces
		{sel: "name=value", bad: true},
	}
	for _, tc := range tests {
		name, labels, err := parseSelector(tc.sel)
		if tc.bad {
			if err == nil {
				t.Errorf("parseSelector(%q) accepted", tc.sel)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSelector(%q): %v", tc.sel, err)
			continue
		}
		if name != tc.name || !reflect.DeepEqual(labels, tc.labels) {
			t.Errorf("parseSelector(%q) = %q %v, want %q %v", tc.sel, name, labels, tc.name, tc.labels)
		}
	}
}

func TestCmpOp(t *testing.T) {
	tests := []struct {
		op         string
		have, want float64
		ok         bool
	}{
		{"==", 3, 3, true}, {"==", 3, 4, false},
		{"!=", 3, 4, true}, {"!=", 3, 3, false},
		{">=", 3, 3, true}, {">=", 2, 3, false},
		{"<=", 3, 3, true}, {"<=", 4, 3, false},
		{">", 4, 3, true}, {">", 3, 3, false},
		{"<", 2, 3, true}, {"<", 3, 3, false},
	}
	for _, tc := range tests {
		got, err := cmpOp(tc.op, tc.have, tc.want)
		if err != nil || got != tc.ok {
			t.Errorf("cmpOp(%q, %v, %v) = %v, %v; want %v", tc.op, tc.have, tc.want, got, err, tc.ok)
		}
	}
	if _, err := cmpOp("=", 1, 1); err == nil {
		t.Error(`cmpOp("=") accepted`)
	}
}

func TestFormatNum(t *testing.T) {
	if s := formatNum(1150); s != "1150" {
		t.Errorf("formatNum(1150) = %q", s)
	}
	if s := formatNum(0.05); s != "0.05" {
		t.Errorf("formatNum(0.05) = %q", s)
	}
}

func TestTxtarRoundTrip(t *testing.T) {
	src := "run\n-- a.txt --\nhello\n-- b.txt --\nno trailing newline"
	arch := ParseTxtar([]byte(src))
	if string(arch.Comment) != "run\n" {
		t.Errorf("comment = %q", arch.Comment)
	}
	if data, ok := arch.File("b.txt"); !ok || string(data) != "no trailing newline\n" {
		t.Errorf("b.txt = %q, %v (want newline restored)", data, ok)
	}
	arch.SetFile("a.txt", []byte("replaced\n"))
	arch.SetFile("c.txt", []byte("appended\n"))
	out := FormatTxtar(arch)
	want := "run\n-- a.txt --\nreplaced\n-- b.txt --\nno trailing newline\n-- c.txt --\nappended\n"
	if string(out) != want {
		t.Errorf("FormatTxtar = %q\nwant         %q", out, want)
	}
	if again := FormatTxtar(ParseTxtar(out)); string(again) != want {
		t.Errorf("Parse/Format round trip drifted: %q", again)
	}
}
