//go:build !race

package scenario

// raceEnabled backs the [race] condition prefix: false in a normal build.
const raceEnabled = false
