//go:build race

package scenario

// raceEnabled backs the [race] condition prefix: true when the binary was
// built with the race detector.
const raceEnabled = true
