package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden sections in scenario archives")

// TestScenarios runs every checked-in scenario archive and enforces the
// determinism contract: a second same-seed run through a fresh Runner must
// produce a byte-identical transcript. With -update, golden sections are
// regenerated in place instead.
func TestScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.txtar"))
	if err != nil {
		t.Fatal(err)
	}
	const minScenarios = 12
	if len(files) < minScenarios {
		t.Fatalf("scenario library has %d archives, want at least %d", len(files), minScenarios)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			t.Parallel()
			r := &Runner{Short: testing.Short(), Update: *update}
			res, err := r.RunFile(file)
			if err != nil {
				t.Fatalf("run: %v\ntranscript so far:\n%s", err, res.Transcript)
			}
			if res.Skipped {
				t.Skip(res.SkipReason)
			}
			if *update {
				if res.Updated {
					if err := os.WriteFile(file, res.Archive, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("goldens updated")
				}
				return // an -update transcript legitimately differs
			}

			again, err := (&Runner{Short: testing.Short()}).RunFile(file)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !bytes.Equal(res.Transcript, again.Transcript) {
				t.Errorf("transcripts differ between same-seed runs\n%s",
					firstDiff(again.Transcript, res.Transcript))
			}
		})
	}
}

// TestRunnerReportsTranscriptOnFailure: a failing script still yields the
// transcript up to the failing line, and the error names file:line.
func TestRunnerReportsTranscriptOnFailure(t *testing.T) {
	src := []byte("world_up 2 1 seed=3\nexpect_stat duplicated == 1\n")
	res, err := (&Runner{}).Run("fail.txtar", src)
	if err == nil {
		t.Fatal("want an error from the failing assertion")
	}
	if got, want := err.Error(), "fail.txtar:2: expect_stat: duplicated = 0, want == 1"; got != want {
		t.Errorf("error = %q, want %q", got, want)
	}
	if !bytes.Contains(res.Transcript, []byte("world: chaos phones=2")) {
		t.Errorf("transcript up to the failure is missing:\n%s", res.Transcript)
	}
}

// TestRunnerNegationFailsOnSuccess: `! cmd` must fail the run when the
// command unexpectedly succeeds.
func TestRunnerNegationFailsOnSuccess(t *testing.T) {
	src := []byte("world_up 2 1\n! expect_stat rounds > 0\n")
	if _, err := (&Runner{}).Run("neg.txtar", src); err == nil {
		t.Fatal("negated command succeeded but the run passed")
	}
}

// TestRunnerShortSkip: [short] prefixes run only under -short, and the
// skipped line is echoed with a ~ sigil so transcripts stay comparable
// within one mode.
func TestRunnerShortSkip(t *testing.T) {
	src := []byte("[short] skip small machines only\nworld_up 2 1\n")
	res, err := (&Runner{Short: true}).Run("short.txtar", src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped || res.SkipReason != "small machines only" {
		t.Errorf("Skipped=%v reason=%q, want skip with reason", res.Skipped, res.SkipReason)
	}
	res, err = (&Runner{}).Run("short.txtar", src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Error("skipped without -short")
	}
	if !bytes.Contains(res.Transcript, []byte("~ [short] skip")) {
		t.Errorf("condition-skipped line not echoed with ~:\n%s", res.Transcript)
	}
}
