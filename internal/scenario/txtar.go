// Package scenario is the txtar-scripted testbed layer: declarative,
// diffable scenario files that drive the simulated Pogo world — chaos
// testbeds, sharded fleets, paper-table experiments, and scripted
// deployments — entirely on the virtual clock, so a seed yields
// byte-identical transcripts on every run.
//
// A scenario is one txtar archive. The comment section is the script: one
// command per line (`world_up 50 1 seed=1`, `advance 10m`,
// `expect_log_sha256 <hex>`), with `#` comments, `! cmd` expected-failure
// negation, and `[cond]` prefixes (`[short] skip`, `[shards:2] ...`). The
// file sections hold goldens for `match_file` and PogoScript sources for
// `deploy`. See DESIGN.md "Scenario DSL" for the command set and the
// determinism contract.
package scenario

import (
	"bytes"
	"strings"
)

// File is one named section of a scenario archive.
type File struct {
	Name string
	Data []byte
}

// Archive is a parsed txtar file: a comment (the scenario script) followed
// by named file sections. The format is the txtar format of
// golang.org/x/tools/txtar, reimplemented here to keep the module
// dependency-free.
type Archive struct {
	Comment []byte
	Files   []File
}

// ParseTxtar parses data as a txtar archive. The format cannot fail: any
// input is a valid archive (possibly all comment), so no error is returned.
// Lost trailing newlines are restored, as in the reference implementation.
func ParseTxtar(data []byte) *Archive {
	a := &Archive{}
	var name string
	a.Comment, name, data = findMarker(data)
	for name != "" {
		f := File{Name: name}
		f.Data, name, data = findMarker(data)
		a.Files = append(a.Files, f)
	}
	return a
}

// File returns the named section's contents and whether it exists.
func (a *Archive) File(name string) ([]byte, bool) {
	for _, f := range a.Files {
		if f.Name == name {
			return f.Data, true
		}
	}
	return nil, false
}

// SetFile replaces (or appends) the named section — the `-update` golden
// regeneration path.
func (a *Archive) SetFile(name string, data []byte) {
	for i := range a.Files {
		if a.Files[i].Name == name {
			a.Files[i].Data = data
			return
		}
	}
	a.Files = append(a.Files, File{Name: name, Data: data})
}

// FormatTxtar serializes the archive back to txtar bytes. Parse∘Format is
// the identity on Format's output (fuzzed in FuzzScenarioParse).
func FormatTxtar(a *Archive) []byte {
	var buf bytes.Buffer
	buf.Write(fixNL(a.Comment))
	for _, f := range a.Files {
		buf.WriteString("-- " + f.Name + " --\n")
		buf.Write(fixNL(f.Data))
	}
	return buf.Bytes()
}

// findMarker scans data for the next `-- name --` marker line, returning the
// bytes before it (newline-fixed), the marker's name ("" when no marker
// remains), and the bytes after the marker line.
func findMarker(data []byte) (before []byte, name string, after []byte) {
	rest := data
	consumed := 0
	for len(rest) > 0 {
		line := rest
		nl := bytes.IndexByte(rest, '\n')
		lineLen := len(rest)
		if nl >= 0 {
			line = rest[:nl]
			lineLen = nl + 1
		}
		if n, ok := isMarker(line); ok {
			return fixNL(data[:consumed]), n, rest[lineLen:]
		}
		consumed += lineLen
		rest = rest[lineLen:]
	}
	return fixNL(data), "", nil
}

// isMarker reports whether line is a txtar section marker and extracts its
// trimmed name. A marker is `-- name --` with a non-empty name.
func isMarker(line []byte) (string, bool) {
	line = bytes.TrimSuffix(line, []byte("\r"))
	// The length guard keeps the overlapping prefix/suffix checks honest:
	// `-- --` must not pass as a marker with a negative-width name.
	if len(line) < len("--  --") ||
		!bytes.HasPrefix(line, []byte("-- ")) || !bytes.HasSuffix(line, []byte(" --")) {
		return "", false
	}
	name := strings.TrimSpace(string(line[3 : len(line)-3]))
	if name == "" {
		return "", false
	}
	return name, true
}

// fixNL guarantees content ends with a newline (txtar sections always do).
func fixNL(data []byte) []byte {
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return data
	}
	out := make([]byte, len(data)+1)
	copy(out, data)
	out[len(data)] = '\n'
	return out
}
