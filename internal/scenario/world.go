package scenario

import (
	"fmt"
	"path"
	"strings"
	"time"

	"pogo/internal/android"
	"pogo/internal/core"
	"pogo/internal/energy"
	"pogo/internal/env"
	"pogo/internal/experiments"
	"pogo/internal/obs"
	"pogo/internal/radio"
	"pogo/internal/sensors"
	"pogo/internal/store"
	"pogo/internal/transport"
	"pogo/internal/vclock"
)

// Execution modes. A scenario picks one with its world-up command; most
// commands are only meaningful in some modes and error in the others.
const (
	modeNone  = ""      // no world yet: table3/table4 run self-contained
	modeChaos = "chaos" // interactive ChaosWorld (single collector)
	modeFleet = "fleet" // sharded fleet; config staged, `run` executes wholesale
	modePogo  = "pogo"  // full Pogo nodes: deploy scripts, subscribe, go offline
)

// chaosState wraps the interactive chaos testbed: the world, the round
// cursor, and the fault mix as last set (ChaosConfig does not track
// SetFaults, so scripted inject_fault merges against this copy).
type chaosState struct {
	w    *experiments.ChaosWorld
	next int  // next injection round to run
	ran  bool // Drain has happened (via run or drain)

	drop, dup, corrupt float64
	delay              time.Duration
}

func newChaosState(cfg experiments.ChaosConfig) *chaosState {
	w := experiments.NewChaosWorld(cfg)
	rc := w.Config()
	return &chaosState{
		w: w, drop: rc.Drop, dup: rc.Duplicate, corrupt: rc.Corrupt, delay: rc.MaxDelay,
	}
}

// matchEntities expands a glob over the chaos world's entity names.
func (cs *chaosState) matchEntities(pattern string) ([]string, error) {
	var out []string
	for _, name := range cs.w.EntityNames() {
		ok, err := path.Match(pattern, name)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %q: %v", pattern, err)
		}
		if ok {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pattern %q matches no entity", pattern)
	}
	return out, nil
}

// pogoState is the deploy-mode world: one collector node and one phone node
// joined by a switchboard, with the modem/battery stack of the power
// experiments so tail-sync, energy accounting, and offline buffering all
// behave as in §5.2.
type pogoState struct {
	clk   *vclock.Sim
	sb    *transport.Switchboard
	conn  *radio.Connectivity
	modem *radio.Modem
	droid *android.Device
	col   *core.Node
	dev   *core.Node
	stops []func()
}

func newPogoState(reg *obs.Registry, carrier radio.CarrierProfile, flushEvery time.Duration) (*pogoState, error) {
	p := &pogoState{}
	p.clk = vclock.NewSim()
	p.sb = transport.NewSwitchboard(p.clk)
	meter := energy.NewMeter(p.clk)
	p.droid = android.NewDevice(p.clk, meter, android.Config{})
	p.modem = radio.NewModem(p.clk, meter, carrier)
	p.conn = radio.NewConnectivity(p.modem, nil)

	p.sb.Associate("collector", "phone")
	col, err := core.NewNode(core.Config{
		ID: "collector", Mode: core.CollectorMode, Clock: p.clk,
		Messenger: p.sb.Port("collector", nil), Obs: reg,
	})
	if err != nil {
		return nil, err
	}
	policy, every := core.FlushTailSync, time.Hour
	if flushEvery > 0 {
		policy, every = core.FlushInterval, flushEvery
	}
	dev, err := core.NewNode(core.Config{
		ID: "phone", Mode: core.DeviceMode, Clock: p.clk,
		Messenger: p.sb.Port("phone", p.conn),
		Device:    p.droid, Modem: p.modem, Storage: store.NewMemKV(),
		FlushPolicy: policy, FlushEvery: every, Obs: reg,
	})
	if err != nil {
		col.Close()
		return nil, err
	}
	dev.Sensors().Register(sensors.NewBatterySensor(dev.Sensors(), p.droid))
	p.col, p.dev = col, dev
	if reg != nil {
		p.stops = append(p.stops,
			meter.Instrument(reg, "phone", "modem"),
			p.modem.Instrument(reg, "phone"))
	}
	return p, nil
}

func (p *pogoState) close() {
	for _, stop := range p.stops {
		stop()
	}
	p.stops = nil
	if p.dev != nil {
		p.dev.Close()
	}
	if p.col != nil {
		p.col.Close()
	}
}

// node returns the named pogo-mode node.
func (p *pogoState) node(name string) (*core.Node, error) {
	switch name {
	case "collector":
		return p.col, nil
	case "phone":
		return p.dev, nil
	}
	return nil, fmt.Errorf("unknown node %q (want phone or collector)", name)
}

// Thin radio indirections so engine.go stays free of the radio import.
func radioDefaultCarrier() radio.CarrierProfile { return radio.KPN }
func radioInterfaceNone() radio.Interface       { return radio.InterfaceNone }
func radioInterfaceCellular() radio.Interface   { return radio.InterfaceCellular }

// carrierByName resolves a carrier option value ("kpn", "t-mobile",
// "vodafone", case-insensitive).
func carrierByName(name string) (radio.CarrierProfile, error) {
	for _, c := range radio.Carriers() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return radio.CarrierProfile{}, fmt.Errorf("unknown carrier %q", name)
}

// crowdAt builds the seeded synthetic world of §5.3 and reports which of the
// first `users` user schedules dwell at the named shared place at instant
// `at` past the schedule start. The result depends only on (seed, users,
// place, at) — the schedules are generated, never simulated — so it is safe
// to drive chaos-world traffic from it.
func crowdAt(seed int64, users int, place string, at time.Duration) ([]int, error) {
	world := env.NewWorld(seed)
	found := false
	for _, p := range world.SharedPlaces {
		if p.Name == place {
			found = true
			break
		}
	}
	if !found {
		names := make([]string, len(world.SharedPlaces))
		for i, p := range world.SharedPlaces {
			names[i] = p.Name
		}
		return nil, fmt.Errorf("unknown place %q (shared places: %s)", place, strings.Join(names, ", "))
	}
	days := int(at/(24*time.Hour)) + 1
	start := vclock.SimEpoch
	var members []int
	for i := 0; i < users; i++ {
		sched := world.GenerateSchedule(fmt.Sprintf("user%02d", i), env.ScheduleConfig{
			Start: start, Days: days, Seed: seed + int64(i),
		})
		if p := sched.At(start.Add(at)); p != nil && p.Name == place {
			members = append(members, i)
		}
	}
	return members, nil
}
