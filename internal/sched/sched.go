// Package sched implements Pogo's task scheduler (§4.5 of the paper).
//
// The scheduler abstracts away the complexities of setting alarms and
// managing wake locks: components submit (optionally delayed) tasks; on a
// phone the scheduler sets an RTC wake-up alarm so the task runs even if the
// CPU is deep asleep, and holds a wake lock for the duration of the task so
// asynchronous work (a Wi-Fi scan completing, a network write) is not cut
// short. When there are no tasks to execute the CPU can safely go to sleep.
//
// On collector nodes (desktop PCs) there is no Device and tasks are simply
// timed callbacks.
package sched

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pogo/internal/android"
	"pogo/internal/obs"
	"pogo/internal/vclock"
)

// Scheduler runs submitted tasks, waking the device for them when one is
// attached. The zero value is not usable; construct with New.
type Scheduler struct {
	clk vclock.Clock
	dev *android.Device // nil on collector nodes

	nextID atomic.Int64

	mu     sync.Mutex
	closed bool
	timers map[int64]vclock.Timer

	// Instruments; nil (no-op) until Instrument is called.
	scheduled *obs.Counter
	ran       *obs.Counter
	wakeups   *obs.Counter
	ledger    *obs.Ledger
	entity    string
	owner     func(taskName string) string
}

// Instrument attaches the scheduler to a metrics registry; node labels the
// metrics and entity is the ledger device axis that CPU wakeups are charged
// to (usually the node ID). Call before tasks are submitted.
func (s *Scheduler) Instrument(reg *obs.Registry, node, entity string) {
	if reg == nil {
		return
	}
	l := obs.L("node", node)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scheduled = reg.Counter("sched_tasks_scheduled_total", l)
	s.ran = reg.Counter("sched_tasks_run_total", l)
	s.wakeups = reg.Counter("sched_cpu_wakeups_total", l)
	s.ledger = reg.Ledger()
	s.entity = entity
}

// SetTaskOwner installs the task-name → script-name mapping used to charge
// CPU wakeups to the script that caused them. The scheduler itself knows
// nothing about task naming conventions; core installs one that strips its
// "script-"/"timeout-" prefixes. Tasks that map to "" charge the device
// entity (middleware overhead).
func (s *Scheduler) SetTaskOwner(fn func(taskName string) string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.owner = fn
}

// chargeWakeup books one alarm-caused CPU wakeup: the device will stay awake
// for at least a linger window on behalf of this task, so those milliseconds
// are attributed to the task's owning script.
func (s *Scheduler) chargeWakeup(name string) {
	s.mu.Lock()
	wakeups, ledger, entity, owner := s.wakeups, s.ledger, s.entity, s.owner
	s.mu.Unlock()
	wakeups.Inc()
	if ledger == nil {
		return
	}
	script := ""
	if owner != nil {
		script = owner(name)
	}
	ledger.Meter(entity, script, "").AddWake(s.dev.Linger().Milliseconds())
}

// New returns a scheduler. dev may be nil (collector mode).
func New(clk vclock.Clock, dev *android.Device) *Scheduler {
	return &Scheduler{clk: clk, dev: dev, timers: make(map[int64]vclock.Timer)}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() vclock.Clock { return s.clk }

// Device returns the attached device, or nil on a collector node.
func (s *Scheduler) Device() *android.Device { return s.dev }

// Submit runs task as soon as possible (at the current instant in simulated
// time), holding a wake lock around it on a device.
func (s *Scheduler) Submit(name string, task func()) {
	s.After(0, name, task)
}

// After schedules task to run after delay. On a device the underlying timer
// is an RTC wake-up alarm, so the task runs on schedule even if the CPU is
// asleep; a wake lock named after the task is held while it executes. The
// returned Timer cancels the task if it has not started.
func (s *Scheduler) After(delay time.Duration, name string, task func()) vclock.Timer {
	id := s.nextID.Add(1)
	s.mu.Lock()
	scheduled, ran := s.scheduled, s.ran
	s.mu.Unlock()
	scheduled.Inc()
	run := func() {
		s.forget(id)
		if s.isClosed() {
			return
		}
		ran.Inc()
		if s.dev != nil {
			lock := "sched-" + name + "-" + strconv.FormatInt(id, 10)
			s.dev.AcquireWakeLock(lock)
			defer s.dev.ReleaseWakeLock(lock)
		}
		task()
	}
	var tm vclock.Timer
	if s.dev != nil {
		tm = s.dev.SetAlarmInfo(delay, func(wokeCPU bool) {
			if wokeCPU {
				s.chargeWakeup(name)
			}
			run()
		})
	} else {
		tm = s.clk.AfterFunc(delay, run)
	}
	s.mu.Lock()
	if !s.closed {
		s.timers[id] = tm
	}
	s.mu.Unlock()
	return tm
}

// Every schedules task at a fixed period until the returned stop function is
// called (or the scheduler closes). The first run happens one period from
// now.
func (s *Scheduler) Every(period time.Duration, name string, task func()) (stop func()) {
	var (
		mu      sync.Mutex
		stopped bool
		cur     vclock.Timer
	)
	var tick func()
	tick = func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		cur = s.After(period, name, tick)
		mu.Unlock()
		task()
	}
	mu.Lock()
	cur = s.After(period, name, tick)
	mu.Unlock()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
		if cur != nil {
			cur.Stop()
		}
	}
}

// Close cancels all pending tasks and rejects future ones from running.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	timers := s.timers
	s.timers = map[int64]vclock.Timer{}
	s.mu.Unlock()
	for _, tm := range timers {
		tm.Stop()
	}
}

func (s *Scheduler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Scheduler) forget(id int64) {
	s.mu.Lock()
	delete(s.timers, id)
	s.mu.Unlock()
}

// SerialQueue serializes task execution for one script: JavaScript has no
// concurrency facilities, so although multiple framework threads may call
// into a script (subscriptions, timeouts), only one runs script code at a
// time (§4.5).
type SerialQueue struct {
	mu sync.Mutex
}

// Do runs fn while holding the queue's lock.
func (q *SerialQueue) Do(fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	fn()
}
