package sched

import (
	"sync"
	"testing"
	"time"

	"pogo/internal/android"
	"pogo/internal/energy"
	"pogo/internal/vclock"
)

func TestSubmitRunsTask(t *testing.T) {
	clk := vclock.NewSim()
	s := New(clk, nil)
	ran := false
	s.Submit("t", func() { ran = true })
	clk.Advance(0)
	if !ran {
		t.Error("task never ran")
	}
}

func TestAfterDelays(t *testing.T) {
	clk := vclock.NewSim()
	s := New(clk, nil)
	var at time.Time
	s.After(10*time.Second, "t", func() { at = clk.Now() })
	clk.Advance(time.Minute)
	if !at.Equal(vclock.SimEpoch.Add(10 * time.Second)) {
		t.Errorf("ran at %v", at)
	}
}

func TestAfterCancel(t *testing.T) {
	clk := vclock.NewSim()
	s := New(clk, nil)
	tm := s.After(time.Second, "t", func() { t.Error("cancelled task ran") })
	tm.Stop()
	clk.Advance(time.Minute)
}

func TestDeviceTaskWakesCPUAndHoldsLock(t *testing.T) {
	clk := vclock.NewSim()
	meter := energy.NewMeter(clk)
	dev := android.NewDevice(clk, meter, android.Config{})
	s := New(clk, dev)
	clk.Advance(time.Hour) // device asleep
	if dev.Awake() {
		t.Fatal("setup: device awake")
	}
	var awakeDuring, lockDuring bool
	s.After(time.Minute, "probe", func() {
		awakeDuring = dev.Awake()
		lockDuring = dev.WakeLocksHeld() > 0
	})
	clk.Advance(2 * time.Minute)
	if !awakeDuring {
		t.Error("CPU asleep during scheduled task")
	}
	if !lockDuring {
		t.Error("no wake lock held during task")
	}
	if dev.WakeLocksHeld() != 0 {
		t.Error("wake lock leaked after task")
	}
	clk.Advance(5 * time.Second)
	if dev.Awake() {
		t.Error("device did not go back to sleep after task")
	}
}

func TestEveryPeriodic(t *testing.T) {
	clk := vclock.NewSim()
	s := New(clk, nil)
	count := 0
	stop := s.Every(time.Minute, "tick", func() { count++ })
	clk.Advance(5*time.Minute + time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	stop()
	stop() // idempotent
	clk.Advance(time.Hour)
	if count != 5 {
		t.Errorf("count = %d after stop, want 5", count)
	}
}

func TestEveryOnDeviceSamplesThroughSleep(t *testing.T) {
	// The battery sensor scenario: sampling once per minute must work even
	// though the CPU deep-sleeps between samples — Every uses RTC alarms.
	clk := vclock.NewSim()
	dev := android.NewDevice(clk, nil, android.Config{})
	s := New(clk, dev)
	count := 0
	s.Every(time.Minute, "battery", func() { count++ })
	clk.Advance(time.Hour)
	if count != 60 {
		t.Errorf("count = %d, want 60", count)
	}
}

func TestCloseCancelsPending(t *testing.T) {
	clk := vclock.NewSim()
	s := New(clk, nil)
	ran := 0
	s.After(time.Second, "a", func() { ran++ })
	s.After(2*time.Second, "b", func() { ran++ })
	s.Close()
	clk.Advance(time.Minute)
	if ran != 0 {
		t.Errorf("ran = %d after Close", ran)
	}
	// Tasks submitted after Close never run.
	s.Submit("late", func() { ran++ })
	clk.Advance(time.Minute)
	if ran != 0 {
		t.Errorf("ran = %d, post-Close submit executed", ran)
	}
}

func TestAccessors(t *testing.T) {
	clk := vclock.NewSim()
	dev := android.NewDevice(clk, nil, android.Config{})
	s := New(clk, dev)
	if s.Clock() != vclock.Clock(clk) || s.Device() != dev {
		t.Error("accessors wrong")
	}
}

func TestSerialQueueMutualExclusion(t *testing.T) {
	var q SerialQueue
	active := 0
	maxActive := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Do(func() {
				mu.Lock()
				active++
				if active > maxActive {
					maxActive = active
				}
				mu.Unlock()
				mu.Lock()
				active--
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if maxActive != 1 {
		t.Errorf("maxActive = %d, want 1", maxActive)
	}
}
