package script

import (
	"fmt"
	"strings"
	"testing"

	"pogo/internal/msg"
	"pogo/internal/script/scripts"
)

// These tests run the paper's bundled applications against a bare host.

func startBundled(t *testing.T, name string) (*testHost, *Script) {
	t.Helper()
	src, err := scripts.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHost()
	s, err := New(name, src, h, Config{})
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	return h, s
}

func TestAllBundledScriptsParseAndStart(t *testing.T) {
	for _, name := range scripts.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			h, s := startBundled(t, name)
			if len(h.errs) != 0 {
				t.Errorf("errors: %v", h.errs)
			}
			if s.Description() == "" {
				t.Error("no setDescription")
			}
		})
	}
}

// scanMsg builds a wifi-scan sensor message.
func scanMsg(t float64, aps map[string]float64, local ...string) msg.Map {
	isLocal := map[string]bool{}
	for _, l := range local {
		isLocal[l] = true
	}
	var list []msg.Value
	for bssid, rssi := range aps {
		list = append(list, msg.Map{
			"bssid": bssid, "ssid": "net-" + bssid, "rssi": rssi, "local": isLocal[bssid],
		})
	}
	return msg.Map{"aps": list, "timestamp": t}
}

func TestScanJSSanitizes(t *testing.T) {
	h, _ := startBundled(t, "scan.js")
	if len(h.subs) != 1 || h.subs[0].channel != "wifi-scan" {
		t.Fatalf("subs = %+v", h.subs)
	}
	iv, _ := msg.GetNumber(h.subs[0].params, "interval")
	if iv != 60000 {
		t.Errorf("interval param = %v", iv)
	}

	h.subs[0].handler(scanMsg(1000, map[string]float64{
		"aa":     -55,   // → 1.0
		"bb":     -100,  // → 0.0
		"cc":     -77.5, // → 0.5
		"dd":     -40,   // clamps to 1.0
		"tether": -30,
	}, "tether"), "")

	if len(h.published) != 1 {
		t.Fatalf("published = %v", h.published)
	}
	out := h.published[0].payload.(msg.Map)
	aps := out["aps"].(msg.Map)
	if _, hasTether := aps["tether"]; hasTether {
		t.Error("locally administered AP not removed")
	}
	if aps["aa"].(float64) != 1.0 || aps["bb"].(float64) != 0.0 || aps["dd"].(float64) != 1.0 {
		t.Errorf("normalization wrong: %v", aps)
	}
	if v := aps["cc"].(float64); v < 0.49 || v > 0.51 {
		t.Errorf("cc = %v, want 0.5", v)
	}

	// A scan with only local APs publishes nothing.
	h.published = nil
	h.subs[0].handler(scanMsg(2000, map[string]float64{"x": -50}, "x"), "")
	if len(h.published) != 0 {
		t.Error("all-local scan was published")
	}
}

// sanitized builds a 'scans' channel message as scan.js would emit it.
func sanitized(t float64, aps map[string]float64) msg.Map {
	m := msg.Map{}
	for k, v := range aps {
		m[k] = v
	}
	return msg.Map{"t": t, "aps": m}
}

func TestClusteringJSFindsDwell(t *testing.T) {
	h, _ := startBundled(t, "clustering.js")
	if len(h.subs) != 1 || h.subs[0].channel != "scans" {
		t.Fatalf("subs = %+v", h.subs)
	}
	feed := h.subs[0].handler

	home := map[string]float64{"h1": 0.9, "h2": 0.7, "h3": 0.5}
	office := map[string]float64{"o1": 0.8, "o2": 0.6}
	// 20 samples at home → dwell; then office samples close the cluster.
	for i := 0; i < 20; i++ {
		feed(sanitized(float64(1000+i*60), home), "")
	}
	if len(h.published) != 0 {
		t.Fatal("cluster closed while still dwelling")
	}
	for i := 0; i < 8; i++ {
		feed(sanitized(float64(3000+i*60), office), "")
	}
	if len(h.published) != 1 {
		t.Fatalf("published = %d, want 1 closed cluster", len(h.published))
	}
	c := h.published[0].payload.(msg.Map)
	if c["enter"].(float64) != 1000 {
		t.Errorf("enter = %v", c["enter"])
	}
	if n := c["samples"].(float64); n < 15 {
		t.Errorf("samples = %v", n)
	}
	aps := c["aps"].(msg.Map)
	if _, ok := aps["h1"]; !ok {
		t.Errorf("characterization lost home APs: %v", aps)
	}
	if h.published[0].channel != "clusters" {
		t.Errorf("channel = %s", h.published[0].channel)
	}
}

func TestClusteringJSNoisyScansNoCluster(t *testing.T) {
	h, _ := startBundled(t, "clustering.js")
	feed := h.subs[0].handler
	// Every scan sees a different AP set: never enough neighbours.
	for i := 0; i < 30; i++ {
		feed(sanitized(float64(i*60), map[string]float64{
			fmt.Sprintf("ap-%d", i): 0.9,
		}), "")
	}
	if len(h.published) != 0 {
		t.Errorf("published %d clusters from noise", len(h.published))
	}
}

func TestClusteringJSFreezeRestoresState(t *testing.T) {
	h, s := startBundled(t, "clustering.js")
	feed := h.subs[0].handler
	home := map[string]float64{"h1": 0.9, "h2": 0.7}
	for i := 0; i < 10; i++ {
		feed(sanitized(float64(1000+i*60), home), "")
	}
	if _, ok := h.frozen["clustering.js"]; !ok {
		t.Fatal("no frozen state")
	}
	s.Stop()

	// "Script update": new instance, same host storage.
	src, _ := scripts.Source("clustering.js")
	s2, err := New("clustering.js", src, h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	feed2 := h.subs[len(h.subs)-1].handler
	// Move away: the restored cluster closes with the ORIGINAL enter time.
	for i := 0; i < 3; i++ {
		feed2(sanitized(float64(9000+i*60), map[string]float64{"elsewhere": 1.0}), "")
	}
	if len(h.published) != 1 {
		t.Fatalf("published = %d", len(h.published))
	}
	c := h.published[0].payload.(msg.Map)
	if c["enter"].(float64) != 1000 {
		t.Errorf("enter = %v, want 1000 (state survived restart)", c["enter"])
	}
}

func TestCollectJSGeocodesAndLogs(t *testing.T) {
	h, _ := startBundled(t, "collect.js")
	if len(h.subs) != 2 {
		t.Fatalf("subs = %d", len(h.subs))
	}
	var clustersIn, geoIn func(msg.Value, string)
	for _, sub := range h.subs {
		switch sub.channel {
		case "clusters":
			clustersIn = sub.handler
		case "geo-result":
			geoIn = sub.handler
		}
	}
	if clustersIn == nil || geoIn == nil {
		t.Fatal("missing subscriptions")
	}

	clustersIn(msg.Map{
		"enter": 1000.0, "exit": 2000.0, "samples": 12.0,
		"aps": msg.Map{"h1": 0.9},
	}, "device7")
	if len(h.published) != 1 || h.published[0].channel != "geo-lookup" {
		t.Fatalf("published = %+v", h.published)
	}
	req := h.published[0].payload.(msg.Map)
	id := req["id"].(string)

	geoIn(msg.Map{"id": id, "lat": 52.0, "lon": 4.35}, "")
	if len(h.logs) != 1 {
		t.Fatalf("logs = %v", h.logs)
	}
	if !strings.HasPrefix(h.logs[0], "places|") {
		t.Errorf("log target: %q", h.logs[0])
	}
	if !strings.Contains(h.logs[0], `"device":"device7"`) || !strings.Contains(h.logs[0], `"lat":52`) {
		t.Errorf("log line: %q", h.logs[0])
	}
	// Unknown geo-result id is ignored.
	geoIn(msg.Map{"id": "bogus", "lat": 1.0, "lon": 1.0}, "")
	if len(h.logs) != 1 {
		t.Error("bogus geo-result logged")
	}
}

func TestRogueFinderGeofencing(t *testing.T) {
	h, _ := startBundled(t, "roguefinder.js")
	var wifiSub *testSub
	var locIn func(msg.Value, string)
	for _, sub := range h.subs {
		switch sub.channel {
		case "wifi-scan":
			wifiSub = sub
		case "location":
			locIn = sub.handler
		}
	}
	if wifiSub == nil || locIn == nil {
		t.Fatal("missing subscriptions")
	}
	// Released immediately at start (Listing 2 line 9).
	if wifiSub.active {
		t.Fatal("wifi-scan subscription not released at start")
	}

	// Inside the polygon {1,1},{2,2},{3,0}: its centroid (2, 1).
	locIn(msg.Map{"lat": 2.0, "lon": 1.0}, "")
	if !wifiSub.active {
		t.Error("subscription not renewed inside polygon")
	}
	// Scans inside the area are forwarded (publish(msg, 'filtered-scans')
	// exercises the swapped-argument tolerance).
	wifiSub.handler(msg.Map{"aps": []msg.Value{}}, "")
	if len(h.published) != 1 || h.published[0].channel != "filtered-scans" {
		t.Errorf("published = %+v", h.published)
	}

	// Outside the polygon.
	locIn(msg.Map{"lat": 10.0, "lon": 10.0}, "")
	if wifiSub.active {
		t.Error("subscription not released outside polygon")
	}
}

func TestBatteryScripts(t *testing.T) {
	h, _ := startBundled(t, "battery.js")
	h.subs[0].handler(msg.Map{"voltage": 4.0, "level": 0.9, "timestamp": 123.0}, "")
	if len(h.published) != 1 || h.published[0].channel != "battery-report" {
		t.Fatalf("published = %+v", h.published)
	}
	rep := h.published[0].payload.(msg.Map)
	if rep["voltage"].(float64) != 4.0 || rep["t"].(float64) != 123 {
		t.Errorf("report = %v", rep)
	}

	hc, _ := startBundled(t, "battery-collect.js")
	hc.subs[0].handler(rep, "dev3")
	if len(hc.logs) != 1 || !strings.Contains(hc.logs[0], "dev3") {
		t.Errorf("collector logs = %v", hc.logs)
	}
}
