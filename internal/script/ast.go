package script

// AST node types. Position info (line) is carried on nodes that can fail at
// runtime so errors point somewhere useful.

type node interface{ pos() (line, col int) }

type base struct{ line, col int }

func (b base) pos() (int, int) { return b.line, b.col }

// ---- statements ----

type program struct {
	base
	body []node
}

type varDecl struct {
	base
	names []string
	inits []node // nil entries for bare declarations
}

type funcDecl struct {
	base
	name string
	fn   *funcLit
}

type exprStmt struct {
	base
	expr node
}

type ifStmt struct {
	base
	cond      node
	then, alt node // alt may be nil
}

type whileStmt struct {
	base
	cond node
	body node
	post bool // do-while
}

type forStmt struct {
	base
	init node // may be nil; varDecl or expression
	cond node // may be nil
	step node // may be nil
	body node
}

type forInStmt struct {
	base
	varName string
	declare bool // var k in ...
	obj     node
	body    node
}

type returnStmt struct {
	base
	value node // may be nil
}

type breakStmt struct{ base }

type continueStmt struct{ base }

type blockStmt struct {
	base
	body []node
}

type switchStmt struct {
	base
	disc  node
	cases []switchCase
}

// switchCase is one case clause; test == nil is the default clause.
type switchCase struct {
	test node
	body []node
}

type throwStmt struct {
	base
	value node
}

type tryStmt struct {
	base
	block     *blockStmt
	catchVar  string
	catchBody *blockStmt // may be nil
	finally   *blockStmt // may be nil
}

// ---- expressions ----

type numberLit struct {
	base
	value float64
}

type stringLit struct {
	base
	value string
}

type boolLit struct {
	base
	value bool
}

type nullLit struct{ base }

type undefinedLit struct{ base }

type arrayLit struct {
	base
	elems []node
}

type objectLit struct {
	base
	keys   []string
	values []node
}

type funcLit struct {
	base
	name   string // for recursion via named function expressions
	params []string
	body   *blockStmt
}

type ident struct {
	base
	name string
}

type member struct {
	base
	obj  node
	name string
}

type index struct {
	base
	obj node
	key node
}

type call struct {
	base
	callee node
	args   []node
}

type unary struct {
	base
	op      string
	operand node
}

type postfix struct {
	base
	op      string // "++" or "--"
	operand node
}

type binary struct {
	base
	op          string
	left, right node
}

type logical struct {
	base
	op          string // "&&" or "||"
	left, right node
}

type assign struct {
	base
	op     string // "=", "+=", ...
	target node   // ident, member, or index
	value  node
}

type ternary struct {
	base
	cond, then, alt node
}
