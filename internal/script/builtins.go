package script

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"pogo/internal/msg"
)

// getProperty resolves obj.name for every supported receiver type,
// materializing method builtins on demand.
func (in *interp) getProperty(n node, obj Value, name string) (Value, error) {
	switch o := obj.(type) {
	case *Object:
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		switch name {
		case "hasOwnProperty":
			return &Builtin{name: "hasOwnProperty", fn: func(_ *interp, this Value, args []Value) (Value, error) {
				oo, ok := this.(*Object)
				if !ok || len(args) == 0 {
					return false, nil
				}
				_, has := oo.Get(ToString(args[0]))
				return has, nil
			}}, nil
		}
		return Undefined, nil
	case *Array:
		if name == "length" {
			return float64(o.Len()), nil
		}
		if m := arrayMethod(name); m != nil {
			return m, nil
		}
		return Undefined, nil
	case string:
		if name == "length" {
			return float64(len(o)), nil
		}
		if m := stringMethod(name); m != nil {
			return m, nil
		}
		return Undefined, nil
	case nil:
		return nil, in.errorf(n, "cannot read %q of null", name)
	case UndefinedType:
		return nil, in.errorf(n, "cannot read %q of undefined", name)
	default:
		return Undefined, nil
	}
}

func toArray(this Value) *Array {
	a, _ := this.(*Array)
	return a
}

func argAt(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined
}

// arrayMethod returns the builtin implementing an array method, or nil.
func arrayMethod(name string) *Builtin {
	fn := func(impl func(in *interp, a *Array, args []Value) (Value, error)) *Builtin {
		return &Builtin{name: name, fn: func(in *interp, this Value, args []Value) (Value, error) {
			a := toArray(this)
			if a == nil {
				return Undefined, nil
			}
			return impl(in, a, args)
		}}
	}
	switch name {
	case "push":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			a.elems = append(a.elems, args...)
			return float64(a.Len()), nil
		})
	case "pop":
		return fn(func(_ *interp, a *Array, _ []Value) (Value, error) {
			if a.Len() == 0 {
				return Undefined, nil
			}
			v := a.elems[a.Len()-1]
			a.elems = a.elems[:a.Len()-1]
			return v, nil
		})
	case "shift":
		return fn(func(_ *interp, a *Array, _ []Value) (Value, error) {
			if a.Len() == 0 {
				return Undefined, nil
			}
			v := a.elems[0]
			a.elems = append([]Value(nil), a.elems[1:]...)
			return v, nil
		})
	case "unshift":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			a.elems = append(append([]Value(nil), args...), a.elems...)
			return float64(a.Len()), nil
		})
	case "slice":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			start, end := sliceBounds(a.Len(), args)
			out := make([]Value, 0, end-start)
			out = append(out, a.elems[start:end]...)
			return NewArray(out...), nil
		})
	case "splice":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			start := clampIndex(int(ToNumber(argAt(args, 0))), a.Len())
			count := a.Len() - start
			if len(args) > 1 {
				count = int(ToNumber(args[1]))
			}
			if count < 0 {
				count = 0
			}
			if start+count > a.Len() {
				count = a.Len() - start
			}
			removed := append([]Value(nil), a.elems[start:start+count]...)
			var inserted []Value
			if len(args) > 2 {
				inserted = args[2:]
			}
			rest := append([]Value(nil), a.elems[start+count:]...)
			a.elems = append(append(a.elems[:start], inserted...), rest...)
			return NewArray(removed...), nil
		})
	case "indexOf":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			want := argAt(args, 0)
			for i, e := range a.elems {
				if strictEquals(e, want) {
					return float64(i), nil
				}
			}
			return -1.0, nil
		})
	case "join":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, a.Len())
			for i, e := range a.elems {
				if e == nil || e == Value(Undefined) {
					parts[i] = ""
				} else {
					parts[i] = ToString(e)
				}
			}
			return strings.Join(parts, sep), nil
		})
	case "concat":
		return fn(func(_ *interp, a *Array, args []Value) (Value, error) {
			out := append([]Value(nil), a.elems...)
			for _, arg := range args {
				if other, ok := arg.(*Array); ok {
					out = append(out, other.elems...)
				} else {
					out = append(out, arg)
				}
			}
			return NewArray(out...), nil
		})
	case "reverse":
		return fn(func(_ *interp, a *Array, _ []Value) (Value, error) {
			for i, j := 0, a.Len()-1; i < j; i, j = i+1, j-1 {
				a.elems[i], a.elems[j] = a.elems[j], a.elems[i]
			}
			return a, nil
		})
	case "sort":
		return fn(func(in *interp, a *Array, args []Value) (Value, error) {
			var sortErr error
			if len(args) > 0 {
				cmp := args[0]
				sort.SliceStable(a.elems, func(i, j int) bool {
					if sortErr != nil {
						return false
					}
					r, err := in.invoke(nil, cmp, Undefined, []Value{a.elems[i], a.elems[j]})
					if err != nil {
						sortErr = err
						return false
					}
					return ToNumber(r) < 0
				})
			} else {
				sort.SliceStable(a.elems, func(i, j int) bool {
					return ToString(a.elems[i]) < ToString(a.elems[j])
				})
			}
			if sortErr != nil {
				return nil, sortErr
			}
			return a, nil
		})
	case "forEach":
		return fn(func(in *interp, a *Array, args []Value) (Value, error) {
			cb := argAt(args, 0)
			for i, e := range a.elems {
				if _, err := in.invoke(nil, cb, Undefined, []Value{e, float64(i), a}); err != nil {
					return nil, err
				}
			}
			return Undefined, nil
		})
	case "map":
		return fn(func(in *interp, a *Array, args []Value) (Value, error) {
			cb := argAt(args, 0)
			out := make([]Value, a.Len())
			for i, e := range a.elems {
				v, err := in.invoke(nil, cb, Undefined, []Value{e, float64(i), a})
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return NewArray(out...), nil
		})
	case "filter":
		return fn(func(in *interp, a *Array, args []Value) (Value, error) {
			cb := argAt(args, 0)
			var out []Value
			for i, e := range a.elems {
				keep, err := in.invoke(nil, cb, Undefined, []Value{e, float64(i), a})
				if err != nil {
					return nil, err
				}
				if Truthy(keep) {
					out = append(out, e)
				}
			}
			return NewArray(out...), nil
		})
	case "reduce":
		return fn(func(in *interp, a *Array, args []Value) (Value, error) {
			cb := argAt(args, 0)
			var acc Value
			start := 0
			if len(args) > 1 {
				acc = args[1]
			} else {
				if a.Len() == 0 {
					return nil, in.errorf(nil, "reduce of empty array with no initial value")
				}
				acc = a.elems[0]
				start = 1
			}
			for i := start; i < a.Len(); i++ {
				v, err := in.invoke(nil, cb, Undefined, []Value{acc, a.elems[i], float64(i), a})
				if err != nil {
					return nil, err
				}
				acc = v
			}
			return acc, nil
		})
	}
	return nil
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func sliceBounds(n int, args []Value) (int, int) {
	start, end := 0, n
	if len(args) > 0 {
		if _, ok := args[0].(UndefinedType); !ok {
			start = clampIndex(int(ToNumber(args[0])), n)
		}
	}
	if len(args) > 1 {
		if _, ok := args[1].(UndefinedType); !ok {
			end = clampIndex(int(ToNumber(args[1])), n)
		}
	}
	if end < start {
		end = start
	}
	return start, end
}

// stringMethod returns the builtin implementing a string method, or nil.
func stringMethod(name string) *Builtin {
	fn := func(impl func(in *interp, s string, args []Value) (Value, error)) *Builtin {
		return &Builtin{name: name, fn: func(in *interp, this Value, args []Value) (Value, error) {
			s, ok := this.(string)
			if !ok {
				return Undefined, nil
			}
			return impl(in, s, args)
		}}
	}
	switch name {
	case "charAt":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			i := int(ToNumber(argAt(args, 0)))
			if i < 0 || i >= len(s) {
				return "", nil
			}
			return string(s[i]), nil
		})
	case "charCodeAt":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			i := int(ToNumber(argAt(args, 0)))
			if i < 0 || i >= len(s) {
				return math.NaN(), nil
			}
			return float64(s[i]), nil
		})
	case "indexOf":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			return float64(strings.Index(s, ToString(argAt(args, 0)))), nil
		})
	case "lastIndexOf":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			return float64(strings.LastIndex(s, ToString(argAt(args, 0)))), nil
		})
	case "slice", "substring":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			start, end := sliceBounds(len(s), args)
			return s[start:end], nil
		})
	case "split":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			sep := ToString(argAt(args, 0))
			var parts []string
			if len(args) == 0 {
				parts = []string{s}
			} else {
				parts = strings.Split(s, sep)
			}
			out := make([]Value, len(parts))
			for i, p := range parts {
				out[i] = p
			}
			return NewArray(out...), nil
		})
	case "toLowerCase":
		return fn(func(_ *interp, s string, _ []Value) (Value, error) {
			return strings.ToLower(s), nil
		})
	case "toUpperCase":
		return fn(func(_ *interp, s string, _ []Value) (Value, error) {
			return strings.ToUpper(s), nil
		})
	case "trim":
		return fn(func(_ *interp, s string, _ []Value) (Value, error) {
			return strings.TrimSpace(s), nil
		})
	case "replace":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			old := ToString(argAt(args, 0))
			new := ToString(argAt(args, 1))
			return strings.Replace(s, old, new, 1), nil
		})
	case "startsWith":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			return strings.HasPrefix(s, ToString(argAt(args, 0))), nil
		})
	case "endsWith":
		return fn(func(_ *interp, s string, args []Value) (Value, error) {
			return strings.HasSuffix(s, ToString(argAt(args, 0))), nil
		})
	case "toString":
		return fn(func(_ *interp, s string, _ []Value) (Value, error) {
			return s, nil
		})
	}
	return nil
}

// installGlobals populates the global scope with the standard library
// objects available to every script. rng seeds Math.random so simulated
// runs are reproducible.
func installGlobals(g *scope, rng *rand.Rand) {
	mathObj := NewObject()
	unaryMath := map[string]func(float64) float64{
		"abs": math.Abs, "floor": math.Floor, "ceil": math.Ceil,
		"sqrt": math.Sqrt, "exp": math.Exp, "log": math.Log,
		"sin": math.Sin, "cos": math.Cos, "tan": math.Tan,
		"atan": math.Atan, "round": func(f float64) float64 { return math.Floor(f + 0.5) },
	}
	for name, f := range unaryMath {
		f := f
		mathObj.Set(name, &Builtin{name: name, fn: func(_ *interp, _ Value, args []Value) (Value, error) {
			return f(ToNumber(argAt(args, 0))), nil
		}})
	}
	mathObj.Set("pow", &Builtin{name: "pow", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		return math.Pow(ToNumber(argAt(args, 0)), ToNumber(argAt(args, 1))), nil
	}})
	mathObj.Set("atan2", &Builtin{name: "atan2", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		return math.Atan2(ToNumber(argAt(args, 0)), ToNumber(argAt(args, 1))), nil
	}})
	mathObj.Set("min", &Builtin{name: "min", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, ToNumber(a))
		}
		return out, nil
	}})
	mathObj.Set("max", &Builtin{name: "max", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, ToNumber(a))
		}
		return out, nil
	}})
	mathObj.Set("random", &Builtin{name: "random", fn: func(_ *interp, _ Value, _ []Value) (Value, error) {
		return rng.Float64(), nil
	}})
	mathObj.Set("PI", math.Pi)
	mathObj.Set("E", math.E)
	g.declare("Math", mathObj)

	g.declare("parseInt", &Builtin{name: "parseInt", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		s := strings.TrimSpace(ToString(argAt(args, 0)))
		end := 0
		if strings.HasPrefix(s, "-") || strings.HasPrefix(s, "+") {
			end = 1
		}
		for end < len(s) && s[end] >= '0' && s[end] <= '9' {
			end++
		}
		if end == 0 || s[:end] == "-" || s[:end] == "+" {
			return math.NaN(), nil
		}
		return ToNumber(s[:end]), nil
	}})
	g.declare("parseFloat", &Builtin{name: "parseFloat", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		s := strings.TrimSpace(ToString(argAt(args, 0)))
		// Longest valid numeric prefix, JS-style.
		end, seenDot, seenExp := 0, false, false
		if end < len(s) && (s[end] == '-' || s[end] == '+') {
			end++
		}
		for end < len(s) {
			c := s[end]
			switch {
			case c >= '0' && c <= '9':
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
			case (c == 'e' || c == 'E') && !seenExp && end > 0:
				seenExp = true
				if end+1 < len(s) && (s[end+1] == '-' || s[end+1] == '+') {
					end++
				}
			default:
				goto done
			}
			end++
		}
	done:
		for end > 0 {
			if f := ToNumber(s[:end]); !math.IsNaN(f) {
				return f, nil
			}
			end--
		}
		return math.NaN(), nil
	}})
	g.declare("isNaN", &Builtin{name: "isNaN", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		return math.IsNaN(ToNumber(argAt(args, 0))), nil
	}})
	g.declare("String", &Builtin{name: "String", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		return ToString(argAt(args, 0)), nil
	}})
	g.declare("Number", &Builtin{name: "Number", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		return ToNumber(argAt(args, 0)), nil
	}})
	g.declare("NaN", math.NaN())
	g.declare("Infinity", math.Inf(1))

	objectObj := NewObject()
	objectObj.Set("keys", &Builtin{name: "keys", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		o, ok := argAt(args, 0).(*Object)
		if !ok {
			return NewArray(), nil
		}
		keys := o.Keys()
		elems := make([]Value, len(keys))
		for i, k := range keys {
			elems[i] = k
		}
		return NewArray(elems...), nil
	}})
	g.declare("Object", objectObj)

	arrayObj := NewObject()
	arrayObj.Set("isArray", &Builtin{name: "isArray", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		_, ok := argAt(args, 0).(*Array)
		return ok, nil
	}})
	g.declare("Array", arrayObj)

	jsonObj := NewObject()
	jsonObj.Set("stringify", &Builtin{name: "stringify", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		v, err := ToMsg(argAt(args, 0))
		if err != nil {
			return nil, in.errorf(nil, "JSON.stringify: %v", err)
		}
		b, err := msg.EncodeJSON(v)
		if err != nil {
			return nil, in.errorf(nil, "JSON.stringify: %v", err)
		}
		return string(b), nil
	}})
	jsonObj.Set("parse", &Builtin{name: "parse", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		v, err := msg.DecodeJSON([]byte(ToString(argAt(args, 0))))
		if err != nil {
			// JS semantics: JSON.parse throws, so scripts can try/catch it.
			return nil, throwSignal{value: "JSON.parse: " + err.Error()}
		}
		return FromMsg(v), nil
	}})
	g.declare("JSON", jsonObj)
}
