package script

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// RuntimeError reports a failure during script execution.
type RuntimeError struct {
	Script string
	Line   int
	Msg    string
	// Thrown holds the value of a script `throw` that escaped, or nil.
	Thrown Value
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Script, e.Line, e.Msg)
}

// ErrBudget is wrapped into the RuntimeError produced when a script call
// exceeds its step budget (the paper's 100 ms call timeout, §4.5).
var ErrBudget = errors.New("script: execution budget exceeded")

// scope is one lexical environment frame. PogoScript uses function-level
// scoping (JavaScript `var` semantics); blocks do not introduce frames.
type scope struct {
	vars   map[string]Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]Value), parent: parent}
}

func (s *scope) lookup(name string) (Value, bool) {
	for e := s; e != nil; e = e.parent {
		if v, ok := e.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// set assigns to an existing binding, or creates a global (top frame)
// binding when none exists — sloppy-mode JavaScript.
func (s *scope) set(name string, v Value) {
	for e := s; e != nil; e = e.parent {
		if _, ok := e.vars[name]; ok {
			e.vars[name] = v
			return
		}
		if e.parent == nil {
			e.vars[name] = v
			return
		}
	}
}

// declare creates a binding in this frame.
func (s *scope) declare(name string, v Value) { s.vars[name] = v }

// control-flow signals travel as errors.
type breakSignal struct{}
type continueSignal struct{}

func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }

type returnSignal struct{ value Value }

func (returnSignal) Error() string { return "return outside function" }

type throwSignal struct {
	value Value
	line  int
}

func (t throwSignal) Error() string { return "uncaught: " + ToString(t.value) }

// maxCallDepth bounds script-level call nesting so runaway recursion gets a
// clean RuntimeError instead of exhausting the Go stack.
const maxCallDepth = 2000

// interp evaluates an AST under a step budget.
type interp struct {
	name    string
	globals *scope
	steps   int // remaining budget for the current entry
	depth   int // current script call nesting
}

func (in *interp) errorf(n node, format string, args ...any) error {
	line := 0
	if n != nil {
		line, _ = n.pos()
	}
	return &RuntimeError{Script: in.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// charge spends one budget step.
func (in *interp) charge(n node) error {
	in.steps--
	if in.steps < 0 {
		line := 0
		if n != nil {
			line, _ = n.pos()
		}
		return &RuntimeError{Script: in.name, Line: line, Msg: ErrBudget.Error()}
	}
	return nil
}

// execBlockBody hoists function declarations, then executes statements.
func (in *interp) execBlockBody(body []node, env *scope) error {
	for _, stmt := range body {
		if fd, ok := stmt.(*funcDecl); ok {
			env.set(fd.name, &Function{name: fd.name, params: fd.fn.params, body: fd.fn.body, env: env})
		}
	}
	for _, stmt := range body {
		if err := in.exec(stmt, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) exec(n node, env *scope) error {
	if err := in.charge(n); err != nil {
		return err
	}
	switch s := n.(type) {
	case *program:
		return in.execBlockBody(s.body, env)
	case *blockStmt:
		return in.execBlockBody(s.body, env)
	case *varDecl:
		for i, name := range s.names {
			var v Value = Undefined
			if s.inits[i] != nil {
				ev, err := in.eval(s.inits[i], env)
				if err != nil {
					return err
				}
				v = ev
			}
			env.declare(name, v)
		}
		return nil
	case *funcDecl:
		return nil // hoisted by execBlockBody
	case *exprStmt:
		_, err := in.eval(s.expr, env)
		return err
	case *ifStmt:
		cond, err := in.eval(s.cond, env)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.exec(s.then, env)
		}
		if s.alt != nil {
			return in.exec(s.alt, env)
		}
		return nil
	case *whileStmt:
		for {
			if !s.post {
				cond, err := in.eval(s.cond, env)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
			if err := in.exec(s.body, env); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					// fall through to the post-condition check
				default:
					return err
				}
			}
			if s.post {
				cond, err := in.eval(s.cond, env)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
		}
	case *forStmt:
		if s.init != nil {
			if vd, ok := s.init.(*varDecl); ok {
				if err := in.exec(vd, env); err != nil {
					return err
				}
			} else if _, err := in.eval(s.init, env); err != nil {
				return err
			}
		}
		for {
			if s.cond != nil {
				cond, err := in.eval(s.cond, env)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
			if err := in.exec(s.body, env); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
				default:
					return err
				}
			}
			if s.step != nil {
				if _, err := in.eval(s.step, env); err != nil {
					return err
				}
			}
		}
	case *forInStmt:
		obj, err := in.eval(s.obj, env)
		if err != nil {
			return err
		}
		var keys []string
		switch o := obj.(type) {
		case *Object:
			keys = o.Keys()
		case *Array:
			keys = make([]string, o.Len())
			for i := range keys {
				keys[i] = strconv.Itoa(i)
			}
		case nil, UndefinedType:
			return nil
		default:
			return in.errorf(s, "for-in over %s", TypeOf(obj))
		}
		if s.declare {
			env.declare(s.varName, Undefined)
		}
		for _, k := range keys {
			env.set(s.varName, k)
			if err := in.exec(s.body, env); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				default:
					return err
				}
			}
		}
		return nil
	case *returnStmt:
		var v Value = Undefined
		if s.value != nil {
			ev, err := in.eval(s.value, env)
			if err != nil {
				return err
			}
			v = ev
		}
		return returnSignal{value: v}
	case *breakStmt:
		return breakSignal{}
	case *continueStmt:
		return continueSignal{}
	case *switchStmt:
		disc, err := in.eval(s.disc, env)
		if err != nil {
			return err
		}
		start := -1
		for i, cl := range s.cases {
			if cl.test == nil {
				continue
			}
			tv, err := in.eval(cl.test, env)
			if err != nil {
				return err
			}
			if strictEquals(disc, tv) {
				start = i
				break
			}
		}
		if start == -1 {
			for i, cl := range s.cases {
				if cl.test == nil {
					start = i
					break
				}
			}
		}
		if start == -1 {
			return nil
		}
		// Execute from the matched clause, falling through until break.
		for i := start; i < len(s.cases); i++ {
			for _, stmt := range s.cases[i].body {
				if err := in.exec(stmt, env); err != nil {
					if _, isBreak := err.(breakSignal); isBreak {
						return nil
					}
					return err
				}
			}
		}
		return nil
	case *throwStmt:
		v, err := in.eval(s.value, env)
		if err != nil {
			return err
		}
		line, _ := s.pos()
		return throwSignal{value: v, line: line}
	case *tryStmt:
		err := in.exec(s.block, env)
		if ts, ok := err.(throwSignal); ok && s.catchBody != nil {
			env.declare(s.catchVar, ts.value)
			err = in.exec(s.catchBody, env)
		}
		if s.finally != nil {
			if ferr := in.exec(s.finally, env); ferr != nil {
				return ferr
			}
		}
		return err
	default:
		return in.errorf(n, "internal: unknown statement %T", n)
	}
}

func (in *interp) eval(n node, env *scope) (Value, error) {
	if err := in.charge(n); err != nil {
		return nil, err
	}
	switch e := n.(type) {
	case *numberLit:
		return e.value, nil
	case *stringLit:
		return e.value, nil
	case *boolLit:
		return e.value, nil
	case *nullLit:
		return nil, nil
	case *undefinedLit:
		return Undefined, nil
	case *ident:
		if v, ok := env.lookup(e.name); ok {
			return v, nil
		}
		return nil, in.errorf(e, "%s is not defined", e.name)
	case *arrayLit:
		arr := NewArray()
		for _, el := range e.elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.elems = append(arr.elems, v)
		}
		return arr, nil
	case *objectLit:
		obj := NewObject()
		for i, k := range e.keys {
			v, err := in.eval(e.values[i], env)
			if err != nil {
				return nil, err
			}
			obj.Set(k, v)
		}
		return obj, nil
	case *funcLit:
		fn := &Function{name: e.name, params: e.params, body: e.body, env: env}
		if e.name != "" {
			// Named function expressions can refer to themselves.
			inner := newScope(env)
			inner.declare(e.name, fn)
			fn.env = inner
		}
		return fn, nil
	case *member:
		obj, err := in.eval(e.obj, env)
		if err != nil {
			return nil, err
		}
		return in.getProperty(e, obj, e.name)
	case *index:
		obj, err := in.eval(e.obj, env)
		if err != nil {
			return nil, err
		}
		key, err := in.eval(e.key, env)
		if err != nil {
			return nil, err
		}
		if arr, ok := obj.(*Array); ok {
			if kf, ok := key.(float64); ok {
				return arr.At(int(kf)), nil
			}
		}
		if s, ok := obj.(string); ok {
			if kf, ok := key.(float64); ok {
				i := int(kf)
				if i >= 0 && i < len(s) {
					return string(s[i]), nil
				}
				return Undefined, nil
			}
		}
		return in.getProperty(e, obj, ToString(key))
	case *call:
		return in.evalCall(e, env)
	case *unary:
		return in.evalUnary(e, env)
	case *postfix:
		old, err := in.eval(e.operand, env)
		if err != nil {
			return nil, err
		}
		n := ToNumber(old)
		delta := 1.0
		if e.op == "--" {
			delta = -1
		}
		if err := in.assignTo(e.operand, n+delta, env); err != nil {
			return nil, err
		}
		return n, nil
	case *binary:
		return in.evalBinary(e, env)
	case *logical:
		left, err := in.eval(e.left, env)
		if err != nil {
			return nil, err
		}
		if e.op == "&&" {
			if !Truthy(left) {
				return left, nil
			}
		} else if Truthy(left) {
			return left, nil
		}
		return in.eval(e.right, env)
	case *ternary:
		cond, err := in.eval(e.cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.eval(e.then, env)
		}
		return in.eval(e.alt, env)
	case *assign:
		return in.evalAssign(e, env)
	default:
		return nil, in.errorf(n, "internal: unknown expression %T", n)
	}
}

func (in *interp) evalUnary(e *unary, env *scope) (Value, error) {
	if e.op == "typeof" {
		// typeof tolerates undefined identifiers.
		if id, ok := e.operand.(*ident); ok {
			if v, defined := env.lookup(id.name); defined {
				return TypeOf(v), nil
			}
			return "undefined", nil
		}
		v, err := in.eval(e.operand, env)
		if err != nil {
			return nil, err
		}
		return TypeOf(v), nil
	}
	if e.op == "delete" {
		switch target := e.operand.(type) {
		case *member:
			obj, err := in.eval(target.obj, env)
			if err != nil {
				return nil, err
			}
			if o, ok := obj.(*Object); ok {
				o.Delete(target.name)
			}
			return true, nil
		case *index:
			obj, err := in.eval(target.obj, env)
			if err != nil {
				return nil, err
			}
			key, err := in.eval(target.key, env)
			if err != nil {
				return nil, err
			}
			if o, ok := obj.(*Object); ok {
				o.Delete(ToString(key))
			}
			return true, nil
		default:
			return true, nil
		}
	}
	if e.op == "++" || e.op == "--" {
		old, err := in.eval(e.operand, env)
		if err != nil {
			return nil, err
		}
		n := ToNumber(old)
		if e.op == "++" {
			n++
		} else {
			n--
		}
		if err := in.assignTo(e.operand, n, env); err != nil {
			return nil, err
		}
		return n, nil
	}
	v, err := in.eval(e.operand, env)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case "!":
		return !Truthy(v), nil
	case "-":
		return -ToNumber(v), nil
	case "+":
		return ToNumber(v), nil
	default:
		return nil, in.errorf(e, "unsupported unary %q", e.op)
	}
}

func (in *interp) evalBinary(e *binary, env *scope) (Value, error) {
	left, err := in.eval(e.left, env)
	if err != nil {
		return nil, err
	}
	right, err := in.eval(e.right, env)
	if err != nil {
		return nil, err
	}
	return in.applyBinary(e, e.op, left, right)
}

func (in *interp) applyBinary(n node, op string, left, right Value) (Value, error) {
	switch op {
	case ",":
		return right, nil
	case "+":
		_, ls := left.(string)
		_, rs := right.(string)
		if ls || rs || isComposite(left) || isComposite(right) {
			return ToString(left) + ToString(right), nil
		}
		return ToNumber(left) + ToNumber(right), nil
	case "-":
		return ToNumber(left) - ToNumber(right), nil
	case "*":
		return ToNumber(left) * ToNumber(right), nil
	case "/":
		return ToNumber(left) / ToNumber(right), nil
	case "%":
		return math.Mod(ToNumber(left), ToNumber(right)), nil
	case "==":
		return looseEquals(left, right), nil
	case "!=":
		return !looseEquals(left, right), nil
	case "===":
		return strictEquals(left, right), nil
	case "!==":
		return !strictEquals(left, right), nil
	case "<", ">", "<=", ">=":
		if ls, ok := left.(string); ok {
			if rs, ok := right.(string); ok {
				switch op {
				case "<":
					return ls < rs, nil
				case ">":
					return ls > rs, nil
				case "<=":
					return ls <= rs, nil
				default:
					return ls >= rs, nil
				}
			}
		}
		ln, rn := ToNumber(left), ToNumber(right)
		switch op {
		case "<":
			return ln < rn, nil
		case ">":
			return ln > rn, nil
		case "<=":
			return ln <= rn, nil
		default:
			return ln >= rn, nil
		}
	default:
		return nil, in.errorf(n, "unsupported operator %q", op)
	}
}

func isComposite(v Value) bool {
	switch v.(type) {
	case *Object, *Array, *Function, *Builtin:
		return true
	default:
		return false
	}
}

func (in *interp) evalAssign(e *assign, env *scope) (Value, error) {
	var newVal Value
	if e.op == "=" {
		v, err := in.eval(e.value, env)
		if err != nil {
			return nil, err
		}
		newVal = v
	} else {
		old, err := in.eval(e.target, env)
		if err != nil {
			return nil, err
		}
		rhs, err := in.eval(e.value, env)
		if err != nil {
			return nil, err
		}
		op := e.op[:1] // "+=" → "+"
		v, err := in.applyBinary(e, op, old, rhs)
		if err != nil {
			return nil, err
		}
		newVal = v
	}
	if err := in.assignTo(e.target, newVal, env); err != nil {
		return nil, err
	}
	return newVal, nil
}

func (in *interp) assignTo(target node, v Value, env *scope) error {
	switch t := target.(type) {
	case *ident:
		env.set(t.name, v)
		return nil
	case *member:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return err
		}
		return in.setProperty(t, obj, t.name, v)
	case *index:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return err
		}
		key, err := in.eval(t.key, env)
		if err != nil {
			return err
		}
		if arr, ok := obj.(*Array); ok {
			if kf, ok := key.(float64); ok {
				if kf < 0 || kf != math.Trunc(kf) {
					return in.errorf(t, "bad array index %v", kf)
				}
				arr.SetAt(int(kf), v)
				return nil
			}
		}
		return in.setProperty(t, obj, ToString(key), v)
	default:
		return in.errorf(target, "invalid assignment target")
	}
}

func (in *interp) setProperty(n node, obj Value, name string, v Value) error {
	switch o := obj.(type) {
	case *Object:
		o.Set(name, v)
		return nil
	case *Array:
		if name == "length" {
			want := int(ToNumber(v))
			if want < 0 {
				return in.errorf(n, "bad length %v", v)
			}
			for len(o.elems) > want {
				o.elems = o.elems[:len(o.elems)-1]
			}
			for len(o.elems) < want {
				o.elems = append(o.elems, Undefined)
			}
			return nil
		}
		return in.errorf(n, "cannot set %q on array", name)
	default:
		return in.errorf(n, "cannot set property %q on %s", name, TypeOf(obj))
	}
}

func (in *interp) evalCall(e *call, env *scope) (Value, error) {
	var this Value = Undefined
	var callee Value
	switch c := e.callee.(type) {
	case *member:
		obj, err := in.eval(c.obj, env)
		if err != nil {
			return nil, err
		}
		this = obj
		fn, err := in.getProperty(c, obj, c.name)
		if err != nil {
			return nil, err
		}
		callee = fn
	case *index:
		obj, err := in.eval(c.obj, env)
		if err != nil {
			return nil, err
		}
		key, err := in.eval(c.key, env)
		if err != nil {
			return nil, err
		}
		this = obj
		fn, err := in.getProperty(c, obj, ToString(key))
		if err != nil {
			return nil, err
		}
		callee = fn
	default:
		fn, err := in.eval(e.callee, env)
		if err != nil {
			return nil, err
		}
		callee = fn
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.invoke(e, callee, this, args)
}

// invoke calls a script or builtin function value.
func (in *interp) invoke(n node, callee, this Value, args []Value) (Value, error) {
	switch fn := callee.(type) {
	case *Function:
		in.depth++
		defer func() { in.depth-- }()
		if in.depth > maxCallDepth {
			return nil, in.errorf(n, "call stack exceeded (%d nested calls)", maxCallDepth)
		}
		frame := newScope(fn.env)
		for i, p := range fn.params {
			if i < len(args) {
				frame.declare(p, args[i])
			} else {
				frame.declare(p, Undefined)
			}
		}
		frame.declare("arguments", NewArray(args...))
		err := in.exec(fn.body, frame)
		if err == nil {
			return Undefined, nil
		}
		if ret, ok := err.(returnSignal); ok {
			return ret.value, nil
		}
		return nil, err
	case *Builtin:
		return fn.fn(in, this, args)
	default:
		return nil, in.errorf(n, "%s is not a function", TypeOf(callee))
	}
}
