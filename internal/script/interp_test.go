package script

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pogo/internal/msg"
)

// testHost is a Host that records everything.
type testHost struct {
	prints    []string
	logs      []string
	published []struct {
		channel string
		payload msg.Value
	}
	subs []*testSub
	// frozen per script name
	frozen map[string]msg.Value
	timers []struct {
		fn    func()
		delay time.Duration
	}
	errs []error
}

type testSub struct {
	channel  string
	params   msg.Map
	handler  func(msg.Value, string)
	active   bool
	releases int
	renews   int
}

func newTestHost() *testHost {
	return &testHost{frozen: make(map[string]msg.Value)}
}

func (h *testHost) Publish(channel string, m msg.Value) error {
	h.published = append(h.published, struct {
		channel string
		payload msg.Value
	}{channel, m})
	return nil
}

func (h *testHost) Subscribe(channel string, params msg.Map, handler func(msg.Value, string)) (func(), func(), error) {
	sub := &testSub{channel: channel, params: params, handler: handler, active: true}
	h.subs = append(h.subs, sub)
	return func() { sub.active = false; sub.releases++ },
		func() { sub.active = true; sub.renews++ }, nil
}

func (h *testHost) Print(script, text string) { h.prints = append(h.prints, text) }
func (h *testHost) Log(script, logName, text string) {
	h.logs = append(h.logs, logName+"|"+text)
}
func (h *testHost) Freeze(script string, v msg.Value) error {
	h.frozen[script] = v
	return nil
}
func (h *testHost) Thaw(script string) (msg.Value, bool) {
	v, ok := h.frozen[script]
	return v, ok
}
func (h *testHost) SetTimeout(fn func(), delay time.Duration) {
	h.timers = append(h.timers, struct {
		fn    func()
		delay time.Duration
	}{fn, delay})
}
func (h *testHost) ReportError(script string, err error) { h.errs = append(h.errs, err) }

// run compiles and starts a script, returning the host.
func run(t *testing.T, source string) (*testHost, *Script) {
	t.Helper()
	h := newTestHost()
	s, err := New("test.js", source, h, Config{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return h, s
}

// evalExpr evaluates one expression via print().
func evalExpr(t *testing.T, expr string) string {
	t.Helper()
	h, _ := run(t, "print("+expr+");")
	if len(h.prints) != 1 {
		t.Fatalf("prints = %v", h.prints)
	}
	return h.prints[0]
}

func TestArithmetic(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"1 + 2", "3"},
		{"10 - 4 * 2", "2"},
		{"(10 - 4) * 2", "12"},
		{"7 / 2", "3.5"},
		{"7 % 3", "1"},
		{"-5 + 3", "-2"},
		{"2 * 3 + 4 * 5", "26"},
		{"1e3 + 1", "1001"},
		{"0x10", "16"},
		{"0.1 + 0.2 > 0.3 - 0.001", "true"},
		{"1 / 0", "Infinity"},
		{"-1 / 0", "-Infinity"},
		{"0 / 0", "NaN"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestStringsAndConcat(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"'a' + 'b'", "ab"},
		{"'n=' + 5", "n=5"},
		{"5 + '5'", "55"},
		{"'hello'.length", "5"},
		{"'hello'.toUpperCase()", "HELLO"},
		{"'Hello World'.indexOf('World')", "6"},
		{"'a,b,c'.split(',').length", "3"},
		{"'  x  '.trim()", "x"},
		{"'abcdef'.slice(1, 3)", "bc"},
		{"'abcdef'.substring(2)", "cdef"},
		{"'abc'.charAt(1)", "b"},
		{"'abc'.charCodeAt(0)", "97"},
		{"'a-b-c'.replace('-', '+')", "a+b-c"},
		{"'tether'.startsWith('tet')", "true"},
		{"'file.js'.endsWith('.js')", "true"},
		{"'abc'[1]", "b"},
		{"'\\u0041\\n\\t\\''", "A\n\t'"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"1 < 2", "true"},
		{"2 <= 2", "true"},
		{"3 > 4", "false"},
		{"'a' < 'b'", "true"},
		{"1 == 1", "true"},
		{"1 == '1'", "true"},
		{"1 === '1'", "false"},
		{"null == undefined", "true"},
		{"null === undefined", "false"},
		{"1 != 2", "true"},
		{"1 !== 1", "false"},
		{"true && false", "false"},
		{"true || false", "true"},
		{"!0", "true"},
		{"!!'x'", "true"},
		{"null || 'fallback'", "fallback"},
		{"0 && explode()", "0"}, // short circuit: explode never called
		{"1 ? 'y' : 'n'", "y"},
		{"typeof 1", "number"},
		{"typeof 'x'", "string"},
		{"typeof {}", "object"},
		{"typeof []", "object"},
		{"typeof undefined", "undefined"},
		{"typeof notDeclared", "undefined"},
		{"typeof null", "object"},
		{"typeof print", "function"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestVariablesAndScope(t *testing.T) {
	h, _ := run(t, `
		var x = 1, y;
		x = x + 1;
		x += 3;
		x *= 2;
		print(x, y);
		var z = 10;
		function f() { var z = 20; return z; }
		print(f(), z);
	`)
	if h.prints[0] != "10 undefined" {
		t.Errorf("prints[0] = %q", h.prints[0])
	}
	if h.prints[1] != "20 10" {
		t.Errorf("prints[1] = %q", h.prints[1])
	}
}

func TestClosures(t *testing.T) {
	h, _ := run(t, `
		function counter() {
			var n = 0;
			return function() { n++; return n; };
		}
		var c1 = counter();
		var c2 = counter();
		c1(); c1();
		print(c1(), c2());
	`)
	if h.prints[0] != "3 1" {
		t.Errorf("closures: %q", h.prints[0])
	}
}

func TestLoops(t *testing.T) {
	h, _ := run(t, `
		var sum = 0;
		for (var i = 0; i < 5; i++) sum += i;
		print(sum);
		var n = 0;
		while (n < 10) { n += 3; }
		print(n);
		var m = 0;
		do { m++; } while (m < 0);
		print(m);
		var brk = 0;
		for (var j = 0; j < 100; j++) { if (j === 5) break; brk = j; }
		print(brk);
		var odd = 0;
		for (var k = 0; k < 10; k++) { if (k % 2 === 0) continue; odd += k; }
		print(odd);
	`)
	want := []string{"10", "12", "1", "4", "25"}
	for i, w := range want {
		if h.prints[i] != w {
			t.Errorf("prints[%d] = %q, want %q", i, h.prints[i], w)
		}
	}
}

func TestObjectsAndArrays(t *testing.T) {
	h, _ := run(t, `
		var o = { a: 1, 'b c': 2, nested: { x: [1, 2, 3] } };
		print(o.a, o['b c'], o.nested.x[2]);
		o.d = 4;
		o['e'] = 5;
		print(o.d + o.e);
		delete o.a;
		print(typeof o.a, o.missing);
		var arr = [1, 2];
		arr.push(3, 4);
		print(arr.length, arr.join('-'));
		print(arr.pop(), arr.shift(), arr.length);
		arr.unshift(0);
		print(arr.join(','));
		var ks = '';
		for (var k in { p: 1, q: 2 }) ks += k;
		print(ks);
		var idxs = '';
		for (var i in ['a','b']) idxs += i;
		print(idxs);
	`)
	want := []string{"1 2 3", "9", "undefined undefined", "4 1-2-3-4", "4 1 2", "0,2,3", "pq", "01"}
	for i, w := range want {
		if h.prints[i] != w {
			t.Errorf("prints[%d] = %q, want %q", i, h.prints[i], w)
		}
	}
}

func TestArrayHigherOrder(t *testing.T) {
	h, _ := run(t, `
		var a = [3, 1, 2];
		print(a.slice(0).sort(function(x, y) { return x - y; }).join(','));
		print(a.map(function(x) { return x * 10; }).join(','));
		print(a.filter(function(x) { return x > 1; }).join(','));
		print(a.reduce(function(acc, x) { return acc + x; }, 0));
		print(a.indexOf(2), a.indexOf(99));
		print([1,2,3].concat([4,5], 6).join(''));
		print([1,2,3,4].splice(1, 2).join(','));
		var sum = 0;
		a.forEach(function(x) { sum += x; });
		print(sum);
		print([5,6,7].reverse().join(','));
	`)
	want := []string{"1,2,3", "30,10,20", "3,2", "6", "2 -1", "123456", "2,3", "6", "7,6,5"}
	for i, w := range want {
		if h.prints[i] != w {
			t.Errorf("prints[%d] = %q, want %q", i, h.prints[i], w)
		}
	}
}

func TestMathAndGlobals(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"Math.abs(-4)", "4"},
		{"Math.floor(2.9)", "2"},
		{"Math.ceil(2.1)", "3"},
		{"Math.round(2.5)", "3"},
		{"Math.sqrt(16)", "4"},
		{"Math.pow(2, 10)", "1024"},
		{"Math.min(3, 1, 2)", "1"},
		{"Math.max(3, 1, 2)", "3"},
		{"Math.PI > 3.14 && Math.PI < 3.15", "true"},
		{"parseInt('42px')", "42"},
		{"parseInt('-7')", "-7"},
		{"parseFloat('2.5abc')", "2.5"},
		{"isNaN(parseInt('abc'))", "true"},
		{"String(42)", "42"},
		{"Number('3.5')", "3.5"},
		{"isNaN(NaN)", "true"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestMathRandomDeterministic(t *testing.T) {
	src := `var s = ''; for (var i = 0; i < 3; i++) s += Math.random() + ';'; print(s);`
	h1, _ := run(t, src)
	h2, _ := run(t, src)
	if h1.prints[0] != h2.prints[0] {
		t.Errorf("Math.random not deterministic: %q vs %q", h1.prints[0], h2.prints[0])
	}
}

func TestRecursionAndNamedFuncExpr(t *testing.T) {
	h, _ := run(t, `
		function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
		print(fib(15));
		var fact = function f(n) { return n <= 1 ? 1 : n * f(n-1); };
		print(fact(6));
	`)
	if h.prints[0] != "610" || h.prints[1] != "720" {
		t.Errorf("prints = %v", h.prints)
	}
}

func TestIncrementsAndCompound(t *testing.T) {
	h, _ := run(t, `
		var i = 5;
		print(i++, i, ++i, i--, --i);
		var o = { n: 1 };
		o.n++;
		o.n += 10;
		print(o.n);
		var a = [1];
		a[0] += 5;
		print(a[0]);
	`)
	if h.prints[0] != "5 6 7 7 5" {
		t.Errorf("inc/dec: %q", h.prints[0])
	}
	if h.prints[1] != "12" || h.prints[2] != "6" {
		t.Errorf("compound: %v", h.prints)
	}
}

func TestThrowTryCatch(t *testing.T) {
	h, _ := run(t, `
		try {
			throw 'boom';
		} catch (e) {
			print('caught ' + e);
		} finally {
			print('finally');
		}
	`)
	if h.prints[0] != "caught boom" || h.prints[1] != "finally" {
		t.Errorf("prints = %v", h.prints)
	}
}

func TestUncaughtThrowIsError(t *testing.T) {
	h := newTestHost()
	s, err := New("t.js", "throw 'kaput';", h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Start()
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "kaput") {
		t.Errorf("Start = %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		"missing();",
		"var x = null; x.field;",
		"var y; y.prop;",
		"var n = 5; n();",
	}
	for _, src := range cases {
		h := newTestHost()
		s, err := New("t.js", src, h, Config{})
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := s.Start(); err == nil {
			t.Errorf("%q: no runtime error", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"var = 5;",
		"function () {}",
		"if (x {}",
		"'unterminated",
		"var a = {key};",
		"1 +",
		"/* unclosed",
		"for (;;",
		"x ===== y",
	}
	for _, src := range cases {
		if _, err := New("t.js", src, newTestHost(), Config{}); err == nil {
			t.Errorf("%q: parsed without error", src)
		}
	}
}

func TestBudgetStopsInfiniteLoop(t *testing.T) {
	h := newTestHost()
	s, err := New("spin.js", "while (true) {}", h, Config{StepBudget: 10_000, StartupBudgetFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Start()
	if err == nil || !strings.Contains(err.Error(), ErrBudget.Error()) {
		t.Errorf("Start = %v, want budget error", err)
	}
}

func TestBudgetAppliesPerEntry(t *testing.T) {
	// A handler that loops forever must be cut off without killing the
	// script permanently — the next event gets a fresh budget (§4.5).
	h := newTestHost()
	s, err := New("h.js", `
		var calls = 0;
		subscribe('tick', function(m) {
			calls++;
			if (m.spin) { while (true) {} }
			print('ok ' + calls);
		});
	`, h, Config{StepBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	h.subs[0].handler(msg.Map{"spin": true}, "")
	if len(h.errs) != 1 {
		t.Fatalf("errs = %v", h.errs)
	}
	h.subs[0].handler(msg.Map{"spin": false}, "")
	if len(h.prints) != 1 || h.prints[0] != "ok 2" {
		t.Errorf("prints = %v", h.prints)
	}
}

func TestSandboxNoHostLeaks(t *testing.T) {
	// Nothing outside the 11-method API + JS stdlib may be visible.
	for _, name := range []string{"require", "process", "os", "java", "Packages", "eval", "Function", "globalThis"} {
		h := newTestHost()
		s, err := New("t.js", "print(typeof "+name+");", h, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		if h.prints[0] != "undefined" {
			t.Errorf("%s visible in sandbox: %q", name, h.prints[0])
		}
	}
}

func TestSwitchStatement(t *testing.T) {
	h, _ := run(t, `
		function classify(x) {
			switch (x) {
			case 1:
			case 2:
				return 'small';
			case 'many':
				return 'words';
			default:
				return 'other';
			}
		}
		print(classify(1), classify(2), classify('many'), classify(99));
		// Fallthrough without break accumulates.
		var log = '';
		switch (2) {
		case 1:
			log += 'a';
		case 2:
			log += 'b';
		case 3:
			log += 'c';
			break;
		case 4:
			log += 'd';
		}
		print(log);
		// Strict matching: '1' does not match 1.
		var hit = 'none';
		switch ('1') {
		case 1:
			hit = 'number';
			break;
		default:
			hit = 'default';
		}
		print(hit);
		// No match, no default: nothing runs.
		var ran = false;
		switch (42) { case 1: ran = true; }
		print(ran);
	`)
	want := []string{"small small words other", "bc", "default", "false"}
	for i, w := range want {
		if h.prints[i] != w {
			t.Errorf("prints[%d] = %q, want %q", i, h.prints[i], w)
		}
	}
}

func TestSwitchParseErrors(t *testing.T) {
	for _, src := range []string{
		"switch (1) { default: 1; default: 2; }",
		"switch (1) { nonsense }",
		"switch (1) { case 1 }",
		"switch (1) { case 1:",
	} {
		if _, err := New("t.js", src, newTestHost(), Config{}); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
}

func TestJSGlobalObjects(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"Object.keys({ b: 1, a: 2 }).join(',')", "b,a"}, // insertion order
		{"Object.keys([1,2]).length", "0"},
		{"Array.isArray([])", "true"},
		{"Array.isArray({})", "false"},
		{"Array.isArray('s')", "false"},
		{"JSON.stringify({ b: 1, a: [true, null] })", `{"a":[true,null],"b":1}`},
		{"JSON.parse('{\"x\": [1, 2]}').x[1]", "2"},
		{"typeof JSON.parse('null')", "object"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
	// Bad JSON throws a catchable error, like real JSON.parse.
	h, _ := run(t, `
		try { JSON.parse('{nope'); print('no error'); }
		catch (e) { print('caught'); }
	`)
	if len(h.prints) != 1 || h.prints[0] != "caught" {
		t.Errorf("JSON.parse throw: %v", h.prints)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	h, _ := run(t, `
		// line comment
		var a = 1; // trailing
		/* block
		   comment */
		var b = /* inline */ 2;
		print(a + b);
	`)
	if h.prints[0] != "3" {
		t.Errorf("prints = %v", h.prints)
	}
}

func TestCallWithArgs(t *testing.T) {
	_, s := run(t, `function add(a, b) { return a + b; }`)
	out, err := s.Call("add", 2.0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if out.(float64) != 5 {
		t.Errorf("Call = %v", out)
	}
	if _, err := s.Call("nope"); err == nil {
		t.Error("Call(nope) succeeded")
	}
}

func TestArgumentsObject(t *testing.T) {
	h, _ := run(t, `
		function count() { return arguments.length; }
		print(count(1, 2, 3), count());
	`)
	if h.prints[0] != "3 0" {
		t.Errorf("arguments: %q", h.prints[0])
	}
}

func TestMissingArgsAreUndefined(t *testing.T) {
	h, _ := run(t, `function f(a, b) { return typeof b; } print(f(1));`)
	if h.prints[0] != "undefined" {
		t.Errorf("missing arg = %q", h.prints[0])
	}
}

func TestCommaOperatorInFor(t *testing.T) {
	h, _ := run(t, `
		var s = '';
		for (var i = 0, j = 10; i < j; i++, j--) s += '.';
		print(s.length);
	`)
	if h.prints[0] != "5" {
		t.Errorf("comma-for: %q", h.prints[0])
	}
}

func TestHasOwnProperty(t *testing.T) {
	h, _ := run(t, `
		var o = { x: 1 };
		print(o.hasOwnProperty('x'), o.hasOwnProperty('y'));
	`)
	if h.prints[0] != "true false" {
		t.Errorf("hasOwnProperty: %q", h.prints[0])
	}
}

func TestDeepScriptStackDepth(t *testing.T) {
	// Recursion must be bounded by the budget, not crash the Go stack.
	h := newTestHost()
	s, err := New("deep.js", `
		function rec(n) { return rec(n + 1); }
		rec(0);
	`, h, Config{StepBudget: 200_000, StartupBudgetFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("infinite recursion terminated without error")
	}
}

func TestPathologicalNestingRejected(t *testing.T) {
	// Thousands of nested parens/brackets must produce a clean syntax
	// error, not a Go stack overflow — the sandbox holds against
	// adversarial input.
	deep := strings.Repeat("(", 10000) + "1" + strings.Repeat(")", 10000)
	if _, err := New("evil.js", "var x = "+deep+";", newTestHost(), Config{}); err == nil {
		t.Error("deep parens accepted")
	}
	deepArr := strings.Repeat("[", 10000) + strings.Repeat("]", 10000)
	if _, err := New("evil2.js", "var y = "+deepArr+";", newTestHost(), Config{}); err == nil {
		t.Error("deep arrays accepted")
	}
	blocks := strings.Repeat("{", 5000) + strings.Repeat("}", 5000)
	if _, err := New("evil3.js", blocks, newTestHost(), Config{}); err == nil {
		t.Error("deep blocks accepted")
	}
}

func TestRunawayRecursionCleanError(t *testing.T) {
	// Even with a huge step budget, recursion is cut off by the call-depth
	// limit with a RuntimeError, never a crash.
	h := newTestHost()
	s, err := New("rec.js", `function f(n) { return f(n + 1); } f(0);`, h,
		Config{StepBudget: 1 << 30, StartupBudgetFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Start()
	var re *RuntimeError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "call stack") {
		t.Errorf("err = %v, want call-stack RuntimeError", err)
	}
	// The script remains usable for shallow calls afterwards.
	if _, err := s.Call("f"); err == nil {
		t.Error("f(0) should still recurse to the limit") // still errors
	}
}

func TestNumberFormatting(t *testing.T) {
	tests := []struct{ expr, want string }{
		{"1000000", "1000000"},
		{"1.5", "1.5"},
		{"60 * 1000", "60000"},
		{"-0.25", "-0.25"},
		{"1e21", "1e+21"},
	}
	for _, tt := range tests {
		if got := evalExpr(t, tt.expr); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestToMsgRoundTrip(t *testing.T) {
	h, _ := run(t, `publish('out', { n: 1.5, s: 'x', b: true, nil: null, arr: [1, 'two'], o: { k: 'v' }, fn: function() {} });`)
	if len(h.published) != 1 {
		t.Fatalf("published = %v", h.published)
	}
	m, ok := h.published[0].payload.(msg.Map)
	if !ok {
		t.Fatalf("payload = %T", h.published[0].payload)
	}
	want := msg.Map{
		"n": 1.5, "s": "x", "b": true, "nil": nil,
		"arr": []msg.Value{1.0, "two"},
		"o":   msg.Map{"k": "v"},
	}
	if !msg.Equal(m, want) {
		t.Errorf("payload = %#v", m)
	}
}

func TestFromMsgSortedKeys(t *testing.T) {
	v := FromMsg(msg.Map{"b": 1.0, "a": 2.0, "c": 3.0})
	o := v.(*Object)
	if strings.Join(o.Keys(), "") != "abc" {
		t.Errorf("keys = %v", o.Keys())
	}
}

func TestValueHelpers(t *testing.T) {
	if TypeOf(Undefined) != "undefined" || TypeOf(nil) != "object" {
		t.Error("TypeOf wrong")
	}
	if Truthy(float64(0)) || !Truthy(float64(1)) || Truthy("") || !Truthy("x") {
		t.Error("Truthy wrong")
	}
	if ToString(NewArray(1.0, "a")) != "1,a" {
		t.Errorf("array ToString = %q", ToString(NewArray(1.0, "a")))
	}
	if ToNumber("  42 ") != 42 || ToNumber(nil) != 0 || ToNumber(true) != 1 {
		t.Error("ToNumber wrong")
	}
	a := NewArray()
	a.SetAt(2, "x")
	if a.Len() != 3 || a.At(0) != Value(Undefined) || a.At(5) != Value(Undefined) {
		t.Error("Array growth wrong")
	}
	o := NewObject()
	o.Set("k", 1.0)
	o.Set("k", 2.0)
	if o.Len() != 1 {
		t.Error("duplicate Set grew object")
	}
	o.Delete("k")
	o.Delete("k")
	if o.Len() != 0 {
		t.Error("Delete failed")
	}
}

func TestToMsgCycleDetected(t *testing.T) {
	o := NewObject()
	o.Set("self", o)
	if _, err := ToMsg(o); err == nil {
		t.Error("cyclic ToMsg succeeded")
	}
}

func TestStopPreventsCallbacks(t *testing.T) {
	h, s := run(t, `subscribe('ch', function(m) { print('got'); });`)
	s.Stop()
	s.Stop() // idempotent
	if h.subs[0].releases != 1 {
		t.Errorf("releases = %d", h.subs[0].releases)
	}
	h.subs[0].handler(msg.Map{}, "")
	if len(h.prints) != 0 {
		t.Error("stopped script handled event")
	}
}

func BenchmarkFib20(b *testing.B) {
	h := newTestHost()
	s, err := New("bench.js", "function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }", h,
		Config{StepBudget: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Call("fib", 20.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubscribeDispatch(b *testing.B) {
	h := newTestHost()
	s, err := New("bench.js", `
		var count = 0;
		subscribe('ch', function(m) { count += m.v; });
	`, h, Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	payload := msg.Map{"v": 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.subs[0].handler(payload, "")
	}
}

func ExampleScript() {
	h := newTestHost()
	s, _ := New("example.js", `
		setDescription('doc example');
		var sub = subscribe('battery', function(m) {
			publish('report', { voltage: m.voltage });
		}, { interval: 60 * 1000 });
		print('interval ' + 60 * 1000);
	`, h, Config{})
	s.Start()
	h.subs[0].handler(msg.Map{"voltage": 4.1}, "")
	fmt.Println(s.Description())
	fmt.Println(h.prints[0])
	fmt.Println(h.published[0].channel)
	// Output:
	// doc example
	// interval 60000
	// report
}
