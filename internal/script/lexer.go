package script

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type lexer struct {
	name  string
	src   string
	pos   int
	line  int
	col   int
	toks  []token
	fail  *SyntaxError
	valid bool
}

// lex tokenizes source, returning the token stream or a syntax error.
func lex(name, src string) ([]token, error) {
	l := &lexer{name: name, src: src, line: 1, col: 1}
	l.run()
	if l.fail != nil {
		return nil, l.fail
	}
	return l.toks, nil
}

func (l *lexer) errorf(format string, args ...any) {
	if l.fail == nil {
		l.fail = &SyntaxError{Script: l.name, Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
	}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) emit(kind tokenKind, text string, num float64, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, num: num, line: line, col: col})
}

// punctuators, longest first so maximal munch works.
var puncts = []string{
	"===", "!==", ">>>", "&&=", "||=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "=>",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "?", ":",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|",
}

func (l *lexer) run() {
	for l.pos < len(l.src) && l.fail == nil {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf("unterminated block comment")
			}
		case c >= '0' && c <= '9', c == '.' && l.peek2() >= '0' && l.peek2() <= '9':
			l.lexNumber()
		case c == '\'' || c == '"':
			l.lexString(c)
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			l.lexPunct()
		}
	}
	l.emit(tokEOF, "", 0, l.line, l.col)
}

func (l *lexer) lexNumber() {
	line, col := l.line, l.col
	start := l.pos
	// Hex literals.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for isHex(l.peek()) {
			l.advance()
		}
		n, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			l.errorf("bad hex literal %q", l.src[start:l.pos])
			return
		}
		l.emit(tokNumber, l.src[start:l.pos], float64(n), line, col)
		return
	}
	for isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		l.errorf("bad number literal %q", text)
		return
	}
	l.emit(tokNumber, text, n, line, col)
}

func (l *lexer) lexString(quote byte) {
	line, col := l.line, l.col
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			l.errorf("unterminated string")
			return
		}
		c := l.advance()
		if c == quote {
			break
		}
		if c == '\n' {
			l.errorf("newline in string")
			return
		}
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		if l.pos >= len(l.src) {
			l.errorf("unterminated escape")
			return
		}
		e := l.advance()
		switch e {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		case '\\', '\'', '"':
			sb.WriteByte(e)
		case '0':
			sb.WriteByte(0)
		case 'u':
			if l.pos+4 > len(l.src) {
				l.errorf("bad unicode escape")
				return
			}
			hex := l.src[l.pos : l.pos+4]
			n, err := strconv.ParseUint(hex, 16, 32)
			if err != nil {
				l.errorf("bad unicode escape \\u%s", hex)
				return
			}
			for i := 0; i < 4; i++ {
				l.advance()
			}
			sb.WriteRune(rune(n))
		default:
			sb.WriteByte(e)
		}
	}
	l.emit(tokString, sb.String(), 0, line, col)
}

func (l *lexer) lexIdent() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		for i := 0; i < size; i++ {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.emit(kind, text, 0, line, col)
}

func (l *lexer) lexPunct() {
	line, col := l.line, l.col
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			for i := 0; i < len(p); i++ {
				l.advance()
			}
			l.emit(tokPunct, p, 0, line, col)
			return
		}
	}
	l.errorf("unexpected character %q", string(l.peek()))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}
