package script

import "fmt"

// maxParseDepth bounds expression/statement nesting so pathological input
// (thousands of nested parentheses) fails cleanly instead of overflowing
// the Go stack.
const maxParseDepth = 500

type parser struct {
	name  string
	toks  []token
	pos   int
	depth int
}

// enter guards recursive descent; every recursive production calls it.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf("input nested too deeply (limit %d)", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// parse builds a program AST from source.
func parse(name, src string) (*program, error) {
	toks, err := lex(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{name: name, toks: toks}
	prog := &program{base: p.here()}
	for !p.atEOF() {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.body = append(prog.body, stmt)
	}
	return prog, nil
}

func (p *parser) here() base {
	t := p.toks[p.pos]
	return base{line: t.line, col: t.col}
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Script: p.name, Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// is reports whether the current token is the given punct or keyword text.
func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

// accept consumes the token if it matches.
func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.advance()
		return true
	}
	return false
}

// expect consumes the token or fails.
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %s", text, p.cur())
	}
	return nil
}

// semicolon consumes an optional statement terminator.
func (p *parser) semicolon() {
	p.accept(";")
}

// ---- statements ----

func (p *parser) statement() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.is("var") || p.is("let") || p.is("const"):
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		p.semicolon()
		return d, nil
	case p.is("function"):
		return p.funcDecl()
	case p.is("if"):
		return p.ifStmt()
	case p.is("while"):
		return p.whileStmt()
	case p.is("do"):
		return p.doWhileStmt()
	case p.is("for"):
		return p.forStmt()
	case p.is("return"):
		b := p.here()
		p.advance()
		var val node
		if !p.is(";") && !p.is("}") && !p.atEOF() {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			val = v
		}
		p.semicolon()
		return &returnStmt{base: b, value: val}, nil
	case p.is("break"):
		b := p.here()
		p.advance()
		p.semicolon()
		return &breakStmt{base: b}, nil
	case p.is("continue"):
		b := p.here()
		p.advance()
		p.semicolon()
		return &continueStmt{base: b}, nil
	case p.is("throw"):
		b := p.here()
		p.advance()
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.semicolon()
		return &throwStmt{base: b, value: v}, nil
	case p.is("switch"):
		return p.switchStmt()
	case p.is("try"):
		return p.tryStmt()
	case p.is("{"):
		return p.block()
	case p.is(";"):
		b := p.here()
		p.advance()
		return &blockStmt{base: b}, nil
	default:
		b := p.here()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.semicolon()
		return &exprStmt{base: b, expr: e}, nil
	}
}

func (p *parser) varDecl() (*varDecl, error) {
	b := p.here()
	p.advance() // var/let/const
	d := &varDecl{base: b}
	for {
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected variable name, found %s", p.cur())
		}
		d.names = append(d.names, p.advance().text)
		if p.accept("=") {
			init, err := p.assignment()
			if err != nil {
				return nil, err
			}
			d.inits = append(d.inits, init)
		} else {
			d.inits = append(d.inits, nil)
		}
		if !p.accept(",") {
			break
		}
	}
	return d, nil
}

func (p *parser) funcDecl() (node, error) {
	b := p.here()
	p.advance() // function
	if p.cur().kind != tokIdent {
		return nil, p.errorf("expected function name, found %s", p.cur())
	}
	name := p.advance().text
	fn, err := p.funcRest(b, name)
	if err != nil {
		return nil, err
	}
	return &funcDecl{base: b, name: name, fn: fn}, nil
}

// funcRest parses "(params) { body }".
func (p *parser) funcRest(b base, name string) (*funcLit, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.is(")") {
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected parameter name, found %s", p.cur())
		}
		params = append(params, p.advance().text)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcLit{base: b, name: name, params: params, body: body}, nil
}

func (p *parser) block() (*blockStmt, error) {
	b := p.here()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &blockStmt{base: b}
	for !p.is("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		blk.body = append(blk.body, stmt)
	}
	p.advance() // }
	return blk, nil
}

func (p *parser) ifStmt() (node, error) {
	b := p.here()
	p.advance() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var alt node
	if p.accept("else") {
		alt, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &ifStmt{base: b, cond: cond, then: then, alt: alt}, nil
}

func (p *parser) whileStmt() (node, error) {
	b := p.here()
	p.advance() // while
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &whileStmt{base: b, cond: cond, body: body}, nil
}

func (p *parser) doWhileStmt() (node, error) {
	b := p.here()
	p.advance() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.semicolon()
	return &whileStmt{base: b, cond: cond, body: body, post: true}, nil
}

func (p *parser) forStmt() (node, error) {
	b := p.here()
	p.advance() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}

	// for (var k in obj) / for (k in obj)
	if p.is("var") || p.is("let") || p.is("const") {
		save := p.pos
		p.advance()
		if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "in" {
			name := p.advance().text
			p.advance() // in
			obj, err := p.assignment()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return &forInStmt{base: b, varName: name, declare: true, obj: obj, body: body}, nil
		}
		p.pos = save
	} else if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "in" {
		name := p.advance().text
		p.advance() // in
		obj, err := p.assignment()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &forInStmt{base: b, varName: name, declare: false, obj: obj, body: body}, nil
	}

	// classic for(init; cond; step)
	var init, cond, step node
	var err error
	if !p.is(";") {
		if p.is("var") || p.is("let") || p.is("const") {
			init, err = p.varDecl()
		} else {
			init, err = p.expression()
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(";") {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		step, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &forStmt{base: b, init: init, cond: cond, step: step, body: body}, nil
}

func (p *parser) switchStmt() (node, error) {
	b := p.here()
	p.advance() // switch
	if err := p.expect("("); err != nil {
		return nil, err
	}
	disc, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &switchStmt{base: b, disc: disc}
	sawDefault := false
	for !p.is("}") {
		var clause switchCase
		switch {
		case p.accept("case"):
			test, err := p.expression()
			if err != nil {
				return nil, err
			}
			clause.test = test
		case p.accept("default"):
			if sawDefault {
				return nil, p.errorf("duplicate default clause")
			}
			sawDefault = true
		default:
			return nil, p.errorf("expected case or default, found %s", p.cur())
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		for !p.is("case") && !p.is("default") && !p.is("}") {
			if p.atEOF() {
				return nil, p.errorf("unterminated switch")
			}
			stmt, err := p.statement()
			if err != nil {
				return nil, err
			}
			clause.body = append(clause.body, stmt)
		}
		st.cases = append(st.cases, clause)
	}
	p.advance() // }
	return st, nil
}

func (p *parser) tryStmt() (node, error) {
	b := p.here()
	p.advance() // try
	blk, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &tryStmt{base: b, block: blk}
	if p.accept("catch") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected catch variable, found %s", p.cur())
		}
		st.catchVar = p.advance().text
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.catchBody, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.accept("finally") {
		st.finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if st.catchBody == nil && st.finally == nil {
		return nil, p.errorf("try without catch or finally")
	}
	return st, nil
}

// ---- expressions (precedence climbing) ----

func (p *parser) expression() (node, error) {
	// Comma operator: evaluate left, yield right. Used in for-steps.
	e, err := p.assignment()
	if err != nil {
		return nil, err
	}
	for p.is(",") {
		b := p.here()
		p.advance()
		right, err := p.assignment()
		if err != nil {
			return nil, err
		}
		e = &binary{base: b, op: ",", left: e, right: right}
	}
	return e, nil
}

func (p *parser) assignment() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	left, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%="} {
		if p.is(op) {
			b := p.here()
			switch left.(type) {
			case *ident, *member, *index:
			default:
				return nil, p.errorf("invalid assignment target")
			}
			p.advance()
			value, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &assign{base: b, op: op, target: left, value: value}, nil
		}
	}
	return left, nil
}

func (p *parser) ternaryExpr() (node, error) {
	cond, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.is("?") {
		return cond, nil
	}
	b := p.here()
	p.advance()
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	alt, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &ternary{base: b, cond: cond, then: then, alt: alt}, nil
}

func (p *parser) logicalOr() (node, error) {
	left, err := p.logicalAnd()
	if err != nil {
		return nil, err
	}
	for p.is("||") {
		b := p.here()
		p.advance()
		right, err := p.logicalAnd()
		if err != nil {
			return nil, err
		}
		left = &logical{base: b, op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *parser) logicalAnd() (node, error) {
	left, err := p.equality()
	if err != nil {
		return nil, err
	}
	for p.is("&&") {
		b := p.here()
		p.advance()
		right, err := p.equality()
		if err != nil {
			return nil, err
		}
		left = &logical{base: b, op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *parser) equality() (node, error) {
	left, err := p.relational()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		for _, cand := range []string{"===", "!==", "==", "!="} {
			if p.is(cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return left, nil
		}
		b := p.here()
		p.advance()
		right, err := p.relational()
		if err != nil {
			return nil, err
		}
		left = &binary{base: b, op: op, left: left, right: right}
	}
}

func (p *parser) relational() (node, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		for _, cand := range []string{"<=", ">=", "<", ">"} {
			if p.is(cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return left, nil
		}
		b := p.here()
		p.advance()
		right, err := p.additive()
		if err != nil {
			return nil, err
		}
		left = &binary{base: b, op: op, left: left, right: right}
	}
}

func (p *parser) additive() (node, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.is("+") || p.is("-") {
		b := p.here()
		op := p.advance().text
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &binary{base: b, op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) multiplicative() (node, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.is("*") || p.is("/") || p.is("%") {
		b := p.here()
		op := p.advance().text
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &binary{base: b, op: op, left: left, right: right}
	}
	return left, nil
}

func (p *parser) unaryExpr() (node, error) {
	for _, op := range []string{"!", "-", "+", "typeof", "++", "--", "delete"} {
		if p.is(op) {
			b := p.here()
			p.advance()
			operand, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &unary{base: b, op: op, operand: operand}, nil
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (node, error) {
	e, err := p.callExpr()
	if err != nil {
		return nil, err
	}
	if p.is("++") || p.is("--") {
		b := p.here()
		op := p.advance().text
		return &postfix{base: b, op: op, operand: e}, nil
	}
	return e, nil
}

func (p *parser) callExpr() (node, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.is("."):
			b := p.here()
			p.advance()
			t := p.cur()
			if t.kind != tokIdent && t.kind != tokKeyword {
				return nil, p.errorf("expected property name, found %s", t)
			}
			p.advance()
			e = &member{base: b, obj: e, name: t.text}
		case p.is("["):
			b := p.here()
			p.advance()
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &index{base: b, obj: e, key: key}
		case p.is("("):
			b := p.here()
			p.advance()
			var args []node
			for !p.is(")") {
				a, err := p.assignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			e = &call{base: b, callee: e, args: args}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (node, error) {
	b := p.here()
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &numberLit{base: b, value: t.num}, nil
	case t.kind == tokString:
		p.advance()
		return &stringLit{base: b, value: t.text}, nil
	case p.is("true"):
		p.advance()
		return &boolLit{base: b, value: true}, nil
	case p.is("false"):
		p.advance()
		return &boolLit{base: b, value: false}, nil
	case p.is("null"):
		p.advance()
		return &nullLit{base: b}, nil
	case p.is("undefined"):
		p.advance()
		return &undefinedLit{base: b}, nil
	case p.is("function"):
		p.advance()
		name := ""
		if p.cur().kind == tokIdent {
			name = p.advance().text
		}
		return p.funcRest(b, name)
	case p.is("new"):
		// Limited: `new X(...)` treated as a plain call (object factories).
		p.advance()
		return p.callExpr()
	case p.is("["):
		p.advance()
		lit := &arrayLit{base: b}
		for !p.is("]") {
			e, err := p.assignment()
			if err != nil {
				return nil, err
			}
			lit.elems = append(lit.elems, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return lit, nil
	case p.is("{"):
		p.advance()
		lit := &objectLit{base: b}
		for !p.is("}") {
			kt := p.cur()
			var key string
			switch {
			case kt.kind == tokIdent || kt.kind == tokKeyword:
				key = kt.text
				p.advance()
			case kt.kind == tokString:
				key = kt.text
				p.advance()
			case kt.kind == tokNumber:
				key = formatNumber(kt.num)
				p.advance()
			default:
				return nil, p.errorf("expected property key, found %s", kt)
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			v, err := p.assignment()
			if err != nil {
				return nil, err
			}
			lit.keys = append(lit.keys, key)
			lit.values = append(lit.values, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return lit, nil
	case p.is("("):
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		return &ident{base: b, name: t.text}, nil
	default:
		return nil, p.errorf("unexpected %s", t)
	}
}
