package script

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"pogo/internal/msg"
)

// Host is the node-side surface a running script talks to — the whole
// sandbox boundary. The core implements it per script context; tests
// implement it directly.
type Host interface {
	// Publish sends a message on a pub/sub channel.
	Publish(channel string, m msg.Value) error
	// Subscribe registers a handler on a channel with optional parameters.
	// The returned release/renew functions implement the Subscription
	// object's methods. The handler receives the message and its origin
	// (the remote node it came from, or "").
	Subscribe(channel string, params msg.Map, handler func(m msg.Value, origin string)) (release, renew func(), err error)
	// Print emits a debug message visible on the device UI.
	Print(script, text string)
	// Log appends a line of text to permanent storage; logName "" is the
	// script's default log.
	Log(script, logName, text string)
	// Freeze persists the script's single state object, overwriting any
	// previous one (§4.4).
	Freeze(script string, v msg.Value) error
	// Thaw retrieves the frozen object; ok is false when none exists.
	Thaw(script string) (v msg.Value, ok bool)
	// SetTimeout schedules fn after delay on the node's scheduler.
	SetTimeout(fn func(), delay time.Duration)
	// ReportError is told about runtime errors in script callbacks.
	ReportError(script string, err error)
}

// Config tunes script execution.
type Config struct {
	// StepBudget is the number of interpreter steps one entry into script
	// code may consume — the analogue of the paper's 100 ms call timeout
	// (§4.5). Default 2,000,000.
	StepBudget int
	// StartupBudgetFactor multiplies the budget for the initial body run.
	// Default 10.
	StartupBudgetFactor int
	// Rand seeds Math.random; defaults to a fixed-seed source so simulated
	// runs are reproducible.
	Rand *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.StepBudget == 0 {
		c.StepBudget = 2_000_000
	}
	if c.StartupBudgetFactor == 0 {
		c.StartupBudgetFactor = 10
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// Script is a parsed PogoScript program bound to a host. All entries into
// script code are serialized (§4.5: JavaScript has no concurrency) and
// budget-limited. The zero value is not usable; construct with New.
type Script struct {
	Name string

	host Host
	cfg  Config
	prog *program

	mu          sync.Mutex // serializes script execution
	globals     *scope
	started     bool
	stopped     bool
	description string
	autoStart   bool
	releases    []func()
	stats       Stats
}

// Stats counts a script's activity; the per-script resource accounting of
// the paper's future work (§6) builds on these counters.
type Stats struct {
	Entries   int // calls into script code (body, handlers, timeouts)
	Errors    int
	Publishes int
	Steps     int64 // interpreter steps consumed (a proxy for CPU time)
	// DeadlineExceeded counts the calls killed by the execution budget —
	// the paper's per-call deadline (§4.5). A subset of Errors.
	DeadlineExceeded int
}

// IsBudgetError reports whether err is (or wraps) the execution-budget
// violation the interpreter raises when a call exceeds its step budget.
func IsBudgetError(err error) bool {
	if errors.Is(err, ErrBudget) {
		return true
	}
	var re *RuntimeError
	return errors.As(err, &re) && re.Msg == ErrBudget.Error()
}

// noteErrLocked classifies a failed entry into script code. Caller holds
// s.mu.
func (s *Script) noteErrLocked(err error) {
	s.stats.Errors++
	if IsBudgetError(err) {
		s.stats.DeadlineExceeded++
	}
}

// New parses source and prepares (but does not run) the script.
func New(name, source string, host Host, cfg Config) (*Script, error) {
	prog, err := parse(name, source)
	if err != nil {
		return nil, err
	}
	s := &Script{
		Name: name,
		host: host,
		cfg:  cfg.withDefaults(),
		prog: prog,
		// Scripts run on deployment unless the body opts out with a
		// top-level setAutoStart(false) — detected statically, since the
		// body has not run yet when the deployer asks (§4.4).
		autoStart: detectAutoStart(prog),
	}
	s.globals = newScope(nil)
	installGlobals(s.globals, s.cfg.Rand)
	s.installAPI()
	return s, nil
}

// Description returns the setDescription() value, if the script ran one.
func (s *Script) Description() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.description
}

// AutoStart returns whether the script wants to run on deployment.
func (s *Script) AutoStart() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.autoStart
}

// StatsSnapshot returns the script's counters.
func (s *Script) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Start executes the script body, then its start() function if it defines
// one (the Listing 2 convention). Start may be called once.
func (s *Script) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("script %s: already started", s.Name)
	}
	s.started = true
	in := &interp{
		name:    s.Name,
		globals: s.globals,
		steps:   s.cfg.StepBudget * s.cfg.StartupBudgetFactor,
	}
	s.stats.Entries++
	startBudget := in.steps
	defer func() { s.stats.Steps += int64(startBudget - in.steps) }()
	if err := in.exec(s.prog, s.globals); err != nil {
		s.noteErrLocked(err)
		return normalizeErr(s.Name, err)
	}
	if fn, ok := s.globals.lookup("start"); ok {
		if _, isFn := fn.(*Function); isFn {
			if _, err := in.invoke(nil, fn, Undefined, nil); err != nil {
				s.noteErrLocked(err)
				return normalizeErr(s.Name, err)
			}
		}
	}
	return nil
}

// Stop releases every subscription the script holds and bars further
// callbacks.
func (s *Script) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	releases := s.releases
	s.releases = nil
	s.mu.Unlock()
	for _, r := range releases {
		r()
	}
}

// Call invokes a named global function with message-domain arguments; used
// by tests and tooling to poke at script internals.
func (s *Script) Call(fnName string, args ...msg.Value) (msg.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn, ok := s.globals.lookup(fnName)
	if !ok {
		return nil, fmt.Errorf("script %s: no function %q", s.Name, fnName)
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = FromMsg(a)
	}
	in := &interp{name: s.Name, globals: s.globals, steps: s.cfg.StepBudget}
	s.stats.Entries++
	out, err := in.invoke(nil, fn, Undefined, vals)
	s.stats.Steps += int64(s.cfg.StepBudget - in.steps)
	if err != nil {
		s.noteErrLocked(err)
		return nil, normalizeErr(s.Name, err)
	}
	return ToMsg(out)
}

// enter runs a callback into script code under the lock and budget,
// reporting errors to the host.
func (s *Script) enter(fn Value, args []Value) {
	s.mu.Lock()
	if s.stopped || !s.started {
		s.mu.Unlock()
		return
	}
	in := &interp{name: s.Name, globals: s.globals, steps: s.cfg.StepBudget}
	s.stats.Entries++
	_, err := in.invoke(nil, fn, Undefined, args)
	s.stats.Steps += int64(s.cfg.StepBudget - in.steps)
	if err != nil {
		s.noteErrLocked(err)
	}
	host := s.host
	s.mu.Unlock()
	if err != nil && host != nil {
		host.ReportError(s.Name, normalizeErr(s.Name, err))
	}
}

// detectAutoStart scans top-level statements for setAutoStart(<falsy
// literal>) calls.
func detectAutoStart(prog *program) bool {
	for _, stmt := range prog.body {
		es, ok := stmt.(*exprStmt)
		if !ok {
			continue
		}
		c, ok := es.expr.(*call)
		if !ok || len(c.args) != 1 {
			continue
		}
		id, ok := c.callee.(*ident)
		if !ok || id.name != "setAutoStart" {
			continue
		}
		switch a := c.args[0].(type) {
		case *boolLit:
			return a.value
		case *numberLit:
			return a.value != 0
		case *nullLit, *undefinedLit:
			return false
		}
	}
	return true
}

// normalizeErr converts escaped control-flow signals into RuntimeErrors.
func normalizeErr(name string, err error) error {
	switch e := err.(type) {
	case throwSignal:
		return &RuntimeError{Script: name, Line: e.line, Msg: "uncaught " + ToString(e.value), Thrown: e.value}
	case returnSignal, breakSignal, continueSignal:
		return &RuntimeError{Script: name, Msg: err.Error()}
	default:
		return err
	}
}

// installAPI binds the 11-method Pogo API of Table 1 into the globals.
func (s *Script) installAPI() {
	g := s.globals

	g.declare("setDescription", &Builtin{name: "setDescription", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		s.description = ToString(argAt(args, 0))
		return Undefined, nil
	}})
	g.declare("setAutoStart", &Builtin{name: "setAutoStart", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		s.autoStart = Truthy(argAt(args, 0))
		return Undefined, nil
	}})
	g.declare("print", &Builtin{name: "print", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		s.host.Print(s.Name, joinArgs(args))
		return Undefined, nil
	}})
	g.declare("log", &Builtin{name: "log", fn: func(_ *interp, _ Value, args []Value) (Value, error) {
		s.host.Log(s.Name, "", joinArgs(args))
		return Undefined, nil
	}})
	g.declare("logTo", &Builtin{name: "logTo", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		if len(args) < 1 {
			return nil, in.errorf(nil, "logTo needs a log name")
		}
		s.host.Log(s.Name, ToString(args[0]), joinArgs(args[1:]))
		return Undefined, nil
	}})
	g.declare("publish", &Builtin{name: "publish", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, in.errorf(nil, "publish needs (channel, message)")
		}
		// Table 1 says publish(channel, message) but Listing 2 writes
		// publish(msg, 'filtered-scans'); accept both orders.
		chArg, msgArg := args[0], args[1]
		if _, ok := chArg.(string); !ok {
			if _, ok := msgArg.(string); ok {
				chArg, msgArg = msgArg, chArg
			}
		}
		channel, ok := chArg.(string)
		if !ok {
			return nil, in.errorf(nil, "publish: channel must be a string")
		}
		payload, err := ToMsg(msgArg)
		if err != nil {
			return nil, in.errorf(nil, "publish: %v", err)
		}
		s.stats.Publishes++
		if err := s.host.Publish(channel, payload); err != nil {
			return nil, in.errorf(nil, "publish: %v", err)
		}
		return Undefined, nil
	}})
	g.declare("subscribe", &Builtin{name: "subscribe", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, in.errorf(nil, "subscribe needs (channel, function)")
		}
		channel, ok := args[0].(string)
		if !ok {
			return nil, in.errorf(nil, "subscribe: channel must be a string")
		}
		handler := args[1]
		if _, isFn := handler.(*Function); !isFn {
			if _, isB := handler.(*Builtin); !isB {
				return nil, in.errorf(nil, "subscribe: second argument must be a function")
			}
		}
		var params msg.Map
		if len(args) > 2 {
			pv, err := ToMsg(args[2])
			if err != nil {
				return nil, in.errorf(nil, "subscribe: bad parameters: %v", err)
			}
			if pm, ok := pv.(msg.Map); ok {
				params = pm
			}
		}
		release, renew, err := s.host.Subscribe(channel, params, func(m msg.Value, origin string) {
			s.enter(handler, []Value{FromMsg(m), origin})
		})
		if err != nil {
			return nil, in.errorf(nil, "subscribe: %v", err)
		}
		s.releases = append(s.releases, release)
		sub := NewObject()
		sub.Set("channel", channel)
		sub.Set("release", &Builtin{name: "release", fn: func(_ *interp, _ Value, _ []Value) (Value, error) {
			release()
			return Undefined, nil
		}})
		sub.Set("renew", &Builtin{name: "renew", fn: func(_ *interp, _ Value, _ []Value) (Value, error) {
			renew()
			return Undefined, nil
		}})
		return sub, nil
	}})
	g.declare("freeze", &Builtin{name: "freeze", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		v, err := ToMsg(argAt(args, 0))
		if err != nil {
			return nil, in.errorf(nil, "freeze: %v", err)
		}
		if err := s.host.Freeze(s.Name, v); err != nil {
			return nil, in.errorf(nil, "freeze: %v", err)
		}
		return Undefined, nil
	}})
	g.declare("thaw", &Builtin{name: "thaw", fn: func(_ *interp, _ Value, _ []Value) (Value, error) {
		v, ok := s.host.Thaw(s.Name)
		if !ok {
			return nil, nil // null when nothing frozen
		}
		return FromMsg(v), nil
	}})
	g.declare("json", &Builtin{name: "json", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		v, err := ToMsg(argAt(args, 0))
		if err != nil {
			return nil, in.errorf(nil, "json: %v", err)
		}
		b, err := msg.EncodeJSON(v)
		if err != nil {
			return nil, in.errorf(nil, "json: %v", err)
		}
		return string(b), nil
	}})
	g.declare("setTimeout", &Builtin{name: "setTimeout", fn: func(in *interp, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, in.errorf(nil, "setTimeout needs (function, delay)")
		}
		fn := args[0]
		delay := time.Duration(ToNumber(args[1])) * time.Millisecond
		if delay < 0 {
			delay = 0
		}
		s.host.SetTimeout(func() { s.enter(fn, nil) }, delay)
		return Undefined, nil
	}})
}

func joinArgs(args []Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = ToString(a)
	}
	return strings.Join(parts, " ")
}
