// battery-collect.js — collector side of the battery reporter: persist the
// readings arriving from every device on the roster.
setDescription('Battery report collector');
subscribe('battery-report', function (m, origin) {
  logTo('battery', origin + ' ' + json(m));
});
