// battery.js — the §5.2 power-measurement workload: sample the battery
// sensor once per minute and report the readings to the collector. With the
// tail-sync flush policy the values leave the phone in batches of five,
// riding the e-mail application's 3G tail.
setDescription('Battery voltage reporter (power experiment workload)');

subscribe('battery', function (m) {
  publish('battery-report', {
    voltage: m.voltage,
    level: m.level,
    t: m.timestamp
  });
}, { interval: 60 * 1000 });
