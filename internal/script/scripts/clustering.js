// clustering.js — second stage of the localization application (paper
// §4.1). Clusters sanitized Wi-Fi scans into 'places' using a modified
// DBSCAN: core objects are extracted from a sliding window of the last 60
// samples, the distance metric is one minus the cosine coefficient of the
// two scans' RSSI vectors, and the current cluster is closed as soon as a
// sample arrives that is not reachable from it (the user walked away).
// When a cluster closes, the sample nearest to the cluster mean is selected
// as its characterization and shipped to the collector together with the
// entry and exit timestamps.
//
// Script state (window + open cluster) is frozen after every sample so a
// reboot or script update only costs us the message in flight, not the
// whole dwell (§5.3 post-mortem: freeze/thaw was added for exactly this).
setDescription('Sliding-window DBSCAN place clustering (localization stage 2)');

var WINDOW = 60;     // samples kept for core-object extraction
var EPS = 0.35;      // neighbourhood radius (cosine distance)
var MIN_PTS = 4;     // neighbours (incl. self) needed for a core object
var MIN_CLUSTER = 5; // samples needed before a closed cluster is reported

var FREEZE_EVERY = 5; // persist state every N samples (not each one: the
                      // serialization cost of the full window adds up, and
                      // losing up to five minutes at a reboot is acceptable)

var window = [];     // sliding window of recent samples
var cluster = null;  // { samples: [...] } while the user dwells somewhere
var sinceFreeze = 0;

// ---- vector helpers over sparse {bssid: weight} maps ----

function dot(a, b) {
  var sum = 0;
  for (var k in a) {
    if (b.hasOwnProperty(k)) {
      sum += a[k] * b[k];
    }
  }
  return sum;
}

function norm(a) {
  var sum = 0;
  for (var k in a) {
    sum += a[k] * a[k];
  }
  return Math.sqrt(sum);
}

// Cosine coefficient distance: 0 = identical AP environment, 1 = disjoint.
function distance(s1, s2) {
  var n1 = norm(s1.aps);
  var n2 = norm(s2.aps);
  if (n1 === 0 || n2 === 0) {
    return 1;
  }
  var cos = dot(s1.aps, s2.aps) / (n1 * n2);
  if (cos > 1) {
    cos = 1;
  }
  return 1 - cos;
}

// A sample is a core object when it has MIN_PTS neighbours in the window.
function isCore(sample) {
  var neighbours = 0;
  for (var i = 0; i < window.length; i++) {
    if (distance(sample, window[i]) <= EPS) {
      neighbours++;
      if (neighbours >= MIN_PTS) {
        return true;
      }
    }
  }
  return false;
}

// A sample is reachable from the open cluster when it is within EPS of any
// of the cluster's samples.
function reachable(sample) {
  for (var i = cluster.samples.length - 1; i >= 0; i--) {
    if (distance(sample, cluster.samples[i]) <= EPS) {
      return true;
    }
  }
  return false;
}

// Mean vector of the cluster's samples.
function clusterMean() {
  var mean = {};
  var n = cluster.samples.length;
  for (var i = 0; i < n; i++) {
    var aps = cluster.samples[i].aps;
    for (var k in aps) {
      if (mean.hasOwnProperty(k)) {
        mean[k] += aps[k] / n;
      } else {
        mean[k] = aps[k] / n;
      }
    }
  }
  return mean;
}

// The characterization is the sample nearest to the mean of all samples.
function characterize() {
  var mean = { aps: clusterMean() };
  var best = null;
  var bestDist = 2;
  for (var i = 0; i < cluster.samples.length; i++) {
    var d = distance(cluster.samples[i], mean);
    if (d < bestDist) {
      bestDist = d;
      best = cluster.samples[i];
    }
  }
  return best;
}

function closeCluster() {
  if (cluster.samples.length >= MIN_CLUSTER) {
    var rep = characterize();
    publish('clusters', {
      enter: cluster.samples[0].t,
      exit: cluster.samples[cluster.samples.length - 1].t,
      samples: cluster.samples.length,
      aps: rep.aps
    });
  }
  cluster = null;
}

// When a core object appears, the cluster retroactively absorbs the window
// samples density-reachable from it, so the entry timestamp reflects when
// the user actually arrived, not when density was first established.
function openCluster(core) {
  var members = [];
  for (var i = 0; i < window.length; i++) {
    if (distance(core, window[i]) <= EPS) {
      members.push(window[i]);
    }
  }
  cluster = { samples: members };
}

function handleSample(sample) {
  window.push(sample);
  if (window.length > WINDOW) {
    window.shift();
  }
  if (cluster !== null) {
    if (reachable(sample)) {
      cluster.samples.push(sample);
    } else {
      closeCluster();
    }
  }
  if (cluster === null && isCore(sample)) {
    openCluster(sample);
  }
  // Persist state periodically so restarts do not lose the dwell in
  // progress.
  sinceFreeze++;
  if (sinceFreeze >= FREEZE_EVERY) {
    sinceFreeze = 0;
    freeze({ window: window, cluster: cluster });
  }
}

function start() {
  var state = thaw();
  if (state !== null && state !== undefined) {
    window = state.window || [];
    cluster = state.cluster || null;
    // Arrays round-tripped through freeze lose nothing, but make sure the
    // cluster shape is sane after a version upgrade.
    if (cluster !== null && (typeof cluster !== 'object' || !cluster.samples)) {
      cluster = null;
    }
  }
  subscribe('scans', handleSample);
}
