// collect.js — collector-side stage of the localization application (paper
// §4.1). Receives cluster characterizations from every device in the
// experiment, resolves them to coordinates through the geolocation service,
// and appends the annotated places to the 'places' database log.
setDescription('Localization collector: geocode clusters into places');

var nextId = 1;
var pending = {};

subscribe('clusters', function (c, origin) {
  var id = 'req-' + nextId++;
  pending[id] = { device: origin, cluster: c };
  publish('geo-lookup', { id: id, aps: c.aps });
});

subscribe('geo-result', function (r) {
  var p = pending[r.id];
  if (!p) {
    return;
  }
  delete pending[r.id];
  logTo('places', json({
    device: p.device,
    enter: p.cluster.enter,
    exit: p.cluster.exit,
    samples: p.cluster.samples,
    aps: p.cluster.aps,
    lat: r.lat,
    lon: r.lon
  }));
});
