// roguefinder-collect.js — the collector half of RogueFinder (Table 2's
// second collect.js): write the filtered scans arriving from all devices to
// permanent storage.
setDescription('RogueFinder collector');
subscribe('filtered-scans', function (scan, origin) {
  logTo('scans', origin + ' ' + json(scan));
});
