// roguefinder.js — the RogueFinder application of the paper's Listing 2:
// report Wi-Fi access point scans once per minute, but only while the
// device is inside a given geographical polygon. Demonstrates the
// release/renew subscription pattern; locationInPolygon is the helper the
// paper omits for brevity (AnonyTL gets it as the built-in `In` construct).
setDescription('RogueFinder: geofenced Wi-Fi scan reporting');

function locationInPolygon(loc, polygon) {
  // Ray casting: count edge crossings of a horizontal ray from loc.
  var inside = false;
  var j = polygon.length - 1;
  for (var i = 0; i < polygon.length; i++) {
    var xi = polygon[i].x;
    var yi = polygon[i].y;
    var xj = polygon[j].x;
    var yj = polygon[j].y;
    var crosses = (yi > loc.y) !== (yj > loc.y) &&
      loc.x < (xj - xi) * (loc.y - yi) / (yj - yi) + xi;
    if (crosses) {
      inside = !inside;
    }
    j = i;
  }
  return inside;
}

function start() {
  var polygon = [{ x: 1, y: 1 }, { x: 2, y: 2 }, { x: 3, y: 0 }];

  var subscription = subscribe('wifi-scan', function (msg) {
    publish(msg, 'filtered-scans');
  }, { interval: 60 * 1000 });

  subscription.release();

  subscribe('location', function (msg) {
    if (locationInPolygon({ x: msg.lat, y: msg.lon }, polygon)) {
      subscription.renew();
    } else {
      subscription.release();
    }
  });
}
