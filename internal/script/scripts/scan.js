// scan.js — first stage of the localization application (paper §4.1).
// Requests Wi-Fi access point scans once per minute, removes locally
// administered access points, and normalizes RSSI so that 0 and 1
// correspond to -100 dBm and -55 dBm respectively. Clean scans are
// republished on the 'scans' channel for clustering.js.
setDescription('Wi-Fi scan sanitizer (localization stage 1)');

var MIN_RSSI = -100;
var MAX_RSSI = -55;

function normalize(rssi) {
  var v = (rssi - MIN_RSSI) / (MAX_RSSI - MIN_RSSI);
  if (v < 0) {
    v = 0;
  }
  if (v > 1) {
    v = 1;
  }
  return v;
}

subscribe('wifi-scan', function (scan) {
  var aps = scan.aps;
  var clean = {};
  var count = 0;
  for (var i = 0; i < aps.length; i++) {
    var ap = aps[i];
    if (ap.local) {
      continue; // locally administered: tethering hotspots etc.
    }
    clean[ap.bssid] = normalize(ap.rssi);
    count++;
  }
  if (count === 0) {
    return; // nothing usable in this scan
  }
  publish('scans', { t: scan.timestamp, aps: clean });
}, { interval: 60 * 1000 });
