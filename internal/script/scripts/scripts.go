// Package scripts embeds the PogoScript applications from the paper: the
// three-stage localization pipeline of §4.1 (scan.js, clustering.js,
// collect.js), the RogueFinder comparison of §5.1 (Listing 2), and the
// battery-reporting workload of the §5.2 power experiment.
//
// SLOC counts over these sources regenerate Table 2.
package scripts

import (
	"embed"
	"fmt"
	"strings"
)

//go:embed *.js
var fs embed.FS

// Source returns the text of a bundled script by file name.
func Source(name string) (string, error) {
	b, err := fs.ReadFile(name)
	if err != nil {
		return "", fmt.Errorf("scripts: %w", err)
	}
	return string(b), nil
}

// MustSource is Source for known-good names; it panics on error.
func MustSource(name string) string {
	s, err := Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names lists the bundled scripts.
func Names() []string {
	entries, err := fs.ReadDir(".")
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".js") {
			out = append(out, e.Name())
		}
	}
	return out
}

// SLOC counts source lines of code the way the paper does for Table 2:
// empty lines and comments are not counted.
func SLOC(source string) int {
	count := 0
	inBlock := false
	for _, line := range strings.Split(source, "\n") {
		line = strings.TrimSpace(line)
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		count++
	}
	return count
}

// Size returns the byte size of a bundled script (the Table 2 Size column).
func Size(name string) (int, error) {
	b, err := fs.ReadFile(name)
	if err != nil {
		return 0, fmt.Errorf("scripts: %w", err)
	}
	return len(b), nil
}
